module netupdate

go 1.22
