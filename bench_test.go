package netupdate

// One benchmark per table/figure of the paper's evaluation (Section 6),
// at sizes that finish in CI time, plus micro-benchmarks for the moving
// parts. cmd/experiments regenerates the figures at configurable scale
// and prints the full series.

import (
	"errors"
	"testing"
	"time"

	"netupdate/internal/bench"
	"netupdate/internal/buchi"
	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/hsa"
	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
	"netupdate/internal/mc"
	"netupdate/internal/sat"
	"netupdate/internal/topology"
)

const benchTimeout = 5 * time.Minute

// BenchmarkFig2aProbeLoss regenerates Figure 2(a): probe delivery during
// naive, ordering, and two-phase updates of the Figure 1 example.
func BenchmarkFig2aProbeLoss(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig2a(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2bRuleOverhead regenerates Figure 2(b): per-switch rule
// overhead of two-phase versus ordering updates.
func BenchmarkFig2bRuleOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig2b(); err != nil {
			b.Fatal(err)
		}
	}
}

// parVariants are the engine configurations every synthesis benchmark is
// run under: the sequential engine, the deterministic parallel engine,
// and the first-plan-wins parallel engine (4 workers each).
var parVariants = []struct {
	name string
	par  int
	racy bool
}{
	{"seq", 1, false},
	{"par4", 4, false},
	{"par4-racy", 4, true},
}

// BenchmarkFig7 regenerates Figure 7(a-c): synthesis runtime per checker
// backend on each topology family (reachability diamonds), under each
// engine variant.
func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	families := []bench.Family{bench.FamilyZoo, bench.FamilyFatTree, bench.FamilySmallWorld}
	checkers := []core.CheckerKind{core.CheckerIncremental, core.CheckerBatch, core.CheckerNuSMV}
	for _, fam := range families {
		for _, ck := range checkers {
			for _, v := range parVariants {
				b.Run(string(fam)+"/"+ck.String()+"/"+v.name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						sc, err := bench.DiamondWorkload(fam, 60, config.Reachability, 60)
						if err != nil {
							b.Fatal(err)
						}
						opts := core.Options{
							Checker: ck, Timeout: benchTimeout,
							Parallelism: v.par, FirstPlanWins: v.racy,
						}
						if _, err := core.Synthesize(sc, opts); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFig7RuleGranularity regenerates Figure 7(d-f): Incremental vs
// the NetPlumber substitute at rule granularity.
func BenchmarkFig7RuleGranularity(b *testing.B) {
	b.ReportAllocs()
	for _, ck := range []core.CheckerKind{core.CheckerIncremental, core.CheckerNetPlumber} {
		b.Run(ck.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sc, err := bench.DiamondWorkload(bench.FamilySmallWorld, 50, config.Reachability, 50)
				if err != nil {
					b.Fatal(err)
				}
				_, err = core.Synthesize(sc, core.Options{
					Checker: ck, RuleGranularity: true, Timeout: benchTimeout,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8gScalability regenerates Figure 8(g): Small-World
// scalability for the three property families, under each engine variant.
func BenchmarkFig8gScalability(b *testing.B) {
	b.ReportAllocs()
	for _, prop := range []config.Property{config.Reachability, config.Waypointing, config.ServiceChaining} {
		for _, v := range parVariants {
			b.Run(prop.String()+"/"+v.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sc, err := bench.DiamondWorkload(bench.FamilySmallWorld, 120, prop, 120*7)
					if err != nil {
						b.Fatal(err)
					}
					opts := core.Options{
						Timeout:     benchTimeout,
						Parallelism: v.par, FirstPlanWins: v.racy,
					}
					if _, err := core.Synthesize(sc, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig8hInfeasible regenerates Figure 8(h): time to prove that no
// switch-granularity ordering exists, under each engine variant (the
// proof explores a whole subtree, the best case for fan-out).
func BenchmarkFig8hInfeasible(b *testing.B) {
	b.ReportAllocs()
	for _, v := range parVariants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sc, err := bench.InfeasibleWorkload(60, config.Reachability, 2, 60*3)
				if err != nil {
					b.Fatal(err)
				}
				opts := core.Options{
					Timeout:     benchTimeout,
					Parallelism: v.par, FirstPlanWins: v.racy,
				}
				_, err = core.Synthesize(sc, opts)
				if !errors.Is(err, core.ErrNoOrdering) {
					b.Fatalf("err = %v, want ErrNoOrdering", err)
				}
			}
		})
	}
}

// BenchmarkFig8iRuleGranularity regenerates Figure 8(i): solving the
// switch-impossible workloads at rule granularity.
func BenchmarkFig8iRuleGranularity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := bench.InfeasibleWorkload(60, config.Reachability, 2, 60*3)
		if err != nil {
			b.Fatal(err)
		}
		_, err = core.Synthesize(sc, core.Options{RuleGranularity: true, Timeout: benchTimeout})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWaitRemoval regenerates the Section 6 "Waits" measurements:
// synthesis with and without the wait-removal pass.
func BenchmarkWaitRemoval(b *testing.B) {
	b.ReportAllocs()
	sc, err := bench.DiamondWorkload(bench.FamilySmallWorld, 120, config.Reachability, 120)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := core.Synthesize(sc, core.Options{Timeout: benchTimeout})
		if err != nil {
			b.Fatal(err)
		}
		if plan.Stats.WaitsAfter >= plan.Stats.WaitsBefore && plan.Stats.WaitsBefore > 2 {
			b.Fatalf("wait removal ineffective: %d -> %d",
				plan.Stats.WaitsBefore, plan.Stats.WaitsAfter)
		}
	}
}

// BenchmarkCheckerOnlyComparison regenerates the Section 6 checker-only
// comparison (same model-checking questions, different backends).
func BenchmarkCheckerOnlyComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.CheckerOnly(60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation regenerates the optimization ablation table.
func BenchmarkAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Ablation(60, benchTimeout); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRollingStream measures the steady-state controller workload:
// a rolling random walk of diamond targets over one topology, synthesized
// either through one long-lived session (warm — structures rebound in
// place, labels and scratch reused) or with a fresh one-shot Synthesize
// per target (cold). One benchmark op is the whole stream (8 syntheses),
// so warm and cold do identical work per op; the warm variant must show
// strictly lower ns/op and allocs/op. CI gates the warm allocs/op (see
// .github/workflows/ci.yml).
func BenchmarkRollingStream(b *testing.B) {
	w, err := bench.BuildStreamWorkload(bench.FamilySmallWorld, 60, 8, config.Reachability, 60*11)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Parallelism: 1, Timeout: benchTimeout}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		cur := w.Init
		for i := 0; i < b.N; i++ {
			for _, tgt := range w.Targets {
				sc := &config.Scenario{Name: "roll", Topo: w.Topo, Init: cur, Final: tgt, Specs: w.Specs}
				if _, err := core.Synthesize(sc, opts); err != nil {
					b.Fatal(err)
				}
				cur = tgt
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		sess, err := core.NewSession(w.Topo, w.Init, w.Specs, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, tgt := range w.Targets {
				if _, err := sess.Synthesize(tgt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	// The traced variant is the warm stream with the session's span ring
	// enabled (internal/obs): every synthesis records its phase spans and
	// exports a snapshot on the plan. CI gates its allocs/op too — the
	// span ring must stay a constant handful of allocations, not scale
	// with the work.
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		topts := opts
		topts.Trace = true
		sess, err := core.NewSession(w.Topo, w.Init, w.Specs, topts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, tgt := range w.Targets {
				plan, err := sess.Synthesize(tgt)
				if err != nil {
					b.Fatal(err)
				}
				if plan.Trace == nil {
					b.Fatal("traced synthesis returned no trace")
				}
			}
		}
	})
}

// BenchmarkFlappingStream measures the verification-first plan cache on
// flapping traffic: one warm session alternates between two
// configurations (a link flap, the canonical repetitive controller
// stream). One benchmark op is a full flap round trip (2 syntheses). The
// cached variant primes one round trip outside the timer, so every
// measured synthesis is a cache hit — replay-verification through the
// warm checkers instead of a search — and must show strictly lower ns/op
// and allocs/op than the nocache variant, which pays the full DFS on the
// identical instances. CI gates the cached allocs/op (see
// .github/workflows/ci.yml); BENCH_8.json archives the end-to-end
// comparison.
func BenchmarkFlappingStream(b *testing.B) {
	w, err := bench.BuildStreamWorkload(bench.FamilySmallWorld, 60, 2, config.Reachability, 60*11)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name   string
		cached bool
	}{
		{"cached", true},
		{"nocache", false},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := core.Options{Parallelism: 1, Timeout: benchTimeout, NoPlanCache: !v.cached}
			sess, err := core.NewSession(w.Topo, w.Init, w.Specs, opts)
			if err != nil {
				b.Fatal(err)
			}
			if v.cached && sess.EnableCache() == nil {
				b.Fatal("cache not enabled")
			}
			// Prime one flap round trip so the cached variant measures
			// pure hits and both variants measure settled sessions.
			if _, err := sess.Synthesize(w.Targets[0]); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Synthesize(w.Init); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Synthesize(w.Targets[0]); err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Synthesize(w.Init); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if got := sess.LastStats().CacheHit; got != v.cached {
				b.Fatalf("CacheHit = %v, want %v", got, v.cached)
			}
		})
	}
}

// BenchmarkDecomposedStream measures interference-partitioned synthesis
// against the joint search on the multi-region workload (6 independent
// regions of 2 chained diamonds each), served from a warm session that
// flip-flops between the two endpoint configurations. One benchmark op is
// a full round trip (2 syntheses), so both variants do identical logical
// work per op; the decomposed variant must show lower ns/op — its
// sub-searches iterate only each region's classes while the joint search
// pays every class on every unit application — and CI pins its allocs/op
// (see .github/workflows/ci.yml). BENCH_4.json archives the comparison.
func BenchmarkDecomposedStream(b *testing.B) {
	sc, err := bench.MultiRegionWorkload(320, 6, 2, 0, config.Reachability, 320*13)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name  string
		joint bool
	}{
		{"joint", true},
		{"decomposed", false},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := core.Options{Parallelism: 1, Timeout: benchTimeout, NoDecomposition: v.joint}
			sess, err := core.NewSession(sc.Topo, sc.Init, sc.Specs, opts)
			if err != nil {
				b.Fatal(err)
			}
			// Prime one round trip so label interning and scratch growth
			// settle before measurement.
			if _, err := sess.Synthesize(sc.Final); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Synthesize(sc.Init); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Synthesize(sc.Final); err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Synthesize(sc.Init); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- micro-benchmarks ---

func benchScene(b *testing.B, n int) (*config.Scenario, *kripke.K, *ltl.Formula) {
	b.Helper()
	topo := topology.SmallWorld(n, 4, 0.3, int64(n))
	sc, err := config.Diamonds(topo, config.DiamondOptions{
		Pairs: 1, Property: config.Reachability, Seed: int64(n),
	})
	if err != nil {
		b.Fatal(err)
	}
	k, err := kripke.Build(sc.Topo, sc.Init, sc.Specs[0].Class)
	if err != nil {
		b.Fatal(err)
	}
	return sc, k, sc.Specs[0].Formula
}

// BenchmarkKripkeBuild measures building a class Kripke structure.
func BenchmarkKripkeBuild(b *testing.B) {
	b.ReportAllocs()
	sc, _, _ := benchScene(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kripke.Build(sc.Topo, sc.Init, sc.Specs[0].Class); err != nil {
			b.Fatal(err)
		}
	}
}

// benchUpdateLoop measures a checker's update/revert cycle on one switch.
func benchUpdateLoop(b *testing.B, factory mc.Factory) {
	sc, k, spec := benchScene(b, 200)
	chk, err := factory(k, spec)
	if err != nil {
		b.Fatal(err)
	}
	chk.Check()
	sw := sc.UpdatingSwitches()[0]
	newTbl := sc.Final.Table(sw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta, err := k.UpdateSwitch(sw, newTbl)
		if err != nil {
			b.Fatal(err)
		}
		_, tok := chk.Update(delta)
		chk.Revert(tok)
		k.Revert(delta)
	}
}

// BenchmarkIncrementalUpdate measures the incremental checker's
// relabel-on-update (the paper's core operation).
func BenchmarkIncrementalUpdate(b *testing.B) {
	b.ReportAllocs()
	benchUpdateLoop(b, mc.NewIncremental)
}

// BenchmarkIncrementalSteadyState isolates the checker's steady-state
// Update+Revert cycle: the kripke delta is computed once and re-applied
// with Reapply, so the loop exercises only the checker's epoch-stamped
// relabeling and pooled undo tokens. The loop must report 0 allocs/op —
// that is the acceptance bar for the allocation-free hot path. A passing
// update is chosen deliberately: a failing verdict allocates its
// counterexample trace.
func BenchmarkIncrementalSteadyState(b *testing.B) {
	sc, k, spec := benchScene(b, 200)
	chk, err := mc.NewIncremental(k, spec)
	if err != nil {
		b.Fatal(err)
	}
	chk.Check()
	var delta *kripke.Delta
	for _, sw := range sc.UpdatingSwitches() {
		d, err := k.UpdateSwitch(sw, sc.Final.Table(sw))
		if err != nil {
			if d != nil {
				k.Revert(d) // loop errors leave the update applied
			}
			continue
		}
		v, tok := chk.Update(d)
		chk.Revert(tok)
		k.Revert(d)
		if v.OK {
			delta = d
			break
		}
	}
	if delta == nil {
		b.Fatal("no passing single-switch update in the scenario")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Reapply(delta)
		_, tok := chk.Update(delta)
		chk.Revert(tok)
		k.Revert(delta)
	}
}

// BenchmarkBatchUpdate measures the full-relabel baseline on the same
// operation.
func BenchmarkBatchUpdate(b *testing.B) {
	b.ReportAllocs()
	benchUpdateLoop(b, mc.NewBatch)
}

// BenchmarkBuchiUpdate measures the automaton-theoretic (NuSMV-substitute)
// checker on the same operation.
func BenchmarkBuchiUpdate(b *testing.B) {
	b.ReportAllocs()
	benchUpdateLoop(b, buchi.New)
}

// BenchmarkHSAUpdate measures the header-space (NetPlumber-substitute)
// checker on the same operation.
func BenchmarkHSAUpdate(b *testing.B) {
	b.ReportAllocs()
	benchUpdateLoop(b, hsa.New)
}

// BenchmarkLTLExtend measures one labeling step.
func BenchmarkLTLExtend(b *testing.B) {
	b.ReportAllocs()
	clo := ltl.MustClosure(ltl.ServiceChain(1, []int{2, 3, 4}, 5))
	atoms := clo.AtomValuation(ltl.EnvFunc(func(p ltl.Prop) bool { return p.Value == 3 }))
	next := clo.Sink(atoms)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next = clo.Extend(atoms, next)
	}
}

// BenchmarkSATPigeonhole measures the CDCL solver on a classic UNSAT
// instance (6 pigeons, 5 holes).
func BenchmarkSATPigeonhole(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sat.New()
		v := func(p, h int) sat.Lit { return sat.Lit(p*5 + h + 1) }
		for p := 0; p < 6; p++ {
			s.AddClause(v(p, 0), v(p, 1), v(p, 2), v(p, 3), v(p, 4))
		}
		for h := 0; h < 5; h++ {
			for p1 := 0; p1 < 6; p1++ {
				for p2 := p1 + 1; p2 < 6; p2++ {
					s.AddClause(-v(p1, h), -v(p2, h))
				}
			}
		}
		if s.Solve() {
			b.Fatal("pigeonhole must be unsat")
		}
	}
}

// BenchmarkDAGExecution measures the decentralized DAG executor: one op
// simulates the full asynchronous execution of a synthesized multi-region
// plan (every switch committing as soon as its predecessors ack) against
// probe traffic. The plan is synthesized once outside the timer so the op
// isolates executor work; CI pins its allocs/op (see
// .github/workflows/ci.yml).
func BenchmarkDAGExecution(b *testing.B) {
	sc, err := bench.MultiRegionWorkload(160, 4, 2, 0, config.Reachability, 160*13)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := core.Synthesize(sc, core.Options{Parallelism: 1, Timeout: benchTimeout})
	if err != nil {
		b.Fatal(err)
	}
	if plan.DAG == nil || plan.Stats.DAGWidth < 2 {
		b.Fatalf("plan DAG missing or too narrow: %+v", plan.DAG)
	}
	var classes []Class
	for _, cs := range sc.Specs {
		classes = append(classes, cs.Class)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := SimulateDAG(sc.Topo, sc.Init, plan, classes, SimParams{
			Duration: time.Second, ProbeInterval: 2 * time.Millisecond,
		})
		if res.Lost != 0 || res.CompleteAt == 0 {
			b.Fatalf("DAG execution lost %d probes, complete at %v", res.Lost, res.CompleteAt)
		}
	}
}

// BenchmarkRepair measures warm-session repair after a mid-execution
// crash: each iteration rebuilds a session and plan (untimed), commits
// the first half of the plan's DAG nodes, and times Session.Repair from
// that crash state back to the stranded target. Allocations stay
// diff-proportional (the rebind touches only crashed-vs-current diffs,
// and the search reuses pooled engine scratch); CI gates allocs/op.
func BenchmarkRepair(b *testing.B) {
	sc, err := bench.MultiRegionWorkload(160, 4, 2, 0, config.Reachability, 160*13)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Parallelism: 1, Timeout: benchTimeout}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sess, err := core.NewSession(sc.Topo, sc.Init, sc.Specs, opts)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := sess.Synthesize(sc.Final)
		if err != nil {
			b.Fatal(err)
		}
		prefix := make([]int, len(plan.Updates())/2)
		for j := range prefix {
			prefix[j] = j
		}
		b.StartTimer()
		rep, err := sess.Repair(prefix, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Stats.RepairCommitted != len(prefix) {
			b.Fatalf("repair stats = %+v", rep.Stats)
		}
	}
}

// BenchmarkSnapshotRestore measures rebuilding a warm session from its
// binary snapshot — the pool's eviction-resume path. The session is
// warmed (one synthesis with the plan cache attached) and snapshotted
// outside the timer; one op restores it over the shared arena and
// warmth, exactly as ensureWarm does after an eviction. Restore adopts
// recorded transitions, labelings, and atom images instead of
// recomputing them, so allocations stay proportional to the decoded
// arrays alone; CI pins allocs/op (see .github/workflows/ci.yml).
func BenchmarkSnapshotRestore(b *testing.B) {
	sc, err := bench.MultiRegionWorkload(160, 4, 2, 0, config.Reachability, 160*13)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Parallelism: 1, Timeout: benchTimeout}
	res := core.SessionResources{Arena: kripke.NewArena(sc.Topo), Warmth: mc.NewWarmth()}
	sess, err := core.NewSessionWith(sc.Topo, sc.Init, sc.Specs, opts, res)
	if err != nil {
		b.Fatal(err)
	}
	sess.EnableCache()
	if _, err := sess.Synthesize(sc.Final); err != nil {
		b.Fatal(err)
	}
	img, err := sess.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restored, err := core.RestoreSessionWith(sc.Topo, sc.Specs, opts, img, res)
		if err != nil {
			b.Fatal(err)
		}
		if restored.Runs() != sess.Runs() {
			b.Fatalf("restored %d runs, want %d", restored.Runs(), sess.Runs())
		}
	}
}

// BenchmarkSimulatorFig1 measures the discrete-event simulator on the
// Figure 1 scenario.
func BenchmarkSimulatorFig1(b *testing.B) {
	b.ReportAllocs()
	sc := config.Fig1RedGreen()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	classes := []Class{sc.Specs[0].Class}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Simulate(sc.Topo, sc.Init, plan.Commands(), classes, SimParams{
			Duration: time.Second,
		})
		if res.Lost != 0 {
			b.Fatal("unexpected loss")
		}
	}
}
