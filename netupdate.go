// Package netupdate synthesizes correct software-defined-network update
// sequences from formal LTL specifications, reproducing "Efficient
// Synthesis of Network Updates" (McClurg, Hojjat, Černý, Foster — PLDI
// 2015).
//
// Given an initial configuration, a final configuration, and a Linear
// Temporal Logic property over single-packet traces, Synthesize returns
// an ordering update: a sequence of per-switch (or per-rule) updates,
// separated by wait barriers only where needed, such that every
// intermediate configuration satisfies the property — or reports that no
// such ordering exists.
//
// The package is a façade over the internal engine:
//
//   - internal/ltl      — LTL formulas, closure, property library
//   - internal/network  — the operational network model (Section 3)
//   - internal/topology — FatTree / Small-World / WAN topologies
//   - internal/config   — configurations and scenario generators
//   - internal/kripke   — network Kripke structures (Section 3.3)
//   - internal/mc       — incremental + batch labeling checkers (Section 5)
//   - internal/buchi    — automaton-theoretic batch checker (NuSMV stand-in)
//   - internal/hsa      — header-space checker (NetPlumber stand-in)
//   - internal/sat      — CDCL solver for early search termination
//   - internal/core     — the ORDERUPDATE synthesis engine (Section 4)
//   - internal/twophase — two-phase and naive update baselines
//   - internal/sim      — discrete-event simulator for the Figure 2 experiments
package netupdate

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
	"netupdate/internal/mc"
	"netupdate/internal/network"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/twophase"
)

// Core synthesis types.
type (
	// Topology is an undirected switch graph with hosts.
	Topology = topology.Topology
	// Config maps switches to forwarding tables.
	Config = config.Config
	// Class identifies a traffic class (one src->dst host flow).
	Class = config.Class
	// ClassSpec pairs a class with its LTL property.
	ClassSpec = config.ClassSpec
	// Scenario is a full synthesis problem instance.
	Scenario = config.Scenario
	// Formula is an LTL formula over network-state propositions.
	Formula = ltl.Formula
	// Options configures the synthesizer.
	Options = core.Options
	// Plan is a synthesized update sequence.
	Plan = core.Plan
	// PlanDAG is the dependency-DAG form of a plan: per-step predecessor
	// edges (waits become edges, drain-marked where in-flight traffic must
	// quiesce) that any decentralized executor can commit against.
	PlanDAG = core.PlanDAG
	// Step is one plan element (update or wait).
	Step = core.Step
	// Stats reports synthesis work counters.
	Stats = core.Stats
	// CheckerKind selects the model-checking backend.
	CheckerKind = core.CheckerKind
	// Command is an operational controller command.
	Command = network.Command
	// Rule is a prioritized forwarding rule.
	Rule = network.Rule
	// Table is a forwarding table.
	Table = network.Table
	// SimParams configures the discrete-event simulator.
	SimParams = sim.Params
	// SimResult is a probe-delivery time series.
	SimResult = sim.Result
	// SimDAGNode is one node of the simulator's decentralized executor.
	SimDAGNode = sim.DAGNode
	// SimFaults configures seeded fault injection for the decentralized
	// executor (switch crash, ack loss/duplication, install loss).
	SimFaults = sim.Faults
	// SimCrash schedules a switch failure inside SimFaults.
	SimCrash = sim.Crash
	// DiamondOptions parameterizes the diamond workload generator.
	DiamondOptions = config.DiamondOptions
	// InfeasibleOptions parameterizes the double-diamond generator.
	InfeasibleOptions = config.InfeasibleOptions
	// MultiRegionOptions parameterizes the multi-region workload
	// generator (independent update regions plus coupling cross traffic),
	// the natural workload for the decomposition layer.
	MultiRegionOptions = config.MultiRegionOptions
	// Stream is a sequence of target configurations over one topology.
	Stream = config.Stream
	// ScenarioStream decodes a JSONL stream of configuration deltas.
	ScenarioStream = config.ScenarioStream
	// RollingStream is the generated rolling-update workload.
	RollingStream = config.RollingStream
	// RollingOptions parameterizes the rolling-update generator.
	RollingOptions = config.RollingOptions
	// Property selects a specification family for the generators.
	Property = config.Property
	// Fig1Nodes names the switches of the Figure 1 example topology.
	Fig1Nodes = config.Fig1Nodes
)

// Specification families for the workload generators.
const (
	PropReachability    = config.Reachability
	PropWaypointing     = config.Waypointing
	PropServiceChaining = config.ServiceChaining
)

// Model-checking backends.
const (
	CheckerIncremental = core.CheckerIncremental
	CheckerBatch       = core.CheckerBatch
	CheckerNuSMV       = core.CheckerNuSMV
	CheckerNetPlumber  = core.CheckerNetPlumber
)

// Synthesis failure modes (see internal/core).
var (
	ErrNoOrdering       = core.ErrNoOrdering
	ErrTimeout          = core.ErrTimeout
	ErrCanceled         = core.ErrCanceled
	ErrInitialViolation = core.ErrInitialViolation
	ErrFinalViolation   = core.ErrFinalViolation
	// ErrNoPlan: Repair was called before any successful synthesis.
	ErrNoPlan = core.ErrNoPlan
	// ErrBadCommit: the committed set passed to Repair is not a
	// dependency-closed subset of the last plan's DAG.
	ErrBadCommit = core.ErrBadCommit
)

// ParseFaults parses the -faults CLI specification (see
// internal/sim.ParseFaults), e.g. "crash=3@1,ackloss=0.2,seed=42".
var ParseFaults = sim.ParseFaults

// Synthesize runs the ORDERUPDATE algorithm on a scenario, returning an
// executable update plan or an error (ErrNoOrdering when no correct
// simple careful sequence exists). The search runs on a parallel worker
// pool sized by Options.Parallelism (zero = one worker per CPU, one =
// sequential) and is deterministic by default: it returns the same plan
// at any worker count. See DESIGN.md "Parallel search architecture".
func Synthesize(sc *Scenario, opts Options) (*Plan, error) {
	return core.Synthesize(sc, opts)
}

// Synthesizer is the long-lived, stream-oriented entry point: bound to
// one topology and one set of class specifications, it serves a sequence
// of target configurations — the steady-state shape of a production
// controller's load — while keeping expensive state warm between
// syntheses. Per-class Kripke structures are rebound in place instead of
// rebuilt, model-checker caches (interned labels, closure memos,
// translated automata) persist across runs, and engine scratch is pooled;
// see DESIGN.md "Session architecture". Synthesize is the one-shot
// equivalent and is itself a thin wrapper over a single-use session.
//
// A Synthesizer is NOT goroutine-safe: it must not be used from more
// than one goroutine at a time (each Synthesize call still parallelizes
// internally per Options.Parallelism). The warm per-class structures are
// mutated in place during a synthesis, so overlapping calls would corrupt
// them; a cheap atomic guard detects overlapping calls and fails the
// latecomer with ErrConcurrentUse instead. Callers that need concurrency
// should serialize externally or hold one Synthesizer per goroutine —
// the internal/server pool does exactly that for the daemon.
// Configurations passed in are retained and must not be mutated
// afterwards.
type Synthesizer struct {
	s *core.Session
	// inFlight guards against concurrent misuse; see Synthesize.
	inFlight atomic.Bool
}

// ErrConcurrentUse reports that two Synthesize calls overlapped on one
// Synthesizer, which is not goroutine-safe. The offending call performed
// no work; the in-flight call is unaffected.
var ErrConcurrentUse = errors.New("netupdate: concurrent use of Synthesizer (not goroutine-safe)")

// NewSynthesizer opens a session at the initial configuration, verifying
// it against every class specification (ErrInitialViolation otherwise).
func NewSynthesizer(topo *Topology, init *Config, specs []ClassSpec, opts Options) (*Synthesizer, error) {
	s, err := core.NewSession(topo, init, specs, opts)
	if err != nil {
		return nil, err
	}
	return &Synthesizer{s: s}, nil
}

// Synthesize plans the update from the session's current configuration to
// final and advances the session on success. A failed synthesis
// (including ErrNoOrdering) leaves the session at its previous
// configuration, ready for the next target. Overlapping calls from other
// goroutines fail with ErrConcurrentUse.
func (sy *Synthesizer) Synthesize(final *Config) (*Plan, error) {
	return sy.SynthesizeContext(context.Background(), final)
}

// SynthesizeContext is Synthesize bounded by a request context: the
// search aborts with core.ErrTimeout when the context deadline expires
// (the earlier of it and Options.Timeout applies) or ErrCanceled when the
// context is canceled, leaving the session at its previous configuration.
func (sy *Synthesizer) SynthesizeContext(ctx context.Context, final *Config) (*Plan, error) {
	if !sy.inFlight.CompareAndSwap(false, true) {
		return nil, ErrConcurrentUse
	}
	defer sy.inFlight.Store(false)
	return sy.s.SynthesizeContext(ctx, final)
}

// Repair resynthesizes after a stalled plan execution: committed lists
// the plan-DAG node indices that took effect before the stall (it must
// be dependency-closed — the decentralized executor's Committed report
// always is), and the session replans from exactly that
// partially-updated configuration back to the stranded target, or to
// newTarget when the update was superseded mid-flight (nil keeps the
// original target). Infeasible components escalate through the repair
// ladder (2-simple, then scoped two-phase) before any error is
// returned; see DESIGN.md "Failure model and repair". On success the
// session advances to the target, ready for the next delta.
func (sy *Synthesizer) Repair(committed []int, newTarget *Config) (*Plan, error) {
	return sy.RepairContext(context.Background(), committed, newTarget)
}

// RepairContext is Repair bounded by a request context, with the same
// expiry semantics as SynthesizeContext.
func (sy *Synthesizer) RepairContext(ctx context.Context, committed []int, newTarget *Config) (*Plan, error) {
	if !sy.inFlight.CompareAndSwap(false, true) {
		return nil, ErrConcurrentUse
	}
	defer sy.inFlight.Store(false)
	return sy.s.RepairContext(ctx, committed, newTarget)
}

// Current returns the configuration the session is at.
func (sy *Synthesizer) Current() *Config { return sy.s.Current() }

// Runs returns the number of syntheses served so far.
func (sy *Synthesizer) Runs() int { return sy.s.Runs() }

// Counterexample is a violating packet trace through a configuration.
type Counterexample struct {
	Class Class
	// Trace lists the (switch, port) locations visited, in order.
	Trace []kripke.State
}

func (c *Counterexample) String() string {
	s := fmt.Sprintf("class %v:", c.Class)
	for _, st := range c.Trace {
		s += " " + st.String()
	}
	return s
}

// Verify checks a single static configuration against every class
// specification, returning a counterexample trace on failure (nil
// counterexample with ok=false means the configuration has a forwarding
// loop or another structural defect described by err).
func Verify(topo *Topology, cfg *Config, specs []ClassSpec) (ok bool, cex *Counterexample, err error) {
	for _, cs := range specs {
		k, kerr := kripke.Build(topo, cfg, cs.Class)
		if kerr != nil {
			if loop, isLoop := kerr.(*kripke.ErrLoop); isLoop {
				return false, &Counterexample{Class: cs.Class, Trace: loop.Cycle}, nil
			}
			return false, nil, kerr
		}
		chk, cerr := mc.NewIncremental(k, cs.Formula)
		if cerr != nil {
			return false, nil, cerr
		}
		v := chk.Check()
		if !v.OK {
			cex := &Counterexample{Class: cs.Class}
			for _, id := range v.Cex {
				cex.Trace = append(cex.Trace, k.StateAt(id))
			}
			return false, cex, nil
		}
	}
	return true, nil, nil
}

// ParseFormula parses the textual LTL syntax (see internal/ltl.Parse):
//
//	sw=1 -> F sw=5
//	sw=1 -> ((sw!=5) U ((sw=3) & F sw=5))
func ParseFormula(s string) (*Formula, error) { return ltl.Parse(s) }

// Property constructors from the paper's evaluation (Section 6).
var (
	// Reachability: (sw=src) -> F (sw=dst).
	Reachability = ltl.Reachability
	// Waypoint: traffic must traverse w before reaching dst.
	Waypoint = ltl.Waypoint
	// ServiceChain: traffic must traverse the waypoints in order.
	ServiceChain = ltl.ServiceChain
	// WaypointEither: traffic must traverse at least one of the waypoints.
	WaypointEither = ltl.WaypointEither
	// Avoid: traffic must never visit the given node.
	Avoid = ltl.Avoid
)

// Topology constructors.
var (
	// NewTopology creates an empty topology with n switches.
	NewTopology = topology.New
	// FatTree builds the k-ary fat-tree datacenter topology.
	FatTree = topology.FatTree
	// SmallWorld builds a Watts-Strogatz small-world graph.
	SmallWorld = topology.SmallWorld
	// WAN builds a Topology-Zoo-like wide-area graph.
	WAN = topology.WAN
	// Abilene is the real 11-node Internet2 backbone.
	Abilene = topology.Abilene
)

// Configuration helpers.
var (
	// NewConfig creates an empty configuration.
	NewConfig = config.New
	// InstallPath routes a class along a switch path.
	InstallPath = config.InstallPath
	// PathOf traces a class's forwarding path through a configuration.
	PathOf = config.PathOf
	// Diff lists the switches whose tables differ.
	Diff = config.Diff
)

// Stream constructors (see DESIGN.md "Session architecture").
var (
	// OpenStream decodes a JSONL scenario stream (header + reroute
	// deltas) for cmd/netupdate -stream and library use.
	OpenStream = config.OpenStream
	// RollingUpdates random-walks diamond targets over one topology, the
	// generated steady-state workload for long-lived sessions.
	RollingUpdates = config.RollingUpdates
	// RerouteClass replaces one class's forwarding state with a new path.
	RerouteClass = config.RerouteClass
)

// Scenario generators from the paper's evaluation.
var (
	// Diamonds builds the diamond-update workload of Section 6.
	Diamonds = config.Diamonds
	// Infeasible builds the switch-granularity-impossible workload of
	// Figure 8(h).
	Infeasible = config.Infeasible
	// MultiRegion builds k independent diamond regions plus optional
	// cross-traffic classes that couple them; see DESIGN.md
	// "Decomposition layer".
	MultiRegion = config.MultiRegion
	// Fig1RedGreen, Fig1RedBlue, Fig1RedBlueWaypoint are the Overview
	// scenarios on the Figure 1 datacenter; Fig1Topology builds the bare
	// topology with its named nodes.
	Fig1RedGreen        = config.Fig1RedGreen
	Fig1RedBlue         = config.Fig1RedBlue
	Fig1RedBlueWaypoint = config.Fig1RedBlueWaypoint
	Fig1Topology        = config.Fig1Topology
)

// TwoPhasePlan builds the two-phase (consistent) update baseline for a
// scenario, as in Figure 2.
func TwoPhasePlan(sc *Scenario) ([]Command, map[int]int) {
	p := twophase.Build(sc)
	return p.Commands, p.PeakRules
}

// NaivePlan builds the unsynchronized worst-order update baseline.
func NaivePlan(sc *Scenario) []Command { return twophase.Naive(sc) }

// Simulate runs the discrete-event simulator: probes are injected for
// every class while the command schedule executes.
func Simulate(topo *Topology, init *Config, cmds []Command, classes []Class, p SimParams) *SimResult {
	return sim.Run(topo, init, cmds, classes, p)
}

// SimulateDAG runs the plan decentralized: each switch commits its update
// as soon as its dependency-DAG predecessors' acks are visible (drain
// edges additionally wait for the predecessor's pre-commit traffic to
// leave the network), with no central controller schedule. Compare
// SimResult.CompleteAt against Simulate over plan.Commands() for the
// completion-time gap.
func SimulateDAG(topo *Topology, init *Config, plan *Plan, classes []Class, p SimParams) *SimResult {
	return sim.RunPlanDAG(topo, init, plan, classes, p)
}
