// Command netupdatelb is the sharding router for a fleet of netupdated
// replicas: tenants are placed on a consistent-hash ring keyed by their
// spec fingerprint, streaming traffic is proxied to each tenant's owner,
// and ring changes (scale-up, drain) migrate affected tenants with their
// session snapshots, so warm state moves instead of being re-earned.
//
//	netupdatelb -addr :9090 -replicas http://10.0.0.1:8080,http://10.0.0.2:8080
//
// The router speaks the replica API unchanged — clients point at the
// router exactly as they would at a single netupdated — plus the ring
// administration surface:
//
//	GET    /lb/replicas            ring membership and tenant placement
//	POST   /lb/replicas            add a replica {"url": ...}; rebalances
//	DELETE /lb/replicas?url=U      drain U's tenants away, then remove it
//	GET    /metrics                router counters (Prometheus text)
//
// Clients that prefer to skip the proxy hop can shard themselves:
// netupdate -stream -connect URL,URL,... builds the same ring from the
// same replica list and talks straight to its tenant's owner.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"netupdate/internal/obs"
	"netupdate/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":9090", "listen address")
		replicas = flag.String("replicas", "", "comma-separated netupdated base URLs forming the initial ring")
		vnodes   = flag.Int("vnodes", server.DefaultVirtualNodes, "virtual nodes per replica on the hash ring")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this extra address (e.g. localhost:6061); empty disables profiling")
	)
	flag.Parse()
	if err := run(*addr, *replicas, *vnodes, *pprof); err != nil {
		fmt.Fprintf(os.Stderr, "netupdatelb: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, replicas string, vnodes int, pprofAddr string) error {
	var urls []string
	for _, u := range strings.Split(replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("no replicas: pass -replicas http://host:port[,...]")
	}
	lb, err := server.NewLB(urls, vnodes)
	if err != nil {
		return err
	}
	if pprofAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "netupdatelb: pprof on %s\n", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, obs.PprofHandler()); err != nil {
				fmt.Fprintf(os.Stderr, "netupdatelb: pprof: %v\n", err)
			}
		}()
	}
	fmt.Fprintf(os.Stderr, "netupdatelb: routing %d replicas on %s (vnodes=%d)\n", len(urls), addr, vnodes)
	return http.ListenAndServe(addr, lb.Handler())
}
