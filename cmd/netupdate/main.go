// Command netupdate synthesizes a correct network update sequence from a
// JSON scenario file (see internal/config.ScenarioFile for the format):
//
//	netupdate -f scenario.json
//	netupdate -f scenario.json -checker batch -rules -timeout 30s
//	netupdate -f scenario.json -parallel 8 -first-plan
//	netupdate -f scenario.json -verify
//
// On success it prints the synthesized command sequence; with -verify it
// only checks the initial and final configurations against the
// specifications.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
)

func main() {
	var (
		file      = flag.String("f", "", "scenario JSON file (required)")
		checker   = flag.String("checker", "incremental", "backend: incremental|batch|nusmv|netplumber")
		rules     = flag.Bool("rules", false, "use rule granularity")
		twoSimple = flag.Bool("2simple", false, "allow two updates per switch (merge then finalize)")
		noWaits   = flag.Bool("no-wait-removal", false, "keep all waits")
		timeout   = flag.Duration("timeout", 10*time.Minute, "search timeout")
		parallel  = flag.Int("parallel", 0, "search workers: 0 = one per CPU, 1 = sequential")
		firstPlan = flag.Bool("first-plan", false, "return the first plan any worker finds (faster, nondeterministic)")
		verify    = flag.Bool("verify", false, "only verify the endpoint configurations")
		quiet     = flag.Bool("q", false, "suppress statistics")
	)
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "netupdate: -f scenario.json is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*file, *checker, *rules, *twoSimple, *noWaits, *timeout, *parallel, *firstPlan, *verify, *quiet); err != nil {
		fmt.Fprintf(os.Stderr, "netupdate: %v\n", err)
		os.Exit(1)
	}
}

func run(file, checker string, rules, twoSimple, noWaits bool, timeout time.Duration, parallel int, firstPlan, verifyOnly, quiet bool) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := config.LoadScenario(f)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %q: %d switches, %d classes, %d updating\n",
		sc.Name, sc.Topo.NumSwitches(), len(sc.Specs), len(sc.UpdatingSwitches()))
	if verifyOnly {
		fmt.Println("endpoint configurations verified (paths are loop-free and delivered)")
		return nil
	}
	opts := core.Options{
		RuleGranularity: rules,
		TwoSimple:       twoSimple,
		NoWaitRemoval:   noWaits,
		Timeout:         timeout,
		Parallelism:     parallel,
		FirstPlanWins:   firstPlan,
	}
	switch checker {
	case "incremental":
		opts.Checker = core.CheckerIncremental
	case "batch":
		opts.Checker = core.CheckerBatch
	case "nusmv":
		opts.Checker = core.CheckerNuSMV
	case "netplumber":
		opts.Checker = core.CheckerNetPlumber
	default:
		return fmt.Errorf("unknown checker %q", checker)
	}
	plan, err := core.Synthesize(sc, opts)
	if errors.Is(err, core.ErrNoOrdering) {
		fmt.Println("result: IMPOSSIBLE — no correct update ordering exists at this granularity")
		if !rules {
			fmt.Println("hint: retry with -rules (rule granularity) or -2simple (two updates per switch)")
		}
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Println("result: update sequence found")
	for i, s := range plan.Steps {
		fmt.Printf("  %2d. %s\n", i+1, s)
	}
	if !quiet {
		st := plan.Stats
		fmt.Printf("stats: %d units, %d checks, %d cex learned, %d pruned, waits %d -> %d, %.3fs\n",
			st.Units, st.Checks, st.CexLearned, st.WrongPruned+st.VisitedPruned,
			st.WaitsBefore, st.WaitsAfter, st.Elapsed.Seconds())
	}
	return nil
}
