// Command netupdate synthesizes a correct network update sequence from a
// JSON scenario file (see internal/config.ScenarioFile for the format):
//
//	netupdate -f scenario.json
//	netupdate -f scenario.json -checker batch -rules -timeout 30s
//	netupdate -f scenario.json -parallel 8 -first-plan
//	netupdate -f scenario.json -dag -min-completion
//	netupdate -f scenario.json -verify
//	netupdate -f scenario.json -faults crash=3@1
//	netupdate -f scenario.json -faults crash=3@1 -repair
//
// On success it prints the synthesized command sequence; with -verify it
// only checks the initial and final configurations against the
// specifications. -dag additionally prints the plan's dependency DAG
// (which updates must commit before which, waits as drain-marked edges)
// for decentralized execution, and -min-completion makes estimated
// completion time under the DAG latency model a tie-breaker among valid
// plans.
//
// -faults executes the synthesized plan on the decentralized simulator
// under seeded fault injection (see internal/sim.ParseFaults:
// crash=SW@N, ackloss=P, ackdup=P, installloss=P, seed=N) and reports
// the outcome — a crashed switch or exhausted install retries stall the
// execution with a partial-commit report naming exactly which plan
// nodes took effect. Adding -repair then resynthesizes from that
// partially-committed state (core.Session.Repair, with its 2-simple and
// scoped-two-phase fallback ladder) and executes the repair plan to
// completion.
//
// With -stream the command becomes a long-lived synthesis service: it
// reads a JSONL scenario stream from stdin (a header describing the
// topology, classes, and initial routes, then one reroute delta per line
// — see internal/config.StreamHeader) and emits one JSON plan line per
// delta on stdout, keeping the synthesis session warm between targets:
//
//	netupdate -stream < stream.jsonl
//	netupdate -stream -checker incremental -parallel 4 < stream.jsonl
//	netupdate -stream -learn-file learned.json < stream.jsonl
//
// -learn-file persists the stream session's plan cache and learned
// search state (see internal/core.PlanCache) as a JSON snapshot: loaded
// before serving, saved atomically on exit, so repeat instances across
// restarts are served by replay-verification instead of a fresh search.
// -no-plan-cache disables the cache entirely.
//
// Stream mode is a thin stdin/stdout client of the internal/server pool
// — the same serving layer, wire format, and admission control as the
// netupdated daemon. SIGINT/SIGTERM shut it down gracefully: input stops,
// the in-flight synthesis finishes, and its plan line is flushed before
// exit.
//
// With -connect the stream is served by remote netupdated replicas
// instead of an in-process pool:
//
//	netupdate -stream -connect http://host:8080 < stream.jsonl
//	netupdate -stream -connect http://h1:8080,http://h2:8080 < stream.jsonl
//
// Given several URLs the client shards itself: it places its tenant on
// the same consistent-hash ring the netupdatelb router uses (so routed
// and direct clients agree on placement) and streams straight to the
// owner replica, skipping the proxy hop. Learning then lives server-side;
// -learn-file cannot be combined with -connect.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netupdate/internal/atomicio"
	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/obs"
	"netupdate/internal/server"
	"netupdate/internal/sim"
)

func main() {
	var (
		file      = flag.String("f", "", "scenario JSON file (required unless -stream)")
		stream    = flag.Bool("stream", false, "serve a JSONL scenario stream from stdin, emitting JSON plan lines")
		checker   = flag.String("checker", "incremental", "backend: incremental|batch|nusmv|netplumber")
		rules     = flag.Bool("rules", false, "use rule granularity")
		twoSimple = flag.Bool("2simple", false, "allow two updates per switch (merge then finalize)")
		noWaits   = flag.Bool("no-wait-removal", false, "keep all waits")
		noDecomp  = flag.Bool("no-decompose", false, "always run one joint search instead of partitioning independent update regions")
		timeout   = flag.Duration("timeout", 10*time.Minute, "search timeout (per synthesis in -stream mode)")
		parallel  = flag.Int("parallel", 0, "search workers: 0 = one per CPU, 1 = sequential")
		firstPlan = flag.Bool("first-plan", false, "return the first plan any worker finds (faster, nondeterministic)")
		minCompl  = flag.Bool("min-completion", false, "tie-break among valid plans by completion time under the dependency-DAG latency model (sequential enumeration)")
		showDAG   = flag.Bool("dag", false, "print the plan's dependency DAG (per-step predecessors, drain edges)")
		verify    = flag.Bool("verify", false, "only verify the endpoint configurations")
		faults    = flag.String("faults", "", "execute the plan under injected faults, e.g. crash=3@1,ackloss=0.2,seed=42")
		doRepair  = flag.Bool("repair", false, "after a stalled -faults execution, resynthesize from the partially-committed state and finish the update")
		noCache   = flag.Bool("no-plan-cache", false, "disable the verification-first plan cache (every request pays the full search)")
		learnFile = flag.String("learn-file", "", "with -stream: load the plan cache and learned state from this JSON file at startup and save it back on exit")
		connect   = flag.String("connect", "", "with -stream: serve via remote netupdated replica(s), comma-separated base URLs; several shard client-side by tenant fingerprint")
		traceOut  = flag.String("trace-out", "", "record a synthesis trace and write it to this file: Chrome trace-event JSON (load via chrome://tracing), or span JSONL when the path ends in .jsonl")
		quiet     = flag.Bool("q", false, "suppress statistics")
	)
	flag.Parse()
	opts := core.Options{
		RuleGranularity:        *rules,
		TwoSimple:              *twoSimple,
		NoWaitRemoval:          *noWaits,
		NoDecomposition:        *noDecomp,
		Timeout:                *timeout,
		Parallelism:            *parallel,
		FirstPlanWins:          *firstPlan,
		MinimizeCompletionTime: *minCompl,
		NoPlanCache:            *noCache,
		Trace:                  *traceOut != "",
	}
	switch *checker {
	case "incremental":
		opts.Checker = core.CheckerIncremental
	case "batch":
		opts.Checker = core.CheckerBatch
	case "nusmv":
		opts.Checker = core.CheckerNuSMV
	case "netplumber":
		opts.Checker = core.CheckerNetPlumber
	default:
		fmt.Fprintf(os.Stderr, "netupdate: unknown checker %q\n", *checker)
		os.Exit(2)
	}
	if *doRepair && *faults == "" {
		fmt.Fprintln(os.Stderr, "netupdate: -repair recovers a stalled -faults execution; it requires -faults")
		os.Exit(2)
	}
	if *faults != "" && *verify {
		fmt.Fprintln(os.Stderr, "netupdate: -faults executes the synthesized plan; it cannot be combined with -verify")
		os.Exit(2)
	}
	if *stream {
		if *file != "" || *verify || *faults != "" {
			fmt.Fprintln(os.Stderr, "netupdate: -stream reads from stdin and synthesizes every delta; it cannot be combined with -f, -verify, or -faults")
			os.Exit(2)
		}
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "netupdate: -trace-out records one-shot syntheses; in -stream mode request traces ride on the result lines (daemon ?trace=1)")
			os.Exit(2)
		}
		if *connect != "" {
			if *learnFile != "" {
				fmt.Fprintln(os.Stderr, "netupdate: with -connect the replica owns the learned state; -learn-file cannot be combined with it")
				os.Exit(2)
			}
			if err := runStreamRemote(*connect, opts, *quiet); err != nil {
				fmt.Fprintf(os.Stderr, "netupdate: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := runStream(opts, *quiet, *learnFile); err != nil {
			fmt.Fprintf(os.Stderr, "netupdate: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *connect != "" {
		fmt.Fprintln(os.Stderr, "netupdate: -connect streams to a remote replica; it requires -stream")
		os.Exit(2)
	}
	if *learnFile != "" {
		fmt.Fprintln(os.Stderr, "netupdate: -learn-file persists the stream session's plan cache; it requires -stream")
		os.Exit(2)
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "netupdate: -f scenario.json is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*file, opts, *rules, *verify, *quiet, *showDAG, *faults, *doRepair, *traceOut); err != nil {
		fmt.Fprintf(os.Stderr, "netupdate: %v\n", err)
		os.Exit(1)
	}
}

func run(file string, opts core.Options, rules, verifyOnly, quiet, showDAG bool, faultSpec string, doRepair bool, traceOut string) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := config.LoadScenario(f)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %q: %d switches, %d classes, %d updating\n",
		sc.Name, sc.Topo.NumSwitches(), len(sc.Specs), len(sc.UpdatingSwitches()))
	if verifyOnly {
		fmt.Println("endpoint configurations verified (paths are loop-free and delivered)")
		return nil
	}
	// -repair replans from mid-execution state, which needs the session
	// form of the engine; a plain synthesis produces the identical plan.
	var sess *core.Session
	var plan *core.Plan
	if doRepair {
		sess, err = core.NewSession(sc.Topo, sc.Init, sc.Specs, opts)
		if err == nil {
			plan, err = sess.Synthesize(sc.Final)
		}
	} else {
		plan, err = core.Synthesize(sc, opts)
	}
	if errors.Is(err, core.ErrNoOrdering) {
		fmt.Println("result: IMPOSSIBLE — no correct update ordering exists at this granularity")
		if !rules {
			fmt.Println("hint: retry with -rules (rule granularity) or -2simple (two updates per switch)")
		}
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Println("result: update sequence found")
	for i, s := range plan.Steps {
		fmt.Printf("  %2d. %s\n", i+1, s)
	}
	if showDAG && plan.DAG != nil {
		printDAG(plan)
	}
	if !quiet {
		st := plan.Stats
		fmt.Printf("stats: %d units in %d component(s), %d checks (%d skipped), %d cex learned, %d pruned, waits %d -> %d, dag %dx%d, %.3fs\n",
			st.Units, st.Components, st.Checks, st.ClassSkips, st.CexLearned, st.WrongPruned+st.VisitedPruned,
			st.WaitsBefore, st.WaitsAfter, st.DAGDepth, st.DAGWidth, st.Elapsed.Seconds())
	}
	var traces []*obs.TraceData
	if plan.Trace != nil {
		traces = append(traces, plan.Trace)
	}
	if faultSpec != "" {
		var tp *[]*obs.TraceData
		if traceOut != "" {
			tp = &traces
		}
		if err := executeFaults(sc, plan, sess, faultSpec, quiet, tp); err != nil {
			return err
		}
	}
	if traceOut != "" {
		if err := writeTraceFile(traceOut, traces); err != nil {
			return err
		}
		fmt.Printf("trace: %d span(s) in %d track(s) written to %s\n", traceSpanCount(traces), len(traces), traceOut)
	}
	return nil
}

// traceSpanCount totals the spans across the recorded tracks.
func traceSpanCount(traces []*obs.TraceData) int {
	n := 0
	for _, d := range traces {
		n += len(d.Spans)
	}
	return n
}

// writeTraceFile renders the recorded tracks — the synthesis trace plus,
// under -faults, the simulated executions and the repair — as one Chrome
// trace-event file (each track its own pid), or as span JSONL when the
// path ends in .jsonl.
func writeTraceFile(path string, traces []*obs.TraceData) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".jsonl") {
			for _, d := range traces {
				if err := d.WriteJSONL(w); err != nil {
					return err
				}
			}
			return nil
		}
		return obs.WriteChrome(w, traces...)
	})
}

// executeFaults runs the synthesized plan on the decentralized DAG
// executor under the parsed fault injection and reports the outcome.
// When the execution stalls and a session was opened (-repair), it
// resynthesizes from the partially-committed state via the repair
// ladder and executes the repair plan from there — fault-free, the
// transient-failure recovery story (a permanently dead switch would
// instead get a superseding target via Repair's newTarget).
func executeFaults(sc *config.Scenario, plan *core.Plan, sess *core.Session, faultSpec string, quiet bool, traces *[]*obs.TraceData) error {
	f, err := sim.ParseFaults(faultSpec)
	if err != nil {
		return err
	}
	classes := make([]config.Class, len(sc.Specs))
	for i, cs := range sc.Specs {
		classes[i] = cs.Class
	}
	p := sim.Params{Faults: f}
	var execTr *obs.Trace
	if traces != nil {
		execTr = obs.NewTrace(0)
		execTr.SetRequestID("execution")
		p.Trace = execTr
	}
	res := sim.RunPlanDAG(sc.Topo, sc.Init, plan, classes, p)
	if execTr != nil {
		*traces = append(*traces, execTr.Snapshot())
	}
	n := len(plan.Updates())
	fmt.Printf("execution: %d/%d nodes committed, %d/%d probes delivered (%d lost), %d install retries, %d acks lost\n",
		len(res.Committed), n, res.Delivered, res.Sent, res.Lost, res.InstallRetries, res.AcksLost)
	if !res.Stalled {
		fmt.Printf("execution complete at %v\n", res.CompleteAt)
		return nil
	}
	fmt.Printf("execution STALLED: committed nodes %v\n", res.Committed)
	if sess == nil {
		fmt.Println("hint: rerun with -repair to resynthesize from the partially-committed state")
		return nil
	}

	rep, err := sess.Repair(res.Committed, nil)
	if err != nil {
		return fmt.Errorf("repair: %w", err)
	}
	if traces != nil && rep.Trace != nil {
		*traces = append(*traces, rep.Trace)
	}
	fmt.Println("repair: update sequence found from the partially-committed state")
	for i, s := range rep.Steps {
		fmt.Printf("  %2d. %s\n", i+1, s)
	}
	if st := rep.Stats; !quiet && (st.EscalatedComponents > 0 || st.TwoPhaseComponents > 0) {
		fmt.Printf("repair: fallback ladder engaged (%d component(s) escalated to 2-simple, %d scoped two-phase)\n",
			st.EscalatedComponents, st.TwoPhaseComponents)
	}
	crash := plan.ConfigAfter(sc.Init, res.Committed)
	p2 := sim.Params{}
	var repTr *obs.Trace
	if traces != nil {
		repTr = obs.NewTrace(0)
		repTr.SetRequestID("repair-execution")
		p2.Trace = repTr
	}
	res2 := sim.RunPlanDAG(sc.Topo, crash, rep, classes, p2)
	if repTr != nil {
		*traces = append(*traces, repTr.Snapshot())
	}
	fmt.Printf("repair executed: %d/%d probes delivered (%d lost), update complete at %v\n",
		res2.Delivered, res2.Sent, res2.Lost, res2.CompleteAt)
	return nil
}

// printDAG renders the dependency-DAG form of the plan: one line per
// update node with the predecessor nodes that must commit first; drain
// predecessors (whose pre-commit traffic must also leave the network) are
// marked with '!'. Any commit order respecting these edges is
// trace-equivalent to the sequential plan above.
func printDAG(plan *core.Plan) {
	d := plan.DAG
	fmt.Printf("dependency DAG: depth %d, width %d, %d drain edge(s)\n",
		d.Depth, d.Width, d.DrainEdges())
	ups := plan.Updates()
	for j, st := range ups {
		fmt.Printf("  n%-2d %-24s after:", j, st.String())
		if len(d.Preds[j]) == 0 {
			fmt.Print(" (none)")
		}
		for _, i := range d.Preds[j] {
			mark := ""
			for _, dr := range d.Drain[j] {
				if dr == i {
					mark = "!"
				}
			}
			fmt.Printf(" n%d%s", i, mark)
		}
		fmt.Println()
	}
}

// runStream serves the stdin JSONL stream as a client of a single-tenant
// internal/server pool: the stream header registers the tenant, every
// delta is synthesized through the pool's warm session, and one JSON
// result line (the daemon's wire format, internal/server.Result) is
// emitted per delta. Bad deltas do not kill the stream: semantically
// invalid ones (config.ErrBadDelta) and infeasible or violating targets
// are reported — with their input line — and skipped. Only JSON decode
// errors, after which the stream position is unreliable, are terminal.
// SIGINT/SIGTERM stop input, finish the in-flight synthesis, and flush
// its result line before exiting.
func runStream(opts core.Options, quiet bool, learnFile string) error {
	pool := server.NewPool(server.PoolOptions{
		Workers:     1, // one tenant, single-flight: more would idle
		MaxSessions: 1,
		QueueDepth:  1,
	})
	if learnFile != "" {
		if err := loadLearnFile(pool, learnFile); err != nil {
			return err
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	out := bufio.NewWriter(os.Stdout)
	err := server.ServeStdio(ctx, os.Stdin, out, os.Stderr, pool, opts, quiet)
	if ferr := out.Flush(); err == nil {
		err = ferr
	}
	closeCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if cerr := pool.Close(closeCtx); err == nil {
		err = cerr
	}
	if learnFile != "" {
		if serr := saveLearnFile(pool, learnFile); err == nil {
			err = serr
		}
	}
	return err
}

// loadLearnFile restores the pool's plan cache and learned state from a
// previous run's snapshot; a missing file is a cold start, not an error.
func loadLearnFile(pool *server.Pool, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return pool.LoadLearning(f)
}

// saveLearnFile writes the pool's learning snapshot atomically, so an
// interrupted save never truncates the previous state.
func saveLearnFile(pool *server.Pool, path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return pool.SaveLearning(w)
	})
}

// runStreamRemote serves the stdin stream through remote netupdated
// replicas: the header registers the tenant on the replica the shared
// consistent-hash ring assigns it (identical placement to what a
// netupdatelb router over the same replica list would compute), and the
// remaining stdin lines are streamed as one duplex synthesize exchange,
// result lines copied to stdout as they arrive.
func runStreamRemote(connect string, opts core.Options, quiet bool) error {
	var replicas []string
	for _, u := range strings.Split(connect, ",") {
		if u = strings.TrimSpace(u); u != "" {
			replicas = append(replicas, strings.TrimRight(u, "/"))
		}
	}
	if len(replicas) == 0 {
		return fmt.Errorf("-connect: no replica URLs")
	}

	dec := json.NewDecoder(os.Stdin)
	var hdr config.StreamHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("stream header: %w", err)
	}
	spec := &server.TenantSpec{StreamHeader: hdr, Options: server.OptionsSpecOf(opts)}
	id, err := spec.Fingerprint()
	if err != nil {
		return err
	}
	ring := server.NewRing(0)
	for _, r := range replicas {
		ring.Add(r)
	}
	owner, _ := ring.Owner(id)

	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(owner+"/v1/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("registering with %s: %w", owner, err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("registering with %s: status %d: %s", owner, resp.StatusCode, msg)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "netupdate: tenant %s on %s (%d replica(s))\n", id, owner, len(replicas))
	}

	// The decoder may have buffered bytes past the header; replay them
	// ahead of the rest of stdin as the synthesize request body.
	rest := io.MultiReader(dec.Buffered(), os.Stdin)
	req, err := http.NewRequest(http.MethodPost, owner+"/v1/tenants/"+id+"/synthesize", rest)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("streaming to %s: %w", owner, err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(sresp.Body)
		return fmt.Errorf("streaming to %s: status %d: %s", owner, sresp.StatusCode, msg)
	}
	_, err = io.Copy(os.Stdout, sresp.Body)
	return err
}
