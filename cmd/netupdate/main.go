// Command netupdate synthesizes a correct network update sequence from a
// JSON scenario file (see internal/config.ScenarioFile for the format):
//
//	netupdate -f scenario.json
//	netupdate -f scenario.json -checker batch -rules -timeout 30s
//	netupdate -f scenario.json -parallel 8 -first-plan
//	netupdate -f scenario.json -verify
//
// On success it prints the synthesized command sequence; with -verify it
// only checks the initial and final configurations against the
// specifications.
//
// With -stream the command becomes a long-lived synthesis service: it
// reads a JSONL scenario stream from stdin (a header describing the
// topology, classes, and initial routes, then one reroute delta per line
// — see internal/config.StreamHeader) and emits one JSON plan line per
// delta on stdout, keeping the synthesis session warm between targets:
//
//	netupdate -stream < stream.jsonl
//	netupdate -stream -checker incremental -parallel 4 < stream.jsonl
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
)

func main() {
	var (
		file      = flag.String("f", "", "scenario JSON file (required unless -stream)")
		stream    = flag.Bool("stream", false, "serve a JSONL scenario stream from stdin, emitting JSON plan lines")
		checker   = flag.String("checker", "incremental", "backend: incremental|batch|nusmv|netplumber")
		rules     = flag.Bool("rules", false, "use rule granularity")
		twoSimple = flag.Bool("2simple", false, "allow two updates per switch (merge then finalize)")
		noWaits   = flag.Bool("no-wait-removal", false, "keep all waits")
		noDecomp  = flag.Bool("no-decompose", false, "always run one joint search instead of partitioning independent update regions")
		timeout   = flag.Duration("timeout", 10*time.Minute, "search timeout (per synthesis in -stream mode)")
		parallel  = flag.Int("parallel", 0, "search workers: 0 = one per CPU, 1 = sequential")
		firstPlan = flag.Bool("first-plan", false, "return the first plan any worker finds (faster, nondeterministic)")
		verify    = flag.Bool("verify", false, "only verify the endpoint configurations")
		quiet     = flag.Bool("q", false, "suppress statistics")
	)
	flag.Parse()
	opts := core.Options{
		RuleGranularity: *rules,
		TwoSimple:       *twoSimple,
		NoWaitRemoval:   *noWaits,
		NoDecomposition: *noDecomp,
		Timeout:         *timeout,
		Parallelism:     *parallel,
		FirstPlanWins:   *firstPlan,
	}
	switch *checker {
	case "incremental":
		opts.Checker = core.CheckerIncremental
	case "batch":
		opts.Checker = core.CheckerBatch
	case "nusmv":
		opts.Checker = core.CheckerNuSMV
	case "netplumber":
		opts.Checker = core.CheckerNetPlumber
	default:
		fmt.Fprintf(os.Stderr, "netupdate: unknown checker %q\n", *checker)
		os.Exit(2)
	}
	if *stream {
		if *file != "" || *verify {
			fmt.Fprintln(os.Stderr, "netupdate: -stream reads from stdin and synthesizes every delta; it cannot be combined with -f or -verify")
			os.Exit(2)
		}
		if err := runStream(os.Stdin, os.Stdout, opts, *quiet); err != nil {
			fmt.Fprintf(os.Stderr, "netupdate: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "netupdate: -f scenario.json is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*file, opts, *rules, *verify, *quiet); err != nil {
		fmt.Fprintf(os.Stderr, "netupdate: %v\n", err)
		os.Exit(1)
	}
}

func run(file string, opts core.Options, rules, verifyOnly, quiet bool) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := config.LoadScenario(f)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %q: %d switches, %d classes, %d updating\n",
		sc.Name, sc.Topo.NumSwitches(), len(sc.Specs), len(sc.UpdatingSwitches()))
	if verifyOnly {
		fmt.Println("endpoint configurations verified (paths are loop-free and delivered)")
		return nil
	}
	plan, err := core.Synthesize(sc, opts)
	if errors.Is(err, core.ErrNoOrdering) {
		fmt.Println("result: IMPOSSIBLE — no correct update ordering exists at this granularity")
		if !rules {
			fmt.Println("hint: retry with -rules (rule granularity) or -2simple (two updates per switch)")
		}
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Println("result: update sequence found")
	for i, s := range plan.Steps {
		fmt.Printf("  %2d. %s\n", i+1, s)
	}
	if !quiet {
		st := plan.Stats
		fmt.Printf("stats: %d units in %d component(s), %d checks (%d skipped), %d cex learned, %d pruned, waits %d -> %d, %.3fs\n",
			st.Units, st.Components, st.Checks, st.ClassSkips, st.CexLearned, st.WrongPruned+st.VisitedPruned,
			st.WaitsBefore, st.WaitsAfter, st.Elapsed.Seconds())
	}
	return nil
}

// streamResult is one output line of -stream mode.
type streamResult struct {
	Step   int        `json:"step"`
	Result string     `json:"result"` // "plan" | "impossible" | "error"
	Steps  []stepJSON `json:"steps,omitempty"`
	Error  string     `json:"error,omitempty"`
	Stats  *statsJSON `json:"stats,omitempty"`
}

// stepJSON is one plan element. Switch is a pointer so switch 0 is
// emitted while wait barriers carry no switch at all.
type stepJSON struct {
	Op     string `json:"op"` // "update" | "wait" | "add" | "del"
	Switch *int   `json:"switch,omitempty"`
	Rule   string `json:"rule,omitempty"`
}

// statsJSON is the per-synthesis work summary.
type statsJSON struct {
	Units      int     `json:"units"`
	Components int     `json:"components"`
	Checks     int     `json:"checks"`
	ClassSkips int     `json:"classSkips"`
	Waits      int     `json:"waits"`
	ElapsedMS  float64 `json:"elapsedMs"`
}

// runStream serves a JSONL scenario stream over one warm session: every
// decoded delta becomes a synthesis from the session's current
// configuration to the delta's target, and the result is emitted as one
// JSON line. Bad deltas do not kill the stream: semantically invalid
// ones (config.ErrBadDelta) and infeasible or violating targets are
// reported and skipped, leaving the session at its last good
// configuration. Only JSON decode errors — after which the stream
// position is unreliable — are terminal.
func runStream(in io.Reader, out io.Writer, opts core.Options, quiet bool) error {
	s, err := config.OpenStream(in)
	if err != nil {
		return err
	}
	sess, err := core.NewSession(s.Topo(), s.Init(), s.Specs(), opts)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "stream %q: %d switches, %d classes\n",
			s.Name(), s.Topo().NumSwitches(), len(s.Specs()))
	}
	enc := json.NewEncoder(out)
	step := 0
	for {
		tgt, err := s.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, config.ErrBadDelta) {
			step++
			if encErr := enc.Encode(streamResult{
				Step: step, Result: "error", Error: err.Error(),
			}); encErr != nil {
				return encErr
			}
			continue
		}
		if err != nil {
			return err
		}
		step++
		plan, serr := sess.Synthesize(tgt)
		res := streamResult{Step: step}
		switch {
		case serr == nil:
			res.Result = "plan"
			for _, st := range plan.Steps {
				res.Steps = append(res.Steps, stepOf(st))
			}
			res.Stats = &statsJSON{
				Units:      plan.Stats.Units,
				Components: plan.Stats.Components,
				Checks:     plan.Stats.Checks,
				ClassSkips: plan.Stats.ClassSkips,
				Waits:      plan.Stats.WaitsAfter,
				ElapsedMS:  float64(plan.Stats.Elapsed.Microseconds()) / 1000,
			}
		case errors.Is(serr, core.ErrNoOrdering):
			res.Result = "impossible"
		default:
			res.Result = "error"
			res.Error = serr.Error()
		}
		if err := enc.Encode(res); err != nil {
			return err
		}
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "stream done: %d syntheses served\n", step)
	}
	return nil
}

func stepOf(s core.Step) stepJSON {
	if s.Wait {
		return stepJSON{Op: "wait"}
	}
	sw := s.Switch
	switch {
	case s.IsRule && s.RuleAdd:
		return stepJSON{Op: "add", Switch: &sw, Rule: s.Rule.String()}
	case s.IsRule:
		return stepJSON{Op: "del", Switch: &sw, Rule: s.Rule.String()}
	default:
		return stepJSON{Op: "update", Switch: &sw}
	}
}
