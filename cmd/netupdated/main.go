// Command netupdated is the multi-tenant synthesis daemon: it serves the
// warm-session pool of internal/server over HTTP.
//
//	netupdated -addr :8080
//	netupdated -addr :8080 -workers 8 -max-sessions 128 -queue 16 -timeout 30s
//	netupdated -addr :8080 -learn-file /var/lib/netupdate/learned.json
//
// Endpoints (see internal/server for the wire format):
//
//	POST /v1/tenants                   register a scenario, returns {"id": ...}
//	POST /v1/tenants/{id}/synthesize   JSONL deltas in, JSONL plan lines out
//	GET  /v1/tenants/{id}/stats        per-tenant serving summary
//	GET  /metrics                      pool/queue/latency counters
//	GET  /healthz                      liveness
//
// Every plan line carries a "dag" field — the plan's dependency DAG
// (per-step predecessor indexes, drain-marked edges, depth/width) — so
// clients can execute the update decentralized: any commit order that
// respects the edges (waiting out drain edges) is trace-equivalent to the
// sequential step list. Tenants registering with options.minCompletion
// get plans tie-broken by estimated DAG completion time.
//
// Executing clients can post plan-step acknowledgements into the same
// synthesize stream: {"ack":{"step":N}} records that DAG node N
// committed (answered with an "acked" line), and {"ack":{"failed":true,
// "committed":[...]}} reports a stalled execution — a dead switch or
// exhausted install retries — with exactly the dependency-closed set of
// nodes that did commit. The pool then repairs the tenant's warm session
// from that partially-committed configuration (core.Session.Repair, with
// its 2-simple and scoped-two-phase fallback ladder) and answers with a
// "repair" plan line from the crash state to the stranded target.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, lets
// in-flight syntheses finish (bounded by -drain), and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netupdate/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "global synthesis worker budget: 0 = one per CPU")
		maxSessions = flag.Int("max-sessions", server.DefaultMaxSessions, "warm sessions held at once (LRU eviction beyond; negative = unbounded)")
		queue       = flag.Int("queue", server.DefaultQueueDepth, "per-tenant outstanding-request bound (queue-full load shedding beyond)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request deadline when the client sets none (0 = none)")
		drain       = flag.Duration("drain", time.Minute, "shutdown grace for in-flight syntheses")
		learnFile   = flag.String("learn-file", "", "load the shared plan caches and learned state from this JSON snapshot at startup and save them back after draining")
	)
	flag.Parse()
	if err := run(*addr, *workers, *maxSessions, *queue, *timeout, *drain, *learnFile); err != nil {
		fmt.Fprintf(os.Stderr, "netupdated: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers, maxSessions, queue int, timeout, drain time.Duration, learnFile string) error {
	pool := server.NewPool(server.PoolOptions{
		Workers:        workers,
		MaxSessions:    maxSessions,
		QueueDepth:     queue,
		DefaultTimeout: timeout,
	})
	if learnFile != "" {
		if err := loadLearnFile(pool, learnFile); err != nil {
			return err
		}
	}
	srv := &http.Server{Addr: addr, Handler: server.NewHandler(pool)}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "netupdated: serving on %s (workers=%d, max-sessions=%d, queue=%d)\n",
			addr, pool.Stats().Workers, maxSessions, queue)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // bind failure etc.
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "netupdated: signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Shutdown stops the listener and waits for open requests; closing
	// the pool afterwards catches stragglers Shutdown abandoned.
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := pool.Close(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "netupdated: %v\n", err)
	}
	if learnFile != "" {
		if err := saveLearnFile(pool, learnFile); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, "netupdated: drained, bye")
	return nil
}

// loadLearnFile restores the pool's plan caches from a previous run's
// snapshot; a missing file is a cold start, not an error.
func loadLearnFile(pool *server.Pool, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return pool.LoadLearning(f)
}

// saveLearnFile writes the learning snapshot atomically (temp file +
// rename), so an interrupted save never truncates the previous state.
func saveLearnFile(pool *server.Pool, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := pool.SaveLearning(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
