// Command netupdated is the multi-tenant synthesis daemon: it serves the
// warm-session pool of internal/server over HTTP.
//
//	netupdated -addr :8080
//	netupdated -addr :8080 -workers 8 -max-sessions 128 -queue 16 -timeout 30s
//	netupdated -addr :8080 -learn-file /var/lib/netupdate/learned.json
//	netupdated -addr :8080 -snapshot-dir /var/lib/netupdate/snapshots
//
// Endpoints (see internal/server for the wire format):
//
//	POST /v1/tenants                   register a scenario, returns {"id": ...}
//	POST /v1/tenants/{id}/synthesize   JSONL deltas in, JSONL plan lines out
//	GET  /v1/tenants/{id}/stats        per-tenant serving summary
//	GET  /v1/tenants/{id}/snapshot     export the tenant's warm session (binary)
//	PUT  /v1/tenants/{id}/snapshot     install a warm session (tenant migration)
//	GET  /metrics                      pool/queue/latency counters
//	GET  /healthz                      liveness
//
// Every plan line carries a "dag" field — the plan's dependency DAG
// (per-step predecessor indexes, drain-marked edges, depth/width) — so
// clients can execute the update decentralized: any commit order that
// respects the edges (waiting out drain edges) is trace-equivalent to the
// sequential step list. Tenants registering with options.minCompletion
// get plans tie-broken by estimated DAG completion time.
//
// Executing clients can post plan-step acknowledgements into the same
// synthesize stream: {"ack":{"step":N}} records that DAG node N
// committed (answered with an "acked" line), and {"ack":{"failed":true,
// "committed":[...]}} reports a stalled execution — a dead switch or
// exhausted install retries — with exactly the dependency-closed set of
// nodes that did commit. The pool then repairs the tenant's warm session
// from that partially-committed configuration (core.Session.Repair, with
// its 2-simple and scoped-two-phase fallback ladder) and answers with a
// "repair" plan line from the crash state to the stranded target.
//
// With -snapshot-dir the daemon persists every tenant's warm session on
// drain (one <id>.nuss file, written atomically) and restores it when
// the tenant re-registers after a restart — the process comes back with
// its predecessor's warm state and current configurations instead of
// re-warming every tenant cold. The same snapshot format is what the
// sharding router (cmd/netupdatelb) moves between replicas on ring
// changes.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, lets
// in-flight syntheses finish (bounded by -drain), and exits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"netupdate/internal/atomicio"
	"netupdate/internal/obs"
	"netupdate/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "global synthesis worker budget: 0 = one per CPU")
		maxSessions = flag.Int("max-sessions", server.DefaultMaxSessions, "warm sessions held at once (LRU eviction beyond; negative = unbounded)")
		queue       = flag.Int("queue", server.DefaultQueueDepth, "per-tenant outstanding-request bound (queue-full load shedding beyond)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request deadline when the client sets none (0 = none)")
		drain       = flag.Duration("drain", time.Minute, "shutdown grace for in-flight syntheses")
		learnFile   = flag.String("learn-file", "", "load the shared plan caches and learned state from this JSON snapshot at startup and save them back after draining")
		snapshotDir = flag.String("snapshot-dir", "", "persist per-tenant session snapshots here on drain and restore them when tenants re-register")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this extra address (e.g. localhost:6060); empty disables profiling")
	)
	flag.Parse()
	if err := run(*addr, *workers, *maxSessions, *queue, *timeout, *drain, *learnFile, *snapshotDir, *pprofAddr); err != nil {
		fmt.Fprintf(os.Stderr, "netupdated: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers, maxSessions, queue int, timeout, drain time.Duration, learnFile, snapshotDir, pprofAddr string) error {
	pool := server.NewPool(server.PoolOptions{
		Workers:        workers,
		MaxSessions:    maxSessions,
		QueueDepth:     queue,
		DefaultTimeout: timeout,
	})
	if learnFile != "" {
		if err := loadLearnFile(pool, learnFile); err != nil {
			return err
		}
	}
	if snapshotDir != "" {
		if err := os.MkdirAll(snapshotDir, 0o755); err != nil {
			return err
		}
	}
	handler := server.NewHandler(pool)
	if snapshotDir != "" {
		handler = restoreOnRegister(pool, handler, snapshotDir)
	}
	srv := &http.Server{Addr: addr, Handler: handler}

	// Profiling rides on its own opt-in listener so /debug/pprof never
	// shares a port with the client-facing API.
	if pprofAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "netupdated: pprof on %s\n", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, obs.PprofHandler()); err != nil {
				fmt.Fprintf(os.Stderr, "netupdated: pprof: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "netupdated: serving on %s (workers=%d, max-sessions=%d, queue=%d)\n",
			addr, pool.Stats().Workers, maxSessions, queue)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // bind failure etc.
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "netupdated: signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Shutdown stops the listener and waits for open requests; closing
	// the pool afterwards catches stragglers Shutdown abandoned.
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := pool.Close(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "netupdated: %v\n", err)
	}
	if snapshotDir != "" {
		saveSnapshots(pool, snapshotDir)
	}
	if learnFile != "" {
		if err := saveLearnFile(pool, learnFile); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, "netupdated: drained, bye")
	return nil
}

// loadLearnFile restores the pool's plan caches from a previous run's
// snapshot; a missing file is a cold start, not an error.
func loadLearnFile(pool *server.Pool, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return pool.LoadLearning(f)
}

// saveLearnFile writes the learning snapshot atomically, so an
// interrupted save never truncates the previous state.
func saveLearnFile(pool *server.Pool, path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return pool.SaveLearning(w)
	})
}

// saveSnapshots persists every tenant's session snapshot (best effort:
// tenants busy mid-synthesis after the drain grace are skipped).
func saveSnapshots(pool *server.Pool, dir string) {
	for id, img := range pool.SnapshotAll() {
		if err := atomicio.WriteFileBytes(snapshotPath(dir, id), img); err != nil {
			fmt.Fprintf(os.Stderr, "netupdated: snapshot %s: %v\n", id, err)
		}
	}
}

// restoreOnRegister wraps the daemon handler: after a successful tenant
// registration it installs the tenant's persisted snapshot, if one is on
// disk, so a restarted daemon resumes warm exactly where it drained. A
// rejected image (stale format, different spec) is deleted and the
// tenant simply starts cold; the consumed snapshot is removed either way
// so later registrations cannot resurrect an outdated position.
func restoreOnRegister(pool *server.Pool, next http.Handler, dir string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/tenants" {
			next.ServeHTTP(w, r)
			return
		}
		rec := &registerRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		var info server.TenantInfo
		if rec.status >= 300 || json.Unmarshal(rec.body.Bytes(), &info) != nil || info.ID == "" {
			return
		}
		path := snapshotPath(dir, info.ID)
		img, err := os.ReadFile(path)
		if err != nil {
			return // no snapshot for this tenant
		}
		if err := pool.InstallSnapshot(r.Context(), info.ID, img); err != nil {
			fmt.Fprintf(os.Stderr, "netupdated: restoring %s: %v\n", info.ID, err)
		}
		os.Remove(path)
	})
}

// registerRecorder tees the registration response so the wrapper can
// learn the tenant id while the client still receives it unchanged.
type registerRecorder struct {
	http.ResponseWriter
	status int
	body   bytes.Buffer
}

func (r *registerRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *registerRecorder) Write(b []byte) (int, error) {
	r.body.Write(b)
	return r.ResponseWriter.Write(b)
}

func snapshotPath(dir, id string) string {
	return filepath.Join(dir, filepath.Base(id)+".nuss")
}
