// Command experiments regenerates the paper's evaluation figures (Section
// 6) using the benchmark harness:
//
//	experiments -fig all            # everything, small scale
//	experiments -fig 7 -scale full  # Figure 7(a-c) at paper scale
//	experiments -fig 8g -scale full
//	experiments -fig stream -json   # warm-session vs cold synthesis
//
// Available figures: 2a, 2b, 7, 7df, 8g, 8h, 8i, checker, ablation,
// parallel, stream, decomp, server, dag, repair, cache, snapshot, obs,
// all.
// "-fig server" compares warm multi-tenant pool serving against cold
// per-request synthesis. "-fig cache" serves identical flapping traffic
// with and without the verification-first plan cache, reporting the
// fast-path speedup and hit rate.
// "-fig dag" compares central wait-based execution of a synthesized plan
// against decentralized execution of its dependency DAG, by update size.
// "-fig repair" compares warm-session repair after a mid-execution crash
// against cold resynthesis from the same partially-committed state.
// "-fig snapshot" compares cold session rebuild against binary-snapshot
// restore (the pool's eviction-resume decision) by workload size, and
// reports sharded serving throughput through the netupdatelb router by
// replica count.
// "-fig obs" serves the warm rolling stream with tracing off and on and
// reports the observability overhead (ms, allocs, and spans per
// synthesis) — the figure behind BENCH_10.json's ≤5% tracing bound.
// The -scale flag selects problem sizes: "small" finishes
// in seconds, "medium" in minutes, "full" approaches the paper's sizes
// (up to 1500 switches for 8g) and can take much longer. -parallel sets
// the worker count used by every figure run; the default (0) pins the
// figures to the sequential engine so they reproduce the paper's numbers
// regardless of host core count. "-fig parallel" prints a
// sequential-vs-parallel speedup table at the -workers count.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"netupdate/internal/bench"
	"netupdate/internal/core"
)

type scale struct {
	fig7Sizes      []int
	fig7dfSizes    []int
	fig8gSizes     []int
	fig8hSizes     []int
	fig8iSizes     []int
	checkerSize    int
	ablationSize   int
	parSizes       []int
	parWorkers     int
	streamSizes    []int
	streamSteps    int
	decompSizes    []int
	decompRegion   int
	serverTenants  []int
	serverSwitches int
	serverSteps    int
	dagSWSizes     []int
	dagFTSizes     []int
	repairSizes    []int
	cacheTenants   []int
	cacheSwitches  int
	cacheCycles    int
	snapSizes      []int
	snapRegions    int
	shardReplicas  []int
	shardTenants   int
	shardSwitches  int
	shardSteps     int
	timeout        time.Duration
}

var scales = map[string]scale{
	"small": {
		fig7Sizes:   []int{30, 60, 90},
		fig7dfSizes: []int{30, 60},
		fig8gSizes:  []int{40, 80},
		fig8hSizes:  []int{40, 80},
		fig8iSizes:  []int{40, 80},
		checkerSize: 60, ablationSize: 60,
		parSizes:       []int{60, 120},
		streamSizes:    []int{40, 80},
		streamSteps:    8,
		decompSizes:    []int{240, 320},
		decompRegion:   6,
		serverTenants:  []int{4, 8},
		serverSwitches: 40,
		serverSteps:    8,
		dagSWSizes:     []int{160, 240, 320},
		dagFTSizes:     []int{45, 80, 125},
		repairSizes:    []int{160, 240, 320},
		cacheTenants:   []int{2, 4},
		cacheSwitches:  40,
		cacheCycles:    8,
		snapSizes:      []int{240, 480},
		snapRegions:    6,
		shardReplicas:  []int{1, 2},
		shardTenants:   6,
		shardSwitches:  40,
		shardSteps:     6,
		timeout:        time.Minute,
	},
	"medium": {
		fig7Sizes:   []int{50, 100, 200, 300},
		fig7dfSizes: []int{50, 100, 200},
		fig8gSizes:  []int{100, 200, 400},
		fig8hSizes:  []int{100, 200, 400},
		fig8iSizes:  []int{100, 200},
		checkerSize: 200, ablationSize: 150,
		parSizes:       []int{120, 240},
		streamSizes:    []int{80, 160},
		streamSteps:    12,
		decompSizes:    []int{320, 400},
		decompRegion:   8,
		serverTenants:  []int{8, 16},
		serverSwitches: 60,
		serverSteps:    10,
		dagSWSizes:     []int{160, 240, 320, 400},
		dagFTSizes:     []int{45, 80, 125, 180},
		repairSizes:    []int{240, 320, 400},
		cacheTenants:   []int{4, 8},
		cacheSwitches:  60,
		cacheCycles:    10,
		snapSizes:      []int{240, 480, 960},
		snapRegions:    6,
		shardReplicas:  []int{1, 2, 4},
		shardTenants:   8,
		shardSwitches:  60,
		shardSteps:     8,
		timeout:        5 * time.Minute,
	},
	"full": {
		fig7Sizes:   []int{100, 200, 400, 600},
		fig7dfSizes: []int{100, 200, 400, 600},
		fig8gSizes:  []int{200, 400, 800, 1200, 1500},
		fig8hSizes:  []int{200, 400, 800},
		fig8iSizes:  []int{200, 400, 800},
		checkerSize: 400, ablationSize: 300,
		parSizes:       []int{240, 480},
		streamSizes:    []int{200, 400},
		streamSteps:    16,
		decompSizes:    []int{400, 560},
		decompRegion:   10,
		serverTenants:  []int{16, 32},
		serverSwitches: 80,
		serverSteps:    12,
		dagSWSizes:     []int{160, 240, 320, 400, 480},
		dagFTSizes:     []int{80, 125, 180, 245},
		repairSizes:    []int{320, 400, 480, 560},
		cacheTenants:   []int{8, 16},
		cacheSwitches:  80,
		cacheCycles:    16,
		snapSizes:      []int{480, 960, 1440},
		snapRegions:    6,
		shardReplicas:  []int{1, 2, 4},
		shardTenants:   16,
		shardSwitches:  80,
		shardSteps:     10,
		timeout:        10 * time.Minute,
	},
}

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 2a|2b|7|7df|8g|8h|8i|checker|ablation|parallel|stream|decomp|server|dag|repair|cache|snapshot|obs|all")
		scaleFl  = flag.String("scale", "small", "problem scale: small|medium|full")
		parallel = flag.Int("parallel", 0, "search workers for every figure run: 0 = sequential (paper-reproducible default)")
		workers  = flag.Int("workers", 4, "worker count for the -fig parallel comparison")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of formatted tables (for run-over-run diffing)")
	)
	flag.Parse()
	sc, ok := scales[*scaleFl]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleFl)
		os.Exit(2)
	}
	bench.Parallelism = *parallel
	sc.parWorkers = *workers
	tables, err := run(*fig, sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		if err := bench.NewReport(tables).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, t := range tables {
		fmt.Println(t.Format())
	}
}

// run executes the requested figures and returns their tables; output
// formatting (text or JSON) is the caller's concern.
func run(fig string, sc scale) ([]*bench.Table, error) {
	all := fig == "all"
	var out []*bench.Table
	add := func(t *bench.Table, err error) error {
		if err != nil {
			return err
		}
		out = append(out, t)
		return nil
	}
	if all || fig == "2a" {
		if err := add(bench.Fig2a()); err != nil {
			return nil, err
		}
	}
	if all || fig == "2b" {
		if err := add(bench.Fig2b()); err != nil {
			return nil, err
		}
	}
	if all || fig == "7" {
		checkers := []core.CheckerKind{core.CheckerIncremental, core.CheckerBatch, core.CheckerNuSMV}
		for _, fam := range []bench.Family{bench.FamilyZoo, bench.FamilyFatTree, bench.FamilySmallWorld} {
			t, _, err := bench.Fig7(fam, sc.fig7Sizes, checkers, sc.timeout)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
	}
	if all || fig == "7df" {
		for _, fam := range []bench.Family{bench.FamilyZoo, bench.FamilyFatTree, bench.FamilySmallWorld} {
			t, _, err := bench.Fig7Rule(fam, sc.fig7dfSizes, sc.timeout)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
	}
	if all || fig == "8g" {
		t, waits, err := bench.Fig8g(sc.fig8gSizes, sc.timeout)
		if err != nil {
			return nil, err
		}
		out = append(out, t, waits)
	}
	if all || fig == "8h" {
		t, err := bench.Fig8h(sc.fig8hSizes, sc.timeout)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if all || fig == "8i" {
		t, waits, err := bench.Fig8i(sc.fig8iSizes, sc.timeout)
		if err != nil {
			return nil, err
		}
		out = append(out, t, waits)
	}
	if all || fig == "checker" {
		if err := add(bench.CheckerOnly(sc.checkerSize)); err != nil {
			return nil, err
		}
	}
	if all || fig == "ablation" {
		if err := add(bench.Ablation(sc.ablationSize, sc.timeout)); err != nil {
			return nil, err
		}
	}
	if all || fig == "parallel" {
		if err := add(bench.ParallelSpeedup(sc.parSizes, sc.parWorkers, sc.timeout)); err != nil {
			return nil, err
		}
	}
	if all || fig == "stream" {
		if err := add(bench.RollingStreamCompare(sc.streamSizes, sc.streamSteps, sc.timeout)); err != nil {
			return nil, err
		}
	}
	if all || fig == "decomp" {
		if err := add(bench.DecompCompare(sc.decompSizes, sc.decompRegion, sc.timeout)); err != nil {
			return nil, err
		}
	}
	if all || fig == "server" {
		if err := add(bench.ServerCompare(sc.serverTenants, sc.serverSwitches, sc.serverSteps, 4)); err != nil {
			return nil, err
		}
	}
	if all || fig == "dag" {
		if err := add(bench.DAGCompare(sc.dagSWSizes, sc.dagFTSizes, sc.timeout)); err != nil {
			return nil, err
		}
	}
	if all || fig == "repair" {
		if err := add(bench.RepairCompare(sc.repairSizes, sc.timeout)); err != nil {
			return nil, err
		}
	}
	if all || fig == "obs" {
		if err := add(bench.ObsOverheadCompare(sc.streamSizes, sc.streamSteps, sc.timeout)); err != nil {
			return nil, err
		}
	}
	if all || fig == "cache" {
		if err := add(bench.CacheCompare(sc.cacheTenants, sc.cacheSwitches, sc.cacheCycles, 4)); err != nil {
			return nil, err
		}
	}
	if all || fig == "snapshot" {
		if err := add(bench.SnapshotRestoreCompare(sc.snapSizes, sc.snapRegions, sc.timeout)); err != nil {
			return nil, err
		}
		if err := add(bench.ShardCompare(sc.shardReplicas, sc.shardTenants, sc.shardSwitches, sc.shardSteps, 4)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
