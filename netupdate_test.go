package netupdate

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPublicSynthesizeQuickstart(t *testing.T) {
	sc := Fig1RedGreen()
	plan, err := Synthesize(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Updates()) != 2 {
		t.Fatalf("plan = %v", plan)
	}
}

func TestPublicVerify(t *testing.T) {
	sc := Fig1RedGreen()
	ok, cex, err := Verify(sc.Topo, sc.Init, sc.Specs)
	if err != nil || !ok || cex != nil {
		t.Fatalf("initial config should verify: ok=%v cex=%v err=%v", ok, cex, err)
	}
	// Break the config: drop the core's rule.
	broken := sc.Init.Clone()
	_, nodes := fig1Nodes()
	broken.SetTable(nodes.C1, nil)
	ok, cex, err = Verify(sc.Topo, broken, sc.Specs)
	if err != nil {
		t.Fatal(err)
	}
	if ok || cex == nil {
		t.Fatalf("broken config must fail with a counterexample, got ok=%v cex=%v", ok, cex)
	}
	if cex.String() == "" {
		t.Fatal("counterexample should render")
	}
}

func TestPublicVerifyLoop(t *testing.T) {
	topo := NewTopology("loop", 2)
	topo.AddLink(0, 1)
	topo.AddHost(100, 0)
	topo.AddHost(101, 1)
	cl := Class{SrcHost: 100, DstHost: 101}
	cfg := NewConfig()
	p01, _ := topo.PortToward(0, 1)
	p10, _ := topo.PortToward(1, 0)
	cfg.AddRule(0, fwdRule(cl, p01))
	cfg.AddRule(1, fwdRule(cl, p10))
	ok, cex, err := Verify(topo, cfg, []ClassSpec{{Class: cl, Formula: Reachability(0, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if ok || cex == nil {
		t.Fatal("loop must be reported as a counterexample")
	}
}

func TestPublicParseFormula(t *testing.T) {
	f, err := ParseFormula("sw=1 -> F sw=5")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(Reachability(1, 5)) {
		t.Fatalf("parsed %v", f)
	}
	if _, err := ParseFormula("sw="); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestPublicBuildScenarioFromScratch(t *testing.T) {
	// Line topology h100 - 0 - 1 - 2 - h101; move traffic from the direct
	// route to the same route (no-op diff must synthesize trivially).
	topo := NewTopology("line", 3)
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddHost(100, 0)
	topo.AddHost(101, 2)
	cl := Class{SrcHost: 100, DstHost: 101}
	init := NewConfig()
	if err := InstallPath(init, topo, cl, []int{0, 1, 2}, 10); err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{
		Name:  "noop",
		Topo:  topo,
		Init:  init,
		Final: init.Clone(),
		Specs: []ClassSpec{{Class: cl, Formula: Reachability(0, 2)}},
	}
	plan, err := Synthesize(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 {
		t.Fatalf("no-op scenario should produce an empty plan, got %v", plan)
	}
}

func TestPublicTwoPhaseAndSimulate(t *testing.T) {
	sc := Fig1RedGreen()
	cmds, peaks := TwoPhasePlan(sc)
	if len(cmds) == 0 || len(peaks) == 0 {
		t.Fatal("two-phase plan empty")
	}
	classes := []Class{sc.Specs[0].Class}
	res := Simulate(sc.Topo, sc.Init, cmds, classes, SimParams{
		Duration:     200 * time.Millisecond,
		BucketWidth:  20 * time.Millisecond,
		CommandStart: 50 * time.Millisecond,
	})
	if res.Lost != 0 {
		t.Fatalf("two-phase lost %d probes", res.Lost)
	}
	naive := NaivePlan(sc)
	res = Simulate(sc.Topo, sc.Init, naive, classes, SimParams{
		Duration:      400 * time.Millisecond,
		BucketWidth:   20 * time.Millisecond,
		CommandStart:  50 * time.Millisecond,
		UpdateLatency: 100 * time.Millisecond,
	})
	if res.Lost == 0 {
		t.Fatal("naive plan should lose probes")
	}
}

func TestPublicErrors(t *testing.T) {
	topo := SmallWorld(40, 4, 0.3, 21)
	sc, err := Infeasible(topo, infeasibleOpts(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Synthesize(sc, Options{})
	if !errors.Is(err, ErrNoOrdering) {
		t.Fatalf("err = %v, want ErrNoOrdering", err)
	}
}

func TestPublicSynthesizerStream(t *testing.T) {
	topo := SmallWorld(50, 4, 0.3, 9)
	stream, err := RollingUpdates(topo, RollingOptions{
		Pairs: 2, Property: PropReachability, Seed: 9, Steps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sy, err := NewSynthesizer(stream.Topo(), stream.Init(), stream.Specs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		tgt, err := stream.Next()
		if err != nil {
			break // io.EOF
		}
		plan, err := sy.Synthesize(tgt)
		if err != nil {
			t.Fatalf("step %d: %v", steps, err)
		}
		if len(plan.Updates()) == 0 {
			t.Fatalf("step %d: empty plan for a real reroute", steps)
		}
		steps++
	}
	if steps != 4 || sy.Runs() != 4 {
		t.Fatalf("steps = %d, runs = %d, want 4", steps, sy.Runs())
	}
}

// TestSynthesizerConcurrentUseGuard: a Synthesizer is not goroutine-safe;
// an overlapping call must fail fast with ErrConcurrentUse and leave the
// in-flight call (and the session) untouched.
func TestSynthesizerConcurrentUseGuard(t *testing.T) {
	sc := Fig1RedGreen()
	sy, err := NewSynthesizer(sc.Topo, sc.Init, sc.Specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic overlap: mark a call in flight by hand and verify the
	// latecomer is rejected without doing any work.
	sy.inFlight.Store(true)
	if _, err := sy.Synthesize(sc.Final); !errors.Is(err, ErrConcurrentUse) {
		t.Fatalf("err = %v, want ErrConcurrentUse", err)
	}
	if sy.Runs() != 0 {
		t.Fatal("rejected call must not reach the session")
	}
	sy.inFlight.Store(false)

	// And the guard releases: a plain call goes through afterwards, and a
	// hammered Synthesizer never reports anything besides a plan or
	// ErrConcurrentUse (run under -race in CI).
	if _, err := sy.Synthesize(sc.Final); err != nil {
		t.Fatalf("guard stuck: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sy.Synthesize(sc.Final); err != nil && !errors.Is(err, ErrConcurrentUse) {
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
}
