package netupdate

import (
	"netupdate/internal/config"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

func fig1Nodes() (*Topology, Fig1Nodes) { return config.Fig1Topology() }

func fwdRule(cl Class, pt topology.Port) Rule {
	return Rule{
		Priority: 10,
		Match:    cl.Pattern(),
		Actions:  []network.Action{network.Forward(pt)},
	}
}

func infeasibleOpts(gadgets int, seed int64) InfeasibleOptions {
	return InfeasibleOptions{Gadgets: gadgets, Seed: seed}
}
