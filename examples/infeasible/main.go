// Infeasible: the Figure 8(h)/(i) experiment in miniature. Two flows
// swap paths in opposite directions around a diamond, creating a circular
// ordering dependency — no switch-granularity update order exists, and
// the SAT-based early-termination optimization proves it quickly. At
// rule granularity (adds before deletes) the same migration succeeds.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"netupdate"
)

func main() {
	topo := netupdate.SmallWorld(40, 4, 0.3, 21)
	sc, err := netupdate.Infeasible(topo, netupdate.InfeasibleOptions{
		Gadgets: 1,
		Seed:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d classes, %d switches updating\n",
		len(sc.Specs), len(sc.UpdatingSwitches()))
	for _, cs := range sc.Specs {
		pi, _ := netupdate.PathOf(sc.Init, sc.Topo, cs.Class)
		pf, _ := netupdate.PathOf(sc.Final, sc.Topo, cs.Class)
		fmt.Printf("  %-5s %v -> %v\n", cs.Class.Name, pi, pf)
	}

	// Switch granularity: provably impossible.
	start := time.Now()
	_, err = netupdate.Synthesize(sc, netupdate.Options{})
	switch {
	case errors.Is(err, netupdate.ErrNoOrdering):
		fmt.Printf("\nswitch granularity: IMPOSSIBLE (proved in %.3fs)\n",
			time.Since(start).Seconds())
	case err == nil:
		log.Fatal("unexpectedly found a switch-granularity ordering")
	default:
		log.Fatal(err)
	}

	// Rule granularity: adds can precede deletes, breaking the cycle.
	start = time.Now()
	plan, err := netupdate.Synthesize(sc, netupdate.Options{RuleGranularity: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rule granularity: solved in %.3fs with %d rule operations:\n",
		time.Since(start).Seconds(), len(plan.Updates()))
	for i, s := range plan.Steps {
		fmt.Printf("  %2d. %s\n", i+1, s)
	}
}
