// Multiregion: a rolling datacenter-style update touching several
// independent maintenance domains at once. Each region reroutes its own
// diamonds (chained into one interference component by intra-region link
// flows); optional cross-traffic classes span two regions and force their
// updates into one joint ordering problem. The synthesizer's
// decomposition layer partitions the diff along exactly these lines: it
// probes each update unit's interference footprint, splits the units into
// independent components, solves each with its own ORDERUPDATE search,
// and composes the sub-plans — so synthesis cost scales with the largest
// region, not the whole diff.
package main

import (
	"fmt"
	"log"
	"time"

	"netupdate"
)

func main() {
	topo := netupdate.SmallWorld(240, 6, 0.3, 42)
	sc, err := netupdate.MultiRegion(topo, netupdate.MultiRegionOptions{
		Regions:        4,
		PairsPerRegion: 2,
		CrossClasses:   1, // couples regions 0 and 1 into one component
		Property:       netupdate.PropReachability,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-region update: %d switches, %d classes, %d switches updating\n",
		topo.NumSwitches(), len(sc.Specs), len(sc.UpdatingSwitches()))

	start := time.Now()
	plan, err := netupdate.Synthesize(sc, netupdate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st := plan.Stats
	fmt.Printf("synthesized %d steps in %.3fs: %d units across %d independent components\n",
		len(plan.Updates()), time.Since(start).Seconds(), st.Units, st.Components)
	fmt.Printf("footprint probes: %d, checks: %d, waits kept: %d of %d\n",
		st.FootprintProbes, st.Checks, st.WaitsAfter, st.WaitsBefore)
	for i, d := range st.ComponentElapsed {
		fmt.Printf("  component %d solved in %.3fms\n", i, d.Seconds()*1000)
	}

	// The joint baseline: one factorial search over every unit.
	start = time.Now()
	joint, err := netupdate.Synthesize(sc, netupdate.Options{NoDecomposition: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint baseline: %d steps in %.3fs (1 component)\n",
		len(joint.Updates()), time.Since(start).Seconds())
}
