// Middlebox: the paper's red-to-blue scenario (Section 2, "In-flight
// Packets and Waits") — shift H1->H3 traffic from T1-A1-C1-A3-T3 to
// T1-A2-C1-A4-T3 while every packet must traverse one of the scrubbing
// middleboxes A3 or A4. The specification is written in the textual LTL
// syntax; the synthesized plan may need a wait barrier to fence off
// in-flight packets (the paper's sequence is A2, A4, T1, wait, C1).
package main

import (
	"fmt"
	"log"

	"netupdate"
)

func main() {
	sc := netupdate.Fig1RedBlue()
	topo, n := netupdate.Fig1Topology()
	_ = topo

	// Reachability plus either-waypoint, in the concrete spec syntax:
	// the packet must not reach T3 until it has visited A3 or A4, and it
	// must eventually reach T3.
	spec, err := netupdate.ParseFormula(fmt.Sprintf(
		"sw=%d -> ((sw!=%d U ((sw=%d | sw=%d) & F sw=%d)))",
		n.T1, n.T3, n.A3, n.A4, n.T3))
	if err != nil {
		log.Fatal(err)
	}
	sc.Specs[0].Formula = spec

	fmt.Printf("specification: %v\n\n", spec)

	// Verify the endpoints first.
	for name, cfg := range map[string]*netupdate.Config{"initial": sc.Init, "final": sc.Final} {
		ok, cex, err := netupdate.Verify(sc.Topo, cfg, sc.Specs)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			log.Fatalf("%s configuration violates the spec: %v", name, cex)
		}
	}

	plan, err := netupdate.Synthesize(sc, netupdate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synthesized update sequence:")
	for i, s := range plan.Steps {
		fmt.Printf("  %d. %s\n", i+1, s)
	}
	fmt.Printf("\nwaits: %d careful barriers reduced to %d (removal took %.4fs)\n",
		plan.Stats.WaitsBefore, plan.Stats.WaitsAfter,
		plan.Stats.WaitRemovalElapsed.Seconds())

	// Show what a wrong order would do: updating T1 before A2 sends
	// packets into a blackhole at A2.
	bad := sc.Init.Clone()
	bad.SetTable(n.T1, sc.Final.Table(n.T1))
	ok, cex, err := netupdate.Verify(sc.Topo, bad, sc.Specs)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		log.Fatal("expected the premature T1 update to violate the spec")
	}
	fmt.Printf("\ncounterexample for updating T1 first:\n  %v\n", cex)
}
