// Datacenter: planned-maintenance traffic migration on a fat-tree — the
// survey-driven scenario the paper's evaluation is built on (Section 6).
// Several flows are shifted onto disjoint alternate paths at once; the
// synthesizer orders all the switch updates so reachability never breaks,
// and the result is compared against a two-phase update's rule overhead.
package main

import (
	"fmt"
	"log"
	"time"

	"netupdate"
)

func main() {
	topo, roles := netupdate.FatTree(8)
	fmt.Printf("fat-tree k=8: %d switches (%d core, %d pods), %d hosts\n",
		topo.NumSwitches(), len(roles.Core), len(roles.Agg), len(topo.Hosts()))

	// Diamond workload: random host pairs, disjoint initial/final paths,
	// reachability asserted per pair.
	sc, err := netupdate.Diamonds(topo, netupdate.DiamondOptions{
		Pairs:    3,
		Property: netupdate.PropReachability,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrating %d flows; %d switches need updates\n\n",
		len(sc.Specs), len(sc.UpdatingSwitches()))

	start := time.Now()
	plan, err := netupdate.Synthesize(sc, netupdate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesis: %d update steps, %d waits kept (of %d), %.3fs, %d checker calls\n",
		len(plan.Updates()), plan.Stats.WaitsAfter, plan.Stats.WaitsBefore,
		time.Since(start).Seconds(), plan.Stats.Checks)

	// Rule overhead: the ordering update never holds both generations.
	_, tpPeaks := netupdate.TwoPhasePlan(sc)
	worstTP, worstSw := 0, -1
	for sw, pk := range tpPeaks {
		if pk > worstTP {
			worstTP, worstSw = pk, sw
		}
	}
	steady := len(sc.Final.Table(worstSw))
	if s := len(sc.Init.Table(worstSw)); s > steady {
		steady = s
	}
	fmt.Printf("two-phase peak rules on sw%d: %d (steady state %d) — ordering update peaks at steady state\n",
		worstSw, worstTP, steady)

	// Confirm zero loss under simulation for every migrated flow.
	var classes []netupdate.Class
	for _, cs := range sc.Specs {
		classes = append(classes, cs.Class)
	}
	res := netupdate.Simulate(sc.Topo, sc.Init, plan.Commands(), classes, netupdate.SimParams{
		Duration:      2 * time.Second,
		UpdateLatency: 50 * time.Millisecond,
		CommandStart:  300 * time.Millisecond,
	})
	fmt.Printf("simulation: %d probes sent, %d delivered, %d lost\n",
		res.Sent, res.Delivered, res.Lost)
	if res.Lost != 0 {
		log.Fatal("ordering update lost probes — this should not happen")
	}
}
