// Quickstart: synthesize the paper's first example (Section 2) from
// scratch using the public API — shift traffic from the red path
// T1-A1-C1-A3-T3 to the green path T1-A1-C2-A3-T3 while preserving
// reachability. The synthesizer must discover that C2 has to be updated
// before A1.
package main

import (
	"fmt"
	"log"
	"time"

	"netupdate"
)

func main() {
	// Build the Figure 1 datacenter by hand: 4 ToR, 4 aggregation, 2 core
	// switches. (netupdate.Fig1Topology() provides the same thing
	// pre-built; we spell it out to demonstrate the API.)
	const (
		T1, T2, T3, T4 = 0, 1, 2, 3
		A1, A2, A3, A4 = 4, 5, 6, 7
		C1, C2         = 8, 9
		H1, H3         = 101, 103
	)
	topo := netupdate.NewTopology("datacenter", 10)
	for _, tor := range []int{T1, T2} {
		topo.AddLink(tor, A1)
		topo.AddLink(tor, A2)
	}
	for _, tor := range []int{T3, T4} {
		topo.AddLink(tor, A3)
		topo.AddLink(tor, A4)
	}
	for _, agg := range []int{A1, A2, A3, A4} {
		topo.AddLink(agg, C1)
		topo.AddLink(agg, C2)
	}
	topo.AddHost(H1, T1)
	topo.AddHost(H3, T3)

	// One traffic class: H1 -> H3, initially on the red path.
	flow := netupdate.Class{Name: "H1->H3", SrcHost: H1, DstHost: H3}
	red := []int{T1, A1, C1, A3, T3}
	green := []int{T1, A1, C2, A3, T3}

	initCfg := netupdate.NewConfig()
	if err := netupdate.InstallPath(initCfg, topo, flow, red, 10); err != nil {
		log.Fatal(err)
	}
	finalCfg := initCfg.Clone()
	// Reroute: retarget A1 at C2 and give C2 a rule; C1's stale rule stays.
	finalCfg.SetTable(A1, nil)
	finalCfg.SetTable(C2, nil)
	if err := netupdate.InstallPath(finalCfg, topo, flow, green, 10); err != nil {
		log.Fatal(err)
	}
	// InstallPath re-added rules along the whole green path; drop the
	// duplicates it created on unchanged switches.
	for _, sw := range []int{T1, A3, T3} {
		finalCfg.SetTable(sw, initCfg.Table(sw))
	}

	sc := &netupdate.Scenario{
		Name:  "red-to-green",
		Topo:  topo,
		Init:  initCfg,
		Final: finalCfg,
		Specs: []netupdate.ClassSpec{{
			Class:   flow,
			Formula: netupdate.Reachability(T1, T3),
		}},
	}

	plan, err := netupdate.Synthesize(sc, netupdate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synthesized update sequence:")
	for i, s := range plan.Steps {
		fmt.Printf("  %d. %s\n", i+1, s)
	}
	fmt.Printf("(%d model-checking calls, %.3fs)\n\n",
		plan.Stats.Checks, plan.Stats.Elapsed.Seconds())

	// Replay the plan in the discrete-event simulator with continuous
	// probes — the ordering update loses nothing; the naive order drops
	// everything in a window.
	params := netupdate.SimParams{
		Duration:      2 * time.Second,
		UpdateLatency: 300 * time.Millisecond,
		CommandStart:  500 * time.Millisecond,
	}
	ordering := netupdate.Simulate(topo, initCfg, plan.Commands(), []netupdate.Class{flow}, params)
	naive := netupdate.Simulate(topo, initCfg, netupdate.NaivePlan(sc), []netupdate.Class{flow}, params)
	fmt.Printf("probe loss — synthesized: %d/%d, naive: %d/%d\n",
		ordering.Lost, ordering.Sent, naive.Lost, naive.Sent)
}
