package bench

import (
	"testing"

	"netupdate/internal/server"
)

// TestFlappingCacheHitRate is the serving-path guarantee behind the CI
// gate: on flapping traffic — the repetitive shape the plan cache is for
// — at least half of all syntheses must be served from the
// verification-first fast path, with zero verify failures (nothing
// poisoned the cache).
func TestFlappingCacheHitRate(t *testing.T) {
	loads, err := MakeFlappingLoads(2, 40, 6, server.OptionsSpec{}, 909)
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunServerLoad(loads, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, tl := range loads {
		want += len(tl.Deltas)
	}
	if run.Served != want {
		t.Fatalf("served %d of %d", run.Served, want)
	}
	lookups := run.CacheHits + run.CacheMisses
	if lookups != int64(want) {
		t.Fatalf("cache lookups = %d, want %d (every request should consult the cache)", lookups, want)
	}
	if rate := float64(run.CacheHits) / float64(lookups); rate < 0.5 {
		t.Fatalf("cache hit rate = %.2f, want >= 0.5 (hits %d / %d)", rate, run.CacheHits, lookups)
	}
	if run.CacheVerifyFailures != 0 {
		t.Fatalf("verify failures = %d on clean traffic", run.CacheVerifyFailures)
	}
}

// TestCacheCompareSmoke keeps the -fig cache table wired.
func TestCacheCompareSmoke(t *testing.T) {
	tb, err := CacheCompare([]int{2}, 40, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %v", tb.Rows)
	}
}
