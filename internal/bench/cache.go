package bench

import (
	"fmt"

	"netupdate/internal/config"
	"netupdate/internal/server"
	"netupdate/internal/topology"
)

// The flapping workload: the repetitive traffic shape the plan cache is
// built for. Real controller streams revisit the same instances — links
// flap A→B→A, rolling updates cycle the same canary diff across regions,
// and rejected intents are resubmitted on every reconciliation pass — so
// the fleet mixes two tenant kinds. Flap tenants bounce a fixed group of
// diamond pairs between their two branches, round-robin over the pairs:
// after the first lap every (base, target) instance is a byte-identical
// repeat, served by plan replay. Retry tenants resubmit the same
// provably-unorderable intent (a double-diamond gadget, Figure 8(h))
// every cycle: the first attempt pays the full infeasibility proof, every
// repeat is answered by the infeasible memo.

// MakeFlappingLoads builds `tenants` tenants, alternating flap (even
// index) and retry (odd index) kinds so a fleet of one is pure flapping.
// Flap tenants get the same diamond carving as MakeTenantLoads with a
// deterministic flap walk — each cycle picks the next round-robin group
// of min(8, pairs) pairs, reroutes them all to their alternate branch,
// then back. Retry tenants get a gadget scenario and resubmit its
// rejected target every delta. Every tenant emits 2*cycles deltas.
func MakeFlappingLoads(tenants, switches, cycles int, opts server.OptionsSpec, seed int64) ([]*TenantLoad, error) {
	loads := make([]*TenantLoad, 0, tenants)
	for i := 0; i < tenants; i++ {
		var tl *TenantLoad
		var err error
		if i%2 == 1 {
			tl, err = makeRetryLoad(fmt.Sprintf("retry-%d", i), switches, 2*cycles, opts, seed+int64(i)*919)
			if err != nil {
				return nil, fmt.Errorf("bench: retry tenant %d: %w", i, err)
			}
		} else {
			tl, err = makeTenantLoad(fmt.Sprintf("flap-%d", i), switches, 0, opts, seed+int64(i)*919)
			if err != nil {
				return nil, fmt.Errorf("bench: flap tenant %d: %w", i, err)
			}
			if err := appendFlapDeltas(tl, cycles); err != nil {
				return nil, fmt.Errorf("bench: flap tenant %d: %w", i, err)
			}
		}
		loads = append(loads, tl)
	}
	return loads, nil
}

// makeRetryLoad builds a retry tenant: a double-diamond gadget scenario
// (no switch-granularity ordering exists, config.Infeasible) registered
// at its initial routes, with `deltas` copies of the delta rerouting
// every gadget class to its final branch. The session never advances —
// each attempt is the identical infeasible instance, the shape the plan
// cache's infeasible memo answers without a proof.
func makeRetryLoad(name string, n, deltas int, opts server.OptionsSpec, seed int64) (*TenantLoad, error) {
	topo := topology.SmallWorld(n, 4, 0.3, seed)
	var sc *config.Scenario
	var err error
	for gadgets := 2; gadgets >= 1; gadgets-- {
		sc, err = config.Infeasible(topo, config.InfeasibleOptions{
			Gadgets: gadgets, Property: config.Reachability, Seed: seed,
			BackgroundFlows: n / 2,
		})
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	header := config.StreamHeader{Name: name, Topology: topologyFileOf(topo)}
	var rr []config.Reroute
	for _, cs := range sc.Specs {
		init, err := config.PathOf(sc.Init, topo, cs.Class)
		if err != nil {
			return nil, err
		}
		header.Classes = append(header.Classes, config.StreamClass{
			Name: cs.Class.Name, Src: cs.Class.SrcHost, Dst: cs.Class.DstHost,
			Path: init, Spec: cs.Formula.String(),
		})
		final, err := config.PathOf(sc.Final, topo, cs.Class)
		if err != nil {
			return nil, err
		}
		if len(final) != len(init) || !samePath(final, init) {
			rr = append(rr, config.Reroute{Class: cs.Class.Name, Path: final})
		}
	}
	tl := &TenantLoad{Spec: &server.TenantSpec{StreamHeader: header, Options: opts}}
	for d := 0; d < deltas; d++ {
		tl.Deltas = append(tl.Deltas, config.StreamDelta{Reroute: rr})
	}
	return tl, nil
}

func samePath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// appendFlapDeltas derives the flap walk from the generator's recorded
// pair branches: each cycle reroutes one round-robin group to its
// alternate branch, then back, so the configuration always returns to
// base and every instance repeats once the round-robin laps.
func appendFlapDeltas(tl *TenantLoad, cycles int) error {
	pairs := tl.Pairs
	if len(pairs) == 0 {
		return fmt.Errorf("no flappable pairs")
	}
	group := len(pairs)
	if group > 8 {
		group = 8
	}
	for c := 0; c < cycles; c++ {
		start := (c * group) % len(pairs)
		var out, back []config.Reroute
		for g := 0; g < group; g++ {
			p := &pairs[(start+g)%len(pairs)]
			out = append(out, config.Reroute{Class: p.Class, Path: p.B})
			back = append(back, config.Reroute{Class: p.Class, Path: p.A})
		}
		tl.Deltas = append(tl.Deltas,
			config.StreamDelta{Reroute: out},
			config.StreamDelta{Reroute: back})
	}
	return nil
}

// CacheCompare is the experiments table behind -fig cache: identical
// flapping traffic served by a pool with the shared plan cache (default)
// and by one with every tenant registered noPlanCache. The cached pool
// replay-verifies repeats through the warm checkers instead of searching,
// so the speedup column is the fast path's end-to-end win and the hit
// rate shows how much of the traffic it absorbed.
func CacheCompare(tenantCounts []int, switches, cycles, workers int) (*Table, error) {
	t := &Table{
		Title: "Flapping traffic: verification-first plan cache vs full search",
		Note: fmt.Sprintf("alternating flap (diamond groups of <=8 pairs) and retry (resubmitted infeasible intent) tenants, %d cycles/tenant (%d deltas), %d pool workers",
			cycles, 2*cycles, workers),
		Header: []string{"tenants", "switches", "syntheses",
			"cached(syn/s)", "nocache(syn/s)", "speedup", "hit rate",
			"cached(alloc/syn)", "nocache(alloc/syn)"},
	}
	for _, n := range tenantCounts {
		seed := int64(n) * 131
		cachedLoads, err := MakeFlappingLoads(n, switches, cycles, server.OptionsSpec{}, seed)
		if err != nil {
			return nil, err
		}
		plainLoads, err := MakeFlappingLoads(n, switches, cycles, server.OptionsSpec{NoPlanCache: true}, seed)
		if err != nil {
			return nil, err
		}
		cached, err := RunServerLoad(cachedLoads, true, workers)
		if err != nil {
			return nil, err
		}
		plain, err := RunServerLoad(plainLoads, true, workers)
		if err != nil {
			return nil, err
		}
		hitRate := 0.0
		if lookups := cached.CacheHits + cached.CacheMisses; lookups > 0 {
			hitRate = float64(cached.CacheHits) / float64(lookups)
		}
		t.Add(n, switches, cached.Served,
			cached.SynPerSec, plain.SynPerSec,
			fmt.Sprintf("%.2fx", cached.SynPerSec/plain.SynPerSec),
			fmt.Sprintf("%.0f%%", 100*hitRate),
			cached.AllocsPerSyn, plain.AllocsPerSyn)
	}
	return t, nil
}
