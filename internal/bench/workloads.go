package bench

import (
	"fmt"

	"netupdate/internal/config"
	"netupdate/internal/topology"
)

// Family identifies a topology dataset from the evaluation.
type Family string

// The three topology families of Figure 7.
const (
	FamilyZoo        Family = "topology-zoo"
	FamilyFatTree    Family = "fattree"
	FamilySmallWorld Family = "small-world"
)

// BuildTopology constructs a topology of roughly n switches from the
// family (deterministic for a given n).
func BuildTopology(f Family, n int) (*topology.Topology, error) {
	switch f {
	case FamilyZoo:
		return topology.WAN(fmt.Sprintf("zoo-like-%d", n), n, int64(0xBEEF+n)), nil
	case FamilyFatTree:
		t, _ := topology.FatTreeForSize(n)
		return t, nil
	case FamilySmallWorld:
		return topology.SmallWorld(n, 4, 0.3, int64(0xCAFE+n)), nil
	}
	return nil, fmt.Errorf("bench: unknown family %q", f)
}

// DiamondWorkload builds the standard evaluation workload on a topology
// of about n switches: disjoint diamonds whose pair count scales with the
// topology so that larger instances update more switches.
func DiamondWorkload(f Family, n int, prop config.Property, seed int64) (*config.Scenario, error) {
	return DiamondWorkloadBG(f, n, prop, seed, 0)
}

// DiamondWorkloadBG is DiamondWorkload with extra background routing
// flows inflating the rule tables (for the rule-granularity sweeps).
func DiamondWorkloadBG(f Family, n int, prop config.Property, seed int64, background int) (*config.Scenario, error) {
	topo, err := BuildTopology(f, n)
	if err != nil {
		return nil, err
	}
	var sc *config.Scenario
	err = placePairs(f, n, func(pairs int) error {
		var perr error
		sc, perr = config.Diamonds(topo, config.DiamondOptions{
			Pairs: pairs, Property: prop, Seed: seed, BackgroundFlows: background,
		})
		return perr
	})
	if err != nil {
		return nil, err
	}
	return sc, nil
}

// placePairs sizes the diamond count for an n-switch topology of family f
// (n/30, clamped to [1, 40]) and calls build with decreasing pair counts
// until placement succeeds: dense topologies occasionally cannot fit
// every diamond, and retrying smaller beats failing the sweep. Every
// harness workload shares this sizing so the figures stay comparable.
func placePairs(f Family, n int, build func(pairs int) error) error {
	pairs := n / 30
	if pairs < 1 {
		pairs = 1
	}
	if pairs > 40 {
		pairs = 40
	}
	for ; pairs >= 1; pairs-- {
		if build(pairs) == nil {
			return nil
		}
	}
	return fmt.Errorf("bench: cannot place any diamond on %s-%d", f, n)
}

// InfeasibleWorkload builds the Figure 8(h)/(i) workload: double-diamond
// gadgets with no switch-granularity solution.
func InfeasibleWorkload(n int, prop config.Property, gadgets int, seed int64) (*config.Scenario, error) {
	topo := topology.SmallWorld(n, 4, 0.3, int64(0xD00D+n))
	for ; gadgets >= 1; gadgets-- {
		sc, err := config.Infeasible(topo, config.InfeasibleOptions{
			Gadgets: gadgets, Property: prop, Seed: seed,
			BackgroundFlows: n / 2,
		})
		if err == nil {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("bench: cannot place any gadget on small-world-%d", n)
}
