package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/topology"
)

// StreamWorkload is a precomputed rolling-update walk: one topology, one
// set of class specifications, and the sequence of target configurations,
// so the warm (session) and cold (per-call) runners drive the identical
// stream.
type StreamWorkload struct {
	Topo    *topology.Topology
	Init    *config.Config
	Specs   []config.ClassSpec
	Targets []*config.Config
}

// BuildStreamWorkload carves the standard diamond workload into a
// topology of roughly n switches and random-walks it for the given number
// of steps (one diamond flipped per step). Sizing and the retry-smaller
// placement loop are shared with DiamondWorkload (placePairs), so the
// stream benchmark stays comparable to the synthesis benchmarks.
func BuildStreamWorkload(f Family, n, steps int, prop config.Property, seed int64) (*StreamWorkload, error) {
	topo, err := BuildTopology(f, n)
	if err != nil {
		return nil, err
	}
	var s *config.RollingStream
	if err := placePairs(f, n, func(pairs int) error {
		var perr error
		s, perr = config.RollingUpdates(topo, config.RollingOptions{
			Pairs: pairs, Property: prop, Seed: seed, Steps: steps, FlipsPerStep: 1,
		})
		return perr
	}); err != nil {
		return nil, err
	}
	w := &StreamWorkload{Topo: s.Topo(), Init: s.Init(), Specs: s.Specs()}
	for {
		tgt, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		w.Targets = append(w.Targets, tgt)
	}
	return w, nil
}

// RollingStreamCompare measures the long-lived session against the cold
// per-call path on identical rolling streams: total wall time and heap
// allocations per synthesis (runtime.MemStats deltas around each run).
// This is the steady-state controller workload the session layer exists
// for; the cold column pays structure building, label interning, and
// closure expansion on every synthesis, the warm column only on the
// first.
func RollingStreamCompare(sizes []int, steps int, timeout time.Duration) (*Table, error) {
	t := &Table{
		Title: "Rolling-update stream: warm session vs cold per-call synthesis",
		Note:  fmt.Sprintf("small-world reachability diamonds, %d-step random walk, 1 flip/step", steps),
		Header: []string{"workload", "classes", "steps",
			"warm(ms/syn)", "cold(ms/syn)", "speedup", "warm(alloc/syn)", "cold(alloc/syn)"},
	}
	for _, n := range sizes {
		w, err := BuildStreamWorkload(FamilySmallWorld, n, steps, config.Reachability, int64(n)*11)
		if err != nil {
			return nil, err
		}
		opts := opt(core.Options{Timeout: timeout})
		warmMS, warmAllocs, err := runWarmStream(w, opts)
		if err != nil {
			return nil, err
		}
		coldMS, coldAllocs, err := runColdStream(w, opts)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("small-world-%d", n), len(w.Specs), len(w.Targets),
			warmMS, coldMS, fmt.Sprintf("%.2fx", coldMS/warmMS),
			warmAllocs, coldAllocs)
	}
	return t, nil
}

// runWarmStream serves every target from one session, returning
// milliseconds and heap allocations per synthesis (session construction
// included — it amortizes across the stream).
func runWarmStream(w *StreamWorkload, opts core.Options) (float64, int64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	sess, err := core.NewSession(w.Topo, w.Init, w.Specs, opts)
	if err != nil {
		return 0, 0, err
	}
	for _, tgt := range w.Targets {
		if _, err := sess.Synthesize(tgt); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(len(w.Targets))
	return elapsed.Seconds() * 1000 / n, int64(m1.Mallocs-m0.Mallocs) / int64(len(w.Targets)), nil
}

// runColdStream synthesizes every consecutive (previous, target) pair
// with a fresh one-shot Synthesize.
func runColdStream(w *StreamWorkload, opts core.Options) (float64, int64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	cur := w.Init
	for _, tgt := range w.Targets {
		sc := &config.Scenario{
			Name: "cold", Topo: w.Topo, Init: cur, Final: tgt, Specs: w.Specs,
		}
		if _, err := core.Synthesize(sc, opts); err != nil {
			return 0, 0, err
		}
		cur = tgt
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(len(w.Targets))
	return elapsed.Seconds() * 1000 / n, int64(m1.Mallocs-m0.Mallocs) / int64(len(w.Targets)), nil
}
