package bench

import (
	"fmt"
	"sort"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
)

// DAGCompare measures decentralized DAG execution against the central
// wait-based controller schedule: the same synthesized plan is executed
// once as the sequential command list (one install at a time, flushes
// blocking on drain) and once as its dependency DAG (every switch commits
// as soon as its predecessors' acks are visible), and the completion
// times are compared. Workloads are multi-region small-world and fat-tree
// scenarios whose region count grows with the topology, so the update
// size axis also widens the DAG — the decentralized gap should grow with
// it. Both executions must deliver every probe (loss would mean the DAG
// admitted an order the checker did not).
func DAGCompare(swSizes, ftSizes []int, timeout time.Duration) (*Table, error) {
	t := &Table{
		Title: "Decentralized DAG execution vs central controller schedule",
		Note: fmt.Sprintf("multi-region reachability workloads; install %v/switch, ack %v, jitter-free",
			sim.DefaultUpdateLatency, sim.DefaultAckLatency),
		Header: []string{"workload", "units", "waits", "dag",
			"central(ms)", "decentral(ms)", "p50commit(ms)", "speedup", "lost"},
	}
	for _, n := range swSizes {
		topo := topology.SmallWorld(n, 6, 0.3, int64(n)*13)
		if err := dagRow(t, fmt.Sprintf("smallworld-%d", n), topo, dagRegions(n), timeout); err != nil {
			return nil, err
		}
	}
	for _, n := range ftSizes {
		topo, _ := topology.FatTreeForSize(n)
		if err := dagRow(t, fmt.Sprintf("fattree-%d", topo.NumSwitches()), topo, dagRegions(n), timeout); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// dagRegions sizes the region count — the DAG-width driver — with the
// topology, clamped to at least two so every row has parallelism to find.
func dagRegions(n int) int {
	r := n / 40
	if r < 2 {
		r = 2
	}
	return r
}

// dagRow synthesizes one multi-region workload on topo and adds its
// central-vs-decentralized measurement. Placement retries with fewer
// regions on cramped topologies, mirroring MultiRegionWorkload.
func dagRow(t *Table, name string, topo *topology.Topology, regions int, timeout time.Duration) error {
	var sc *config.Scenario
	var err error
	for r := regions; r >= 1; r-- {
		sc, err = config.MultiRegion(topo, config.MultiRegionOptions{
			Regions: r, PairsPerRegion: 2,
			Property: config.Reachability, Seed: int64(topo.NumSwitches()) * 11,
		})
		if err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("bench: cannot place any region on %s", name)
	}
	plan, err := core.Synthesize(sc, opt(core.Options{Timeout: timeout}))
	if err != nil {
		return err
	}
	var classes []config.Class
	for _, cs := range sc.Specs {
		classes = append(classes, cs.Class)
	}
	// Completion dominates well before the default 6 s window; a shorter,
	// sparser probe load keeps the figure cheap without changing the
	// schedule (commands never depend on probe events, only drains do).
	p := sim.Params{Duration: 3 * time.Second, ProbeInterval: 2 * time.Millisecond}
	central := sim.Run(sc.Topo, sc.Init, plan.Commands(), classes, p)
	decen := sim.RunPlanDAG(sc.Topo, sc.Init, plan, classes, p)
	// Completion measured from command start: both runs idle through the
	// same warm-up window, which would otherwise dilute the ratio.
	cms := (central.CompleteAt - sim.DefaultCommandStart).Seconds() * 1000
	dms := (decen.CompleteAt - sim.DefaultCommandStart).Seconds() * 1000
	// The per-node timeline shows the shape of the decentralized rollout,
	// not just its end: the median commit lands well before the final one
	// because independent regions converge concurrently.
	p50, _ := timelineStats(decen.NodeTimeline)
	t.Add(name, len(plan.Updates()), plan.Stats.WaitsAfter,
		fmt.Sprintf("%dx%d", plan.Stats.DAGDepth, plan.Stats.DAGWidth),
		cms, dms, p50, fmt.Sprintf("%.2fx", cms/dms),
		central.Lost+decen.Lost)
	return nil
}

// timelineStats summarizes a DAG run's per-node commit timeline: the
// median and final commit offsets from command start, in milliseconds.
// Nodes that never committed (CommitAt < 0) are excluded.
func timelineStats(tl []sim.NodeTiming) (p50ms, lastMS float64) {
	var commits []time.Duration
	for _, nt := range tl {
		if nt.CommitAt >= 0 {
			commits = append(commits, nt.CommitAt-sim.DefaultCommandStart)
		}
	}
	if len(commits) == 0 {
		return 0, 0
	}
	sort.Slice(commits, func(i, j int) bool { return commits[i] < commits[j] })
	toMS := func(d time.Duration) float64 { return d.Seconds() * 1000 }
	return toMS(commits[len(commits)/2]), toMS(commits[len(commits)-1])
}
