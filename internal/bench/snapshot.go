package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/kripke"
	"netupdate/internal/mc"
	"netupdate/internal/server"
)

// The snapshot benchmarks: how much of a warm session's build cost the
// binary snapshot (internal/core/snapshot.go) recovers on restore, and
// how serving throughput scales when tenants are sharded across
// netupdated replicas behind the consistent-hash router.

// SnapshotRun is one measured cold-build vs snapshot-restore comparison.
type SnapshotRun struct {
	ColdMS    float64
	RestoreMS float64
	Speedup   float64
	Bytes     int
}

// MeasureSnapshotRestore warms a session on the scenario (synthesizing
// init -> final so the warmth caches and learned state carry real
// content), snapshots it, and times a cold rebuild at the session's
// current configuration against restoring the snapshot — exactly the
// two paths the pool chooses between in ensureWarm after an eviction.
// Both paths draw the state arena and warmth cache from the same shared
// resources, as ensureWarm does (the arena registry outlives evicted
// sessions), so the comparison isolates what the snapshot itself buys:
// recorded transitions versus table application plus cycle check, and
// restored labelings versus a full relabel. Times are the best of reps,
// the standard treatment for a latency microbenchmark.
func MeasureSnapshotRestore(sc *config.Scenario, opts core.Options, reps int) (*SnapshotRun, error) {
	res := core.SessionResources{Arena: kripke.NewArena(sc.Topo), Warmth: mc.NewWarmth()}
	sess, err := core.NewSessionWith(sc.Topo, sc.Init, sc.Specs, opts, res)
	if err != nil {
		return nil, err
	}
	sess.EnableCache()
	if _, err := sess.Synthesize(sc.Final); err != nil {
		return nil, err
	}
	img, err := sess.Snapshot()
	if err != nil {
		return nil, err
	}

	best := func(f func() error) (float64, error) {
		bestMS := 0.0
		for r := 0; r < reps; r++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if ms := float64(time.Since(start).Nanoseconds()) / 1e6; r == 0 || ms < bestMS {
				bestMS = ms
			}
		}
		return bestMS, nil
	}
	coldMS, err := best(func() error {
		_, err := core.NewSessionWith(sc.Topo, sess.Current(), sc.Specs, opts, res)
		return err
	})
	if err != nil {
		return nil, err
	}
	restoreMS, err := best(func() error {
		_, err := core.RestoreSessionWith(sc.Topo, sc.Specs, opts, img, res)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &SnapshotRun{
		ColdMS:    coldMS,
		RestoreMS: restoreMS,
		Speedup:   coldMS / restoreMS,
		Bytes:     len(img),
	}, nil
}

// SnapshotRestoreCompare is the experiments table: eviction-rebuild cost
// with and without the snapshot, on the multi-region workload the
// decomposition figures use.
func SnapshotRestoreCompare(sizes []int, regions int, timeout time.Duration) (*Table, error) {
	t := &Table{
		Title: "Session snapshots: cold rebuild vs snapshot restore after eviction",
		Note: fmt.Sprintf("multi-region reachability workload, %d regions; best of 5; both paths share the registry arena and warmth as in the pool; restore validates a checksum and adopts recorded transitions and labelings, skipping table application, cycle check, and relabeling",
			regions),
		Header: []string{"switches", "classes", "cold(ms)", "restore(ms)", "speedup", "snapshot(KB)"},
	}
	for _, n := range sizes {
		sc, err := MultiRegionWorkload(n, regions, 2, 1, config.Reachability, int64(n)*131)
		if err != nil {
			return nil, err
		}
		run, err := MeasureSnapshotRestore(sc, opt(core.Options{Timeout: timeout}), 5)
		if err != nil {
			return nil, fmt.Errorf("bench: snapshot n=%d: %w", n, err)
		}
		t.Add(n, len(sc.Specs), run.ColdMS, run.RestoreMS,
			fmt.Sprintf("%.1fx", run.Speedup), float64(run.Bytes)/1024)
	}
	return t, nil
}

// ShardCompare is the sharded-serving table: identical mixed-tenant
// rolling-update traffic served through the netupdatelb router over 1..N
// in-process netupdated replicas. Every replica runs in this process, so
// wall-clock scaling reflects real parallelism only up to the host's
// core count — on a single-core host the value of the figure is the
// router overhead (the 1-replica row vs ServerCompare) and the placement
// spread, not the throughput ratio.
func ShardCompare(replicaCounts []int, tenants, switches, steps, workers int) (*Table, error) {
	loads, err := MakeTenantLoads(tenants, switches, steps, server.OptionsSpec{}, 0xCAFE)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Sharded serving: throughput through netupdatelb by replica count",
		Note: fmt.Sprintf("%d tenants x %d deltas on ~%d switches, %d workers/replica; in-process replicas share this host's cores",
			tenants, steps, switches, workers),
		Header: []string{"replicas", "syntheses", "syn/s", "per-replica(syn/s)", "placement"},
	}
	for _, n := range replicaCounts {
		served, elapsed, placement, err := runShardedLoad(loads, n, workers)
		if err != nil {
			return nil, fmt.Errorf("bench: shard n=%d: %w", n, err)
		}
		synPerSec := float64(served) / elapsed.Seconds()
		t.Add(n, served, synPerSec, synPerSec/float64(n), placement)
	}
	return t, nil
}

// runShardedLoad serves the load through a router over n fresh replicas
// and reports syntheses served, wall time, and the tenant placement
// spread ("a+b+..." per replica).
func runShardedLoad(loads []*TenantLoad, n, workers int) (int, time.Duration, string, error) {
	replicas := make([]*server.Pool, n)
	urls := make([]string, n)
	var servers []*httptest.Server
	defer func() {
		for _, ts := range servers {
			ts.Close()
		}
		for _, p := range replicas {
			if p != nil {
				_ = p.Close(context.Background())
			}
		}
	}()
	for i := range replicas {
		replicas[i] = server.NewPool(server.PoolOptions{Workers: workers, MaxSessions: len(loads) + 1})
		ts := httptest.NewServer(server.NewHandler(replicas[i]))
		servers = append(servers, ts)
		urls[i] = ts.URL
	}
	lb, err := server.NewLB(urls, 0)
	if err != nil {
		return 0, 0, "", err
	}
	front := httptest.NewServer(lb.Handler())
	servers = append(servers, front)

	// Register every tenant through the router, then stream each
	// tenant's deltas as one duplex synthesize exchange, all tenants
	// concurrently — the measured region is pure serving.
	ids := make([]string, len(loads))
	bodies := make([]string, len(loads))
	for i, tl := range loads {
		spec, err := json.Marshal(tl.Spec)
		if err != nil {
			return 0, 0, "", err
		}
		resp, err := http.Post(front.URL+"/v1/tenants", "application/json", strings.NewReader(string(spec)))
		if err != nil {
			return 0, 0, "", err
		}
		var info server.TenantInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil || resp.StatusCode >= 300 {
			return 0, 0, "", fmt.Errorf("register %d: status %d: %v", i, resp.StatusCode, err)
		}
		ids[i] = info.ID
		var sb strings.Builder
		for di := range tl.Deltas {
			line, err := json.Marshal(&tl.Deltas[di])
			if err != nil {
				return 0, 0, "", err
			}
			sb.Write(line)
			sb.WriteByte('\n')
		}
		bodies[i] = sb.String()
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		served   int
		firstErr error
	)
	start := time.Now()
	for i := range loads {
		wg.Add(1)
		go func(id, body string) {
			defer wg.Done()
			n, err := streamTenant(front.URL, id, body)
			mu.Lock()
			served += n
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(ids[i], bodies[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, 0, "", firstErr
	}

	var placement []string
	for _, p := range replicas {
		placement = append(placement, fmt.Sprint(p.Stats().Tenants))
	}
	return served, elapsed, strings.Join(placement, "+"), nil
}

// streamTenant posts one tenant's whole delta sequence as a single
// synthesize stream and counts the answered lines; an in-band error
// line other than infeasibility fails the run.
func streamTenant(front, id, body string) (int, error) {
	resp, err := http.Post(front+"/v1/tenants/"+id+"/synthesize",
		"application/x-ndjson", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("tenant %s: status %d", id, resp.StatusCode)
	}
	served := 0
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for scanner.Scan() {
		var r server.Result
		if err := json.Unmarshal(scanner.Bytes(), &r); err != nil {
			return served, fmt.Errorf("tenant %s: bad result line: %w", id, err)
		}
		switch r.Result {
		case "plan", "impossible":
			served++
		default:
			return served, fmt.Errorf("tenant %s: %s: %s", id, r.Result, r.Error)
		}
	}
	return served, scanner.Err()
}
