package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/server"
	"netupdate/internal/topology"
)

// The server load generator: mixed-tenant rolling-update traffic for the
// warm-session pool, expressed in the service's own registration and
// delta wire types so the benchmark exercises the exact serving path.

// TenantLoad is one tenant's workload: the registration spec and the
// delta sequence a controller would send, plus the flip bookkeeping the
// generator used (exposed so callers can extend the walk).
type TenantLoad struct {
	Spec   *server.TenantSpec
	Deltas []config.StreamDelta
	// Pairs records each reroutable diamond class's two branch paths (A
	// is the registered initial route); the flapping generator walks them.
	Pairs []PairBranches
}

// PairBranches is one diamond pair's routing choice.
type PairBranches struct {
	Class string
	A, B  []int
}

// MakeTenantLoads builds `tenants` distinct rolling-update tenants: each
// gets its own small-world topology of roughly `switches` switches (seeded
// per tenant, so fingerprints never collide), the standard diamond
// workload carved into it, and `steps` deltas random-walking the diamond
// branch choices — one diamond flipped per delta, every consecutive
// target an ordinary feasible diamond update.
func MakeTenantLoads(tenants, switches, steps int, opts server.OptionsSpec, seed int64) ([]*TenantLoad, error) {
	loads := make([]*TenantLoad, 0, tenants)
	for i := 0; i < tenants; i++ {
		tl, err := makeTenantLoad(fmt.Sprintf("tenant-%d", i), switches, steps, opts, seed+int64(i)*919)
		if err != nil {
			return nil, fmt.Errorf("bench: tenant %d: %w", i, err)
		}
		loads = append(loads, tl)
	}
	return loads, nil
}

func makeTenantLoad(name string, n, steps int, opts server.OptionsSpec, seed int64) (*TenantLoad, error) {
	topo := topology.SmallWorld(n, 4, 0.3, seed)
	var sc *config.Scenario
	if err := placePairs(FamilySmallWorld, n, func(pairs int) error {
		var perr error
		sc, perr = config.Diamonds(topo, config.DiamondOptions{
			Pairs: pairs, Property: config.Reachability, Seed: seed,
		})
		return perr
	}); err != nil {
		return nil, err
	}

	header := config.StreamHeader{Name: name, Topology: topologyFileOf(topo)}
	type pair struct {
		name     string
		branches [2][]int
		onB      bool
	}
	var pairs []pair
	for _, cs := range sc.Specs {
		init, err := config.PathOf(sc.Init, topo, cs.Class)
		if err != nil {
			return nil, err
		}
		header.Classes = append(header.Classes, config.StreamClass{
			Name: cs.Class.Name, Src: cs.Class.SrcHost, Dst: cs.Class.DstHost,
			Path: init, Spec: cs.Formula.String(),
		})
		if !strings.HasPrefix(cs.Class.Name, "pair") {
			continue // background flow: never rerouted
		}
		final, err := config.PathOf(sc.Final, topo, cs.Class)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, pair{name: cs.Class.Name, branches: [2][]int{init, final}})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("bench: no diamond classes placed on %s", name)
	}

	tl := &TenantLoad{Spec: &server.TenantSpec{StreamHeader: header, Options: opts}}
	for _, p := range pairs {
		tl.Pairs = append(tl.Pairs, PairBranches{Class: p.name, A: p.branches[0], B: p.branches[1]})
	}
	r := rand.New(rand.NewSource(seed ^ 0x10AD))
	for s := 0; s < steps; s++ {
		p := &pairs[r.Intn(len(pairs))]
		p.onB = !p.onB
		branch := p.branches[0]
		if p.onB {
			branch = p.branches[1]
		}
		tl.Deltas = append(tl.Deltas, config.StreamDelta{
			Reroute: []config.Reroute{{Class: p.name, Path: branch}},
		})
	}
	return tl, nil
}

// topologyFileOf serializes a topology into the stream-header wire form.
// Port numbers are not part of the wire format — they are reassigned
// deterministically on rebuild, and everything downstream (the pool and
// any conformance baseline) works on the rebuilt topology.
func topologyFileOf(t *topology.Topology) config.TopologyFile {
	tf := config.TopologyFile{Switches: t.NumSwitches()}
	for sw := 0; sw < t.NumSwitches(); sw++ {
		for _, l := range t.Neighbors(sw) {
			if l.Peer > sw {
				tf.Links = append(tf.Links, [2]int{sw, l.Peer})
			}
		}
	}
	for _, h := range t.Hosts() {
		tf.Hosts = append(tf.Hosts, config.HostFile{ID: h.ID, Switch: h.Switch})
	}
	return tf
}

// RunLoad registers every tenant with the pool and replays all delta
// sequences concurrently, one goroutine per tenant issuing its deltas in
// order (the per-tenant sequence must stay ordered; cross-tenant traffic
// interleaves freely). It returns the number of syntheses served and the
// first error. A core.ErrNoOrdering answer is a served request, not a
// failure — retry tenants (MakeFlappingLoads) resubmit rejected intents
// by design, and the definitive infeasibility verdict is the response.
func RunLoad(ctx context.Context, p *server.Pool, loads []*TenantLoad) (int, error) {
	ids := make([]string, len(loads))
	for i, tl := range loads {
		info, err := p.Register(tl.Spec)
		if err != nil {
			return 0, err
		}
		ids[i] = info.ID
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		served   int
		firstErr error
	)
	for i, tl := range loads {
		wg.Add(1)
		go func(id string, deltas []config.StreamDelta) {
			defer wg.Done()
			for di := range deltas {
				if _, err := p.Synthesize(ctx, id, &deltas[di]); err != nil && !errors.Is(err, core.ErrNoOrdering) {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				served++
				mu.Unlock()
			}
		}(ids[i], tl.Deltas)
	}
	wg.Wait()
	return served, firstErr
}

// ServerRun is one measured replay of a mixed-tenant load.
type ServerRun struct {
	Served       int
	SynPerSec    float64
	AllocsPerSyn int64
	// Plan-cache totals of the pool that served the run (warm runs only;
	// zero when every tenant opted out or the run was cold).
	CacheHits           int64
	CacheMisses         int64
	CacheVerifyFailures int64
}

// RunServerLoad replays the mixed-tenant load and measures serving
// throughput and allocations per synthesis (runtime.MemStats deltas,
// like the stream benchmarks). warm serves the traffic through a fresh
// pool with every tenant's session held warm; cold is the per-request
// baseline — the identical traffic, same concurrency budget, but every
// request pays a fresh one-shot synthesis (per-class structures, label
// tables, and closures rebuilt from scratch), which is what serving
// without the session pool would cost.
func RunServerLoad(loads []*TenantLoad, warm bool, workers int) (*ServerRun, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var served int
	var err error
	var cache server.PoolStats
	if warm {
		p := server.NewPool(server.PoolOptions{Workers: workers, MaxSessions: len(loads) + 1})
		served, err = RunLoad(context.Background(), p, loads)
		cache = p.Stats()
		if cerr := p.Close(context.Background()); err == nil {
			err = cerr
		}
	} else {
		served, err = runColdLoad(loads, workers)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	if served == 0 {
		return nil, fmt.Errorf("bench: server load served nothing")
	}
	return &ServerRun{
		Served:              served,
		SynPerSec:           float64(served) / elapsed.Seconds(),
		AllocsPerSyn:        int64(m1.Mallocs-m0.Mallocs) / int64(served),
		CacheHits:           cache.PlanCacheHits,
		CacheMisses:         cache.PlanCacheMisses,
		CacheVerifyFailures: cache.PlanCacheVerifyFailures,
	}, nil
}

// runColdLoad replays the load without the pool: per-tenant goroutines
// under the same global worker budget, each request a fresh one-shot
// core.Synthesize between the tenant's tracked configurations.
func runColdLoad(loads []*TenantLoad, workers int) (int, error) {
	sem := make(chan struct{}, workers)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		served   int
		firstErr error
	)
	for _, tl := range loads {
		base, err := tl.Spec.StreamHeader.Build()
		if err != nil {
			return 0, err
		}
		opts, err := tl.Spec.Options.Build()
		if err != nil {
			return 0, err
		}
		wg.Add(1)
		go func(tl *TenantLoad, base *config.StreamBase, opts core.Options) {
			defer wg.Done()
			cur := base.Init
			for di := range tl.Deltas {
				tgt, err := base.Apply(cur, &tl.Deltas[di])
				if err == nil {
					sem <- struct{}{}
					_, err = core.Synthesize(&config.Scenario{
						Name: base.Name, Topo: base.Topo, Init: cur, Final: tgt,
						Specs: base.Specs,
					}, opts)
					<-sem
					if errors.Is(err, core.ErrNoOrdering) {
						// Definitive verdict: served, config unchanged.
						err, tgt = nil, cur
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				cur = tgt
				mu.Lock()
				served++
				mu.Unlock()
			}
		}(tl, base, opts)
	}
	wg.Wait()
	return served, firstErr
}

// ServerCompare is the experiments table: warm multi-tenant serving vs
// the cold per-request baseline over identical mixed rolling-update
// traffic.
func ServerCompare(tenantCounts []int, switches, steps, workers int) (*Table, error) {
	t := &Table{
		Title: "Multi-tenant server: warm session pool vs cold per-request rebuild",
		Note: fmt.Sprintf("small-world reachability diamonds per tenant, %d deltas/tenant, %d pool workers",
			steps, workers),
		Header: []string{"tenants", "switches", "syntheses",
			"warm(syn/s)", "cold(syn/s)", "speedup", "warm(alloc/syn)", "cold(alloc/syn)"},
	}
	for _, n := range tenantCounts {
		loads, err := MakeTenantLoads(n, switches, steps, server.OptionsSpec{}, int64(n)*77)
		if err != nil {
			return nil, err
		}
		warm, err := RunServerLoad(loads, true, workers)
		if err != nil {
			return nil, err
		}
		cold, err := RunServerLoad(loads, false, workers)
		if err != nil {
			return nil, err
		}
		t.Add(n, switches, warm.Served,
			warm.SynPerSec, cold.SynPerSec,
			fmt.Sprintf("%.2fx", warm.SynPerSec/cold.SynPerSec),
			warm.AllocsPerSyn, cold.AllocsPerSyn)
	}
	return t, nil
}
