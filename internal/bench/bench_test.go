package bench

import (
	"strings"
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/server"
)

func TestTableFormat(t *testing.T) {
	tb := &Table{Title: "t", Note: "n", Header: []string{"a", "bb"}}
	tb.Add(1, 2.5)
	tb.Add("xx", "y")
	out := tb.Format()
	for _, want := range []string{"== t ==", "n\n", "a", "bb", "xx", "2.5000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBuildTopologyFamilies(t *testing.T) {
	for _, f := range []Family{FamilyZoo, FamilyFatTree, FamilySmallWorld} {
		topo, err := BuildTopology(f, 40)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if topo.NumSwitches() < 20 {
			t.Fatalf("%s: only %d switches", f, topo.NumSwitches())
		}
	}
	if _, err := BuildTopology(Family("nope"), 10); err == nil {
		t.Fatal("unknown family must error")
	}
}

func TestFig2a(t *testing.T) {
	tb, err := Fig2a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 4 {
		t.Fatalf("too few rows: %v", tb.Rows)
	}
	// Shape assertions: the naive run loses probes, ordering and
	// two-phase do not (the last row carries totals).
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] == "0" {
		t.Fatalf("naive lost 0 probes: %v", last)
	}
	if last[2] != "0" || last[3] != "0" {
		t.Fatalf("ordering/two-phase lost probes: %v", last)
	}
}

func TestFig2b(t *testing.T) {
	tb, err := Fig2b()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Format()
	// A1 (on both paths) must show 2x overhead for two-phase and 1x for
	// ordering.
	found := false
	for _, r := range tb.Rows {
		if r[0] == "A1" {
			found = true
			if r[1] != "2.0X" || r[2] != "1.0X" {
				t.Fatalf("A1 overhead = %v, want 2.0X vs 1.0X\n%s", r, out)
			}
		}
	}
	if !found {
		t.Fatal("A1 row missing")
	}
}

func TestFig7SmallScale(t *testing.T) {
	tb, points, err := Fig7(FamilySmallWorld, []int{30, 60},
		[]core.CheckerKind{core.CheckerIncremental, core.CheckerBatch, core.CheckerNuSMV},
		30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || len(tb.Rows) != 2 {
		t.Fatalf("points = %v", points)
	}
	for _, pt := range points {
		if pt.Seconds["incremental"] < 0 {
			t.Fatalf("incremental timed out at size %d", pt.Size)
		}
	}
}

func TestFig7RuleSmallScale(t *testing.T) {
	_, points, err := Fig7Rule(FamilySmallWorld, []int{30}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %v", points)
	}
	if points[0].Seconds["incremental"] < 0 || points[0].Seconds["netplumber-like"] < 0 {
		t.Fatalf("rule-granularity run timed out: %v", points[0].Seconds)
	}
}

func TestFig8SmallScale(t *testing.T) {
	g, waits, err := Fig8g([]int{40}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 1 || len(waits.Rows) == 0 {
		t.Fatalf("8g rows = %v waits = %v", g.Rows, waits.Rows)
	}
	h, err := Fig8h([]int{40}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Rows) != 1 {
		t.Fatalf("8h rows = %v", h.Rows)
	}
	i, _, err := Fig8i([]int{40}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(i.Rows) != 1 {
		t.Fatalf("8i rows = %v", i.Rows)
	}
}

func TestCheckerOnly(t *testing.T) {
	tb, err := CheckerOnly(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %v", tb.Rows)
	}
}

func TestAblation(t *testing.T) {
	tb, err := Ablation(40, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 6 {
		t.Fatalf("rows = %v", tb.Rows)
	}
}

// TestServerCompareSmoke keeps the experiments table wired.
func TestServerCompareSmoke(t *testing.T) {
	tb, err := ServerCompare([]int{2}, 40, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %v", tb.Rows)
	}
}

// BenchmarkServerThroughput measures the serving layer end to end: one op
// registers a fleet of rolling-update tenants on a fresh pool and replays
// their mixed traffic concurrently (see internal/bench/loadgen.go). The
// warm variant serves everything from pooled sessions; cold is the
// per-request baseline — identical traffic and concurrency budget, every
// request a fresh one-shot synthesis. Reports syn/sec next to the usual
// ns/op and allocs/op.
func BenchmarkServerThroughput(b *testing.B) {
	loads, err := MakeTenantLoads(6, 40, 12, server.OptionsSpec{}, 55)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		warm bool
	}{{"warm", true}, {"cold", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			total := 0
			for i := 0; i < b.N; i++ {
				run, err := RunServerLoad(loads, mode.warm, 4)
				if err != nil {
					b.Fatal(err)
				}
				total += run.Served
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "syn/sec")
		})
	}
}
