package bench

import (
	"fmt"
	"runtime"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/topology"
)

// MultiRegionWorkload builds the decomposition workload on a small-world
// topology of n switches: regions independent diamond groups of
// pairsPerRegion diamonds each, plus cross coupling classes. Placement
// retries with fewer regions on cramped topologies, mirroring placePairs.
func MultiRegionWorkload(n, regions, pairsPerRegion, cross int, prop config.Property, seed int64) (*config.Scenario, error) {
	// Degree-6 small-world: the link classes that chain a region's pairs
	// (and couple regions) pivot on free neighbors of already-claimed
	// switches, which degree-4 graphs run out of; degree 6 places the
	// full workload reliably from ~160 switches up.
	topo := topology.SmallWorld(n, 6, 0.3, seed)
	for r := regions; r >= 1; r-- {
		c := cross
		if r < 2 {
			c = 0
		}
		sc, err := config.MultiRegion(topo, config.MultiRegionOptions{
			Regions: r, PairsPerRegion: pairsPerRegion, CrossClasses: c,
			Property: prop, Seed: seed,
		})
		if err == nil {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("bench: cannot place any region on small-world-%d", n)
}

// DecompCompare measures interference-partitioned synthesis against the
// joint search on MultiRegion workloads: wall-clock and heap allocations
// per synthesis over a warm session flip-flopping between the two
// endpoint configurations (construction amortizes away, so the columns
// isolate search + footprint + resync work), at the component counts the
// workload actually produced. The joint column iterates every class on
// every unit application of one big search; the decomposed column pays
// the footprint pre-pass once and then runs one small search per
// independent region over only that region's classes.
func DecompCompare(sizes []int, regions int, timeout time.Duration) (*Table, error) {
	t := &Table{
		Title: "Decomposition: joint search vs interference-partitioned search",
		Note:  fmt.Sprintf("small-world reachability multi-region workloads (2 diamonds/region), %d regions requested, warm session", regions),
		Header: []string{"workload", "units", "classes", "components",
			"joint(ms)", "decomp(ms)", "speedup", "joint(allocs)", "decomp(allocs)"},
	}
	const reps = 10
	for _, n := range sizes {
		sc, err := MultiRegionWorkload(n, regions, 2, 0, config.Reachability, int64(n)*13)
		if err != nil {
			return nil, err
		}
		jointMS, jointAllocs, _, err := timeStream(sc, opt(core.Options{Timeout: timeout, NoDecomposition: true}), reps)
		if err != nil {
			return nil, err
		}
		decompMS, decompAllocs, components, err := timeStream(sc, opt(core.Options{Timeout: timeout}), reps)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("multiregion-%d", n), len(sc.UpdatingSwitches()), len(sc.Specs), components,
			jointMS, decompMS, fmt.Sprintf("%.2fx", jointMS/decompMS),
			jointAllocs, decompAllocs)
	}
	return t, nil
}

// timeStream opens a warm session, primes it with one round trip, then
// serves reps round trips (init -> final -> init), returning mean
// milliseconds and heap allocations per synthesis plus the component
// count of the last run.
func timeStream(sc *config.Scenario, opts core.Options, reps int) (float64, int64, int, error) {
	s, err := core.NewSession(sc.Topo, sc.Init, sc.Specs, opts)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := s.Synthesize(sc.Final); err != nil {
		return 0, 0, 0, err
	}
	if _, err := s.Synthesize(sc.Init); err != nil {
		return 0, 0, 0, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	components := 0
	for i := 0; i < reps; i++ {
		plan, err := s.Synthesize(sc.Final)
		if err != nil {
			return 0, 0, 0, err
		}
		components = plan.Stats.Components
		if _, err := s.Synthesize(sc.Init); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(2 * reps)
	return elapsed.Seconds() * 1000 / n, int64(m1.Mallocs-m0.Mallocs) / int64(2*reps), components, nil
}
