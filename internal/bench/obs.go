package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
)

// obsReps is the number of paired (off, on) runs per workload. Pairing
// matters more than repetition: each overhead sample is the ratio of two
// back-to-back runs, so frequency scaling and scheduler drift — which
// move both runs of a pair together — largely cancel, and the median
// pair survives the ones they did not.
const obsReps = 7

// obsMinSyntheses sizes one timed run: the stream is replayed until at
// least this many syntheses ran, keeping each run tens of milliseconds —
// long enough that per-synthesis numbers are not timer noise, short
// enough that a pair stays inside one scheduling regime.
const obsMinSyntheses = 384

// ObsOverheadCompare measures the cost of the observability layer on the
// steady-state rolling-stream workload: the identical warm-session
// stream is served with tracing disabled — the shipping default, where
// every span call is a nil-receiver no-op — and with the per-session
// trace ring enabled (core.Options.Trace). One untimed pass warms the
// process, then obsReps back-to-back (off, on) pairs run; the columns
// report the median run of each and the overhead column the median
// per-pair ratio. The off column uses the same session loop as
// RollingStreamCompare's warm path (and the CI allocs ceiling on
// BenchmarkRollingStream proves the disabled path adds zero
// allocations); the overhead column is the tracing-enabled slowdown,
// which the acceptance bar holds at ≤5%.
func ObsOverheadCompare(sizes []int, steps int, timeout time.Duration) (*Table, error) {
	t := &Table{
		Title: "Observability overhead on the warm rolling stream: tracing off vs on",
		Note: fmt.Sprintf("small-world reachability diamonds, %d-step random walk replayed to >=%d syntheses/run; medians over %d paired runs",
			steps, obsMinSyntheses, obsReps),
		Header: []string{"workload", "classes", "steps",
			"off(ms/syn)", "on(ms/syn)", "overhead", "off(alloc/syn)", "on(alloc/syn)", "spans/syn"},
	}
	for _, n := range sizes {
		w, err := BuildStreamWorkload(FamilySmallWorld, n, steps, config.Reachability, int64(n)*11)
		if err != nil {
			return nil, err
		}
		rounds := (obsMinSyntheses + len(w.Targets) - 1) / len(w.Targets)
		off := opt(core.Options{Timeout: timeout})
		on := off
		on.Trace = true

		if _, _, _, err := runObsStream(w, off, rounds); err != nil { // warm-up, untimed
			return nil, err
		}
		var offMS, onMS, ratios []float64
		var offAllocs, onAllocs int64
		var spans float64
		for r := 0; r < obsReps; r++ {
			oms, oallocs, _, err := runObsStream(w, off, rounds)
			if err != nil {
				return nil, err
			}
			nms, nallocs, sp, err := runObsStream(w, on, rounds)
			if err != nil {
				return nil, err
			}
			offMS, onMS = append(offMS, oms), append(onMS, nms)
			ratios = append(ratios, nms/oms)
			offAllocs, onAllocs, spans = oallocs, nallocs, sp
		}
		t.Add(fmt.Sprintf("small-world-%d", n), len(w.Specs), len(w.Targets),
			median(offMS), median(onMS),
			fmt.Sprintf("%+.2f%%", (median(ratios)-1)*100),
			offAllocs, onAllocs, spans)
	}
	return t, nil
}

// median returns the middle value of xs (xs is sorted in place).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// runObsStream serves the target walk rounds times from one warm session
// (round two onward re-approaches the walk from its end, so later rounds
// exercise the steady-state cache-verify path), returning milliseconds
// and heap allocations per synthesis. With tracing enabled it also
// verifies every plan carries its trace snapshot and returns the mean
// span count per synthesis.
func runObsStream(w *StreamWorkload, opts core.Options, rounds int) (float64, int64, float64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	sess, err := core.NewSession(w.Topo, w.Init, w.Specs, opts)
	if err != nil {
		return 0, 0, 0, err
	}
	spans, total := 0, 0
	for r := 0; r < rounds; r++ {
		for _, tgt := range w.Targets {
			plan, err := sess.Synthesize(tgt)
			if err != nil {
				return 0, 0, 0, err
			}
			total++
			if opts.Trace {
				if plan.Trace == nil {
					return 0, 0, 0, fmt.Errorf("bench: tracing enabled but the plan carries no trace")
				}
				spans += len(plan.Trace.Spans)
			}
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(total)
	return elapsed.Seconds() * 1000 / n, int64(m1.Mallocs-m0.Mallocs) / int64(total),
		float64(spans) / n, nil
}
