package bench

import (
	"errors"
	"fmt"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/hsa"
	"netupdate/internal/kripke"
	"netupdate/internal/mc"
	"netupdate/internal/sim"
	"netupdate/internal/twophase"
)

// Fig2a reproduces Figure 2(a): probes received over time during the
// red-to-green update of Figure 1 under the naive, two-phase, and
// synthesized ordering updates.
func Fig2a() (*Table, error) {
	sc := config.Fig1RedGreen()
	classes := []config.Class{sc.Specs[0].Class}
	params := sim.Params{
		LinkLatency:   50 * time.Microsecond,
		UpdateLatency: 500 * time.Millisecond, // slow switches: visible window
		ProbeInterval: 5 * time.Millisecond,
		Duration:      6 * time.Second,
		BucketWidth:   250 * time.Millisecond,
		CommandStart:  time.Second,
	}
	plan, err := core.Synthesize(sc, opt(core.Options{}))
	if err != nil {
		return nil, err
	}
	naive := sim.Run(sc.Topo, sc.Init, twophase.Naive(sc), classes, params)
	ordering := sim.Run(sc.Topo, sc.Init, plan.Commands(), classes, params)
	tp := sim.Run(sc.Topo, sc.Init, twophase.Build(sc).Commands, classes, params)

	t := &Table{
		Title:  "Figure 2(a): probes received during the red->green update",
		Note:   "fraction of probes delivered, bucketed by send time",
		Header: []string{"t(s)", "naive", "ordering", "two-phase"},
	}
	for i := range naive.Buckets {
		t.Add(
			fmt.Sprintf("%.2f", naive.Buckets[i].Start.Seconds()),
			naive.Buckets[i].Fraction(),
			ordering.Buckets[i].Fraction(),
			tp.Buckets[i].Fraction(),
		)
	}
	t.Add("lost", naive.Lost, ordering.Lost, tp.Lost)
	return t, nil
}

// Fig2b reproduces Figure 2(b): per-switch rule overhead of the
// two-phase update versus the synthesized ordering update.
func Fig2b() (*Table, error) {
	sc := config.Fig1RedGreen()
	_, nodes := config.Fig1Topology()
	plan, err := core.Synthesize(sc, opt(core.Options{}))
	if err != nil {
		return nil, err
	}
	tp := twophase.Build(sc)
	ordPeak, _ := twophase.OrderingPeaks(sc.Init, plan.Commands())
	t := &Table{
		Title:  "Figure 2(b): per-switch rule overhead (peak/steady)",
		Header: []string{"switch", "two-phase", "ordering"},
	}
	names := []struct {
		name string
		sw   int
	}{
		{"T1", nodes.T1}, {"T2", nodes.T2}, {"T3", nodes.T3}, {"T4", nodes.T4},
		{"A1", nodes.A1}, {"A2", nodes.A2}, {"A3", nodes.A3}, {"A4", nodes.A4},
		{"C1", nodes.C1}, {"C2", nodes.C2},
	}
	ratio := func(peak, steady int) string {
		if steady == 0 {
			if peak == 0 {
				return "-"
			}
			return fmt.Sprintf("%dX/0", peak)
		}
		return fmt.Sprintf("%.1fX", float64(peak)/float64(steady))
	}
	for _, n := range names {
		steady := len(sc.Final.Table(n.sw))
		if s := len(sc.Init.Table(n.sw)); s > steady {
			steady = s
		}
		t.Add(n.name, ratio(tp.PeakRules[n.sw], steady), ratio(ordPeak[n.sw], steady))
	}
	return t, nil
}

// SynthesisPoint is one measurement of a synthesis sweep.
type SynthesisPoint struct {
	Size     int
	Rules    int
	Updating int
	// Seconds per checker backend; negative values mark timeout/error.
	Seconds map[string]float64
}

// Fig7 reproduces Figure 7(a-c): synthesis runtime with the Incremental,
// Batch, and NuSMV-substitute backends on one topology family, for the
// reachability property.
func Fig7(f Family, sizes []int, checkers []core.CheckerKind, timeout time.Duration) (*Table, []SynthesisPoint, error) {
	return sweep(fmt.Sprintf("Figure 7 (%s): synthesis runtime by checker", f),
		f, sizes, checkers, config.Reachability, timeout, false)
}

// Fig7Rule reproduces Figure 7(d-f): Incremental versus the NetPlumber
// substitute at rule granularity; the x axis is the rule count.
func Fig7Rule(f Family, sizes []int, timeout time.Duration) (*Table, []SynthesisPoint, error) {
	return sweep(fmt.Sprintf("Figure 7 d-f (%s): rule-granularity runtime", f),
		f, sizes, []core.CheckerKind{core.CheckerIncremental, core.CheckerNetPlumber},
		config.Reachability, timeout, true)
}

func sweep(title string, f Family, sizes []int, checkers []core.CheckerKind, prop config.Property, timeout time.Duration, ruleGranularity bool) (*Table, []SynthesisPoint, error) {
	var points []SynthesisPoint
	for _, n := range sizes {
		background := 0
		if ruleGranularity {
			background = n // realistic table sizes for the rule-count axis
		}
		sc, err := DiamondWorkloadBG(f, n, prop, int64(n), background)
		if err != nil {
			return nil, nil, err
		}
		pt := SynthesisPoint{
			Size:     sc.Topo.NumSwitches(),
			Rules:    sc.Init.NumRules() + sc.Final.NumRules(),
			Updating: len(sc.UpdatingSwitches()),
			Seconds:  map[string]float64{},
		}
		for _, ck := range checkers {
			secs, err := timeSynthesis(sc, opt(core.Options{
				Checker: ck, Timeout: timeout, RuleGranularity: ruleGranularity,
			}))
			if err != nil {
				pt.Seconds[ck.String()] = -1
				continue
			}
			pt.Seconds[ck.String()] = secs
		}
		points = append(points, pt)
	}
	t := &Table{Title: title}
	t.Header = []string{"switches", "rules", "updating"}
	for _, ck := range checkers {
		t.Header = append(t.Header, ck.String()+"(s)")
	}
	for _, pt := range points {
		row := []interface{}{pt.Size, pt.Rules, pt.Updating}
		for _, ck := range checkers {
			if s := pt.Seconds[ck.String()]; s < 0 {
				row = append(row, "t/o")
			} else {
				row = append(row, pt.Seconds[ck.String()])
			}
		}
		t.Add(row...)
	}
	return t, points, nil
}

func timeSynthesis(sc *config.Scenario, opts core.Options) (float64, error) {
	start := time.Now()
	_, err := core.Synthesize(sc, opts)
	if err != nil && !errors.Is(err, core.ErrNoOrdering) {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// Fig8g reproduces Figure 8(g): scalability of the incremental backend on
// Small-World topologies for the three property families. It also
// returns the wait-removal statistics used by the "Waits" paragraph of
// Section 6.
func Fig8g(sizes []int, timeout time.Duration) (*Table, *Table, error) {
	t := &Table{
		Title:  "Figure 8(g): Small-World scalability (Incremental checker)",
		Header: []string{"switches", "updating", "reachability(s)", "waypointing(s)", "service-chaining(s)"},
	}
	w := &Table{
		Title:  "Section 6 'Waits': wait removal on the 8(g) runs",
		Header: []string{"switches", "property", "waits-before", "waits-after", "removal(s)"},
	}
	for _, n := range sizes {
		row := []interface{}{0, 0}
		for _, prop := range []config.Property{config.Reachability, config.Waypointing, config.ServiceChaining} {
			sc, err := DiamondWorkload(FamilySmallWorld, n, prop, int64(n)*7)
			if err != nil {
				return nil, nil, err
			}
			row[0] = sc.Topo.NumSwitches()
			if prop == config.Reachability {
				row[1] = len(sc.UpdatingSwitches())
			}
			start := time.Now()
			plan, err := core.Synthesize(sc, opt(core.Options{Timeout: timeout}))
			if err != nil {
				row = append(row, "t/o")
				continue
			}
			row = append(row, time.Since(start).Seconds())
			w.Add(sc.Topo.NumSwitches(), prop.String(), plan.Stats.WaitsBefore,
				plan.Stats.WaitsAfter, plan.Stats.WaitRemovalElapsed.Seconds())
		}
		t.Add(row...)
	}
	return t, w, nil
}

// Fig8h reproduces Figure 8(h): detecting that no switch-granularity
// update exists on double-diamond workloads (the runtime to report
// "impossible").
func Fig8h(sizes []int, timeout time.Duration) (*Table, error) {
	t := &Table{
		Title:  "Figure 8(h): time to report 'impossible' (switch granularity)",
		Header: []string{"switches", "reachability(s)", "waypointing(s)", "service-chaining(s)"},
	}
	for _, n := range sizes {
		row := []interface{}{n}
		for _, prop := range []config.Property{config.Reachability, config.Waypointing, config.ServiceChaining} {
			sc, err := InfeasibleWorkload(n, prop, n/30+1, int64(n)*3)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			_, serr := core.Synthesize(sc, opt(core.Options{Timeout: timeout}))
			switch {
			case errors.Is(serr, core.ErrNoOrdering):
				row = append(row, time.Since(start).Seconds())
			case serr == nil:
				return nil, fmt.Errorf("bench: infeasible workload was solved at switch granularity")
			default:
				row = append(row, "t/o")
			}
		}
		t.Add(row...)
	}
	return t, nil
}

// Fig8i reproduces Figure 8(i): solving the switch-impossible workloads
// at rule granularity; the x axis is the rule count.
func Fig8i(sizes []int, timeout time.Duration) (*Table, *Table, error) {
	t := &Table{
		Title:  "Figure 8(i): rule-granularity solves the 8(h) workloads",
		Header: []string{"switches", "rules", "reachability(s)", "waypointing(s)", "service-chaining(s)"},
	}
	w := &Table{
		Title:  "Section 6 'Waits': wait removal on the 8(i) runs",
		Header: []string{"rules", "property", "waits-before", "waits-after", "removal(s)"},
	}
	for _, n := range sizes {
		row := []interface{}{n, 0}
		for _, prop := range []config.Property{config.Reachability, config.Waypointing, config.ServiceChaining} {
			sc, err := InfeasibleWorkload(n, prop, n/30+1, int64(n)*3)
			if err != nil {
				return nil, nil, err
			}
			rules := sc.Init.NumRules() + sc.Final.NumRules()
			if prop == config.Reachability {
				row[1] = rules
			}
			start := time.Now()
			plan, serr := core.Synthesize(sc, opt(core.Options{RuleGranularity: true, Timeout: timeout}))
			if serr != nil {
				row = append(row, "t/o ("+serr.Error()+")")
				continue
			}
			row = append(row, time.Since(start).Seconds())
			w.Add(rules, prop.String(), plan.Stats.WaitsBefore, plan.Stats.WaitsAfter,
				plan.Stats.WaitRemovalElapsed.Seconds())
		}
		t.Add(row...)
	}
	return t, w, nil
}

// CheckerOnly reproduces the Section 6 "Incremental vs NetPlumber"
// checker-only comparison: both backends answer the same sequence of
// model-checking questions (the updates of a synthesized plan) and the
// total times are compared.
func CheckerOnly(n int) (*Table, error) {
	sc, err := DiamondWorkload(FamilySmallWorld, n, config.Reachability, int64(n))
	if err != nil {
		return nil, err
	}
	plan, err := core.Synthesize(sc, opt(core.Options{}))
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Section 6: checker-only comparison on identical MC questions",
		Header: []string{"backend", "checks", "total(s)"},
	}
	for _, mk := range []struct {
		name    string
		factory mc.Factory
	}{
		{"incremental", mc.NewIncremental},
		{"netplumber-like", hsa.New},
	} {
		secs, checks, err := replayPlan(sc, plan, mk.factory)
		if err != nil {
			return nil, err
		}
		t.Add(mk.name, checks, secs)
	}
	return t, nil
}

// replayPlan replays the plan's update sequence against fresh checkers of
// the given factory, timing only checker work.
func replayPlan(sc *config.Scenario, plan *core.Plan, factory mc.Factory) (float64, int, error) {
	var ks []*kripke.K
	var chks []mc.Checker
	for _, cs := range sc.Specs {
		k, err := kripke.Build(sc.Topo, sc.Init, cs.Class)
		if err != nil {
			return 0, 0, err
		}
		chk, err := factory(k, cs.Formula)
		if err != nil {
			return 0, 0, err
		}
		ks = append(ks, k)
		chks = append(chks, chk)
	}
	checks := 0
	start := time.Now()
	for _, chk := range chks {
		chk.Check()
		checks++
	}
	for _, st := range plan.Updates() {
		for ci := range ks {
			delta, err := ks[ci].UpdateSwitch(st.Switch, st.Table)
			if err != nil {
				return 0, 0, err
			}
			chks[ci].Update(delta)
			checks++
		}
	}
	return time.Since(start).Seconds(), checks, nil
}

// Ablation measures the synthesis optimizations of Section 4.2 on one
// workload: full configuration versus disabling counterexample learning,
// early termination, and the heuristic candidate order.
func Ablation(n int, timeout time.Duration) (*Table, error) {
	sc, err := DiamondWorkload(FamilySmallWorld, n, config.Reachability, int64(n))
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: Section 4.2 optimizations (diamond workload)",
		Header: []string{"configuration", "result", "time(s)", "checks", "cex", "pruned"},
	}
	cases := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{Timeout: timeout}},
		{"no-cex-learning", core.Options{NoCexLearning: true, Timeout: timeout}},
		{"no-early-termination", core.Options{NoEarlyTermination: true, Timeout: timeout}},
		{"no-heuristic-order", core.Options{NoHeuristicOrder: true, Timeout: timeout}},
		{"batch-checker", core.Options{Checker: core.CheckerBatch, Timeout: timeout}},
	}
	for _, c := range cases {
		start := time.Now()
		plan, err := core.Synthesize(sc, opt(c.opts))
		el := time.Since(start).Seconds()
		switch {
		case err == nil:
			t.Add(c.name, "ok", el, plan.Stats.Checks, plan.Stats.CexLearned,
				plan.Stats.WrongPruned+plan.Stats.VisitedPruned)
		case errors.Is(err, core.ErrTimeout):
			t.Add(c.name, "timeout", el, "-", "-", "-")
		default:
			return nil, err
		}
	}
	// Infeasible instance: early termination is the difference-maker.
	scInf, err := InfeasibleWorkload(40, config.Reachability, 1, 9)
	if err != nil {
		return nil, err
	}
	for _, c := range []struct {
		name string
		opts core.Options
	}{
		{"infeasible/full", core.Options{Timeout: timeout}},
		{"infeasible/no-early-termination", core.Options{NoEarlyTermination: true, Timeout: timeout}},
	} {
		start := time.Now()
		_, err := core.Synthesize(scInf, opt(c.opts))
		el := time.Since(start).Seconds()
		switch {
		case errors.Is(err, core.ErrNoOrdering):
			t.Add(c.name, "impossible", el, "-", "-", "-")
		case errors.Is(err, core.ErrTimeout):
			t.Add(c.name, "timeout", el, "-", "-", "-")
		case err == nil:
			return nil, fmt.Errorf("bench: infeasible instance solved")
		default:
			return nil, err
		}
	}
	// The 2-simple extension solves the same instance at switch
	// granularity.
	start := time.Now()
	plan, err := core.Synthesize(scInf, opt(core.Options{TwoSimple: true, Timeout: timeout}))
	if err != nil {
		return nil, fmt.Errorf("bench: 2-simple failed on infeasible instance: %w", err)
	}
	t.Add("infeasible/2-simple", "ok", time.Since(start).Seconds(),
		plan.Stats.Checks, plan.Stats.CexLearned,
		plan.Stats.WrongPruned+plan.Stats.VisitedPruned)
	return t, nil
}
