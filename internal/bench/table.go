// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation (Section 6) it provides a runner that generates
// the workload, executes the synthesizer or simulator, and returns the
// series the paper plots. cmd/experiments pretty-prints them; the root
// bench_test.go wraps them as Go benchmarks.
package bench

import (
	"fmt"
	"strings"
)

// Table is a printable result table: one row per measurement point. The
// exported fields double as the machine-readable form (see Report), so
// figures can be diffed run-over-run.
type Table struct {
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
