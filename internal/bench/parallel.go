package bench

import (
	"errors"
	"fmt"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
)

// Parallelism is applied to every synthesis run the harness performs.
// Zero (the default) pins the figure harnesses to the sequential engine
// so regenerated tables reproduce the paper's numbers independent of the
// host's core count; cmd/experiments overrides it from -parallel. The
// parallel engine itself is measured by ParallelSpeedup and the root
// benchmark variants, which set worker counts explicitly.
var Parallelism int

// opt stamps the harness-wide parallelism onto a synthesis configuration.
func opt(o core.Options) core.Options {
	if o.Parallelism == 0 {
		if Parallelism != 0 {
			o.Parallelism = Parallelism
		} else {
			o.Parallelism = 1
		}
	}
	return o
}

// ParallelSpeedup measures the parallel engine against the sequential one
// on the evaluation workloads: feasible diamonds (the Figure 7/8g
// families) and the infeasible double-diamonds of Figure 8h, where the
// proof of impossibility explores an entire subtree and fans out best.
// Every workload is solved sequentially, with the deterministic parallel
// engine, and in first-plan-wins mode, at the given worker count.
func ParallelSpeedup(sizes []int, workers int, timeout time.Duration) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Parallel synthesis: sequential vs %d workers", workers),
		Note:  "det = deterministic (sequential plan), racy = first-plan-wins",
		Header: []string{"workload", "units", "seq(s)", "det(s)", "racy(s)",
			"det-x", "racy-x"},
	}
	type load struct {
		name string
		sc   *config.Scenario
		opts core.Options
	}
	var loads []load
	for _, n := range sizes {
		sc, err := DiamondWorkload(FamilySmallWorld, n, config.ServiceChaining, int64(n)*7)
		if err != nil {
			return nil, err
		}
		loads = append(loads, load{fmt.Sprintf("diamond-chain-%d", n), sc, core.Options{Timeout: timeout}})
		scInf, err := InfeasibleWorkload(n, config.Reachability, n/30+1, int64(n)*3)
		if err != nil {
			return nil, err
		}
		loads = append(loads, load{fmt.Sprintf("infeasible-%d", n), scInf, core.Options{Timeout: timeout}})
	}
	for _, l := range loads {
		units := len(l.sc.UpdatingSwitches())
		// Timeouts mark the cell "t/o" and the sweep continues, like the
		// figure harnesses; only unexpected errors abort the table.
		run := func(o core.Options) (float64, error) {
			start := time.Now()
			_, err := core.Synthesize(l.sc, o)
			switch {
			case errors.Is(err, core.ErrTimeout):
				return -1, nil
			case err != nil && !errors.Is(err, core.ErrNoOrdering):
				return 0, err
			}
			return time.Since(start).Seconds(), nil
		}
		seqOpts := l.opts
		seqOpts.Parallelism = 1
		seq, err := run(seqOpts)
		if err != nil {
			return nil, err
		}
		detOpts := l.opts
		detOpts.Parallelism = workers
		det, err := run(detOpts)
		if err != nil {
			return nil, err
		}
		racyOpts := detOpts
		racyOpts.FirstPlanWins = true
		racy, err := run(racyOpts)
		if err != nil {
			return nil, err
		}
		cell := func(s float64) interface{} {
			if s < 0 {
				return "t/o"
			}
			return s
		}
		ratio := func(s float64) string {
			if s <= 0 || seq <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fx", seq/s)
		}
		t.Add(l.name, units, cell(seq), cell(det), cell(racy), ratio(det), ratio(racy))
	}
	return t, nil
}
