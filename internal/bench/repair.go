package bench

import (
	"fmt"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
)

// RepairCompare measures warm-session repair against cold resynthesis
// from the same crash state. For each multi-region workload a plan is
// synthesized and its execution "crashes" halfway — the first half of
// the plan's DAG nodes committed (a sequential prefix is always
// dependency-closed). The warm path calls Session.Repair on the session
// that produced the plan: its per-class structures rebind to the crash
// configuration diff-proportionally and the search resumes with every
// checker cache hot. The cold path rebuilds everything from scratch at
// the crash configuration (what a controller without repair support
// would do: construct a fresh engine and synthesize). Both must produce
// the identical plan — the search is deterministic — so the speedup is
// pure warm-state advantage.
func RepairCompare(sizes []int, timeout time.Duration) (*Table, error) {
	t := &Table{
		Title: "Warm-session repair vs cold resynthesis from the crash state",
		Note:  "multi-region reachability workloads, crash after half the plan's DAG nodes; best of 3",
		Header: []string{"workload", "units", "committed",
			"repair(ms)", "cold(ms)", "speedup", "exec(ms)", "match"},
	}
	for _, n := range sizes {
		topo := topology.SmallWorld(n, 6, 0.3, int64(n)*13)
		if err := repairRow(t, fmt.Sprintf("smallworld-%d", n), topo, dagRegions(n), timeout); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// repairRow measures one workload. Placement retries with fewer regions
// on cramped topologies, mirroring dagRow.
func repairRow(t *Table, name string, topo *topology.Topology, regions int, timeout time.Duration) error {
	var sc *config.Scenario
	var err error
	for r := regions; r >= 1; r-- {
		sc, err = config.MultiRegion(topo, config.MultiRegionOptions{
			Regions: r, PairsPerRegion: 2,
			Property: config.Reachability, Seed: int64(topo.NumSwitches()) * 11,
		})
		if err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("bench: cannot place any region on %s", name)
	}
	opts := opt(core.Options{Timeout: timeout})

	const iters = 3
	var warmBest, coldBest time.Duration
	var units, committed int
	var execMS float64
	match := true
	for it := 0; it < iters; it++ {
		// Warm: a session synthesizes the plan (not timed), the execution
		// crashes after the first half of the DAG nodes, Repair is timed.
		// A fresh session per iteration keeps the repair's start state
		// identical across iterations.
		sess, err := core.NewSession(sc.Topo, sc.Init, sc.Specs, opts)
		if err != nil {
			return err
		}
		plan, err := sess.Synthesize(sc.Final)
		if err != nil {
			return err
		}
		ups := plan.Updates()
		prefix := make([]int, len(ups)/2)
		for i := range prefix {
			prefix[i] = i
		}
		units, committed = len(ups), len(prefix)

		start := time.Now()
		rep, err := sess.Repair(prefix, nil)
		warm := time.Since(start)
		if err != nil {
			return fmt.Errorf("bench: repair %s: %w", name, err)
		}

		// Cold: rebuild the whole engine at the crash configuration and
		// synthesize to the same target.
		crash := plan.ConfigAfter(sc.Init, prefix)
		crashSc := &config.Scenario{
			Name: sc.Name + "-crash", Topo: sc.Topo,
			Init: crash, Final: sc.Final, Specs: sc.Specs,
		}
		start = time.Now()
		cold, err := core.Synthesize(crashSc, opts)
		coldDur := time.Since(start)
		if err != nil {
			return fmt.Errorf("bench: cold resynthesis %s: %w", name, err)
		}
		if rep.String() != cold.String() {
			match = false
		}
		// Execute the repair plan's DAG once from the crash state (not
		// timed: this is the simulated rollout, not synthesis) and take
		// the last node commit from the per-node timeline — the real
		// time-to-repaired the figure previously could not report.
		if it == 0 {
			var classes []config.Class
			for _, cs := range sc.Specs {
				classes = append(classes, cs.Class)
			}
			res := sim.RunPlanDAG(sc.Topo, crash, rep, classes,
				sim.Params{Duration: 3 * time.Second, ProbeInterval: 2 * time.Millisecond})
			if res.Stalled || res.Lost > 0 {
				return fmt.Errorf("bench: repair execution %s: stalled=%v lost=%d",
					name, res.Stalled, res.Lost)
			}
			_, execMS = timelineStats(res.NodeTimeline)
		}
		if it == 0 || warm < warmBest {
			warmBest = warm
		}
		if it == 0 || coldDur < coldBest {
			coldBest = coldDur
		}
	}
	wms := warmBest.Seconds() * 1000
	cms := coldBest.Seconds() * 1000
	matchStr := "yes"
	if !match {
		matchStr = "NO"
	}
	t.Add(name, units, committed, wms, cms,
		fmt.Sprintf("%.2fx", cms/wms), execMS, matchStr)
	return nil
}
