package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// Report is the machine-readable envelope for a set of result tables:
// cmd/experiments -json emits one so figure runs can be archived and
// diffed run-over-run (the perf trajectory lives in BENCH_*.json files at
// the repository root).
type Report struct {
	Schema    int      `json:"schema"` // bumped on incompatible changes
	Generated string   `json:"generated"`
	GoVersion string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Figures   []*Table `json:"figures"`
}

// NewReport wraps tables in a schema-1 report stamped with the current
// time and toolchain.
func NewReport(figures []*Table) *Report {
	return &Report{
		Schema:    1,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Figures:   figures,
	}
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
