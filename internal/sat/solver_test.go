package sat

import (
	"math/rand"
	"testing"
)

// bruteSat decides satisfiability of a CNF by enumeration. assume maps
// variables to forced values.
func bruteSat(nVars int, cnf [][]Lit, assume map[int]bool) bool {
	for mask := 0; mask < 1<<nVars; mask++ {
		val := func(l Lit) bool {
			bit := mask>>(l.Var()-1)&1 == 1
			if l < 0 {
				return !bit
			}
			return bit
		}
		ok := true
		for v, want := range assume {
			if val(Lit(v)) != want {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				if val(l) {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func randCNF(r *rand.Rand, nVars, nClauses, maxLen int) [][]Lit {
	cnf := make([][]Lit, nClauses)
	for i := range cnf {
		n := 1 + r.Intn(maxLen)
		cl := make([]Lit, n)
		for j := range cl {
			v := 1 + r.Intn(nVars)
			if r.Intn(2) == 0 {
				cl[j] = Lit(v)
			} else {
				cl[j] = Lit(-v)
			}
		}
		cnf[i] = cl
	}
	return cnf
}

func TestSolveMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		nVars := 2 + r.Intn(7)
		cnf := randCNF(r, nVars, 1+r.Intn(20), 4)
		s := New()
		alive := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				alive = false
				break
			}
		}
		got := alive && s.Solve()
		want := bruteSat(nVars, cnf, nil)
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v cnf=%v", iter, got, want, cnf)
		}
		if got {
			// The model must actually satisfy the formula.
			for _, cl := range cnf {
				sat := false
				for _, l := range cl {
					v := s.Value(l.Var())
					if (l > 0 && v == 1) || (l < 0 && v == -1) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model does not satisfy clause %v", iter, cl)
				}
			}
		}
	}
}

func TestSolveWithAssumptions(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 1000; iter++ {
		nVars := 2 + r.Intn(6)
		cnf := randCNF(r, nVars, 1+r.Intn(15), 3)
		nAssume := r.Intn(3)
		var assumptions []Lit
		assume := map[int]bool{}
		for i := 0; i < nAssume; i++ {
			v := 1 + r.Intn(nVars)
			if _, dup := assume[v]; dup {
				continue
			}
			pos := r.Intn(2) == 0
			assume[v] = pos
			if pos {
				assumptions = append(assumptions, Lit(v))
			} else {
				assumptions = append(assumptions, Lit(-v))
			}
		}
		s := New()
		alive := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				alive = false
				break
			}
		}
		got := alive && s.Solve(assumptions...)
		want := bruteSat(nVars, cnf, assume)
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v cnf=%v assume=%v", iter, got, want, cnf, assume)
		}
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		nVars := 2 + r.Intn(6)
		s := New()
		var cnf [][]Lit
		dead := false
		for round := 0; round < 6; round++ {
			extra := randCNF(r, nVars, 1+r.Intn(4), 3)
			for _, cl := range extra {
				cnf = append(cnf, cl)
				if !dead && !s.AddClause(cl...) {
					dead = true
				}
			}
			got := !dead && s.Solve()
			want := bruteSat(nVars, cnf, nil)
			if got != want {
				t.Fatalf("iter %d round %d: solver=%v brute=%v cnf=%v", iter, round, got, want, cnf)
			}
			if dead {
				break
			}
		}
	}
}

func TestSolveAfterUnsatStaysUnsat(t *testing.T) {
	s := New()
	s.AddClause(1)
	if s.AddClause(-1) {
		t.Fatal("adding the complementary unit should report unsat")
	}
	if s.Solve() {
		t.Fatal("solver must remain unsat")
	}
	if s.AddClause(2) {
		t.Fatal("adds after top-level unsat must fail")
	}
}

func TestAssumptionsDoNotPersist(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	if !s.Solve(-1) {
		t.Fatal("expected sat under -1")
	}
	if !s.Solve(1) {
		t.Fatal("expected sat under 1 (assumption -1 must not persist)")
	}
	if !s.Solve(-1, -2) == bruteSat(2, [][]Lit{{1, 2}}, map[int]bool{1: false, 2: false}) {
		// (1|2) & !1 & !2 is unsat
		t.Fatal("expected unsat under -1,-2")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	if !s.AddClause(1, -1) {
		t.Fatal("tautology should be accepted (dropped)")
	}
	if !s.AddClause(2, 2, 2) {
		t.Fatal("duplicate literals should collapse")
	}
	if !s.Solve() {
		t.Fatal("expected sat")
	}
	if s.Value(2) != 1 {
		t.Fatal("unit 2 should be forced true")
	}
}

func TestPigeonhole(t *testing.T) {
	// 4 pigeons, 3 holes: classic small UNSAT instance exercising
	// clause learning. Var(p,h) = p*3 + h + 1.
	s := New()
	v := func(p, h int) Lit { return Lit(p*3 + h + 1) }
	for p := 0; p < 4; p++ {
		s.AddClause(v(p, 0), v(p, 1), v(p, 2))
	}
	for h := 0; h < 3; h++ {
		for p1 := 0; p1 < 4; p1++ {
			for p2 := p1 + 1; p2 < 4; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	if s.Solve() {
		t.Fatal("pigeonhole 4-into-3 must be unsat")
	}
	if s.Conflicts == 0 {
		t.Fatal("expected conflicts to be counted")
	}
}

func TestLitHelpers(t *testing.T) {
	if Lit(-3).Var() != 3 || Lit(3).Var() != 3 {
		t.Fatal("Var")
	}
	if Lit(3).Neg() != Lit(-3) {
		t.Fatal("Neg")
	}
	if toILit(Lit(1)) != 0 || toILit(Lit(-1)) != 1 {
		t.Fatal("ilit encoding")
	}
	if ilit(0).lit() != Lit(1) || ilit(1).lit() != Lit(-1) {
		t.Fatal("ilit decoding")
	}
}
