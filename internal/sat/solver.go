// Package sat implements a small incremental CDCL SAT solver: two-literal
// watching, first-UIP conflict clause learning with backjumping, VSIDS-
// style activity ordering, phase saving, and assumption-based incremental
// solving. The synthesis engine's early-search-termination optimization
// (Section 4.2.B of the paper) encodes ordering constraints learned from
// counterexamples and asks this solver whether any update order can still
// satisfy them.
package sat

import "fmt"

// Lit is a literal: +v for variable v, -v for its negation. Variables are
// numbered from 1 (DIMACS convention).
type Lit int

// Neg returns the negation of the literal.
func (l Lit) Neg() Lit { return -l }

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

func (l Lit) String() string { return fmt.Sprintf("%d", int(l)) }

// internal literal encoding: 2*v for +v, 2*v+1 for -v (v zero-based).
type ilit int32

func toILit(l Lit) ilit {
	v := l.Var() - 1
	if l < 0 {
		return ilit(2*v + 1)
	}
	return ilit(2 * v)
}

func (i ilit) neg() ilit { return i ^ 1 }
func (i ilit) vid() int  { return int(i >> 1) }

// sign returns +1 for a positive literal, -1 for a negative one.
func (i ilit) sign() int8 {
	if i&1 == 0 {
		return 1
	}
	return -1
}

func (i ilit) lit() Lit {
	if i&1 == 0 {
		return Lit(i.vid() + 1)
	}
	return Lit(-(i.vid() + 1))
}

type clause struct {
	lits   []ilit
	learnt bool
}

// Solver is an incremental CDCL solver; create one with New.
type Solver struct {
	nVars    int
	clauses  []*clause
	watches  [][]*clause // indexed by ilit: clauses watching the negation
	assign   []int8      // per var: 0 unassigned, +1 true, -1 false
	level    []int       // per var: decision level of assignment
	reason   []*clause   // per var: antecedent clause
	phase    []int8      // per var: saved polarity
	seen     []bool      // scratch for conflict analysis
	trail    []ilit
	trailLim []int
	qhead    int
	activity []float64
	varInc   float64
	unsat    bool // top-level contradiction derived

	// Conflicts, Decisions and Propagations count solver work across all
	// Solve calls.
	Conflicts    int64
	Decisions    int64
	Propagations int64
}

// New returns an empty solver.
func New() *Solver { return &Solver{varInc: 1} }

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

// NewVar allocates a fresh variable and returns it (1-based).
func (s *Solver) NewVar() int {
	s.nVars++
	s.watches = append(s.watches, nil, nil)
	s.assign = append(s.assign, 0)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, -1)
	s.seen = append(s.seen, false)
	s.activity = append(s.activity, 0)
	return s.nVars
}

func (s *Solver) ensure(v int) {
	for s.nVars < v {
		s.NewVar()
	}
}

// AddClause adds a clause; it may be called between Solve calls. It
// returns false if the formula is now unsatisfiable at the top level.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	s.backtrackTo(0)
	seen := map[ilit]bool{}
	var out []ilit
	for _, l := range lits {
		if l == 0 {
			panic("sat: zero literal")
		}
		s.ensure(l.Var())
		il := toILit(l)
		if seen[il.neg()] {
			return true // tautology
		}
		if seen[il] {
			continue
		}
		if s.assign[il.vid()] != 0 { // level-0 assignment
			if s.value(il) == 1 {
				return true // permanently satisfied
			}
			continue // permanently false literal
		}
		seen[il] = true
		out = append(out, il)
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		if !s.enqueue(out[0], nil) || s.propagate() != nil {
			s.unsat = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].neg()] = append(s.watches[c.lits[0].neg()], c)
	s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], c)
}

// value returns +1/-1/0 for a literal under the current assignment.
func (s *Solver) value(l ilit) int8 {
	a := s.assign[l.vid()]
	if a == 0 {
		return 0
	}
	return a * l.sign()
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) enqueue(l ilit, from *clause) bool {
	switch s.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	v := l.vid()
	s.assign[v] = l.sign()
	s.phase[v] = l.sign()
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation from qhead; it returns a conflicting
// clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[l]
		kept := ws[:0]
		var conflict *clause
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			if c.lits[0].neg() == l {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == 1 {
				kept = append(kept, c)
				continue
			}
			moved := false
			for i := 2; i < len(c.lits); i++ {
				if s.value(c.lits[i]) != -1 {
					c.lits[1], c.lits[i] = c.lits[i], c.lits[1]
					s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				kept = append(kept, ws[wi+1:]...)
				conflict = c
				break
			}
		}
		s.watches[l] = kept
		if conflict != nil {
			s.qhead = len(s.trail)
			return conflict
		}
	}
	return nil
}

func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

func (s *Solver) backtrackTo(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].vid()
		s.assign[v] = 0
		s.reason[v] = nil
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(conflict *clause) ([]ilit, int) {
	learnt := []ilit{0} // slot 0 for the asserting literal
	counter := 0
	var p ilit = -1
	idx := len(s.trail) - 1
	c := conflict
	var toClear []int
	for {
		start := 0
		if p != -1 {
			start = 1 // skip the asserting position in reason clauses
		}
		for _, q := range c.lits[start:] {
			v := q.vid()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			toClear = append(toClear, v)
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail backwards to the next marked literal.
		for !s.seen[s.trail[idx].vid()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		counter--
		s.seen[p.vid()] = false
		if counter == 0 {
			break
		}
		c = s.reason[p.vid()]
	}
	learnt[0] = p.neg()
	// Backjump level: highest level among the other literals.
	bt := 0
	for i := 1; i < len(learnt); i++ {
		if l := s.level[learnt[i].vid()]; l > bt {
			bt = l
		}
	}
	// Move a literal of backjump level into the second watch slot.
	if len(learnt) > 1 {
		mi := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].vid()] > s.level[learnt[mi].vid()] {
				mi = i
			}
		}
		learnt[1], learnt[mi] = learnt[mi], learnt[1]
	}
	for _, v := range toClear {
		s.seen[v] = false
	}
	return learnt, bt
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// pickBranch returns an unassigned variable with maximal activity, or -1.
func (s *Solver) pickBranch() int {
	best, bestAct := -1, -1.0
	for v := 0; v < s.nVars; v++ {
		if s.assign[v] == 0 && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// Solve reports satisfiability under the given assumptions. Clauses may be
// added before and between calls. With no assumptions it decides the
// accumulated formula.
func (s *Solver) Solve(assumptions ...Lit) bool {
	if s.unsat {
		return false
	}
	s.backtrackTo(0)
	if s.propagate() != nil {
		s.unsat = true
		return false
	}
	// Install assumptions, each at its own decision level.
	for _, a := range assumptions {
		s.ensure(a.Var())
		il := toILit(a)
		switch s.value(il) {
		case 1:
			continue
		case -1:
			s.backtrackTo(0)
			return false
		}
		s.newDecisionLevel()
		s.enqueue(il, nil)
		if s.propagate() != nil {
			s.backtrackTo(0)
			return false
		}
	}
	nAssume := s.decisionLevel()
	for {
		conflict := s.propagate()
		if conflict != nil {
			s.Conflicts++
			if s.decisionLevel() <= nAssume {
				s.backtrackTo(0)
				if nAssume == 0 {
					s.unsat = true
				}
				return false
			}
			learnt, bt := s.analyze(conflict)
			if bt < nAssume {
				bt = nAssume
			}
			s.backtrackTo(bt)
			if len(learnt) == 1 {
				s.backtrackTo(0)
				if !s.enqueue(learnt[0], nil) || s.propagate() != nil {
					s.unsat = true
					return false
				}
				// Re-install assumptions from scratch.
				return s.Solve(assumptions...)
			}
			c := &clause{lits: learnt, learnt: true}
			s.clauses = append(s.clauses, c)
			s.watch(c)
			if !s.enqueue(learnt[0], c) {
				s.backtrackTo(0)
				return false
			}
			s.varInc *= 1.05
			continue
		}
		v := s.pickBranch()
		if v == -1 {
			// Full assignment found; leave it readable via Value.
			return true
		}
		s.Decisions++
		s.newDecisionLevel()
		s.enqueue(ilit(2*v)|ilit(b2i(s.phase[v] < 0)), nil)
	}
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// Value returns the assignment of variable v after a satisfiable Solve:
// +1 true, -1 false, 0 unassigned.
func (s *Solver) Value(v int) int8 {
	if v < 1 || v > s.nVars {
		return 0
	}
	return s.assign[v-1]
}
