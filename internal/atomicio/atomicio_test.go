package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := WriteFileBytes(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("content = %q, want %q", got, "v2")
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestWriteFileFailurePreservesPrevious(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := WriteFileBytes(path, []byte("good")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("previous content lost: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}
