// Package atomicio provides the tmp+rename atomic file write the CLIs
// use for learning snapshots and the pool uses for session snapshots: an
// interrupted save never truncates or corrupts the previous state,
// because the destination is only ever replaced by a fully-written file.
package atomicio

import (
	"io"
	"os"
)

// WriteFile writes the output of write to path atomically: the content
// goes to path+".tmp" first and is renamed over path only after a
// successful write and close. On any failure the temporary file is
// removed and the previous contents of path are untouched.
func WriteFile(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// WriteFileBytes is WriteFile for in-memory content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
