// Decentralized plan-DAG execution. Instead of a central controller
// stepping through a sequential command schedule (Run), each switch
// commits its update as soon as the acks of its DAG predecessors are
// visible, under configurable install/ack latency; drain edges
// additionally wait until no packet sent before the predecessor's commit
// is still in flight (the decentralized form of a wait barrier). This is
// the runtime counterpart of core.PlanDAG: any such execution is
// trace-equivalent to the sequential plan.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// DAGNode is one update of a dependency-DAG schedule: install Table on
// Switch once every node in Preds has acked; entries of DrainPreds
// (a subset of Preds) must additionally have their pre-commit traffic
// drained from the network before this install may start.
type DAGNode struct {
	Switch     int
	Table      network.Table
	Preds      []int
	DrainPreds []int
}

// PlanDAGNodes lowers a synthesized plan and its dependency DAG to the
// executor's node list (one node per non-wait step, in step order).
func PlanDAGNodes(plan *core.Plan) []DAGNode {
	ups := plan.Updates()
	nodes := make([]DAGNode, len(ups))
	for j, st := range ups {
		nodes[j] = DAGNode{Switch: st.Switch, Table: st.Table}
		if d := plan.DAG; d != nil {
			nodes[j].Preds = d.Preds[j]
			if d.Drain != nil {
				nodes[j].DrainPreds = d.Drain[j]
			}
		} else if j > 0 {
			// No DAG attached: degrade to the sequential chain.
			nodes[j].Preds = []int{j - 1}
		}
	}
	return nodes
}

// RunPlanDAG executes a synthesized plan decentralized via its
// dependency DAG and returns the delivery time series; compare
// Result.CompleteAt against Run(topo, init, plan.Commands(), ...) for
// the central-vs-decentralized completion-time gap.
func RunPlanDAG(topo *topology.Topology, init *config.Config, plan *core.Plan, classes []config.Class, p Params) *Result {
	return RunDAG(topo, init, PlanDAGNodes(plan), classes, p)
}

// RunDAG simulates decentralized execution of a dependency-DAG schedule
// against continuous probe traffic. Execution starts at CommandStart;
// every node with no predecessors begins installing immediately, and
// each remaining node begins once all predecessor acks (commit +
// AckLatency) are visible and its drain predecessors have quiesced.
func RunDAG(topo *topology.Topology, init *config.Config, nodes []DAGNode, classes []config.Class, p Params) *Result {
	p.fill()
	s := &sim{
		topo:           topo,
		tables:         map[int]network.Table{},
		inflight:       map[int]int{},
		inflightBySent: map[time.Duration]int{},
		classes:        classes,
		p:              p,
		rng:            rand.New(rand.NewSource(p.Seed)),
		crashSw:        -1,
		dag:            nodes,
	}
	for _, sw := range init.Switches() {
		s.tables[sw] = init.Table(sw).Clone()
	}
	n := len(nodes)
	s.dagSuccs = make([][]int, n)
	s.ackLeft = make([]int, n)
	s.commitAt = make([]time.Duration, n)
	s.startAt = make([]time.Duration, n)
	s.started = make([]bool, n)
	for j := range nodes {
		s.ackLeft[j] = len(nodes[j].Preds)
		s.commitAt[j] = -1
		s.startAt[j] = -1
		for _, i := range nodes[j].Preds {
			s.dagSuccs[i] = append(s.dagSuccs[i], j)
		}
	}
	if f := p.Faults; f != nil {
		s.frng = rand.New(rand.NewSource(f.Seed))
		s.attempts = make([]int, n)
		s.ackDelivered = make([][]bool, n)
		for j := range nodes {
			s.ackDelivered[j] = make([]bool, len(s.dagSuccs[j]))
		}
		if f.Crash != nil && f.Crash.AtCommit <= 0 {
			s.crashSw = f.Crash.Switch
		}
	}
	s.push(&event{at: 0, kind: evProbe})
	if n > 0 {
		s.push(&event{at: p.CommandStart, kind: evDAGStart})
	}
	s.loop()
	s.res.Committed = make([]int, 0, n)
	for j := range nodes {
		if s.commitAt[j] >= 0 {
			s.res.Committed = append(s.res.Committed, j)
		}
	}
	s.res.Stalled = len(s.res.Committed) < n
	s.res.NodeTimeline = make([]NodeTiming, n)
	for j := range nodes {
		att := 0
		if s.started[j] {
			att = 1
		}
		if s.attempts != nil {
			att += s.attempts[j]
		}
		s.res.NodeTimeline[j] = NodeTiming{
			Switch:   nodes[j].Switch,
			Start:    s.startAt[j],
			Attempts: att,
			CommitAt: s.commitAt[j],
		}
		// Export each node's install interval on the simulated clock; an
		// uncommitted node renders as an open-ended span to the run's end.
		if tr := p.Trace; tr != nil && s.startAt[j] >= 0 {
			end := s.commitAt[j]
			name := "install"
			if end < 0 {
				end = s.res.End
				name = "install-stalled"
			}
			tr.RecordAt(name, 0, j+1, s.startAt[j], end,
				fmt.Sprintf("sw=%d attempts=%d", nodes[j].Switch, att))
		}
	}
	return &s.res
}

// dagStart launches every root node at CommandStart.
func (s *sim) dagStart() {
	for j := range s.dag {
		if len(s.dag[j].Preds) == 0 {
			s.dagTryStart(j)
		}
	}
}

// dagTryStart begins node j's install if its drain predecessors have
// quiesced, else parks it until an in-flight packet exits. Callers
// guarantee all of j's predecessor acks are visible.
func (s *sim) dagTryStart(j int) {
	if s.started[j] {
		return
	}
	if !s.dagDrainOK(j) {
		for _, k := range s.drainPend {
			if k == j {
				return
			}
		}
		s.drainPend = append(s.drainPend, j)
		return
	}
	s.started[j] = true
	s.startAt[j] = s.now
	s.push(&event{at: s.now + s.installLat(), kind: evInstall, node: j})
	if s.p.Faults != nil {
		s.push(&event{at: s.now + s.p.InstallTimeout, kind: evInstallTimeout, node: j})
	}
}

// dagDrainOK reports whether every drain predecessor of j has quiesced:
// no packet sent before the predecessor's commit time is still in
// flight. Because the minimum in-flight send time is tracked
// incrementally, this is O(|DrainPreds|) with no scan of the
// inflight-by-send-time index.
func (s *sim) dagDrainOK(j int) bool {
	min, ok := s.minInflightSent()
	if !ok {
		return true
	}
	for _, i := range s.dag[j].DrainPreds {
		if min < s.commitAt[i] {
			return false
		}
	}
	return true
}

// dagRecheckDrain retries parked nodes after a packet exits.
func (s *sim) dagRecheckDrain() {
	if len(s.drainPend) == 0 {
		return
	}
	pend := s.drainPend
	s.drainPend = s.drainPend[:0]
	for _, j := range pend {
		s.dagTryStart(j)
	}
}

// dagInstall commits node j's table and broadcasts its ack. In fault
// mode the install may fail silently (crashed switch or an InstallLoss
// draw); the watchdog armed by dagTryStart recovers by re-issuing it.
func (s *sim) dagInstall(j int) {
	nd := &s.dag[j]
	if s.commitAt[j] >= 0 {
		return // a retried install raced an earlier success
	}
	if f := s.p.Faults; f != nil {
		if nd.Switch == s.crashSw {
			return
		}
		if f.InstallLoss > 0 && s.frng.Float64() < f.InstallLoss {
			return
		}
	}
	s.tables[nd.Switch] = nd.Table.Clone()
	s.commitAt[j] = s.now
	if s.now > s.res.CompleteAt {
		s.res.CompleteAt = s.now
	}
	s.commits++
	if f := s.p.Faults; f != nil && f.Crash != nil && s.crashSw < 0 && s.commits >= f.Crash.AtCommit {
		s.crashSw = f.Crash.Switch
	}
	if len(s.dagSuccs[j]) == 0 {
		return
	}
	if s.p.Faults == nil {
		s.push(&event{at: s.now + s.p.AckLatency, kind: evAck, node: j})
		return
	}
	// Fault mode: deliver the ack per edge so loss, duplication, and
	// retransmission are independent per dependent.
	for e := range s.dagSuccs[j] {
		s.push(&event{at: s.now + s.p.AckLatency, kind: evAckEdge, node: j, edge: e})
	}
}

// dagAck makes node j's commit visible to its dependents.
func (s *sim) dagAck(j int) {
	for _, k := range s.dagSuccs[j] {
		s.ackLeft[k]--
		if s.ackLeft[k] == 0 {
			s.dagTryStart(k)
		}
	}
}

// dagInstallTimeout is the fault-mode watchdog: if node j is still
// uncommitted, re-issue its install with exponential backoff until the
// retry budget runs out (the node then stays uncommitted and the run
// reports Stalled).
func (s *sim) dagInstallTimeout(j int) {
	if s.commitAt[j] >= 0 || s.attempts[j] >= s.p.MaxInstallRetries {
		return
	}
	s.attempts[j]++
	s.res.InstallRetries++
	if tr := s.p.Trace; tr != nil {
		tr.RecordAt("retry", 0, j+1, s.now, s.now,
			fmt.Sprintf("sw=%d attempt=%d", s.dag[j].Switch, s.attempts[j]+1))
	}
	s.push(&event{at: s.now + s.installLat(), kind: evInstall, node: j})
	s.push(&event{at: s.now + s.p.InstallTimeout<<uint(s.attempts[j]), kind: evInstallTimeout, node: j})
}

// dagAckEdge is one fault-mode ack delivery attempt from committed node
// ev.node along its ev.edge-th outgoing edge. Lost deliveries are
// retransmitted after AckRetry (unless the committer has since crashed);
// duplicate deliveries are absorbed idempotently by the per-edge
// delivered flag; a delivered ack may spawn one injected duplicate.
func (s *sim) dagAckEdge(ev *event) {
	j, e := ev.node, ev.edge
	f := s.p.Faults
	if f.AckLoss > 0 && s.frng.Float64() < f.AckLoss {
		s.res.AcksLost++
		if ev.hops < maxAckRetransmits && s.dag[j].Switch != s.crashSw {
			s.push(&event{at: s.now + s.p.AckRetry, kind: evAckEdge, node: j, edge: e, hops: ev.hops + 1})
		}
		return
	}
	if s.ackDelivered[j][e] {
		s.res.AcksDup++
		return
	}
	s.ackDelivered[j][e] = true
	k := s.dagSuccs[j][e]
	s.ackLeft[k]--
	if s.ackLeft[k] == 0 {
		s.dagTryStart(k)
	}
	if f.AckDup > 0 && s.frng.Float64() < f.AckDup {
		s.push(&event{at: s.now + s.p.AckRetry, kind: evAckEdge, node: j, edge: e})
	}
}
