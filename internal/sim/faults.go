package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseFaults parses the CLI fault specification: a comma-separated list
// of key=value entries, e.g.
//
//	crash=3@1,ackloss=0.2,ackdup=0.05,installloss=0.1,seed=42
//
// crash=SW@N kills switch SW after the N-th node commit (crash=SW alone
// means dead from the start); ackloss/ackdup/installloss are per-event
// probabilities in [0,1); seed seeds the fault RNG. An empty spec yields
// a zero-fault injector (still enabling fault-mode bookkeeping such as
// install watchdogs and the Stalled/Committed report).
func ParseFaults(spec string) (*Faults, error) {
	f := &Faults{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not key=value", part)
		}
		switch key {
		case "crash":
			swStr, atStr, hasAt := strings.Cut(val, "@")
			sw, err := strconv.Atoi(swStr)
			if err != nil {
				return nil, fmt.Errorf("faults: bad crash switch %q", swStr)
			}
			c := &Crash{Switch: sw}
			if hasAt {
				at, err := strconv.Atoi(atStr)
				if err != nil || at < 0 {
					return nil, fmt.Errorf("faults: bad crash commit index %q", atStr)
				}
				c.AtCommit = at
			}
			f.Crash = c
		case "ackloss", "ackdup", "installloss":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p >= 1 {
				return nil, fmt.Errorf("faults: %s must be a probability in [0,1), got %q", key, val)
			}
			switch key {
			case "ackloss":
				f.AckLoss = p
			case "ackdup":
				f.AckDup = p
			case "installloss":
				f.InstallLoss = p
			}
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", val)
			}
			f.Seed = n
		default:
			return nil, fmt.Errorf("faults: unknown key %q (want crash, ackloss, ackdup, installloss, seed)", key)
		}
	}
	return f, nil
}
