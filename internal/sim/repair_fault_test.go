package sim

import (
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/kripke"
	"netupdate/internal/mc"
)

// specsHold checks a static configuration against every class spec.
func specsHold(sc *config.Scenario, cfg *config.Config) bool {
	for _, cs := range sc.Specs {
		k, err := kripke.Build(sc.Topo, cfg, cs.Class)
		if err != nil {
			return false
		}
		chk, err := mc.NewIncremental(k, cs.Formula)
		if err != nil {
			return false
		}
		if !chk.Check().OK {
			return false
		}
	}
	return true
}

// TestFaultCrashThenRepairRecovers is the end-to-end failure story: the
// DAG executor runs a synthesized plan, a switch crashes mid-update, the
// executor stalls and reports the exact committed set (generally NOT a
// sequential prefix — independent DAG branches race ahead), and
// Session.Repair resynthesizes from precisely that state. The repair
// plan must be spec-consistent at every intermediate configuration, land
// on the original target, and execute to completion on the recovered
// network with zero probe loss.
func TestFaultCrashThenRepairRecovers(t *testing.T) {
	sc := config.Fig1RedBlueWaypoint()
	stalls := 0
	base, err := core.Synthesize(sc, core.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ups := base.Updates()
	for k := 1; k < len(ups); k++ {
		sess, err := core.NewSession(sc.Topo, sc.Init, sc.Specs, core.Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := sess.Synthesize(sc.Final)
		if err != nil {
			t.Fatal(err)
		}
		p := faultParams()
		p.Faults = &Faults{Seed: int64(k), Crash: &Crash{Switch: ups[k].Switch, AtCommit: k}}
		res := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
		if !res.Stalled {
			// The racing executor had already committed this node when the
			// crash fired; nothing to repair on this schedule.
			continue
		}
		stalls++
		for _, j := range res.Committed {
			if plan.Updates()[j].Switch == ups[k].Switch {
				t.Fatalf("k=%d: node %d on the crashed switch reported committed", k, j)
			}
		}
		rep, err := sess.Repair(res.Committed, nil)
		if err != nil {
			t.Fatalf("k=%d: repair from committed %v: %v", k, res.Committed, err)
		}
		crash := sc.Init.Clone()
		for _, j := range res.Committed {
			u := plan.Updates()[j]
			crash.SetTable(u.Switch, u.Table.Clone())
		}
		cfgs := rep.Configs(crash)
		for i, cfg := range cfgs {
			if !specsHold(sc, cfg) {
				t.Fatalf("k=%d: repair state %d violates the spec", k, i)
			}
		}
		if d := config.Diff(cfgs[len(cfgs)-1], sc.Final); len(d) != 0 {
			t.Fatalf("k=%d: repair plan misses final on %v", k, d)
		}
		// The switch is back: the repair plan must execute cleanly from the
		// crash state, decentralized, with zero probe loss.
		clean := faultParams()
		res2 := RunPlanDAG(sc.Topo, crash, rep, classes(sc), clean)
		if res2.Stalled {
			t.Fatalf("k=%d: repair plan stalled on a healthy network; committed %v", k, res2.Committed)
		}
		if res2.Lost != 0 {
			t.Fatalf("k=%d: repair execution lost %d probes", k, res2.Lost)
		}
		if len(res2.Committed) != len(rep.Updates()) {
			t.Fatalf("k=%d: repair execution committed %v of %d", k, res2.Committed, len(rep.Updates()))
		}
	}
	if stalls == 0 {
		t.Fatal("no crash schedule ever stalled the executor; the scenario exercises nothing")
	}
}
