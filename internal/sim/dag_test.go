package sim

import (
	"reflect"
	"testing"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/topology"
)

// TestDAGExecutionKeepsDelivery: decentralized execution of a synthesized
// plan's dependency DAG must lose no probes (the trace-equivalence
// guarantee surfacing in the testbed), and must commit every node.
func TestDAGExecutionKeepsDelivery(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams()
	p.UpdateLatency = 60 * time.Millisecond
	res := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
	if res.Lost != 0 {
		t.Fatalf("DAG execution lost %d probes", res.Lost)
	}
	if res.MinFraction() != 1 {
		t.Fatalf("DAG min fraction = %v, want 1", res.MinFraction())
	}
	if res.CompleteAt == 0 {
		t.Fatal("DAG execution reported no completion time")
	}
}

// TestDAGCompletesFasterThanCentral: on a workload whose DAG has real
// width (two independent regions) the decentralized executor overlaps
// independent installs and beats the central controller's sequential
// schedule on completion time.
func TestDAGCompletesFasterThanCentral(t *testing.T) {
	topo := topology.SmallWorld(160, 6, 0.3, 7)
	sc, err := config.MultiRegion(topo, config.MultiRegionOptions{
		Regions: 2, PairsPerRegion: 1, Property: config.Reachability, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.DAGWidth < 2 {
		t.Fatalf("want a DAG with width >= 2, got %dx%d", plan.Stats.DAGDepth, plan.Stats.DAGWidth)
	}
	p := fastParams()
	central := Run(sc.Topo, sc.Init, plan.Commands(), classes(sc), p)
	if central.CompleteAt == 0 {
		t.Fatal("central run reported no completion time")
	}
	dag := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
	if dag.Lost != 0 {
		t.Fatalf("DAG execution lost %d probes", dag.Lost)
	}
	if dag.CompleteAt >= central.CompleteAt {
		t.Fatalf("decentralized CompleteAt %v >= central %v (DAG %dx%d)",
			dag.CompleteAt, central.CompleteAt, plan.Stats.DAGDepth, plan.Stats.DAGWidth)
	}
}

// TestDAGDrainEdgesBlockUntilQuiesced: a plan whose DAG retains drain
// edges must still deliver every probe — the executor may not commit a
// drain successor while pre-commit traffic is in flight.
func TestDAGDrainEdgesBlockUntilQuiesced(t *testing.T) {
	topo := topology.SmallWorld(40, 4, 0.3, 21)
	sc, err := config.Infeasible(topo, config.InfeasibleOptions{Gadgets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Synthesize(sc, core.Options{RuleGranularity: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.DAG == nil || plan.DAG.DrainEdges() == 0 {
		t.Skipf("plan retained no drain edges (waits=%d); nothing to exercise", plan.Waits())
	}
	res := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), fastParams())
	if res.Lost != 0 {
		t.Fatalf("DAG execution with drain edges lost %d probes", res.Lost)
	}
}

// TestSeededRunsReproducible: equal Params (including Seed and a nonzero
// InstallJitter) must give identical Results; a different seed must move
// the jittered completion time.
func TestSeededRunsReproducible(t *testing.T) {
	sc := config.Fig1RedBlue()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams()
	p.InstallJitter = 0.5
	p.Seed = 42
	a := Run(sc.Topo, sc.Init, plan.Commands(), classes(sc), p)
	b := Run(sc.Topo, sc.Init, plan.Commands(), classes(sc), p)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n a=%+v\n b=%+v", a, b)
	}
	da := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
	db := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
	if !reflect.DeepEqual(da, db) {
		t.Fatalf("same seed, different DAG results:\n a=%+v\n b=%+v", da, db)
	}
	p2 := p
	p2.Seed = 43
	c := Run(sc.Topo, sc.Init, plan.Commands(), classes(sc), p2)
	if c.CompleteAt == a.CompleteAt {
		t.Fatalf("different seeds, identical jittered completion time %v", a.CompleteAt)
	}
}

// TestJitterFreeDefaultsUnchanged: with the zero Seed and no jitter the
// central run is byte-identical to a run that never consults the RNG —
// the seedable RNG must not perturb deterministic schedules.
func TestJitterFreeDefaultsUnchanged(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := Run(sc.Topo, sc.Init, plan.Commands(), classes(sc), fastParams())
	p := fastParams()
	p.Seed = 99 // unused without jitter
	b := Run(sc.Topo, sc.Init, plan.Commands(), classes(sc), p)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seed changed a jitter-free run:\n a=%+v\n b=%+v", a, b)
	}
}

// TestPlanDAGNodesFallback: a plan without an attached DAG degrades to
// the sequential chain.
func TestPlanDAGNodesFallback(t *testing.T) {
	sc := config.Fig1RedBlue()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stripped := &core.Plan{Steps: plan.Steps, Stats: plan.Stats}
	nodes := PlanDAGNodes(stripped)
	for j, nd := range nodes {
		if j == 0 {
			if len(nd.Preds) != 0 {
				t.Fatalf("node 0 has preds %v", nd.Preds)
			}
			continue
		}
		if len(nd.Preds) != 1 || nd.Preds[0] != j-1 {
			t.Fatalf("node %d preds = %v, want [%d]", j, nd.Preds, j-1)
		}
	}
	res := RunDAG(sc.Topo, sc.Init, nodes, classes(sc), fastParams())
	if res.Lost != 0 {
		t.Fatalf("sequential-chain DAG lost %d probes", res.Lost)
	}
}
