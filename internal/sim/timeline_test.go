package sim

import (
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/obs"
)

// TestNodeTimelineExported: every DAG run exports a per-node timeline
// that is consistent with the DAG — each node starts at or after its
// predecessors' commits, commits after it starts, and records one
// attempt in fault-free mode.
func TestNodeTimelineExported(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := PlanDAGNodes(plan)
	res := RunDAG(sc.Topo, sc.Init, nodes, classes(sc), fastParams())
	if len(res.NodeTimeline) != len(nodes) {
		t.Fatalf("NodeTimeline has %d entries for %d nodes", len(res.NodeTimeline), len(nodes))
	}
	for j, nt := range res.NodeTimeline {
		if nt.Switch != nodes[j].Switch {
			t.Fatalf("node %d: Switch = %d, want %d", j, nt.Switch, nodes[j].Switch)
		}
		if nt.Start < 0 || nt.CommitAt < nt.Start {
			t.Fatalf("node %d timing: %+v", j, nt)
		}
		if nt.Attempts != 1 {
			t.Fatalf("node %d: Attempts = %d in fault-free mode", j, nt.Attempts)
		}
		for _, i := range nodes[j].Preds {
			if nt.Start < res.NodeTimeline[i].CommitAt {
				t.Fatalf("node %d started at %v before predecessor %d committed at %v",
					j, nt.Start, i, res.NodeTimeline[i].CommitAt)
			}
		}
		if nt.CommitAt > res.CompleteAt {
			t.Fatalf("node %d committed at %v after CompleteAt %v", j, nt.CommitAt, res.CompleteAt)
		}
	}
}

// TestNodeTimelineCountsRetries: with install loss injected, the
// timeline's attempt counts must account for every watchdog re-issue.
func TestNodeTimelineCountsRetries(t *testing.T) {
	sc := config.Fig1RedBlue()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := faultParams()
	p.Faults = &Faults{InstallLoss: 0.4, Seed: 11}
	res := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
	if res.Stalled {
		t.Fatalf("run stalled: %+v", res)
	}
	total := 0
	for j, nt := range res.NodeTimeline {
		if nt.Attempts < 1 {
			t.Fatalf("node %d: Attempts = %d", j, nt.Attempts)
		}
		total += nt.Attempts - 1
	}
	if total != res.InstallRetries {
		t.Fatalf("timeline retries = %d, InstallRetries = %d", total, res.InstallRetries)
	}
}

// TestDAGRunRecordsTrace: with Params.Trace attached, the executor
// records one install span per committed node on the simulated clock
// (matching the timeline exactly), plus retry markers in fault mode —
// and recording must not perturb the simulation.
func TestDAGRunRecordsTrace(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams()
	bare := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
	tr := obs.NewTrace(0)
	p.Trace = tr
	res := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
	if res.CompleteAt != bare.CompleteAt || res.Delivered != bare.Delivered {
		t.Fatalf("tracing perturbed the run: %v/%d vs %v/%d",
			res.CompleteAt, res.Delivered, bare.CompleteAt, bare.CompleteAt)
	}
	d := tr.Snapshot()
	installs := 0
	for _, sp := range d.Spans {
		if sp.Name != "install" {
			continue
		}
		installs++
		j := sp.Lane - 1
		nt := res.NodeTimeline[j]
		if us := float64(nt.Start.Microseconds()); sp.StartUS != us {
			t.Fatalf("span %+v start disagrees with timeline %+v", sp, nt)
		}
	}
	if installs != len(res.NodeTimeline) {
		t.Fatalf("got %d install spans for %d nodes", installs, len(res.NodeTimeline))
	}
}
