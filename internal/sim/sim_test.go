package sim

import (
	"testing"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/network"
	"netupdate/internal/twophase"
)

func classes(sc *config.Scenario) []config.Class {
	out := make([]config.Class, len(sc.Specs))
	for i, cs := range sc.Specs {
		out[i] = cs.Class
	}
	return out
}

func fastParams() Params {
	return Params{
		LinkLatency:   50 * time.Microsecond,
		UpdateLatency: 10 * time.Millisecond,
		ProbeInterval: time.Millisecond,
		Duration:      500 * time.Millisecond,
		BucketWidth:   25 * time.Millisecond,
		CommandStart:  100 * time.Millisecond,
	}
}

func TestNoCommandsFullDelivery(t *testing.T) {
	sc := config.Fig1RedGreen()
	res := Run(sc.Topo, sc.Init, nil, classes(sc), fastParams())
	if res.Sent == 0 {
		t.Fatal("no probes sent")
	}
	if res.Lost != 0 || res.Delivered != res.Sent {
		t.Fatalf("static config lost packets: %+v", res)
	}
	if res.MinFraction() != 1 {
		t.Fatalf("min fraction = %v, want 1", res.MinFraction())
	}
}

func TestNaiveUpdateLosesProbes(t *testing.T) {
	sc := config.Fig1RedGreen()
	// Widen the loss window so buckets clearly capture it.
	p := fastParams()
	p.UpdateLatency = 60 * time.Millisecond
	res := Run(sc.Topo, sc.Init, twophase.Naive(sc), classes(sc), p)
	if res.Lost == 0 {
		t.Fatal("naive update should lose probes in the window")
	}
	if res.MinFraction() > 0.5 {
		t.Fatalf("naive min fraction = %v; expected a deep loss window", res.MinFraction())
	}
	// Delivery must recover after the update completes.
	last := res.Buckets[len(res.Buckets)-1]
	if last.Sent > 0 && last.Fraction() < 1 {
		t.Fatalf("delivery did not recover: %+v", last)
	}
}

func TestOrderingUpdateKeepsDelivery(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams()
	p.UpdateLatency = 60 * time.Millisecond
	res := Run(sc.Topo, sc.Init, plan.Commands(), classes(sc), p)
	if res.Lost != 0 {
		t.Fatalf("ordering update lost %d probes", res.Lost)
	}
	if res.MinFraction() != 1 {
		t.Fatalf("ordering min fraction = %v, want 1", res.MinFraction())
	}
}

func TestTwoPhaseUpdateKeepsDelivery(t *testing.T) {
	sc := config.Fig1RedGreen()
	p := fastParams()
	res := Run(sc.Topo, sc.Init, twophase.Build(sc).Commands, classes(sc), p)
	if res.Lost != 0 {
		t.Fatalf("two-phase update lost %d probes", res.Lost)
	}
}

func TestFlushBlocksAndResumes(t *testing.T) {
	// A wait (incr/flush) in the middle of the schedule must not deadlock
	// and must let later updates proceed.
	sc := config.Fig1RedGreen()
	plan, err := core.Synthesize(sc, core.Options{NoWaitRemoval: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Waits() == 0 {
		t.Fatal("expected a careful plan with waits")
	}
	res := Run(sc.Topo, sc.Init, plan.Commands(), classes(sc), fastParams())
	if res.Lost != 0 {
		t.Fatalf("careful plan lost %d probes", res.Lost)
	}
	if res.End < fastParams().CommandStart {
		t.Fatal("simulation ended before commands ran")
	}
}

func TestBucketsCoverDuration(t *testing.T) {
	sc := config.Fig1RedGreen()
	p := fastParams()
	res := Run(sc.Topo, sc.Init, nil, classes(sc), p)
	want := int(p.Duration/p.BucketWidth) + 1
	if len(res.Buckets) != want {
		t.Fatalf("buckets = %d, want %d", len(res.Buckets), want)
	}
	totalSent := 0
	for _, b := range res.Buckets {
		totalSent += b.Sent
	}
	if totalSent != res.Sent {
		t.Fatalf("bucket sent sum %d != total %d", totalSent, res.Sent)
	}
}

func TestLoopGuard(t *testing.T) {
	// A looping configuration must not hang the simulator.
	sc := config.Fig1RedGreen()
	_, n := config.Fig1Topology()
	cl := sc.Specs[0].Class
	bad := config.New()
	pTA, _ := sc.Topo.PortToward(n.T1, n.A1)
	pAT, _ := sc.Topo.PortToward(n.A1, n.T1)
	bad.AddRule(n.T1, network.Rule{Priority: 1, Match: cl.Pattern(),
		Actions: []network.Action{network.Forward(pTA)}})
	bad.AddRule(n.A1, network.Rule{Priority: 1, Match: cl.Pattern(),
		Actions: []network.Action{network.Forward(pAT)}})
	p := fastParams()
	p.Duration = 50 * time.Millisecond
	res := Run(sc.Topo, bad, nil, classes(sc), p)
	if res.Delivered != 0 || res.Lost != res.Sent {
		t.Fatalf("looping config should lose everything: %+v", res)
	}
}
