package sim

import (
	"reflect"
	"testing"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
)

// faultParams widens the window so lossy runs have time to retry to
// completion before the injection window closes.
func faultParams() Params {
	p := fastParams()
	p.Duration = time.Second
	p.InstallTimeout = 15 * time.Millisecond
	p.AckRetry = 200 * time.Microsecond
	return p
}

// TestFaultAckLossStillCompletes: the acceptance bar — under 20%
// injected ack loss the DAG executor must still commit every node with
// zero probe loss (retransmission hides the loss from the data plane).
func TestFaultAckLossStillCompletes(t *testing.T) {
	sc := config.Fig1RedBlue()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lossSeen := 0
	for seed := int64(0); seed < 8; seed++ {
		p := faultParams()
		p.Faults = &Faults{AckLoss: 0.2, Seed: seed}
		res := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
		if res.Stalled {
			t.Fatalf("seed %d: executor stalled under 20%% ack loss; committed %v of %d", seed, res.Committed, len(plan.Updates()))
		}
		if res.Lost != 0 {
			t.Fatalf("seed %d: lost %d probes under ack loss; want 0", seed, res.Lost)
		}
		if len(res.Committed) != len(plan.Updates()) {
			t.Fatalf("seed %d: committed %v, want all %d nodes", seed, res.Committed, len(plan.Updates()))
		}
		lossSeen += res.AcksLost
	}
	if lossSeen == 0 {
		t.Fatal("20% ack loss injected across 8 seeds but no ack was ever lost; injector is dead")
	}
}

// TestFaultAckDuplicationIdempotent: duplicated ack deliveries must be
// absorbed without double-decrementing dependency counts.
func TestFaultAckDuplicationIdempotent(t *testing.T) {
	sc := config.Fig1RedBlue()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dups := 0
	for seed := int64(0); seed < 8; seed++ {
		p := faultParams()
		p.Faults = &Faults{AckDup: 0.5, Seed: seed}
		res := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
		if res.Stalled || res.Lost != 0 {
			t.Fatalf("seed %d: dup-only faults broke execution: %+v", seed, res)
		}
		dups += res.AcksDup
	}
	if dups == 0 {
		t.Fatal("50% ack duplication injected across 8 seeds but no duplicate observed")
	}
}

// TestFaultInstallLossRetried: silently-dropped installs are recovered
// by the watchdog's exponential-backoff retry.
func TestFaultInstallLossRetried(t *testing.T) {
	sc := config.Fig1RedBlue()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := faultParams()
	p.Faults = &Faults{InstallLoss: 0.4, Seed: 11}
	res := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
	if res.Stalled || res.Lost != 0 {
		t.Fatalf("install loss not recovered: %+v", res)
	}
	if res.InstallRetries == 0 {
		t.Fatal("40% install loss injected but the watchdog never retried")
	}
}

// TestFaultCrashReportsCommittedPrefix: killing the switch of a later
// node right after the first commit must stall the run, and Committed
// must name exactly the nodes that made it (a dependency-closed set).
func TestFaultCrashReportsCommittedPrefix(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ups := plan.Updates()
	if len(ups) < 2 {
		t.Fatalf("need >= 2 updates, got %d", len(ups))
	}
	p := faultParams()
	p.Faults = &Faults{Crash: &Crash{Switch: ups[1].Switch, AtCommit: 1}, Seed: 1}
	res := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
	if !res.Stalled {
		t.Fatalf("crashed switch sw%d but the run completed: %+v", ups[1].Switch, res)
	}
	committed := map[int]bool{}
	for _, j := range res.Committed {
		if ups[j].Switch == ups[1].Switch {
			t.Fatalf("node %d on the crashed switch reported committed", j)
		}
		committed[j] = true
	}
	// Dependency closure: every committed node's predecessors committed.
	for _, j := range res.Committed {
		if d := plan.DAG; d != nil {
			for _, pr := range d.Preds[j] {
				if !committed[pr] {
					t.Fatalf("committed node %d has uncommitted predecessor %d", j, pr)
				}
			}
		}
	}
	if res.InstallRetries == 0 {
		t.Fatal("crashed install was never retried before the executor gave up")
	}
}

// TestFaultCrashFromStart: AtCommit == 0 kills the switch before any
// commit; probes through it blackhole and the run stalls immediately.
func TestFaultCrashFromStart(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ups := plan.Updates()
	p := faultParams()
	p.Faults = &Faults{Crash: &Crash{Switch: ups[0].Switch}}
	res := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
	if !res.Stalled {
		t.Fatalf("dead-from-start switch but run completed: %+v", res)
	}
	for _, j := range res.Committed {
		if ups[j].Switch == ups[0].Switch {
			t.Fatalf("node %d on the dead switch reported committed", j)
		}
	}
}

// TestFaultRunsDeterministic: equal Params (fault seeds included) give
// byte-identical Results, and a zero-probability injector changes no
// delivery outcome relative to a fault-free run.
func TestFaultRunsDeterministic(t *testing.T) {
	sc := config.Fig1RedBlue()
	plan, err := core.Synthesize(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := faultParams()
	p.Faults = &Faults{AckLoss: 0.2, InstallLoss: 0.2, AckDup: 0.1, Seed: 99}
	a := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
	b := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), p)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same fault seed, different results:\n a=%+v\n b=%+v", a, b)
	}

	base := faultParams()
	clean := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), base)
	zp := faultParams()
	zp.Faults = &Faults{}
	zero := RunPlanDAG(sc.Topo, sc.Init, plan, classes(sc), zp)
	if zero.Sent != clean.Sent || zero.Delivered != clean.Delivered ||
		zero.Lost != clean.Lost || zero.CompleteAt != clean.CompleteAt ||
		!reflect.DeepEqual(zero.Buckets, clean.Buckets) {
		t.Fatalf("zero-probability injector changed delivery:\n clean=%+v\n zero=%+v", clean, zero)
	}
	if zero.Stalled || len(zero.Committed) != len(plan.Updates()) {
		t.Fatalf("zero-fault run misreported commits: %+v", zero)
	}
}

// TestFaultSpecParsing covers the -faults CLI grammar.
func TestFaultSpecParsing(t *testing.T) {
	f, err := ParseFaults("crash=3@1,ackloss=0.2,ackdup=0.05,installloss=0.1,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := &Faults{Crash: &Crash{Switch: 3, AtCommit: 1}, AckLoss: 0.2, AckDup: 0.05, InstallLoss: 0.1, Seed: 42}
	if !reflect.DeepEqual(f, want) {
		t.Fatalf("parsed %+v, want %+v", f, want)
	}
	if f, err = ParseFaults("crash=7"); err != nil || f.Crash.Switch != 7 || f.Crash.AtCommit != 0 {
		t.Fatalf("crash=7 parsed to %+v, %v", f, err)
	}
	for _, bad := range []string{"crash=x", "ackloss=1.5", "ackloss=-1", "boom=1", "seed=abc", "nonsense"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("ParseFaults(%q) accepted garbage", bad)
		}
	}
}

// TestMinInflightSentTracking is the unit test for the drain-watermark
// bound: the tracked minimum must follow insertions and retirements
// exactly, including across head compaction.
func TestMinInflightSentTracking(t *testing.T) {
	s := &sim{inflightBySent: map[time.Duration]int{}}
	if _, ok := s.minInflightSent(); ok {
		t.Fatal("empty tracker reported an in-flight minimum")
	}
	s.trackSent(1)
	s.trackSent(1)
	s.trackSent(2)
	s.trackSent(5)
	if min, ok := s.minInflightSent(); !ok || min != 1 {
		t.Fatalf("min = %v,%v; want 1,true", min, ok)
	}
	s.untrackSent(1)
	if min, _ := s.minInflightSent(); min != 1 {
		t.Fatalf("min = %v after one of two retired; want 1", min)
	}
	s.untrackSent(1)
	if min, _ := s.minInflightSent(); min != 2 {
		t.Fatalf("min = %v; want 2", min)
	}
	s.untrackSent(2)
	s.untrackSent(5)
	if _, ok := s.minInflightSent(); ok {
		t.Fatal("drained tracker still reports an in-flight minimum")
	}

	// Compaction: retire a long prefix and confirm the head compacts
	// without losing the live tail.
	for i := 0; i < 200; i++ {
		s.trackSent(time.Duration(i + 10))
	}
	for i := 0; i < 150; i++ {
		s.untrackSent(time.Duration(i + 10))
	}
	if min, ok := s.minInflightSent(); !ok || min != 160 {
		t.Fatalf("post-compaction min = %v,%v; want 160,true", min, ok)
	}
	if s.sentHead != 0 || len(s.sentQ) != 50 {
		t.Fatalf("compaction left head=%d len=%d; want 0,50", s.sentHead, len(s.sentQ))
	}
}
