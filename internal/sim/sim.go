// Package sim is a discrete-event network simulator standing in for the
// paper's Mininet/OpenFlow testbed (Figure 2): hosts emit probe packets
// at a fixed rate while the controller executes an update command
// schedule with realistic per-command latency, and the simulator reports
// the fraction of probes delivered over time. Forwarding semantics reuse
// the operational model's tables; waits (incr/flush) block the controller
// until in-flight packets drain, exactly as in Section 3.1.
package sim

import (
	"container/heap"
	"math/rand"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/network"
	"netupdate/internal/obs"
	"netupdate/internal/topology"
)

// Default parameter values. Params documents each field against these
// named constants and fill() applies exactly them, so the field
// documentation cannot drift from the implementation.
const (
	DefaultLinkLatency   = 50 * time.Microsecond
	DefaultUpdateLatency = 10 * time.Millisecond
	DefaultProbeInterval = time.Millisecond
	DefaultDuration      = 6 * time.Second
	DefaultBucketWidth   = 250 * time.Millisecond
	DefaultCommandStart  = time.Second
	DefaultAckLatency    = 200 * time.Microsecond
	DefaultMaxHops       = 64
	// Fault-mode knobs (only consulted when Params.Faults is non-nil).
	DefaultInstallTimeout    = 30 * time.Millisecond
	DefaultMaxInstallRetries = 4
	DefaultAckRetry          = 500 * time.Microsecond
)

// maxAckRetransmits bounds per-edge ack retransmission so a run with an
// adversarial loss rate still terminates; at the <=20% loss rates the
// executor is specified for, exhausting it is vanishingly unlikely.
const maxAckRetransmits = 100

// Params configures a simulation run. Zero fields take the Default*
// constants above.
type Params struct {
	LinkLatency   time.Duration // per-hop latency (DefaultLinkLatency)
	UpdateLatency time.Duration // per switch-update command (DefaultUpdateLatency)
	ProbeInterval time.Duration // probe period per class (DefaultProbeInterval)
	Duration      time.Duration // injection window (DefaultDuration)
	BucketWidth   time.Duration // reporting bucket (DefaultBucketWidth)
	CommandStart  time.Duration // controller start time (DefaultCommandStart)
	// AckLatency is the control-plane delay between a switch committing
	// an update and its ack becoming visible to dependents; used by the
	// decentralized DAG executor (DefaultAckLatency).
	AckLatency time.Duration
	MaxHops    int // loop guard (DefaultMaxHops)
	// InstallJitter widens rule-install latency into a distribution: each
	// install takes UpdateLatency scaled by a uniform draw from
	// [1-InstallJitter, 1+InstallJitter]. Zero (the default) keeps every
	// install exactly UpdateLatency, which preserves the deterministic
	// schedules of jitter-free runs.
	InstallJitter float64
	// Seed seeds the run's private RNG (latency jitter draws), making
	// every simulation reproducible: equal Params give equal Results.
	Seed int64
	// Faults enables fault injection in the DAG executor (RunDAG). Nil
	// (the default) keeps every run fault-free and byte-identical to
	// pre-fault-layer behavior.
	Faults *Faults
	// InstallTimeout is the DAG executor's per-node watchdog: if a node's
	// install has not committed this long after it was issued, the install
	// is re-issued, with the watchdog backing off exponentially
	// (InstallTimeout << attempt). Only armed in fault mode
	// (DefaultInstallTimeout).
	InstallTimeout time.Duration
	// MaxInstallRetries bounds re-issues per node; once exhausted the node
	// is abandoned and the run reports Stalled (DefaultMaxInstallRetries).
	MaxInstallRetries int
	// AckRetry is the retransmission delay after a lost ack delivery
	// (DefaultAckRetry).
	AckRetry time.Duration
	// Trace, when non-nil, receives per-node install/retry/commit events
	// from the DAG executor on the simulated clock (obs.Trace.RecordAt),
	// one lane per node, so an executed plan renders as a real completion
	// timeline in chrome://tracing. Recording does not perturb the
	// simulation: equal Params (Trace aside) still give equal Results.
	Trace *obs.Trace
}

// Faults configures seeded fault injection for the decentralized DAG
// executor. Probabilities are per-event draws from a dedicated RNG
// (seeded by Seed) so enabling a fault never perturbs latency jitter.
type Faults struct {
	// Crash kills one switch mid-update; nil injects no crash.
	Crash *Crash
	// AckLoss is the probability an ack delivery along a DAG edge is
	// lost (the committer retransmits after AckRetry).
	AckLoss float64
	// AckDup is the probability a delivered ack is followed by a
	// duplicate delivery (which dependents must tolerate idempotently).
	AckDup float64
	// InstallLoss is the probability an issued install is silently
	// dropped by the switch (recovered by the watchdog retry).
	InstallLoss float64
	// Seed seeds the fault RNG.
	Seed int64
}

// Crash schedules a switch failure: Switch stops forwarding packets,
// committing installs, and retransmitting acks the moment the AtCommit-th
// node commit lands (AtCommit == 0 means dead from the start).
type Crash struct {
	Switch   int
	AtCommit int
}

func (p *Params) fill() {
	if p.LinkLatency == 0 {
		p.LinkLatency = DefaultLinkLatency
	}
	if p.UpdateLatency == 0 {
		p.UpdateLatency = DefaultUpdateLatency
	}
	if p.ProbeInterval == 0 {
		p.ProbeInterval = DefaultProbeInterval
	}
	if p.Duration == 0 {
		p.Duration = DefaultDuration
	}
	if p.BucketWidth == 0 {
		p.BucketWidth = DefaultBucketWidth
	}
	if p.CommandStart == 0 {
		p.CommandStart = DefaultCommandStart
	}
	if p.AckLatency == 0 {
		p.AckLatency = DefaultAckLatency
	}
	if p.MaxHops == 0 {
		p.MaxHops = DefaultMaxHops
	}
	if p.InstallTimeout == 0 {
		p.InstallTimeout = DefaultInstallTimeout
	}
	if p.MaxInstallRetries == 0 {
		p.MaxInstallRetries = DefaultMaxInstallRetries
	}
	if p.AckRetry == 0 {
		p.AckRetry = DefaultAckRetry
	}
}

// Bucket aggregates probes by send time.
type Bucket struct {
	Start     time.Duration
	Sent      int
	Delivered int
}

// Fraction is the delivery fraction for the bucket (1 when nothing sent).
func (b Bucket) Fraction() float64 {
	if b.Sent == 0 {
		return 1
	}
	return float64(b.Delivered) / float64(b.Sent)
}

// Result of a simulation run.
type Result struct {
	Buckets   []Bucket
	Sent      int
	Delivered int
	Lost      int
	// End is the simulated time when the last event fired.
	End time.Duration
	// CompleteAt is the simulated time when the update finished: for the
	// central controller schedule, when the last command's install latency
	// elapsed; for the decentralized DAG executor (RunDAG), when the last
	// node committed. Zero when there was nothing to execute.
	CompleteAt time.Duration
	// Stalled reports that the DAG execution terminated with at least one
	// node uncommitted (crashed switch or exhausted install retries);
	// Committed then names exactly which node indices did commit.
	Stalled   bool
	Committed []int
	// Fault-mode counters: install re-issues by the watchdog, ack
	// deliveries lost, and duplicate ack deliveries observed.
	InstallRetries int
	AcksLost       int
	AcksDup        int
	// NodeTimeline is the per-node execution record of a DAG run (RunDAG
	// only; nil otherwise): when each node's install was first issued, how
	// many install attempts it took, and when it committed. It is the
	// exportable form of the executor's internal commit bookkeeping, so
	// figures can plot real completion timelines instead of only
	// CompleteAt.
	NodeTimeline []NodeTiming
}

// NodeTiming is one DAG node's execution record. Times are simulated
// offsets from the run origin; Start and CommitAt are -1 for a node that
// never started (stalled predecessors) or never committed.
type NodeTiming struct {
	Switch   int           `json:"switch"`
	Start    time.Duration `json:"start"`
	Attempts int           `json:"attempts"`
	CommitAt time.Duration `json:"commitAt"`
}

// MinFraction returns the worst per-bucket delivery fraction.
func (r *Result) MinFraction() float64 {
	min := 1.0
	for _, b := range r.Buckets {
		if f := b.Fraction(); f < min {
			min = f
		}
	}
	return min
}

type evKind uint8

const (
	evProbe evKind = iota
	evArrive
	evCommand
	evInstall  // DAG executor: a node's rule install completes (dag.go)
	evAck      // DAG executor: a committed node's ack reaches dependents
	evDAGStart // DAG executor: kick off the root nodes at CommandStart
	// Fault mode only:
	evInstallTimeout // watchdog: re-issue a node's install if uncommitted
	evAckEdge        // per-edge ack delivery attempt (loss/dup/retransmit)
)

type event struct {
	at   time.Duration
	seq  int
	kind evKind
	// evArrive:
	sw     int
	pt     topology.Port
	pkt    network.Packet
	sentAt time.Duration
	hops   int
	epoch  int
	class  int
	// evInstall/evAck/evInstallTimeout:
	node int
	// evAckEdge: index into dagSuccs[node]; hops doubles as the
	// retransmission count.
	edge int
}

type evHeap []*event

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *evHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

type sim struct {
	topo    *topology.Topology
	tables  map[int]network.Table
	cmds    []network.Command
	cmdIdx  int
	blocked bool // controller waiting on flush
	epoch   int
	// inflight counts packets per ingress epoch.
	inflight map[int]int
	classes  []config.Class
	p        Params
	rng      *rand.Rand

	events evHeap
	seq    int
	now    time.Duration

	// Decentralized DAG-execution mode (RunDAG, dag.go). inflightBySent
	// counts in-flight packets keyed by send time; non-nil only in DAG
	// mode, where drain edges wait for packets older than a commit.
	dag            []DAGNode
	dagSuccs       [][]int
	ackLeft        []int
	commitAt       []time.Duration
	startAt        []time.Duration
	started        []bool
	drainPend      []int
	inflightBySent map[time.Duration]int
	// sentQ/sentHead track the minimum in-flight send time without
	// scanning inflightBySent: probe send times are strictly increasing,
	// so appending on a 0->1 transition keeps sentQ sorted and the head
	// advances monotonically past fully-drained entries.
	sentQ    []time.Duration
	sentHead int

	// Fault-injection state (Params.Faults != nil): a dedicated RNG for
	// fault draws, the crashed switch (-1 while all alive), the running
	// commit count driving Crash.AtCommit, per-node install attempts, and
	// per-edge ack-delivered flags for idempotent duplicate handling.
	frng         *rand.Rand
	crashSw      int
	commits      int
	attempts     []int
	ackDelivered [][]bool

	res Result
}

// Run simulates the command schedule against continuous probe traffic for
// every class and returns the delivery time series.
func Run(topo *topology.Topology, init *config.Config, cmds []network.Command, classes []config.Class, p Params) *Result {
	p.fill()
	s := &sim{
		topo:     topo,
		tables:   map[int]network.Table{},
		cmds:     cmds,
		inflight: map[int]int{},
		classes:  classes,
		p:        p,
		rng:      rand.New(rand.NewSource(p.Seed)),
		crashSw:  -1,
	}
	for _, sw := range init.Switches() {
		s.tables[sw] = init.Table(sw).Clone()
	}
	s.push(&event{at: 0, kind: evProbe})
	if len(cmds) > 0 {
		s.push(&event{at: p.CommandStart, kind: evCommand})
	}
	s.loop()
	return &s.res
}

// loop drains the event heap; shared by the central-controller Run and
// the decentralized RunDAG.
func (s *sim) loop() {
	nBuckets := int(s.p.Duration/s.p.BucketWidth) + 1
	if s.res.Buckets == nil {
		s.res.Buckets = make([]Bucket, nBuckets)
		for i := range s.res.Buckets {
			s.res.Buckets[i].Start = time.Duration(i) * s.p.BucketWidth
		}
	}
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		s.now = ev.at
		switch ev.kind {
		case evProbe:
			s.probe()
		case evArrive:
			s.arrive(ev)
		case evCommand:
			s.command()
		case evInstall:
			s.dagInstall(ev.node)
		case evAck:
			s.dagAck(ev.node)
		case evDAGStart:
			s.dagStart()
		case evInstallTimeout:
			s.dagInstallTimeout(ev.node)
		case evAckEdge:
			s.dagAckEdge(ev)
		}
	}
	s.res.End = s.now
}

func (s *sim) push(ev *event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
}

func (s *sim) bucket(t time.Duration) *Bucket {
	i := int(t / s.p.BucketWidth)
	if i >= len(s.res.Buckets) {
		i = len(s.res.Buckets) - 1
	}
	return &s.res.Buckets[i]
}

// probe injects one packet per class and reschedules itself until the
// injection window closes.
func (s *sim) probe() {
	for ci, cl := range s.classes {
		h, ok := s.topo.HostByID(cl.SrcHost)
		if !ok {
			continue
		}
		s.res.Sent++
		s.bucket(s.now).Sent++
		s.inflight[s.epoch]++
		if s.inflightBySent != nil {
			s.trackSent(s.now)
		}
		s.push(&event{
			at: s.now + s.p.LinkLatency, kind: evArrive,
			sw: h.Switch, pt: h.Port, pkt: cl.Packet(),
			sentAt: s.now, epoch: s.epoch, class: ci,
		})
	}
	if next := s.now + s.p.ProbeInterval; next < s.p.Duration {
		s.push(&event{at: next, kind: evProbe})
	}
}

// exit retires a packet, unblocking a pending flush when the last stale
// packet drains.
func (s *sim) exit(ev *event, delivered bool) {
	s.inflight[ev.epoch]--
	if s.inflight[ev.epoch] == 0 {
		delete(s.inflight, ev.epoch)
	}
	if delivered {
		s.res.Delivered++
		s.bucket(ev.sentAt).Delivered++
	} else {
		s.res.Lost++
	}
	if s.blocked && s.flushed() {
		s.blocked = false
		s.push(&event{at: s.now, kind: evCommand})
	}
	if s.inflightBySent != nil {
		s.untrackSent(ev.sentAt)
		s.dagRecheckDrain()
	}
}

// trackSent registers one in-flight packet sent at t; on the 0->1
// transition t joins sentQ (probe times strictly increase, so sentQ
// stays sorted).
func (s *sim) trackSent(t time.Duration) {
	if s.inflightBySent[t] == 0 {
		s.sentQ = append(s.sentQ, t)
	}
	s.inflightBySent[t]++
}

// untrackSent retires one in-flight packet sent at t; fully-drained send
// times are skipped lazily by minInflightSent.
func (s *sim) untrackSent(t time.Duration) {
	s.inflightBySent[t]--
	if s.inflightBySent[t] == 0 {
		delete(s.inflightBySent, t)
	}
}

// minInflightSent returns the earliest send time with packets still in
// flight, advancing (and occasionally compacting) the queue head past
// drained entries; ok is false when nothing is in flight.
func (s *sim) minInflightSent() (min time.Duration, ok bool) {
	for s.sentHead < len(s.sentQ) && s.inflightBySent[s.sentQ[s.sentHead]] == 0 {
		s.sentHead++
	}
	if s.sentHead >= len(s.sentQ) {
		s.sentQ = s.sentQ[:0]
		s.sentHead = 0
		return 0, false
	}
	if s.sentHead > 64 && s.sentHead > len(s.sentQ)/2 {
		n := copy(s.sentQ, s.sentQ[s.sentHead:])
		s.sentQ = s.sentQ[:n]
		s.sentHead = 0
	}
	return s.sentQ[s.sentHead], true
}

// flushed reports whether all packets from epochs before the current one
// have left the network.
func (s *sim) flushed() bool {
	for ep, n := range s.inflight {
		if ep < s.epoch && n > 0 {
			return false
		}
	}
	return true
}

func (s *sim) arrive(ev *event) {
	if ev.sw == s.crashSw {
		s.exit(ev, false) // dead switch: packet blackholed
		return
	}
	outs := s.tables[ev.sw].Apply(ev.pkt, ev.pt)
	if len(outs) == 0 || ev.hops >= s.p.MaxHops {
		s.exit(ev, false)
		return
	}
	// Probes are unicast; take the first output (deterministic tie-break
	// mirrors the operational model).
	o := outs[0]
	if h, ok := s.topo.HostAtPort(ev.sw, o.Port); ok {
		s.exit(ev, h.ID == s.classes[ev.class].DstHost)
		return
	}
	l, ok := s.topo.LinkAt(ev.sw, o.Port)
	if !ok {
		s.exit(ev, false)
		return
	}
	s.push(&event{
		at: s.now + s.p.LinkLatency, kind: evArrive,
		sw: l.Peer, pt: l.PeerPort, pkt: o.Pkt,
		sentAt: ev.sentAt, hops: ev.hops + 1, epoch: ev.epoch, class: ev.class,
	})
}

// command executes the next controller command; updates take
// UpdateLatency, incr is immediate, flush blocks until drained.
func (s *sim) command() {
	if s.cmdIdx >= len(s.cmds) {
		return
	}
	c := s.cmds[s.cmdIdx]
	switch c.Kind {
	case network.CmdUpdate:
		lat := s.installLat()
		s.tables[c.Switch] = c.Table.Clone()
		s.cmdIdx++
		if s.cmdIdx < len(s.cmds) {
			s.push(&event{at: s.now + lat, kind: evCommand})
		} else {
			s.res.CompleteAt = s.now + lat
		}
	case network.CmdIncr:
		s.epoch++
		s.cmdIdx++
		s.push(&event{at: s.now, kind: evCommand})
	case network.CmdFlush:
		if !s.flushed() {
			s.blocked = true
			return // re-armed by exit()
		}
		s.cmdIdx++
		if s.cmdIdx == len(s.cmds) {
			s.res.CompleteAt = s.now
		}
		s.push(&event{at: s.now, kind: evCommand})
	}
}

// installLat draws one rule-install latency: UpdateLatency scaled by a
// uniform factor in [1-InstallJitter, 1+InstallJitter].
func (s *sim) installLat() time.Duration {
	if s.p.InstallJitter == 0 {
		return s.p.UpdateLatency
	}
	f := 1 + s.p.InstallJitter*(2*s.rng.Float64()-1)
	return time.Duration(float64(s.p.UpdateLatency) * f)
}
