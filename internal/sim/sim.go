// Package sim is a discrete-event network simulator standing in for the
// paper's Mininet/OpenFlow testbed (Figure 2): hosts emit probe packets
// at a fixed rate while the controller executes an update command
// schedule with realistic per-command latency, and the simulator reports
// the fraction of probes delivered over time. Forwarding semantics reuse
// the operational model's tables; waits (incr/flush) block the controller
// until in-flight packets drain, exactly as in Section 3.1.
package sim

import (
	"container/heap"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// Params configures a simulation run. Zero fields take defaults.
type Params struct {
	LinkLatency   time.Duration // per-hop latency (default 50us)
	UpdateLatency time.Duration // per switch-update command (default 10ms)
	ProbeInterval time.Duration // probe period per class (default 1ms)
	Duration      time.Duration // injection window (default 6s)
	BucketWidth   time.Duration // reporting bucket (default 250ms)
	CommandStart  time.Duration // controller start time (default 1s)
	MaxHops       int           // loop guard (default 64)
}

func (p *Params) fill() {
	if p.LinkLatency == 0 {
		p.LinkLatency = 50 * time.Microsecond
	}
	if p.UpdateLatency == 0 {
		p.UpdateLatency = 10 * time.Millisecond
	}
	if p.ProbeInterval == 0 {
		p.ProbeInterval = time.Millisecond
	}
	if p.Duration == 0 {
		p.Duration = 6 * time.Second
	}
	if p.BucketWidth == 0 {
		p.BucketWidth = 250 * time.Millisecond
	}
	if p.CommandStart == 0 {
		p.CommandStart = time.Second
	}
	if p.MaxHops == 0 {
		p.MaxHops = 64
	}
}

// Bucket aggregates probes by send time.
type Bucket struct {
	Start     time.Duration
	Sent      int
	Delivered int
}

// Fraction is the delivery fraction for the bucket (1 when nothing sent).
func (b Bucket) Fraction() float64 {
	if b.Sent == 0 {
		return 1
	}
	return float64(b.Delivered) / float64(b.Sent)
}

// Result of a simulation run.
type Result struct {
	Buckets   []Bucket
	Sent      int
	Delivered int
	Lost      int
	// End is the simulated time when the last event fired.
	End time.Duration
}

// MinFraction returns the worst per-bucket delivery fraction.
func (r *Result) MinFraction() float64 {
	min := 1.0
	for _, b := range r.Buckets {
		if f := b.Fraction(); f < min {
			min = f
		}
	}
	return min
}

type evKind uint8

const (
	evProbe evKind = iota
	evArrive
	evCommand
)

type event struct {
	at   time.Duration
	seq  int
	kind evKind
	// evArrive:
	sw     int
	pt     topology.Port
	pkt    network.Packet
	sentAt time.Duration
	hops   int
	epoch  int
	class  int
}

type evHeap []*event

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *evHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

type sim struct {
	topo    *topology.Topology
	tables  map[int]network.Table
	cmds    []network.Command
	cmdIdx  int
	blocked bool // controller waiting on flush
	epoch   int
	// inflight counts packets per ingress epoch.
	inflight map[int]int
	classes  []config.Class
	p        Params

	events evHeap
	seq    int
	now    time.Duration

	res Result
}

// Run simulates the command schedule against continuous probe traffic for
// every class and returns the delivery time series.
func Run(topo *topology.Topology, init *config.Config, cmds []network.Command, classes []config.Class, p Params) *Result {
	p.fill()
	s := &sim{
		topo:     topo,
		tables:   map[int]network.Table{},
		cmds:     cmds,
		inflight: map[int]int{},
		classes:  classes,
		p:        p,
	}
	for _, sw := range init.Switches() {
		s.tables[sw] = init.Table(sw).Clone()
	}
	nBuckets := int(p.Duration/p.BucketWidth) + 1
	s.res.Buckets = make([]Bucket, nBuckets)
	for i := range s.res.Buckets {
		s.res.Buckets[i].Start = time.Duration(i) * p.BucketWidth
	}
	s.push(&event{at: 0, kind: evProbe})
	if len(cmds) > 0 {
		s.push(&event{at: p.CommandStart, kind: evCommand})
	}
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		s.now = ev.at
		switch ev.kind {
		case evProbe:
			s.probe()
		case evArrive:
			s.arrive(ev)
		case evCommand:
			s.command()
		}
	}
	s.res.End = s.now
	return &s.res
}

func (s *sim) push(ev *event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
}

func (s *sim) bucket(t time.Duration) *Bucket {
	i := int(t / s.p.BucketWidth)
	if i >= len(s.res.Buckets) {
		i = len(s.res.Buckets) - 1
	}
	return &s.res.Buckets[i]
}

// probe injects one packet per class and reschedules itself until the
// injection window closes.
func (s *sim) probe() {
	for ci, cl := range s.classes {
		h, ok := s.topo.HostByID(cl.SrcHost)
		if !ok {
			continue
		}
		s.res.Sent++
		s.bucket(s.now).Sent++
		s.inflight[s.epoch]++
		s.push(&event{
			at: s.now + s.p.LinkLatency, kind: evArrive,
			sw: h.Switch, pt: h.Port, pkt: cl.Packet(),
			sentAt: s.now, epoch: s.epoch, class: ci,
		})
	}
	if next := s.now + s.p.ProbeInterval; next < s.p.Duration {
		s.push(&event{at: next, kind: evProbe})
	}
}

// exit retires a packet, unblocking a pending flush when the last stale
// packet drains.
func (s *sim) exit(ev *event, delivered bool) {
	s.inflight[ev.epoch]--
	if s.inflight[ev.epoch] == 0 {
		delete(s.inflight, ev.epoch)
	}
	if delivered {
		s.res.Delivered++
		s.bucket(ev.sentAt).Delivered++
	} else {
		s.res.Lost++
	}
	if s.blocked && s.flushed() {
		s.blocked = false
		s.push(&event{at: s.now, kind: evCommand})
	}
}

// flushed reports whether all packets from epochs before the current one
// have left the network.
func (s *sim) flushed() bool {
	for ep, n := range s.inflight {
		if ep < s.epoch && n > 0 {
			return false
		}
	}
	return true
}

func (s *sim) arrive(ev *event) {
	outs := s.tables[ev.sw].Apply(ev.pkt, ev.pt)
	if len(outs) == 0 || ev.hops >= s.p.MaxHops {
		s.exit(ev, false)
		return
	}
	// Probes are unicast; take the first output (deterministic tie-break
	// mirrors the operational model).
	o := outs[0]
	if h, ok := s.topo.HostAtPort(ev.sw, o.Port); ok {
		s.exit(ev, h.ID == s.classes[ev.class].DstHost)
		return
	}
	l, ok := s.topo.LinkAt(ev.sw, o.Port)
	if !ok {
		s.exit(ev, false)
		return
	}
	s.push(&event{
		at: s.now + s.p.LinkLatency, kind: evArrive,
		sw: l.Peer, pt: l.PeerPort, pkt: o.Pkt,
		sentAt: ev.sentAt, hops: ev.hops + 1, epoch: ev.epoch, class: ev.class,
	})
}

// command executes the next controller command; updates take
// UpdateLatency, incr is immediate, flush blocks until drained.
func (s *sim) command() {
	if s.cmdIdx >= len(s.cmds) {
		return
	}
	c := s.cmds[s.cmdIdx]
	switch c.Kind {
	case network.CmdUpdate:
		s.tables[c.Switch] = c.Table.Clone()
		s.cmdIdx++
		if s.cmdIdx < len(s.cmds) {
			s.push(&event{at: s.now + s.p.UpdateLatency, kind: evCommand})
		}
	case network.CmdIncr:
		s.epoch++
		s.cmdIdx++
		s.push(&event{at: s.now, kind: evCommand})
	case network.CmdFlush:
		if !s.flushed() {
			s.blocked = true
			return // re-armed by exit()
		}
		s.cmdIdx++
		s.push(&event{at: s.now, kind: evCommand})
	}
}
