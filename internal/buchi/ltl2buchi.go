// Package buchi implements an automaton-theoretic LTL model checker: the
// Gerth-Peled-Vardi-Wolper (GPVW) tableau translation from LTL to
// generalized Büchi automata, degeneralization, product with a Kripke
// structure, and nested-DFS emptiness checking. It is the repository's
// stand-in for NuSMV: a general-purpose checker that re-verifies the whole
// model from scratch on every call (see DESIGN.md, Substitutions).
package buchi

import (
	"sort"

	"netupdate/internal/ltl"
)

// Automaton is a Büchi automaton over state-labels: each automaton state
// carries literal obligations (atomic propositions that must be true or
// false of the Kripke state it is paired with).
type Automaton struct {
	// Pos[i]/Neg[i] are the closure ids of atoms that must hold / must not
	// hold at any Kripke state paired with automaton state i.
	Pos, Neg [][]int
	Init     []int
	Succ     [][]int
	Accept   []bool
	// Closure indexes the subformulas of the (negated) specification; the
	// checker evaluates its atoms against Kripke states.
	Closure *ltl.Closure
}

// Translate builds a Büchi automaton accepting exactly the traces that
// satisfy f (callers pass the negated specification to search for
// violations). f is converted to NNF internally.
func Translate(f *ltl.Formula) (*Automaton, error) {
	clo, err := ltl.NewClosure(f)
	if err != nil {
		return nil, err
	}
	g := &gpvw{clo: clo}
	g.run()
	return g.degeneralize(), nil
}

// gpvw carries the tableau construction state.
type gpvw struct {
	clo   *ltl.Closure
	nodes []*gnode
}

// gnode is a tableau node. Sets are keyed by closure subformula id.
type gnode struct {
	id       int
	incoming map[int]bool // predecessor node ids; -1 marks initial
	new      map[int]bool
	old      map[int]bool
	next     map[int]bool
}

const initMark = -1

func setClone(m map[int]bool) map[int]bool {
	c := make(map[int]bool, len(m))
	for k := range m {
		c[k] = true
	}
	return c
}

func (g *gpvw) run() {
	root := &gnode{
		incoming: map[int]bool{initMark: true},
		new:      map[int]bool{g.clo.Root(): true},
		old:      map[int]bool{},
		next:     map[int]bool{},
	}
	g.expand(root)
}

// pop removes and returns an arbitrary (smallest, for determinism)
// formula id from new.
func (n *gnode) pop() int {
	min := -1
	for id := range n.new {
		if min == -1 || id < min {
			min = id
		}
	}
	delete(n.new, min)
	return min
}

func (g *gpvw) expand(n *gnode) {
	if len(n.new) == 0 {
		// Merge with an existing node having identical old/next.
		for _, m := range g.nodes {
			if setsEqual(m.old, n.old) && setsEqual(m.next, n.next) {
				for p := range n.incoming {
					m.incoming[p] = true
				}
				return
			}
		}
		n.id = len(g.nodes)
		g.nodes = append(g.nodes, n)
		succ := &gnode{
			incoming: map[int]bool{n.id: true},
			new:      setClone(n.next),
			old:      map[int]bool{},
			next:     map[int]bool{},
		}
		g.expand(succ)
		return
	}
	eta := n.pop()
	f := g.clo.Sub(eta)
	switch f.Op {
	case ltl.OpTrue:
		g.expand(n)
	case ltl.OpFalse:
		return // contradiction: discard node
	case ltl.OpAtom, ltl.OpNot:
		if n.old[g.negationOf(eta)] {
			return // inconsistent literal set
		}
		n.old[eta] = true
		g.expand(n)
	case ltl.OpAnd:
		l, r := g.childIDs(f)
		if !n.old[l] {
			n.new[l] = true
		}
		if !n.old[r] {
			n.new[r] = true
		}
		n.old[eta] = true
		g.expand(n)
	case ltl.OpOr:
		l, r := g.childIDs(f)
		n2 := &gnode{incoming: setClone(n.incoming), new: setClone(n.new),
			old: setClone(n.old), next: setClone(n.next)}
		n.old[eta] = true
		n2.old[eta] = true
		if !n.old[l] {
			n.new[l] = true
		}
		if !n2.old[r] {
			n2.new[r] = true
		}
		g.expand(n)
		g.expand(n2)
	case ltl.OpNext:
		l, _ := g.childIDs(f)
		n.old[eta] = true
		n.next[l] = true
		g.expand(n)
	case ltl.OpUntil:
		l, r := g.childIDs(f)
		n2 := &gnode{incoming: setClone(n.incoming), new: setClone(n.new),
			old: setClone(n.old), next: setClone(n.next)}
		n.old[eta] = true
		n2.old[eta] = true
		// Branch 1: l holds now, obligation carries to the next state.
		if !n.old[l] {
			n.new[l] = true
		}
		n.next[eta] = true
		// Branch 2: r holds now, obligation discharged.
		if !n2.old[r] {
			n2.new[r] = true
		}
		g.expand(n)
		g.expand(n2)
	case ltl.OpRelease:
		l, r := g.childIDs(f)
		n2 := &gnode{incoming: setClone(n.incoming), new: setClone(n.new),
			old: setClone(n.old), next: setClone(n.next)}
		n.old[eta] = true
		n2.old[eta] = true
		// Branch 1: r holds now, obligation carries.
		if !n.old[r] {
			n.new[r] = true
		}
		n.next[eta] = true
		// Branch 2: l and r hold now, obligation discharged.
		if !n2.old[l] {
			n2.new[l] = true
		}
		if !n2.old[r] {
			n2.new[r] = true
		}
		g.expand(n)
		g.expand(n2)
	}
}

// negationOf returns the closure id of the NNF negation of a literal, or
// -1 if the negation is not in the closure (then no clash is possible).
func (g *gpvw) negationOf(id int) int {
	f := g.clo.Sub(id)
	var neg *ltl.Formula
	if f.Op == ltl.OpAtom {
		neg = ltl.Not(f)
	} else { // OpNot over an atom
		neg = f.L
	}
	// Linear scan: closures are small and this runs once per literal pop.
	for i := 0; i < g.clo.Size(); i++ {
		if g.clo.Sub(i).Equal(neg) {
			return i
		}
	}
	return -1
}

func (g *gpvw) childIDs(f *ltl.Formula) (int, int) {
	l, r := -1, -1
	if f.L != nil {
		l = g.mustID(f.L)
	}
	if f.R != nil {
		r = g.mustID(f.R)
	}
	return l, r
}

func (g *gpvw) mustID(f *ltl.Formula) int {
	for i := 0; i < g.clo.Size(); i++ {
		if g.clo.Sub(i).Equal(f) {
			return i
		}
	}
	panic("buchi: subformula missing from closure")
}

func setsEqual(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// degeneralize converts the tableau's generalized acceptance (one set per
// until subformula) into an ordinary Büchi automaton via the standard
// copy construction.
func (g *gpvw) degeneralize() *Automaton {
	// Collect until subformulas; acceptance set for u = l U r is the set
	// of nodes where u not in old, or r in old.
	var untils []int
	for i := 0; i < g.clo.Size(); i++ {
		if g.clo.Sub(i).Op == ltl.OpUntil {
			untils = append(untils, i)
		}
	}
	k := len(untils)
	if k == 0 {
		k = 1 // single trivially-full acceptance set
	}
	inF := func(node *gnode, j int) bool {
		if len(untils) == 0 {
			return true
		}
		u := untils[j]
		if !node.old[u] {
			return true
		}
		_, r := g.childIDs(g.clo.Sub(u))
		return node.old[r]
	}
	nNodes := len(g.nodes)
	idx := func(node, copy int) int { return node*k + copy }
	a := &Automaton{
		Pos:     make([][]int, nNodes*k),
		Neg:     make([][]int, nNodes*k),
		Succ:    make([][]int, nNodes*k),
		Accept:  make([]bool, nNodes*k),
		Closure: g.clo,
	}
	// Literals per node.
	pos := make([][]int, nNodes)
	neg := make([][]int, nNodes)
	for i, node := range g.nodes {
		for id := range node.old {
			switch g.clo.Sub(id).Op {
			case ltl.OpAtom:
				pos[i] = append(pos[i], id)
			case ltl.OpNot:
				neg[i] = append(neg[i], g.mustID(g.clo.Sub(id).L))
			}
		}
		sort.Ints(pos[i])
		sort.Ints(neg[i])
	}
	// Edges: node m -> node n iff m in n.incoming. Copy transition: from
	// copy j, advance to (j+1)%k when the source node is in F_j.
	for ni, node := range g.nodes {
		for j := 0; j < k; j++ {
			s := idx(ni, j)
			a.Pos[s], a.Neg[s] = pos[ni], neg[ni]
			a.Accept[s] = j == 0 && inF(node, 0)
		}
		for p := range node.incoming {
			if p == initMark {
				for j := 0; j < 1; j++ { // initial states start in copy 0
					a.Init = append(a.Init, idx(ni, 0))
				}
				continue
			}
			for j := 0; j < k; j++ {
				jn := j
				if inF(g.nodes[p], j) {
					jn = (j + 1) % k
				}
				a.Succ[idx(p, j)] = append(a.Succ[idx(p, j)], idx(ni, jn))
			}
		}
	}
	return a
}

// NumStates returns the number of automaton states.
func (a *Automaton) NumStates() int { return len(a.Succ) }
