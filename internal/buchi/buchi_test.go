package buchi

import (
	"math/rand"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
	"netupdate/internal/mc"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

func randomScene(r *rand.Rand) (*topology.Topology, *kripke.K) {
	for {
		n := 4 + r.Intn(6)
		topo := topology.WAN("t", n, r.Int63())
		topo.AddHost(100, r.Intn(n))
		topo.AddHost(101, r.Intn(n))
		cl := config.Class{SrcHost: 100, DstHost: 101}
		cfg := config.New()
		for sw := 0; sw < n; sw++ {
			if r.Intn(4) == 0 {
				continue
			}
			ports := topo.Ports(sw)
			cfg.AddRule(sw, network.Rule{
				Priority: 10, Match: cl.Pattern(),
				Actions: []network.Action{network.Forward(ports[r.Intn(len(ports))])},
			})
		}
		k, err := kripke.Build(topo, cfg, cl)
		if err != nil {
			continue
		}
		return topo, k
	}
}

func randomFormula(r *rand.Rand, n int) *ltl.Formula {
	var gen func(d int) *ltl.Formula
	gen = func(d int) *ltl.Formula {
		if d <= 0 {
			return ltl.At(r.Intn(n))
		}
		switch r.Intn(7) {
		case 0:
			return ltl.Not(gen(d - 1))
		case 1:
			return ltl.And(gen(d-1), gen(d-1))
		case 2:
			return ltl.Or(gen(d-1), gen(d-1))
		case 3:
			return ltl.Next(gen(d - 1))
		case 4:
			return ltl.Until(gen(d-1), gen(d-1))
		case 5:
			return ltl.Release(gen(d-1), gen(d-1))
		default:
			return ltl.At(r.Intn(n))
		}
	}
	return gen(2 + r.Intn(2))
}

func bruteForce(k *kripke.K, f *ltl.Formula) bool {
	for _, q0 := range k.Init() {
		for _, tr := range k.Traces(q0, 100000) {
			env := make([]ltl.Env, len(tr))
			for i, id := range tr {
				env[i] = k.Env(id)
			}
			if !f.EvalTrace(env) {
				return false
			}
		}
	}
	return true
}

func TestTranslateSmokeTests(t *testing.T) {
	for _, f := range []*ltl.Formula{
		ltl.True(), ltl.False(), ltl.At(1),
		ltl.Eventually(ltl.At(2)), ltl.Always(ltl.At(1)),
		ltl.Until(ltl.At(1), ltl.At(2)),
		ltl.Reachability(0, 2), ltl.Waypoint(0, 1, 2),
	} {
		a, err := Translate(f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if f.Op == ltl.OpFalse {
			if len(a.Init) != 0 {
				t.Fatalf("automaton for false should be empty")
			}
			continue
		}
		if a.NumStates() == 0 {
			t.Fatalf("%v: empty automaton", f)
		}
	}
}

func TestCheckerMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for iter := 0; iter < 200; iter++ {
		topo, k := randomScene(r)
		f := randomFormula(r, topo.NumSwitches())
		chk, err := New(k, f)
		if err != nil {
			continue
		}
		got := chk.Check()
		want := bruteForce(k, f)
		if got.OK != want {
			t.Fatalf("iter %d: buchi=%v brute=%v formula=%v", iter, got.OK, want, f)
		}
		if !got.OK {
			validateCex(t, k, f, got.Cex)
		}
	}
}

func validateCex(t *testing.T, k *kripke.K, f *ltl.Formula, cex []int) {
	t.Helper()
	if len(cex) == 0 {
		t.Fatal("missing counterexample")
	}
	for i := 0; i+1 < len(cex); i++ {
		ok := false
		for _, s := range k.Succ(cex[i]) {
			if s == cex[i+1] {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("cex has non-edge at %d", i)
		}
	}
	if !k.IsSink(cex[len(cex)-1]) {
		t.Fatal("cex must end at a sink")
	}
	env := make([]ltl.Env, len(cex))
	for i, id := range cex {
		env[i] = k.Env(id)
	}
	if f.EvalTrace(env) {
		t.Fatal("cex does not violate the formula")
	}
}

func TestCheckerMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	for iter := 0; iter < 150; iter++ {
		topo, k := randomScene(r)
		f := randomFormula(r, topo.NumSwitches())
		bchk, err := New(k, f)
		if err != nil {
			continue
		}
		ichk, err := mc.NewIncremental(k, f)
		if err != nil {
			continue
		}
		if bchk.Check().OK != ichk.Check().OK {
			t.Fatalf("iter %d: buchi and incremental disagree on %v", iter, f)
		}
	}
}

func TestCheckerUpdateIsBatch(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	topo, k := randomScene(r)
	f := ltl.Reachability(0, topo.NumSwitches()-1)
	chk, err := New(k, f)
	if err != nil {
		t.Fatal(err)
	}
	before := chk.Check()
	d, err := k.UpdateSwitch(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, tok := chk.Update(d)
	chk.Revert(tok)
	k.Revert(d)
	after := chk.Check()
	if before.OK != after.OK {
		t.Fatal("revert did not restore verdict")
	}
	_ = v
	if chk.Stats().Checks != 3 {
		t.Fatalf("stats.Checks = %d, want 3", chk.Stats().Checks)
	}
}
