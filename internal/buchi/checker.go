package buchi

import (
	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
	"netupdate/internal/mc"
)

// Checker is the NuSMV-substitute backend: it verifies K |= phi by
// building the Büchi automaton for !phi once, then on every call
// re-encoding the entire model — the full consistency matrix between
// Kripke states and automaton states, mirroring NuSMV's per-invocation
// model parsing and symbolic encoding — and running nested DFS over the
// product for an accepting cycle. Nothing is reused between calls (batch
// mode), which is exactly how the paper drives NuSMV: the per-call cost
// is proportional to the whole model, not to the part an update touched.
type Checker struct {
	k     *kripke.K
	aut   *Automaton
	stats mc.Stats
	// cons is rebuilt on every Check: cons[q*|A|+b] records whether
	// automaton state b's literal obligations hold at Kripke state q.
	cons []bool
}

// New builds the checker, translating the negated specification.
func New(k *kripke.K, spec *ltl.Formula) (mc.Checker, error) {
	aut, err := Translate(ltl.Not(spec))
	if err != nil {
		return nil, err
	}
	return &Checker{k: k, aut: aut}, nil
}

// Name implements mc.Checker.
func (c *Checker) Name() string { return "nusmv-like" }

// Check implements mc.Checker.
func (c *Checker) Check() mc.Verdict {
	c.stats.Checks++
	c.encode()
	return c.search()
}

// encode rebuilds the model representation from scratch: every (Kripke
// state, automaton state) pair's literal consistency. This is the batch
// cost the incremental checker avoids — a stand-in for NuSMV re-reading
// and re-encoding the SMV model on every query.
func (c *Checker) encode() {
	nk, na := c.k.NumStates(), c.aut.NumStates()
	c.cons = make([]bool, nk*na)
	for q := 0; q < nk; q++ {
		c.stats.StatesLabeled++
		for b := 0; b < na; b++ {
			c.cons[q*na+b] = c.computeConsistent(q, b)
		}
	}
}

// Update implements mc.Checker: full re-check, no state.
func (c *Checker) Update(delta *kripke.Delta) (mc.Verdict, mc.Token) {
	return c.Check(), struct{}{}
}

// Revert implements mc.Checker: nothing to undo.
func (c *Checker) Revert(t mc.Token) {}

// Stats implements mc.Checker.
func (c *Checker) Stats() mc.Stats { return c.stats }

// StatelessMC implements mc.Stateless: every Check re-encodes the whole
// model; Update and Revert keep nothing.
func (c *Checker) StatelessMC() {}

// Rebind implements mc.Rebindable. The structure is mutated in place by
// kripke.K.Rebind and the automaton is configuration-independent, so the
// next Check re-encodes against the rebound transitions with no work
// here.
func (c *Checker) Rebind() {}

// DeltaInvariantMC implements mc.DeltaInvariant: the product search reads
// only the class structure, so an empty delta cannot change the verdict.
func (c *Checker) DeltaInvariantMC() {}

// CloneFor implements mc.Cloneable: the automaton is immutable and shared;
// the consistency matrix is rebuilt on the next Check anyway (batch mode),
// so the clone is just a fresh view over the cloned structure.
func (c *Checker) CloneFor(k2 *kripke.K) (mc.Checker, error) {
	return &Checker{k: k2, aut: c.aut}, nil
}

// pstate is a product state (Kripke state, automaton state).
type pstate struct {
	q int // Kripke state
	b int // automaton state
}

// consistent reads the encoded consistency matrix.
func (c *Checker) consistent(q, b int) bool {
	return c.cons[q*c.aut.NumStates()+b]
}

// computeConsistent reports whether automaton state b may be paired with
// Kripke state q (its literal obligations hold at q).
func (c *Checker) computeConsistent(q, b int) bool {
	for _, id := range c.aut.Pos[b] {
		if !c.k.HoldsAt(q, c.aut.Closure.Sub(id).Prop) {
			return false
		}
	}
	for _, id := range c.aut.Neg[b] {
		if c.k.HoldsAt(q, c.aut.Closure.Sub(id).Prop) {
			return false
		}
	}
	return true
}

// ksucc returns the Kripke successors of q, materializing the implicit
// self-loop at sinks (the automaton runs over infinite traces).
func (c *Checker) ksucc(q int) []int {
	if c.k.IsSink(q) {
		return []int{q}
	}
	return c.k.Succ(q)
}

// search runs nested DFS over the product; an accepting lasso is a trace
// of K violating the specification.
func (c *Checker) search() mc.Verdict {
	outer := map[pstate]bool{}
	inner := map[pstate]bool{}
	var stack []pstate // current DFS path, for counterexample extraction

	var dfsInner func(s, seed pstate) bool
	dfsInner = func(s, seed pstate) bool {
		inner[s] = true
		for _, q2 := range c.ksucc(s.q) {
			for _, b2 := range c.aut.Succ[s.b] {
				if !c.consistent(q2, b2) {
					continue
				}
				t := pstate{q2, b2}
				if t == seed {
					return true
				}
				if !inner[t] && dfsInner(t, seed) {
					return true
				}
			}
		}
		return false
	}

	var cex []int
	var dfsOuter func(s pstate) bool
	dfsOuter = func(s pstate) bool {
		outer[s] = true
		stack = append(stack, s)
		defer func() { stack = stack[:len(stack)-1] }()
		for _, q2 := range c.ksucc(s.q) {
			for _, b2 := range c.aut.Succ[s.b] {
				if !c.consistent(q2, b2) {
					continue
				}
				t := pstate{q2, b2}
				if !outer[t] && dfsOuter(t) {
					return true
				}
			}
		}
		if c.aut.Accept[s.b] && dfsInner(s, s) {
			// Accepting lasso found. The stem (current stack) projects to
			// a violating Kripke trace; cycles in our DAG-like structures
			// exist only at sinks, so the stem already ends in the sink.
			cex = make([]int, 0, len(stack))
			for i, ps := range stack {
				if i > 0 && ps.q == stack[i-1].q {
					continue // collapse automaton-only moves
				}
				cex = append(cex, ps.q)
			}
			return true
		}
		return false
	}

	for _, q0 := range c.k.Init() {
		for _, b0 := range c.aut.Init {
			if !c.consistent(q0, b0) {
				continue
			}
			s := pstate{q0, b0}
			if !outer[s] && dfsOuter(s) {
				// Ensure the counterexample reaches a sink (walk forward
				// deterministically if the lasso closed early).
				cex = extendToSink(c.k, cex)
				return mc.Verdict{OK: false, Cex: cex, HasCex: true}
			}
		}
	}
	return mc.Verdict{OK: true, HasCex: true}
}

// extendToSink walks an arbitrary continuation from the last state of the
// trace to a sink so that counterexamples have the canonical
// initial-to-sink shape shared with the labeling checkers.
func extendToSink(k *kripke.K, trace []int) []int {
	if len(trace) == 0 {
		return trace
	}
	seen := map[int]bool{}
	for _, q := range trace {
		seen[q] = true
	}
	q := trace[len(trace)-1]
	for !k.IsSink(q) {
		next := k.Succ(q)[0]
		if seen[next] {
			break // defensive: should not happen in DAG-like structures
		}
		trace = append(trace, next)
		seen[next] = true
		q = next
	}
	return trace
}

var (
	_ mc.Checker        = (*Checker)(nil)
	_ mc.Cloneable      = (*Checker)(nil)
	_ mc.Stateless      = (*Checker)(nil)
	_ mc.Rebindable     = (*Checker)(nil)
	_ mc.DeltaInvariant = (*Checker)(nil)
)
