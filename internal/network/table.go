// Package network implements the paper's operational network model
// (Section 3, Figure 3): packets, prioritized forwarding tables, switches,
// links, hosts, a controller executing update/incr/flush commands, and the
// small-step Chemical-Abstract-Machine semantics that drives both the
// formal tests and the discrete-event simulator.
package network

import (
	"cmp"
	"fmt"
	"sort"
	"strings"

	"netupdate/internal/topology"
)

// FieldID identifies a packet header field.
type FieldID uint8

// Packet header fields. The model fixes a small set of representative
// header fields; the paper's model is generic over fields f1..fk.
const (
	FieldSrc FieldID = iota
	FieldDst
	FieldTyp
	NumFields
)

func (f FieldID) String() string {
	switch f {
	case FieldSrc:
		return "src"
	case FieldDst:
		return "dst"
	case FieldTyp:
		return "typ"
	}
	return fmt.Sprintf("field(%d)", uint8(f))
}

// FieldByName maps a field name to its id.
func FieldByName(name string) (FieldID, bool) {
	switch name {
	case "src":
		return FieldSrc, true
	case "dst":
		return FieldDst, true
	case "typ":
		return FieldTyp, true
	}
	return 0, false
}

// Packet is a record of header field values.
type Packet struct {
	Src, Dst, Typ int
}

// Field projects a header field.
func (p Packet) Field(f FieldID) int {
	switch f {
	case FieldSrc:
		return p.Src
	case FieldDst:
		return p.Dst
	case FieldTyp:
		return p.Typ
	}
	panic(fmt.Sprintf("network: bad field %d", f))
}

// WithField returns a copy of p with field f set to v (the paper's
// {r with f = v} functional update).
func (p Packet) WithField(f FieldID, v int) Packet {
	switch f {
	case FieldSrc:
		p.Src = v
	case FieldDst:
		p.Dst = v
	case FieldTyp:
		p.Typ = v
	default:
		panic(fmt.Sprintf("network: bad field %d", f))
	}
	return p
}

func (p Packet) String() string {
	return fmt.Sprintf("{src=%d dst=%d typ=%d}", p.Src, p.Dst, p.Typ)
}

// Wildcard marks a pattern field as unconstrained.
const Wildcard = -1

// Pattern is a record of optional header fields plus an optional ingress
// port. A zero port means "any port"; Wildcard (-1) in a header field
// means "any value".
type Pattern struct {
	InPort topology.Port // 0 = any
	Src    int
	Dst    int
	Typ    int
}

// AnyPacket is the fully wildcarded pattern.
func AnyPacket() Pattern {
	return Pattern{Src: Wildcard, Dst: Wildcard, Typ: Wildcard}
}

// MatchFlow returns a pattern matching packets with the given src and dst.
func MatchFlow(src, dst int) Pattern {
	return Pattern{Src: src, Dst: dst, Typ: Wildcard}
}

// Matches reports whether the pattern matches a packet arriving on port pt.
func (pat Pattern) Matches(pkt Packet, pt topology.Port) bool {
	if pat.InPort != 0 && pat.InPort != pt {
		return false
	}
	if pat.Src != Wildcard && pat.Src != pkt.Src {
		return false
	}
	if pat.Dst != Wildcard && pat.Dst != pkt.Dst {
		return false
	}
	if pat.Typ != Wildcard && pat.Typ != pkt.Typ {
		return false
	}
	return true
}

func (pat Pattern) String() string {
	var parts []string
	if pat.InPort != 0 {
		parts = append(parts, fmt.Sprintf("pt=%d", pat.InPort))
	}
	for f, v := range map[string]int{"src": pat.Src, "dst": pat.Dst, "typ": pat.Typ} {
		if v != Wildcard {
			parts = append(parts, fmt.Sprintf("%s=%d", f, v))
		}
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "*"
	}
	return strings.Join(parts, ",")
}

// ActionKind discriminates forwarding from field modification.
type ActionKind uint8

// Action kinds.
const (
	ActForward ActionKind = iota
	ActSetField
)

// Action is either "fwd pt" or "f := n".
type Action struct {
	Kind  ActionKind
	Port  topology.Port // for ActForward
	Field FieldID       // for ActSetField
	Value int           // for ActSetField
}

// Forward returns the action "fwd pt".
func Forward(pt topology.Port) Action { return Action{Kind: ActForward, Port: pt} }

// SetField returns the action "f := v".
func SetField(f FieldID, v int) Action {
	return Action{Kind: ActSetField, Field: f, Value: v}
}

func (a Action) String() string {
	if a.Kind == ActForward {
		return fmt.Sprintf("fwd %d", a.Port)
	}
	return fmt.Sprintf("%s:=%d", a.Field, a.Value)
}

// Rule is a prioritized forwarding rule. Higher priority wins.
type Rule struct {
	Priority int
	Match    Pattern
	Actions  []Action
}

func (r Rule) String() string {
	acts := make([]string, len(r.Actions))
	for i, a := range r.Actions {
		acts[i] = a.String()
	}
	return fmt.Sprintf("[%d] %s -> %s", r.Priority, r.Match, strings.Join(acts, "; "))
}

// equalRule compares rules structurally.
func equalRule(a, b Rule) bool {
	if a.Priority != b.Priority || a.Match != b.Match || len(a.Actions) != len(b.Actions) {
		return false
	}
	for i := range a.Actions {
		if a.Actions[i] != b.Actions[i] {
			return false
		}
	}
	return true
}

// Table is a forwarding table: a set of prioritized rules.
type Table []Rule

// PortPacket is an output pair (packet, port) produced by table
// application.
type PortPacket struct {
	Pkt  Packet
	Port topology.Port
}

// Apply implements the semantic function [[tbl]]: it finds the
// highest-priority rule matching (pkt, pt) and applies its actions,
// producing the multiset of output (packet, port) pairs. If no rule
// matches, the packet is dropped (empty result). Ties between rules of
// equal priority are broken by table order, a deterministic refinement of
// the paper's "free to pick any".
func (t Table) Apply(pkt Packet, pt topology.Port) []PortPacket {
	return t.AppendApply(nil, pkt, pt)
}

// AppendApply is Apply appending into dst, so hot paths (the Kripke
// transition recomputation runs once per arrival state per candidate
// update) can reuse a scratch buffer instead of allocating per call.
func (t Table) AppendApply(dst []PortPacket, pkt Packet, pt topology.Port) []PortPacket {
	best := -1
	for i, r := range t {
		if !r.Match.Matches(pkt, pt) {
			continue
		}
		if best == -1 || r.Priority > t[best].Priority {
			best = i
		}
	}
	if best == -1 {
		return dst
	}
	cur := pkt
	for _, a := range t[best].Actions {
		switch a.Kind {
		case ActSetField:
			cur = cur.WithField(a.Field, a.Value)
		case ActForward:
			dst = append(dst, PortPacket{Pkt: cur, Port: a.Port})
		}
	}
	return dst
}

// Canonical returns a copy of the table sorted by descending priority,
// then pattern and action order; two tables with the same canonical form
// are semantically identical under deterministic tie-breaking.
func (t Table) Canonical() Table {
	c := make(Table, len(t))
	copy(c, t)
	sort.SliceStable(c, func(i, j int) bool { return compareRules(c[i], c[j]) < 0 })
	return c
}

// compareRules is a total order on rules: descending priority, then
// pattern fields, then actions. Field-by-field comparison keeps Canonical
// (and hence Equal, which runs on every configuration diff) free of the
// per-comparison string formatting it previously paid.
func compareRules(a, b Rule) int {
	if a.Priority != b.Priority {
		if a.Priority > b.Priority {
			return -1 // higher priority sorts first
		}
		return 1
	}
	if c := cmp.Compare(a.Match.InPort, b.Match.InPort); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Match.Src, b.Match.Src); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Match.Dst, b.Match.Dst); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Match.Typ, b.Match.Typ); c != 0 {
		return c
	}
	if c := cmp.Compare(len(a.Actions), len(b.Actions)); c != 0 {
		return c
	}
	for i := range a.Actions {
		x, y := a.Actions[i], b.Actions[i]
		if c := cmp.Compare(x.Kind, y.Kind); c != 0 {
			return c
		}
		if c := cmp.Compare(x.Port, y.Port); c != 0 {
			return c
		}
		if c := cmp.Compare(x.Field, y.Field); c != 0 {
			return c
		}
		if c := cmp.Compare(x.Value, y.Value); c != 0 {
			return c
		}
	}
	return 0
}

// Equal reports whether two tables have identical canonical forms.
func (t Table) Equal(u Table) bool {
	a, b := t.Canonical(), u.Canonical()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalRule(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the table.
func (t Table) Clone() Table {
	c := make(Table, len(t))
	for i, r := range t {
		c[i] = r
		c[i].Actions = append([]Action(nil), r.Actions...)
	}
	return c
}

func (t Table) String() string {
	var b strings.Builder
	for i, r := range t {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(r.String())
	}
	return b.String()
}
