package network

import (
	"math/rand"
	"testing"

	"netupdate/internal/topology"
)

func TestPacketFields(t *testing.T) {
	p := Packet{Src: 1, Dst: 2, Typ: 3}
	if p.Field(FieldSrc) != 1 || p.Field(FieldDst) != 2 || p.Field(FieldTyp) != 3 {
		t.Fatal("Field projection broken")
	}
	q := p.WithField(FieldDst, 9)
	if q.Dst != 9 || p.Dst != 2 {
		t.Fatal("WithField must be functional")
	}
	if f, ok := FieldByName("dst"); !ok || f != FieldDst {
		t.Fatal("FieldByName(dst)")
	}
	if _, ok := FieldByName("nope"); ok {
		t.Fatal("FieldByName should reject unknown names")
	}
}

func TestPatternMatching(t *testing.T) {
	pkt := Packet{Src: 1, Dst: 2, Typ: 0}
	cases := []struct {
		pat  Pattern
		pt   topology.Port
		want bool
	}{
		{AnyPacket(), 1, true},
		{MatchFlow(1, 2), 1, true},
		{MatchFlow(1, 3), 1, false},
		{MatchFlow(2, 2), 1, false},
		{Pattern{InPort: 2, Src: Wildcard, Dst: Wildcard, Typ: Wildcard}, 1, false},
		{Pattern{InPort: 1, Src: Wildcard, Dst: Wildcard, Typ: Wildcard}, 1, true},
		{Pattern{Src: Wildcard, Dst: Wildcard, Typ: 5}, 1, false},
	}
	for i, c := range cases {
		if got := c.pat.Matches(pkt, c.pt); got != c.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, c.want)
		}
	}
}

func TestTableApplyPriority(t *testing.T) {
	tbl := Table{
		{Priority: 1, Match: AnyPacket(), Actions: []Action{Forward(1)}},
		{Priority: 10, Match: MatchFlow(1, 2), Actions: []Action{Forward(2)}},
	}
	out := tbl.Apply(Packet{Src: 1, Dst: 2}, 5)
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("high-priority rule should win: %v", out)
	}
	out = tbl.Apply(Packet{Src: 3, Dst: 4}, 5)
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("fallback rule should match: %v", out)
	}
	if out := (Table{}).Apply(Packet{}, 1); out != nil {
		t.Fatalf("empty table must drop, got %v", out)
	}
}

func TestTableApplyModification(t *testing.T) {
	tbl := Table{
		{Priority: 1, Match: AnyPacket(), Actions: []Action{
			SetField(FieldTyp, 7), Forward(1), SetField(FieldTyp, 8), Forward(2),
		}},
	}
	out := tbl.Apply(Packet{}, 1)
	if len(out) != 2 {
		t.Fatalf("want 2 outputs, got %v", out)
	}
	if out[0].Pkt.Typ != 7 || out[0].Port != 1 {
		t.Fatalf("first output wrong: %v", out[0])
	}
	if out[1].Pkt.Typ != 8 || out[1].Port != 2 {
		t.Fatalf("second output sees later modification: %v", out[1])
	}
}

func TestTableEqualCanonical(t *testing.T) {
	a := Table{
		{Priority: 1, Match: MatchFlow(1, 2), Actions: []Action{Forward(1)}},
		{Priority: 2, Match: MatchFlow(3, 4), Actions: []Action{Forward(2)}},
	}
	b := Table{a[1], a[0]} // same rules, different order
	if !a.Equal(b) {
		t.Fatal("order must not affect equality")
	}
	c := a.Clone()
	c[0].Actions[0] = Forward(9)
	if a.Equal(c) {
		t.Fatal("modified clone should differ")
	}
	if a[0].Actions[0] != Forward(1) {
		t.Fatal("Clone must deep-copy actions")
	}
}

// lineTopo builds h0 - sw0 - sw1 - sw2 - h1 with hosts 0 and 1.
func lineTopo() (*topology.Topology, Table, Table, Table) {
	topo := topology.New("line", 3)
	topo.AddLink(0, 1) // sw0 pt1 <-> sw1 pt1
	topo.AddLink(1, 2) // sw1 pt2 <-> sw2 pt1
	h0 := topo.AddHost(0, 0)
	h1 := topo.AddHost(1, 2)
	fwd := func(pt topology.Port) Table {
		return Table{{Priority: 1, Match: AnyPacket(), Actions: []Action{Forward(pt)}}}
	}
	p01, _ := topo.PortToward(0, 1)
	p12, _ := topo.PortToward(1, 2)
	_ = h0
	return topo, fwd(p01), fwd(p12), fwd(h1.Port)
}

func TestEndToEndDelivery(t *testing.T) {
	topo, t0, t1, t2 := lineTopo()
	n := NewNet(topo, map[int]Table{0: t0, 1: t1, 2: t2}, nil)
	id := n.Inject(0, Packet{Src: 0, Dst: 1})
	n.Drain()
	if !n.DeliveredTo(id, 1) {
		t.Fatalf("packet not delivered: delivered=%v dropped=%v", n.Delivered(), n.Dropped())
	}
	trace := n.TraceOf(id)
	if len(trace) != 3 {
		t.Fatalf("trace length = %d, want 3 (one obs per switch): %v", len(trace), trace)
	}
	for i, sw := range []int{0, 1, 2} {
		if trace[i].Sw != sw {
			t.Fatalf("trace[%d].Sw = %d, want %d", i, trace[i].Sw, sw)
		}
	}
}

func TestDropWithoutRule(t *testing.T) {
	topo, t0, _, t2 := lineTopo()
	n := NewNet(topo, map[int]Table{0: t0, 2: t2}, nil) // sw1 has no table
	id := n.Inject(0, Packet{Src: 0, Dst: 1})
	n.Drain()
	if n.DeliveredTo(id, 1) {
		t.Fatal("packet should have been dropped at sw1")
	}
	if len(n.Dropped()) != 1 {
		t.Fatalf("dropped = %v", n.Dropped())
	}
}

func TestUpdateCommandChangesForwarding(t *testing.T) {
	topo, t0, t1, t2 := lineTopo()
	n := NewNet(topo, map[int]Table{0: t0, 2: t2}, []Command{Update(1, t1)})
	id1 := n.Inject(0, Packet{Src: 0, Dst: 1})
	n.Drain() // dropped at sw1
	n.Run()   // executes the update
	id2 := n.Inject(0, Packet{Src: 0, Dst: 1})
	n.Drain()
	if n.DeliveredTo(id1, 1) {
		t.Fatal("pre-update packet should have been dropped")
	}
	if !n.DeliveredTo(id2, 1) {
		t.Fatal("post-update packet should be delivered")
	}
}

func TestFlushBlocksUntilDrained(t *testing.T) {
	topo, t0, t1, t2 := lineTopo()
	n := NewNet(topo, map[int]Table{0: t0, 1: t1, 2: t2},
		append(Wait(), Update(1, Table{})))
	n.Inject(0, Packet{Src: 0, Dst: 1})
	// incr executes; flush must block while the packet is in flight.
	if !n.StepCommand() {
		t.Fatal("incr should fire")
	}
	if n.StepCommand() {
		t.Fatal("flush should block while a stale-epoch packet is in flight")
	}
	n.Drain()
	if !n.StepCommand() {
		t.Fatal("flush should fire once drained")
	}
	if !n.StepCommand() {
		t.Fatal("update should fire")
	}
	if n.PendingCommands() != 0 {
		t.Fatalf("pending = %d", n.PendingCommands())
	}
}

func TestEpochStamping(t *testing.T) {
	topo, t0, t1, t2 := lineTopo()
	n := NewNet(topo, map[int]Table{0: t0, 1: t1, 2: t2}, Wait())
	n.Inject(0, Packet{Src: 0, Dst: 1})
	if got := n.minEpoch(); got != 0 {
		t.Fatalf("minEpoch = %d, want 0", got)
	}
	n.StepCommand() // incr
	if n.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", n.Epoch())
	}
	n.Inject(0, Packet{Src: 0, Dst: 1})
	if got := n.minEpoch(); got != 0 {
		t.Fatalf("minEpoch = %d, want 0 (stale packet in flight)", got)
	}
	n.Drain()
	if got := n.minEpoch(); got != 1 {
		t.Fatalf("minEpoch after drain = %d, want 1 (epoch floor)", got)
	}
}

// TestCarefulSequenceSingleConfig checks the essence of Lemma 7: under a
// careful command sequence (updates separated by waits), every packet's
// trace is a trace of one of the static configurations, never a mixture.
func TestCarefulSequenceSingleConfig(t *testing.T) {
	// Diamond: h0 - sw0 - {sw1 | sw2} - sw3 - h1. Initial via sw1, final
	// via sw2. Careful sequence: update sw2's next hop first is not needed
	// (sw2 static); update sw0 to point at sw2, with waits around it.
	topo := topology.New("diamond", 4)
	p01, _ := topo.AddLink(0, 1)
	p02, _ := topo.AddLink(0, 2)
	_, p13 := topo.AddLink(1, 3)
	_, p23 := topo.AddLink(2, 3)
	topo.AddHost(0, 0)
	h1 := topo.AddHost(1, 3)
	_ = p13
	_ = p23
	fwd := func(pt topology.Port) Table {
		return Table{{Priority: 1, Match: AnyPacket(), Actions: []Action{Forward(pt)}}}
	}
	pt13, _ := topo.PortToward(1, 3)
	pt23, _ := topo.PortToward(2, 3)
	init := map[int]Table{0: fwd(p01), 1: fwd(pt13), 2: fwd(pt23), 3: fwd(h1.Port)}
	var cmds []Command
	cmds = append(cmds, Wait()...)
	cmds = append(cmds, Update(0, fwd(p02)))
	cmds = append(cmds, Wait()...)

	for seed := int64(0); seed < 30; seed++ {
		n := NewNet(topo, init, cmds)
		r := rand.New(rand.NewSource(seed))
		injected := 0
		n.RunRandom(r, func(step int) bool {
			if step%3 == 0 && injected < 10 {
				n.Inject(0, Packet{Src: 0, Dst: 1})
				injected++
			}
			return injected < 10
		})
		n.Drain()
		for id := 0; id < injected; id++ {
			trace := n.TraceOf(id)
			if len(trace) == 0 {
				continue
			}
			var mids []int
			for _, o := range trace {
				if o.Sw == 1 || o.Sw == 2 {
					mids = append(mids, o.Sw)
				}
			}
			if len(mids) != 1 {
				t.Fatalf("seed %d: packet %d saw a mixed configuration: trace %v", seed, id, trace)
			}
			if !n.DeliveredTo(id, 1) {
				t.Fatalf("seed %d: packet %d lost under careful update", seed, id)
			}
		}
	}
}

func TestRunRandomCompletesCommands(t *testing.T) {
	topo, t0, t1, t2 := lineTopo()
	var cmds []Command
	cmds = append(cmds, Update(1, Table{}))
	cmds = append(cmds, Wait()...)
	cmds = append(cmds, Update(1, t1))
	n := NewNet(topo, map[int]Table{0: t0, 1: t1, 2: t2}, cmds)
	n.RunRandom(rand.New(rand.NewSource(1)), nil)
	if n.PendingCommands() != 0 {
		t.Fatalf("commands left: %d", n.PendingCommands())
	}
	if !n.TableOf(1).Equal(t1) {
		t.Fatal("final table not installed")
	}
}

func TestCommandString(t *testing.T) {
	if Update(3, nil).String() != "update(sw3)" {
		t.Fatal("Update string")
	}
	w := Wait()
	if w[0].String() != "incr" || w[1].String() != "flush" {
		t.Fatal("Wait strings")
	}
}

func TestLocString(t *testing.T) {
	if HostLoc(2).String() != "h2" {
		t.Fatal("host loc")
	}
	if SwLoc(1, 3).String() != "(sw1,pt3)" {
		t.Fatal("switch loc")
	}
}
