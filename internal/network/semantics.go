package network

import (
	"fmt"
	"math/rand"
)

// This file implements the small-step rules of Figure 3. Each rule is a
// method that fires the transition if enabled and reports whether it
// fired. Run and RunRandom drive the machine with deterministic or
// randomized schedulers; both respect the rules' enabling conditions, so
// every execution they produce is a valid run of the paper's semantics.

// Inject fires the IN rule: a packet enters the network from host h,
// stamped with the current epoch. It returns the packet id used in
// observations and deliveries.
func (n *Net) Inject(h int, pkt Packet) int {
	l, ok := n.outLink[HostLoc(h)]
	if !ok {
		panic(fmt.Sprintf("network: host %d has no ingress link", h))
	}
	id := n.nextID
	n.nextID++
	l.queue = append(l.queue, annot{pkt: pkt, ep: n.epoch, id: id})
	return id
}

// stepOut fires the OUT rule on link l if its head packet is arriving at a
// host.
func (n *Net) stepOut(l *linkState) bool {
	if !l.to.AtHost || len(l.queue) == 0 {
		return false
	}
	a := l.queue[0]
	l.queue = l.queue[1:]
	n.delivered = append(n.delivered, Delivery{Host: l.to.Host, Pkt: a.pkt, ID: a.id})
	return true
}

// stepProcess fires the PROCESS rule on link l if its head packet is
// arriving at a switch: the packet is removed from the link, the table is
// applied, and the outputs are buffered on the switch. An observation is
// recorded; a packet with no matching rule is dropped.
func (n *Net) stepProcess(l *linkState) bool {
	if l.to.AtHost || len(l.queue) == 0 {
		return false
	}
	a := l.queue[0]
	l.queue = l.queue[1:]
	sw := n.switches[l.to.Sw]
	n.log = append(n.log, Obs{Sw: sw.id, Pt: l.to.Pt, Pkt: a.pkt, ID: a.id})
	outs := sw.table.Apply(a.pkt, l.to.Pt)
	if len(outs) == 0 {
		n.dropped = append(n.dropped, Delivery{Host: -1, Pkt: a.pkt, ID: a.id})
		return true
	}
	for _, o := range outs {
		sw.buf = append(sw.buf, bufEntry{pkt: annot{pkt: o.Pkt, ep: a.ep, id: a.id}, out: o.Port})
	}
	return true
}

// stepForward fires the FORWARD rule on switch sw if it has a buffered
// packet whose output port leads to a link.
func (n *Net) stepForward(sw *swState) bool {
	if len(sw.buf) == 0 {
		return false
	}
	e := sw.buf[0]
	sw.buf = sw.buf[1:]
	l, ok := n.outLink[SwLoc(sw.id, e.out)]
	if !ok {
		// Forwarding out a dangling port loses the packet; record as drop.
		n.dropped = append(n.dropped, Delivery{Host: -1, Pkt: e.pkt.pkt, ID: e.pkt.id})
		return true
	}
	l.queue = append(l.queue, e.pkt)
	return true
}

// minEpoch returns the smallest epoch annotation on any packet in the
// network (the paper's ep(S1..Sk, L1..Lm)), or current epoch if empty.
func (n *Net) minEpoch() int {
	min := n.epoch
	for _, s := range n.switches {
		for _, e := range s.buf {
			if e.pkt.ep < min {
				min = e.pkt.ep
			}
		}
	}
	for _, l := range n.links {
		for _, a := range l.queue {
			if a.ep < min {
				min = a.ep
			}
		}
	}
	return min
}

// StepCommand executes the next controller command if enabled (UPDATE and
// INCR are always enabled; FLUSH is enabled only when every packet in the
// network carries the current epoch). It reports whether a command ran.
func (n *Net) StepCommand() bool {
	if len(n.cmds) == 0 {
		return false
	}
	c := n.cmds[0]
	switch c.Kind {
	case CmdUpdate:
		n.switches[c.Switch].table = c.Table.Clone()
	case CmdIncr:
		n.epoch++
	case CmdFlush:
		if n.minEpoch() < n.epoch {
			return false // blocked until in-flight packets drain
		}
	}
	n.cmds = n.cmds[1:]
	return true
}

// Quiescent reports whether no data-plane transition is enabled: all link
// queues and switch buffers are empty.
func (n *Net) Quiescent() bool {
	for _, s := range n.switches {
		if len(s.buf) > 0 {
			return false
		}
	}
	for _, l := range n.links {
		if len(l.queue) > 0 {
			return false
		}
	}
	return true
}

// StepData fires one enabled data-plane transition in a fixed scan order,
// reporting whether anything fired.
func (n *Net) StepData() bool {
	for _, l := range n.links {
		if l.to.AtHost {
			if n.stepOut(l) {
				return true
			}
		} else if n.stepProcess(l) {
			return true
		}
	}
	for _, s := range n.switches {
		if n.stepForward(s) {
			return true
		}
	}
	return false
}

// Drain runs data-plane transitions until quiescence.
func (n *Net) Drain() {
	for n.StepData() {
	}
}

// Run executes the whole command list, draining the data plane whenever
// the controller blocks (so FLUSH always eventually fires) and once more
// at the end. It is the deterministic scheduler used by integration tests.
func (n *Net) Run() {
	for len(n.cmds) > 0 {
		if !n.StepCommand() {
			if !n.StepData() {
				// Flush is blocked but nothing can move: impossible under
				// failure-freedom; guard against scheduler bugs.
				panic("network: deadlock — flush blocked on an empty network")
			}
		}
	}
	n.Drain()
}

// RunRandom executes commands and data-plane transitions under a random
// interleaving driven by r, injecting packets via inject (which is called
// between steps and may return false to stop injecting). This explores the
// concurrency the synthesis algorithm must be correct under.
func (n *Net) RunRandom(r *rand.Rand, inject func(step int) bool) {
	injecting := true
	for step := 0; ; step++ {
		if injecting && inject != nil {
			injecting = inject(step)
		}
		type choice func() bool
		var choices []choice
		if len(n.cmds) > 0 {
			choices = append(choices, n.StepCommand)
		}
		for _, l := range n.links {
			if len(l.queue) == 0 {
				continue
			}
			l := l
			if l.to.AtHost {
				choices = append(choices, func() bool { return n.stepOut(l) })
			} else {
				choices = append(choices, func() bool { return n.stepProcess(l) })
			}
		}
		for _, s := range n.switches {
			if len(s.buf) == 0 {
				continue
			}
			s := s
			choices = append(choices, func() bool { return n.stepForward(s) })
		}
		if len(choices) == 0 {
			if !injecting || inject == nil {
				return
			}
			continue
		}
		// Shuffle and fire the first enabled choice (flush may be blocked).
		r.Shuffle(len(choices), func(i, j int) { choices[i], choices[j] = choices[j], choices[i] })
		fired := false
		for _, c := range choices {
			if c() {
				fired = true
				break
			}
		}
		if !fired && (!injecting || inject == nil) && n.Quiescent() && len(n.cmds) == 0 {
			return
		}
	}
}

// TraceOf returns the single-packet trace of packet id as the sequence of
// (sw, pt) observations, in order. The final OUT/drop is not part of the
// observation sequence.
func (n *Net) TraceOf(id int) []Obs {
	var out []Obs
	for _, o := range n.log {
		if o.ID == id {
			out = append(out, o)
		}
	}
	return out
}

// DeliveredTo reports whether packet id was delivered to host h.
func (n *Net) DeliveredTo(id, h int) bool {
	for _, d := range n.delivered {
		if d.ID == id && d.Host == h {
			return true
		}
	}
	return false
}
