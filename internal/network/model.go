package network

import (
	"fmt"

	"netupdate/internal/topology"
)

// CommandKind discriminates controller commands.
type CommandKind uint8

// Controller commands (Section 3.1). Wait is the derived command
// incr;flush and is expanded by NewController.
const (
	CmdUpdate CommandKind = iota
	CmdIncr
	CmdFlush
)

// Command is a control-plane command: a switch-granularity table
// replacement, an epoch increment, or a flush barrier.
type Command struct {
	Kind   CommandKind
	Switch int   // for CmdUpdate
	Table  Table // for CmdUpdate
}

// Update returns the command (sw, tbl).
func Update(sw int, tbl Table) Command {
	return Command{Kind: CmdUpdate, Switch: sw, Table: tbl}
}

// Wait returns the two commands incr;flush that make up the derived wait
// command.
func Wait() []Command {
	return []Command{{Kind: CmdIncr}, {Kind: CmdFlush}}
}

func (c Command) String() string {
	switch c.Kind {
	case CmdUpdate:
		return fmt.Sprintf("update(sw%d)", c.Switch)
	case CmdIncr:
		return "incr"
	case CmdFlush:
		return "flush"
	}
	return "?"
}

// Loc is a packet location: either a host or a switch-port pair.
type Loc struct {
	AtHost bool
	Host   int
	Sw     int
	Pt     topology.Port
}

// HostLoc returns the location of host h.
func HostLoc(h int) Loc { return Loc{AtHost: true, Host: h} }

// SwLoc returns the location (sw, pt).
func SwLoc(sw int, pt topology.Port) Loc { return Loc{Sw: sw, Pt: pt} }

func (l Loc) String() string {
	if l.AtHost {
		return fmt.Sprintf("h%d", l.Host)
	}
	return fmt.Sprintf("(sw%d,pt%d)", l.Sw, l.Pt)
}

// annot is a packet annotated with its ingress epoch and a unique id used
// to reconstruct single-packet traces.
type annot struct {
	pkt Packet
	ep  int
	id  int
}

// bufEntry is a processed packet buffered on a switch awaiting FORWARD.
type bufEntry struct {
	pkt annot
	out topology.Port
}

// swState is the runtime state of one switch (the paper's S element).
type swState struct {
	id    int
	table Table
	buf   []bufEntry // the prs multiset
}

// linkState is one direction of a link (the paper's L element).
type linkState struct {
	from, to Loc
	queue    []annot
}

// Obs is an observation (sw, pt, pkt) emitted by a PROCESS transition,
// tagged with the packet id so that per-packet traces can be extracted.
type Obs struct {
	Sw  int
	Pt  topology.Port
	Pkt Packet
	ID  int
}

// Delivery records a packet leaving the network at a host (OUT).
type Delivery struct {
	Host int
	Pkt  Packet
	ID   int
}

// Net is the runtime network state: switches, directed link queues, and
// the controller. It implements the small-step rules of Figure 3.
type Net struct {
	topo     *topology.Topology
	switches []*swState
	links    []*linkState
	outLink  map[Loc]*linkState // outgoing link keyed by source location
	cmds     []Command
	epoch    int
	nextID   int

	log       []Obs
	delivered []Delivery
	dropped   []Delivery // packets dropped at a switch (no matching rule)
}

// NewNet builds a runtime network over the topology with the given initial
// per-switch tables (tables may be nil, meaning drop-everything). The
// command list is executed by StepCommand / Run.
func NewNet(topo *topology.Topology, tables map[int]Table, cmds []Command) *Net {
	n := &Net{topo: topo, cmds: append([]Command(nil), cmds...), outLink: map[Loc]*linkState{}}
	for sw := 0; sw < topo.NumSwitches(); sw++ {
		n.switches = append(n.switches, &swState{id: sw, table: tables[sw].Clone()})
	}
	addDir := func(from, to Loc) {
		l := &linkState{from: from, to: to}
		n.links = append(n.links, l)
		n.outLink[from] = l
	}
	for sw := 0; sw < topo.NumSwitches(); sw++ {
		for _, l := range topo.Neighbors(sw) {
			// Each undirected link appears in both adjacency lists; add the
			// direction leaving sw only.
			addDir(SwLoc(sw, l.LocalPort), SwLoc(l.Peer, l.PeerPort))
		}
	}
	for _, h := range topo.Hosts() {
		addDir(HostLoc(h.ID), SwLoc(h.Switch, h.Port))
		addDir(SwLoc(h.Switch, h.Port), HostLoc(h.ID))
	}
	return n
}

// Epoch returns the controller's current epoch.
func (n *Net) Epoch() int { return n.epoch }

// TableOf returns the current table installed on sw.
func (n *Net) TableOf(sw int) Table { return n.switches[sw].table }

// Log returns the observation log so far.
func (n *Net) Log() []Obs { return n.log }

// Delivered returns the packets that have exited at hosts.
func (n *Net) Delivered() []Delivery { return n.delivered }

// Dropped returns the packets dropped by switches with no matching rule.
func (n *Net) Dropped() []Delivery { return n.dropped }

// PendingCommands returns the number of unexecuted controller commands.
func (n *Net) PendingCommands() int { return len(n.cmds) }
