package kripke

import (
	"fmt"

	"netupdate/internal/config"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// Arena is the class-independent part of the Kripke state space: the
// state set, its index, the initial states, and the per-switch arrival
// groups. All of it is fixed by the topology alone (Definition 9's state
// set does not mention the configuration or the traffic class) and is
// immutable after NewArena, so one arena can back every class of every
// tenant that shares the topology — Clone already relied on exactly this
// immutability to share the same four structures across search workers.
type Arena struct {
	topo     *topology.Topology
	states   []State
	index    map[State]int
	init     []int
	statesOf map[int][]int
}

// NewArena enumerates the state space of topo once: one arrival state
// per (switch, port), one egress state per host-facing port, initial
// states at the host-adjacent arrivals.
func NewArena(topo *topology.Topology) *Arena {
	est := 0
	for sw := 0; sw < topo.NumSwitches(); sw++ {
		est += len(topo.Ports(sw)) + len(topo.HostsOn(sw))
	}
	a := &Arena{
		topo:     topo,
		states:   make([]State, 0, est),
		index:    make(map[State]int, est),
		statesOf: make(map[int][]int, topo.NumSwitches()),
	}
	addState := func(s State) int {
		if id, ok := a.index[s]; ok {
			return id
		}
		id := len(a.states)
		a.states = append(a.states, s)
		a.index[s] = id
		if s.Kind == Arrival {
			a.statesOf[s.Sw] = append(a.statesOf[s.Sw], id)
		}
		return id
	}
	for sw := 0; sw < topo.NumSwitches(); sw++ {
		a.statesOf[sw] = make([]int, 0, len(topo.Ports(sw)))
		for _, pt := range topo.Ports(sw) {
			addState(State{Kind: Arrival, Sw: sw, Pt: pt})
		}
		for _, h := range topo.HostsOn(sw) {
			addState(State{Kind: Egress, Sw: sw, Pt: h.Port})
		}
	}
	for _, h := range topo.Hosts() {
		a.init = append(a.init, a.index[State{Kind: Arrival, Sw: h.Switch, Pt: h.Port}])
	}
	return a
}

// Topology returns the topology the arena was built over.
func (a *Arena) Topology() *topology.Topology { return a.topo }

// NumStates returns the size of the shared state set.
func (a *Arena) NumStates() int { return len(a.states) }

// newK returns a class structure sharing the arena's immutable parts.
// The transition arrays are left nil: Build sizes empty ones to fill by
// table application, Restore adopts decoded ones wholesale.
func (a *Arena) newK(cl config.Class) *K {
	return &K{
		Class:    cl,
		Topo:     a.topo,
		states:   a.states,
		index:    a.index,
		init:     a.init,
		statesOf: a.statesOf,
		tables:   make([]network.Table, a.topo.NumSwitches()),
	}
}

// Build constructs the Kripke structure of class cl under cfg over the
// shared state space. It returns *ErrLoop if the configuration forwards
// the class in a cycle.
func (a *Arena) Build(cfg *config.Config, cl config.Class) (*K, error) {
	k := a.newK(cl)
	n := len(a.states)
	k.succ = make([][]int, n)
	k.pred = make([][]int, n)
	for sw := 0; sw < a.topo.NumSwitches(); sw++ {
		k.tables[sw] = cfg.Table(sw)
		if err := k.recomputeSwitch(sw); err != nil {
			return nil, err
		}
	}
	if cyc := k.findCycle(nil); cyc != nil {
		return nil, &ErrLoop{Class: cl, Cycle: k.statesFor(cyc), IDs: cyc}
	}
	return k, nil
}

// Restore constructs the class structure of cl directly from recorded
// successor lists, skipping table application and the global cycle
// check: the lists were captured from a structure that was built (and
// therefore cycle-checked) against the same configuration, and arrive
// under a snapshot checksum, so only structural sanity is validated
// here. succ must have one entry per arena state; it is adopted, not
// copied. Predecessor lists are not derived — K.ensurePred materializes
// them from the successor lists on first use (the incremental checker's
// first Update), off the restore critical path.
func (a *Arena) Restore(cfg *config.Config, cl config.Class, succ [][]int) (*K, error) {
	n := len(a.states)
	if len(succ) != n {
		return nil, fmt.Errorf("kripke: restore: %d successor lists for %d states", len(succ), n)
	}
	k := a.newK(cl)
	for sw := 0; sw < a.topo.NumSwitches(); sw++ {
		k.tables[sw] = cfg.Table(sw)
	}
	for id, next := range succ {
		for _, t := range next {
			if t < 0 || t >= n {
				return nil, fmt.Errorf("kripke: restore: successor %d of state %d out of range", t, id)
			}
		}
	}
	k.succ = succ
	return k, nil
}
