// Package kripke builds the network Kripke structures of Section 3.3
// (Definition 9): for one traffic class, states are switch-port locations
// the class packet can occupy, transitions follow the forwarding tables,
// and sinks (egress and drop states) carry implicit self-loops. The state
// set is fixed by the topology — only the transition relation changes when
// a switch is updated — which is exactly the update model (K, K', U) that
// the incremental model checker of Section 5 requires.
package kripke

import (
	"fmt"

	"netupdate/internal/config"
	"netupdate/internal/ltl"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// StateKind distinguishes packet-arrival states from egress states.
type StateKind uint8

// State kinds. An Arrival state (sw, pt) is a packet being processed by
// switch sw having arrived on port pt; an Egress state (sw, pt) is a
// packet on the host-facing link out of port pt (Definition 9's fourth
// case), which is a sink.
const (
	Arrival StateKind = iota
	Egress
)

// State identifies a Kripke state.
type State struct {
	Kind StateKind
	Sw   int
	Pt   topology.Port
}

func (s State) String() string {
	k := "arr"
	if s.Kind == Egress {
		k = "egr"
	}
	return fmt.Sprintf("%s(sw%d,pt%d)", k, s.Sw, s.Pt)
}

// ErrLoop is returned when a configuration induces a forwarding loop for
// the class; the states on the cycle are reported for counterexample
// learning. IDs carries the same cycle as state ids in the structure that
// produced the error, so hot-path consumers (the synthesis engine's
// counterexample learning) can extract switches through K.AppendSwitches
// without re-resolving states.
type ErrLoop struct {
	Class config.Class
	Cycle []State
	IDs   []int
}

func (e *ErrLoop) Error() string {
	return fmt.Sprintf("kripke: forwarding loop for class %v through %v", e.Class, e.Cycle)
}

// K is the Kripke structure of one traffic class under a mutable
// configuration. States never change; UpdateSwitch changes only the
// outgoing transitions of the updated switch's arrival states.
type K struct {
	Class config.Class
	Topo  *topology.Topology

	states []State
	index  map[State]int
	init   []int
	// succ[i] lists successors of state i. nil means sink (implicit
	// self-loop), matching the complete DAG-like structures of Section 5.
	succ [][]int
	pred [][]int
	// statesOf[sw] lists the arrival-state ids of switch sw.
	statesOf map[int][]int
	// tables holds the current forwarding table of each switch, indexed
	// by the dense switch id.
	tables []network.Table
	// outBuf is recomputeSwitch's reusable table-application buffer;
	// private per structure (clones start fresh).
	outBuf []network.PortPacket
	// oldBuf is UpdateSwitch's reusable pre-update successor snapshot;
	// only genuinely changed entries graduate into the returned Delta.
	oldBuf [][]int
	// rootBuf is Rebind's reusable cycle-check root buffer.
	rootBuf []int
}

// Build constructs the Kripke structure of class cl under cfg over a
// private arena. It returns *ErrLoop if the configuration forwards the
// class in a cycle. Callers building many classes (or many tenants) over
// one topology should build the Arena once and share it.
func Build(topo *topology.Topology, cfg *config.Config, cl config.Class) (*K, error) {
	return NewArena(topo).Build(cfg, cl)
}

// Clone returns an independent copy of the structure sharing all immutable
// parts (states, indexes, initial states) with the original. Successor
// lists are replaced wholesale by UpdateSwitch/Revert and never mutated in
// place, so only the outer slice is copied; predecessor lists are edited
// in place and are copied deeply. The clone can be updated and reverted
// concurrently with the original, which is what gives each parallel
// search worker a private structure with no locking on the hot path.
func (k *K) Clone() *K {
	c := &K{
		Class:    k.Class,
		Topo:     k.Topo,
		states:   k.states,
		index:    k.index,
		init:     k.init,
		statesOf: k.statesOf,
	}
	c.succ = append([][]int(nil), k.succ...)
	if k.pred != nil {
		c.pred = make([][]int, len(k.pred))
		for i, p := range k.pred {
			c.pred[i] = append([]int(nil), p...)
		}
	}
	c.tables = append([]network.Table(nil), k.tables...)
	return c
}

// ensurePred materializes the predecessor lists from the successor lists
// on first use. A restored structure (Arena.Restore) starts without them:
// they are read only by the incremental checker's ancestor walk and by
// setSucc's rewiring, so a session resumed just to serve cache hits (or
// snapshotted again untouched) never pays for the derivation. Every pred
// list is carved out of one flat backing array with a capped subslice, so
// a later rewiring append reallocates that state's list instead of
// clobbering its neighbor; filling in ascending state-id order reproduces
// Build's insertion order exactly, so a lazily derived structure is
// indistinguishable from a freshly built one.
func (k *K) ensurePred() {
	if k.pred != nil {
		return
	}
	n := len(k.states)
	deg := make([]int, n)
	total := 0
	for _, next := range k.succ {
		for _, t := range next {
			deg[t]++
		}
		total += len(next)
	}
	k.pred = make([][]int, n)
	flat := make([]int, 0, total)
	off := 0
	for t := 0; t < n; t++ {
		k.pred[t] = flat[off : off : off+deg[t]]
		off += deg[t]
	}
	for id, next := range k.succ {
		for _, t := range next {
			k.pred[t] = append(k.pred[t], id)
		}
	}
}

// recomputeSwitch rewires the outgoing transitions of sw's arrival states
// from its current table, updating predecessor lists. It returns an error
// if a rule would modify the class packet (packet modification is outside
// the checked fragment, per Section 3.3).
func (k *K) recomputeSwitch(sw int) error {
	pkt := k.Class.Packet()
	tbl := k.tables[sw]
	for _, id := range k.statesOf[sw] {
		st := k.states[id]
		var next []int
		outs := tbl.AppendApply(k.outBuf[:0], pkt, st.Pt)
		k.outBuf = outs[:0]
		for _, o := range outs {
			if o.Pkt != pkt {
				return fmt.Errorf("kripke: class %v: rule on sw%d modifies packet headers", k.Class, sw)
			}
			if h, ok := k.Topo.HostAtPort(sw, o.Port); ok {
				// Egress: any host-facing output port delivers; only the
				// class destination is "correct", but the structure must
				// reflect actual behavior either way.
				_ = h
				next = append(next, k.index[State{Kind: Egress, Sw: sw, Pt: o.Port}])
				continue
			}
			if l, ok := k.Topo.LinkAt(sw, o.Port); ok {
				next = append(next, k.index[State{Kind: Arrival, Sw: l.Peer, Pt: l.PeerPort}])
				continue
			}
			// Dangling port: the packet is lost; treat as drop (no edge).
		}
		k.setSucc(id, next)
	}
	return nil
}

// setSucc replaces the successor list of state id, maintaining pred.
func (k *K) setSucc(id int, next []int) {
	k.ensurePred()
	for _, t := range k.succ[id] {
		k.pred[t] = removeOne(k.pred[t], id)
	}
	k.succ[id] = next
	for _, t := range next {
		k.pred[t] = append(k.pred[t], id)
	}
}

func removeOne(xs []int, v int) []int {
	for i, x := range xs {
		if x == v {
			xs[i] = xs[len(xs)-1]
			return xs[:len(xs)-1]
		}
	}
	return xs
}

// Delta describes an applied update: the states whose outgoing transitions
// changed, with enough information to revert and to re-apply. The state
// ids and the old/new successor lists are parallel slices, so consumers
// iterate the changed region without allocating and in a deterministic
// order (the switch's arrival-state order). Only states whose successor
// list genuinely changed are recorded: a table replacement that leaves the
// class's forwarding intact yields an empty delta, which checkers and the
// synthesis engine use as a skip-this-class fast path.
type Delta struct {
	Switch   int
	oldTable network.Table
	newTable network.Table
	ids      []int   // ids of states whose successors changed
	oldSucc  [][]int // successor lists before the update
	newSucc  [][]int // successor lists after the update (nil on error paths)
}

// OldTable returns the table that was installed on the switch before the
// update (used by rule-level backends to compute rule diffs).
func (d *Delta) OldTable() network.Table { return d.oldTable }

// Changed returns the ids of states whose transition function changed.
// The slice is shared and must not be mutated.
func (d *Delta) Changed() []int { return d.ids }

// UpdateSwitch installs tbl on sw, rewiring transitions. It returns the
// delta for incremental re-checking and reverting. If the new structure
// contains a cycle (forwarding loop), the update is applied and an
// *ErrLoop is returned alongside the delta: callers treat the
// configuration as wrong, learn from the cycle, and revert.
func (k *K) UpdateSwitch(sw int, tbl network.Table) (*Delta, error) {
	ids := k.statesOf[sw]
	d := &Delta{Switch: sw, oldTable: k.tables[sw], newTable: tbl}
	// Snapshot the pre-update successor lists into reusable scratch.
	// Successor slices are replaced wholesale and never mutated in place,
	// so holding the old headers is safe; only the headers of genuinely
	// changed states graduate into the delta below.
	old := k.oldBuf[:0]
	for _, id := range ids {
		old = append(old, k.succ[id])
	}
	k.oldBuf = old
	k.tables[sw] = tbl
	if err := k.recomputeSwitch(sw); err != nil {
		// Restore and fail; modification errors are programming errors.
		k.tables[sw] = d.oldTable
		for i, id := range ids {
			k.setSucc(id, old[i])
		}
		return nil, err
	}
	for i, id := range ids {
		if intsEqual(old[i], k.succ[id]) {
			continue
		}
		d.ids = append(d.ids, id)
		d.oldSucc = append(d.oldSucc, old[i])
		d.newSucc = append(d.newSucc, k.succ[id])
	}
	// A new cycle must pass through a rewired state; an empty delta cannot
	// have introduced one.
	if len(d.ids) > 0 {
		if cyc := k.findCycle(d.ids); cyc != nil {
			return d, &ErrLoop{Class: k.Class, Cycle: k.statesFor(cyc), IDs: cyc}
		}
	}
	return d, nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Rebind rewires the structure in place so it reflects cfg, recomputing
// only the switches whose installed tables differ — the state space,
// index, and initial states are fixed by the topology and survive
// untouched, which is what lets a long-lived session reuse one arena
// across a whole stream of syntheses. changed lists the switches whose
// transition function for this class actually changed, so label-based
// checkers can skip relabeling entirely when the class is unaffected;
// touched lists every switch whose table was replaced (a superset —
// checkers tracking raw tables, like the header-space backend, must be
// refreshed whenever it is non-empty). If cfg forwards the class in a
// cycle, the structure has still been fully rebound to cfg (tables stay
// consistent for a later Rebind) and *ErrLoop is returned. Outstanding
// Deltas, undo tokens, and clones taken before a Rebind must not be
// replayed afterwards.
func (k *K) Rebind(cfg *config.Config) (changed, touched []int, err error) {
	return k.rebind(cfg, nil, true)
}

// RebindSwitches is Rebind restricted to the given candidate switches:
// only their tables are compared and recomputed (an empty list — nil or
// not — rebinds nothing). The caller must guarantee that every switch
// outside the candidate list already has cfg's table installed in this
// structure — sessions know exactly which switches a synthesis run (or a
// target diff) could have touched, and skipping the full O(switches)
// equality sweep per class is what keeps per-synthesis resync cost
// proportional to the diff, not the network.
func (k *K) RebindSwitches(cfg *config.Config, switches []int) (changed, touched []int, err error) {
	return k.rebind(cfg, switches, false)
}

// rebind implements Rebind over either every switch (sweepAll) or the
// listed candidates; the explicit flag keeps a nil candidate slice from
// silently meaning "sweep everything".
func (k *K) rebind(cfg *config.Config, candidates []int, sweepAll bool) (changed, touched []int, err error) {
	roots := k.rootBuf[:0]
	sweep := func(sw int) error {
		tbl := cfg.Table(sw)
		if k.tables[sw].Equal(tbl) {
			return nil
		}
		touched = append(touched, sw)
		ids := k.statesOf[sw]
		old := k.oldBuf[:0]
		for _, id := range ids {
			old = append(old, k.succ[id])
		}
		k.oldBuf = old
		k.tables[sw] = tbl
		if rerr := k.recomputeSwitch(sw); rerr != nil {
			return rerr
		}
		for i, id := range ids {
			if !intsEqual(old[i], k.succ[id]) {
				changed = append(changed, sw)
				roots = append(roots, ids...)
				break
			}
		}
		return nil
	}
	if sweepAll {
		for sw := 0; sw < k.Topo.NumSwitches(); sw++ {
			if rerr := sweep(sw); rerr != nil {
				k.rootBuf = roots[:0]
				return changed, touched, rerr
			}
		}
	} else {
		for _, sw := range candidates {
			if rerr := sweep(sw); rerr != nil {
				k.rootBuf = roots[:0]
				return changed, touched, rerr
			}
		}
	}
	k.rootBuf = roots[:0]
	if len(roots) > 0 {
		if cyc := k.findCycle(roots); cyc != nil {
			return changed, touched, &ErrLoop{Class: k.Class, Cycle: k.statesFor(cyc), IDs: cyc}
		}
	}
	return changed, touched, nil
}

// AdoptTable installs tbl as sw's table without recomputing transitions.
// The caller must guarantee the class's forwarding behavior at sw is
// identical under the old and the new table — e.g. no rule added or
// removed by the change matches the class packet (table application is
// priority-set semantics, so such a change cannot alter any output) —
// which leaves the transition relation, and every checker labeling over
// it, untouched and valid. Sessions use this to resync foreign switches
// of a diff in O(1) per switch instead of paying a full recompute for
// every class the change cannot affect.
func (k *K) AdoptTable(sw int, tbl network.Table) { k.tables[sw] = tbl }

// Revert undoes an update returned by UpdateSwitch.
func (k *K) Revert(d *Delta) {
	k.tables[d.Switch] = d.oldTable
	for i, id := range d.ids {
		k.setSucc(id, d.oldSucc[i])
	}
}

// Reapply re-installs a previously applied-and-reverted delta without
// recomputing the forwarding semantics or allocating: the recorded
// successor lists are swapped back in wholesale. The delta must have been
// produced by UpdateSwitch on this structure (or a clone at the same
// table state) and the structure must currently be at the delta's
// pre-update state. Benchmarks use it to measure steady-state checker
// cycles in isolation.
func (k *K) Reapply(d *Delta) {
	k.tables[d.Switch] = d.newTable
	for i, id := range d.ids {
		k.setSucc(id, d.newSucc[i])
	}
}

// findCycle looks for a cycle. With from == nil it scans the whole
// structure; otherwise it only looks for cycles reachable from (and
// hence, for fresh updates, passing through) the given states — in that
// mode the work and memory are proportional to the part of the structure
// actually reachable from the update, which keeps per-update costs
// sublinear (the property the incremental checker depends on). It
// returns the state ids on the cycle, or nil.
func (k *K) findCycle(from []int) []int {
	const (
		gray  = 1
		black = 2
	)
	var colorArr []uint8
	var colorMap map[int]uint8
	if from == nil {
		colorArr = make([]uint8, len(k.states))
	} else {
		colorMap = make(map[int]uint8, 4*len(from))
	}
	colorOf := func(v int) uint8 {
		if colorArr != nil {
			return colorArr[v]
		}
		return colorMap[v]
	}
	setColor := func(v int, c uint8) {
		if colorArr != nil {
			colorArr[v] = c
		} else {
			colorMap[v] = c
		}
	}
	parent := map[int]int{}
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		setColor(v, gray)
		for _, u := range k.succ[v] {
			switch colorOf(u) {
			case 0:
				parent[u] = v
				if dfs(u) {
					return true
				}
			case gray:
				// Found a cycle u ... v -> u.
				cycle = append(cycle, u)
				for w := v; w != u; w = parent[w] {
					cycle = append(cycle, w)
				}
				return true
			}
		}
		setColor(v, black)
		return false
	}
	roots := from
	if roots == nil {
		roots = make([]int, len(k.states))
		for i := range roots {
			roots[i] = i
		}
	}
	for _, v := range roots {
		if colorOf(v) == 0 {
			parent[v] = v
			if dfs(v) {
				return cycle
			}
		}
	}
	return nil
}

// AppendSwitches appends to dst the distinct switches of the given state
// ids in first-appearance order, deduplicating against everything already
// in dst. It is the shared counterexample-switch extraction of the
// synthesis engine (violating traces and forwarding-loop cycles both
// arrive as state ids): it allocates only when dst must grow, so callers
// pool the buffer across the search's failed checks. Counterexamples are
// short, so the dedup is a linear scan rather than a map.
func (k *K) AppendSwitches(dst []int, ids []int) []int {
outer:
	for _, id := range ids {
		sw := k.states[id].Sw
		for _, seen := range dst {
			if seen == sw {
				continue outer
			}
		}
		dst = append(dst, sw)
	}
	return dst
}

func (k *K) statesFor(ids []int) []State {
	out := make([]State, len(ids))
	for i, id := range ids {
		out[i] = k.states[id]
	}
	return out
}

// NumStates returns the number of states.
func (k *K) NumStates() int { return len(k.states) }

// StateAt returns the state with the given id.
func (k *K) StateAt(id int) State { return k.states[id] }

// Init returns the initial state ids.
func (k *K) Init() []int { return k.init }

// Succ returns the successors of state id; empty means sink (implicit
// self-loop).
func (k *K) Succ(id int) []int { return k.succ[id] }

// Pred returns the predecessors of state id, deriving the lists from the
// successor lists on first use after a restore (see ensurePred).
func (k *K) Pred(id int) []int {
	if k.pred == nil {
		k.ensurePred()
	}
	return k.pred[id]
}

// IsSink reports whether state id is a sink (self-loop only).
func (k *K) IsSink(id int) bool { return len(k.succ[id]) == 0 }

// StatesOf returns the arrival-state ids of switch sw.
func (k *K) StatesOf(sw int) []int { return k.statesOf[sw] }

// Table returns the table currently installed on sw in this structure.
func (k *K) Table(sw int) network.Table { return k.tables[sw] }

// HoldsAt evaluates an atomic proposition at state id: sw=n and pt=n test
// the state's location; header-field propositions test the class packet.
func (k *K) HoldsAt(id int, p ltl.Prop) bool {
	st := k.states[id]
	switch p.Field {
	case ltl.FieldSwitch:
		return st.Sw == p.Value
	case ltl.FieldPort:
		return int(st.Pt) == p.Value
	default:
		if f, ok := network.FieldByName(p.Field); ok {
			return k.Class.Packet().Field(f) == p.Value
		}
		return false
	}
}

// Env returns an ltl.Env evaluating propositions at state id.
func (k *K) Env(id int) ltl.Env {
	return ltl.EnvFunc(func(p ltl.Prop) bool { return k.HoldsAt(id, p) })
}

// Traces enumerates every trace from the given state as switch/port state
// sequences, up to the first sink (which repeats implicitly). It is
// exponential and intended for tests and counterexample printing on small
// structures; maxTraces bounds the enumeration.
func (k *K) Traces(from int, maxTraces int) [][]int {
	var out [][]int
	var path []int
	var walk func(v int)
	walk = func(v int) {
		if len(out) >= maxTraces {
			return
		}
		path = append(path, v)
		defer func() { path = path[:len(path)-1] }()
		if k.IsSink(v) {
			out = append(out, append([]int(nil), path...))
			return
		}
		for _, u := range k.succ[v] {
			walk(u)
		}
	}
	walk(from)
	return out
}
