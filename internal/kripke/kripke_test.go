package kripke

import (
	"errors"
	"math/rand"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/ltl"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// lineScene: h100 - sw0 - sw1 - sw2 - h101, class routed along the line.
func lineScene() (*topology.Topology, *config.Config, config.Class) {
	topo := topology.New("line", 3)
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddHost(100, 0)
	topo.AddHost(101, 2)
	cl := config.Class{SrcHost: 100, DstHost: 101}
	cfg := config.New()
	if err := config.InstallPath(cfg, topo, cl, []int{0, 1, 2}, 10); err != nil {
		panic(err)
	}
	return topo, cfg, cl
}

func TestBuildStructure(t *testing.T) {
	topo, cfg, cl := lineScene()
	k, err := Build(topo, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	// States: sw0 has ports {1(link),2(host)} => 2 arrival; sw1 ports
	// {1,2} => 2; sw2 ports {1,2(host)} => 2; plus 2 egress states.
	if k.NumStates() != 8 {
		t.Fatalf("states = %d, want 8", k.NumStates())
	}
	if len(k.Init()) != 2 {
		t.Fatalf("init = %v, want 2 host ingress states", k.Init())
	}
	// Walk the forwarding chain from the source ingress state.
	src, _ := topo.HostByID(100)
	q := k.index[State{Kind: Arrival, Sw: src.Switch, Pt: src.Port}]
	var seq []State
	for !k.IsSink(q) {
		if n := len(k.Succ(q)); n != 1 {
			t.Fatalf("state %v has %d successors", k.StateAt(q), n)
		}
		q = k.Succ(q)[0]
		seq = append(seq, k.StateAt(q))
	}
	last := k.StateAt(q)
	if last.Kind != Egress || last.Sw != 2 {
		t.Fatalf("chain ends at %v, want egress at sw2", last)
	}
	if len(seq) != 3 { // sw1 arrival, sw2 arrival, egress
		t.Fatalf("chain = %v", seq)
	}
}

func TestDropStateIsSink(t *testing.T) {
	topo, cfg, cl := lineScene()
	cfg.SetTable(1, nil) // sw1 drops
	k, err := Build(topo, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := topo.HostByID(100)
	q := k.index[State{Kind: Arrival, Sw: src.Switch, Pt: src.Port}]
	q = k.Succ(q)[0] // sw1 arrival
	if !k.IsSink(q) || k.StateAt(q).Sw != 1 {
		t.Fatalf("drop state should be a sink at sw1, got %v", k.StateAt(q))
	}
}

func TestBuildRejectsLoop(t *testing.T) {
	topo := topology.New("tri", 3)
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddLink(2, 0)
	topo.AddHost(100, 0)
	topo.AddHost(101, 2)
	cl := config.Class{SrcHost: 100, DstHost: 101}
	cfg := config.New()
	for _, hop := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		pt, _ := topo.PortToward(hop[0], hop[1])
		cfg.AddRule(hop[0], network.Rule{
			Priority: 10, Match: cl.Pattern(),
			Actions: []network.Action{network.Forward(pt)},
		})
	}
	_, err := Build(topo, cfg, cl)
	var loop *ErrLoop
	if !errors.As(err, &loop) {
		t.Fatalf("err = %v, want ErrLoop", err)
	}
	if len(loop.Cycle) == 0 {
		t.Fatal("loop error should carry the cycle")
	}
}

func TestBuildRejectsModification(t *testing.T) {
	topo, cfg, cl := lineScene()
	tbl := cfg.Table(1).Clone()
	tbl[0].Actions = append([]network.Action{network.SetField(network.FieldTyp, 9)}, tbl[0].Actions...)
	cfg.SetTable(1, tbl)
	if _, err := Build(topo, cfg, cl); err == nil {
		t.Fatal("expected modification error")
	}
}

func TestUpdateSwitchAndRevert(t *testing.T) {
	topo, cfg, cl := lineScene()
	k, err := Build(topo, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotSuccs(k)
	delta, err := k.UpdateSwitch(1, nil) // sw1 now drops
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Changed()) != len(k.StatesOf(1)) {
		t.Fatalf("changed = %v", delta.Changed())
	}
	src, _ := topo.HostByID(100)
	q := k.index[State{Kind: Arrival, Sw: src.Switch, Pt: src.Port}]
	q = k.Succ(q)[0]
	if !k.IsSink(q) {
		t.Fatal("sw1 should drop after update")
	}
	k.Revert(delta)
	if !succsEqual(before, snapshotSuccs(k)) {
		t.Fatal("revert did not restore transitions")
	}
}

// TestReapply checks that a reverted delta can be re-installed wholesale:
// Reapply must reproduce exactly the post-update transitions (succ and
// pred) without recomputing the forwarding semantics.
func TestReapply(t *testing.T) {
	topo, cfg, cl := lineScene()
	k, err := Build(topo, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotSuccs(k)
	delta, err := k.UpdateSwitch(1, nil) // sw1 now drops
	if err != nil {
		t.Fatal(err)
	}
	after := snapshotSuccs(k)
	for cycle := 0; cycle < 3; cycle++ {
		k.Revert(delta)
		if !succsEqual(before, snapshotSuccs(k)) {
			t.Fatalf("cycle %d: revert did not restore transitions", cycle)
		}
		k.Reapply(delta)
		if !succsEqual(after, snapshotSuccs(k)) {
			t.Fatalf("cycle %d: reapply did not reproduce the update", cycle)
		}
		// pred must stay consistent with succ throughout.
		for id := 0; id < k.NumStates(); id++ {
			for _, s := range k.Succ(id) {
				found := false
				for _, p := range k.Pred(s) {
					if p == id {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("cycle %d: pred[%d] missing %d", cycle, s, id)
				}
			}
		}
	}
	if k.Table(1) != nil {
		t.Fatalf("reapply did not install the new table")
	}
	k.Revert(delta)
}

func TestUpdateDetectsLoop(t *testing.T) {
	topo, cfg, cl := lineScene()
	k, err := Build(topo, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	// Point sw1 back at sw0: sw0 forwards to sw1, sw1 forwards to sw0.
	p10, _ := topo.PortToward(1, 0)
	tbl := network.Table{{
		Priority: 10, Match: cl.Pattern(),
		Actions: []network.Action{network.Forward(p10)},
	}}
	delta, err := k.UpdateSwitch(1, tbl)
	var loop *ErrLoop
	if !errors.As(err, &loop) {
		t.Fatalf("err = %v, want ErrLoop", err)
	}
	k.Revert(delta)
	if _, err := k.UpdateSwitch(1, k.Table(1)); err != nil {
		t.Fatalf("revert left structure broken: %v", err)
	}
}

func TestHoldsAt(t *testing.T) {
	topo, cfg, cl := lineScene()
	k, err := Build(topo, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := topo.HostByID(100)
	q := k.index[State{Kind: Arrival, Sw: src.Switch, Pt: src.Port}]
	if !k.HoldsAt(q, ltl.Prop{Field: ltl.FieldSwitch, Value: 0}) {
		t.Error("sw=0 should hold at ingress")
	}
	if k.HoldsAt(q, ltl.Prop{Field: ltl.FieldSwitch, Value: 1}) {
		t.Error("sw=1 should not hold at ingress")
	}
	if !k.HoldsAt(q, ltl.Prop{Field: ltl.FieldPort, Value: int(src.Port)}) {
		t.Error("pt should hold at ingress")
	}
	if !k.HoldsAt(q, ltl.Prop{Field: "src", Value: 100}) {
		t.Error("class src field should hold")
	}
	if !k.HoldsAt(q, ltl.Prop{Field: "dst", Value: 101}) {
		t.Error("class dst field should hold")
	}
	if k.HoldsAt(q, ltl.Prop{Field: "bogus", Value: 1}) {
		t.Error("unknown fields are false")
	}
}

func TestTracesEnumeration(t *testing.T) {
	topo, cfg, cl := lineScene()
	k, err := Build(topo, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := topo.HostByID(100)
	q := k.index[State{Kind: Arrival, Sw: src.Switch, Pt: src.Port}]
	traces := k.Traces(q, 10)
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1 (deterministic line)", len(traces))
	}
	if len(traces[0]) != 4 {
		t.Fatalf("trace = %v, want length 4", traces[0])
	}
}

func TestPredConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	topo := topology.WAN("w", 8, 3)
	topo.AddHost(100, 0)
	topo.AddHost(101, 5)
	cl := config.Class{SrcHost: 100, DstHost: 101}
	cfg := config.New()
	k, err := Build(topo, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	var deltas []*Delta
	for step := 0; step < 40; step++ {
		sw := r.Intn(8)
		var tbl network.Table
		if r.Intn(2) == 0 {
			ports := topo.Ports(sw)
			tbl = network.Table{{
				Priority: 10, Match: cl.Pattern(),
				Actions: []network.Action{network.Forward(ports[r.Intn(len(ports))])},
			}}
		}
		d, err := k.UpdateSwitch(sw, tbl)
		if err != nil {
			k.Revert(d)
			continue
		}
		deltas = append(deltas, d)
		checkPredInvariant(t, k)
		if len(deltas) > 2 && r.Intn(3) == 0 {
			last := deltas[len(deltas)-1]
			deltas = deltas[:len(deltas)-1]
			k.Revert(last)
			checkPredInvariant(t, k)
		}
	}
}

func checkPredInvariant(t *testing.T, k *K) {
	t.Helper()
	// pred must be exactly the inverse of succ.
	count := map[[2]int]int{}
	for v := 0; v < k.NumStates(); v++ {
		for _, u := range k.Succ(v) {
			count[[2]int{v, u}]++
		}
	}
	for u := 0; u < k.NumStates(); u++ {
		for _, v := range k.Pred(u) {
			count[[2]int{v, u}]--
		}
	}
	for e, c := range count {
		if c != 0 {
			t.Fatalf("pred/succ mismatch on edge %v: %d", e, c)
		}
	}
}

func snapshotSuccs(k *K) [][]int {
	out := make([][]int, k.NumStates())
	for i := range out {
		out[i] = append([]int(nil), k.Succ(i)...)
	}
	return out
}

func succsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestEmptyDelta: replacing a table with a behaviorally identical one (or
// one whose differences do not touch this class) must yield an empty
// delta, the signal the synthesis engine uses to skip the checker.
func TestEmptyDelta(t *testing.T) {
	topo, cfg, cl := lineScene()
	k, err := Build(topo, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	// Same forwarding plus an unrelated rule for another flow: the class's
	// transitions are unchanged.
	tbl := cfg.Table(1).Clone()
	tbl = append(tbl, network.Rule{
		Priority: 5, Match: network.MatchFlow(200, 201),
		Actions: []network.Action{network.Forward(topo.Ports(1)[0])},
	})
	d, err := k.UpdateSwitch(1, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Changed()) != 0 {
		t.Fatalf("changed = %v, want empty delta", d.Changed())
	}
	if !k.Table(1).Equal(tbl) {
		t.Fatal("table must still be installed on an empty delta")
	}
	k.Revert(d)
	if !k.Table(1).Equal(cfg.Table(1)) {
		t.Fatal("revert must restore the old table")
	}
	checkPredInvariant(t, k)
}

// TestRebind: rebinding in place to another configuration must produce
// exactly the transitions a fresh Build of that configuration produces,
// report only the switches whose class forwarding changed, and keep the
// state arena (ids, init states) intact.
func TestRebind(t *testing.T) {
	topo := topology.New("diamond", 4)
	topo.AddLink(0, 1)
	topo.AddLink(0, 2)
	topo.AddLink(1, 3)
	topo.AddLink(2, 3)
	topo.AddHost(100, 0)
	topo.AddHost(101, 3)
	cl := config.Class{SrcHost: 100, DstHost: 101}
	up := config.New()
	if err := config.InstallPath(up, topo, cl, []int{0, 1, 3}, 10); err != nil {
		t.Fatal(err)
	}
	down := config.New()
	if err := config.InstallPath(down, topo, cl, []int{0, 2, 3}, 10); err != nil {
		t.Fatal(err)
	}
	k, err := Build(topo, up, cl)
	if err != nil {
		t.Fatal(err)
	}
	initBefore := append([]int(nil), k.Init()...)
	changed, touched, err := k.Rebind(down)
	if err != nil {
		t.Fatal(err)
	}
	// sw0 redirects, sw1 loses its rule, sw2 gains one; sw3 forwards to
	// the host in both configurations (identical table: not even visited).
	want := map[int]bool{0: true, 1: true, 2: true}
	for _, sw := range changed {
		if !want[sw] {
			t.Fatalf("unexpected changed switch %d (changed=%v)", sw, changed)
		}
		delete(want, sw)
	}
	if len(want) != 0 {
		t.Fatalf("switches not reported as changed: %v (changed=%v)", want, changed)
	}
	// Every table replacement (here: the same three switches) is reported
	// as touched, the signal table-tracking checkers rebind on.
	if len(touched) != 3 {
		t.Fatalf("touched = %v, want the three differing switches", touched)
	}
	fresh, err := Build(topo, down, cl)
	if err != nil {
		t.Fatal(err)
	}
	if !succsEqual(snapshotSuccs(k), snapshotSuccs(fresh)) {
		t.Fatal("rebound transitions differ from a fresh build")
	}
	checkPredInvariant(t, k)
	if !intsEqual(initBefore, k.Init()) {
		t.Fatal("rebind must not disturb initial states")
	}
	// Rebinding to the configuration already installed is a no-op.
	changed, touched, err = k.Rebind(down)
	if err != nil || len(changed) != 0 || len(touched) != 0 {
		t.Fatalf("idempotent rebind: changed=%v touched=%v err=%v", changed, touched, err)
	}
	// And back again: the structure keeps tracking the target.
	if _, _, err := k.Rebind(up); err != nil {
		t.Fatal(err)
	}
	freshUp, err := Build(topo, up, cl)
	if err != nil {
		t.Fatal(err)
	}
	if !succsEqual(snapshotSuccs(k), snapshotSuccs(freshUp)) {
		t.Fatal("second rebind diverged from a fresh build")
	}
}

// TestRebindDetectsLoop: a target configuration that forwards the class
// in a cycle is reported, and the structure stays consistently bound to
// that configuration so the session can rebind elsewhere afterwards.
func TestRebindDetectsLoop(t *testing.T) {
	topo := topology.New("tri", 3)
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddLink(2, 0)
	topo.AddHost(100, 0)
	topo.AddHost(101, 2)
	cl := config.Class{SrcHost: 100, DstHost: 101}
	good := config.New()
	if err := config.InstallPath(good, topo, cl, []int{0, 1, 2}, 10); err != nil {
		t.Fatal(err)
	}
	bad := config.New()
	for _, hop := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		pt, _ := topo.PortToward(hop[0], hop[1])
		bad.AddRule(hop[0], network.Rule{
			Priority: 10, Match: cl.Pattern(),
			Actions: []network.Action{network.Forward(pt)},
		})
	}
	k, err := Build(topo, good, cl)
	if err != nil {
		t.Fatal(err)
	}
	var loop *ErrLoop
	if _, _, err := k.Rebind(bad); !errors.As(err, &loop) {
		t.Fatalf("err = %v, want ErrLoop", err)
	}
	// Recovery: rebind back to the loop-free configuration.
	if _, _, err := k.Rebind(good); err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(topo, good, cl)
	if err != nil {
		t.Fatal(err)
	}
	if !succsEqual(snapshotSuccs(k), snapshotSuccs(fresh)) {
		t.Fatal("structure did not recover after a loop rebind")
	}
}

// TestAppendSwitches: the shared counterexample-switch extraction must
// deduplicate switches in first-appearance order, honor entries already
// present in dst, and reuse the caller's buffer without allocating when
// capacity suffices.
func TestAppendSwitches(t *testing.T) {
	topo, cfg, cl := lineScene()
	k, err := Build(topo, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	// Collect one arrival state per switch, plus duplicates.
	var ids []int
	for _, sw := range []int{1, 1, 0, 2, 0, 1} {
		ids = append(ids, k.StatesOf(sw)[0])
	}
	got := k.AppendSwitches(nil, ids)
	want := []int{1, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("AppendSwitches = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendSwitches = %v, want %v", got, want)
		}
	}
	// Entries already in dst are deduplicated against too.
	pre := k.AppendSwitches([]int{1}, ids)
	if len(pre) != 3 || pre[0] != 1 || pre[1] != 0 || pre[2] != 2 {
		t.Fatalf("AppendSwitches with seeded dst = %v, want [1 0 2]", pre)
	}
	// A pooled buffer with enough capacity is reused, not reallocated.
	buf := make([]int, 0, 8)
	out := k.AppendSwitches(buf, ids)
	if &out[:1][0] != &buf[:1][0] {
		t.Fatal("AppendSwitches reallocated despite sufficient capacity")
	}
	// ErrLoop carries ids consistent with its states, so the loop path of
	// the engine can use the same helper.
	bad := cfg.Clone()
	bad.SetTable(1, network.Table{{
		Priority: 99, Match: cl.Pattern(),
		Actions: []network.Action{network.Forward(mustPortToward(t, topo, 1, 0))},
	}})
	bad.SetTable(0, network.Table{
		{Priority: 99, Match: cl.Pattern(),
			Actions: []network.Action{network.Forward(mustPortToward(t, topo, 0, 1))}},
	})
	_, err = Build(topo, bad, cl)
	var loop *ErrLoop
	if !errors.As(err, &loop) {
		t.Fatalf("err = %v, want *ErrLoop", err)
	}
	if len(loop.IDs) != len(loop.Cycle) {
		t.Fatalf("loop IDs/Cycle length mismatch: %d vs %d", len(loop.IDs), len(loop.Cycle))
	}
	k2, err := Build(topo, cfg, cl) // any structure over the same topology
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range loop.IDs {
		if k2.StateAt(id) != loop.Cycle[i] {
			t.Fatalf("loop id %d resolves to %v, want %v", id, k2.StateAt(id), loop.Cycle[i])
		}
	}
	sws := k2.AppendSwitches(nil, loop.IDs)
	if len(sws) != 2 {
		t.Fatalf("loop switches = %v, want the two looping switches", sws)
	}
}

func mustPortToward(t *testing.T, topo *topology.Topology, from, to int) topology.Port {
	t.Helper()
	p, ok := topo.PortToward(from, to)
	if !ok {
		t.Fatalf("no port from sw%d toward sw%d", from, to)
	}
	return p
}
