package hsa

import (
	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
	"netupdate/internal/mc"
	"netupdate/internal/network"
)

// Checker adapts the plumbing-graph engine to the synthesis backend
// interface. Like NetPlumber, it maintains reachability bookkeeping
// incrementally across rule insertions/removals but reports only pass or
// fail — no counterexamples — so the synthesizer cannot learn wrong-
// configuration patterns from it (Section 6 notes the same limitation).
type Checker struct {
	k     *kripke.K
	p     *Plumber
	spec  *ltl.Formula
	stats mc.Stats
}

// New builds the checker over the class structure's current tables.
func New(k *kripke.K, spec *ltl.Formula) (mc.Checker, error) {
	return &Checker{k: k, p: plumberFor(k), spec: spec}, nil
}

// plumberFor builds a plumbing graph over the tables currently installed
// in the class structure.
func plumberFor(k *kripke.K) *Plumber {
	tables := map[int]network.Table{}
	for sw := 0; sw < k.Topo.NumSwitches(); sw++ {
		if tbl := k.Table(sw); len(tbl) > 0 {
			tables[sw] = tbl
		}
	}
	return NewPlumber(k.Topo, tables, FromPacket(k.Class.Packet()))
}

// Rebind implements mc.Rebindable by rebuilding the plumbing graph from
// the structure's current tables: the header-space engine's bookkeeping
// is incremental over individual rule operations and cannot absorb an
// arbitrary in-place rebind any cheaper than a rebuild (the same path
// CloneFor takes).
func (c *Checker) Rebind() { c.p = plumberFor(c.k) }

// Name implements mc.Checker.
func (c *Checker) Name() string { return "netplumber-like" }

// Check implements mc.Checker: every maximal flow path must satisfy the
// specification, and no flow may loop.
func (c *Checker) Check() mc.Verdict {
	c.stats.Checks++
	if c.p.HasLoop() {
		return mc.Verdict{OK: false}
	}
	for _, t := range c.p.Terminals() {
		c.stats.StatesLabeled += len(t.Switches)
		if !c.pathSatisfies(t) {
			return mc.Verdict{OK: false}
		}
	}
	return mc.Verdict{OK: true}
}

// pathSatisfies evaluates the spec over one flow path using the standard
// finite-trace semantics (final state repeats).
func (c *Checker) pathSatisfies(t PathTerminal) bool {
	env := make([]ltl.Env, len(t.Switches))
	pkt := c.k.Class.Packet()
	for i := range t.Switches {
		sw, pt := t.Switches[i], t.InPorts[i]
		env[i] = ltl.EnvFunc(func(p ltl.Prop) bool {
			switch p.Field {
			case ltl.FieldSwitch:
				return sw == p.Value
			case ltl.FieldPort:
				return int(pt) == p.Value
			default:
				if f, ok := network.FieldByName(p.Field); ok {
					return pkt.Field(f) == p.Value
				}
				return false
			}
		})
	}
	return c.spec.EvalTrace(env)
}

// hsaToken records the rule operations applied by one Update, for Revert.
type hsaToken struct {
	sw      int
	added   []network.Rule
	removed []network.Rule
}

// Update implements mc.Checker: translate the switch update into rule
// insertions/removals (NetPlumber's native operations) and re-check.
func (c *Checker) Update(delta *kripke.Delta) (mc.Verdict, mc.Token) {
	oldT := delta.OldTable()
	newT := c.k.Table(delta.Switch)
	removed, added := diffRules(oldT, newT)
	for _, r := range removed {
		c.p.RemoveRule(delta.Switch, r)
	}
	for _, r := range added {
		c.p.AddRule(delta.Switch, r)
	}
	return c.Check(), &hsaToken{sw: delta.Switch, added: added, removed: removed}
}

// Revert implements mc.Checker by applying the inverse rule operations.
func (c *Checker) Revert(t mc.Token) {
	tok := t.(*hsaToken)
	for _, r := range tok.added {
		c.p.RemoveRule(tok.sw, r)
	}
	for _, r := range tok.removed {
		c.p.AddRule(tok.sw, r)
	}
}

// Stats implements mc.Checker.
func (c *Checker) Stats() mc.Stats { return c.stats }

// CloneFor implements mc.Cloneable via the cheap-rebuild path: the plumbing
// graph's internal bookkeeping (pipes, flow trees) is heavily aliased, so
// instead of a deep copy the clone rebuilds a fresh Plumber from k2's
// current tables — New reads whatever tables are installed, so this is
// valid at any point of the search, not just the initial configuration.
func (c *Checker) CloneFor(k2 *kripke.K) (mc.Checker, error) {
	return New(k2, c.spec)
}

// diffRules returns the rules present in a but not b, and in b but not a
// (multiset semantics).
func diffRules(a, b network.Table) (onlyA, onlyB []network.Rule) {
	used := make([]bool, len(b))
outer:
	for _, ra := range a {
		for i, rb := range b {
			if !used[i] && rulesEqual(ra, rb) {
				used[i] = true
				continue outer
			}
		}
		onlyA = append(onlyA, ra)
	}
	for i, rb := range b {
		if !used[i] {
			onlyB = append(onlyB, rb)
		}
	}
	return
}

var (
	_ mc.Checker    = (*Checker)(nil)
	_ mc.Cloneable  = (*Checker)(nil)
	_ mc.Rebindable = (*Checker)(nil)
)
