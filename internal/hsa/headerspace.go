// Package hsa implements header-space analysis in the style of NetPlumber
// [Kazemian et al., NSDI 2013]: packet headers as ternary wildcard
// vectors, a plumbing graph of rule nodes connected by pipes, and
// incremental flow propagation on rule insertion and removal. It is the
// repository's stand-in for NetPlumber as a synthesis backend: an
// incremental checker that keeps per-flow reachability bookkeeping but
// reports no counterexamples (see DESIGN.md, Substitutions).
package hsa

import (
	"fmt"
	"strings"

	"netupdate/internal/network"
)

// Width is the number of header bits modeled: three 16-bit fields
// (src, dst, typ).
const Width = 48

const fieldBits = 16

// fieldMask covers one 16-bit field at the given offset.
func fieldShift(f network.FieldID) uint {
	return uint(f) * fieldBits
}

// Vec is a ternary header vector: for bit i, ones and zeros record
// whether the bit may be 1 and may be 0 respectively. Both set means
// wildcard; exactly one set means a fixed bit; neither set makes the
// vector empty.
type Vec struct {
	Ones, Zeros uint64
}

// fullMask has the low Width bits set.
const fullMask = (uint64(1) << Width) - 1

// Any is the all-wildcard vector.
func Any() Vec { return Vec{Ones: fullMask, Zeros: fullMask} }

// FromPacket returns the singleton vector matching exactly pkt.
func FromPacket(p network.Packet) Vec {
	v := Vec{}
	for _, f := range []network.FieldID{network.FieldSrc, network.FieldDst, network.FieldTyp} {
		val := uint64(uint16(p.Field(f)))
		sh := fieldShift(f)
		v.Ones |= val << sh
		v.Zeros |= (^val & (uint64(1)<<fieldBits - 1)) << sh
	}
	return v
}

// FromPattern returns the vector matching a rule pattern's header fields
// (the in-port constraint is handled at the plumbing-graph level).
func FromPattern(pat network.Pattern) Vec {
	v := Any()
	set := func(f network.FieldID, val int) {
		if val == network.Wildcard {
			return
		}
		sh := fieldShift(f)
		mask := (uint64(1)<<fieldBits - 1) << sh
		bits := uint64(uint16(val)) << sh
		v.Ones = v.Ones&^mask | bits
		v.Zeros = v.Zeros&^mask | (^bits & mask)
	}
	set(network.FieldSrc, pat.Src)
	set(network.FieldDst, pat.Dst)
	set(network.FieldTyp, pat.Typ)
	return v
}

// IsEmpty reports whether the vector matches no header.
func (v Vec) IsEmpty() bool {
	return (v.Ones|v.Zeros)&fullMask != fullMask
}

// Intersect returns the headers matched by both vectors.
func (v Vec) Intersect(w Vec) Vec {
	return Vec{Ones: v.Ones & w.Ones, Zeros: v.Zeros & w.Zeros}
}

// Contains reports whether every header in w is also in v.
func (v Vec) Contains(w Vec) bool {
	if w.IsEmpty() {
		return true
	}
	return v.Ones|w.Ones == v.Ones && v.Zeros|w.Zeros == v.Zeros
}

// Equal reports header-set equality of two non-empty vectors.
func (v Vec) Equal(w Vec) bool {
	if v.IsEmpty() || w.IsEmpty() {
		return v.IsEmpty() == w.IsEmpty()
	}
	return v.Ones == w.Ones && v.Zeros == w.Zeros
}

// Subtract returns v minus w as a union of disjoint vectors: for each
// fixed bit of w, the headers of v that differ there.
func (v Vec) Subtract(w Vec) Space {
	if v.IsEmpty() {
		return nil
	}
	if v.Intersect(w).IsEmpty() {
		return Space{v}
	}
	var out Space
	remaining := v
	for i := 0; i < Width; i++ {
		bit := uint64(1) << uint(i)
		wOne, wZero := w.Ones&bit != 0, w.Zeros&bit != 0
		if wOne && wZero {
			continue // wildcard in w: no split on this bit
		}
		// w fixes this bit; the part of remaining with the opposite value
		// escapes the subtraction.
		var escape Vec
		if wOne {
			escape = Vec{Ones: remaining.Ones &^ bit, Zeros: remaining.Zeros}
		} else {
			escape = Vec{Ones: remaining.Ones, Zeros: remaining.Zeros &^ bit}
		}
		if !escape.IsEmpty() {
			out = append(out, escape)
		}
		// Continue with the part that agrees with w on this bit.
		if wOne {
			remaining.Zeros &^= bit
		} else {
			remaining.Ones &^= bit
		}
		if remaining.IsEmpty() {
			break
		}
	}
	return out
}

func (v Vec) String() string {
	if v.IsEmpty() {
		return "<empty>"
	}
	var b strings.Builder
	for i := Width - 1; i >= 0; i-- {
		bit := uint64(1) << uint(i)
		one, zero := v.Ones&bit != 0, v.Zeros&bit != 0
		switch {
		case one && zero:
			b.WriteByte('x')
		case one:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Space is a union of ternary vectors (a header space).
type Space []Vec

// SpaceFrom builds a space from vectors, dropping empties.
func SpaceFrom(vs ...Vec) Space {
	var out Space
	for _, v := range vs {
		if !v.IsEmpty() {
			out = append(out, v)
		}
	}
	return out
}

// IsEmpty reports whether the space matches no header.
func (s Space) IsEmpty() bool {
	for _, v := range s {
		if !v.IsEmpty() {
			return false
		}
	}
	return true
}

// Intersect returns the space matched by both s and vector w.
func (s Space) Intersect(w Vec) Space {
	var out Space
	for _, v := range s {
		if iv := v.Intersect(w); !iv.IsEmpty() {
			out = append(out, iv)
		}
	}
	return out
}

// Subtract returns s minus vector w.
func (s Space) Subtract(w Vec) Space {
	var out Space
	for _, v := range s {
		out = append(out, v.Subtract(w)...)
	}
	return out
}

// SubtractSpace returns s minus every vector of t.
func (s Space) SubtractSpace(t Space) Space {
	out := s
	for _, w := range t {
		out = out.Subtract(w)
		if out.IsEmpty() {
			return nil
		}
	}
	return out
}

// Covers reports whether s matches every header that vector w matches.
func (s Space) Covers(w Vec) bool {
	return Space{w}.SubtractSpace(s).IsEmpty()
}

func (s Space) String() string {
	if len(s) == 0 {
		return "<empty>"
	}
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = v.String()
	}
	return strings.Join(parts, " + ")
}

var _ = fmt.Sprintf
