package hsa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netupdate/internal/config"
	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
	"netupdate/internal/mc"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

func randVec(r *rand.Rand) Vec {
	v := Vec{}
	for i := 0; i < Width; i++ {
		bit := uint64(1) << uint(i)
		switch r.Intn(3) {
		case 0:
			v.Ones |= bit
		case 1:
			v.Zeros |= bit
		default:
			v.Ones |= bit
			v.Zeros |= bit
		}
	}
	return v
}

// member reports whether a concrete header (as a bit vector) is in v.
func member(h uint64, v Vec) bool {
	for i := 0; i < Width; i++ {
		bit := uint64(1) << uint(i)
		if h&bit != 0 {
			if v.Ones&bit == 0 {
				return false
			}
		} else if v.Zeros&bit == 0 {
			return false
		}
	}
	return true
}

func memberSpace(h uint64, s Space) bool {
	for _, v := range s {
		if member(h, v) {
			return true
		}
	}
	return false
}

func TestVecAlgebraLaws(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	err := quick.Check(func(seed int64, probe uint64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randVec(rr), randVec(rr)
		h := probe & fullMask
		// Intersection law.
		if member(h, a.Intersect(b)) != (member(h, a) && member(h, b)) {
			return false
		}
		// Subtraction law.
		if memberSpace(h, a.Subtract(b)) != (member(h, a) && !member(h, b)) {
			return false
		}
		// Containment law (spot-check with the probe).
		if a.Contains(b) && member(h, b) && !member(h, a) {
			return false
		}
		_ = r
		return true
	}, &quick.Config{MaxCount: 3000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSubtractCovers(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		a, b, c := randVec(r), randVec(r), randVec(r)
		s := SpaceFrom(a, b)
		h := r.Uint64() & fullMask
		if memberSpace(h, s.Subtract(c)) != (memberSpace(h, s) && !member(h, c)) {
			t.Fatal("space subtract law violated")
		}
		if memberSpace(h, s.SubtractSpace(Space{c})) != (memberSpace(h, s) && !member(h, c)) {
			t.Fatal("SubtractSpace law violated")
		}
	}
}

func TestFromPacketAndPattern(t *testing.T) {
	pkt := network.Packet{Src: 7, Dst: 9, Typ: 0}
	v := FromPacket(pkt)
	if v.IsEmpty() {
		t.Fatal("packet vector empty")
	}
	pat := network.MatchFlow(7, 9)
	pv := FromPattern(pat)
	if !pv.Contains(v) {
		t.Fatal("pattern must contain its packet")
	}
	other := FromPacket(network.Packet{Src: 7, Dst: 10})
	if !pv.Intersect(other).IsEmpty() {
		t.Fatal("pattern must reject other dst")
	}
	if !FromPattern(network.AnyPacket()).Contains(other) {
		t.Fatal("wildcard pattern contains everything")
	}
}

func TestVecString(t *testing.T) {
	if Any().String()[0] != 'x' {
		t.Fatal("Any should render as wildcards")
	}
	if (Vec{}).String() != "<empty>" {
		t.Fatal("empty vec string")
	}
}

// buildScene mirrors the random scene used in mc tests.
func buildScene(r *rand.Rand) (*topology.Topology, *config.Config, config.Class, *kripke.K) {
	for {
		n := 4 + r.Intn(6)
		topo := topology.WAN("t", n, r.Int63())
		topo.AddHost(100, r.Intn(n))
		topo.AddHost(101, r.Intn(n))
		cl := config.Class{SrcHost: 100, DstHost: 101}
		cfg := config.New()
		for sw := 0; sw < n; sw++ {
			if r.Intn(4) == 0 {
				continue
			}
			ports := topo.Ports(sw)
			cfg.AddRule(sw, network.Rule{
				Priority: 10, Match: cl.Pattern(),
				Actions: []network.Action{network.Forward(ports[r.Intn(len(ports))])},
			})
		}
		k, err := kripke.Build(topo, cfg, cl)
		if err != nil {
			continue
		}
		return topo, cfg, cl, k
	}
}

func randomSpec(r *rand.Rand, n int) *ltl.Formula {
	switch r.Intn(3) {
	case 0:
		return ltl.Reachability(r.Intn(n), r.Intn(n))
	case 1:
		return ltl.Waypoint(r.Intn(n), r.Intn(n), r.Intn(n))
	default:
		return ltl.ServiceChain(r.Intn(n), []int{r.Intn(n)}, r.Intn(n))
	}
}

func TestCheckerMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 150; iter++ {
		topo, _, _, k := buildScene(r)
		spec := randomSpec(r, topo.NumSwitches())
		hchk, err := New(k, spec)
		if err != nil {
			t.Fatal(err)
		}
		ichk, err := mc.NewIncremental(k, spec)
		if err != nil {
			t.Fatal(err)
		}
		hv, iv := hchk.Check(), ichk.Check()
		if hv.OK != iv.OK {
			t.Fatalf("iter %d: hsa=%v incremental=%v spec=%v", iter, hv.OK, iv.OK, spec)
		}
	}
}

func TestCheckerUpdateRevertMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for iter := 0; iter < 60; iter++ {
		topo, _, cl, k := buildScene(r)
		spec := randomSpec(r, topo.NumSwitches())
		hchk, err := New(k, spec)
		if err != nil {
			t.Fatal(err)
		}
		type frame struct {
			delta *kripke.Delta
			tok   mc.Token
		}
		var stack []frame
		for step := 0; step < 10; step++ {
			if len(stack) > 0 && r.Intn(3) == 0 {
				fr := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				hchk.Revert(fr.tok)
				k.Revert(fr.delta)
				continue
			}
			sw := r.Intn(topo.NumSwitches())
			var tbl network.Table
			if r.Intn(3) > 0 {
				ports := topo.Ports(sw)
				tbl = network.Table{{
					Priority: 10, Match: cl.Pattern(),
					Actions: []network.Action{network.Forward(ports[r.Intn(len(ports))])},
				}}
			}
			delta, err := k.UpdateSwitch(sw, tbl)
			if err != nil {
				k.Revert(delta)
				continue
			}
			hv, tok := hchk.Update(delta)
			stack = append(stack, frame{delta, tok})
			fresh, err := mc.NewIncremental(k, spec)
			if err != nil {
				t.Fatal(err)
			}
			if fv := fresh.Check(); hv.OK != fv.OK {
				t.Fatalf("iter %d step %d: hsa=%v incremental=%v spec=%v",
					iter, step, hv.OK, fv.OK, spec)
			}
		}
		// Full unwind must restore the original verdict.
		for len(stack) > 0 {
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			hchk.Revert(fr.tok)
			k.Revert(fr.delta)
		}
		fresh, _ := mc.NewIncremental(k, spec)
		if hchk.Check().OK != fresh.Check().OK {
			t.Fatalf("iter %d: revert broke the hsa checker", iter)
		}
	}
}

func TestPlumberTerminalsLineDelivery(t *testing.T) {
	topo := topology.New("line", 3)
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddHost(100, 0)
	topo.AddHost(101, 2)
	cl := config.Class{SrcHost: 100, DstHost: 101}
	cfg := config.New()
	if err := config.InstallPath(cfg, topo, cl, []int{0, 1, 2}, 10); err != nil {
		t.Fatal(err)
	}
	p := NewPlumber(topo, cfg.Tables(), FromPacket(cl.Packet()))
	if p.HasLoop() {
		t.Fatal("line has no loop")
	}
	// Two deliveries: the real src->dst path [0 1 2], and the class header
	// injected at the destination's own host, delivered immediately ([2]).
	var paths [][]int
	for _, term := range p.Terminals() {
		if term.Kind == TerminalDelivered {
			if term.Host != 101 {
				t.Fatalf("delivered to %d, want 101", term.Host)
			}
			paths = append(paths, term.Switches)
		}
	}
	if len(paths) != 2 {
		t.Fatalf("delivered paths = %v, want [0 1 2] and [2]", paths)
	}
	long := paths[0]
	if len(paths[1]) > len(long) {
		long = paths[1]
	}
	if len(long) != 3 || long[0] != 0 || long[2] != 2 {
		t.Fatalf("end-to-end path = %v, want [0 1 2]", long)
	}
}

func TestPlumberRuleOps(t *testing.T) {
	topo := topology.New("line", 2)
	topo.AddLink(0, 1)
	topo.AddHost(100, 0)
	topo.AddHost(101, 1)
	cl := config.Class{SrcHost: 100, DstHost: 101}
	cfg := config.New()
	if err := config.InstallPath(cfg, topo, cl, []int{0, 1}, 10); err != nil {
		t.Fatal(err)
	}
	p := NewPlumber(topo, cfg.Tables(), FromPacket(cl.Packet()))
	// countEndToEnd counts deliveries of flows injected at the source
	// host's switch (path starting at switch 0).
	countEndToEnd := func() int {
		n := 0
		for _, term := range p.Terminals() {
			if term.Kind == TerminalDelivered && term.Host == 101 && term.Switches[0] == 0 {
				n++
			}
		}
		return n
	}
	if countEndToEnd() != 1 {
		t.Fatal("initial delivery missing")
	}
	r0 := cfg.Table(0)[0]
	if !p.RemoveRule(0, r0) {
		t.Fatal("RemoveRule failed")
	}
	if countEndToEnd() != 0 {
		t.Fatal("delivery should stop after removing the ingress rule")
	}
	if p.RemoveRule(0, r0) {
		t.Fatal("double remove should fail")
	}
	p.AddRule(0, r0)
	if countEndToEnd() != 1 {
		t.Fatal("delivery should resume after re-adding the rule")
	}
}

func TestPriorityShadowing(t *testing.T) {
	// A high-priority drop rule (no actions) must shadow the low-priority
	// forwarding rule for the overlapping header space.
	topo := topology.New("line", 2)
	topo.AddLink(0, 1)
	topo.AddHost(100, 0)
	topo.AddHost(101, 1)
	cl := config.Class{SrcHost: 100, DstHost: 101}
	cfg := config.New()
	if err := config.InstallPath(cfg, topo, cl, []int{0, 1}, 10); err != nil {
		t.Fatal(err)
	}
	p := NewPlumber(topo, cfg.Tables(), FromPacket(cl.Packet()))
	drop := network.Rule{Priority: 99, Match: cl.Pattern()}
	p.AddRule(0, drop)
	for _, term := range p.Terminals() {
		if term.Kind == TerminalDelivered && term.Host == 101 && term.Switches[0] == 0 {
			t.Fatal("high-priority drop rule should shadow forwarding")
		}
	}
	p.RemoveRule(0, drop)
	found := false
	for _, term := range p.Terminals() {
		if term.Kind == TerminalDelivered && term.Host == 101 && term.Switches[0] == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("removing the shadow should restore delivery")
	}
}
