package hsa

import (
	"fmt"
	"sort"

	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// Plumber is an incremental flow-propagation engine over one traffic
// class's header space, in the style of NetPlumber's plumbing graph:
// sources inject header space at host ingress ports, rule nodes split
// arriving flows by priority, and pipes carry flows across links. Rule
// insertion or removal retracts and re-propagates only the flows that
// traverse the affected switch.
type Plumber struct {
	topo *topology.Topology

	// rules per switch, sorted by descending priority, then insertion
	// order (matching network.Table.Apply's deterministic tie-break).
	rules map[int][]*ruleNode
	seq   int // insertion sequence for stable sorting

	// roots are the injected flows, one per host.
	roots []*flow
	// arrivals indexes the live flows by the switch they arrive at.
	arrivals map[int]map[*flow]bool

	// RecomputedFlows counts flow expansions, the unit of NetPlumber
	// work, for benchmark reporting.
	RecomputedFlows int64
}

type ruleNode struct {
	rule   network.Rule
	match  Vec
	inPort topology.Port
	outs   []topology.Port
	seq    int
}

// termKind classifies terminal header-space portions at a flow.
type termKind uint8

// flow is one arrival of a header-space vector at a switch: hs arrived at
// (sw, inPort) having traversed the parent chain.
type flow struct {
	hs     Vec
	sw     int
	inPort topology.Port
	parent *flow
	child  []*flow

	// Terminal outcomes for portions of hs at this switch.
	delivered []deliveredRec
	dropped   []Vec
	looped    []Vec
}

type deliveredRec struct {
	host int
	hs   Vec
}

// NewPlumber builds the plumbing graph for the given tables, injecting hs
// at every host ingress.
func NewPlumber(topo *topology.Topology, tables map[int]network.Table, inject Vec) *Plumber {
	p := &Plumber{
		topo:     topo,
		rules:    map[int][]*ruleNode{},
		arrivals: map[int]map[*flow]bool{},
	}
	for sw, tbl := range tables {
		for _, r := range tbl {
			p.insertRuleNode(sw, r)
		}
	}
	for _, h := range topo.Hosts() {
		root := &flow{hs: inject, sw: h.Switch, inPort: h.Port}
		p.roots = append(p.roots, root)
		p.addArrival(root)
		p.expand(root)
	}
	return p
}

func (p *Plumber) insertRuleNode(sw int, r network.Rule) *ruleNode {
	var outs []topology.Port
	for _, a := range r.Actions {
		if a.Kind == network.ActForward {
			outs = append(outs, a.Port)
		}
	}
	n := &ruleNode{rule: r, match: FromPattern(r.Match), inPort: r.Match.InPort, outs: outs, seq: p.seq}
	p.seq++
	p.rules[sw] = append(p.rules[sw], n)
	sort.SliceStable(p.rules[sw], func(i, j int) bool {
		a, b := p.rules[sw][i], p.rules[sw][j]
		if a.rule.Priority != b.rule.Priority {
			return a.rule.Priority > b.rule.Priority
		}
		return a.seq < b.seq
	})
	return n
}

func (p *Plumber) addArrival(f *flow) {
	m := p.arrivals[f.sw]
	if m == nil {
		m = map[*flow]bool{}
		p.arrivals[f.sw] = m
	}
	m[f] = true
}

// retract removes f's descendants (and their index entries) and clears
// f's terminals, leaving f itself ready for re-expansion.
func (p *Plumber) retract(f *flow) {
	for _, c := range f.child {
		p.retractAll(c)
	}
	f.child = nil
	f.delivered = nil
	f.dropped = nil
	f.looped = nil
}

func (p *Plumber) retractAll(f *flow) {
	delete(p.arrivals[f.sw], f)
	for _, c := range f.child {
		p.retractAll(c)
	}
	f.child = nil
}

// onPath reports whether the location (sw, pt) appears on f's arrival
// chain (including f itself). Loop detection is per switch-port location,
// matching the paper's definition of a loop-free trace (all (sw, pt)
// observations distinct); revisiting a switch on a different port is legal.
func onPath(f *flow, sw int, pt topology.Port) bool {
	for g := f; g != nil; g = g.parent {
		if g.sw == sw && g.inPort == pt {
			return true
		}
	}
	return false
}

// expand matches f's header space against the rules of f.sw, producing
// child flows, deliveries, drops, and loop records.
func (p *Plumber) expand(f *flow) {
	p.RecomputedFlows++
	remaining := Space{f.hs}
	for _, rn := range p.rules[f.sw] {
		if remaining.IsEmpty() {
			break
		}
		if rn.inPort != 0 && rn.inPort != f.inPort {
			continue
		}
		take := remaining.Intersect(rn.match)
		remaining = remaining.Subtract(rn.match)
		for _, hs := range take {
			p.emit(f, rn, hs)
		}
	}
	f.dropped = append(f.dropped, remaining...)
}

// emit forwards one matched header-space portion out a rule's ports.
func (p *Plumber) emit(f *flow, rn *ruleNode, hs Vec) {
	if len(rn.outs) == 0 {
		f.dropped = append(f.dropped, hs)
		return
	}
	for _, out := range rn.outs {
		if h, ok := p.topo.HostAtPort(f.sw, out); ok {
			f.delivered = append(f.delivered, deliveredRec{host: h.ID, hs: hs})
			continue
		}
		l, ok := p.topo.LinkAt(f.sw, out)
		if !ok {
			f.dropped = append(f.dropped, hs) // dangling port
			continue
		}
		if onPath(f, l.Peer, l.PeerPort) {
			f.looped = append(f.looped, hs)
			continue
		}
		c := &flow{hs: hs, sw: l.Peer, inPort: l.PeerPort, parent: f}
		f.child = append(f.child, c)
		p.addArrival(c)
		p.expand(c)
	}
}

// refreshSwitch retracts and re-expands every flow arriving at sw; called
// after any rule change on sw.
func (p *Plumber) refreshSwitch(sw int) {
	// Snapshot: re-expansion mutates the arrival index.
	var fs []*flow
	for f := range p.arrivals[sw] {
		fs = append(fs, f)
	}
	// Only refresh flows that still exist (a retract below may remove
	// siblings' descendants arriving at the same switch).
	for _, f := range fs {
		if !p.arrivals[sw][f] {
			continue
		}
		p.retract(f)
		p.expand(f)
	}
}

// AddRule inserts a rule on sw and re-propagates affected flows.
func (p *Plumber) AddRule(sw int, r network.Rule) {
	p.insertRuleNode(sw, r)
	p.refreshSwitch(sw)
}

// RemoveRule removes the first rule on sw structurally equal to r,
// reporting whether one was found, and re-propagates affected flows.
func (p *Plumber) RemoveRule(sw int, r network.Rule) bool {
	ns := p.rules[sw]
	for i, n := range ns {
		if rulesEqual(n.rule, r) {
			p.rules[sw] = append(ns[:i:i], ns[i+1:]...)
			p.refreshSwitch(sw)
			return true
		}
	}
	return false
}

func rulesEqual(a, b network.Rule) bool {
	if a.Priority != b.Priority || a.Match != b.Match || len(a.Actions) != len(b.Actions) {
		return false
	}
	for i := range a.Actions {
		if a.Actions[i] != b.Actions[i] {
			return false
		}
	}
	return true
}

// PathTerminal describes one maximal flow path and how it ended.
type PathTerminal struct {
	// Switches is the path of switches traversed, in order.
	Switches []int
	// InPorts[i] is the ingress port at Switches[i].
	InPorts []topology.Port
	// HS is the header-space portion taking this path.
	HS Vec
	// Kind describes the outcome.
	Kind TerminalKind
	// Host is the delivery host for TerminalDelivered.
	Host int
}

// TerminalKind is the outcome of a flow path.
type TerminalKind uint8

// Flow path outcomes.
const (
	TerminalDelivered TerminalKind = iota
	TerminalDropped
	TerminalLooped
)

func (k TerminalKind) String() string {
	switch k {
	case TerminalDelivered:
		return "delivered"
	case TerminalDropped:
		return "dropped"
	case TerminalLooped:
		return "looped"
	}
	return fmt.Sprintf("terminal(%d)", uint8(k))
}

// Terminals enumerates every maximal flow path currently in the graph.
func (p *Plumber) Terminals() []PathTerminal {
	var out []PathTerminal
	var walk func(f *flow, sws []int, pts []topology.Port)
	walk = func(f *flow, sws []int, pts []topology.Port) {
		sws = append(sws, f.sw)
		pts = append(pts, f.inPort)
		emit := func(kind TerminalKind, hs Vec, host int) {
			out = append(out, PathTerminal{
				Switches: append([]int(nil), sws...),
				InPorts:  append([]topology.Port(nil), pts...),
				HS:       hs,
				Kind:     kind,
				Host:     host,
			})
		}
		for _, d := range f.delivered {
			emit(TerminalDelivered, d.hs, d.host)
		}
		for _, hs := range f.dropped {
			emit(TerminalDropped, hs, -1)
		}
		for _, hs := range f.looped {
			emit(TerminalLooped, hs, -1)
		}
		for _, c := range f.child {
			walk(c, sws, pts)
		}
	}
	for _, root := range p.roots {
		walk(root, nil, nil)
	}
	return out
}

// HasLoop reports whether any flow would revisit a switch.
func (p *Plumber) HasLoop() bool {
	var any func(f *flow) bool
	any = func(f *flow) bool {
		if len(f.looped) > 0 {
			return true
		}
		for _, c := range f.child {
			if any(c) {
				return true
			}
		}
		return false
	}
	for _, root := range p.roots {
		if any(root) {
			return true
		}
	}
	return false
}
