package mc

import (
	"math/rand"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// randomScene builds a random topology with one traffic class and a
// random, possibly partial, forwarding configuration. It retries until
// the configuration is loop-free (Build succeeds).
func randomScene(r *rand.Rand) (*topology.Topology, *config.Config, config.Class, *kripke.K) {
	for {
		n := 4 + r.Intn(6)
		topo := topology.WAN("t", n, r.Int63())
		src := r.Intn(n)
		dst := r.Intn(n)
		hs := topo.AddHost(100, src)
		hd := topo.AddHost(101, dst)
		_ = hs
		_ = hd
		cl := config.Class{SrcHost: 100, DstHost: 101}
		cfg := config.New()
		for sw := 0; sw < n; sw++ {
			if r.Intn(4) == 0 {
				continue // no rule: drop
			}
			ports := topo.Ports(sw)
			pt := ports[r.Intn(len(ports))]
			cfg.AddRule(sw, fwdRule(cl, pt))
		}
		k, err := kripke.Build(topo, cfg, cl)
		if err != nil {
			continue
		}
		return topo, cfg, cl, k
	}
}

func fwdRule(cl config.Class, pt topology.Port) network.Rule {
	return network.Rule{
		Priority: 10,
		Match:    cl.Pattern(),
		Actions:  []network.Action{network.Forward(pt)},
	}
}

// randomFormula produces a small NNF-able formula over switch atoms.
func randomFormula(r *rand.Rand, n int) *ltl.Formula {
	var gen func(d int) *ltl.Formula
	gen = func(d int) *ltl.Formula {
		if d <= 0 {
			return ltl.At(r.Intn(n))
		}
		switch r.Intn(7) {
		case 0:
			return ltl.Not(gen(d - 1))
		case 1:
			return ltl.And(gen(d-1), gen(d-1))
		case 2:
			return ltl.Or(gen(d-1), gen(d-1))
		case 3:
			return ltl.Next(gen(d - 1))
		case 4:
			return ltl.Until(gen(d-1), gen(d-1))
		case 5:
			return ltl.Release(gen(d-1), gen(d-1))
		default:
			return ltl.At(r.Intn(n))
		}
	}
	return gen(2 + r.Intn(2))
}

// bruteForce checks the property by enumerating every trace from every
// initial state and evaluating the formula directly.
func bruteForce(k *kripke.K, f *ltl.Formula) bool {
	for _, q0 := range k.Init() {
		for _, tr := range k.Traces(q0, 100000) {
			env := make([]ltl.Env, len(tr))
			for i, id := range tr {
				env[i] = k.Env(id)
			}
			if !f.EvalTrace(env) {
				return false
			}
		}
	}
	return true
}

func TestIncrementalMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		topo, _, _, k := randomScene(r)
		f := randomFormula(r, topo.NumSwitches())
		chk, err := NewIncremental(k, f)
		if err != nil {
			continue // oversized closure
		}
		got := chk.Check()
		want := bruteForce(k, f)
		if got.OK != want {
			t.Fatalf("iter %d: incremental=%v bruteforce=%v formula=%v", iter, got.OK, want, f)
		}
		if !got.OK {
			validateCex(t, k, f, got.Cex)
		}
	}
}

// validateCex checks that a counterexample trace is a real trace of the
// structure and genuinely violates the formula.
func validateCex(t *testing.T, k *kripke.K, f *ltl.Formula, cex []int) {
	t.Helper()
	if len(cex) == 0 {
		t.Fatal("empty counterexample")
	}
	isInit := false
	for _, q0 := range k.Init() {
		if q0 == cex[0] {
			isInit = true
			break
		}
	}
	if !isInit {
		t.Fatalf("counterexample does not start at an initial state: %v", Describe(k, cex))
	}
	for i := 0; i+1 < len(cex); i++ {
		ok := false
		for _, s := range k.Succ(cex[i]) {
			if s == cex[i+1] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("counterexample has non-edge %d -> %d", cex[i], cex[i+1])
		}
	}
	if !k.IsSink(cex[len(cex)-1]) {
		t.Fatalf("counterexample does not end at a sink")
	}
	env := make([]ltl.Env, len(cex))
	for i, id := range cex {
		env[i] = k.Env(id)
	}
	if f.EvalTrace(env) {
		t.Fatalf("counterexample satisfies the formula: %v", Describe(k, cex))
	}
}

func TestBatchMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for iter := 0; iter < 100; iter++ {
		topo, _, _, k := randomScene(r)
		f := randomFormula(r, topo.NumSwitches())
		inc, err := NewIncremental(k, f)
		if err != nil {
			continue
		}
		bat, err := NewBatch(k, f)
		if err != nil {
			continue
		}
		if inc.Check().OK != bat.Check().OK {
			t.Fatalf("iter %d: incremental and batch disagree on %v", iter, f)
		}
	}
}

// TestIncrementalUpdateMatchesFresh applies a random sequence of switch
// updates and reverts, comparing the incremental verdict against a
// freshly-built checker at every step.
func TestIncrementalUpdateMatchesFresh(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for iter := 0; iter < 60; iter++ {
		topo, cfg, cl, k := randomScene(r)
		f := randomFormula(r, topo.NumSwitches())
		chk, err := NewIncremental(k, f)
		if err != nil {
			continue
		}
		type frame struct {
			delta *kripke.Delta
			tok   Token
		}
		var stack []frame
		for step := 0; step < 12; step++ {
			if len(stack) > 0 && r.Intn(3) == 0 {
				// Backtrack.
				fr := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				chk.Revert(fr.tok)
				k.Revert(fr.delta)
			} else {
				sw := r.Intn(topo.NumSwitches())
				var tbl network.Table
				if r.Intn(3) > 0 {
					ports := topo.Ports(sw)
					tbl = network.Table{fwdRule(cl, ports[r.Intn(len(ports))])}
				}
				delta, err := k.UpdateSwitch(sw, tbl)
				if err != nil {
					// Loop introduced: revert and skip.
					k.Revert(delta)
					continue
				}
				v, tok := chk.Update(delta)
				stack = append(stack, frame{delta, tok})
				// Compare against a fresh checker on the same structure.
				fresh, ferr := NewIncremental(k, f)
				if ferr != nil {
					t.Fatal(ferr)
				}
				fv := fresh.Check()
				if v.OK != fv.OK {
					t.Fatalf("iter %d step %d: incremental=%v fresh=%v formula=%v",
						iter, step, v.OK, fv.OK, f)
				}
				if !v.OK {
					validateCex(t, k, f, v.Cex)
				}
				want := bruteForce(k, f)
				if v.OK != want {
					t.Fatalf("iter %d step %d: incremental=%v brute=%v", iter, step, v.OK, want)
				}
			}
		}
		// Unwind fully and confirm we are back to the initial verdict.
		initial := bruteForce(k2Initial(topo, cfg, cl), f)
		for len(stack) > 0 {
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			chk.Revert(fr.tok)
			k.Revert(fr.delta)
		}
		if got := chk.Check(); got.OK != initial {
			t.Fatalf("iter %d: after full revert, verdict %v != initial %v", iter, got.OK, initial)
		}
	}
}

func k2Initial(topo *topology.Topology, cfg *config.Config, cl config.Class) *kripke.K {
	k, err := kripke.Build(topo, cfg, cl)
	if err != nil {
		panic(err)
	}
	return k
}

// exampleScenarios returns the repository's example scenarios: the Figure
// 1 variants plus diamond workloads on each topology family.
func exampleScenarios(t *testing.T) []*config.Scenario {
	t.Helper()
	scs := []*config.Scenario{
		config.Fig1RedGreen(),
		config.Fig1RedBlue(),
		config.Fig1RedBlueWaypoint(),
	}
	ft, _ := topology.FatTreeForSize(20)
	for _, topo := range []*topology.Topology{
		topology.WAN("meta", 20, 7),
		topology.SmallWorld(24, 4, 0.3, 7),
		ft,
	} {
		for _, prop := range []config.Property{config.Reachability, config.Waypointing} {
			sc, err := config.Diamonds(topo, config.DiamondOptions{
				Pairs: 1, Property: prop, Seed: 7,
			})
			if err != nil {
				continue // the property's diamond does not fit this topology
			}
			scs = append(scs, sc)
		}
	}
	if len(scs) < 6 {
		t.Fatalf("only %d example scenarios generated", len(scs))
	}
	return scs
}

// TestMetamorphicIncrementalVsBatch drives the incremental and the batch
// checker through an identical randomized sequence of UpdateSwitch and
// Revert operations over every example scenario, asserting per-state
// label equality and identical verdicts at every step. The batch checker
// recomputes everything from scratch each time, so any divergence pins a
// bug in the incremental bookkeeping (stale labels, bad epoch stamps,
// broken undo tokens, or intern-table corruption).
func TestMetamorphicIncrementalVsBatch(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	for _, sc := range exampleScenarios(t) {
		for _, cs := range sc.Specs {
			k, err := kripke.Build(sc.Topo, sc.Init, cs.Class)
			if err != nil {
				continue // initial config loops for this class: not checkable
			}
			inc, err := NewIncremental(k, cs.Formula)
			if err != nil {
				continue // oversized closure
			}
			bat, err := NewBatch(k, cs.Formula)
			if err != nil {
				t.Fatal(err)
			}
			tables := func(sw int) []network.Table {
				return []network.Table{sc.Init.Table(sw), sc.Final.Table(sw)}
			}
			metamorphicDrive(t, r, k, inc, bat, sc.UpdatingSwitches(), tables, 16)
		}
	}
	// Random scenes with random formulas and random partial tables widen
	// the input space beyond the curated scenarios.
	for iter := 0; iter < 25; iter++ {
		topo, _, cl, k := randomScene(r)
		f := randomFormula(r, topo.NumSwitches())
		inc, err := NewIncremental(k, f)
		if err != nil {
			continue
		}
		bat, err := NewBatch(k, f)
		if err != nil {
			continue
		}
		sws := make([]int, topo.NumSwitches())
		for i := range sws {
			sws[i] = i
		}
		tables := func(sw int) []network.Table {
			ports := topo.Ports(sw)
			return []network.Table{
				nil, // drop everything
				{fwdRule(cl, ports[r.Intn(len(ports))])},
			}
		}
		metamorphicDrive(t, r, k, inc, bat, sws, tables, 14)
	}
}

// metamorphicDrive applies a random update/revert walk to both checkers
// over the shared structure k, comparing verdicts and per-state labels
// after every step.
func metamorphicDrive(t *testing.T, r *rand.Rand, k *kripke.K,
	inc, bat Checker, sws []int, tables func(sw int) []network.Table, steps int) {
	t.Helper()
	type mframe struct {
		delta *kripke.Delta
		itok  Token
		btok  Token
	}
	var stack []mframe
	compare := func(step int) {
		iv := inc.Check()
		bv := bat.Check() // relabels from scratch
		if iv.OK != bv.OK {
			t.Fatalf("step %d: verdicts diverge: incremental=%v batch=%v", step, iv.OK, bv.OK)
		}
		il := inc.(*Incremental)
		bl := bat.(*Batch)
		for id := 0; id < k.NumStates(); id++ {
			if !valuationsEqual(il.Labels(id), bl.Labels(id)) {
				t.Fatalf("step %d: label of state %d diverges:\n  incremental=%v\n  batch=%v",
					step, id, il.Labels(id), bl.Labels(id))
			}
		}
	}
	compare(-1)
	for step := 0; step < steps; step++ {
		if len(stack) > 0 && r.Intn(3) == 0 {
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			inc.Revert(fr.itok)
			bat.Revert(fr.btok)
			k.Revert(fr.delta)
		} else {
			sw := sws[r.Intn(len(sws))]
			tbls := tables(sw)
			delta, err := k.UpdateSwitch(sw, tbls[r.Intn(len(tbls))])
			if err != nil {
				if delta != nil {
					k.Revert(delta) // loop: applied, must roll back
				}
				continue
			}
			iv, itok := inc.Update(delta)
			bv, btok := bat.Update(delta)
			if iv.OK != bv.OK {
				t.Fatalf("step %d: update verdicts diverge: incremental=%v batch=%v", step, iv.OK, bv.OK)
			}
			stack = append(stack, mframe{delta, itok, btok})
		}
		compare(step)
	}
	// Unwind fully; the checkers must land back on the initial state.
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		inc.Revert(fr.itok)
		bat.Revert(fr.btok)
		k.Revert(fr.delta)
	}
	compare(steps)
}

func TestStatsAccumulate(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	_, _, _, k := randomScene(r)
	chk, err := NewIncremental(k, ltl.Reachability(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	chk.Check()
	st := chk.Stats()
	if st.Checks == 0 || st.StatesLabeled == 0 {
		t.Fatalf("stats not counted: %+v", st)
	}
}

// randomConfigFor draws a random loop-free configuration for an existing
// scene (same topology and class), for exercising Rebind.
func randomConfigFor(r *rand.Rand, topo *topology.Topology, cl config.Class) (*config.Config, bool) {
	n := topo.NumSwitches()
	for attempt := 0; attempt < 20; attempt++ {
		cfg := config.New()
		for sw := 0; sw < n; sw++ {
			if r.Intn(4) == 0 {
				continue
			}
			ports := topo.Ports(sw)
			cfg.AddRule(sw, fwdRule(cl, ports[r.Intn(len(ports))]))
		}
		if _, err := kripke.Build(topo, cfg, cl); err == nil {
			return cfg, true
		}
	}
	return nil, false
}

// TestIncrementalRebindMatchesFresh drives one warm checker through a
// random walk of in-place rebinds and compares, after every step, its
// verdict and per-state labels against a cold checker built from scratch
// on the rebound configuration.
func TestIncrementalRebindMatchesFresh(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 40; iter++ {
		topo, _, cl, k := randomScene(r)
		spec := randomFormula(r, topo.NumSwitches())
		warmC, err := NewIncremental(k, spec)
		if err != nil {
			t.Fatal(err)
		}
		warm := warmC.(*Incremental)
		for step := 0; step < 6; step++ {
			cfg, ok := randomConfigFor(r, topo, cl)
			if !ok {
				continue
			}
			if _, _, err := k.Rebind(cfg); err != nil {
				t.Fatalf("iter %d step %d: rebind: %v", iter, step, err)
			}
			warm.Rebind()
			k2, err := kripke.Build(topo, cfg, cl)
			if err != nil {
				t.Fatal(err)
			}
			coldC, err := NewIncremental(k2, spec)
			if err != nil {
				t.Fatal(err)
			}
			cold := coldC.(*Incremental)
			wv, cv := warm.Check(), cold.Check()
			if wv.OK != cv.OK {
				t.Fatalf("iter %d step %d: warm OK=%v cold OK=%v", iter, step, wv.OK, cv.OK)
			}
			for id := 0; id < k.NumStates(); id++ {
				if !valuationsEqual(warm.Labels(id), cold.Labels(id)) {
					t.Fatalf("iter %d step %d: labels diverge at state %d:\nwarm %v\ncold %v",
						iter, step, id, warm.Labels(id), cold.Labels(id))
				}
			}
			// The warm checker must still work incrementally after the
			// rebind: update/revert round-trips agree with the cold one.
			sw := r.Intn(topo.NumSwitches())
			ports := topo.Ports(sw)
			tbl := network.Table{fwdRule(cl, ports[r.Intn(len(ports))])}
			dw, errW := k.UpdateSwitch(sw, tbl)
			dc, errC := k2.UpdateSwitch(sw, tbl)
			if (errW == nil) != (errC == nil) {
				t.Fatalf("iter %d step %d: update err diverged: %v vs %v", iter, step, errW, errC)
			}
			if errW == nil {
				vw, tokW := warm.Update(dw)
				vc, tokC := cold.Update(dc)
				if vw.OK != vc.OK {
					t.Fatalf("iter %d step %d: post-rebind update OK=%v vs %v", iter, step, vw.OK, vc.OK)
				}
				warm.Revert(tokW)
				cold.Revert(tokC)
			}
			k.Revert(dw)
			k2.Revert(dc)
		}
	}
}

// TestWarmthSharesLabels: two checkers for the same formula built through
// one Warmth share a label table and a closure, so the second interns
// (almost) nothing new; distinct formulas get distinct entries.
func TestWarmthSharesLabels(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	topo, _, cl, k := randomScene(r)
	spec := ltl.Reachability(0, 1)
	w := NewWarmth()
	c1, err := NewIncrementalWarm(k, spec, w)
	if err != nil {
		t.Fatal(err)
	}
	interned1 := c1.Stats().LabelsInterned
	if interned1 == 0 {
		t.Fatal("first checker interned nothing; test is vacuous")
	}
	cfg2, ok := randomConfigFor(r, topo, cl)
	if !ok {
		t.Skip("no second configuration found")
	}
	k2, err := kripke.Build(topo, cfg2, cl)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewIncrementalWarm(k2, spec, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.(*Incremental).tab; got != c1.(*Incremental).tab {
		t.Fatal("checkers for one formula must share the warm label table")
	}
	if c1.(*Incremental).clo != c2.(*Incremental).clo {
		t.Fatal("checkers for one formula must share the warm closure")
	}
	if w.Len() != 1 {
		t.Fatalf("warmth entries = %d, want 1", w.Len())
	}
	if _, err := NewBatchWarm(k, ltl.Reachability(1, 2), w); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("warmth entries = %d, want 2 after a second formula", w.Len())
	}
	// Verdicts through the shared table still match brute force.
	if got, want := c1.Check().OK, bruteForce(k, spec); got != want {
		t.Fatalf("warm checker verdict = %v, brute force = %v", got, want)
	}
}

// TestEmptyDeltaSkipsWork: an update that does not change the class's
// transitions produces an empty delta, and the incremental checker's
// Update on it relabels nothing and keeps the verdict.
func TestEmptyDeltaSkipsWork(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	topo, cfg, _, k := randomScene(r)
	spec := randomFormula(r, topo.NumSwitches())
	c, err := NewIncremental(k, spec)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Check()
	sw := r.Intn(topo.NumSwitches())
	tbl := cfg.Table(sw).Clone()
	tbl = append(tbl, network.Rule{ // other-flow rule: class-irrelevant
		Priority: 1, Match: network.MatchFlow(500, 501),
		Actions: []network.Action{network.Forward(topo.Ports(sw)[0])},
	})
	d, err := k.UpdateSwitch(sw, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Changed()) != 0 {
		t.Fatalf("changed = %v, want empty", d.Changed())
	}
	labeledBefore := c.Stats().StatesLabeled
	v, tok := c.Update(d)
	if v.OK != before.OK {
		t.Fatalf("verdict changed on empty delta: %v -> %v", before.OK, v.OK)
	}
	if got := c.Stats().StatesLabeled; got != labeledBefore {
		t.Fatalf("empty delta relabeled %d states", got-labeledBefore)
	}
	c.Revert(tok)
	k.Revert(d)
}
