package mc

import (
	"sync"
	"sync/atomic"

	"netupdate/internal/ltl"
)

// LabelID is the dense identifier of an interned label set. Two labels are
// equal iff their IDs are equal, so the incremental checker's stopping
// condition — "did this state's label change?" — is a single integer
// compare. The zero table starts empty; -1 marks "not yet labeled".
type LabelID int32

// noLabel is the sentinel for states that have not been labeled yet.
const noLabel LabelID = -1

// LabelTable hash-conses sorted valuation sets. Every label a checker ever
// computes is interned exactly once; per-state labels become []LabelID and
// undo tokens shrink to (state, LabelID) pairs. A table is shared by a
// checker and all of its clones (label sets are structure-independent:
// they are sets of closure valuations), so per-worker clones carry only an
// outer slice of IDs.
//
// Concurrency: Intern takes a read-lock on the hit path and the write lock
// only when a genuinely new label appears; lookups by ID are wait-free via
// an atomically published snapshot of the ID->label slice. Interned labels
// are immutable, so a reader holding a valid ID always finds its label in
// any snapshot taken after the ID was handed out.
type LabelTable struct {
	mu     sync.RWMutex
	lookup map[uint64][]LabelID // hash -> candidate ids, guarded by mu
	byID   [][]ltl.Valuation    // id -> sorted label, guarded by mu for writes
	snap   atomic.Pointer[[][]ltl.Valuation]
}

// NewLabelTable returns an empty table.
func NewLabelTable() *LabelTable {
	t := &LabelTable{lookup: map[uint64][]LabelID{}}
	empty := [][]ltl.Valuation{}
	t.snap.Store(&empty)
	return t
}

// Len returns the number of distinct labels interned so far.
func (t *LabelTable) Len() int { return len(*t.snap.Load()) }

// Label returns the sorted valuation set of an interned label. The result
// is shared and must not be mutated.
func (t *LabelTable) Label(id LabelID) []ltl.Valuation {
	return (*t.snap.Load())[id]
}

// snapshot returns the current id->label view for repeated lookups; valid
// for every ID obtained before the call.
func (t *LabelTable) snapshot() [][]ltl.Valuation {
	return *t.snap.Load()
}

// Intern returns the ID of the sorted label vs, adding it to the table if
// it has not been seen before. fresh reports whether this call created the
// entry. vs is copied when inserted, so callers may reuse their buffer.
func (t *LabelTable) Intern(vs []ltl.Valuation) (id LabelID, fresh bool) {
	h := hashLabel(vs)
	t.mu.RLock()
	id, ok := t.find(h, vs)
	t.mu.RUnlock()
	if ok {
		return id, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.find(h, vs); ok {
		return id, false
	}
	cp := make([]ltl.Valuation, len(vs))
	copy(cp, vs)
	t.byID = append(t.byID, cp)
	// Publish the grown view. Old snapshots keep indexing the same
	// backing array (append only ever writes past their length), so
	// concurrent Label calls are race-free.
	view := t.byID
	t.snap.Store(&view)
	id = LabelID(len(t.byID) - 1)
	t.lookup[h] = append(t.lookup[h], id)
	return id, true
}

// find looks vs up under the caller's lock.
func (t *LabelTable) find(h uint64, vs []ltl.Valuation) (LabelID, bool) {
	for _, id := range t.lookup[h] {
		if valuationsEqual(t.byID[id], vs) {
			return id, true
		}
	}
	return 0, false
}

func valuationsEqual(a, b []ltl.Valuation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hashLabel is FNV-1a over the valuation words.
func hashLabel(vs []ltl.Valuation) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range vs {
		h = (h ^ v[0]) * prime
		h = (h ^ v[1]) * prime
	}
	return h
}
