package mc

import (
	"slices"

	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
)

// labeler holds the shared state-labeling machinery (Section 5.1): each
// state is labeled with the set of valuations (maximally-consistent
// subsets of ecl(phi)) witnessed by some trace from that state. Labels are
// interned in a LabelTable shared with every clone, so the per-state label
// is a dense LabelID and equality comparison — the incremental algorithm's
// stopping condition — is an integer compare.
type labeler struct {
	k     *kripke.K
	clo   *ltl.Closure
	atoms []ltl.Valuation // per-state truth of atomic subformulas (fixed)
	// atomsImg is the compressed atoms array of a restored checker;
	// ensureAtoms expands it into atoms on first relabel, keeping the
	// expansion off the restore critical path (and skipping it entirely
	// for classes an update stream never touches).
	atomsImg *AtomsImage
	tab      *LabelTable // shared intern table (concurrency-safe)
	label    []LabelID   // per-state interned label, noLabel if unset

	// sinkLab caches the interned label of state id when it is a sink.
	// Sink labels depend only on atoms[id], which never changes, so the
	// entry stays valid even as updates turn states into sinks and back.
	sinkLab []LabelID

	// extCache memoizes Closure.Extend per state: atoms[id] is fixed for
	// the checker's lifetime, so Extend(atoms[id], v) is a function of v
	// alone, and the incremental checker evaluates the same pairs
	// thousands of times across the DFS. Maps are created lazily and are
	// private to this checker (clones get fresh caches — see DESIGN.md).
	extCache []map[ltl.Valuation]ltl.Valuation

	// scratch is the reusable buffer computeLabel merges successor labels
	// into before interning; it makes the steady-state hot path
	// allocation-free. Not safe for concurrent use — per-checker only.
	scratch  []ltl.Valuation
	frames   []pframe
	orderBuf []int

	stats Stats
}

// stateEnv adapts kripke.K.HoldsAt to ltl.Env with a single mutable
// receiver, so the per-state atom valuation sweep in newLabeler performs
// one allocation instead of one closure per state.
type stateEnv struct {
	k  *kripke.K
	id int
}

func (e *stateEnv) Holds(p ltl.Prop) bool { return e.k.HoldsAt(e.id, p) }

func newLabeler(k *kripke.K, spec *ltl.Formula) (*labeler, error) {
	return newLabelerWarm(k, spec, nil)
}

// newLabelerShell builds a labeler with its closure and intern table
// resolved — from the warmth cache when one is supplied (so labels
// interned by any earlier checker for the same formula are immediately
// available), private otherwise — but with no per-state arrays yet.
func newLabelerShell(k *kripke.K, spec *ltl.Formula, w *Warmth) (*labeler, error) {
	var (
		clo *ltl.Closure
		tab *LabelTable
	)
	if w != nil {
		e, err := w.entry(spec)
		if err != nil {
			return nil, err
		}
		clo, tab = e.clo, e.tab
	} else {
		var err error
		clo, err = ltl.NewClosure(spec)
		if err != nil {
			return nil, err
		}
		tab = NewLabelTable()
	}
	return &labeler{k: k, clo: clo, tab: tab}, nil
}

// newLabelerWarm builds the labeler and sweeps the structure once to
// evaluate every state's atomic-subformula valuation.
func newLabelerWarm(k *kripke.K, spec *ltl.Formula, w *Warmth) (*labeler, error) {
	l, err := newLabelerShell(k, spec, w)
	if err != nil {
		return nil, err
	}
	n := k.NumStates()
	l.atoms = make([]ltl.Valuation, n)
	env := &stateEnv{k: k}
	for id := 0; id < n; id++ {
		env.id = id
		l.atoms[id] = l.clo.AtomValuation(env)
	}
	l.label = make([]LabelID, n)
	l.sinkLab = make([]LabelID, n)
	for id := 0; id < n; id++ {
		l.label[id] = noLabel
		l.sinkLab[id] = noLabel
	}
	return l, nil
}

// ensureAtoms expands a restored checker's compressed atoms image into
// the dense per-state array on first use. Checkers built cold or warm
// fill atoms at construction and never take the branch.
func (l *labeler) ensureAtoms() {
	if l.atoms == nil && l.atomsImg != nil {
		l.atoms = l.atomsImg.materialize()
	}
}

// cloneFor copies the labeler onto a clone of its structure. The closure,
// the atom valuations, and the intern table are shared (the table is
// concurrency-safe and label sets are structure-independent); the label
// array is copied so the clone relabels independently. Clones exist to
// search, which relabels, so a restored atoms image is materialized once
// here and shared rather than expanded per clone. Scratch state — the
// merge buffer, DFS frames, and the Extend memo — is private per checker
// and starts fresh.
func (l *labeler) cloneFor(k2 *kripke.K) *labeler {
	l.ensureAtoms()
	return &labeler{
		k:       k2,
		clo:     l.clo,
		atoms:   l.atoms,
		tab:     l.tab,
		label:   append([]LabelID(nil), l.label...),
		sinkLab: append([]LabelID(nil), l.sinkLab...),
	}
}

// extend computes Extend(atoms[id], v) through the per-state memo. The
// memo's outer array materializes on first use — checkers that never
// relabel (a restored session that only serves cache hits) never pay for
// it.
func (l *labeler) extend(id int, v ltl.Valuation) ltl.Valuation {
	if l.extCache == nil {
		l.extCache = make([]map[ltl.Valuation]ltl.Valuation, len(l.atoms))
	}
	m := l.extCache[id]
	if m == nil {
		m = make(map[ltl.Valuation]ltl.Valuation, 8)
		l.extCache[id] = m
	}
	if w, ok := m[v]; ok {
		l.stats.ExtendHits++
		return w
	}
	w := l.clo.Extend(l.atoms[id], v)
	m[v] = w
	l.stats.ExtendMisses++
	return w
}

// computeLabel computes the interned label of state id from its
// successors' labels, which must already be correct. In steady state
// (warm caches, label already interned) it performs no heap allocation.
func (l *labeler) computeLabel(id int) LabelID {
	l.ensureAtoms()
	l.stats.StatesLabeled++
	if l.k.IsSink(id) {
		if l.sinkLab[id] == noLabel {
			buf := append(l.scratch[:0], l.clo.Sink(l.atoms[id]))
			l.scratch = buf[:0]
			sid, fresh := l.tab.Intern(buf)
			if fresh {
				l.stats.LabelsInterned++
			}
			l.sinkLab[id] = sid
		}
		return l.sinkLab[id]
	}
	labels := l.tab.snapshot()
	buf := l.scratch[:0]
	for _, s := range l.k.Succ(id) {
		for _, v := range labels[l.label[s]] {
			buf = append(buf, l.extend(id, v))
		}
	}
	slices.SortFunc(buf, ltl.Valuation.Compare)
	// Dedup in place: successors frequently share valuations.
	n := 0
	for i := range buf {
		if i == 0 || buf[i] != buf[n-1] {
			buf[n] = buf[i]
			n++
		}
	}
	buf = buf[:n]
	l.scratch = buf[:0]
	lid, fresh := l.tab.Intern(buf)
	if fresh {
		l.stats.LabelsInterned++
	}
	return lid
}

// pframe is one frame of the explicit DFS stacks: a state and the index of
// the next successor to explore.
type pframe struct {
	v, i int
}

// postorder returns all states in DFS postorder over successor edges, so
// every state appears after all of its successors. The traversal uses an
// explicit stack so deep WAN/fat-tree structures cannot overflow the
// goroutine stack; the order and frame buffers are reused across calls.
func (l *labeler) postorder() []int {
	n := l.k.NumStates()
	visited := make([]bool, n)
	order := l.orderBuf[:0]
	frames := l.frames[:0]
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		frames = append(frames, pframe{root, 0})
		for len(frames) > 0 {
			fi := len(frames) - 1
			v, i := frames[fi].v, frames[fi].i
			succ := l.k.Succ(v)
			pushed := false
			for i < len(succ) {
				u := succ[i]
				i++
				if !visited[u] {
					frames[fi].i = i
					visited[u] = true
					frames = append(frames, pframe{u, 0})
					pushed = true
					break
				}
			}
			if pushed {
				continue
			}
			order = append(order, v)
			frames = frames[:fi]
		}
	}
	l.frames = frames[:0]
	l.orderBuf = order
	return order
}

// relabelAll computes labels for every state from scratch.
func (l *labeler) relabelAll() {
	for _, v := range l.postorder() {
		l.label[v] = l.computeLabel(v)
	}
}

// Labels exposes the decoded label of a state for tests and metamorphic
// comparisons. The result is shared and must not be mutated.
func (l *labeler) Labels(id int) []ltl.Valuation {
	if l.label[id] == noLabel {
		return nil
	}
	return l.tab.Label(l.label[id])
}

// verdict checks the initial states against the root formula and extracts
// a counterexample trace if some initial valuation refutes it.
func (l *labeler) verdict() Verdict {
	l.stats.Checks++
	for _, q0 := range l.k.Init() {
		for _, v := range l.tab.Label(l.label[q0]) {
			if !l.clo.Holds(v) {
				return Verdict{OK: false, Cex: l.extractCex(q0, v), HasCex: true}
			}
		}
	}
	return trueVerdict()
}

// extractCex reconstructs a violating trace witnessing valuation v at
// state q0: repeatedly find a successor whose label contains a valuation
// that extends to the current one (Section 5.2, "Counterexamples").
func (l *labeler) extractCex(q0 int, v ltl.Valuation) []int {
	l.ensureAtoms()
	trace := []int{q0}
	q, cur := q0, v
	for !l.k.IsSink(q) {
		found := false
		for _, s := range l.k.Succ(q) {
			for _, vs := range l.tab.Label(l.label[s]) {
				if l.extend(q, vs) == cur {
					trace = append(trace, s)
					q, cur = s, vs
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			// Labels are correct by construction; reaching here indicates
			// stale labels. Fail loudly in tests rather than mislead.
			panic("mc: counterexample reconstruction failed — stale labeling")
		}
	}
	return trace
}
