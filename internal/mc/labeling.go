package mc

import (
	"sort"

	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
)

// labeler holds the shared state-labeling machinery (Section 5.1): each
// state is labeled with the set of valuations (maximally-consistent
// subsets of ecl(phi)) witnessed by some trace from that state. Labels are
// kept as sorted slices so that equality comparison — the incremental
// algorithm's stopping condition — is cheap.
type labeler struct {
	k     *kripke.K
	clo   *ltl.Closure
	atoms []ltl.Valuation   // per-state truth of atomic subformulas (fixed)
	label [][]ltl.Valuation // per-state sorted label
	stats Stats
}

func newLabeler(k *kripke.K, spec *ltl.Formula) (*labeler, error) {
	clo, err := ltl.NewClosure(spec)
	if err != nil {
		return nil, err
	}
	l := &labeler{k: k, clo: clo}
	l.atoms = make([]ltl.Valuation, k.NumStates())
	for id := 0; id < k.NumStates(); id++ {
		l.atoms[id] = clo.AtomValuation(k.Env(id))
	}
	l.label = make([][]ltl.Valuation, k.NumStates())
	return l, nil
}

// cloneFor copies the labeler onto a clone of its structure. The closure
// and the atom valuations are immutable and shared; the label table's
// outer slice is copied (entries are replaced wholesale on relabel, so the
// inner slices can be shared safely).
func (l *labeler) cloneFor(k2 *kripke.K) *labeler {
	return &labeler{
		k:     k2,
		clo:   l.clo,
		atoms: l.atoms,
		label: append([][]ltl.Valuation(nil), l.label...),
	}
}

// computeLabel computes the label of state id from its successors' labels,
// which must already be correct.
func (l *labeler) computeLabel(id int) []ltl.Valuation {
	l.stats.StatesLabeled++
	if l.k.IsSink(id) {
		return []ltl.Valuation{l.clo.Sink(l.atoms[id])}
	}
	set := map[ltl.Valuation]struct{}{}
	for _, s := range l.k.Succ(id) {
		for _, v := range l.label[s] {
			set[l.clo.Extend(l.atoms[id], v)] = struct{}{}
		}
	}
	out := make([]ltl.Valuation, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// postorder returns the states of the sub-DAG induced on member (nil =
// all states) in DFS postorder over successor edges, so every state
// appears after all of its in-member successors.
func (l *labeler) postorder(member []bool) []int {
	n := l.k.NumStates()
	visited := make([]bool, n)
	order := make([]int, 0, n)
	var dfs func(v int)
	dfs = func(v int) {
		visited[v] = true
		for _, u := range l.k.Succ(v) {
			if (member == nil || member[u]) && !visited[u] {
				dfs(u)
			}
		}
		order = append(order, v)
	}
	for v := 0; v < n; v++ {
		if (member == nil || member[v]) && !visited[v] {
			dfs(v)
		}
	}
	return order
}

// relabelAll computes labels for every state from scratch.
func (l *labeler) relabelAll() {
	for _, v := range l.postorder(nil) {
		l.label[v] = l.computeLabel(v)
	}
}

// labelsEqual compares two sorted labels.
func labelsEqual(a, b []ltl.Valuation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// verdict checks the initial states against the root formula and extracts
// a counterexample trace if some initial valuation refutes it.
func (l *labeler) verdict() Verdict {
	l.stats.Checks++
	for _, q0 := range l.k.Init() {
		for _, v := range l.label[q0] {
			if !l.clo.Holds(v) {
				return Verdict{OK: false, Cex: l.extractCex(q0, v), HasCex: true}
			}
		}
	}
	return trueVerdict()
}

// extractCex reconstructs a violating trace witnessing valuation v at
// state q0: repeatedly find a successor whose label contains a valuation
// that extends to the current one (Section 5.2, "Counterexamples").
func (l *labeler) extractCex(q0 int, v ltl.Valuation) []int {
	trace := []int{q0}
	q, cur := q0, v
	for !l.k.IsSink(q) {
		found := false
		for _, s := range l.k.Succ(q) {
			for _, vs := range l.label[s] {
				if l.clo.Extend(l.atoms[q], vs) == cur {
					trace = append(trace, s)
					q, cur = s, vs
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			// Labels are correct by construction; reaching here indicates
			// stale labels. Fail loudly in tests rather than mislead.
			panic("mc: counterexample reconstruction failed — stale labeling")
		}
	}
	return trace
}
