package mc

import (
	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
)

// Batch is the monolithic variant of the labeling checker (Section 5.2's
// "naive approach"): every call relabels the entire Kripke structure from
// scratch, ignoring previous results. It exists as the paper's Batch
// baseline for Figure 7.
type Batch struct {
	*labeler
}

// NewBatch builds the batch checker.
func NewBatch(k *kripke.K, spec *ltl.Formula) (Checker, error) {
	l, err := newLabeler(k, spec)
	if err != nil {
		return nil, err
	}
	return &Batch{labeler: l}, nil
}

// Name implements Checker.
func (c *Batch) Name() string { return "batch" }

// Check implements Checker: full relabel then scan.
func (c *Batch) Check() Verdict {
	c.relabelAll()
	return c.verdict()
}

// Update implements Checker by re-checking from scratch.
func (c *Batch) Update(delta *kripke.Delta) (Verdict, Token) {
	return c.Check(), batchToken{}
}

// Revert implements Checker. The batch checker keeps no incremental
// state: the next call relabels everything anyway.
func (c *Batch) Revert(t Token) {}

// Stats implements Checker.
func (c *Batch) Stats() Stats { return c.stats }

// CloneFor implements Cloneable. The batch checker relabels from scratch
// on every call, so the clone only needs the shared closure and atoms.
func (c *Batch) CloneFor(k2 *kripke.K) (Checker, error) {
	return &Batch{labeler: c.labeler.cloneFor(k2)}, nil
}

// StatelessMC implements Stateless: every call relabels from scratch.
func (c *Batch) StatelessMC() {}

// Rebind implements Rebindable. The batch checker re-derives everything
// on its next Check, so nothing needs refreshing; the interned labels and
// Extend memos it keeps remain valid (they depend only on the fixed state
// arena) and make post-rebind relabels cheap.
func (c *Batch) Rebind() {}

// DeltaInvariantMC implements DeltaInvariant: the verdict is recomputed
// from the class structure alone, so an empty delta cannot change it.
func (c *Batch) DeltaInvariantMC() {}

type batchToken struct{}

var (
	_ Checker        = (*Batch)(nil)
	_ Cloneable      = (*Batch)(nil)
	_ Stateless      = (*Batch)(nil)
	_ Rebindable     = (*Batch)(nil)
	_ DeltaInvariant = (*Batch)(nil)
	_                = ltl.Valuation{}
	_                = kripke.State{}
)
