// Package mc implements the LTL model checkers of Section 5: state
// labeling with maximally-consistent sets of the extended closure
// (following Wolper-Vardi-Sistla), an incremental checker that relabels
// only the ancestors of updated states, and a batch variant that relabels
// the whole structure on every call. Both operate on the complete,
// DAG-like network Kripke structures built by package kripke.
package mc

import (
	"fmt"

	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
)

// Verdict is the outcome of a model-checking call.
type Verdict struct {
	OK bool
	// Cex is a violating trace prefix (state ids, from an initial state to
	// a sink) when OK is false and the checker supports counterexamples.
	Cex []int
	// HasCex reports whether this checker produces counterexamples at all
	// (NetPlumber-style checkers do not).
	HasCex bool
}

// Token is an opaque undo token returned by Update and consumed by Revert.
type Token interface{}

// Checker verifies one traffic class's Kripke structure against one LTL
// formula across a sequence of switch updates. Implementations:
// Incremental (the paper's contribution), Batch, the automaton-theoretic
// checker in package buchi (NuSMV stand-in), and the header-space checker
// in package hsa (NetPlumber stand-in).
type Checker interface {
	// Name identifies the checker in benchmark output.
	Name() string
	// Check performs a full check of the current structure.
	Check() Verdict
	// Update re-checks after the Kripke structure was updated with the
	// given delta (see kripke.K.UpdateSwitch). The returned token undoes
	// the checker's internal state when the update is reverted.
	Update(delta *kripke.Delta) (Verdict, Token)
	// Revert undoes a previous Update's effect on internal state. Tokens
	// must be reverted in LIFO order. The caller separately reverts the
	// Kripke structure itself.
	Revert(t Token)
	// Stats returns cumulative work counters for benchmark reporting.
	Stats() Stats
}

// Stats counts the work a checker has performed. The labeling backends
// additionally report allocation and relabeling counters: LabelsInterned
// is the number of distinct label sets this checker added to its intern
// table (the only steady-state source of label allocations), and the
// Extend counters expose the hit rate of the per-state closure-extension
// memo.
type Stats struct {
	Checks         int // model-checking calls
	StatesLabeled  int // state (re)labelings performed
	Relabels       int // incremental label recomputations that changed a label
	LabelsInterned int // distinct label sets added to the intern table
	ExtendHits     int // closure-extension memo hits
	ExtendMisses   int // closure-extension memo misses (full Extend runs)
}

// Factory constructs a checker for a structure/formula pair; the synthesis
// engine uses one checker per traffic class.
type Factory func(k *kripke.K, spec *ltl.Formula) (Checker, error)

// Stateless marks checkers that keep no internal state across updates:
// Update is equivalent to a fresh Check of the current structure and
// Revert is a no-op. When a search worker replays a prefix whose verdict
// is already known, it may update the Kripke structure and skip a
// Stateless checker's re-check entirely.
type Stateless interface {
	// StatelessMC is a marker; implementations do nothing.
	StatelessMC()
}

// Rebindable is implemented by every backend that can survive its Kripke
// structure being rebound in place to a different configuration (see
// kripke.K.Rebind): Rebind re-derives whatever internal bookkeeping
// depends on the transition relation while keeping the warm,
// structure-independent caches — interned labels, closure-extension
// memos, translated automata — alive across syntheses. It is the entry
// point long-lived sessions use instead of rebuilding checkers per run.
// Outstanding undo tokens and clones taken before a Rebind are
// invalidated and must not be used afterwards.
type Rebindable interface {
	// Rebind refreshes the checker after arbitrary in-place changes to
	// the structure it was built on.
	Rebind()
}

// DeltaInvariant marks checkers whose observable verdict is a function of
// the class Kripke structure alone: an update whose delta is empty (no
// transition of the class changed) cannot change their answer, so the
// synthesis engine may skip the Update/verdict round-trip entirely and
// count a class skip. The header-space backend tracks raw rule tables —
// it must see every table replacement, empty delta or not — and therefore
// does not implement this.
type DeltaInvariant interface {
	// DeltaInvariantMC is a marker; implementations do nothing.
	DeltaInvariantMC()
}

// Cloneable is implemented by checkers that can duplicate themselves for a
// clone of their Kripke structure (see kripke.K.Clone). The clone carries
// over the current labeling/bookkeeping where the backend keeps any, so it
// is cheaper than rebuilding via the Factory; backends for which cloning
// is impractical rebuild internally instead. Clones share only immutable
// data with the original and may be used concurrently with it.
type Cloneable interface {
	// CloneFor returns an independent checker over k2, which must be a
	// clone of the structure this checker was built on, taken at the same
	// table state.
	CloneFor(k2 *kripke.K) (Checker, error)
}

// trueVerdict is the verdict for a passing check.
func trueVerdict() Verdict { return Verdict{OK: true, HasCex: true} }

// Describe renders a counterexample trace for error messages.
func Describe(k *kripke.K, cex []int) string {
	if len(cex) == 0 {
		return "<no counterexample>"
	}
	s := ""
	for i, id := range cex {
		if i > 0 {
			s += " -> "
		}
		s += k.StateAt(id).String()
	}
	return s
}

var _ = fmt.Sprintf // keep fmt for Describe extensions
