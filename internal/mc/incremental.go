package mc

import (
	"math"

	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
)

// Incremental is the paper's incremental model checker (Section 5.2):
// after an update changes the transitions of a set of states U, it
// relabels only the ancestors of U, processing them children-first and
// stopping propagation as soon as a state's label is unchanged. All
// bookkeeping is proportional to the relabeled region — never to the
// whole structure — and the set of violating initial states is maintained
// incrementally, so a whole Update costs O(|ancestors(U)| * 2^|phi|).
// Each Update returns an undo token so the synthesis search can backtrack
// cheaply.
//
// The per-update scratch state (region membership, DFS visited marks,
// dirty flags) lives in epoch-stamped int32 arrays sized to NumStates():
// bumping the epoch invalidates all three sets in O(1), and undo tokens
// come from a per-checker freelist, so steady-state Update/Revert cycles
// perform zero heap allocations (see BenchmarkIncrementalSteadyState).
type Incremental struct {
	*labeler
	isInit   []bool // immutable after construction; shared with clones
	badInit  []bool // initial states whose label refutes the spec
	badCount int
	// minBad is the smallest violating initial state (-1 if none),
	// maintained incrementally so Check never rebuilds or sorts the
	// violating set.
	minBad int

	epoch    int32
	memberE  []int32 // stamp == epoch: state is in the ancestor region
	visitedE []int32 // stamp == epoch: state visited by the region DFS
	dirtyE   []int32 // stamp == epoch: state's label changed this update

	members []int
	stack   []int

	freeToks []*incrToken
}

// NewIncremental builds the incremental checker and performs the initial
// full labeling.
func NewIncremental(k *kripke.K, spec *ltl.Formula) (Checker, error) {
	l, err := newLabeler(k, spec)
	if err != nil {
		return nil, err
	}
	return newIncrementalFrom(l, k), nil
}

// newIncrementalFrom finishes construction over a prepared labeler: the
// initial full labeling and the violating-initial bookkeeping.
func newIncrementalFrom(l *labeler, k *kripke.K) *Incremental {
	l.relabelAll()
	return newIncrementalPrelabeled(l, k)
}

// newIncrementalPrelabeled builds the checker over a labeler whose label
// array is already correct for the structure (a fresh relabelAll, or a
// validated snapshot restore), deriving only the violating-initial set.
func newIncrementalPrelabeled(l *labeler, k *kripke.K) *Incremental {
	n := k.NumStates()
	c := &Incremental{
		labeler: l,
		isInit:  make([]bool, n),
		badInit: make([]bool, n),
		minBad:  -1,
	}
	for _, q0 := range k.Init() {
		c.isInit[q0] = true
		if c.initViolates(q0) {
			c.markBad(q0)
		}
	}
	return c
}

// Rebind implements Rebindable: relabel the (rebound) structure in full
// and re-derive the violating-initial set. The warm state — the shared
// intern table, the per-state atom valuations, the sink-label cache and
// the Extend memos — depends only on the fixed state arena, not on the
// transition relation, so it all survives; in steady state a rebind
// allocates only for genuinely never-seen-before labels. Outstanding undo
// tokens and clones are invalidated.
func (c *Incremental) Rebind() {
	c.relabelAll()
	c.badCount = 0
	c.minBad = -1
	for _, q0 := range c.k.Init() {
		c.badInit[q0] = false
	}
	for _, q0 := range c.k.Init() {
		if c.initViolates(q0) {
			c.markBad(q0)
		}
	}
}

// DeltaInvariantMC implements DeltaInvariant: labels are a function of
// the class structure, so an empty delta cannot change the verdict.
func (c *Incremental) DeltaInvariantMC() {}

func (c *Incremental) initViolates(q0 int) bool {
	for _, v := range c.tab.Label(c.label[q0]) {
		if !c.clo.Holds(v) {
			return true
		}
	}
	return false
}

// markBad records initial state q as violating, maintaining the minimum.
func (c *Incremental) markBad(q int) {
	if c.badInit[q] {
		return
	}
	c.badInit[q] = true
	c.badCount++
	if c.minBad < 0 || q < c.minBad {
		c.minBad = q
	}
}

// unmarkBad clears initial state q, re-deriving the minimum only when the
// minimum itself was cleared (a scan over the fixed initial-state list).
func (c *Incremental) unmarkBad(q int) {
	if !c.badInit[q] {
		return
	}
	c.badInit[q] = false
	c.badCount--
	if q != c.minBad {
		return
	}
	c.minBad = -1
	if c.badCount == 0 {
		return
	}
	for _, q0 := range c.k.Init() {
		if c.badInit[q0] && (c.minBad < 0 || q0 < c.minBad) {
			c.minBad = q0
		}
	}
}

// Name implements Checker.
func (c *Incremental) Name() string { return "incremental" }

// Check implements Checker: labels and the violating-initial set are
// maintained incrementally, so a full check is a constant-time read plus
// counterexample extraction on failure.
func (c *Incremental) Check() Verdict {
	c.stats.Checks++
	if c.badCount == 0 {
		return trueVerdict()
	}
	// Deterministic counterexample choice: smallest violating initial
	// state (maintained in minBad), first violating valuation in label
	// order.
	q0 := c.minBad
	for _, v := range c.tab.Label(c.label[q0]) {
		if !c.clo.Holds(v) {
			return Verdict{OK: false, Cex: c.extractCex(q0, v), HasCex: true}
		}
	}
	// badInit said violating but the label disagrees: stale bookkeeping.
	panic("mc: inconsistent violating-initial-state set")
}

// labelUndo records one overwritten label.
type labelUndo struct {
	state int
	old   LabelID
}

// badUndo records one touched initial state's previous violation flag.
type badUndo struct {
	state  int
	wasBad bool
}

// incrToken records the labels and violation flags overwritten by one
// Update. Tokens are pooled on the checker's freelist: Revert returns
// them, so steady-state backtracking allocates nothing.
type incrToken struct {
	old     []labelUndo
	badPrev []badUndo
}

func (c *Incremental) getToken() *incrToken {
	if n := len(c.freeToks); n > 0 {
		t := c.freeToks[n-1]
		c.freeToks = c.freeToks[:n-1]
		t.old = t.old[:0]
		t.badPrev = t.badPrev[:0]
		return t
	}
	return &incrToken{}
}

// bumpEpoch starts a fresh member/visited/dirty generation, materializing
// the stamp arrays on first use — a checker that never processes an
// update (a restored session serving plan-cache hits, a clone taken for a
// single Check) never allocates them. On the (in practice unreachable)
// wraparound the arrays are cleared so stale stamps can never collide
// with a new epoch.
func (c *Incremental) bumpEpoch() {
	if c.memberE == nil {
		n := c.k.NumStates()
		c.memberE = make([]int32, n)
		c.visitedE = make([]int32, n)
		c.dirtyE = make([]int32, n)
	}
	c.epoch++
	if c.epoch == math.MaxInt32 {
		clear(c.memberE)
		clear(c.visitedE)
		clear(c.dirtyE)
		c.epoch = 1
	}
}

// Update implements Checker: relabel the ancestors of the changed states.
func (c *Incremental) Update(delta *kripke.Delta) (Verdict, Token) {
	changed := delta.Changed()
	tok := c.getToken()
	c.bumpEpoch()

	// Phase 1: collect the ancestors of the changed states (including
	// them) — the only states whose labels may differ. Work is bounded by
	// the size of the ancestor region.
	members := c.members[:0]
	stack := c.stack[:0]
	for _, v := range changed {
		if c.memberE[v] != c.epoch {
			c.memberE[v] = c.epoch
			members = append(members, v)
			stack = append(stack, v)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range c.k.Pred(v) {
			if c.memberE[p] != c.epoch {
				c.memberE[p] = c.epoch
				members = append(members, p)
				stack = append(stack, p)
			}
		}
	}
	c.members = members
	c.stack = stack[:0]

	// Phase 2: order the region children-first (postorder over successor
	// edges restricted to the region), iteratively with an explicit stack
	// so deep structures cannot overflow the goroutine stack.
	order := c.orderBuf[:0]
	frames := c.frames[:0]
	visit := func(root int) {
		if c.visitedE[root] == c.epoch {
			return
		}
		c.visitedE[root] = c.epoch
		frames = append(frames, pframe{root, 0})
		for len(frames) > 0 {
			fi := len(frames) - 1
			v, i := frames[fi].v, frames[fi].i
			succ := c.k.Succ(v)
			pushed := false
			for i < len(succ) {
				u := succ[i]
				i++
				if c.memberE[u] == c.epoch && c.visitedE[u] != c.epoch {
					frames[fi].i = i
					c.visitedE[u] = c.epoch
					frames = append(frames, pframe{u, 0})
					pushed = true
					break
				}
			}
			if pushed {
				continue
			}
			order = append(order, v)
			frames = frames[:fi]
		}
	}
	for _, v := range changed {
		visit(v)
	}
	for _, v := range members {
		visit(v)
	}
	c.orderBuf = order
	c.frames = frames[:0]

	// Phase 3: recompute labels children-first, stopping propagation when
	// a label is unchanged (the paper's early-stopping optimization).
	for _, v := range changed {
		c.dirtyE[v] = c.epoch
	}
	for _, v := range order {
		need := c.dirtyE[v] == c.epoch
		if !need {
			for _, s := range c.k.Succ(v) {
				if c.dirtyE[s] == c.epoch {
					need = true
					break
				}
			}
		}
		if !need {
			continue
		}
		nl := c.computeLabel(v)
		if nl == c.label[v] {
			c.dirtyE[v] = 0 // epoch starts at 1, so 0 is never current
			continue
		}
		tok.old = append(tok.old, labelUndo{state: v, old: c.label[v]})
		c.label[v] = nl
		c.dirtyE[v] = c.epoch
		c.stats.Relabels++
		if c.isInit[v] {
			// Each state appears at most once in the postorder, so one
			// undo entry per touched initial state suffices.
			tok.badPrev = append(tok.badPrev, badUndo{state: v, wasBad: c.badInit[v]})
			if c.initViolates(v) {
				c.markBad(v)
			} else {
				c.unmarkBad(v)
			}
		}
	}
	return c.Check(), tok
}

// Revert implements Checker. The token is returned to the checker's
// freelist and must not be reused by the caller.
func (c *Incremental) Revert(t Token) {
	tok := t.(*incrToken)
	for i := len(tok.old) - 1; i >= 0; i-- {
		u := tok.old[i]
		c.label[u.state] = u.old
	}
	for i := len(tok.badPrev) - 1; i >= 0; i-- {
		u := tok.badPrev[i]
		if u.wasBad {
			c.markBad(u.state)
		} else {
			c.unmarkBad(u.state)
		}
	}
	c.freeToks = append(c.freeToks, tok)
}

// Stats implements Checker.
func (c *Incremental) Stats() Stats { return c.stats }

// CloneFor implements Cloneable: the clone inherits the current labeling
// (an outer slice of IDs over the shared intern table) and the
// violating-initial bookkeeping, skipping the full relabel a fresh
// NewIncremental would perform. Epoch scratch, the Extend memo, and the
// token freelist are per-checker and start fresh.
func (c *Incremental) CloneFor(k2 *kripke.K) (Checker, error) {
	return &Incremental{
		labeler:  c.labeler.cloneFor(k2),
		isInit:   c.isInit, // never mutated after construction
		badInit:  append([]bool(nil), c.badInit...),
		badCount: c.badCount,
		minBad:   c.minBad,
	}, nil
}

var (
	_ Checker        = (*Incremental)(nil)
	_ Cloneable      = (*Incremental)(nil)
	_ Rebindable     = (*Incremental)(nil)
	_ DeltaInvariant = (*Incremental)(nil)
)
