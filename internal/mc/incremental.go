package mc

import (
	"sort"

	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
)

// Incremental is the paper's incremental model checker (Section 5.2):
// after an update changes the transitions of a set of states U, it
// relabels only the ancestors of U, processing them children-first and
// stopping propagation as soon as a state's label is unchanged. All
// bookkeeping is proportional to the relabeled region — never to the
// whole structure — and the set of violating initial states is maintained
// incrementally, so a whole Update costs O(|ancestors(U)| * 2^|phi|).
// Each Update returns an undo token so the synthesis search can backtrack
// cheaply.
type Incremental struct {
	*labeler
	isInit  map[int]bool
	badInit map[int]bool // initial states whose label refutes the spec
}

// NewIncremental builds the incremental checker and performs the initial
// full labeling.
func NewIncremental(k *kripke.K, spec *ltl.Formula) (Checker, error) {
	l, err := newLabeler(k, spec)
	if err != nil {
		return nil, err
	}
	l.relabelAll()
	c := &Incremental{labeler: l, isInit: map[int]bool{}, badInit: map[int]bool{}}
	for _, q0 := range k.Init() {
		c.isInit[q0] = true
		if c.initViolates(q0) {
			c.badInit[q0] = true
		}
	}
	return c, nil
}

func (c *Incremental) initViolates(q0 int) bool {
	for _, v := range c.label[q0] {
		if !c.clo.Holds(v) {
			return true
		}
	}
	return false
}

// Name implements Checker.
func (c *Incremental) Name() string { return "incremental" }

// Check implements Checker: labels and the violating-initial set are
// maintained incrementally, so a full check is a constant-time read plus
// counterexample extraction on failure.
func (c *Incremental) Check() Verdict {
	c.stats.Checks++
	if len(c.badInit) == 0 {
		return trueVerdict()
	}
	// Deterministic counterexample choice: smallest violating initial
	// state, first violating valuation in label order.
	bad := make([]int, 0, len(c.badInit))
	for q0 := range c.badInit {
		bad = append(bad, q0)
	}
	sortInts(bad)
	q0 := bad[0]
	for _, v := range c.label[q0] {
		if !c.clo.Holds(v) {
			return Verdict{OK: false, Cex: c.extractCex(q0, v), HasCex: true}
		}
	}
	// badInit said violating but the label disagrees: stale bookkeeping.
	panic("mc: inconsistent violating-initial-state set")
}

// incrToken records the labels and violation flags overwritten by one
// Update.
type incrToken struct {
	old     map[int][]ltl.Valuation
	badPrev map[int]bool // previous membership in badInit for touched inits
}

// Update implements Checker: relabel the ancestors of the changed states.
func (c *Incremental) Update(delta *kripke.Delta) (Verdict, Token) {
	changed := delta.Changed()
	tok := &incrToken{old: map[int][]ltl.Valuation{}, badPrev: map[int]bool{}}

	// Phase 1: collect the ancestors of the changed states (including
	// them) — the only states whose labels may differ. Work is bounded by
	// the size of the ancestor region.
	member := make(map[int]bool, 2*len(changed))
	stack := append([]int(nil), changed...)
	for _, v := range changed {
		member[v] = true
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range c.k.Pred(v) {
			if !member[p] {
				member[p] = true
				stack = append(stack, p)
			}
		}
	}

	// Phase 2: order the region children-first (postorder over successor
	// edges restricted to the region).
	order := make([]int, 0, len(member))
	visited := make(map[int]bool, len(member))
	var dfs func(v int)
	dfs = func(v int) {
		visited[v] = true
		for _, u := range c.k.Succ(v) {
			if member[u] && !visited[u] {
				dfs(u)
			}
		}
		order = append(order, v)
	}
	for _, v := range changed {
		if !visited[v] {
			dfs(v)
		}
	}
	for v := range member {
		if !visited[v] {
			dfs(v)
		}
	}

	// Phase 3: recompute labels children-first, stopping propagation when
	// a label is unchanged (the paper's early-stopping optimization).
	dirty := make(map[int]bool, len(changed))
	for _, v := range changed {
		dirty[v] = true
	}
	for _, v := range order {
		need := dirty[v]
		if !need {
			for _, s := range c.k.Succ(v) {
				if dirty[s] {
					need = true
					break
				}
			}
		}
		if !need {
			continue
		}
		nl := c.computeLabel(v)
		if labelsEqual(nl, c.label[v]) {
			dirty[v] = false
			continue
		}
		tok.old[v] = c.label[v]
		c.label[v] = nl
		dirty[v] = true
		if c.isInit[v] {
			if _, seen := tok.badPrev[v]; !seen {
				tok.badPrev[v] = c.badInit[v]
			}
			if c.initViolates(v) {
				c.badInit[v] = true
			} else {
				delete(c.badInit, v)
			}
		}
	}
	return c.Check(), tok
}

// Revert implements Checker.
func (c *Incremental) Revert(t Token) {
	tok := t.(*incrToken)
	for id, old := range tok.old {
		c.label[id] = old
	}
	for id, wasBad := range tok.badPrev {
		if wasBad {
			c.badInit[id] = true
		} else {
			delete(c.badInit, id)
		}
	}
}

// Stats implements Checker.
func (c *Incremental) Stats() Stats { return c.stats }

// CloneFor implements Cloneable: the clone inherits the current labeling
// (label slices are replaced, never mutated in place, so sharing the inner
// slices is safe) and the violating-initial bookkeeping, skipping the full
// relabel a fresh NewIncremental would perform.
func (c *Incremental) CloneFor(k2 *kripke.K) (Checker, error) {
	n := &Incremental{
		labeler: c.labeler.cloneFor(k2),
		isInit:  make(map[int]bool, len(c.isInit)),
		badInit: make(map[int]bool, len(c.badInit)),
	}
	for id := range c.isInit {
		n.isInit[id] = true
	}
	for id := range c.badInit {
		n.badInit[id] = true
	}
	return n, nil
}

var (
	_ Checker   = (*Incremental)(nil)
	_ Cloneable = (*Incremental)(nil)
)

// Labels exposes the label of a state for tests.
func (c *Incremental) Labels(id int) []ltl.Valuation { return c.label[id] }

// sortInts is a tiny helper kept for deterministic debugging output.
func sortInts(xs []int) { sort.Ints(xs) }
