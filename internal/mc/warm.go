package mc

import (
	"sync"

	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
)

// Warmth is the structure-independent cache a long-lived synthesis
// session shares across checkers and across syntheses: expanded LTL
// closures and interned label tables, keyed by formula text. Label sets
// are sets of closure valuations — they carry no reference to any
// particular Kripke structure — so every checker verifying the same
// formula can intern into one table, and a checker built over a fresh or
// rebound structure starts with every label it will ever compute already
// interned. A nil *Warmth is valid and means "no sharing": each checker
// builds private state, the one-shot behavior.
//
// Concurrency: the entry map is guarded by a mutex (construction-time
// only); the cached closures are immutable and the label tables are
// internally synchronized, so checkers on parallel search workers share
// them freely.
type Warmth struct {
	mu      sync.Mutex
	entries map[string]*warmEntry
}

type warmEntry struct {
	clo *ltl.Closure
	tab *LabelTable
}

// NewWarmth returns an empty cache.
func NewWarmth() *Warmth { return &Warmth{entries: map[string]*warmEntry{}} }

// Len reports the number of distinct formulas cached so far.
func (w *Warmth) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

// entry returns the shared closure and label table for spec, building
// them on first use.
func (w *Warmth) entry(spec *ltl.Formula) (*warmEntry, error) {
	key := spec.String()
	w.mu.Lock()
	defer w.mu.Unlock()
	if e, ok := w.entries[key]; ok {
		return e, nil
	}
	clo, err := ltl.NewClosure(spec)
	if err != nil {
		return nil, err
	}
	e := &warmEntry{clo: clo, tab: NewLabelTable()}
	w.entries[key] = e
	return e, nil
}

// WarmFactory constructs a checker that shares formula-keyed caches
// through w (which may be nil). Backends without structure-independent
// caches ignore w.
type WarmFactory func(k *kripke.K, spec *ltl.Formula, w *Warmth) (Checker, error)

// NewIncrementalWarm is NewIncremental drawing the closure and label
// table from w.
func NewIncrementalWarm(k *kripke.K, spec *ltl.Formula, w *Warmth) (Checker, error) {
	l, err := newLabelerWarm(k, spec, w)
	if err != nil {
		return nil, err
	}
	return newIncrementalFrom(l, k), nil
}

// NewBatchWarm is NewBatch drawing the closure and label table from w.
func NewBatchWarm(k *kripke.K, spec *ltl.Formula, w *Warmth) (Checker, error) {
	l, err := newLabelerWarm(k, spec, w)
	if err != nil {
		return nil, err
	}
	return &Batch{labeler: l}, nil
}
