package mc

import (
	"fmt"
	"sort"

	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
)

// The session-snapshot surface: exporting a label-based checker's warm
// state (the interned label tables plus the per-state label arrays) and
// rebuilding a checker from it without repeating the full initial
// relabel, which is what makes a snapshot restore cheap. Labels are
// structure-independent valuation sets, so they serialize as raw
// [2]uint64 words; per-state arrays serialize as IDs into the exporting
// table and are re-interned on restore (IDs are private to a table, so a
// restore into a shared, already-populated table remaps them).

// NoLabel is the exported sentinel for "state not labeled yet", for
// snapshot encoders that persist per-state label arrays.
const NoLabel = noLabel

// Export returns the table's current id->label view. The slice and the
// labels it holds are shared with the table and must not be mutated;
// index i is the label of LabelID(i).
func (t *LabelTable) Export() [][]ltl.Valuation { return t.snapshot() }

// Table returns the shared label table for spec, creating the entry on
// first use (so a restore can pre-populate warmth before any checker is
// built over it).
func (w *Warmth) Table(spec *ltl.Formula) (*LabelTable, error) {
	e, err := w.entry(spec)
	if err != nil {
		return nil, err
	}
	return e.tab, nil
}

// ForEach calls fn for every cached formula in sorted key order (the
// formula's String form), so snapshot encoders emit deterministically.
func (w *Warmth) ForEach(fn func(formula string, tab *LabelTable)) {
	w.mu.Lock()
	keys := make([]string, 0, len(w.entries))
	for k := range w.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tabs := make([]*LabelTable, len(keys))
	for i, k := range keys {
		tabs[i] = w.entries[k].tab
	}
	w.mu.Unlock()
	for i, k := range keys {
		fn(k, tabs[i])
	}
}

// LabelExporter is implemented by the label-based checkers (incremental,
// batch): it exposes the warm per-state labeling and the per-state
// atomic-subformula valuations for snapshotting. The returned slices
// alias checker state — callers must copy or encode them before the
// checker runs again.
type LabelExporter interface {
	ExportLabels() (label, sinkLab []LabelID)
	ExportAtoms() []ltl.Valuation
}

// ExportLabels implements LabelExporter for every checker embedding the
// labeler.
func (l *labeler) ExportLabels() ([]LabelID, []LabelID) { return l.label, l.sinkLab }

// ExportAtoms implements LabelExporter for every checker embedding the
// labeler, materializing a still-compressed restored image first.
func (l *labeler) ExportAtoms() []ltl.Valuation {
	l.ensureAtoms()
	return l.atoms
}

// AtomsImage is the sparse form of a per-state atom-valuation array, as a
// snapshot stores it: almost every state shares one default valuation
// (formula atoms name specific switches and ports, so most states look
// alike to them), and only the exceptions are listed. A restored labeler
// keeps the image and materializes the full array on first relabel
// (ensureAtoms), so a session resumed just to serve plan-cache hits never
// pays for the expansion.
type AtomsImage struct {
	N    int             // total states
	Def  ltl.Valuation   // valuation of every state not listed in IDs
	IDs  []int32         // exception state ids, strictly increasing
	Vals []ltl.Valuation // Vals[i] is the valuation of state IDs[i]
}

// materialize expands the image into the dense per-state array.
func (a *AtomsImage) materialize() []ltl.Valuation {
	atoms := make([]ltl.Valuation, a.N)
	for i := range atoms {
		atoms[i] = a.Def
	}
	for i, id := range a.IDs {
		atoms[id] = a.Vals[i]
	}
	return atoms
}

// newLabelerRestored builds a labeler over a snapshot's per-state arrays
// instead of sweeping the structure: the atoms image, label, and sinkLab
// are adopted, not copied (the decoder owns them and hands them over),
// which is what makes restore-time checker construction O(validate)
// rather than O(states x formula). allowUnset permits noLabel entries in
// the label array (the batch checker relabels on every check and
// tolerates gaps; the incremental checker reads labels eagerly and
// cannot).
func newLabelerRestored(k *kripke.K, spec *ltl.Formula, w *Warmth, atoms *AtomsImage, label, sinkLab []LabelID, allowUnset bool) (*labeler, error) {
	l, err := newLabelerShell(k, spec, w)
	if err != nil {
		return nil, err
	}
	n := k.NumStates()
	if atoms == nil || atoms.N != n {
		return nil, fmt.Errorf("mc: restore: atom image does not cover %d states", n)
	}
	if len(label) != n || len(sinkLab) != n {
		return nil, fmt.Errorf("mc: restore: %d/%d labels for %d states", len(label), len(sinkLab), n)
	}
	max := LabelID(l.tab.Len())
	for i := 0; i < n; i++ {
		if label[i] >= max || label[i] < noLabel || (label[i] == noLabel && !allowUnset) {
			return nil, fmt.Errorf("mc: restore: state %d label %d out of range [0,%d)", i, label[i], max)
		}
		if sinkLab[i] >= max || sinkLab[i] < noLabel {
			return nil, fmt.Errorf("mc: restore: state %d sink label %d out of range", i, sinkLab[i])
		}
	}
	l.atomsImg = atoms
	l.label = label
	l.sinkLab = sinkLab
	return l, nil
}

// NewIncrementalRestored is NewIncrementalWarm fed a snapshot labeling:
// the per-state atom valuations and labels are installed instead of
// recomputed, skipping both the atom sweep and the full-structure relabel
// that dominate warm-checker construction. The violating-initial
// bookkeeping is re-derived from the labels (a scan of the initial states
// only). label/sinkLab must index the warmth table of spec — i.e. they
// were remapped by the snapshot decoder if the table is shared — and
// every state must be labeled. All three slices are adopted.
func NewIncrementalRestored(k *kripke.K, spec *ltl.Formula, w *Warmth, atoms *AtomsImage, label, sinkLab []LabelID) (Checker, error) {
	l, err := newLabelerRestored(k, spec, w, atoms, label, sinkLab, false)
	if err != nil {
		return nil, err
	}
	return newIncrementalPrelabeled(l, k), nil
}

// NewBatchRestored is NewBatchWarm fed a snapshot labeling. The batch
// checker relabels on every Check, so the restored labels only pre-seed
// the sink-label cache and the intern table's working set.
func NewBatchRestored(k *kripke.K, spec *ltl.Formula, w *Warmth, atoms *AtomsImage, label, sinkLab []LabelID) (Checker, error) {
	l, err := newLabelerRestored(k, spec, w, atoms, label, sinkLab, true)
	if err != nil {
		return nil, err
	}
	return &Batch{labeler: l}, nil
}
