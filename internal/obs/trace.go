// Package obs is the zero-dependency observability layer: a low-overhead
// span recorder (Trace) threaded through the synthesis pipeline, a
// metrics registry (Registry) rendering the Prometheus text exposition
// format, and request-id propagation helpers shared by the serving
// stack. Everything here is hand-rolled over the standard library — the
// repo takes no dependencies — and everything is nil-safe: a nil *Trace
// turns every recording call into an immediate return, so instrumented
// code paths pay no time.Now call and no allocation when tracing is off.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// DefaultTraceSpans is the span capacity when NewTrace is given zero:
// enough for a decomposed synthesis over hundreds of components plus a
// few thousand executor events. Spans beyond capacity are counted
// (TraceData.Dropped), never grown past the bound.
const DefaultTraceSpans = 8192

// traceChunkSpans is the ring's allocation unit. Storage is a fixed
// table of lazily CAS-installed chunks rather than one flat slice, so a
// long-lived session trace that records a dozen spans per run keeps one
// ~12KB chunk live instead of the full capacity — preallocating the
// whole ring measurably costs the traced path in GC pressure, which is
// exactly what this layer must not do.
const traceChunkSpans = 256

// Trace records one request's span tree into a preallocated ring.
//
// Concurrency: Begin reserves a slot with an atomic counter, so spans
// may be opened from concurrent goroutines (the decomposed search fans
// component sub-searches out over worker goroutines); each reserved slot
// is written only by the goroutine that reserved it after its chunk is
// CAS-installed, and Snapshot must only be called after those goroutines
// have been joined — which is how every producer uses it: the session
// snapshots after its run (and its WaitGroup) completes.
type Trace struct {
	start     time.Time
	requestID string
	n         atomic.Int64 // spans begun, including dropped
	capacity  int          // chunks × traceChunkSpans
	chunks    []atomic.Pointer[traceChunk]
}

// traceChunk is one allocation unit of the span ring.
type traceChunk [traceChunkSpans]span

// span is one recorded interval. Times are nanosecond offsets from the
// trace start; dur < 0 marks a still-open span (Snapshot closes it at
// snapshot time).
type span struct {
	name   string
	detail string
	parent int32 // 1-based span id; 0 = root
	lane   int32 // Chrome "tid": 0 = main lane
	start  int64
	dur    int64
}

// NewTrace builds a trace with the given span capacity (0 means
// DefaultTraceSpans) whose clock starts now. Chunks are allocated as
// spans are recorded, so the constructed trace costs a few words until
// it is used.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceSpans
	}
	n := (capacity + traceChunkSpans - 1) / traceChunkSpans
	return &Trace{
		start:    time.Now(),
		capacity: capacity,
		chunks:   make([]atomic.Pointer[traceChunk], n),
	}
}

// slot returns the span cell for a reserved index, installing its chunk
// on first touch. Losing a concurrent install race just adopts the
// winner's chunk.
func (t *Trace) slot(idx int64) *span {
	c := &t.chunks[idx/traceChunkSpans]
	ch := c.Load()
	if ch == nil {
		fresh := new(traceChunk)
		if !c.CompareAndSwap(nil, fresh) {
			ch = c.Load()
		} else {
			ch = fresh
		}
	}
	return &ch[idx%traceChunkSpans]
}

// Reset discards every recorded span and restarts the clock; the ring is
// reused, so a per-session trace serves a stream of runs without
// reallocating. No-op on nil.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.n.Store(0)
	t.start = time.Now()
	t.requestID = ""
}

// SetRequestID stamps the trace with the request id its root span
// belongs to (see RequestIDHeader propagation in internal/server).
func (t *Trace) SetRequestID(id string) {
	if t == nil {
		return
	}
	t.requestID = id
}

// RequestID returns the stamped request id ("" when none or nil).
func (t *Trace) RequestID() string {
	if t == nil {
		return ""
	}
	return t.requestID
}

// Begin opens a span under parent (a previous Begin result; 0 for a
// root) and returns its 1-based id. On a nil trace — or once the ring is
// full — it returns 0, which every other method accepts as a no-op
// target, so callers never branch on enablement.
func (t *Trace) Begin(name string, parent int) int {
	return t.BeginLane(name, parent, 0)
}

// BeginLane is Begin onto a numbered lane: lanes render as separate
// Chrome-trace threads, which keeps concurrent component sub-searches
// from overlapping illegibly on one row.
func (t *Trace) BeginLane(name string, parent, lane int) int {
	if t == nil {
		return 0
	}
	idx := t.n.Add(1) - 1
	if idx >= int64(t.capacity) {
		return 0 // full: count the drop, record nothing
	}
	*t.slot(idx) = span{
		name:   name,
		parent: int32(parent),
		lane:   int32(lane),
		start:  int64(time.Since(t.start)),
		dur:    -1,
	}
	return int(idx) + 1
}

// End closes span id at now. Accepts 0 (from a disabled or full Begin).
func (t *Trace) End(id int) {
	if t == nil || id <= 0 {
		return
	}
	sp := t.slot(int64(id - 1))
	sp.dur = int64(time.Since(t.start)) - sp.start
}

// EndDetail is End plus a free-form detail annotation.
func (t *Trace) EndDetail(id int, detail string) {
	if t == nil || id <= 0 {
		return
	}
	sp := t.slot(int64(id - 1))
	sp.dur = int64(time.Since(t.start)) - sp.start
	sp.detail = detail
}

// SetDetail annotates an open or closed span.
func (t *Trace) SetDetail(id int, detail string) {
	if t == nil || id <= 0 {
		return
	}
	t.slot(int64(id - 1)).detail = detail
}

// RecordAt records a complete span with explicit start/end offsets from
// the trace origin instead of wall-clock reads. The simulator uses it to
// emit install/commit/retry events on the simulated clock, which is
// exactly the timeline a Chrome trace of a DAG execution should show.
func (t *Trace) RecordAt(name string, parent, lane int, start, end time.Duration, detail string) int {
	if t == nil {
		return 0
	}
	idx := t.n.Add(1) - 1
	if idx >= int64(t.capacity) {
		return 0
	}
	*t.slot(idx) = span{
		name:   name,
		detail: detail,
		parent: int32(parent),
		lane:   int32(lane),
		start:  int64(start),
		dur:    int64(end - start),
	}
	return int(idx) + 1
}

// Len reports the number of spans recorded (capped at capacity).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	n := int(t.n.Load())
	if n > t.capacity {
		n = t.capacity
	}
	return n
}

// Snapshot exports the recorded spans. Open spans are closed at snapshot
// time, so a mid-flight export (the repair path snapshots before its
// outer span ends) still renders.
func (t *Trace) Snapshot() *TraceData {
	if t == nil {
		return nil
	}
	now := int64(time.Since(t.start))
	n := t.Len()
	d := &TraceData{
		RequestID: t.requestID,
		Spans:     make([]SpanData, n),
	}
	if total := int(t.n.Load()); total > n {
		d.Dropped = total - n
	}
	for i := 0; i < n; i++ {
		sp := t.slot(int64(i))
		dur := sp.dur
		if dur < 0 {
			dur = now - sp.start
		}
		d.Spans[i] = SpanData{
			ID:      i + 1,
			Parent:  int(sp.parent),
			Lane:    int(sp.lane),
			Name:    sp.name,
			Detail:  sp.detail,
			StartUS: float64(sp.start) / 1e3,
			DurUS:   float64(dur) / 1e3,
		}
	}
	return d
}

// TraceData is the exported, wire- and file-serializable form of a
// trace: what Result.Trace carries and what the export writers consume.
type TraceData struct {
	RequestID string     `json:"requestId,omitempty"`
	Dropped   int        `json:"dropped,omitempty"`
	Spans     []SpanData `json:"spans"`
}

// SpanData is one exported span. Times are microseconds from the trace
// origin (the unit chrome://tracing uses natively).
type SpanData struct {
	ID      int     `json:"id"`
	Parent  int     `json:"parent,omitempty"` // 0 = root
	Lane    int     `json:"lane,omitempty"`
	Name    string  `json:"name"`
	Detail  string  `json:"detail,omitempty"`
	StartUS float64 `json:"startUs"`
	DurUS   float64 `json:"durUs"`
}

// Root returns the first root span's index, or -1.
func (d *TraceData) Root() int {
	for i := range d.Spans {
		if d.Spans[i].Parent == 0 {
			return i
		}
	}
	return -1
}

// WriteJSONL writes one span object per line (the streaming-friendly
// export behind netupdate -trace-out file.jsonl).
func (d *TraceData) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range d.Spans {
		if err := enc.Encode(&d.Spans[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteChrome writes one or more traces as a Chrome trace-event JSON
// array (complete "X" events), loadable directly in chrome://tracing or
// https://ui.perfetto.dev. Each trace renders as its own process; lanes
// render as threads within it.
func WriteChrome(w io.Writer, traces ...*TraceData) error {
	type chromeEvent struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args,omitempty"`
	}
	var evs []chromeEvent
	for pi, d := range traces {
		if d == nil {
			continue
		}
		for i := range d.Spans {
			sp := &d.Spans[i]
			ev := chromeEvent{
				Name: sp.Name, Cat: "netupdate", Ph: "X",
				TS: sp.StartUS, Dur: sp.DurUS,
				PID: pi + 1, TID: sp.Lane + 1,
			}
			if sp.Detail != "" || (sp.Parent == 0 && d.RequestID != "") {
				ev.Args = map[string]string{}
				if sp.Detail != "" {
					ev.Args["detail"] = sp.Detail
				}
				if sp.Parent == 0 && d.RequestID != "" {
					ev.Args["requestId"] = d.RequestID
				}
			}
			evs = append(evs, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// --- request-id propagation ---

// RequestIDHeader is the HTTP header carrying the request id across the
// serving stack: the router (netupdatelb) mints one for requests that
// arrive without it, the daemon echoes it on the response and threads it
// through the pool into each run's stats and trace.
const RequestIDHeader = "X-Netupdate-Request-Id"

type ctxKey int

const (
	ctxRequestID ctxKey = iota
	ctxTracing
)

// reqCounter backs NewRequestID when the system randomness source fails
// (it practically cannot; the fallback just keeps ids unique in-process).
var reqCounter atomic.Int64

// NewRequestID mints a 16-hex-digit request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%012x", reqCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID tags a context with the request id minted at (or
// forwarded by) the serving edge.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxRequestID, id)
}

// RequestIDFrom returns the context's request id, or "".
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxRequestID).(string)
	return id
}

// WithTracing marks the context as requesting a per-request trace
// (the daemon's ?trace=1); the pool attaches a trace ring to the
// tenant's session for exactly that request.
func WithTracing(ctx context.Context) context.Context {
	return context.WithValue(ctx, ctxTracing, true)
}

// TracingFrom reports whether the context requests a trace.
func TracingFrom(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	on, _ := ctx.Value(ctxTracing).(bool)
	return on
}
