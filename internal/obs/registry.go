package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is an ordered set of metric families rendered in the
// Prometheus text exposition format. It replaces the serving stack's
// ad-hoc counter fields: the pool and the router register their
// instruments once at construction, and /metrics renders whatever is
// registered — same names, same `# HELP` / `# TYPE` framing the
// hand-rolled writer emitted before.
type Registry struct {
	mu   sync.Mutex
	fams []*family
}

type family struct {
	name, help, typ string

	counter *Counter       // typ "counter" with an owned value
	fn      func() float64 // typ "counter" or "gauge" sampled at render
	hist    *Histogram     // typ "histogram"
	vec     *CounterVec    // typ "counter" with one label dimension
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(f *family) {
	r.mu.Lock()
	r.fams = append(r.fams, f)
	r.mu.Unlock()
}

// Counter registers and returns a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, typ: "counter", counter: c})
	return c
}

// Gauge registers a gauge whose value is sampled from fn at render time;
// used for instantaneous pool state (tenants, warm sessions, bytes held).
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: "gauge", fn: fn})
}

// FuncCounter registers a counter whose value lives elsewhere (e.g. the
// shared learning registry's totals) and is sampled at render time.
func (r *Registry) FuncCounter(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: "counter", fn: fn})
}

// Histogram registers and returns a latency histogram over the default
// log-spaced buckets (100µs … 10s, 1–2.5–5 per decade).
func (r *Registry) Histogram(name, help string) *Histogram {
	h := newHistogram(defaultLatencyBuckets)
	r.add(&family{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// CounterVec registers and returns a counter family with one label
// dimension (the per-tenant series).
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, vals: map[string]*Counter{}}
	r.add(&family{name: name, help: help, typ: "counter", vec: v})
	return v
}

// WritePrometheus renders every registered family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		switch {
		case f.counter != nil:
			fmt.Fprintf(w, "%s %d\n", f.name, f.counter.Value())
		case f.fn != nil:
			fmt.Fprintf(w, "%s %g\n", f.name, f.fn())
		case f.hist != nil:
			f.hist.write(w, f.name)
		case f.vec != nil:
			f.vec.write(w, f.name)
		}
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to preserve monotonicity).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a set of counters keyed by one label value.
type CounterVec struct {
	label string
	mu    sync.Mutex
	vals  map[string]*Counter
}

// With returns (creating if needed) the counter for a label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	c := v.vals[value]
	if c == nil {
		c = &Counter{}
		v.vals[value] = c
	}
	v.mu.Unlock()
	return c
}

func (v *CounterVec) write(w io.Writer, name string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, v.label, k, v.vals[k].Value())
	}
	v.mu.Unlock()
}

// defaultLatencyBuckets spans the serving stack's dynamic range — a plan
// cache hit replays in well under a millisecond, a cold decomposed
// synthesis can take seconds — with 1–2.5–5 steps per decade.
var defaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with atomic counters;
// Observe is lock-free and allocation-free.
type Histogram struct {
	bounds []float64 // upper bounds, seconds, ascending
	counts []atomic.Int64
	inf    atomic.Int64
	sumNS  atomic.Int64
	n      atomic.Int64
	maxNS  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	placed := false
	for i, b := range h.bounds {
		if s <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	ns := d.Nanoseconds()
	h.sumNS.Add(ns)
	h.n.Add(1)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.n.Load() }

// SumSeconds returns the sum of all observed samples in seconds.
func (h *Histogram) SumSeconds() float64 { return float64(h.sumNS.Load()) / 1e9 }

// SumNanos returns the sum of all observed samples in nanoseconds.
func (h *Histogram) SumNanos() int64 { return h.sumNS.Load() }

// MaxNanos returns the largest observed sample in nanoseconds.
func (h *Histogram) MaxNanos() int64 { return h.maxNS.Load() }

func (h *Histogram) write(w io.Writer, name string) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.SumSeconds())
	fmt.Fprintf(w, "%s_count %d\n", name, h.n.Load())
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
