package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Reset()
	tr.SetRequestID("x")
	if got := tr.RequestID(); got != "" {
		t.Fatalf("nil RequestID = %q", got)
	}
	id := tr.Begin("a", 0)
	if id != 0 {
		t.Fatalf("nil Begin = %d, want 0", id)
	}
	tr.End(id)
	tr.EndDetail(id, "d")
	tr.SetDetail(id, "d")
	if tr.RecordAt("b", 0, 0, 0, time.Millisecond, "") != 0 {
		t.Fatal("nil RecordAt != 0")
	}
	if tr.Len() != 0 {
		t.Fatal("nil Len != 0")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil Snapshot != nil")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace(16)
	tr.SetRequestID("rid-1")
	root := tr.Begin("synthesize", 0)
	child := tr.Begin("search", root)
	tr.End(child)
	tr.EndDetail(root, "steps=3")
	d := tr.Snapshot()
	if d.RequestID != "rid-1" {
		t.Fatalf("RequestID = %q", d.RequestID)
	}
	if len(d.Spans) != 2 {
		t.Fatalf("len(Spans) = %d", len(d.Spans))
	}
	if d.Spans[0].Name != "synthesize" || d.Spans[0].Parent != 0 {
		t.Fatalf("root span = %+v", d.Spans[0])
	}
	if d.Spans[1].Name != "search" || d.Spans[1].Parent != d.Spans[0].ID {
		t.Fatalf("child span = %+v", d.Spans[1])
	}
	if d.Spans[0].Detail != "steps=3" {
		t.Fatalf("detail = %q", d.Spans[0].Detail)
	}
	if d.Root() != 0 {
		t.Fatalf("Root() = %d", d.Root())
	}
	if d.Spans[1].DurUS < 0 || d.Spans[1].StartUS < d.Spans[0].StartUS {
		t.Fatalf("span times: %+v", d.Spans)
	}
}

func TestOpenSpanClosedAtSnapshot(t *testing.T) {
	tr := NewTrace(4)
	tr.Begin("open", 0)
	d := tr.Snapshot()
	if d.Spans[0].DurUS < 0 {
		t.Fatalf("open span exported with dur %v", d.Spans[0].DurUS)
	}
}

func TestRingOverflowCountsDrops(t *testing.T) {
	tr := NewTrace(2)
	a := tr.Begin("a", 0)
	b := tr.Begin("b", a)
	c := tr.Begin("c", a)
	if a == 0 || b == 0 {
		t.Fatalf("in-capacity Begin returned 0: %d %d", a, b)
	}
	if c != 0 {
		t.Fatalf("overflow Begin = %d, want 0", c)
	}
	tr.End(c) // must not panic
	d := tr.Snapshot()
	if len(d.Spans) != 2 || d.Dropped != 1 {
		t.Fatalf("spans=%d dropped=%d", len(d.Spans), d.Dropped)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	if tr.Begin("again", 0) == 0 {
		t.Fatal("Begin after Reset dropped")
	}
}

func TestConcurrentBegin(t *testing.T) {
	tr := NewTrace(1024)
	root := tr.Begin("root", 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := tr.BeginLane("w", root, lane)
				tr.End(id)
			}
		}(g + 1)
	}
	wg.Wait()
	d := tr.Snapshot()
	if len(d.Spans) != 801 {
		t.Fatalf("got %d spans, want 801", len(d.Spans))
	}
	for _, sp := range d.Spans[1:] {
		if sp.Parent != root {
			t.Fatalf("span %+v has wrong parent", sp)
		}
	}
}

func TestRecordAtUsesExplicitClock(t *testing.T) {
	tr := NewTrace(4)
	tr.RecordAt("install", 0, 3, 2*time.Millisecond, 7*time.Millisecond, "sw=3")
	d := tr.Snapshot()
	sp := d.Spans[0]
	if sp.StartUS != 2000 || sp.DurUS != 5000 || sp.Lane != 3 || sp.Detail != "sw=3" {
		t.Fatalf("RecordAt span = %+v", sp)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTrace(8)
	tr.SetRequestID("rid-9")
	root := tr.Begin("synthesize", 0)
	tr.EndDetail(tr.Begin("search", root), "units=4")
	tr.End(root)
	sim := NewTrace(8)
	sim.RecordAt("install", 0, 1, 0, time.Millisecond, "sw=0")

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot(), sim.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for _, ev := range evs {
		if ev["ph"] != "X" {
			t.Fatalf("event phase = %v", ev["ph"])
		}
	}
	if args, ok := evs[0]["args"].(map[string]any); !ok || args["requestId"] != "rid-9" {
		t.Fatalf("root event missing requestId: %v", evs[0])
	}
	if evs[2]["pid"].(float64) != 2 {
		t.Fatalf("second trace should render as pid 2: %v", evs[2])
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTrace(8)
	tr.End(tr.Begin("a", 0))
	tr.End(tr.Begin("b", 0))
	var buf bytes.Buffer
	if err := tr.Snapshot().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var sp SpanData
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d JSONL lines, want 2", lines)
	}
}

func TestRequestIDContext(t *testing.T) {
	id := NewRequestID()
	if len(id) != 16 || strings.ContainsAny(id, " \n") {
		t.Fatalf("NewRequestID = %q", id)
	}
	if id == NewRequestID() {
		t.Fatal("request ids collide")
	}
	ctx := WithRequestID(context.Background(), id)
	if got := RequestIDFrom(ctx); got != id {
		t.Fatalf("RequestIDFrom = %q", got)
	}
	if RequestIDFrom(context.Background()) != "" {
		t.Fatal("empty ctx has request id")
	}
	if TracingFrom(ctx) {
		t.Fatal("tracing set unexpectedly")
	}
	if !TracingFrom(WithTracing(ctx)) {
		t.Fatal("WithTracing not visible")
	}
}
