package obs

import (
	"net/http"
	"net/http/pprof"
)

// PprofHandler returns the standard net/http/pprof surface mounted on a
// fresh mux. The daemons expose it on an opt-in diagnostics listener
// (-pprof addr) rather than registering pprof on their serving mux, so
// profiling never rides on a port exposed to clients.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
