package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRegistryRendersCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "Things.")
	c.Add(3)
	c.Inc()
	r.Gauge("x_live", "Live things.", func() float64 { return 2.5 })
	r.FuncCounter("x_derived_total", "Derived things.", func() float64 { return 7 })

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP x_total Things.\n# TYPE x_total counter\nx_total 4\n",
		"# HELP x_live Live things.\n# TYPE x_live gauge\nx_live 2.5\n",
		"# TYPE x_derived_total counter\nx_derived_total 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Registration order is preserved.
	if strings.Index(out, "x_total") > strings.Index(out, "x_live") {
		t.Fatalf("families out of registration order:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.")
	h.Observe(200 * time.Microsecond) // le 0.00025
	h.Observe(200 * time.Microsecond)
	h.Observe(30 * time.Millisecond) // le 0.05
	h.Observe(30 * time.Second)      // +Inf

	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	wantSum := 2*0.0002 + 0.03 + 30
	if got := h.SumSeconds(); got < wantSum-1e-9 || got > wantSum+1e-9 {
		t.Fatalf("SumSeconds = %v, want %v", got, wantSum)
	}
	if h.MaxNanos() != (30 * time.Second).Nanoseconds() {
		t.Fatalf("MaxNanos = %d", h.MaxNanos())
	}

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		"lat_seconds_bucket{le=\"0.0001\"} 0\n",
		"lat_seconds_bucket{le=\"0.00025\"} 2\n",
		"lat_seconds_bucket{le=\"0.05\"} 3\n", // cumulative
		"lat_seconds_bucket{le=\"10\"} 3\n",
		"lat_seconds_bucket{le=\"+Inf\"} 4\n",
		"lat_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("tenant_requests_total", "Per-tenant requests.", "tenant")
	v.With("b").Add(2)
	v.With("a").Inc()
	v.With("b").Inc()

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	ia := strings.Index(out, `tenant_requests_total{tenant="a"} 1`)
	ib := strings.Index(out, `tenant_requests_total{tenant="b"} 3`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("vec rendering wrong (a@%d b@%d):\n%s", ia, ib, out)
	}
}
