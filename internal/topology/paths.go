package topology

// ShortestPath returns a shortest switch path from a to b (inclusive) via
// breadth-first search, or nil if b is unreachable. avoid lists interior
// switches the path must not use (endpoints are always allowed). Callers
// issuing many queries (workload generators) should hold a PathFinder
// instead: this convenience wrapper allocates fresh scratch per call.
func (t *Topology) ShortestPath(a, b int, avoid ...int) []int {
	p := t.NewPathFinder().Shortest(nil, a, b, avoid)
	if len(p) == 0 {
		return nil
	}
	return p
}

// PathFinder runs repeated shortest-path queries over one topology with
// reusable scratch (epoch-stamped ban marks, the BFS predecessor array,
// and the queue), so a generator probing hundreds of candidate routes
// allocates almost nothing. Not safe for concurrent use; create one per
// goroutine.
type PathFinder struct {
	t      *Topology
	banned []int32
	gen    int32
	prev   []int
	queue  []int
}

// NewPathFinder returns a finder with scratch sized to the topology.
func (t *Topology) NewPathFinder() *PathFinder {
	return &PathFinder{
		t:      t,
		banned: make([]int32, t.n),
		prev:   make([]int, t.n),
	}
}

// Shortest appends a shortest switch path from a to b (inclusive) to dst
// and returns the extended slice; dst is returned unchanged if b is
// unreachable. avoid lists interior switches the path must not use
// (endpoints are always allowed). The search order matches ShortestPath
// exactly, so both produce identical paths.
func (f *PathFinder) Shortest(dst []int, a, b int, avoid []int) []int {
	f.gen++
	if f.gen == 1<<31-1 {
		clear(f.banned)
		f.gen = 1
	}
	for _, v := range avoid {
		f.banned[v] = f.gen
	}
	if a == b {
		return append(dst, a)
	}
	prev := f.prev
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := append(f.queue[:0], a)
	defer func() { f.queue = queue[:0] }()
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, l := range f.t.adj[v] {
			u := l.Peer
			if prev[u] != -1 {
				continue
			}
			if f.banned[u] == f.gen && u != b {
				continue
			}
			prev[u] = v
			if u == b {
				return appendPath(dst, prev, a, b)
			}
			queue = append(queue, u)
		}
	}
	return dst
}

// appendPath reconstructs the a..b path from the predecessor array,
// appending it to dst in forward order.
func appendPath(dst []int, prev []int, a, b int) []int {
	start := len(dst)
	for v := b; v != a; v = prev[v] {
		dst = append(dst, v)
	}
	dst = append(dst, a)
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// DisjointPaths returns two internally node-disjoint paths from a to b
// (sharing only the endpoints), or ok=false if no such pair exists. It
// runs two rounds of augmenting-path search on the node-split flow network
// (each interior switch has capacity one), so it finds a disjoint pair
// whenever one exists (Menger's theorem).
func (t *Topology) DisjointPaths(a, b int) (p1, p2 []int, ok bool) {
	if a == b {
		return nil, nil, false
	}
	// Node-split graph: node v becomes v_in (2v) and v_out (2v+1) joined by
	// an internal arc of capacity 1 (infinite for the endpoints). Each
	// undirected link {u,v} becomes arcs u_out->v_in and v_out->u_in.
	type arc struct {
		to, rev int // rev indexes the reverse arc in arcs[to]
		cap     int
	}
	nn := 2 * t.n
	arcs := make([][]arc, nn)
	addArc := func(u, v, c int) {
		arcs[u] = append(arcs[u], arc{to: v, rev: len(arcs[v]), cap: c})
		arcs[v] = append(arcs[v], arc{to: u, rev: len(arcs[u]) - 1, cap: 0})
	}
	in := func(v int) int { return 2 * v }
	out := func(v int) int { return 2*v + 1 }
	for v := 0; v < t.n; v++ {
		c := 1
		if v == a || v == b {
			c = 2
		}
		addArc(in(v), out(v), c)
	}
	for v := 0; v < t.n; v++ {
		for _, l := range t.adj[v] {
			addArc(out(v), in(l.Peer), 1)
		}
	}
	src, dst := out(a), in(b)
	augment := func() bool {
		prevNode := make([]int, nn)
		prevArc := make([]int, nn)
		for i := range prevNode {
			prevNode[i] = -1
		}
		prevNode[src] = src
		queue := []int{src}
		for len(queue) > 0 && prevNode[dst] == -1 {
			u := queue[0]
			queue = queue[1:]
			for i, e := range arcs[u] {
				if e.cap > 0 && prevNode[e.to] == -1 {
					prevNode[e.to] = u
					prevArc[e.to] = i
					queue = append(queue, e.to)
				}
			}
		}
		if prevNode[dst] == -1 {
			return false
		}
		for v := dst; v != src; v = prevNode[v] {
			u := prevNode[v]
			e := &arcs[u][prevArc[v]]
			e.cap--
			arcs[e.to][e.rev].cap++
		}
		return true
	}
	if !augment() || !augment() {
		return nil, nil, false
	}
	// Decode the two unit flows: follow saturated arcs from a.
	used := make(map[[2]int]bool) // consumed flow arcs (u_out -> v_in)
	walk := func() []int {
		path := []int{a}
		v := a
		for v != b {
			found := false
			for _, e := range arcs[out(v)] {
				// A forward arc out(v)->in(u) carried flow iff its capacity
				// dropped to zero (forward arcs start at cap 1). Skip the
				// residual of the internal arc in(v)->out(v), which also
				// lives here and points back at in(v).
				if e.to%2 == 0 && e.to/2 != v && e.cap == 0 && !used[[2]int{out(v), e.to}] {
					u := e.to / 2
					used[[2]int{out(v), e.to}] = true
					path = append(path, u)
					v = u
					found = true
					break
				}
			}
			if !found {
				return nil
			}
		}
		return path
	}
	p1 = walk()
	p2 = walk()
	if p1 == nil || p2 == nil {
		return nil, nil, false
	}
	return p1, p2, true
}

// Diameter returns the switch-graph diameter (longest shortest path), or
// -1 if the graph is disconnected.
func (t *Topology) Diameter() int {
	diam := 0
	dist := make([]int, t.n)
	for s := 0; s < t.n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		seen := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, l := range t.adj[v] {
				if dist[l.Peer] == -1 {
					dist[l.Peer] = dist[v] + 1
					if dist[l.Peer] > diam {
						diam = dist[l.Peer]
					}
					seen++
					queue = append(queue, l.Peer)
				}
			}
		}
		if seen != t.n {
			return -1
		}
	}
	return diam
}
