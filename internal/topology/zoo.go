package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// The Internet Topology Zoo [Knight et al. 2011] is a dataset of 261 real
// wide-area network graphs used in the paper's evaluation (Figure 7a/7d).
// The dataset itself is not redistributable here, so ZooLike generates
// WAN-style stand-ins: sparse, irregular graphs built from a random
// spanning tree plus a small number of shortcut links, with sizes drawn
// from a distribution matching the published zoo statistics (4 to ~700
// nodes, median around 20-40, mean degree a bit over 2). See DESIGN.md.

// ZooCount is the number of topologies in the simulated zoo dataset,
// matching the size of the real Topology Zoo.
const ZooCount = 261

// ZooSizes returns the switch counts of the simulated zoo dataset in
// ascending order. The distribution is deterministic.
func ZooSizes() []int {
	r := rand.New(rand.NewSource(0x200))
	sizes := make([]int, ZooCount)
	for i := range sizes {
		// Log-normal-ish: most networks small, a long tail of large ones.
		v := 4 + int(expRand(r, 28))
		if i%26 == 0 { // sprinkle the large WANs
			v = 150 + r.Intn(550)
		}
		if v > 754 {
			v = 754
		}
		sizes[i] = v
	}
	sort.Ints(sizes)
	return sizes
}

func expRand(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// ZooLike generates the i-th topology of the simulated zoo dataset
// (0 <= i < ZooCount). One host is attached to every switch.
func ZooLike(i int) *Topology {
	sizes := ZooSizes()
	if i < 0 || i >= len(sizes) {
		panic(fmt.Sprintf("topology: ZooLike(%d) out of range [0,%d)", i, len(sizes)))
	}
	return WAN(fmt.Sprintf("zoo-%03d", i), sizes[i], int64(0x9e3779b9+i))
}

// WAN generates a wide-area-network-style graph: a random spanning tree
// with preferential attachment plus ~25% extra shortcut links, giving mean
// degree ≈ 2.5 and tree-like structure with occasional meshes — the shape
// of real Topology Zoo graphs. One host is attached to every switch.
func WAN(name string, n int, seed int64) *Topology {
	if n < 2 {
		panic(fmt.Sprintf("topology: WAN(%d): need at least 2 switches", n))
	}
	r := rand.New(rand.NewSource(seed))
	t := New(name, n)
	// Random spanning tree with mild preferential attachment: new node
	// joins an existing node chosen with probability proportional to
	// degree+1, which yields the hub-and-spoke patterns of real WANs.
	weights := make([]int, n)
	total := 0
	attach := func(v int) int {
		x := r.Intn(total)
		for u := 0; u < v; u++ {
			x -= weights[u]
			if x < 0 {
				return u
			}
		}
		return v - 1
	}
	weights[0] = 1
	total = 1
	for v := 1; v < n; v++ {
		u := attach(v)
		t.AddLink(u, v)
		weights[u]++
		weights[v] = 1
		total += 2
	}
	// Extra shortcut links (~ n/4), avoiding duplicates.
	extra := n / 4
	for i := 0; i < extra; i++ {
		for attempt := 0; attempt < 8; attempt++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b || t.HasLink(a, b) {
				continue
			}
			t.AddLink(a, b)
			break
		}
	}
	for v := 0; v < n; v++ {
		t.AddHost(v, v)
	}
	return t
}

// Abilene returns the real Abilene research network (Internet2), an
// 11-node topology from the Topology Zoo, as a concrete real-world sample.
func Abilene() *Topology {
	// Nodes: 0 Seattle, 1 Sunnyvale, 2 Los Angeles, 3 Denver, 4 Kansas City,
	// 5 Houston, 6 Atlanta, 7 Indianapolis, 8 Chicago, 9 Washington DC,
	// 10 New York.
	t := New("abilene", 11)
	links := [][2]int{
		{0, 1}, {0, 3}, {1, 2}, {1, 3}, {2, 5}, {3, 4}, {4, 5}, {4, 7},
		{5, 6}, {6, 7}, {6, 9}, {7, 8}, {8, 10}, {9, 10},
	}
	for _, l := range links {
		t.AddLink(l[0], l[1])
	}
	for v := 0; v < 11; v++ {
		t.AddHost(v, v)
	}
	return t
}
