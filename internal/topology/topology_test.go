package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddLinkAllocatesPorts(t *testing.T) {
	topo := New("t", 3)
	pa, pb := topo.AddLink(0, 1)
	if pa != 1 || pb != 1 {
		t.Fatalf("first link ports = (%d,%d), want (1,1)", pa, pb)
	}
	pa2, pc := topo.AddLink(0, 2)
	if pa2 != 2 || pc != 1 {
		t.Fatalf("second link ports = (%d,%d), want (2,1)", pa2, pc)
	}
	if topo.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2", topo.NumLinks())
	}
	if !topo.HasLink(0, 1) || !topo.HasLink(1, 0) || topo.HasLink(1, 2) {
		t.Fatal("HasLink inconsistent")
	}
	l, ok := topo.LinkAt(0, pa2)
	if !ok || l.Peer != 2 || l.PeerPort != pc {
		t.Fatalf("LinkAt(0,%d) = %+v, %v", pa2, l, ok)
	}
	if _, ok := topo.LinkAt(0, 99); ok {
		t.Fatal("LinkAt on missing port should fail")
	}
}

func TestHosts(t *testing.T) {
	topo := New("t", 2)
	topo.AddLink(0, 1)
	h := topo.AddHost(7, 0)
	if h.Port != 2 {
		t.Fatalf("host port = %d, want 2 (after link port)", h.Port)
	}
	got, ok := topo.HostByID(7)
	if !ok || got != h {
		t.Fatalf("HostByID = %+v, %v", got, ok)
	}
	if _, ok := topo.HostByID(8); ok {
		t.Fatal("HostByID(8) should fail")
	}
	hp, ok := topo.HostAtPort(0, h.Port)
	if !ok || hp.ID != 7 {
		t.Fatalf("HostAtPort = %+v, %v", hp, ok)
	}
	if hs := topo.HostsOn(0); len(hs) != 1 || hs[0].ID != 7 {
		t.Fatalf("HostsOn(0) = %v", hs)
	}
	if hs := topo.HostsOn(1); len(hs) != 0 {
		t.Fatalf("HostsOn(1) = %v, want empty", hs)
	}
}

func TestShortestPath(t *testing.T) {
	topo := New("line", 5)
	for i := 0; i < 4; i++ {
		topo.AddLink(i, i+1)
	}
	p := topo.ShortestPath(0, 4)
	if len(p) != 5 || p[0] != 0 || p[4] != 4 {
		t.Fatalf("path = %v", p)
	}
	if p := topo.ShortestPath(2, 2); len(p) != 1 || p[0] != 2 {
		t.Fatalf("self path = %v", p)
	}
	if p := topo.ShortestPath(0, 4, 2); p != nil {
		t.Fatalf("avoiding the cut vertex should fail, got %v", p)
	}
	topo2 := New("disconnected", 3)
	topo2.AddLink(0, 1)
	if p := topo2.ShortestPath(0, 2); p != nil {
		t.Fatalf("unreachable path = %v", p)
	}
}

func validatePath(t *testing.T, topo *Topology, p []int, a, b int) {
	t.Helper()
	if len(p) == 0 || p[0] != a || p[len(p)-1] != b {
		t.Fatalf("bad endpoints: %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !topo.HasLink(p[i], p[i+1]) {
			t.Fatalf("non-adjacent hop %d-%d in %v", p[i], p[i+1], p)
		}
	}
}

func TestDisjointPathsDiamond(t *testing.T) {
	// 0 - 1 - 3 and 0 - 2 - 3.
	topo := New("diamond", 4)
	topo.AddLink(0, 1)
	topo.AddLink(1, 3)
	topo.AddLink(0, 2)
	topo.AddLink(2, 3)
	p1, p2, ok := topo.DisjointPaths(0, 3)
	if !ok {
		t.Fatal("diamond should have disjoint paths")
	}
	validatePath(t, topo, p1, 0, 3)
	validatePath(t, topo, p2, 0, 3)
	interior := map[int]bool{}
	for _, v := range p1[1 : len(p1)-1] {
		interior[v] = true
	}
	for _, v := range p2[1 : len(p2)-1] {
		if interior[v] {
			t.Fatalf("paths share interior node %d: %v %v", v, p1, p2)
		}
	}
}

func TestDisjointPathsLineFails(t *testing.T) {
	topo := New("line", 3)
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	if _, _, ok := topo.DisjointPaths(0, 2); ok {
		t.Fatal("line graph cannot have two disjoint paths")
	}
	if _, _, ok := topo.DisjointPaths(1, 1); ok {
		t.Fatal("self pair should fail")
	}
}

func TestDisjointPathsRandom(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(20)
		topo := WAN("rand", n, seed)
		a, b := r.Intn(n), r.Intn(n)
		if a == b {
			return true
		}
		p1, p2, ok := topo.DisjointPaths(a, b)
		if !ok {
			return true // absence is allowed; presence must be valid
		}
		if p1[0] != a || p2[0] != a || p1[len(p1)-1] != b || p2[len(p2)-1] != b {
			return false
		}
		for i := 0; i+1 < len(p1); i++ {
			if !topo.HasLink(p1[i], p1[i+1]) {
				return false
			}
		}
		for i := 0; i+1 < len(p2); i++ {
			if !topo.HasLink(p2[i], p2[i+1]) {
				return false
			}
		}
		interior := map[int]bool{}
		for _, v := range p1[1 : len(p1)-1] {
			if interior[v] {
				return false // repeated node within the path
			}
			interior[v] = true
		}
		for _, v := range p2[1 : len(p2)-1] {
			if interior[v] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFatTreeStructure(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8} {
		topo, roles := FatTree(k)
		half := k / 2
		wantSwitches := half*half + k*k
		if topo.NumSwitches() != wantSwitches {
			t.Fatalf("k=%d: switches = %d, want %d", k, topo.NumSwitches(), wantSwitches)
		}
		// Link count: per pod (k/2)^2 edge-agg + (k/2)^2 agg-core.
		wantLinks := k*half*half + k*half*half
		if topo.NumLinks() != wantLinks {
			t.Fatalf("k=%d: links = %d, want %d", k, topo.NumLinks(), wantLinks)
		}
		if !topo.Connected() {
			t.Fatalf("k=%d: fat tree disconnected", k)
		}
		if len(roles.Core) != half*half || len(roles.Agg) != k || len(roles.Edge) != k {
			t.Fatalf("k=%d: bad roles %+v", k, roles)
		}
		// Every edge switch connects to every agg in its pod.
		for p := 0; p < k; p++ {
			for _, e := range roles.Edge[p] {
				for _, a := range roles.Agg[p] {
					if !topo.HasLink(e, a) {
						t.Fatalf("k=%d: missing pod link %d-%d", k, e, a)
					}
				}
			}
		}
		if len(topo.Hosts()) != k*half {
			t.Fatalf("k=%d: hosts = %d, want %d", k, len(topo.Hosts()), k*half)
		}
	}
}

func TestFatTreeForSize(t *testing.T) {
	topo, roles := FatTreeForSize(50)
	if topo.NumSwitches() < 50 {
		t.Fatalf("FatTreeForSize(50) gave %d switches", topo.NumSwitches())
	}
	if roles.K != 8 { // 6: 45 switches; 8: 80 switches
		t.Fatalf("FatTreeForSize(50) used k=%d, want 8", roles.K)
	}
}

func TestFatTreePanicsOnOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FatTree(3) should panic")
		}
	}()
	FatTree(3)
}

func TestSmallWorldProperties(t *testing.T) {
	for _, n := range []int{10, 50, 200} {
		topo := SmallWorld(n, 4, 0.3, 42)
		if topo.NumSwitches() != n {
			t.Fatalf("n=%d: switches = %d", n, topo.NumSwitches())
		}
		if !topo.Connected() {
			t.Fatalf("n=%d: small world disconnected", n)
		}
		if len(topo.Hosts()) != n {
			t.Fatalf("n=%d: hosts = %d", n, len(topo.Hosts()))
		}
		// No duplicate links or self loops.
		for v := 0; v < n; v++ {
			seen := map[int]bool{}
			for _, l := range topo.Neighbors(v) {
				if l.Peer == v {
					t.Fatalf("self loop at %d", v)
				}
				if seen[l.Peer] {
					t.Fatalf("duplicate link %d-%d", v, l.Peer)
				}
				seen[l.Peer] = true
			}
		}
	}
}

func TestSmallWorldDeterministic(t *testing.T) {
	a := SmallWorld(30, 4, 0.5, 7)
	b := SmallWorld(30, 4, 0.5, 7)
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("same seed must give same graph")
	}
	for v := 0; v < 30; v++ {
		la, lb := a.Neighbors(v), b.Neighbors(v)
		if len(la) != len(lb) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("link mismatch at %d[%d]", v, i)
			}
		}
	}
}

func TestZooSizesDistribution(t *testing.T) {
	sizes := ZooSizes()
	if len(sizes) != ZooCount {
		t.Fatalf("len = %d, want %d", len(sizes), ZooCount)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatal("sizes not sorted")
		}
	}
	if sizes[0] < 4 {
		t.Fatalf("min size %d < 4", sizes[0])
	}
	if sizes[len(sizes)-1] < 300 {
		t.Fatalf("max size %d; want a large-WAN tail", sizes[len(sizes)-1])
	}
	// Median should be modest like the real zoo.
	med := sizes[len(sizes)/2]
	if med < 8 || med > 80 {
		t.Fatalf("median %d outside zoo-like range", med)
	}
}

func TestZooLikeConnectedAndSparse(t *testing.T) {
	for _, i := range []int{0, 50, 130, 260} {
		topo := ZooLike(i)
		if !topo.Connected() {
			t.Fatalf("zoo %d disconnected", i)
		}
		n := topo.NumSwitches()
		meanDeg := float64(2*topo.NumLinks()) / float64(n)
		if meanDeg > 4.0 {
			t.Fatalf("zoo %d too dense: mean degree %.2f", i, meanDeg)
		}
	}
}

func TestAbilene(t *testing.T) {
	topo := Abilene()
	if topo.NumSwitches() != 11 || topo.NumLinks() != 14 {
		t.Fatalf("abilene: %d switches %d links", topo.NumSwitches(), topo.NumLinks())
	}
	if !topo.Connected() {
		t.Fatal("abilene disconnected")
	}
	if d := topo.Diameter(); d != 5 {
		t.Fatalf("abilene diameter = %d, want 5", d)
	}
}

func TestWANConnected(t *testing.T) {
	for _, n := range []int{2, 5, 40, 300} {
		topo := WAN("w", n, int64(n))
		if !topo.Connected() {
			t.Fatalf("WAN(%d) disconnected", n)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	topo := New("d", 3)
	topo.AddLink(0, 1)
	if d := topo.Diameter(); d != -1 {
		t.Fatalf("Diameter = %d, want -1", d)
	}
}
