package topology

import "fmt"

// FatTreeRoles records which switches play which role in a k-ary fat tree.
type FatTreeRoles struct {
	K    int
	Core []int   // (k/2)^2 core switches
	Agg  [][]int // per pod: k/2 aggregation switches
	Edge [][]int // per pod: k/2 edge (top-of-rack) switches
}

// FatTree builds the k-ary fat-tree datacenter topology of Al-Fares et al.
// [SIGCOMM 2008], the "FatTree" dataset of the paper's evaluation. k must
// be even and >= 2. Switch ids are assigned core first, then per pod
// aggregation then edge. One host is attached to every edge switch (hosts
// get ids 0,1,2,... in edge order); callers needing more hosts can attach
// them afterwards.
func FatTree(k int) (*Topology, *FatTreeRoles) {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topology: FatTree(%d): k must be even and >= 2", k))
	}
	half := k / 2
	numCore := half * half
	numPods := k
	n := numCore + numPods*k // each pod has k/2 agg + k/2 edge = k switches
	t := New(fmt.Sprintf("fattree-%d", k), n)
	roles := &FatTreeRoles{K: k}
	for i := 0; i < numCore; i++ {
		roles.Core = append(roles.Core, i)
	}
	next := numCore
	for p := 0; p < numPods; p++ {
		var aggs, edges []int
		for i := 0; i < half; i++ {
			aggs = append(aggs, next)
			next++
		}
		for i := 0; i < half; i++ {
			edges = append(edges, next)
			next++
		}
		roles.Agg = append(roles.Agg, aggs)
		roles.Edge = append(roles.Edge, edges)
		// Complete bipartite edge<->agg inside the pod.
		for _, e := range edges {
			for _, a := range aggs {
				t.AddLink(e, a)
			}
		}
		// Agg i of each pod connects to core group i (cores i*half..i*half+half-1).
		for i, a := range aggs {
			for j := 0; j < half; j++ {
				t.AddLink(a, roles.Core[i*half+j])
			}
		}
	}
	hostID := 0
	for p := 0; p < numPods; p++ {
		for _, e := range roles.Edge[p] {
			t.AddHost(hostID, e)
			hostID++
		}
	}
	return t, roles
}

// FatTreeForSize returns the smallest even k whose fat tree has at least n
// switches, and the resulting topology. Used by the benchmark sweeps,
// which are parameterized by approximate switch count.
func FatTreeForSize(n int) (*Topology, *FatTreeRoles) {
	for k := 2; ; k += 2 {
		if k*k/4+k*k >= n {
			return FatTree(k)
		}
	}
}
