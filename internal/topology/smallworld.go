package topology

import (
	"fmt"
	"math/rand"
)

// SmallWorld builds a Watts-Strogatz-style small-world graph over n
// switches: a ring lattice where every switch links to its k nearest
// neighbors (k must be even), with each lattice link rewired with
// probability beta. This is the "Small-World" dataset of the paper's
// evaluation [Newman, Strogatz, Watts 2001]. The generator retries rewires
// that would create duplicate links or self-loops, and finally grafts any
// disconnected component back onto the ring, so the result is always
// connected and simple. One host is attached to every switch (host id ==
// switch id).
func SmallWorld(n, k int, beta float64, seed int64) *Topology {
	if n < 4 {
		panic(fmt.Sprintf("topology: SmallWorld(%d): need at least 4 switches", n))
	}
	if k < 2 || k%2 != 0 || k >= n {
		panic(fmt.Sprintf("topology: SmallWorld: bad k=%d for n=%d", k, n))
	}
	r := rand.New(rand.NewSource(seed))
	t := New(fmt.Sprintf("smallworld-%d", n), n)
	type edge struct{ a, b int }
	have := map[edge]bool{}
	norm := func(a, b int) edge {
		if a > b {
			a, b = b, a
		}
		return edge{a, b}
	}
	var edges []edge
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			e := norm(v, (v+j)%n)
			if !have[e] {
				have[e] = true
				edges = append(edges, e)
			}
		}
	}
	for i, e := range edges {
		if r.Float64() >= beta {
			continue
		}
		// Rewire the far endpoint to a random switch.
		for attempt := 0; attempt < 16; attempt++ {
			c := r.Intn(n)
			ne := norm(e.a, c)
			if c == e.a || c == e.b || have[ne] {
				continue
			}
			delete(have, e)
			have[ne] = true
			edges[i] = ne
			break
		}
	}
	for _, e := range edges {
		t.AddLink(e.a, e.b)
	}
	graftComponents(t, r)
	for v := 0; v < n; v++ {
		t.AddHost(v, v)
	}
	return t
}

// graftComponents adds links until the switch graph is connected, joining
// each secondary component to the main one at random attachment points.
func graftComponents(t *Topology, r *rand.Rand) {
	comp := make([]int, t.n)
	for i := range comp {
		comp[i] = -1
	}
	var compMembers [][]int
	for v := 0; v < t.n; v++ {
		if comp[v] != -1 {
			continue
		}
		id := len(compMembers)
		var members []int
		stack := []int{v}
		comp[v] = id
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, l := range t.adj[u] {
				if comp[l.Peer] == -1 {
					comp[l.Peer] = id
					stack = append(stack, l.Peer)
				}
			}
		}
		compMembers = append(compMembers, members)
	}
	for i := 1; i < len(compMembers); i++ {
		a := compMembers[0][r.Intn(len(compMembers[0]))]
		b := compMembers[i][r.Intn(len(compMembers[i]))]
		t.AddLink(a, b)
		compMembers[0] = append(compMembers[0], compMembers[i]...)
	}
}
