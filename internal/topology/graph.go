// Package topology provides the network topology substrate: an undirected
// multigraph of switches with numbered ports and attached hosts, plus the
// generators used by the paper's evaluation — FatTree [Al-Fares et al.],
// Small-World [Newman-Strogatz-Watts], and a Topology-Zoo-like WAN
// generator (stand-in for the real Topology Zoo dataset; see DESIGN.md).
package topology

import (
	"fmt"
	"sync"
)

// Port identifies a port on a switch. Ports are numbered from 1 within
// each switch; 0 is never a valid port.
type Port int

// Link is one endpoint's view of a switch-to-switch link.
type Link struct {
	LocalPort Port
	Peer      int  // peer switch id
	PeerPort  Port // port on the peer switch
}

// Host is an end host attached to a switch. The Port is the switch-side
// port that leads to the host.
type Host struct {
	ID     int
	Switch int
	Port   Port
}

// Topology is an undirected multigraph over switches 0..n-1 with hosts
// hanging off switches. It is mutable during construction and should be
// treated as immutable afterwards; the read accessors are safe for
// concurrent use once mutation stops.
type Topology struct {
	Name string

	n        int
	adj      [][]Link
	hosts    []Host
	nextPort []Port
	// hostAt[sw] lists indexes into hosts for the hosts on sw.
	hostAt map[int][]int

	// Ports and HostsOn are on the Kripke-construction hot path (once per
	// switch per traffic class); the derived slices are memoized here and
	// invalidated by AddLink/AddHost. Guarded by cacheMu.
	cacheMu    sync.Mutex
	portsCache [][]Port
	hostsCache [][]Host
}

// New creates a topology with n switches and no links.
func New(name string, n int) *Topology {
	t := &Topology{
		Name:     name,
		n:        n,
		adj:      make([][]Link, n),
		nextPort: make([]Port, n),
		hostAt:   map[int][]int{},
	}
	for i := range t.nextPort {
		t.nextPort[i] = 1
	}
	return t
}

// NumSwitches returns the number of switches.
func (t *Topology) NumSwitches() int { return t.n }

// NumLinks returns the number of switch-to-switch links.
func (t *Topology) NumLinks() int {
	total := 0
	for _, l := range t.adj {
		total += len(l)
	}
	return total / 2
}

// Hosts returns the attached hosts. The returned slice must not be
// modified.
func (t *Topology) Hosts() []Host { return t.hosts }

// AddLink connects switches a and b with a new link, allocating a fresh
// port on each side, and returns the two ports.
func (t *Topology) AddLink(a, b int) (pa, pb Port) {
	if a < 0 || a >= t.n || b < 0 || b >= t.n {
		panic(fmt.Sprintf("topology: AddLink(%d, %d) out of range [0,%d)", a, b, t.n))
	}
	if a == b {
		panic(fmt.Sprintf("topology: self-link on switch %d", a))
	}
	pa, pb = t.nextPort[a], t.nextPort[b]
	t.nextPort[a]++
	t.nextPort[b]++
	t.adj[a] = append(t.adj[a], Link{LocalPort: pa, Peer: b, PeerPort: pb})
	t.adj[b] = append(t.adj[b], Link{LocalPort: pb, Peer: a, PeerPort: pa})
	t.invalidateCaches()
	return pa, pb
}

// invalidateCaches drops the memoized per-switch views after a mutation.
func (t *Topology) invalidateCaches() {
	t.cacheMu.Lock()
	t.portsCache = nil
	t.hostsCache = nil
	t.cacheMu.Unlock()
}

// HasLink reports whether a direct link between a and b exists.
func (t *Topology) HasLink(a, b int) bool {
	for _, l := range t.adj[a] {
		if l.Peer == b {
			return true
		}
	}
	return false
}

// AddHost attaches a new host with the given id to switch sw, allocating a
// switch-side port.
func (t *Topology) AddHost(id, sw int) Host {
	if sw < 0 || sw >= t.n {
		panic(fmt.Sprintf("topology: AddHost on switch %d out of range", sw))
	}
	p := t.nextPort[sw]
	t.nextPort[sw]++
	h := Host{ID: id, Switch: sw, Port: p}
	t.hostAt[sw] = append(t.hostAt[sw], len(t.hosts))
	t.hosts = append(t.hosts, h)
	t.invalidateCaches()
	return h
}

// HostByID returns the host with the given id.
func (t *Topology) HostByID(id int) (Host, bool) {
	for _, h := range t.hosts {
		if h.ID == id {
			return h, true
		}
	}
	return Host{}, false
}

// HostsOn returns the hosts attached to switch sw. The returned slice is
// memoized and must not be modified.
func (t *Topology) HostsOn(sw int) []Host {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	if t.hostsCache == nil {
		t.hostsCache = make([][]Host, t.n)
		for s := 0; s < t.n; s++ {
			idx := t.hostAt[s]
			out := make([]Host, len(idx))
			for i, j := range idx {
				out[i] = t.hosts[j]
			}
			t.hostsCache[s] = out
		}
	}
	return t.hostsCache[sw]
}

// Neighbors returns the links incident to sw. The returned slice must not
// be modified.
func (t *Topology) Neighbors(sw int) []Link { return t.adj[sw] }

// Degree returns the number of switch-to-switch links at sw.
func (t *Topology) Degree(sw int) int { return len(t.adj[sw]) }

// PortToward returns the local port on switch a of some link to switch b.
func (t *Topology) PortToward(a, b int) (Port, bool) {
	for _, l := range t.adj[a] {
		if l.Peer == b {
			return l.LocalPort, true
		}
	}
	return 0, false
}

// LinkAt returns the link leaving switch sw via the given local port; ok is
// false if the port leads to a host or does not exist.
func (t *Topology) LinkAt(sw int, p Port) (Link, bool) {
	for _, l := range t.adj[sw] {
		if l.LocalPort == p {
			return l, true
		}
	}
	return Link{}, false
}

// HostAtPort returns the host reached via port p of switch sw, if any.
func (t *Topology) HostAtPort(sw int, p Port) (Host, bool) {
	for _, i := range t.hostAt[sw] {
		if t.hosts[i].Port == p {
			return t.hosts[i], true
		}
	}
	return Host{}, false
}

// Ports returns every allocated port on switch sw (link ports and host
// ports), ascending. The returned slice is memoized and must not be
// modified.
func (t *Topology) Ports(sw int) []Port {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	if t.portsCache == nil {
		t.portsCache = make([][]Port, t.n)
		for s := 0; s < t.n; s++ {
			var out []Port
			for _, l := range t.adj[s] {
				out = append(out, l.LocalPort)
			}
			for _, i := range t.hostAt[s] {
				out = append(out, t.hosts[i].Port)
			}
			for i := 1; i < len(out); i++ {
				for j := i; j > 0 && out[j] < out[j-1]; j-- {
					out[j], out[j-1] = out[j-1], out[j]
				}
			}
			t.portsCache[s] = out
		}
	}
	return t.portsCache[sw]
}

// Connected reports whether the switch graph is connected (ignoring
// hosts). The empty topology is connected.
func (t *Topology) Connected() bool {
	if t.n == 0 {
		return true
	}
	seen := make([]bool, t.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range t.adj[v] {
			if !seen[l.Peer] {
				seen[l.Peer] = true
				count++
				stack = append(stack, l.Peer)
			}
		}
	}
	return count == t.n
}
