// Package twophase implements the consistent-update baselines of the
// paper's Overview (Section 2): the two-phase update of Reitblatt et al.
// [SIGCOMM 2012], which tags packets with a version at ingress and keeps
// both rule generations installed during the transition, and the naive
// update, which pushes final tables immediately in an arbitrary (bad)
// order. Both are used by the Figure 2 experiments: probe loss over time
// (2a) and per-switch rule overhead (2b).
package twophase

import (
	"sort"

	"netupdate/internal/config"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// Version tags carried in the packet Typ field. The initial configuration
// forwards untagged traffic; the two-phase update installs VersionNew
// rules alongside, then flips ingress switches to tag traffic.
const (
	VersionOld = 0
	VersionNew = 2
)

// tagPriorityBoost lifts tagged rules above the untagged generation.
const tagPriorityBoost = 100

// Plan is a two-phase update schedule plus bookkeeping for the rule-
// overhead experiment.
type Plan struct {
	Commands []network.Command
	// PeakRules is the maximum number of rules simultaneously installed
	// on each switch during the update.
	PeakRules map[int]int
	// FinalRules is the steady-state rule count per switch afterwards.
	FinalRules map[int]int
}

// Build constructs the two-phase schedule for a scenario:
//
//	phase 1: on every switch, install the final rules tagged VersionNew
//	         alongside the initial rules;
//	phase 2: flip each class's ingress switch to tag packets and send
//	         them into the new configuration;
//	wait:    flush in-flight untagged packets;
//	phase 3: delete the old generation everywhere.
func Build(sc *config.Scenario) *Plan {
	topo := sc.Topo
	// Ingress switch per class.
	ingress := map[int][]config.ClassSpec{}
	for _, cs := range sc.Specs {
		h, ok := topo.HostByID(cs.Class.SrcHost)
		if !ok {
			continue
		}
		ingress[h.Switch] = append(ingress[h.Switch], cs)
	}
	// The switches that carry any rules in either configuration.
	swSet := map[int]bool{}
	for _, sw := range sc.Init.Switches() {
		swSet[sw] = true
	}
	for _, sw := range sc.Final.Switches() {
		swSet[sw] = true
	}
	var switches []int
	for sw := range swSet {
		switches = append(switches, sw)
	}
	sort.Ints(switches)

	p := &Plan{PeakRules: map[int]int{}, FinalRules: map[int]int{}}
	phase1 := map[int]network.Table{}
	for _, sw := range switches {
		tagged := tagTable(sc.Final.Table(sw))
		tbl := append(sc.Init.Table(sw).Clone(), tagged...)
		phase1[sw] = tbl
	}
	// Phase 1 ordering is irrelevant (tagged rules are inert until some
	// ingress tags packets); emit ascending for determinism. Ingress
	// switches flip in phase 2 instead.
	for _, sw := range switches {
		if _, isIngress := ingress[sw]; isIngress {
			continue
		}
		p.Commands = append(p.Commands, network.Update(sw, phase1[sw]))
	}
	// Phase 2: ingress switches get the phase-1 rules plus tagging rules
	// that replace their untagged class rules. Sort for determinism.
	var ingressSw []int
	for sw := range ingress {
		ingressSw = append(ingressSw, sw)
	}
	sort.Ints(ingressSw)
	for _, sw := range ingressSw {
		tbl := phase1[sw].Clone()
		for _, cs := range ingress[sw] {
			tbl = retagIngress(tbl, cs.Class, sc.Final, sw)
		}
		phase1[sw] = tbl
		p.Commands = append(p.Commands, network.Update(sw, tbl))
	}
	p.Commands = append(p.Commands, network.Wait()...)
	// Phase 3: drop the old generation.
	finalTables := map[int]network.Table{}
	for _, sw := range switches {
		tbl := tagTable(sc.Final.Table(sw))
		if specs, isIngress := ingress[sw]; isIngress {
			for _, cs := range specs {
				tbl = retagIngress(tbl, cs.Class, sc.Final, sw)
			}
		}
		finalTables[sw] = tbl
		p.Commands = append(p.Commands, network.Update(sw, tbl))
	}
	for _, sw := range switches {
		p.PeakRules[sw] = max(len(phase1[sw]), max(len(sc.Init.Table(sw)), len(finalTables[sw])))
		p.FinalRules[sw] = len(finalTables[sw])
	}
	return p
}

// BuildScoped constructs a two-phase schedule confined to the switches
// where base and target differ plus the ingress switches of the given
// classes (the "stuck component" of a repair). Unlike Build, whose final
// phase keeps only the tagged generation, BuildScoped ends with exactly
// the target tables — tags are garbage-collected — so the schedule can
// be spliced into a larger careful plan:
//
//	phase 1: on every touched switch, install the target rules tagged
//	         VersionNew alongside the base rules;
//	phase 2: flip each class's ingress switch to tag packets into the
//	         new configuration;
//	wait:    flush in-flight untagged packets;
//	phase 3: swap the untagged generation to the target rules (inert:
//	         component traffic is tagged, other classes' rules are
//	         identical in base and target);
//	phase 4: un-tag ingress — new packets travel the target rules
//	         untagged;
//	wait:    flush in-flight tagged packets;
//	phase 5: drop the tagged generation, leaving exactly target.
//
// Classes outside the component are untouched throughout: their rules on
// scoped switches are identical in base and target, and tagged rules
// never match untagged traffic. Tagged component packets crossing
// unscoped switches forward correctly because class patterns leave the
// version field wildcarded.
func BuildScoped(topo *topology.Topology, base, target *config.Config, specs []config.ClassSpec) *Plan {
	diff := config.Diff(base, target)
	p := &Plan{PeakRules: map[int]int{}, FinalRules: map[int]int{}}
	if len(diff) == 0 {
		return p
	}
	ingress := map[int][]config.ClassSpec{}
	for _, cs := range specs {
		h, ok := topo.HostByID(cs.Class.SrcHost)
		if !ok {
			continue
		}
		ingress[h.Switch] = append(ingress[h.Switch], cs)
	}
	swSet := map[int]bool{}
	for _, sw := range diff {
		swSet[sw] = true
	}
	for sw := range ingress {
		swSet[sw] = true
	}
	var switches []int
	for sw := range swSet {
		switches = append(switches, sw)
	}
	sort.Ints(switches)
	var ingressSw []int
	for sw := range ingress {
		ingressSw = append(ingressSw, sw)
	}
	sort.Ints(ingressSw)

	tagged := map[int]network.Table{}
	for _, sw := range switches {
		tagged[sw] = tagTable(target.Table(sw))
	}
	peak := func(sw int, tbl network.Table) {
		if len(tbl) > p.PeakRules[sw] {
			p.PeakRules[sw] = len(tbl)
		}
	}
	for _, sw := range switches {
		peak(sw, base.Table(sw))
	}
	// Phase 1: base + tagged target, everywhere touched.
	for _, sw := range switches {
		tbl := append(base.Table(sw).Clone(), tagged[sw]...)
		peak(sw, tbl)
		p.Commands = append(p.Commands, network.Update(sw, tbl))
	}
	// Phase 2: flip ingress to tag.
	for _, sw := range ingressSw {
		tbl := append(base.Table(sw).Clone(), tagged[sw]...)
		for _, cs := range ingress[sw] {
			tbl = retagIngress(tbl, cs.Class, target, sw)
		}
		peak(sw, tbl)
		p.Commands = append(p.Commands, network.Update(sw, tbl))
	}
	p.Commands = append(p.Commands, network.Wait()...)
	// Phase 3: swap the untagged generation to target (retag preserved at
	// ingress so component traffic stays on the tagged path meanwhile).
	for _, sw := range switches {
		tbl := append(target.Table(sw).Clone(), tagged[sw]...)
		if specsAt, ok := ingress[sw]; ok {
			for _, cs := range specsAt {
				tbl = retagIngress(tbl, cs.Class, target, sw)
			}
		}
		peak(sw, tbl)
		p.Commands = append(p.Commands, network.Update(sw, tbl))
	}
	// Phase 4: un-tag ingress; new packets take the target rules directly.
	for _, sw := range ingressSw {
		tbl := append(target.Table(sw).Clone(), tagged[sw]...)
		peak(sw, tbl)
		p.Commands = append(p.Commands, network.Update(sw, tbl))
	}
	p.Commands = append(p.Commands, network.Wait()...)
	// Phase 5: garbage-collect the tagged generation.
	for _, sw := range switches {
		tbl := target.Table(sw).Clone()
		peak(sw, tbl)
		p.Commands = append(p.Commands, network.Update(sw, tbl))
		p.FinalRules[sw] = len(tbl)
	}
	return p
}

// tagTable rewrites rules to match only VersionNew-tagged packets, at
// boosted priority.
func tagTable(t network.Table) network.Table {
	out := make(network.Table, 0, len(t))
	for _, r := range t {
		nr := r
		nr.Priority += tagPriorityBoost
		nr.Match.Typ = VersionNew
		nr.Actions = append([]network.Action(nil), r.Actions...)
		out = append(out, nr)
	}
	return out
}

// retagIngress replaces the class's untagged rule on the ingress switch
// with a rule that stamps VersionNew on the packet and forwards it along
// the final path.
func retagIngress(tbl network.Table, cl config.Class, final *config.Config, sw int) network.Table {
	pat := cl.Pattern()
	var finalRule *network.Rule
	for _, r := range final.Table(sw) {
		if r.Match == pat {
			r := r
			finalRule = &r
			break
		}
	}
	out := make(network.Table, 0, len(tbl))
	for _, r := range tbl {
		if r.Match == pat {
			continue // drop the untagged generation's ingress rule
		}
		out = append(out, r)
	}
	if finalRule == nil {
		return out
	}
	acts := []network.Action{network.SetField(network.FieldTyp, VersionNew)}
	acts = append(acts, finalRule.Actions...)
	return append(out, network.Rule{
		Priority: finalRule.Priority,
		Match:    pat,
		Actions:  acts,
	})
}

// Naive returns the "naive update" of the Overview: the final tables are
// pushed immediately, one switch at a time, with no synchronization and
// in an order chosen upstream-first — the order that maximizes transient
// disruption (Figure 2a's blue line uses A1 before C2).
func Naive(sc *config.Scenario) []network.Command {
	diff := config.Diff(sc.Init, sc.Final)
	// Upstream-first: reverse of the destination-first safe order — rank
	// switches by position in the final paths and update sources first.
	pos := map[int]int{}
	for _, cs := range sc.Specs {
		if path, err := config.PathOf(sc.Final, sc.Topo, cs.Class); err == nil {
			for i, sw := range path {
				if old, ok := pos[sw]; !ok || i < old {
					pos[sw] = i
				}
			}
		}
	}
	sort.SliceStable(diff, func(a, b int) bool { return pos[diff[a]] < pos[diff[b]] })
	var cmds []network.Command
	for _, sw := range diff {
		cmds = append(cmds, network.Update(sw, sc.Final.Table(sw)))
	}
	return cmds
}

// OrderingPeaks computes the per-switch peak and final rule counts for an
// ordering-update plan's command sequence, for the Figure 2(b)
// comparison.
func OrderingPeaks(init *config.Config, cmds []network.Command) (peak, final map[int]int) {
	peak = map[int]int{}
	final = map[int]int{}
	cur := map[int]int{}
	for _, sw := range init.Switches() {
		cur[sw] = len(init.Table(sw))
		peak[sw] = cur[sw]
	}
	for _, c := range cmds {
		if c.Kind != network.CmdUpdate {
			continue
		}
		cur[c.Switch] = len(c.Table)
		if cur[c.Switch] > peak[c.Switch] {
			peak[c.Switch] = cur[c.Switch]
		}
	}
	for sw, n := range cur {
		final[sw] = n
	}
	return
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
