package twophase

import (
	"math/rand"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/network"
)

func TestTwoPhasePreservesDeliveryUnderRandomInterleavings(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan := Build(sc)
	cl := sc.Specs[0].Class
	for seed := int64(0); seed < 25; seed++ {
		n := network.NewNet(sc.Topo, sc.Init.Tables(), plan.Commands)
		r := rand.New(rand.NewSource(seed))
		injected := 0
		n.RunRandom(r, func(step int) bool {
			if step%2 == 0 && injected < 15 {
				n.Inject(cl.SrcHost, cl.Packet())
				injected++
			}
			return injected < 15
		})
		n.Drain()
		for id := 0; id < injected; id++ {
			if !n.DeliveredTo(id, cl.DstHost) {
				t.Fatalf("seed %d: packet %d lost during two-phase update", seed, id)
			}
		}
	}
}

func TestTwoPhaseConsistency(t *testing.T) {
	// Every packet must traverse either the full red path or the full
	// green path — never a mixture (the defining property of consistent
	// updates).
	sc := config.Fig1RedGreen()
	_, nodes := config.Fig1Topology()
	plan := Build(sc)
	cl := sc.Specs[0].Class
	for seed := int64(100); seed < 120; seed++ {
		n := network.NewNet(sc.Topo, sc.Init.Tables(), plan.Commands)
		r := rand.New(rand.NewSource(seed))
		injected := 0
		n.RunRandom(r, func(step int) bool {
			if step%3 == 0 && injected < 12 {
				n.Inject(cl.SrcHost, cl.Packet())
				injected++
			}
			return injected < 12
		})
		n.Drain()
		for id := 0; id < injected; id++ {
			var cores []int
			for _, o := range n.TraceOf(id) {
				if o.Sw == nodes.C1 || o.Sw == nodes.C2 {
					cores = append(cores, o.Sw)
				}
			}
			if len(cores) != 1 {
				t.Fatalf("seed %d packet %d: core visits %v, want exactly one core", seed, id, cores)
			}
		}
	}
}

func TestTwoPhaseRuleOverhead(t *testing.T) {
	sc := config.Fig1RedGreen()
	_, nodes := config.Fig1Topology()
	plan := Build(sc)
	// Shared path switches (A1, A3, T3) briefly hold both generations:
	// peak = 2x final. T1 is ingress: old rule + tagged rule + tag rule
	// transitions also reach 2x.
	for _, sw := range []int{nodes.A1, nodes.A3, nodes.T3} {
		if plan.PeakRules[sw] < 2*plan.FinalRules[sw] {
			t.Errorf("sw%d: peak %d, final %d; want 2x overhead",
				sw, plan.PeakRules[sw], plan.FinalRules[sw])
		}
	}
	// C2 is only on the new path: one tagged rule, peak 1.
	if plan.PeakRules[nodes.C2] != 1 {
		t.Errorf("C2 peak = %d, want 1", plan.PeakRules[nodes.C2])
	}
}

func TestNaiveOrderIsUpstreamFirst(t *testing.T) {
	sc := config.Fig1RedGreen()
	_, nodes := config.Fig1Topology()
	cmds := Naive(sc)
	if len(cmds) != 2 {
		t.Fatalf("naive commands = %v", cmds)
	}
	if cmds[0].Switch != nodes.A1 || cmds[1].Switch != nodes.C2 {
		t.Fatalf("naive order = %v, want A1 then C2 (the breaking order)", cmds)
	}
}

func TestNaiveLosesPacketsInTheWindow(t *testing.T) {
	sc := config.Fig1RedGreen()
	cmds := Naive(sc)
	cl := sc.Specs[0].Class
	// Deterministic scheduler: inject, run first update, inject, drain —
	// packets forwarded to C2 before its rule lands are dropped.
	n := network.NewNet(sc.Topo, sc.Init.Tables(), cmds)
	n.StepCommand() // A1 now points at C2, which has no rule yet
	id := n.Inject(cl.SrcHost, cl.Packet())
	n.Drain()
	if n.DeliveredTo(id, cl.DstHost) {
		t.Fatal("packet should be dropped at C2 during the naive window")
	}
	n.StepCommand() // C2 installed
	id2 := n.Inject(cl.SrcHost, cl.Packet())
	n.Drain()
	if !n.DeliveredTo(id2, cl.DstHost) {
		t.Fatal("delivery should resume after the naive update completes")
	}
}

func TestOrderingPeaks(t *testing.T) {
	sc := config.Fig1RedGreen()
	var cmds []network.Command
	for _, sw := range config.Diff(sc.Init, sc.Final) {
		cmds = append(cmds, network.Update(sw, sc.Final.Table(sw)))
	}
	peak, final := OrderingPeaks(sc.Init, cmds)
	for sw, pk := range peak {
		if pk > 1 {
			t.Errorf("ordering update peak on sw%d = %d, want <= 1 rule", sw, pk)
		}
		_ = final[sw]
	}
}

// TestBuildScopedEndsAtTarget: the scoped schedule must land on exactly
// the target tables — no residual tagged generation — so it can be
// spliced into a larger careful plan.
func TestBuildScopedEndsAtTarget(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan := BuildScoped(sc.Topo, sc.Init, sc.Final, sc.Specs)
	cfg := sc.Init.Clone()
	for _, c := range plan.Commands {
		if c.Kind == network.CmdUpdate {
			cfg.SetTable(c.Switch, c.Table)
		}
	}
	if d := config.Diff(cfg, sc.Final); len(d) != 0 {
		t.Fatalf("scoped two-phase does not end at the target; differs on %v", d)
	}
}

// TestBuildScopedPreservesDelivery: every packet injected during the
// scoped update must be delivered and traverse a single coherent path
// (never a mixture of old and new core switches).
func TestBuildScopedPreservesDelivery(t *testing.T) {
	sc := config.Fig1RedGreen()
	_, nodes := config.Fig1Topology()
	plan := BuildScoped(sc.Topo, sc.Init, sc.Final, sc.Specs)
	cl := sc.Specs[0].Class
	for seed := int64(0); seed < 25; seed++ {
		n := network.NewNet(sc.Topo, sc.Init.Tables(), plan.Commands)
		r := rand.New(rand.NewSource(seed))
		injected := 0
		n.RunRandom(r, func(step int) bool {
			if step%2 == 0 && injected < 20 {
				n.Inject(cl.SrcHost, cl.Packet())
				injected++
			}
			return injected < 20
		})
		n.Drain()
		for id := 0; id < injected; id++ {
			if !n.DeliveredTo(id, cl.DstHost) {
				t.Fatalf("seed %d: packet %d lost during scoped two-phase update", seed, id)
			}
			var cores []int
			for _, o := range n.TraceOf(id) {
				if o.Sw == nodes.C1 || o.Sw == nodes.C2 {
					cores = append(cores, o.Sw)
				}
			}
			if len(cores) != 1 {
				t.Fatalf("seed %d packet %d: core visits %v, want exactly one core", seed, id, cores)
			}
		}
	}
}
