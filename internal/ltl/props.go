package ltl

// This file provides the property constructors used in the paper's
// evaluation (Section 6, "Configurations and properties"). Atomic
// propositions test the node a packet currently occupies: At(n) is the
// proposition sw=n, true exactly when the packet is being processed by
// switch n. (The paper writes "port = s" for the same test.)

// FieldSwitch is the Prop field used to test the current switch.
const FieldSwitch = "sw"

// FieldPort is the Prop field used to test the current ingress port.
const FieldPort = "pt"

// At returns the proposition that the packet is at switch sw.
func At(sw int) *Formula { return Atom(FieldSwitch, sw) }

// Reachability asserts that traffic entering at src eventually reaches dst:
//
//	(sw=src) -> F (sw=dst)
func Reachability(src, dst int) *Formula {
	return Implies(At(src), Eventually(At(dst)))
}

// Waypoint asserts that traffic from src must traverse waypoint w before
// reaching dst:
//
//	(sw=src) -> ((sw!=dst) U ((sw=w) & F (sw=dst)))
func Waypoint(src, w, dst int) *Formula {
	return Implies(At(src),
		Until(Not(At(dst)), And(At(w), Eventually(At(dst)))))
}

// ServiceChain asserts that traffic from src traverses the waypoints in
// order before reaching dst, following the paper's recursive definition:
//
//	way([], d)    = F (sw=d)
//	way(w::W, d)  = ((AND_{wk in W} sw!=wk) & sw!=d) U ((sw=w) & way(W, d))
//
// and the property is (sw=src) -> way(waypoints, dst).
func ServiceChain(src int, waypoints []int, dst int) *Formula {
	return Implies(At(src), way(waypoints, dst))
}

func way(waypoints []int, dst int) *Formula {
	if len(waypoints) == 0 {
		return Eventually(At(dst))
	}
	w, rest := waypoints[0], waypoints[1:]
	avoid := Not(At(dst))
	for _, wk := range rest {
		avoid = And(Not(At(wk)), avoid)
	}
	return Until(avoid, And(At(w), way(rest, dst)))
}

// WaypointEither asserts that traffic from src must traverse at least one
// of the waypoints before reaching dst — the "every packet traverses A2 or
// A3" middlebox property from Section 2:
//
//	(sw=src) -> ((sw!=dst) U (((sw=w1)|(sw=w2)|...) & F (sw=dst)))
func WaypointEither(src int, waypoints []int, dst int) *Formula {
	alt := False()
	for _, w := range waypoints {
		alt = Or(alt, At(w))
	}
	return Implies(At(src),
		Until(Not(At(dst)), And(alt, Eventually(At(dst)))))
}

// Avoid asserts that traffic from src never visits node bad:
//
//	(sw=src) -> G (sw!=bad)
func Avoid(src, bad int) *Formula {
	return Implies(At(src), Always(Not(At(bad))))
}
