package ltl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randFormula generates a random formula over atoms sw=0..swMax using the
// given depth budget. It exercises every operator, including the derived
// ones that the constructors eliminate.
func randFormula(r *rand.Rand, depth, swMax int) *Formula {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return True()
		case 1:
			return False()
		default:
			return At(r.Intn(swMax))
		}
	}
	switch r.Intn(9) {
	case 0:
		return At(r.Intn(swMax))
	case 1:
		return Not(randFormula(r, depth-1, swMax))
	case 2:
		return And(randFormula(r, depth-1, swMax), randFormula(r, depth-1, swMax))
	case 3:
		return Or(randFormula(r, depth-1, swMax), randFormula(r, depth-1, swMax))
	case 4:
		return Next(randFormula(r, depth-1, swMax))
	case 5:
		return Until(randFormula(r, depth-1, swMax), randFormula(r, depth-1, swMax))
	case 6:
		return Release(randFormula(r, depth-1, swMax), randFormula(r, depth-1, swMax))
	case 7:
		return Eventually(randFormula(r, depth-1, swMax))
	default:
		return Always(randFormula(r, depth-1, swMax))
	}
}

// randTrace builds a random trace of states, each holding exactly one of
// the atoms sw=0..swMax-1.
func randTrace(r *rand.Rand, maxLen, swMax int) []Env {
	n := 1 + r.Intn(maxLen)
	trace := make([]Env, n)
	for i := range trace {
		sw := r.Intn(swMax)
		trace[i] = EnvFunc(func(p Prop) bool {
			return p.Field == FieldSwitch && p.Value == sw
		})
	}
	return trace
}

func TestConstructorsFoldConstants(t *testing.T) {
	a := At(1)
	cases := []struct {
		got, want *Formula
	}{
		{And(True(), a), a},
		{And(a, True()), a},
		{And(False(), a), False()},
		{Or(False(), a), a},
		{Or(a, True()), True()},
		{Not(Not(a)), a},
		{Not(True()), False()},
		{Not(False()), True()},
	}
	for i, c := range cases {
		if !c.got.Equal(c.want) {
			t.Errorf("case %d: got %v, want %v", i, c.got, c.want)
		}
	}
}

func TestNNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		f := randFormula(r, 4, 4)
		g := ToNNF(f)
		if !IsNNF(g) {
			t.Fatalf("ToNNF(%v) = %v is not in NNF", f, g)
		}
		for j := 0; j < 20; j++ {
			trace := randTrace(r, 6, 4)
			if f.EvalTrace(trace) != g.EvalTrace(trace) {
				t.Fatalf("NNF changed semantics: %v vs %v", f, g)
			}
		}
	}
}

func TestNNFNegationSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		f := randFormula(r, 4, 4)
		g := ToNNF(Not(f))
		for j := 0; j < 20; j++ {
			trace := randTrace(r, 6, 4)
			if f.EvalTrace(trace) == g.EvalTrace(trace) {
				t.Fatalf("NNF(!phi) should disagree with phi: %v vs %v", f, g)
			}
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		f := randFormula(r, 5, 6)
		s := f.String()
		g, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !f.Equal(g) {
			t.Fatalf("round trip failed: %q parsed to %q", s, g)
		}
	}
}

func TestParseExamples(t *testing.T) {
	cases := []struct {
		in   string
		want *Formula
	}{
		{"true", True()},
		{"false", False()},
		{"sw=3", At(3)},
		{"sw!=3", Not(At(3))},
		{"!sw=3", Not(At(3))},
		{"sw=1 & sw=2", And(At(1), At(2))},
		{"sw=1 | sw=2 & sw=3", Or(At(1), And(At(2), At(3)))},
		{"sw=1 -> F sw=2", Implies(At(1), Eventually(At(2)))},
		{"sw=1 => F sw=2", Implies(At(1), Eventually(At(2)))},
		{"G sw=1", Always(At(1))},
		{"X X sw=1", Next(Next(At(1)))},
		{"sw=1 U sw=2 U sw=3", Until(At(1), Until(At(2), At(3)))},
		{"(sw=1 R sw=2)", Release(At(1), At(2))},
		{"pt=2", Atom(FieldPort, 2)},
		{"dst=7", Atom("dst", 7)},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "(", "sw=", "sw", "sw=1 &", "sw=1 sw=2", "1=2", "sw=1)", "U sw=1", "sw = x",
	} {
		if f, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded with %v, want error", in, f)
		}
	}
}

func TestPropsSortedAndDistinct(t *testing.T) {
	f := AndN(At(3), At(1), At(3), Atom("dst", 2), Atom(FieldPort, 9))
	got := f.Props()
	want := []Prop{{"dst", 2}, {FieldPort, 9}, {FieldSwitch, 1}, {FieldSwitch, 3}}
	if len(got) != len(want) {
		t.Fatalf("Props() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Props()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEvalTraceBasics(t *testing.T) {
	at := func(sw int) Env {
		return EnvFunc(func(p Prop) bool { return p.Field == FieldSwitch && p.Value == sw })
	}
	trace := []Env{at(1), at(2), at(3)}
	cases := []struct {
		f    *Formula
		want bool
	}{
		{At(1), true},
		{At(2), false},
		{Next(At(2)), true},
		{Next(Next(At(3))), true},
		{Next(Next(Next(At(3)))), true}, // final state repeats
		{Eventually(At(3)), true},
		{Eventually(At(4)), false},
		{Always(At(1)), false},
		{Always(Or(Or(At(1), At(2)), At(3))), true},
		{Until(Not(At(3)), At(2)), true},
		{Until(Not(At(2)), At(3)), false},
		{Release(False(), Not(At(4))), true},
		{Release(At(2), Not(At(4))), true},
	}
	for i, c := range cases {
		if got := c.f.EvalTrace(trace); got != c.want {
			t.Errorf("case %d (%v): got %v, want %v", i, c.f, got, c.want)
		}
	}
}

func TestUntilReleaseDuality(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	err := quick.Check(func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randFormula(rr, 3, 3)
		b := randFormula(rr, 3, 3)
		lhs := Not(Until(a, b))
		rhs := Release(Not(a), Not(b))
		for i := 0; i < 10; i++ {
			trace := randTrace(r, 5, 3)
			if lhs.EvalTrace(trace) != rhs.EvalTrace(trace) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSize(t *testing.T) {
	if got := At(1).Size(); got != 1 {
		t.Errorf("Size(atom) = %d, want 1", got)
	}
	if got := Until(At(1), At(2)).Size(); got != 3 {
		t.Errorf("Size(U) = %d, want 3", got)
	}
}
