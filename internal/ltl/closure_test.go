package ltl

import (
	"math/rand"
	"testing"
)

func swEnv(sw int) Env {
	return EnvFunc(func(p Prop) bool { return p.Field == FieldSwitch && p.Value == sw })
}

func TestClosureChildFirstOrder(t *testing.T) {
	c := MustClosure(Until(At(1), And(At(2), At(3))))
	for i := 0; i < c.Size(); i++ {
		f := c.Sub(i)
		if f.L != nil {
			l := c.index[f.L.String()]
			if l >= i {
				t.Fatalf("child %v (id %d) not before parent %v (id %d)", f.L, l, f, i)
			}
		}
		if f.R != nil {
			r := c.index[f.R.String()]
			if r >= i {
				t.Fatalf("child %v (id %d) not before parent %v (id %d)", f.R, r, f, i)
			}
		}
	}
}

func TestClosureDeduplicates(t *testing.T) {
	// sw=1 appears three times but should be interned once.
	c := MustClosure(And(At(1), Or(At(1), Until(At(1), At(2)))))
	count := 0
	for i := 0; i < c.Size(); i++ {
		if c.Sub(i).Op == OpAtom && c.Sub(i).Prop == (Prop{FieldSwitch, 1}) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("atom sw=1 interned %d times, want 1", count)
	}
}

func TestClosureTooLarge(t *testing.T) {
	f := True()
	// Build a chain of nested distinct untils exceeding MaxClosure subformulas.
	for i := 0; i < MaxClosure; i++ {
		f = Until(At(i), f)
	}
	if _, err := NewClosure(f); err == nil {
		t.Fatal("expected error for oversized closure")
	}
}

// labelTrace computes the valuation of every suffix of a trace by chaining
// Sink and Extend, then checks each recorded truth bit against the direct
// trace evaluator. This validates both Extend and Sink against the
// reference LTL semantics.
func labelTrace(c *Closure, trace []Env) []Valuation {
	n := len(trace)
	vals := make([]Valuation, n)
	vals[n-1] = c.Sink(c.AtomValuation(trace[n-1]))
	for i := n - 2; i >= 0; i-- {
		vals[i] = c.Extend(c.AtomValuation(trace[i]), vals[i+1])
	}
	return vals
}

func TestExtendSinkMatchEvalTrace(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for iter := 0; iter < 400; iter++ {
		f := ToNNF(randFormula(r, 4, 4))
		c, err := NewClosure(f)
		if err != nil {
			continue // oversized random formula; skip
		}
		trace := randTrace(r, 6, 4)
		vals := labelTrace(c, trace)
		for i := 0; i < len(trace); i++ {
			for id := 0; id < c.Size(); id++ {
				want := c.Sub(id).EvalTrace(trace[i:])
				if got := vals[i].Get(id); got != want {
					t.Fatalf("formula %v, subformula %v at position %d: labeled %v, trace eval %v",
						f, c.Sub(id), i, got, want)
				}
			}
		}
	}
}

func TestFollowsConsistentWithExtend(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		f := ToNNF(randFormula(r, 4, 4))
		c, err := NewClosure(f)
		if err != nil {
			continue
		}
		trace := randTrace(r, 6, 4)
		vals := labelTrace(c, trace)
		for i := 0; i+1 < len(trace); i++ {
			if !c.Follows(vals[i], vals[i+1]) {
				t.Fatalf("Follows rejects consecutive valuations of a real trace (formula %v)", f)
			}
		}
	}
}

func TestValuationBits(t *testing.T) {
	var v Valuation
	for _, i := range []int{0, 1, 63, 64, 127} {
		if v.Get(i) {
			t.Fatalf("zero valuation has bit %d set", i)
		}
		v = v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if v.Count() != 5 {
		t.Fatalf("Count = %d, want 5", v.Count())
	}
	v = v.Set(63, false)
	if v.Get(63) || v.Count() != 4 {
		t.Fatalf("clear failed: %v", v)
	}
}

func TestValuationLessTotalOrder(t *testing.T) {
	a := Valuation{}.Set(0, true)
	b := Valuation{}.Set(64, true)
	if !a.Less(b) || b.Less(a) {
		t.Fatal("high word must dominate ordering")
	}
	if a.Less(a) {
		t.Fatal("Less must be irreflexive")
	}
}

func TestHoldsReadsRoot(t *testing.T) {
	c := MustClosure(Eventually(At(2)))
	sat := c.Sink(c.AtomValuation(swEnv(2)))
	unsat := c.Sink(c.AtomValuation(swEnv(1)))
	if !c.Holds(sat) {
		t.Error("F sw=2 should hold at sink sw=2")
	}
	if c.Holds(unsat) {
		t.Error("F sw=2 should not hold at sink sw=1")
	}
}

func TestPropertyConstructors(t *testing.T) {
	at := func(sw int) Env { return swEnv(sw) }
	reach := Reachability(1, 3)
	if !reach.EvalTrace([]Env{at(1), at(2), at(3)}) {
		t.Error("reachability should hold on 1-2-3")
	}
	if reach.EvalTrace([]Env{at(1), at(2)}) {
		t.Error("reachability should fail on 1-2")
	}
	if !reach.EvalTrace([]Env{at(5), at(2)}) {
		t.Error("reachability is vacuous off-source")
	}

	wp := Waypoint(1, 2, 3)
	if !wp.EvalTrace([]Env{at(1), at(2), at(3)}) {
		t.Error("waypoint should hold on 1-2-3")
	}
	if wp.EvalTrace([]Env{at(1), at(4), at(3)}) {
		t.Error("waypoint should fail when w skipped")
	}
	if wp.EvalTrace([]Env{at(1), at(3)}) {
		t.Error("waypoint should fail when dst reached before w")
	}

	sc := ServiceChain(1, []int{2, 4}, 3)
	if !sc.EvalTrace([]Env{at(1), at(2), at(4), at(3)}) {
		t.Error("chain should hold on 1-2-4-3")
	}
	if sc.EvalTrace([]Env{at(1), at(4), at(2), at(3)}) {
		t.Error("chain should fail out of order")
	}
	if sc.EvalTrace([]Env{at(1), at(2), at(3)}) {
		t.Error("chain should fail when a waypoint is skipped")
	}

	we := WaypointEither(1, []int{2, 4}, 3)
	if !we.EvalTrace([]Env{at(1), at(4), at(3)}) {
		t.Error("either-waypoint should accept w2")
	}
	if we.EvalTrace([]Env{at(1), at(5), at(3)}) {
		t.Error("either-waypoint should fail when no waypoint hit")
	}

	av := Avoid(1, 9)
	if !av.EvalTrace([]Env{at(1), at(2)}) {
		t.Error("avoid should hold when bad not visited")
	}
	if av.EvalTrace([]Env{at(1), at(9), at(3)}) {
		t.Error("avoid should fail when bad visited")
	}
}
