package ltl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a formula in the concrete syntax produced by
// (*Formula).String:
//
//	phi ::= phi '->' phi          (implication, right associative, lowest)
//	      | phi '|' phi           (disjunction)
//	      | phi '&' phi           (conjunction)
//	      | phi 'U' phi           (until, right associative)
//	      | phi 'R' phi           (release, right associative)
//	      | '!' phi | 'X' phi | 'F' phi | 'G' phi
//	      | 'true' | 'false'
//	      | ident '=' int | ident '!=' int
//	      | '(' phi ')'
//
// where ident names a state component ("sw", "pt", or a header field).
func Parse(input string) (*Formula, error) {
	p := &parser{input: input}
	p.next()
	f, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("ltl: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
	return f, nil
}

// MustParse is Parse but panics on error; for statically known formulas.
func MustParse(input string) *Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokLParen
	tokRParen
	tokNot    // !
	tokAnd    // &
	tokOr     // |
	tokEq     // =
	tokNeq    // !=
	tokArrow  // ->
	tokKwTrue // true
	tokKwFalse
	tokKwX
	tokKwF
	tokKwG
	tokKwU
	tokKwR
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	input string
	off   int
	tok   token
}

func (p *parser) next() {
	for p.off < len(p.input) && unicode.IsSpace(rune(p.input[p.off])) {
		p.off++
	}
	start := p.off
	if p.off >= len(p.input) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.input[p.off]
	switch {
	case c == '(':
		p.off++
		p.tok = token{tokLParen, "(", start}
	case c == ')':
		p.off++
		p.tok = token{tokRParen, ")", start}
	case c == '&':
		p.off++
		if p.off < len(p.input) && p.input[p.off] == '&' {
			p.off++
		}
		p.tok = token{tokAnd, "&", start}
	case c == '|':
		p.off++
		if p.off < len(p.input) && p.input[p.off] == '|' {
			p.off++
		}
		p.tok = token{tokOr, "|", start}
	case c == '=':
		p.off++
		if p.off < len(p.input) && p.input[p.off] == '>' { // '=>' synonym for '->'
			p.off++
			p.tok = token{tokArrow, "=>", start}
			return
		}
		p.tok = token{tokEq, "=", start}
	case c == '!':
		p.off++
		if p.off < len(p.input) && p.input[p.off] == '=' {
			p.off++
			p.tok = token{tokNeq, "!=", start}
			return
		}
		p.tok = token{tokNot, "!", start}
	case c == '-':
		p.off++
		if p.off < len(p.input) && p.input[p.off] == '>' {
			p.off++
			p.tok = token{tokArrow, "->", start}
			return
		}
		p.tok = token{kind: tokEOF, text: "-", pos: start} // reported by caller
	case c >= '0' && c <= '9':
		for p.off < len(p.input) && p.input[p.off] >= '0' && p.input[p.off] <= '9' {
			p.off++
		}
		p.tok = token{tokInt, p.input[start:p.off], start}
	case isIdentStart(c):
		for p.off < len(p.input) && isIdentChar(p.input[p.off]) {
			p.off++
		}
		text := p.input[start:p.off]
		kind := tokIdent
		switch text {
		case "true":
			kind = tokKwTrue
		case "false":
			kind = tokKwFalse
		case "X":
			kind = tokKwX
		case "F":
			kind = tokKwF
		case "G":
			kind = tokKwG
		case "U":
			kind = tokKwU
		case "R":
			kind = tokKwR
		}
		p.tok = token{kind, text, start}
	default:
		p.tok = token{kind: tokEOF, text: string(c), pos: start}
		p.off++
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (p *parser) parseImplies() (*Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokArrow {
		p.next()
		r, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		return Implies(l, r), nil
	}
	return l, nil
}

func (p *parser) parseOr() (*Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOr {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or(l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (*Formula, error) {
	l, err := p.parseTemporal()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAnd {
		p.next()
		r, err := p.parseTemporal()
		if err != nil {
			return nil, err
		}
		l = And(l, r)
	}
	return l, nil
}

func (p *parser) parseTemporal() (*Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tokKwU:
		p.next()
		r, err := p.parseTemporal()
		if err != nil {
			return nil, err
		}
		return Until(l, r), nil
	case tokKwR:
		p.next()
		r, err := p.parseTemporal()
		if err != nil {
			return nil, err
		}
		return Release(l, r), nil
	}
	return l, nil
}

func (p *parser) parseUnary() (*Formula, error) {
	switch p.tok.kind {
	case tokNot:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case tokKwX:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Next(f), nil
	case tokKwF:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Eventually(f), nil
	case tokKwG:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Always(f), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*Formula, error) {
	switch p.tok.kind {
	case tokKwTrue:
		p.next()
		return True(), nil
	case tokKwFalse:
		p.next()
		return False(), nil
	case tokLParen:
		p.next()
		f, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("ltl: expected ')' at offset %d, found %q", p.tok.pos, p.tok.text)
		}
		p.next()
		return f, nil
	case tokIdent:
		field := p.tok.text
		p.next()
		neq := false
		switch p.tok.kind {
		case tokEq:
		case tokNeq:
			neq = true
		default:
			return nil, fmt.Errorf("ltl: expected '=' or '!=' after %q at offset %d", field, p.tok.pos)
		}
		p.next()
		if p.tok.kind != tokInt {
			return nil, fmt.Errorf("ltl: expected integer at offset %d, found %q", p.tok.pos, p.tok.text)
		}
		v, err := strconv.Atoi(p.tok.text)
		if err != nil {
			return nil, fmt.Errorf("ltl: bad integer %q: %v", p.tok.text, err)
		}
		p.next()
		a := Atom(field, v)
		if neq {
			return Not(a), nil
		}
		return a, nil
	}
	return nil, fmt.Errorf("ltl: unexpected %q at offset %d", p.tok.text, p.tok.pos)
}

// FormatList renders a list of formulas one per line (for CLI output).
func FormatList(fs []*Formula) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}
