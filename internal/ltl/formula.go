// Package ltl implements the Linear Temporal Logic fragment used by the
// network-update synthesizer: negation normal form (NNF) formulas over
// atomic propositions that test components of a network state (switch id,
// port id, or packet header fields), together with the extended-closure and
// maximally-consistent-set machinery from Section 5 of "Efficient Synthesis
// of Network Updates" (PLDI 2015).
package ltl

import (
	"fmt"
	"sort"
	"strings"
)

// Op identifies the operator at the root of a Formula node.
type Op uint8

// Formula operators. After ToNNF, OpNot appears only directly above OpAtom.
const (
	OpTrue Op = iota
	OpFalse
	OpAtom
	OpNot
	OpAnd
	OpOr
	OpNext
	OpUntil
	OpRelease
)

func (o Op) String() string {
	switch o {
	case OpTrue:
		return "true"
	case OpFalse:
		return "false"
	case OpAtom:
		return "atom"
	case OpNot:
		return "!"
	case OpAnd:
		return "&"
	case OpOr:
		return "|"
	case OpNext:
		return "X"
	case OpUntil:
		return "U"
	case OpRelease:
		return "R"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Prop is an atomic proposition f = v testing one component of a network
// state. Field is "sw" (switch id), "pt" (port id), or a packet header
// field name such as "src" or "dst".
type Prop struct {
	Field string
	Value int
}

func (p Prop) String() string { return fmt.Sprintf("%s=%d", p.Field, p.Value) }

// Env supplies truth values for atomic propositions at one state.
type Env interface {
	Holds(p Prop) bool
}

// EnvFunc adapts a function to the Env interface.
type EnvFunc func(p Prop) bool

// Holds reports whether p is true in the environment.
func (f EnvFunc) Holds(p Prop) bool { return f(p) }

// Formula is an LTL formula node. Formulas are immutable once built;
// construct them with the package-level constructors.
type Formula struct {
	Op   Op
	Prop Prop     // valid when Op == OpAtom
	L, R *Formula // operands; unary operators use L only
}

var (
	trueFormula  = &Formula{Op: OpTrue}
	falseFormula = &Formula{Op: OpFalse}
)

// True returns the formula "true".
func True() *Formula { return trueFormula }

// False returns the formula "false".
func False() *Formula { return falseFormula }

// Atom returns the atomic proposition field = value.
func Atom(field string, value int) *Formula {
	return &Formula{Op: OpAtom, Prop: Prop{Field: field, Value: value}}
}

// AtomP returns the atomic proposition p.
func AtomP(p Prop) *Formula { return &Formula{Op: OpAtom, Prop: p} }

// Not returns the negation of f, simplifying double negation and constants.
func Not(f *Formula) *Formula {
	switch f.Op {
	case OpTrue:
		return falseFormula
	case OpFalse:
		return trueFormula
	case OpNot:
		return f.L
	}
	return &Formula{Op: OpNot, L: f}
}

// And returns the conjunction of l and r with constant folding.
func And(l, r *Formula) *Formula {
	switch {
	case l.Op == OpFalse || r.Op == OpFalse:
		return falseFormula
	case l.Op == OpTrue:
		return r
	case r.Op == OpTrue:
		return l
	}
	return &Formula{Op: OpAnd, L: l, R: r}
}

// Or returns the disjunction of l and r with constant folding.
func Or(l, r *Formula) *Formula {
	switch {
	case l.Op == OpTrue || r.Op == OpTrue:
		return trueFormula
	case l.Op == OpFalse:
		return r
	case r.Op == OpFalse:
		return l
	}
	return &Formula{Op: OpOr, L: l, R: r}
}

// AndN folds a conjunction over fs; AndN() is true.
func AndN(fs ...*Formula) *Formula {
	acc := trueFormula
	for _, f := range fs {
		acc = And(acc, f)
	}
	return acc
}

// OrN folds a disjunction over fs; OrN() is false.
func OrN(fs ...*Formula) *Formula {
	acc := falseFormula
	for _, f := range fs {
		acc = Or(acc, f)
	}
	return acc
}

// Next returns X f.
func Next(f *Formula) *Formula { return &Formula{Op: OpNext, L: f} }

// Until returns l U r.
func Until(l, r *Formula) *Formula { return &Formula{Op: OpUntil, L: l, R: r} }

// Release returns l R r.
func Release(l, r *Formula) *Formula { return &Formula{Op: OpRelease, L: l, R: r} }

// Implies returns l -> r, encoded as !l | r.
func Implies(l, r *Formula) *Formula { return Or(Not(l), r) }

// Eventually returns F f, encoded as true U f.
func Eventually(f *Formula) *Formula { return Until(trueFormula, f) }

// Always returns G f, encoded as false R f.
func Always(f *Formula) *Formula { return Release(falseFormula, f) }

// String renders the formula in the concrete syntax accepted by Parse.
func (f *Formula) String() string {
	var b strings.Builder
	f.write(&b)
	return b.String()
}

func (f *Formula) write(b *strings.Builder) {
	switch f.Op {
	case OpTrue:
		b.WriteString("true")
	case OpFalse:
		b.WriteString("false")
	case OpAtom:
		fmt.Fprintf(b, "%s=%d", f.Prop.Field, f.Prop.Value)
	case OpNot:
		b.WriteByte('!')
		f.L.writeAtomic(b)
	case OpNext:
		b.WriteString("X ")
		f.L.writeAtomic(b)
	case OpAnd, OpOr, OpUntil, OpRelease:
		b.WriteByte('(')
		f.L.write(b)
		fmt.Fprintf(b, " %s ", f.Op)
		f.R.write(b)
		b.WriteByte(')')
	}
}

func (f *Formula) writeAtomic(b *strings.Builder) {
	switch f.Op {
	case OpTrue, OpFalse, OpAtom, OpNot, OpNext:
		f.write(b)
	default:
		f.write(b) // binary forms already parenthesize themselves
	}
}

// Equal reports structural equality of formulas.
func (f *Formula) Equal(g *Formula) bool {
	if f == g {
		return true
	}
	if f == nil || g == nil || f.Op != g.Op {
		return false
	}
	switch f.Op {
	case OpTrue, OpFalse:
		return true
	case OpAtom:
		return f.Prop == g.Prop
	case OpNot, OpNext:
		return f.L.Equal(g.L)
	default:
		return f.L.Equal(g.L) && f.R.Equal(g.R)
	}
}

// ToNNF returns an equivalent formula in negation normal form: negation
// appears only directly above atomic propositions. Derived operators have
// already been eliminated by the constructors.
func ToNNF(f *Formula) *Formula {
	return nnf(f, false)
}

func nnf(f *Formula, neg bool) *Formula {
	switch f.Op {
	case OpTrue:
		if neg {
			return falseFormula
		}
		return trueFormula
	case OpFalse:
		if neg {
			return trueFormula
		}
		return falseFormula
	case OpAtom:
		if neg {
			return &Formula{Op: OpNot, L: f}
		}
		return f
	case OpNot:
		return nnf(f.L, !neg)
	case OpAnd:
		if neg {
			return Or(nnf(f.L, true), nnf(f.R, true))
		}
		return And(nnf(f.L, false), nnf(f.R, false))
	case OpOr:
		if neg {
			return And(nnf(f.L, true), nnf(f.R, true))
		}
		return Or(nnf(f.L, false), nnf(f.R, false))
	case OpNext:
		return Next(nnf(f.L, neg))
	case OpUntil:
		if neg {
			return Release(nnf(f.L, true), nnf(f.R, true))
		}
		return Until(nnf(f.L, false), nnf(f.R, false))
	case OpRelease:
		if neg {
			return Until(nnf(f.L, true), nnf(f.R, true))
		}
		return Release(nnf(f.L, false), nnf(f.R, false))
	}
	panic(fmt.Sprintf("ltl: unknown operator %v", f.Op))
}

// IsNNF reports whether negation appears only directly above atoms.
func IsNNF(f *Formula) bool {
	switch f.Op {
	case OpTrue, OpFalse, OpAtom:
		return true
	case OpNot:
		return f.L.Op == OpAtom
	case OpNext:
		return IsNNF(f.L)
	default:
		return IsNNF(f.L) && IsNNF(f.R)
	}
}

// Props returns the distinct atomic propositions occurring in f, sorted by
// field name then value.
func (f *Formula) Props() []Prop {
	seen := map[Prop]bool{}
	var walk func(g *Formula)
	walk = func(g *Formula) {
		if g == nil {
			return
		}
		if g.Op == OpAtom {
			seen[g.Prop] = true
			return
		}
		walk(g.L)
		walk(g.R)
	}
	walk(f)
	out := make([]Prop, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Field != out[j].Field {
			return out[i].Field < out[j].Field
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// EvalTrace evaluates f over a finite trace of states (each an Env),
// interpreting the trace as the infinite sequence in which the final state
// repeats forever, per Definition 1 of the paper. The trace must be
// non-empty.
func (f *Formula) EvalTrace(trace []Env) bool {
	if len(trace) == 0 {
		panic("ltl: EvalTrace on empty trace")
	}
	return evalAt(f, trace, 0)
}

func evalAt(f *Formula, trace []Env, i int) bool {
	if i >= len(trace) {
		i = len(trace) - 1
	}
	switch f.Op {
	case OpTrue:
		return true
	case OpFalse:
		return false
	case OpAtom:
		return trace[i].Holds(f.Prop)
	case OpNot:
		return !evalAt(f.L, trace, i)
	case OpAnd:
		return evalAt(f.L, trace, i) && evalAt(f.R, trace, i)
	case OpOr:
		return evalAt(f.L, trace, i) || evalAt(f.R, trace, i)
	case OpNext:
		return evalAt(f.L, trace, i+1)
	case OpUntil:
		// The suffix from the last position is constant, so the until is
		// decided by position len(trace)-1 at the latest.
		for j := i; j < len(trace); j++ {
			if evalAt(f.R, trace, j) {
				return true
			}
			if !evalAt(f.L, trace, j) {
				return false
			}
		}
		return false
	case OpRelease:
		for j := i; j < len(trace); j++ {
			if !evalAt(f.R, trace, j) {
				return false
			}
			if evalAt(f.L, trace, j) {
				return true
			}
		}
		return true // R held through the constant suffix
	}
	panic(fmt.Sprintf("ltl: unknown operator %v", f.Op))
}

// Size returns the number of nodes in the formula tree.
func (f *Formula) Size() int {
	if f == nil {
		return 0
	}
	return 1 + f.L.Size() + f.R.Size()
}
