package ltl

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxClosure is the maximum number of distinct subformulas supported by a
// Closure. A Valuation packs one truth bit per subformula into two words.
const MaxClosure = 128

// Valuation is a truth assignment to the subformulas of a Closure: bit i is
// the truth value of subformula i. A Valuation determines a maximally-
// consistent subset of the extended closure ecl(phi) (Section 5.1): the set
// contains subformula i if bit i is set and its negation otherwise.
// Valuations are comparable and usable as map keys.
type Valuation [2]uint64

// Get reports the truth bit for subformula i.
func (v Valuation) Get(i int) bool {
	return v[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set returns a copy of v with the truth bit for subformula i set to b.
func (v Valuation) Set(i int, b bool) Valuation {
	if b {
		v[i>>6] |= 1 << (uint(i) & 63)
	} else {
		v[i>>6] &^= 1 << (uint(i) & 63)
	}
	return v
}

// Count returns the number of true bits.
func (v Valuation) Count() int {
	return bits.OnesCount64(v[0]) + bits.OnesCount64(v[1])
}

// Less imposes a total order on valuations (for canonical sorted labels).
func (v Valuation) Less(w Valuation) bool {
	if v[1] != w[1] {
		return v[1] < w[1]
	}
	return v[0] < w[0]
}

// Compare orders valuations consistently with Less, returning -1, 0, or +1.
// It is the comparison function for allocation-free sorts of label sets.
func (v Valuation) Compare(w Valuation) int {
	if v[1] != w[1] {
		if v[1] < w[1] {
			return -1
		}
		return 1
	}
	if v[0] != w[0] {
		if v[0] < w[0] {
			return -1
		}
		return 1
	}
	return 0
}

// Closure is the extended closure ecl(phi) of an NNF formula phi, indexed so
// that every subformula has an integer id and children precede parents.
// Negations of subformulas are represented implicitly: a maximally-
// consistent set is exactly a Valuation over the positive subformulas.
type Closure struct {
	root  int
	subs  []*Formula
	index map[string]int
	ops   []Op
	left  []int // child id, -1 if none
	right []int
	atoms []int // ids of OpAtom subformulas, ascending
}

// NewClosure builds the closure of f. f is converted to NNF first. It
// returns an error if the closure would exceed MaxClosure subformulas.
func NewClosure(f *Formula) (*Closure, error) {
	c := &Closure{index: map[string]int{}}
	root, err := c.intern(ToNNF(f))
	if err != nil {
		return nil, err
	}
	c.root = root
	return c, nil
}

// MustClosure is NewClosure but panics on error; for statically known specs.
func MustClosure(f *Formula) *Closure {
	c, err := NewClosure(f)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Closure) intern(f *Formula) (int, error) {
	key := f.String()
	if id, ok := c.index[key]; ok {
		return id, nil
	}
	l, r := -1, -1
	var err error
	if f.L != nil {
		if l, err = c.intern(f.L); err != nil {
			return 0, err
		}
	}
	if f.R != nil {
		if r, err = c.intern(f.R); err != nil {
			return 0, err
		}
	}
	// Interning children first may have added this formula via sharing.
	if id, ok := c.index[key]; ok {
		return id, nil
	}
	id := len(c.subs)
	if id >= MaxClosure {
		return 0, fmt.Errorf("ltl: closure exceeds %d subformulas", MaxClosure)
	}
	c.subs = append(c.subs, f)
	c.ops = append(c.ops, f.Op)
	c.left = append(c.left, l)
	c.right = append(c.right, r)
	c.index[key] = id
	if f.Op == OpAtom {
		c.atoms = append(c.atoms, id)
	}
	return id, nil
}

// Size returns the number of distinct subformulas.
func (c *Closure) Size() int { return len(c.subs) }

// Root returns the id of the root formula.
func (c *Closure) Root() int { return c.root }

// Sub returns subformula i.
func (c *Closure) Sub(i int) *Formula { return c.subs[i] }

// Atoms returns the ids of the atomic-proposition subformulas.
func (c *Closure) Atoms() []int { return c.atoms }

// AtomValuation computes the truth bits for the atomic subformulas under
// env. Bits for non-atom subformulas are left zero.
func (c *Closure) AtomValuation(env Env) Valuation {
	var v Valuation
	for _, id := range c.atoms {
		if env.Holds(c.subs[id].Prop) {
			v = v.Set(id, true)
		}
	}
	return v
}

// Extend computes the unique valuation at a non-sink state whose atomic
// propositions are given by atoms and that is followed by a successor state
// with valuation next. This realizes the follows relation of Section 5.1:
// given the successor's maximally-consistent set, the current state's set is
// determined bottom-up.
func (c *Closure) Extend(atoms, next Valuation) Valuation {
	var v Valuation
	for i, op := range c.ops {
		var b bool
		switch op {
		case OpTrue:
			b = true
		case OpFalse:
			b = false
		case OpAtom:
			b = atoms.Get(i)
		case OpNot:
			b = !v.Get(c.left[i])
		case OpAnd:
			b = v.Get(c.left[i]) && v.Get(c.right[i])
		case OpOr:
			b = v.Get(c.left[i]) || v.Get(c.right[i])
		case OpNext:
			b = next.Get(c.left[i])
		case OpUntil:
			b = v.Get(c.right[i]) || (v.Get(c.left[i]) && next.Get(i))
		case OpRelease:
			b = v.Get(c.right[i]) && (v.Get(c.left[i]) || next.Get(i))
		}
		v = v.Set(i, b)
	}
	return v
}

// Sink computes the valuation at a sink state (a state whose only
// transition is a self-loop), i.e. on the constant trace q q q ... This is
// the HoldsSink/Holds0 function of Section 5.1, with release evaluated
// under standard LTL semantics (see DESIGN.md "Deviations").
func (c *Closure) Sink(atoms Valuation) Valuation {
	var v Valuation
	for i, op := range c.ops {
		var b bool
		switch op {
		case OpTrue:
			b = true
		case OpFalse:
			b = false
		case OpAtom:
			b = atoms.Get(i)
		case OpNot:
			b = !v.Get(c.left[i])
		case OpAnd:
			b = v.Get(c.left[i]) && v.Get(c.right[i])
		case OpOr:
			b = v.Get(c.left[i]) || v.Get(c.right[i])
		case OpNext:
			b = v.Get(c.left[i])
		case OpUntil:
			b = v.Get(c.right[i])
		case OpRelease:
			b = v.Get(c.right[i])
		}
		v = v.Set(i, b)
	}
	return v
}

// Follows reports whether valuation m2 may directly succeed m1, i.e. the
// temporal obligations recorded in m1 are consistent with m2 (the follows
// relation lifted to valuations). Extend(atoms(m1), m2) == m1 implies
// Follows(m1, m2); this standalone check is used by tests and by
// counterexample reconstruction.
func (c *Closure) Follows(m1, m2 Valuation) bool {
	for i, op := range c.ops {
		switch op {
		case OpNext:
			if m1.Get(i) != m2.Get(c.left[i]) {
				return false
			}
		case OpUntil:
			want := m1.Get(c.right[i]) || (m1.Get(c.left[i]) && m2.Get(i))
			if m1.Get(i) != want {
				return false
			}
		case OpRelease:
			want := m1.Get(c.right[i]) && (m1.Get(c.left[i]) || m2.Get(i))
			if m1.Get(i) != want {
				return false
			}
		}
	}
	return true
}

// Holds reports whether the root formula is true in valuation v.
func (c *Closure) Holds(v Valuation) bool { return v.Get(c.root) }

// FormatValuation renders the true subformulas of v, for debugging.
func (c *Closure) FormatValuation(v Valuation) string {
	var parts []string
	for i, f := range c.subs {
		if v.Get(i) {
			parts = append(parts, f.String())
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
