package core

import "netupdate/internal/sat"

// earlyTerm implements the early-search-termination optimization of
// Section 4.2.B: every counterexample constrains the order in which units
// may be applied ("some unit of U-minus must precede some unit of
// U-plus"); the constraints accumulate in an incremental SAT solver over
// ordering variables, and unsatisfiability proves that no simple careful
// sequence can avoid all known-wrong configurations, so the search can
// stop and report "impossible".
//
// Transitivity of the ordering is enforced lazily (CEGAR-style): the
// solver runs without transitivity axioms, and whenever its model
// contains a precedence cycle, a single clause forbidding that cycle is
// added and the solver re-runs. Feasible instances almost always produce
// an acyclic model immediately, so the eager O(m^3) axiom instantiation
// is avoided.
type earlyTerm struct {
	s         *sat.Solver
	vars      map[[2]int]int // (i, j) with i < j -> solver variable
	mentioned []int
	inSAT     map[int]bool
	unsat     bool
}

func newEarlyTerm() *earlyTerm {
	return &earlyTerm{s: sat.New(), vars: map[[2]int]int{}, inSAT: map[int]bool{}}
}

// before returns the literal encoding "unit i is updated before unit j".
// Antisymmetry and totality are built into the encoding (one variable per
// unordered pair).
func (et *earlyTerm) before(i, j int) sat.Lit {
	if i == j {
		panic("core: before(i, i)")
	}
	neg := false
	if i > j {
		i, j = j, i
		neg = true
	}
	v, ok := et.vars[[2]int{i, j}]
	if !ok {
		v = et.s.NewVar()
		et.vars[[2]int{i, j}] = v
	}
	if neg {
		return sat.Lit(-v)
	}
	return sat.Lit(v)
}

func (et *earlyTerm) mention(u int) {
	if !et.inSAT[u] {
		et.inSAT[u] = true
		et.mentioned = append(et.mentioned, u)
	}
}

// addCexConstraint records a counterexample pattern: the bad
// configuration has units in applied updated and units in unapplied not
// yet updated; every valid order must place some unapplied unit before
// some applied unit. It returns false when the accumulated constraints
// are unsatisfiable (no ordering can work).
func (et *earlyTerm) addCexConstraint(applied, unapplied []int) bool {
	if et.unsat {
		return false
	}
	if len(applied) == 0 || len(unapplied) == 0 {
		// A pattern matching the initial (no unit applied) or final (all
		// applied) configuration: those configurations are fixed ends of
		// every simple sequence, so no ordering can avoid the pattern.
		et.unsat = true
		return false
	}
	for _, u := range applied {
		et.mention(u)
	}
	for _, u := range unapplied {
		et.mention(u)
	}
	var lits []sat.Lit
	for _, b := range unapplied {
		for _, a := range applied {
			lits = append(lits, et.before(b, a))
		}
	}
	if !et.s.AddClause(lits...) {
		et.unsat = true
		return false
	}
	return et.solveAcyclic()
}

// solveAcyclic runs the solver, lazily excluding models whose precedence
// relation is cyclic, until either an acyclic model is found (some update
// order may still exist) or the constraints become unsatisfiable.
func (et *earlyTerm) solveAcyclic() bool {
	for {
		if !et.s.Solve() {
			et.unsat = true
			return false
		}
		cycle := et.modelCycle()
		if cycle == nil {
			return true
		}
		var lits []sat.Lit
		for i := range cycle {
			j := (i + 1) % len(cycle)
			lits = append(lits, et.before(cycle[i], cycle[j]).Neg())
		}
		if !et.s.AddClause(lits...) {
			et.unsat = true
			return false
		}
	}
}

// modelCycle returns a precedence cycle in the current model over the
// mentioned units, or nil if the model is a valid (acyclic) order. Only
// edges whose variables exist (i.e. appear in some constraint) matter:
// absent pairs are unconstrained and can always be ordered consistently
// with a topological order of the constrained edges.
func (et *earlyTerm) modelCycle() []int {
	succ := map[int][]int{}
	for pair, v := range et.vars {
		switch et.s.Value(v) {
		case 1:
			succ[pair[0]] = append(succ[pair[0]], pair[1])
		case -1:
			succ[pair[1]] = append(succ[pair[1]], pair[0])
		}
	}
	const (
		gray  = 1
		black = 2
	)
	color := map[int]uint8{}
	parent := map[int]int{}
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = gray
		for _, u := range succ[v] {
			switch color[u] {
			case 0:
				parent[u] = v
				if dfs(u) {
					return true
				}
			case gray:
				cycle = append(cycle, u)
				for w := v; w != u; w = parent[w] {
					cycle = append(cycle, w)
				}
				// Reverse into cycle order u -> ... -> v -> u.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[v] = black
		return false
	}
	for _, u := range et.mentioned {
		if color[u] == 0 {
			if dfs(u) {
				return cycle
			}
		}
	}
	return nil
}
