package core

// Session snapshot/restore (ROADMAP item 3). A warm session is expensive
// to build — per-class Kripke structures (table application plus a global
// cycle check per class), a full initial labeling per checker, and the
// interned label tables — and all of it was being thrown away on pool
// eviction and process restart. This file serializes the warm state to a
// compact versioned binary image and rebuilds a session from it while
// skipping every expensive step: the state arena is shared or rebuilt
// from the topology, per-class transition relations are installed from
// recorded successor lists (no table application, no cycle check — the
// snapshot was taken from a structure that was built and checked against
// the same configuration, and the image is checksummed), and the
// label-based checkers are reconstructed from their recorded per-state
// labels (no relabelAll, the dominant cost). The learned
// wrong-pattern/SAT/dead-set stores ride along as the plan cache's JSON
// snapshot.
//
// Format (all integers varint-encoded unless noted):
//
//	"NUSS" | u32le version | 32-byte context fingerprint
//	runs counter
//	config:  #switches, then per switch (ascending): id, #rules, rules
//	warmth:  #formulas, then per formula (sorted key order): key,
//	         #labels, per label #valuations + raw [2]uint64 words
//	classes: #classes, then per class (spec order): formula key,
//	         #states, labels? flag; when flagged: run-length-encoded
//	         label and sink-label arrays (ids index this formula's
//	         warmth section; -1 = unset) and the per-state atom
//	         valuations as default + exceptions (most states satisfy no
//	         atomic subformula, so the sparse form is a handful of
//	         entries); then #successors total and the per-state
//	         successor lists
//	cache:   flag, then the PlanCacheSnapshot JSON blob
//	sha256 checksum of everything above (raw 32 bytes)
//
// Label ids are private to the exporting table, so the decoder re-interns
// every label into the (possibly shared, possibly pre-populated) target
// table and remaps the per-state arrays — restoring into a fresh table
// reproduces the original ids exactly, and restoring into a shared one
// lands on whatever ids the table already assigned, which is invisible to
// synthesis (only label contents carry meaning). The context fingerprint
// binds the image to the topology, the class specifications, and the
// plan-shape options; restore rejects any mismatch, any unknown version,
// and any checksum failure, and callers fall back to a cold build.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"netupdate/internal/config"
	"netupdate/internal/ltl"
	"netupdate/internal/mc"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

const (
	snapMagic   = "NUSS"
	snapVersion = 1
)

// Snapshot decode failure modes. Callers distinguish them only to report;
// every one of them means "cold-rebuild instead".
var (
	// ErrBadSnapshot reports a corrupted or truncated snapshot image
	// (checksum or structural decode failure).
	ErrBadSnapshot = errors.New("core: corrupted session snapshot")
	// ErrSnapshotVersion reports a version-skewed snapshot image.
	ErrSnapshotVersion = errors.New("core: unsupported session snapshot version")
	// ErrSnapshotMismatch reports a snapshot taken under a different
	// topology, class specification set, or plan-shape options.
	ErrSnapshotMismatch = errors.New("core: session snapshot context mismatch")
)

// --- encoding primitives ---

type snapWriter struct {
	buf []byte
}

func (w *snapWriter) raw(b []byte)     { w.buf = append(w.buf, b...) }
func (w *snapWriter) u32(v uint32)     { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *snapWriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *snapWriter) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *snapWriter) count(n int)      { w.uvarint(uint64(n)) }
func (w *snapWriter) str(s string) {
	w.count(len(s))
	w.buf = append(w.buf, s...)
}

type snapReader struct {
	buf []byte
	off int
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
	}
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail("truncated at offset %d", r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *snapReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a collection length, bounding it by what could possibly
// fit in the remaining bytes so a corrupted length cannot drive a huge
// allocation before the checksum would have caught it.
func (r *snapReader) count() int {
	v := r.uvarint()
	if r.err == nil && v > uint64(len(r.buf)-r.off) {
		r.fail("count %d exceeds remaining %d bytes", v, len(r.buf)-r.off)
		return 0
	}
	return int(v)
}

// num reads one plain non-negative value (a switch id, a state id, a
// counter) — unlike count it carries no collection-size bound.
func (r *snapReader) num() int {
	return int(r.uvarint())
}

func (r *snapReader) str() string {
	n := r.count()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// --- encode ---

// Snapshot serializes the session's warm state — current configuration,
// interned label tables, per-class transition relations and labelings,
// and the attached plan cache — into a self-validating binary image that
// RestoreSession rebuilds byte-identically (same plans, same stats modulo
// timings). The session must be quiescent (no Synthesize in flight).
func (s *Session) Snapshot() ([]byte, error) {
	w := &snapWriter{buf: make([]byte, 0, 4096)}
	w.raw([]byte(snapMagic))
	w.u32(snapVersion)
	if s.ctxFP == nil {
		s.ctxFP = contextFingerprint(s.topo, s.specs, s.opts)
	}
	w.raw(s.ctxFP)
	w.count(s.runs)

	// Configuration: ascending switches, rules in stored order (Clone
	// semantics — the restored config must be indistinguishable from the
	// retained pointer).
	sws := s.cur.Switches()
	w.count(len(sws))
	for _, sw := range sws {
		w.count(sw)
		tbl := s.cur.Table(sw)
		w.count(len(tbl))
		for _, rule := range tbl {
			encodeRule(w, rule)
		}
	}

	// Warmth: every formula's label table, dumped in id order so the
	// snapshot-local label index equals the exporting table's LabelID.
	type tabDump struct {
		key    string
		labels [][]ltl.Valuation
	}
	var tabs []tabDump
	s.warm.ForEach(func(key string, tab *mc.LabelTable) {
		tabs = append(tabs, tabDump{key: key, labels: tab.Export()})
	})
	w.count(len(tabs))
	for _, td := range tabs {
		w.str(td.key)
		w.count(len(td.labels))
		for _, lab := range td.labels {
			w.count(len(lab))
			for _, v := range lab {
				w.uvarint(v[0])
				w.uvarint(v[1])
			}
		}
	}

	// Per-class structures, in spec order.
	w.count(len(s.specs))
	for i, cs := range s.specs {
		w.str(cs.Formula.String())
		k := s.ks[i]
		n := k.NumStates()
		w.count(n)
		if exp, ok := s.checkers[i].(mc.LabelExporter); ok {
			w.buf = append(w.buf, 1)
			label, sinkLab := exp.ExportLabels()
			encodeIDsRLE(w, label)
			encodeIDsRLE(w, sinkLab)
			encodeAtoms(w, exp.ExportAtoms())
		} else {
			w.buf = append(w.buf, 0)
		}
		total := 0
		for id := 0; id < n; id++ {
			total += len(k.Succ(id))
		}
		w.count(total)
		for id := 0; id < n; id++ {
			succ := k.Succ(id)
			w.count(len(succ))
			for _, t := range succ {
				w.count(t)
			}
		}
	}

	// Plan cache (carries the learned wrong-pattern/SAT/dead-set stores).
	// A restored session that never touched its cache still holds the
	// undecoded blob — pass it through verbatim, which both skips a
	// marshal and keeps restore→snapshot byte-identical for free.
	if s.cacheBlob != nil {
		w.buf = append(w.buf, 1)
		w.count(len(s.cacheBlob))
		w.raw(s.cacheBlob)
	} else if s.cache != nil {
		blob, err := json.Marshal(s.cache.Snapshot())
		if err != nil {
			return nil, err
		}
		w.buf = append(w.buf, 1)
		w.count(len(blob))
		w.raw(blob)
	} else {
		w.buf = append(w.buf, 0)
	}

	sum := sha256.Sum256(w.buf)
	w.raw(sum[:])
	return w.buf, nil
}

func encodeRule(w *snapWriter, r network.Rule) {
	w.varint(int64(r.Priority))
	w.varint(int64(r.Match.InPort))
	w.varint(int64(r.Match.Src))
	w.varint(int64(r.Match.Dst))
	w.varint(int64(r.Match.Typ))
	w.count(len(r.Actions))
	for _, a := range r.Actions {
		w.varint(int64(a.Kind))
		w.varint(int64(a.Port))
		w.varint(int64(a.Field))
		w.varint(int64(a.Value))
	}
}

func decodeRule(r *snapReader) network.Rule {
	rule := network.Rule{
		Priority: int(r.varint()),
		Match: network.Pattern{
			InPort: topology.Port(r.varint()),
			Src:    int(r.varint()),
			Dst:    int(r.varint()),
			Typ:    int(r.varint()),
		},
	}
	nActs := r.count()
	if r.err != nil {
		return rule
	}
	rule.Actions = make([]network.Action, nActs)
	for i := range rule.Actions {
		rule.Actions[i] = network.Action{
			Kind:  network.ActionKind(r.varint()),
			Port:  topology.Port(r.varint()),
			Field: network.FieldID(r.varint()),
			Value: int(r.varint()),
		}
	}
	return rule
}

// encodeIDsRLE writes a per-state label-id array as runs of equal
// values. Labelings are extremely repetitive — most states of a class
// carry one of a handful of labels in long stretches — so the run form
// shrinks the image and turns per-state decode work (a varint and a
// remap lookup each) into per-run work.
func encodeIDsRLE(w *snapWriter, a []mc.LabelID) {
	runs := 0
	for i := 0; i < len(a); {
		j := i + 1
		for j < len(a) && a[j] == a[i] {
			j++
		}
		runs++
		i = j
	}
	w.count(runs)
	for i := 0; i < len(a); {
		j := i + 1
		for j < len(a) && a[j] == a[i] {
			j++
		}
		w.uvarint(uint64(j - i))
		w.varint(int64(a[i]))
		i = j
	}
}

// decodeIDsRLE rebuilds a dense per-state id array from its run
// encoding, remapping each run's id once into the target table's id
// space.
func decodeIDsRLE(r *snapReader, n int, remap []mc.LabelID) []mc.LabelID {
	out := make([]mc.LabelID, n)
	runs := r.count()
	at := 0
	for k := 0; k < runs && r.err == nil; k++ {
		ln := int(r.uvarint())
		if ln <= 0 || at+ln > n {
			r.fail("label run of %d at state %d overflows %d states", ln, at, n)
			return nil
		}
		id := remapLabel(r, remap)
		for e := at + ln; at < e; at++ {
			out[at] = id
		}
	}
	if r.err == nil && at != n {
		r.fail("label runs cover %d of %d states", at, n)
		return nil
	}
	return out
}

// encodeAtoms writes a per-state atom-valuation array as a default value
// plus exceptions: formula atoms name specific switches and ports, so all
// but a handful of states share one valuation and the sparse form both
// keeps the image small and lets the decoder skip the per-state
// AtomValuation sweep that otherwise dominates checker reconstruction.
// The default is the most frequent valuation, ties broken by word value
// so the encoding is deterministic.
func encodeAtoms(w *snapWriter, atoms []ltl.Valuation) {
	counts := make(map[ltl.Valuation]int, 8)
	for _, v := range atoms {
		counts[v]++
	}
	var def ltl.Valuation
	bestN := 0
	for v, c := range counts {
		if c > bestN || (c == bestN && c > 0 && (v[0] < def[0] || (v[0] == def[0] && v[1] < def[1]))) {
			def, bestN = v, c
		}
	}
	w.uvarint(def[0])
	w.uvarint(def[1])
	w.count(len(atoms) - bestN)
	prev := 0
	for id, v := range atoms {
		if v == def {
			continue
		}
		w.uvarint(uint64(id - prev))
		prev = id
		w.uvarint(v[0])
		w.uvarint(v[1])
	}
}

// decodeAtoms reads the sparse per-state atom-valuation encoding into an
// image the checker materializes lazily (mc.AtomsImage): the dense array
// — by far the largest per-class allocation — is never built on the
// restore critical path.
func decodeAtoms(r *snapReader, n int) *mc.AtomsImage {
	img := &mc.AtomsImage{
		N:   n,
		Def: ltl.Valuation{r.uvarint(), r.uvarint()},
	}
	nExc := r.count()
	img.IDs = make([]int32, 0, nExc)
	img.Vals = make([]ltl.Valuation, 0, nExc)
	id := 0
	for e := 0; e < nExc && r.err == nil; e++ {
		id += int(r.uvarint())
		if id < 0 || id >= n {
			r.fail("atom exception state %d out of range [0,%d)", id, n)
			return nil
		}
		img.IDs = append(img.IDs, int32(id))
		img.Vals = append(img.Vals, ltl.Valuation{r.uvarint(), r.uvarint()})
	}
	return img
}

// --- decode ---

// RestoreSession rebuilds a session from a Snapshot image over private
// resources. The topology, class specifications, and options must be the
// ones the snapshot was taken under (validated via the context
// fingerprint); any integrity, version, or context failure is reported
// and the caller cold-builds instead.
func RestoreSession(topo *topology.Topology, specs []config.ClassSpec, opts Options, data []byte) (*Session, error) {
	return RestoreSessionWith(topo, specs, opts, data, SessionResources{})
}

// RestoreSessionWith is RestoreSession over shared resources: the state
// arena is reused instead of rebuilt, and the restored labels are
// re-interned into the shared warmth tables (id remap), so a restored
// tenant lands deduplicated exactly like a cold-built one would.
func RestoreSessionWith(topo *topology.Topology, specs []config.ClassSpec, opts Options, data []byte, res SessionResources) (*Session, error) {
	const headLen = len(snapMagic) + 4 + sha256.Size
	if len(data) < headLen+sha256.Size {
		return nil, fmt.Errorf("%w: %d-byte image", ErrBadSnapshot, len(data))
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if want := sha256.Sum256(body); string(want[:]) != string(sum) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	r := &snapReader{buf: body}
	if string(r.take(len(snapMagic))) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if v := r.u32(); v != snapVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrSnapshotVersion, v, snapVersion)
	}
	fp := contextFingerprint(topo, specs, opts)
	if string(r.take(sha256.Size)) != string(fp) {
		return nil, ErrSnapshotMismatch
	}
	runs := r.num()

	// Configuration.
	cur := config.New()
	nSw := r.count()
	for i := 0; i < nSw && r.err == nil; i++ {
		sw := r.num()
		nRules := r.count()
		if r.err != nil {
			break
		}
		tbl := make(network.Table, 0, nRules)
		for j := 0; j < nRules && r.err == nil; j++ {
			tbl = append(tbl, decodeRule(r))
		}
		cur.SetTable(sw, tbl)
	}
	if r.err != nil {
		return nil, r.err
	}

	s := newSessionShell(topo, cur, specs, opts, res)
	s.ctxFP = fp
	s.runs = runs

	// Warmth: re-intern every recorded label into the (possibly shared)
	// target table for its formula, building the old-id -> new-id remap
	// the per-class label arrays are rewritten through.
	specOf := make(map[string]*ltl.Formula, len(specs))
	for _, cs := range specs {
		specOf[cs.Formula.String()] = cs.Formula
	}
	remaps := make(map[string][]mc.LabelID)
	valBuf := make([]ltl.Valuation, 0, 64)
	nFormulas := r.count()
	for f := 0; f < nFormulas && r.err == nil; f++ {
		key := r.str()
		nLabels := r.count()
		if r.err != nil {
			break
		}
		spec, ok := specOf[key]
		if !ok {
			return nil, fmt.Errorf("%w: unknown formula %q", ErrBadSnapshot, key)
		}
		tab, err := s.warm.Table(spec)
		if err != nil {
			return nil, err
		}
		remap := make([]mc.LabelID, nLabels)
		for li := 0; li < nLabels && r.err == nil; li++ {
			nVals := r.count()
			valBuf = valBuf[:0]
			for vi := 0; vi < nVals && r.err == nil; vi++ {
				valBuf = append(valBuf, ltl.Valuation{r.uvarint(), r.uvarint()})
			}
			if r.err == nil {
				remap[li], _ = tab.Intern(valBuf)
			}
		}
		remaps[key] = remap
	}
	if r.err != nil {
		return nil, r.err
	}

	// Per-class structures.
	nClasses := r.count()
	if r.err == nil && nClasses != len(specs) {
		return nil, fmt.Errorf("%w: %d classes, want %d", ErrBadSnapshot, nClasses, len(specs))
	}
	factory := opts.Checker.warmFactory()
	for i := 0; i < nClasses && r.err == nil; i++ {
		cs := specs[i]
		key := r.str()
		if r.err == nil && key != cs.Formula.String() {
			return nil, fmt.Errorf("%w: class %d formula %q, want %q", ErrBadSnapshot, i, key, cs.Formula)
		}
		nStates := r.count()
		flag := r.take(1)
		hasLabels := len(flag) == 1 && flag[0] == 1
		var (
			label, sinkLab []mc.LabelID
			atoms          *mc.AtomsImage
		)
		if hasLabels {
			remap := remaps[key]
			label = decodeIDsRLE(r, nStates, remap)
			sinkLab = decodeIDsRLE(r, nStates, remap)
			atoms = decodeAtoms(r, nStates)
		}
		// Successor lists decode into one flat backing array (the total
		// is recorded up front), capped subslices per state — thousands
		// of per-state allocations collapse into one.
		total := r.count()
		if r.err != nil {
			break
		}
		flatSucc := make([]int, total)
		succ := make([][]int, nStates)
		fill := 0
		for id := 0; id < nStates && r.err == nil; id++ {
			nSucc := r.count()
			if nSucc == 0 {
				continue
			}
			if fill+nSucc > total {
				r.fail("class %d successor total %d exceeded at state %d", i, total, id)
				break
			}
			lst := flatSucc[fill : fill+nSucc : fill+nSucc]
			for si := range lst {
				lst[si] = r.num()
			}
			succ[id] = lst
			fill += nSucc
		}
		if r.err == nil && fill != total {
			r.fail("class %d successor total %d, decoded %d", i, total, fill)
		}
		if r.err != nil {
			break
		}
		k, err := s.arena.Restore(cur, cs.Class, succ)
		if err != nil {
			return nil, fmt.Errorf("%w: class %d: %v", ErrBadSnapshot, i, err)
		}
		var chk mc.Checker
		switch {
		case hasLabels && opts.Checker == CheckerIncremental:
			chk, err = mc.NewIncrementalRestored(k, cs.Formula, s.warm, atoms, label, sinkLab)
		case hasLabels && opts.Checker == CheckerBatch:
			chk, err = mc.NewBatchRestored(k, cs.Formula, s.warm, atoms, label, sinkLab)
		default:
			// Automaton/header-space backends keep no exportable labeling;
			// they rebuild from the restored structure, which still skips
			// the Kripke-side table application and cycle check.
			chk, err = factory(k, cs.Formula, s.warm)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: class %d checker: %v", ErrBadSnapshot, i, err)
		}
		s.ks = append(s.ks, k)
		s.checkers = append(s.checkers, chk)
		_, di := chk.(mc.DeltaInvariant)
		s.canSkip = append(s.canSkip, di)
	}
	if r.err != nil {
		return nil, r.err
	}

	// Plan cache.
	flag := r.take(1)
	if len(flag) == 1 && flag[0] == 1 {
		n := r.count()
		blob := r.take(n)
		if r.err != nil {
			return nil, r.err
		}
		// The JSON decode is deferred to the first cache access
		// (Session.materializeCache): restore's critical path only copies
		// the checksummed blob, and a session resumed just to serve a few
		// requests may never pay for the decode at all.
		if !opts.NoPlanCache {
			s.cacheBlob = append([]byte(nil), blob...)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(body)-r.off)
	}
	return s, nil
}

// remapLabel decodes one snapshot label id and maps it into the target
// table's id space. -1 (unset) passes through.
func remapLabel(r *snapReader, remap []mc.LabelID) mc.LabelID {
	v := r.varint()
	if v == int64(mc.NoLabel) {
		return mc.NoLabel
	}
	if v < 0 || v >= int64(len(remap)) {
		r.fail("label id %d out of range [0,%d)", v, len(remap))
		return mc.NoLabel
	}
	return remap[v]
}
