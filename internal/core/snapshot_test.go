package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/kripke"
	"netupdate/internal/mc"
)

// TestSnapshotRoundTripByteIdentity: snapshot a warm mid-stream session,
// restore it, and serve the remainder of the stream from both the
// original (never-evicted) session and the restored one — every plan must
// be byte-identical, across all four checker backends. For the
// incremental backend the restored per-state labels must also decode to
// the original's label sets.
func TestSnapshotRoundTripByteIdentity(t *testing.T) {
	stream, targets := rollingTargets(t, 47, 2, 6, 1)
	if len(targets) < 4 {
		t.Fatalf("stream too short: %d targets", len(targets))
	}
	for _, kind := range []CheckerKind{CheckerIncremental, CheckerBatch, CheckerNuSMV, CheckerNetPlumber} {
		opts := Options{Checker: kind, Parallelism: 1}
		name := kind.String()
		sess, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sess.EnableCache()
		warmPrefix := 2
		for n := 0; n < warmPrefix; n++ {
			if _, err := sess.Synthesize(targets[n]); err != nil {
				t.Fatalf("%s warm step %d: %v", name, n, err)
			}
		}
		img, err := sess.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot: %v", name, err)
		}
		restored, err := RestoreSession(stream.Topo(), stream.Specs(), opts, img)
		if err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		if restored.Runs() != sess.Runs() {
			t.Fatalf("%s: restored runs = %d, want %d", name, restored.Runs(), sess.Runs())
		}
		if diff := config.Diff(restored.Current(), sess.Current()); len(diff) != 0 {
			t.Fatalf("%s: restored configuration differs on switches %v", name, diff)
		}
		if kind == CheckerIncremental {
			compareSessionLabels(t, name, sess, restored)
		}
		for n := warmPrefix; n < len(targets); n++ {
			orig, err := sess.Synthesize(targets[n])
			if err != nil {
				t.Fatalf("%s step %d: original: %v", name, n, err)
			}
			rest, err := restored.Synthesize(targets[n])
			if err != nil {
				t.Fatalf("%s step %d: restored: %v", name, n, err)
			}
			if got, want := rest.String(), orig.String(); got != want {
				t.Fatalf("%s step %d: restored plan diverged:\nrestored %s\noriginal %s",
					name, n, got, want)
			}
		}
	}
}

// compareSessionLabels checks that two sessions' incremental checkers
// decode to identical per-state label sets (ids may differ when tables
// are shared; contents may not).
func compareSessionLabels(t *testing.T, name string, a, b *Session) {
	t.Helper()
	for ci := range a.specs {
		ca, ok := a.checkers[ci].(*mc.Incremental)
		if !ok {
			t.Fatalf("%s: checker %d is %T", name, ci, a.checkers[ci])
		}
		cb := b.checkers[ci].(*mc.Incremental)
		for id := 0; id < a.ks[ci].NumStates(); id++ {
			la, lb := ca.Labels(id), cb.Labels(id)
			if len(la) != len(lb) {
				t.Fatalf("%s class %d state %d: label sets diverge (%d vs %d valuations)",
					name, ci, id, len(la), len(lb))
			}
			for j := range la {
				if la[j] != lb[j] {
					t.Fatalf("%s class %d state %d: label sets diverge", name, ci, id)
				}
			}
		}
	}
}

// TestSnapshotRoundTripSharedResources: restoring into a pool-shared
// arena and warmth cache — pre-populated by another tenant — must still
// reproduce the original plans (label ids are remapped on re-intern).
func TestSnapshotRoundTripSharedResources(t *testing.T) {
	stream, targets := rollingTargets(t, 53, 2, 5, 1)
	opts := Options{Parallelism: 1}
	res := SessionResources{Arena: kripke.NewArena(stream.Topo()), Warmth: mc.NewWarmth()}

	// A sibling tenant warms the shared resources first, so the restored
	// session's label ids cannot all coincide with the snapshot's.
	sibling, err := NewSessionWith(stream.Topo(), stream.Init(), stream.Specs(), opts, res)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sibling.Synthesize(targets[0]); err != nil {
		t.Fatal(err)
	}

	sess, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Synthesize(targets[0]); err != nil {
		t.Fatal(err)
	}
	img, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSessionWith(stream.Topo(), stream.Specs(), opts, img, res)
	if err != nil {
		t.Fatal(err)
	}
	compareSessionLabels(t, "shared", sess, restored)
	for n := 1; n < len(targets); n++ {
		orig, err := sess.Synthesize(targets[n])
		if err != nil {
			t.Fatalf("step %d: %v", n, err)
		}
		rest, err := restored.Synthesize(targets[n])
		if err != nil {
			t.Fatalf("step %d: restored: %v", n, err)
		}
		if orig.String() != rest.String() {
			t.Fatalf("step %d: shared-resource restore diverged", n)
		}
	}
}

// TestSnapshotRejection: corrupted, truncated, version-skewed, and
// context-mismatched images must be rejected with the matching sentinel
// (the pool falls back to a cold rebuild on any of them).
func TestSnapshotRejection(t *testing.T) {
	stream, targets := rollingTargets(t, 59, 2, 3, 1)
	opts := Options{Parallelism: 1}
	sess, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Synthesize(targets[0]); err != nil {
		t.Fatal(err)
	}
	img, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bitflip", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[len(bad)/2] ^= 0x40
		if _, err := RestoreSession(stream.Topo(), stream.Specs(), opts, bad); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("corrupted image: err = %v, want ErrBadSnapshot", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := RestoreSession(stream.Topo(), stream.Specs(), opts, img[:len(img)/3]); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("truncated image: err = %v, want ErrBadSnapshot", err)
		}
		if _, err := RestoreSession(stream.Topo(), stream.Specs(), opts, nil); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("empty image: err = %v, want ErrBadSnapshot", err)
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		bad := append([]byte(nil), img[:len(img)-sha256.Size]...)
		binary.LittleEndian.PutUint32(bad[len(snapMagic):], snapVersion+1)
		sum := sha256.Sum256(bad)
		bad = append(bad, sum[:]...)
		if _, err := RestoreSession(stream.Topo(), stream.Specs(), opts, bad); !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("skewed image: err = %v, want ErrSnapshotVersion", err)
		}
	})
	t.Run("context-mismatch", func(t *testing.T) {
		other := Options{Parallelism: 1, TwoSimple: true}
		if _, err := RestoreSession(stream.Topo(), stream.Specs(), other, img); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("mismatched options: err = %v, want ErrSnapshotMismatch", err)
		}
	})
}

// TestSharedArenaConcurrentSoak: many sessions sharing one arena and one
// warmth cache, each synthesizing its own stream on its own goroutine.
// Run under -race in CI, this is the shared-arena data-race soak; it also
// checks every session still produces the one-shot conformant plan.
func TestSharedArenaConcurrentSoak(t *testing.T) {
	stream, targets := rollingTargets(t, 61, 2, 4, 1)
	opts := Options{Parallelism: 1}
	res := SessionResources{Arena: kripke.NewArena(stream.Topo()), Warmth: mc.NewWarmth()}
	const sessions = 6
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := NewSessionWith(stream.Topo(), stream.Init(), stream.Specs(), opts, res)
			if err != nil {
				errc <- err
				return
			}
			for _, tgt := range targets {
				if _, err := sess.Synthesize(tgt); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
