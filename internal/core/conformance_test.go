package core

import (
	"errors"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/topology"
)

// conformanceCase is one synthesis problem posed identically to every
// engine configuration under test.
type conformanceCase struct {
	name string
	sc   *config.Scenario
	opts Options // base options; Checker/Parallelism varied by the tests
}

// conformanceCases covers every scenario family in internal/config: the
// three Figure 1 examples, feasible diamond workloads on generated
// topologies, and the infeasible double-diamond gadget at all three
// granularities (switch, rule, 2-simple).
func conformanceCases(t *testing.T) []conformanceCase {
	t.Helper()
	cases := []conformanceCase{
		{name: "fig1-red-green", sc: config.Fig1RedGreen()},
		{name: "fig1-red-blue", sc: config.Fig1RedBlue()},
		{name: "fig1-waypoint", sc: config.Fig1RedBlueWaypoint()},
	}
	topo := topology.SmallWorld(60, 4, 0.3, 60)
	sc, err := config.Diamonds(topo, config.DiamondOptions{
		Pairs: 2, Property: config.Reachability, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, conformanceCase{name: "diamond-60-reach", sc: sc})
	topoW := topology.SmallWorld(80, 4, 0.3, 9)
	scW, err := config.Diamonds(topoW, config.DiamondOptions{
		Pairs: 2, Property: config.Waypointing, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, conformanceCase{name: "diamond-80-waypoint", sc: scW})
	topoI := topology.SmallWorld(40, 4, 0.3, 21)
	scInf, err := config.Infeasible(topoI, config.InfeasibleOptions{Gadgets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases,
		conformanceCase{name: "infeasible-switch", sc: scInf},
		conformanceCase{name: "infeasible-rules", sc: scInf, opts: Options{RuleGranularity: true}},
		conformanceCase{name: "infeasible-2simple", sc: scInf, opts: Options{TwoSimple: true}},
	)
	return cases
}

// synthesizeOutcome runs one configuration and normalizes the result to
// (feasible, plan). Terminal errors other than ErrNoOrdering fail the test.
func synthesizeOutcome(t *testing.T, name string, sc *config.Scenario, opts Options) (bool, *Plan) {
	t.Helper()
	plan, err := Synthesize(sc, opts)
	if err != nil {
		if errors.Is(err, ErrNoOrdering) {
			return false, nil
		}
		t.Fatalf("%s: %v", name, err)
	}
	return true, plan
}

// TestSequentialParallelConformance: the parallel engine — deterministic
// and first-plan-wins, at several worker counts — must agree with the
// sequential engine on feasibility for every scenario, and every plan it
// returns must be valid. The deterministic mode must additionally return
// exactly the sequential plan.
func TestSequentialParallelConformance(t *testing.T) {
	for _, c := range conformanceCases(t) {
		seqOpts := c.opts
		seqOpts.Parallelism = 1
		seqFeasible, seqPlan := synthesizeOutcome(t, c.name+"/seq", c.sc, seqOpts)
		for _, workers := range []int{2, 4, 8} {
			parOpts := c.opts
			parOpts.Parallelism = workers
			feasible, plan := synthesizeOutcome(t, c.name+"/par", c.sc, parOpts)
			if feasible != seqFeasible {
				t.Fatalf("%s: parallel(%d) feasible=%v, sequential=%v",
					c.name, workers, feasible, seqFeasible)
			}
			if feasible {
				verifyPlan(t, c.sc, plan)
				if got, want := plan.String(), seqPlan.String(); got != want {
					t.Fatalf("%s: deterministic parallel(%d) plan diverged:\n got %s\nwant %s",
						c.name, workers, got, want)
				}
			}
			racyOpts := parOpts
			racyOpts.FirstPlanWins = true
			feasible, plan = synthesizeOutcome(t, c.name+"/racy", c.sc, racyOpts)
			if feasible != seqFeasible {
				t.Fatalf("%s: first-plan-wins(%d) feasible=%v, sequential=%v",
					c.name, workers, feasible, seqFeasible)
			}
			if feasible {
				verifyPlan(t, c.sc, plan)
			}
		}
	}
}

// TestBackendsParallelConformance: all four checker backends, each run
// sequentially and with four workers, must agree on feasibility for every
// scenario and produce valid plans. NetPlumber produces no
// counterexamples, so the exhaustive infeasible searches are restricted
// to the backends that can learn.
func TestBackendsParallelConformance(t *testing.T) {
	for _, c := range conformanceCases(t) {
		for _, kind := range []CheckerKind{CheckerIncremental, CheckerBatch, CheckerNuSMV, CheckerNetPlumber} {
			if kind == CheckerNetPlumber && !c.sc.Feasible {
				continue // exhaustive proof of impossibility: too slow without cex learning
			}
			if (kind == CheckerBatch || kind == CheckerNuSMV) && len(c.sc.UpdatingSwitches()) > 16 {
				continue // batch backends relabel everything per check; keep CI fast
			}
			name := c.name + "/" + kind.String()
			opts := c.opts
			opts.Checker = kind
			opts.Parallelism = 1
			seqFeasible, _ := synthesizeOutcome(t, name+"/seq", c.sc, opts)
			opts.Parallelism = 4
			parFeasible, plan := synthesizeOutcome(t, name+"/par", c.sc, opts)
			if parFeasible != seqFeasible {
				t.Fatalf("%s: parallel feasible=%v, sequential=%v", name, parFeasible, seqFeasible)
			}
			if parFeasible {
				verifyPlan(t, c.sc, plan)
			}
		}
	}
}

// TestParallelPlansReplay: plans from the parallel engine execute
// correctly on the operational model under random interleavings with live
// traffic (the replay machinery of replay_test.go).
func TestParallelPlansReplay(t *testing.T) {
	topo := topology.SmallWorld(120, 4, 0.3, 15)
	sc, err := config.Diamonds(topo, config.DiamondOptions{
		Pairs: 2, Property: config.ServiceChaining, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Parallelism: 4},
		{Parallelism: 4, FirstPlanWins: true},
	} {
		plan, err := Synthesize(sc, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		replayCheckTraces(t, sc, plan, 10)
	}
	topoI := topology.SmallWorld(40, 4, 0.3, 21)
	scInf, err := config.Infeasible(topoI, config.InfeasibleOptions{Gadgets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Synthesize(scInf, Options{RuleGranularity: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	replayCheckTraces(t, scInf, plan, 10)
}

// TestParallelRandomScenarios mirrors TestSynthesisSoundnessRandom on the
// parallel engine: random diamonds, every produced plan verified, and
// feasibility compared against the sequential engine.
func TestParallelRandomScenarios(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	produced := 0
	for _, seed := range seeds {
		topo := topology.SmallWorld(40+int(seed%3)*20, 4, 0.3, seed*97)
		sc, err := config.Diamonds(topo, config.DiamondOptions{
			Pairs: 2, Property: config.Reachability, Seed: seed * 13,
		})
		if err != nil {
			continue
		}
		seqFeasible, _ := synthesizeOutcome(t, "random/seq", sc, Options{Parallelism: 1})
		parFeasible, plan := synthesizeOutcome(t, "random/par", sc, Options{Parallelism: 4})
		if parFeasible != seqFeasible {
			t.Fatalf("seed %d: parallel feasible=%v, sequential=%v", seed, parFeasible, seqFeasible)
		}
		if parFeasible {
			produced++
			verifyPlan(t, sc, plan)
		}
	}
	if produced == 0 {
		t.Fatal("no plans produced; generator or synthesizer broken")
	}
}
