package core

import (
	"math/rand"
	"reflect"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
	"netupdate/internal/mc"
)

// checkDAGShape validates the structural invariants of a plan's DAG: one
// node per update step, ascending duplicate-free predecessor lists with
// edges pointing lower-to-higher (acyclic by construction), drain lists
// that are subsets of the predecessor lists, and Depth/Width consistent
// with Levels() and mirrored into Stats.
func checkDAGShape(t *testing.T, name string, plan *Plan) {
	t.Helper()
	d := plan.DAG
	if d == nil {
		t.Fatalf("%s: plan has no DAG", name)
	}
	ups := plan.Updates()
	if d.NumNodes() != len(ups) {
		t.Fatalf("%s: DAG has %d nodes, plan has %d updates", name, d.NumNodes(), len(ups))
	}
	if len(d.Drain) != len(d.Preds) {
		t.Fatalf("%s: Drain covers %d nodes, Preds %d", name, len(d.Drain), len(d.Preds))
	}
	for j, ps := range d.Preds {
		prev := -1
		for _, i := range ps {
			if i < 0 || i >= j {
				t.Fatalf("%s: edge %d->%d does not point lower-to-higher", name, i, j)
			}
			if i <= prev {
				t.Fatalf("%s: preds of %d not ascending/unique: %v", name, j, ps)
			}
			prev = i
		}
		for _, i := range d.Drain[j] {
			found := false
			for _, p := range ps {
				if p == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: drain pred %d of node %d is not a pred (%v)", name, i, j, ps)
			}
		}
	}
	levels := d.Levels()
	if len(levels) != d.Depth {
		t.Fatalf("%s: Depth = %d, Levels() has %d", name, d.Depth, len(levels))
	}
	w := 0
	for _, l := range levels {
		if len(l) > w {
			w = len(l)
		}
	}
	if w != d.Width {
		t.Fatalf("%s: Width = %d, widest level has %d", name, d.Width, w)
	}
	if plan.Stats.DAGDepth != d.Depth || plan.Stats.DAGWidth != d.Width {
		t.Fatalf("%s: Stats depth/width %d/%d != DAG %d/%d",
			name, plan.Stats.DAGDepth, plan.Stats.DAGWidth, d.Depth, d.Width)
	}
}

// randomTopoOrder draws one uniform-ish random linearization of the DAG
// (a random ack schedule: any order in which a decentralized executor
// could commit the nodes).
func randomTopoOrder(r *rand.Rand, d *PlanDAG) []int {
	n := d.NumNodes()
	indeg := make([]int, n)
	succs := make([][]int, n)
	for j, ps := range d.Preds {
		indeg[j] = len(ps)
		for _, i := range ps {
			succs[i] = append(succs[i], j)
		}
	}
	var ready []int
	for j := 0; j < n; j++ {
		if indeg[j] == 0 {
			ready = append(ready, j)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		x := r.Intn(len(ready))
		j := ready[x]
		ready[x] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, j)
		for _, s := range succs[j] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}

func snapshotLabels(inc *mc.Incremental, k *kripke.K) [][]ltl.Valuation {
	out := make([][]ltl.Valuation, k.NumStates())
	for id := range out {
		out[id] = append([]ltl.Valuation(nil), inc.Labels(id)...)
	}
	return out
}

func labelsEqual(a, b [][]ltl.Valuation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestDAGShapeConformance: every synthesized plan carries a structurally
// well-formed DAG, on every conformance scenario.
func TestDAGShapeConformance(t *testing.T) {
	for _, c := range conformanceCases(t) {
		opts := c.opts
		opts.Parallelism = 1
		feasible, plan := synthesizeOutcome(t, c.name, c.sc, opts)
		if !feasible {
			continue
		}
		checkDAGShape(t, c.name, plan)
	}
}

// TestDAGAckScheduleTraceEquivalence is the metamorphic soundness test of
// the dependency DAG: for every example scenario, >= 100 random ack
// schedules (random linearizations of the DAG — every order a
// decentralized executor could commit the updates in) must be
// trace-equivalent to the sequential plan. Equivalence is checked with
// the warm incremental checkers, per class and per committed prefix: the
// verdict must stay OK (no transient violation under any schedule) and
// the per-state labels must equal the sequential reference at the
// corresponding per-class version (the class has then seen exactly the
// same subsequence of structure-changing updates, in the same order).
func TestDAGAckScheduleTraceEquivalence(t *testing.T) {
	const schedules = 100
	warmth := mc.NewWarmth()
	for _, c := range conformanceCases(t) {
		opts := c.opts
		opts.Parallelism = 1
		feasible, plan := synthesizeOutcome(t, c.name, c.sc, opts)
		if !feasible {
			continue
		}
		checkDAGShape(t, c.name, plan)
		ups := plan.Updates()
		if len(ups) == 0 {
			continue
		}

		// Sequential reference: per class, label snapshots keyed by the
		// class's structure version (count of structure-changing steps),
		// plus which sequential step changed the class's structure.
		type classRef struct {
			spec    config.ClassSpec
			snaps   [][][]ltl.Valuation
			changed []bool
		}
		var refs []*classRef
		for _, cs := range c.sc.Specs {
			k, err := kripke.Build(c.sc.Topo, c.sc.Init, cs.Class)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			chk, err := mc.NewIncrementalWarm(k, cs.Formula, warmth)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			inc := chk.(*mc.Incremental)
			if !inc.Check().OK {
				t.Fatalf("%s: initial configuration violates the spec", c.name)
			}
			ref := &classRef{spec: cs}
			ref.snaps = append(ref.snaps, snapshotLabels(inc, k))
			for si, st := range ups {
				delta, err := k.UpdateSwitch(st.Switch, st.Table)
				if err != nil {
					t.Fatalf("%s: sequential step %d: %v", c.name, si, err)
				}
				if v, _ := inc.Update(delta); !v.OK {
					t.Fatalf("%s: sequential prefix %d violates the spec", c.name, si)
				}
				ch := len(delta.Changed()) > 0
				ref.changed = append(ref.changed, ch)
				if ch {
					ref.snaps = append(ref.snaps, snapshotLabels(inc, k))
				}
			}
			refs = append(refs, ref)
		}

		r := rand.New(rand.NewSource(int64(len(ups))*1009 + 7))
		for s := 0; s < schedules; s++ {
			order := randomTopoOrder(r, plan.DAG)
			if len(order) != len(ups) {
				t.Fatalf("%s: linearization covered %d of %d nodes (cycle?)", c.name, len(order), len(ups))
			}
			for _, ref := range refs {
				k, err := kripke.Build(c.sc.Topo, c.sc.Init, ref.spec.Class)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				chk, err := mc.NewIncrementalWarm(k, ref.spec.Formula, warmth)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				inc := chk.(*mc.Incremental)
				version := 0
				for pos, j := range order {
					st := ups[j]
					delta, err := k.UpdateSwitch(st.Switch, st.Table)
					if err != nil {
						t.Fatalf("%s sched %d: forwarding loop committing node %d at pos %d: %v",
							c.name, s, j, pos, err)
					}
					if v, _ := inc.Update(delta); !v.OK {
						t.Fatalf("%s sched %d: transient violation committing node %d at pos %d (order %v)",
							c.name, s, j, pos, order)
					}
					if got := len(delta.Changed()) > 0; got != ref.changed[j] {
						t.Fatalf("%s sched %d: node %d structure-change=%v, sequential=%v",
							c.name, s, j, got, ref.changed[j])
					}
					if ref.changed[j] {
						version++
						if !labelsEqual(snapshotLabels(inc, k), ref.snaps[version]) {
							t.Fatalf("%s sched %d: labels after node %d (version %d) diverge from sequential reference (order %v)",
								c.name, s, j, version, order)
						}
					}
				}
			}
		}
	}
}

// weakComponents counts weakly-connected components of the DAG (isolated
// nodes count).
func weakComponents(d *PlanDAG) int {
	n := d.NumNodes()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for j, ps := range d.Preds {
		for _, i := range ps {
			parent[find(i)] = find(j)
		}
	}
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		seen[find(i)] = true
	}
	return len(seen)
}

// TestDAGDecompositionDisjointUnion: on a multi-component workload the
// composed plan's DAG must be the disjoint union of the component
// sub-DAGs — at least as many weakly-connected DAG components as
// interference components — and the plan+DAG must be byte-identical
// across 1 and 4 workers and across all four checker backends.
func TestDAGDecompositionDisjointUnion(t *testing.T) {
	sc := multiRegionScenario(t, 3, 1, 0, 11)
	var decompRef *Plan // shared by the backends that decompose
	for _, kind := range []CheckerKind{CheckerIncremental, CheckerBatch, CheckerNuSMV, CheckerNetPlumber} {
		var kindRef *Plan // per-backend: 1 and 4 workers must agree
		for _, workers := range []int{1, 4} {
			plan, err := Synthesize(sc, Options{Checker: kind, Parallelism: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", kind, workers, err)
			}
			checkDAGShape(t, kind.String(), plan)
			// The header-space backend is not delta-invariant and forces a
			// joint search (Components = 1); the labeling and automaton
			// backends must find the 3-way interference partition, and its
			// composed DAG must be a disjoint union: at least as many
			// weakly-connected DAG components as interference components.
			decomposes := kind != CheckerNetPlumber
			if decomposes && plan.Stats.Components != 3 {
				t.Fatalf("%v workers=%d: Components = %d, want 3", kind, workers, plan.Stats.Components)
			}
			if wc := weakComponents(plan.DAG); wc < plan.Stats.Components {
				t.Fatalf("%v workers=%d: DAG has %d weak components, interference partition has %d",
					kind, workers, wc, plan.Stats.Components)
			}
			refs := []*Plan{kindRef}
			if decomposes {
				refs = append(refs, decompRef)
			}
			for _, ref := range refs {
				if ref == nil {
					continue
				}
				if got, want := plan.String(), ref.String(); got != want {
					t.Fatalf("%v workers=%d: plan diverged:\n got %s\nwant %s", kind, workers, got, want)
				}
				if !reflect.DeepEqual(plan.DAG, ref.DAG) {
					t.Fatalf("%v workers=%d: DAG diverged:\n got %+v\nwant %+v", kind, workers, plan.DAG, ref.DAG)
				}
			}
			kindRef = plan
			if decomposes && decompRef == nil {
				decompRef = plan
			}
		}
	}
}

// TestMinimizeCompletionTime: the tie-breaker returns a valid plan with
// completion estimate no worse than the default plan's, deterministically,
// on every feasible conformance scenario; infeasible scenarios still
// report ErrNoOrdering.
func TestMinimizeCompletionTime(t *testing.T) {
	for _, c := range conformanceCases(t) {
		defOpts := c.opts
		defOpts.Parallelism = 1
		defFeasible, defPlan := synthesizeOutcome(t, c.name+"/default", c.sc, defOpts)

		opts := c.opts
		opts.MinimizeCompletionTime = true
		feasible, plan := synthesizeOutcome(t, c.name+"/min", c.sc, opts)
		if feasible != defFeasible {
			t.Fatalf("%s: MinimizeCompletionTime feasible=%v, default=%v", c.name, feasible, defFeasible)
		}
		if !feasible {
			continue
		}
		verifyPlan(t, c.sc, plan)
		checkDAGShape(t, c.name, plan)
		if got, def := plan.DAG.completionEstimate(), defPlan.DAG.completionEstimate(); got > def {
			t.Fatalf("%s: minimized completion estimate %d > default %d", c.name, got, def)
		}

		again, err := Synthesize(c.sc, opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if again.String() != plan.String() {
			t.Fatalf("%s: MinimizeCompletionTime not deterministic:\n got %s\nthen %s",
				c.name, plan.String(), again.String())
		}
	}
}
