package core

import (
	"sync"
	"testing"
)

// TestBitsetMultiWord exercises set/get/key/matchesPattern across the
// word boundary of a 3-word bitset.
func TestBitsetMultiWord(t *testing.T) {
	b := newBitset(190)
	if len(b) != 3 {
		t.Fatalf("190 bits should take 3 words, got %d", len(b))
	}
	for _, i := range []int{0, 63, 64, 127, 128, 189} {
		if b.get(i) {
			t.Fatalf("fresh bitset has bit %d set", i)
		}
		c := b.set(i)
		if !c.get(i) {
			t.Fatalf("bit %d lost after set", i)
		}
		if b.get(i) {
			t.Fatalf("set mutated the receiver at bit %d", i)
		}
		if c.count() != 1 {
			t.Fatalf("count after one set = %d", c.count())
		}
		if c.key() == b.key() {
			t.Fatalf("bit %d: key does not distinguish the bitsets", i)
		}
		if c.hash() == b.hash() || !c.equal(c) || c.equal(b) {
			t.Fatalf("bit %d: hash/equal inconsistent", i)
		}
	}
	// Bits in different words must land in different key bytes.
	x, y := b.set(1), b.set(65)
	if x.key() == y.key() {
		t.Fatal("keys collide across words")
	}
	if len(x.key()) != 24 {
		t.Fatalf("key length = %d, want 24", len(x.key()))
	}
}

// TestBitsetEmpty: a zero-capacity bitset is a valid value for every
// operation (a scenario with no differing switches produces one).
func TestBitsetEmpty(t *testing.T) {
	b := newBitset(0)
	if len(b) != 0 || b.count() != 0 {
		t.Fatalf("empty bitset: len=%d count=%d", len(b), b.count())
	}
	if b.key() != "" {
		t.Fatalf("empty key = %q", b.key())
	}
	if !b.equal(newBitset(0)) {
		t.Fatal("empty bitsets must be equal")
	}
	if !b.matchesPattern(newBitset(0), newBitset(0)) {
		t.Fatal("empty pattern must match the empty bitset")
	}
	s := newBitsetSet()
	if !s.add(b) || s.add(b) || !s.has(b) {
		t.Fatal("empty bitset must be insertable exactly once")
	}
}

// TestBitsetMatchesPatternMultiWord: patterns constrain only relevant
// bits, independently in every word.
func TestBitsetMatchesPatternMultiWord(t *testing.T) {
	cfg := newBitset(130).set(0).set(70).set(129)
	relevant := newBitset(130).set(0).set(70).set(100)
	value := newBitset(130).set(0).set(70)
	if !cfg.matchesPattern(relevant, value) {
		t.Fatal("cfg agrees on bits 0, 70, 100; must match")
	}
	if !cfg.set(99).matchesPattern(relevant, value) {
		t.Fatal("bit 99 is irrelevant; must still match")
	}
	if cfg.set(100).matchesPattern(relevant, value) {
		t.Fatal("bit 100 contradicts the pattern; must not match")
	}
	without70 := newBitset(130).set(0).set(129)
	if without70.matchesPattern(relevant, value) {
		t.Fatal("bit 70 unset contradicts the pattern; must not match")
	}
}

// TestBitsetSet: membership semantics of the single-owner hash set,
// including same-hash chains and multi-word keys.
func TestBitsetSet(t *testing.T) {
	s := newBitsetSet()
	var members []bitset
	base := newBitset(130)
	for i := 0; i < 130; i++ {
		members = append(members, base.set(i))
	}
	for _, m := range members {
		if s.has(m) {
			t.Fatal("member present before insertion")
		}
		if !s.add(m) {
			t.Fatal("first add must report new")
		}
		if s.add(m) {
			t.Fatal("second add must report existing")
		}
	}
	if s.len() != len(members) {
		t.Fatalf("len = %d, want %d", s.len(), len(members))
	}
	for _, m := range members {
		if !s.has(m) {
			t.Fatal("member lost")
		}
	}
	if s.has(base) {
		t.Fatal("empty mask never inserted")
	}
}

// TestSharedBitsetSetConcurrent hammers the striped set from many
// goroutines: every configuration must be claimed exactly once, and
// membership must be stable afterwards.
func TestSharedBitsetSetConcurrent(t *testing.T) {
	s := newSharedBitsetSet()
	const goroutines = 8
	const n = 500
	base := newBitset(192)
	masks := make([]bitset, n)
	for i := range masks {
		masks[i] = base.set(i % 192).set((i * 7) % 192)
	}
	wins := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, m := range masks {
				if s.add(m) {
					wins[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	distinct := newBitsetSet()
	for _, m := range masks {
		distinct.add(m)
		if !s.has(m) {
			t.Fatal("mask missing after concurrent inserts")
		}
	}
	if total != distinct.len() {
		t.Fatalf("claims = %d, want %d (each mask claimed exactly once)", total, distinct.len())
	}
}
