package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"netupdate/internal/kripke"
	"netupdate/internal/mc"
	"netupdate/internal/network"
)

// Parallel ORDERUPDATE. The top levels of the DFS are fanned out to a
// worker pool: the base engine acts as a *generator*, running the normal
// search truncated at a small fan depth and emitting every surviving
// depth-d prefix as a task; workers replay a task's prefix on their
// private structures (cloned Kripke structures and checkers — see
// kripke.K.Clone and mc.Cloneable — so the mutate-and-revert protocol
// needs no locking on the hot path) and run the ordinary DFS below it.
// Learning state is shared through sharedState: wrong-configuration
// patterns, SAT early-termination constraints, and the dead-configuration
// set all flow across workers, so a counterexample found in one subtree
// prunes all the others.
//
// Determinism: by default the coordinator commits the plan of the
// lowest-indexed successful task (task indexes follow the sequential
// exploration order), and only after every lower-indexed task has failed.
// Each task's private outcome is independent of scheduling — the shared
// structures only ever prune configurations that are provably wrong or
// exhausted, which cannot change which plan a subtree yields — so the
// returned plan is the one the sequential search would have found.
// Options.FirstPlanWins trades that reproducibility for speed: the first
// plan any worker finds wins and everything else is cancelled.

// task is one unit of parallel work: a checked prefix of unit ids whose
// subtree a worker explores.
type task struct {
	idx    int
	prefix []int
}

// result is a worker's verdict on one task. err is nil on success,
// errNotFound/errCancelled for resolved failures, or terminal.
type result struct {
	idx   int
	steps []Step
	err   error
}

// bestTracker publishes the lowest successful task index so workers can
// skip tasks that can no longer win.
type bestTracker struct{ v atomic.Int64 }

func newBestTracker() *bestTracker {
	b := &bestTracker{}
	b.v.Store(math.MaxInt64)
	return b
}

func (b *bestTracker) record(idx int) {
	for {
		cur := b.v.Load()
		if int64(idx) >= cur || b.v.CompareAndSwap(cur, int64(idx)) {
			return
		}
	}
}

// obsolete reports whether a task at idx cannot beat a recorded success.
func (b *bestTracker) obsolete(idx int) bool { return int64(idx) > b.v.Load() }

// chooseFanDepth picks the shallowest prefix depth whose branching yields
// comfortably more tasks than workers, so the pool stays load-balanced
// without making prefix replay a significant cost.
func (e *engine) chooseFanDepth(workers int) int {
	n := len(e.units)
	want := 4 * workers
	depth, width := 0, 1
	for depth < 3 && depth < n-1 && width < want {
		width *= n - depth
		depth++
	}
	if depth < 1 {
		depth = 1
	}
	return depth
}

// cloneForWorker duplicates the engine for one worker: private Kripke
// structures, checkers, and table state; shared learning state, stop
// flag, and deadline. It must be called while the engine is at the
// initial configuration.
func (e *engine) cloneForWorker() (*engine, error) {
	w := &engine{
		sc:          e.sc,
		opts:        e.opts,
		units:       e.units,
		order:       e.order,
		canSkip:     e.canSkip, // read-only, same checker types per class
		curTables:   make(map[int]network.Table, len(e.curTables)),
		visited:     newBitsetSet(),
		shared:      e.shared,
		stop:        e.stop,
		deadline:    e.deadline,
		hasDeadline: e.hasDeadline,
		ctx:         e.ctx,
		ctxDone:     e.ctxDone,
	}
	for sw, tbl := range e.curTables {
		w.curTables[sw] = tbl
	}
	factory := e.opts.Checker.factory()
	for ci, k := range e.ks {
		k2 := k.Clone()
		var chk mc.Checker
		var err error
		if cl, ok := e.checkers[ci].(mc.Cloneable); ok {
			chk, err = cl.CloneFor(k2)
		} else {
			chk, err = factory(k2, e.sc.Specs[ci].Formula)
		}
		if err != nil {
			return nil, err
		}
		w.ks = append(w.ks, k2)
		w.checkers = append(w.checkers, chk)
	}
	return w, nil
}

// runParallel coordinates the fan-out search. It owns the base engine,
// which doubles as the task generator.
func (e *engine) runParallel(empty bitset, workers int) ([]Step, error) {
	workerEngines := make([]*engine, workers)
	for i := range workerEngines {
		we, err := e.cloneForWorker()
		if err != nil {
			return nil, err
		}
		workerEngines[i] = we
	}

	// A small task buffer throttles the generator: each emission costs a
	// checked prefix (apply + model-check + revert per class), so running
	// far ahead of the workers is wasted work whenever an early task
	// succeeds. Two tasks per worker keeps the pool saturated.
	buf := 2 * workers
	tasks := make(chan task, buf)
	results := make(chan result, 2*buf)
	best := newBestTracker()

	var wg sync.WaitGroup
	for _, we := range workerEngines {
		wg.Add(1)
		go func(we *engine) {
			defer wg.Done()
			we.workerLoop(tasks, results, best)
		}(we)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Generator: the sequential search truncated at fanDepth, emitting
	// tasks in exploration order.
	e.fanDepth = e.chooseFanDepth(workers)
	e.deferredSeen = newBitsetSet()
	genDone := make(chan error, 1)
	emitted := 0
	e.emit = func(prefix []int) error {
		if best.obsolete(emitted) {
			// Every future task is higher-indexed than a recorded
			// success; nothing left to generate.
			return errCancelled
		}
		t := task{idx: emitted, prefix: append([]int(nil), prefix...)}
		select {
		case tasks <- t:
			emitted++
			return nil
		case <-e.stop.ch:
			return errCancelled
		}
	}
	go func() {
		_, err := e.dfs(empty, 0)
		if err != nil && !errors.Is(err, errNotFound) &&
			!errors.Is(err, errDeferred) && !errors.Is(err, errCancelled) {
			e.stop.set() // terminal: no point finishing outstanding tasks
		}
		close(tasks)
		genDone <- err
	}()

	// Coordinator: process every result (the channel closes once all
	// workers exit), cancelling outstanding work as soon as the outcome
	// is decided — the lowest-indexed success once every lower-indexed
	// task has genuinely failed (deterministic mode), the first success
	// (first-plan-wins), or a terminal error. Cancelled tasks are
	// tracked apart from failed ones: a cancellation says nothing about
	// the subtree, so it must never help confirm a winner.
	var (
		failed   = map[int]bool{}
		frontier = 0 // tasks below this index all genuinely failed
		bestIdx  = -1
		bestOut  []Step
		termErr  error
	)
	winnerConfirmed := func() bool {
		if bestIdx < 0 {
			return false
		}
		if e.opts.FirstPlanWins {
			return true
		}
		for failed[frontier] {
			delete(failed, frontier)
			frontier++
		}
		return frontier == bestIdx
	}
	for r := range results {
		switch {
		case r.err == nil:
			if bestIdx < 0 || r.idx < bestIdx {
				bestIdx, bestOut = r.idx, r.steps
			}
			best.record(r.idx)
		case errors.Is(r.err, errNotFound):
			failed[r.idx] = true
		case errors.Is(r.err, errCancelled):
			// Resolved but inconclusive; only possible after stop is
			// set or for tasks a success already made obsolete.
		default:
			if termErr == nil {
				termErr = r.err
			}
		}
		if !e.stop.isSet() && (termErr != nil || winnerConfirmed()) {
			e.stop.set()
		}
	}
	genErr := <-genDone
	for _, we := range workerEngines {
		e.mergeWorkerStats(we)
	}

	// All emitted tasks are resolved now. A success is the result only
	// once confirmed — every lower-indexed task exhausted its subtree —
	// so the deterministic engine returns the sequential plan even when
	// a concurrent subtree hit the deadline. An unconfirmed success
	// (some lower task timed out or was cancelled) must not win: which
	// plan survives would depend on scheduling.
	if winnerConfirmed() {
		return bestOut, nil
	}
	if termErr != nil {
		return nil, termErr
	}
	if genErr != nil && !errors.Is(genErr, errNotFound) &&
		!errors.Is(genErr, errDeferred) && !errors.Is(genErr, errCancelled) {
		return nil, genErr
	}
	if bestIdx >= 0 {
		// Unconfirmed success without any terminal error: cannot happen
		// (cancellations only follow a stop), but prefer the plan over
		// a bogus "no ordering" if it ever does.
		return bestOut, nil
	}
	return nil, ErrNoOrdering
}

// mergeWorkerStats folds a worker engine's counters into the base stats.
func (e *engine) mergeWorkerStats(w *engine) {
	e.stats.Checks += w.stats.Checks
	e.stats.ClassSkips += w.stats.ClassSkips
	e.stats.CexLearned += w.stats.CexLearned
	e.stats.WrongPruned += w.stats.WrongPruned
	e.stats.VisitedPruned += w.stats.VisitedPruned
	e.stats.Backtracks += w.stats.Backtracks
	e.stats.SATCalls += w.stats.SATCalls
	if w.stats.EarlyTerminate {
		e.stats.EarlyTerminate = true
	}
	for _, c := range w.checkers {
		s := c.Stats()
		e.stats.StatesLabeled += s.StatesLabeled
		e.stats.Relabels += s.Relabels
		e.stats.LabelsInterned += s.LabelsInterned
		e.stats.ExtendHits += s.ExtendHits
		e.stats.ExtendMisses += s.ExtendMisses
	}
}

// workerLoop consumes tasks until the channel closes, reporting exactly
// one result per task. A worker that found a plan is retired: its
// structures are left mid-plan (see runTask), and every later task is
// higher-indexed than its success, hence obsolete anyway.
func (w *engine) workerLoop(tasks <-chan task, results chan<- result, best *bestTracker) {
	retired := false
	for t := range tasks {
		if retired || w.stop.isSet() || best.obsolete(t.idx) {
			results <- result{idx: t.idx, err: errCancelled}
			continue
		}
		steps, err := w.runTask(t)
		if err == nil {
			retired = true
			best.record(t.idx)
		}
		results <- result{idx: t.idx, steps: steps, err: err}
	}
}

// runTask replays the task's prefix on the worker's private structures
// and explores the subtree below it. On failure it restores the initial
// state so the worker can take the next task; on success the structures
// are deliberately left mid-plan — the DFS does not unwind a winning
// path, and reverting only the prefix would replay undo tokens out of
// LIFO order on top of the suffix's updates. workerLoop retires the
// worker instead.
func (w *engine) runTask(t task) (steps []Step, err error) {
	// Fresh private visited set: marks surviving a cancelled task would
	// not be trustworthy (its exploration was incomplete).
	w.visited = newBitsetSet()
	applied := newBitset(len(w.units))
	type undo struct {
		sw     int
		tbl    network.Table
		frames []frame
	}
	var undos []undo
	defer func() {
		if err == nil {
			return // success: worker is retired, not restored
		}
		for i := len(undos) - 1; i >= 0; i-- {
			w.curTables[undos[i].sw] = undos[i].tbl
			w.revert(undos[i].frames)
		}
	}()
	var prefixSteps []Step
	for _, ui := range t.prefix {
		u := w.units[ui]
		newTbl := w.unitTable(u)
		oldTbl := w.curTables[u.sw]
		frames, checkFailed, aerr := w.replayUnit(u.sw, newTbl)
		if aerr != nil || checkFailed {
			w.revert(frames)
			if aerr != nil {
				return nil, aerr
			}
			// The generator verified this prefix passes every check, so
			// a failure here means the worker's cloned structures
			// diverged from the originals. Fail loudly rather than let
			// corrupt state masquerade as an exhausted subtree.
			return nil, fmt.Errorf("core: prefix replay diverged on sw%d (clone inconsistency)", u.sw)
		}
		undos = append(undos, undo{sw: u.sw, tbl: oldTbl, frames: frames})
		w.curTables[u.sw] = newTbl
		applied = applied.set(ui)
		prefixSteps = append(prefixSteps,
			Step{
				Switch: u.sw, Table: newTbl.Clone(),
				IsRule: u.isRule, RuleAdd: u.add, Rule: u.rule,
			},
			Step{Wait: true},
		)
	}
	rest, err := w.dfs(applied, len(t.prefix))
	if err != nil {
		if errors.Is(err, errNotFound) {
			w.markDead(applied)
		}
		return nil, err
	}
	return append(prefixSteps, rest...), nil
}

// replayUnit is applyAndCheck for a prefix the generator has already
// verified: the Kripke structures are updated as usual, but checkers
// that keep no incremental state (mc.Stateless — the batch and
// NuSMV-like backends re-derive everything on their next call) skip the
// redundant full re-check whose verdict is already known. Stateful
// checkers still run so their bookkeeping tracks the structure.
func (w *engine) replayUnit(sw int, tbl network.Table) (frames []frame, failed bool, err error) {
	for ci := range w.ks {
		delta, uerr := w.ks[ci].UpdateSwitch(sw, tbl)
		if uerr != nil {
			var loop *kripke.ErrLoop
			if errors.As(uerr, &loop) {
				w.ks[ci].Revert(delta)
				return frames, true, nil
			}
			return frames, false, uerr
		}
		if len(delta.Changed()) == 0 && w.canSkip[ci] {
			w.stats.ClassSkips++
			frames = append(frames, frame{class: ci, delta: delta, token: nil})
			continue
		}
		if _, stateless := w.checkers[ci].(mc.Stateless); stateless {
			frames = append(frames, frame{class: ci, delta: delta, token: nil})
			continue
		}
		verdict, tok := w.checkers[ci].Update(delta)
		w.stats.Checks++
		frames = append(frames, frame{class: ci, delta: delta, token: tok})
		if !verdict.OK {
			return frames, true, nil
		}
	}
	return frames, false, nil
}
