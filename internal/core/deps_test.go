package core

import (
	"testing"

	"netupdate/internal/config"
)

// TestDepAnalysisReproducesWaitDecisions: the extracted ordering analysis
// is the single source of dependency facts for both the wait-removal pass
// and the DAG builder, so replaying any synthesized plan through a fresh
// depAnalysis must reproduce exactly the wait barriers the plan kept: a
// barrier is needed before an update iff the plan has a wait there.
func TestDepAnalysisReproducesWaitDecisions(t *testing.T) {
	for _, c := range conformanceCases(t) {
		opts := c.opts
		opts.Parallelism = 1
		feasible, plan := synthesizeOutcome(t, c.name, c.sc, opts)
		if !feasible {
			continue
		}
		_, e := engineFor(t, c.sc, opts)
		d := e.newDepAnalysis()
		if diff := config.Diff(d.cur, c.sc.Init); len(diff) != 0 {
			t.Fatalf("%s: analysis does not start at Init; differs on %v", c.name, diff)
		}
		wait := false
		for _, st := range plan.Steps {
			if st.Wait {
				wait = true
				continue
			}
			affected := d.affected(st.Switch, st.Table)
			if len(affected) != len(c.sc.Specs) {
				t.Fatalf("%s: affected has %d entries, want one per spec (%d)",
					c.name, len(affected), len(c.sc.Specs))
			}
			if got := d.barrierNeeded(st.Switch, affected); got != wait {
				t.Fatalf("%s: barrierNeeded = %v before update(sw%d), plan wait = %v",
					c.name, got, st.Switch, wait)
			}
			if wait {
				d.barrier()
				if len(d.pending) != 0 {
					t.Fatalf("%s: pending window not cleared by barrier()", c.name)
				}
			}
			d.advance(st.Switch, st.Table, affected)
			wait = false
		}
		if diff := config.Diff(d.cur, c.sc.Final); len(diff) != 0 {
			t.Fatalf("%s: analysis does not end at Final; differs on %v", c.name, diff)
		}
	}
}

// TestDepAnalysisWindowBasics: white-box invariants of the pending
// window — barrierNeeded is trivially false on an empty window, advance
// records exactly the affecting live steps and returns stable indexes,
// and drain marks imply their barrier-level counterpart.
func TestDepAnalysisWindowBasics(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan, err := Synthesize(sc, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, e := engineFor(t, sc, Options{})
	d := e.newDepAnalysis()
	ups := plan.Updates()
	for i, st := range ups {
		affected := d.affected(st.Switch, st.Table)
		if len(d.pending) == 0 && d.barrierNeeded(st.Switch, affected) {
			t.Fatalf("step %d: barrierNeeded on an empty window", i)
		}
		before := len(d.pending)
		idx := d.advance(st.Switch, st.Table, affected)
		switch {
		case idx == -1:
			if len(d.pending) != before {
				t.Fatalf("step %d: advance returned -1 but grew the window", i)
			}
		case idx != before:
			t.Fatalf("step %d: advance index = %d, want %d", i, idx, before)
		default:
			p := &d.pending[idx]
			if p.sw != st.Switch {
				t.Fatalf("step %d: window entry records sw%d, want sw%d", i, p.sw, st.Switch)
			}
			if !anyTrue(p.affected) {
				t.Fatalf("step %d: window entry affects no class", i)
			}
		}
	}
	// At least one update of the Fig1 red-green plan affects a live class,
	// so the window cannot end empty.
	if len(d.pending) == 0 {
		t.Fatal("window recorded no entries")
	}
}
