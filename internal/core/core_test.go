package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
	"netupdate/internal/mc"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// checkConfig verifies a static configuration against every class spec
// with a fresh incremental checker (treating forwarding loops as
// violations).
func checkConfig(sc *config.Scenario, cfg *config.Config) bool {
	for _, cs := range sc.Specs {
		k, err := kripke.Build(sc.Topo, cfg, cs.Class)
		if err != nil {
			return false
		}
		chk, err := mc.NewIncremental(k, cs.Formula)
		if err != nil {
			return false
		}
		if !chk.Check().OK {
			return false
		}
	}
	return true
}

// verifyPlan checks plan soundness: the plan's updates cover exactly the
// diff, each switch/unit once, and every intermediate configuration
// satisfies every spec.
func verifyPlan(t *testing.T, sc *config.Scenario, plan *Plan) {
	t.Helper()
	cfgs := plan.Configs(sc.Init)
	last := cfgs[len(cfgs)-1]
	if d := config.Diff(last, sc.Final); len(d) != 0 {
		t.Fatalf("plan does not reach the final configuration; differs on %v", d)
	}
	for i, cfg := range cfgs {
		if !checkConfig(sc, cfg) {
			t.Fatalf("intermediate configuration %d violates the spec (plan %v)", i, plan)
		}
	}
}

func TestFig1RedGreenOrder(t *testing.T) {
	sc := config.Fig1RedGreen()
	_, n := config.Fig1Topology()
	plan, err := Synthesize(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ups := plan.Updates()
	if len(ups) != 2 {
		t.Fatalf("updates = %v, want 2", ups)
	}
	if ups[0].Switch != n.C2 || ups[1].Switch != n.A1 {
		t.Fatalf("order = sw%d, sw%d; want C2 (sw%d) before A1 (sw%d)",
			ups[0].Switch, ups[1].Switch, n.C2, n.A1)
	}
	verifyPlan(t, sc, plan)
}

func TestFig1RedBlue(t *testing.T) {
	sc := config.Fig1RedBlue()
	plan, err := Synthesize(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Updates()) != 4 {
		t.Fatalf("updates = %v, want 4", plan.Updates())
	}
	verifyPlan(t, sc, plan)
}

func TestFig1RedBlueWaypointSynthesis(t *testing.T) {
	sc := config.Fig1RedBlueWaypoint()
	plan, err := Synthesize(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	verifyPlan(t, sc, plan)
	if plan.Stats.WaitsBefore != 3 {
		t.Fatalf("careful 4-update plan should start with 3 waits, got %d", plan.Stats.WaitsBefore)
	}
	// The destination-first heuristic finds the order A4, C1, A2, T1,
	// which needs no waits at all (strictly better than the paper's
	// A2, A4, T1, wait, C1 — updating C1 before T1 removes the hazard).
	if got := plan.Waits(); got > 1 {
		t.Fatalf("plan %v keeps %d waits; wait removal under-performs", plan, got)
	}
}

// TestWaitRemovalKeepsPaperBarrier replays the paper's own sequence for
// the red-to-blue waypoint scenario (A2, A4, T1, C1) through the
// wait-removal heuristic: the barrier between T1 and C1 must survive —
// packets forwarded by the old T1 can reach C1, so updating C1 without a
// flush would let them skip both scrubbing waypoints.
func TestWaitRemovalKeepsPaperBarrier(t *testing.T) {
	sc := config.Fig1RedBlueWaypoint()
	_, n := config.Fig1Topology()
	e, err := newEngineShell(sc, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var steps []Step
	for i, sw := range []int{n.A2, n.A4, n.T1, n.C1} {
		if i > 0 {
			steps = append(steps, Step{Wait: true})
		}
		steps = append(steps, Step{Switch: sw, Table: sc.Final.Table(sw)})
	}
	out := e.removeWaits(steps)
	var kept []int // index of the update that follows each kept wait
	for i, s := range out {
		if s.Wait {
			kept = append(kept, out[i+1].Switch)
		}
	}
	if len(kept) != 1 || kept[0] != n.C1 {
		t.Fatalf("kept waits before %v, want exactly one before C1 (sw%d); plan %v", kept, n.C1, out)
	}
}

func TestAllBackendsAgreeOnFig1(t *testing.T) {
	for _, kind := range []CheckerKind{CheckerIncremental, CheckerBatch, CheckerNuSMV, CheckerNetPlumber} {
		for _, mk := range []func() *config.Scenario{config.Fig1RedGreen, config.Fig1RedBlue, config.Fig1RedBlueWaypoint} {
			sc := mk()
			plan, err := Synthesize(sc, Options{Checker: kind})
			if err != nil {
				t.Fatalf("%v on %s: %v", kind, sc.Name, err)
			}
			verifyPlan(t, sc, plan)
		}
	}
}

func TestDiamondScenarios(t *testing.T) {
	for _, prop := range []config.Property{config.Reachability, config.Waypointing, config.ServiceChaining} {
		topo := topology.SmallWorld(150, 4, 0.3, int64(10+prop))
		sc, err := config.Diamonds(topo, config.DiamondOptions{Pairs: 2, Property: prop, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := Synthesize(sc, Options{})
		if err != nil {
			t.Fatalf("%v: %v", prop, err)
		}
		verifyPlan(t, sc, plan)
	}
}

func TestInfeasibleSwitchGranularity(t *testing.T) {
	topo := topology.SmallWorld(40, 4, 0.3, 21)
	sc, err := config.Infeasible(topo, config.InfeasibleOptions{Gadgets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Synthesize(sc, Options{})
	if !errors.Is(err, ErrNoOrdering) {
		t.Fatalf("err = %v, want ErrNoOrdering", err)
	}
	// Without early termination the exhaustive search must agree.
	_, err = Synthesize(sc, Options{NoEarlyTermination: true})
	if !errors.Is(err, ErrNoOrdering) {
		t.Fatalf("exhaustive: err = %v, want ErrNoOrdering", err)
	}
}

func TestInfeasibleSolvableAtRuleGranularity(t *testing.T) {
	topo := topology.SmallWorld(40, 4, 0.3, 21)
	sc, err := config.Infeasible(topo, config.InfeasibleOptions{Gadgets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Synthesize(sc, Options{RuleGranularity: true})
	if err != nil {
		t.Fatal(err)
	}
	verifyPlan(t, sc, plan)
	for _, s := range plan.Updates() {
		if !s.IsRule {
			t.Fatal("rule-granularity plan must consist of rule steps")
		}
	}
}

// TestTwoSimpleSolvesInfeasible: the k-simple extension (k=2) recovers
// rule-granularity power at switch granularity — the double-diamond
// gadget that is impossible for 1-simple orderings is solved by merging
// both rule generations before finalizing.
func TestTwoSimpleSolvesInfeasible(t *testing.T) {
	topo := topology.SmallWorld(40, 4, 0.3, 21)
	sc, err := config.Infeasible(topo, config.InfeasibleOptions{Gadgets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Synthesize(sc, Options{TwoSimple: true})
	if err != nil {
		t.Fatal(err)
	}
	verifyPlan(t, sc, plan)
	// Each updating switch is touched at most twice.
	count := map[int]int{}
	for _, s := range plan.Updates() {
		count[s.Switch]++
		if count[s.Switch] > 2 {
			t.Fatalf("switch %d updated %d times in a 2-simple plan", s.Switch, count[s.Switch])
		}
	}
}

// TestTwoSimpleOnFeasible: 2-simple mode must still solve ordinary
// scenarios and reach exactly the final configuration.
func TestTwoSimpleOnFeasible(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan, err := Synthesize(sc, Options{TwoSimple: true})
	if err != nil {
		t.Fatal(err)
	}
	verifyPlan(t, sc, plan)
}

// TestSynthesisSoundnessRandom runs the synthesizer over random small
// scenarios and verifies every produced plan.
func TestSynthesisSoundnessRandom(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	produced := 0
	for iter := 0; iter < 25; iter++ {
		topo := topology.SmallWorld(30+r.Intn(30), 4, 0.3, r.Int63())
		sc, err := config.Diamonds(topo, config.DiamondOptions{
			Pairs: 1 + r.Intn(2), Property: config.Reachability, Seed: r.Int63(),
		})
		if err != nil {
			continue
		}
		plan, err := Synthesize(sc, Options{})
		if err != nil {
			if errors.Is(err, ErrNoOrdering) {
				continue
			}
			t.Fatal(err)
		}
		produced++
		verifyPlan(t, sc, plan)
	}
	if produced == 0 {
		t.Fatal("no plans produced; generator or synthesizer broken")
	}
}

// TestCompletenessVsBruteForce compares the synthesizer's answer against
// a brute-force search over all simple careful sequences.
func TestCompletenessVsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	checked := 0
	for iter := 0; iter < 40 && checked < 25; iter++ {
		topo := topology.SmallWorld(14, 4, 0.4, r.Int63())
		sc, err := config.Diamonds(topo, config.DiamondOptions{
			Pairs: 1, Property: config.Reachability, Seed: r.Int63(),
		})
		if err != nil {
			continue
		}
		units := config.Diff(sc.Init, sc.Final)
		if len(units) > 6 {
			continue // keep brute force tractable
		}
		checked++
		want := bruteForceOrderExists(sc, units)
		_, err = Synthesize(sc, Options{})
		got := err == nil
		if err != nil && !errors.Is(err, ErrNoOrdering) {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: synthesizer=%v bruteforce=%v (units %v)", iter, got, want, units)
		}
	}
	if checked == 0 {
		t.Skip("no tractable instances generated")
	}
}

// bruteForceOrderExists enumerates all permutations of switch updates and
// checks whether some permutation keeps every prefix configuration
// correct.
func bruteForceOrderExists(sc *config.Scenario, switches []int) bool {
	perm := append([]int(nil), switches...)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(perm) {
			return true
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			cfg := sc.Init.Clone()
			ok := true
			for _, sw := range perm[:k+1] {
				cfg.SetTable(sw, sc.Final.Table(sw))
			}
			ok = checkConfig(sc, cfg)
			if ok && rec(k+1) {
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	// Initial and final configs are part of the scenario contract.
	if !checkConfig(sc, sc.Init) || !checkConfig(sc, sc.Final) {
		return false
	}
	return rec(0)
}

func TestPlanExecutesOnOperationalModel(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan, err := Synthesize(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := sc.Specs[0].Class
	// Execute the plan's commands on the operational machine under random
	// interleavings with continuous traffic; no packet may be lost.
	for seed := int64(0); seed < 20; seed++ {
		n := network.NewNet(sc.Topo, sc.Init.Tables(), plan.Commands())
		r := rand.New(rand.NewSource(seed))
		injected := 0
		n.RunRandom(r, func(step int) bool {
			if step%2 == 0 && injected < 12 {
				n.Inject(cl.SrcHost, cl.Packet())
				injected++
			}
			return injected < 12
		})
		n.Drain()
		for id := 0; id < injected; id++ {
			if !n.DeliveredTo(id, cl.DstHost) {
				t.Fatalf("seed %d: packet %d lost during synthesized update", seed, id)
			}
		}
	}
}

// TestWaitRemovedPlanExecutesCorrectly exercises the wait-removal
// heuristic end to end: a diamond scenario whose plan dismantles the old
// branch (the case where waits are provably unnecessary) is executed on
// the operational machine under random interleavings with live traffic,
// and every packet must still be delivered.
func TestWaitRemovedPlanExecutesCorrectly(t *testing.T) {
	topo := topology.SmallWorld(40, 4, 0.3, 77)
	sc, err := config.Diamonds(topo, config.DiamondOptions{
		Pairs: 2, Property: config.Reachability, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Synthesize(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.WaitsAfter >= plan.Stats.WaitsBefore {
		t.Fatalf("wait removal ineffective: %d -> %d", plan.Stats.WaitsBefore, plan.Stats.WaitsAfter)
	}
	for seed := int64(0); seed < 15; seed++ {
		n := network.NewNet(sc.Topo, sc.Init.Tables(), plan.Commands())
		r := rand.New(rand.NewSource(seed))
		type sent struct {
			id  int
			dst int
		}
		var packets []sent
		n.RunRandom(r, func(step int) bool {
			if step%2 == 0 && len(packets) < 24 {
				cs := sc.Specs[len(packets)%len(sc.Specs)]
				id := n.Inject(cs.Class.SrcHost, cs.Class.Packet())
				packets = append(packets, sent{id: id, dst: cs.Class.DstHost})
			}
			return len(packets) < 24
		})
		n.Drain()
		for _, p := range packets {
			if !n.DeliveredTo(p.id, p.dst) {
				t.Fatalf("seed %d: packet %d lost under wait-removed plan %v", seed, p.id, plan)
			}
		}
	}
}

func TestInitialViolationDetected(t *testing.T) {
	sc := config.Fig1RedGreen()
	// Waypoint through C2: true on the green (final) path, false on the
	// red (initial) path.
	_, n := config.Fig1Topology()
	sc.Specs[0].Formula = ltl.Waypoint(n.T1, n.C2, n.T3)
	_, err := Synthesize(sc, Options{})
	if !errors.Is(err, ErrInitialViolation) {
		t.Fatalf("err = %v, want ErrInitialViolation", err)
	}
}

func TestFinalViolationDetected(t *testing.T) {
	sc := config.Fig1RedGreen()
	_, n := config.Fig1Topology()
	// Waypoint through C1: true on red (init), false on green (final).
	sc.Specs[0].Formula = ltl.Waypoint(n.T1, n.C1, n.T3)
	_, err := Synthesize(sc, Options{})
	if !errors.Is(err, ErrFinalViolation) {
		t.Fatalf("err = %v, want ErrFinalViolation", err)
	}
}

func TestTimeout(t *testing.T) {
	topo := topology.SmallWorld(60, 4, 0.3, 31)
	sc, err := config.Infeasible(topo, config.InfeasibleOptions{Gadgets: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Disable all pruning so the search would take a long time, then give
	// it a tiny budget.
	_, err = Synthesize(sc, Options{
		NoCexLearning:      true,
		NoEarlyTermination: true,
		Timeout:            time.Millisecond,
	})
	if !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrNoOrdering) {
		t.Fatalf("err = %v, want timeout (or fast exhaustion)", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan, err := Synthesize(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats
	if st.Units != 2 || st.Checks == 0 || st.Elapsed <= 0 {
		t.Fatalf("stats look wrong: %+v", st)
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	if b.get(129) {
		t.Fatal("fresh bitset must be empty")
	}
	c := b.set(129).set(0)
	if !c.get(129) || !c.get(0) || b.get(0) {
		t.Fatal("set must be persistent")
	}
	if c.count() != 2 {
		t.Fatalf("count = %d", c.count())
	}
	if b.key() == c.key() {
		t.Fatal("keys must differ")
	}
	rel := newBitset(130).set(0).set(5)
	val := newBitset(130).set(0)
	if !c.matchesPattern(rel, val) {
		t.Fatal("c has 0 set and 5 unset; should match pattern")
	}
	d := c.set(5)
	if d.matchesPattern(rel, val) {
		t.Fatal("d has 5 set; should not match")
	}
}

func TestPlanHelpers(t *testing.T) {
	sc := config.Fig1RedGreen()
	plan, err := Synthesize(sc, Options{NoWaitRemoval: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Waits() != 1 {
		t.Fatalf("careful 2-update plan has %d waits, want 1", plan.Waits())
	}
	cmds := plan.Commands()
	// update, incr, flush, update
	if len(cmds) != 4 {
		t.Fatalf("commands = %v", cmds)
	}
	if plan.String() == "" {
		t.Fatal("empty plan string")
	}
	cfgs := plan.Configs(sc.Init)
	if len(cfgs) != 3 {
		t.Fatalf("configs = %d, want 3", len(cfgs))
	}
}
