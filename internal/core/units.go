package core

import (
	"fmt"
	"sort"
	"strings"

	"netupdate/internal/config"
	"netupdate/internal/network"
)

// unit is one atomic update: at switch granularity, the replacement of a
// switch's whole table with its final table; at rule granularity, the
// insertion or removal of a single rule; in 2-simple mode, the
// installation of a merged (init+final) table followed by a finalize
// step.
type unit struct {
	id int
	sw int
	// switch granularity:
	newTable network.Table
	// rule granularity:
	isRule bool
	add    bool
	rule   network.Rule
	// requires is the id of a prerequisite unit (-1 if none): a finalize
	// step may only run after its merge step.
	requires int
	// rank orders candidates: lower ranks are tried first.
	rank int
}

func (u unit) String() string {
	if !u.isRule {
		return fmt.Sprintf("u%d:update(sw%d)", u.id, u.sw)
	}
	op := "del"
	if u.add {
		op = "add"
	}
	return fmt.Sprintf("u%d:%s(sw%d)", u.id, op, u.sw)
}

// lateRank offsets units that should be tried after every final-path
// switch: switches/rules present only in the initial configuration (their
// update removes forwarding state, which is safe only once upstream has
// been redirected).
const lateRank = 1_000_000

// computeUnits derives the update units from the configuration diff and
// assigns the destination-first search ranks (see engine.go). With
// twoSimple set (Options.TwoSimple), every switch-granularity update is
// split into a merge step (install the union of both generations) and a
// finalize step (install the final table), realizing the paper's
// "k-simple" generalization for k = 2: each switch may be touched twice,
// which recovers the power of rule-granularity add-before-delete orders
// while keeping whole-table commands.
func computeUnits(sc *config.Scenario, ruleGranularity, twoSimple bool) ([]unit, error) {
	diff := config.Diff(sc.Init, sc.Final)
	rank := destinationRank(sc)
	unitRank := func(sw int) int {
		if r, ok := rank[sw]; ok {
			return r
		}
		// Not on any final path: this switch only loses state. Order
		// these after everything else.
		return lateRank
	}
	var units []unit
	if !ruleGranularity && twoSimple {
		for _, sw := range diff {
			merged := mergeTables(sc.Init.Table(sw), sc.Final.Table(sw))
			mergeID := len(units)
			units = append(units, unit{
				id: mergeID, sw: sw, newTable: merged,
				requires: -1, rank: unitRank(sw),
			})
			units = append(units, unit{
				id: mergeID + 1, sw: sw, newTable: sc.Final.Table(sw).Clone(),
				requires: mergeID, rank: lateRank + unitRank(sw),
			})
		}
		return units, nil
	}
	if !ruleGranularity {
		for _, sw := range diff {
			units = append(units, unit{
				id:       len(units),
				sw:       sw,
				newTable: sc.Final.Table(sw).Clone(),
				requires: -1,
				rank:     unitRank(sw),
			})
		}
		return units, nil
	}
	for _, sw := range diff {
		removed, added := diffTables(sc.Init.Table(sw), sc.Final.Table(sw))
		for _, r := range added {
			units = append(units, unit{
				id: len(units), sw: sw, isRule: true, add: true, rule: r,
				requires: -1, rank: unitRank(sw),
			})
		}
		for _, r := range removed {
			// Removals come after all additions: deleting a rule can only
			// break paths. Within removals, "flip" deletes (the switch
			// also gains a replacement rule for the same match, so the
			// delete redirects live traffic) come before pure dismantling
			// deletes of abandoned branches — grouping all flips before
			// all dismantles lets wait removal keep a single barrier
			// between the two phases.
			band := 2 * lateRank
			for _, a := range added {
				if a.Match == r.Match {
					band = lateRank
					break
				}
			}
			units = append(units, unit{
				id: len(units), sw: sw, isRule: true, add: false, rule: r,
				requires: -1, rank: band + unitRank(sw),
			})
		}
	}
	return units, nil
}

// mergeTables unions two rule generations, keeping one copy of rules
// present in both.
func mergeTables(a, b network.Table) network.Table {
	out := a.Clone()
outer:
	for _, rb := range b {
		for _, ra := range a {
			if ruleEq(ra, rb) {
				continue outer
			}
		}
		out = append(out, rb)
	}
	return out
}

// diffTables returns rules only in a (removed) and only in b (added),
// multiset semantics.
func diffTables(a, b network.Table) (removed, added []network.Rule) {
	used := make([]bool, len(b))
outer:
	for _, ra := range a {
		for i, rb := range b {
			if !used[i] && ruleEq(ra, rb) {
				used[i] = true
				continue outer
			}
		}
		removed = append(removed, ra)
	}
	for i, rb := range b {
		if !used[i] {
			added = append(added, rb)
		}
	}
	return
}

func ruleEq(a, b network.Rule) bool {
	if a.Priority != b.Priority || a.Match != b.Match || len(a.Actions) != len(b.Actions) {
		return false
	}
	for i := range a.Actions {
		if a.Actions[i] != b.Actions[i] {
			return false
		}
	}
	return true
}

// destinationRank ranks every switch by its distance from the end of the
// final forwarding paths: switches nearer the destinations get smaller
// ranks, encoding the classic enable-downstream-before-upstream order as
// a search heuristic (completeness is preserved by backtracking).
func destinationRank(sc *config.Scenario) map[int]int {
	rank := map[int]int{}
	for _, cs := range sc.Specs {
		path, err := config.PathOf(sc.Final, sc.Topo, cs.Class)
		if err != nil {
			continue // validated earlier; be permissive here
		}
		for i, sw := range path {
			r := len(path) - 1 - i
			if old, ok := rank[sw]; !ok || r < old {
				rank[sw] = r
			}
		}
	}
	return rank
}

// orderUnits returns unit indexes sorted by rank (stable on id).
func orderUnits(units []unit) []int {
	idx := make([]int, len(units))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if units[idx[a]].rank != units[idx[b]].rank {
			return units[idx[a]].rank < units[idx[b]].rank
		}
		return units[idx[a]].id < units[idx[b]].id
	})
	return idx
}

// bitset is a fixed-capacity bitmask over unit ids.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) bitset {
	c := make(bitset, len(b))
	copy(c, b)
	c[i>>6] |= 1 << (uint(i) & 63)
	return c
}

func (b bitset) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// key renders the bitmask as a comparable string in one allocation (the
// Builder hands its buffer to the string without a second copy). The hot
// paths use hash/equal (see visited.go) and never call this; it remains
// for debugging and tests.
func (b bitset) key() string {
	var sb strings.Builder
	sb.Grow(8 * len(b))
	for _, w := range b {
		for j := 0; j < 8; j++ {
			sb.WriteByte(byte(w >> (8 * uint(j))))
		}
	}
	return sb.String()
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// matchesPattern reports whether the configuration bitmask agrees with
// the wrong-configuration pattern: every relevant unit has the recorded
// applied/unapplied flag.
func (b bitset) matchesPattern(relevant, value bitset) bool {
	for i := range b {
		if b[i]&relevant[i] != value[i] {
			return false
		}
	}
	return true
}
