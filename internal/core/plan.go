package core

import (
	"fmt"
	"strings"

	"netupdate/internal/config"
	"netupdate/internal/network"
	"netupdate/internal/obs"
)

// Step is one element of a synthesized update plan: either a wait barrier
// or the application of one update unit.
type Step struct {
	Wait bool
	// For update steps:
	Switch int
	// Table is the full table installed on Switch by this step (for rule
	// granularity this is the cumulative table after the rule change).
	Table network.Table
	// Rule-granularity detail: the rule added or removed, if any.
	IsRule  bool
	RuleAdd bool
	Rule    network.Rule
}

func (s Step) String() string {
	if s.Wait {
		return "wait"
	}
	if s.IsRule {
		op := "del"
		if s.RuleAdd {
			op = "add"
		}
		return fmt.Sprintf("%s(sw%d, %v)", op, s.Switch, s.Rule)
	}
	return fmt.Sprintf("update(sw%d)", s.Switch)
}

// Plan is a synthesized update sequence together with run statistics.
type Plan struct {
	Steps []Step
	Stats Stats
	// DAG is the dependency-DAG form of the plan (one node per update
	// step of Updates(), see dag.go): any linearization — or any
	// decentralized execution that commits each step once its
	// predecessors have committed, waiting out drain edges — is
	// trace-equivalent to the sequential Steps.
	DAG *PlanDAG
	// Trace is the span tree recorded for this run when the session has a
	// trace recorder attached (Options.Trace or Session.SetTrace); nil
	// otherwise.
	Trace *obs.TraceData
}

// Commands lowers the plan to the operational model's command list
// (Section 3.1): table replacements with incr/flush pairs for waits.
func (p *Plan) Commands() []network.Command {
	var out []network.Command
	for _, s := range p.Steps {
		if s.Wait {
			out = append(out, network.Wait()...)
		} else {
			out = append(out, network.Update(s.Switch, s.Table))
		}
	}
	return out
}

// Updates returns the non-wait steps in order.
func (p *Plan) Updates() []Step {
	var out []Step
	for _, s := range p.Steps {
		if !s.Wait {
			out = append(out, s)
		}
	}
	return out
}

// Waits returns the number of wait barriers in the plan.
func (p *Plan) Waits() int {
	n := 0
	for _, s := range p.Steps {
		if s.Wait {
			n++
		}
	}
	return n
}

// Configs reconstructs the sequence of static configurations the plan
// steps through, starting from init (inclusive of both endpoints).
func (p *Plan) Configs(init *config.Config) []*config.Config {
	out := []*config.Config{init.Clone()}
	cur := init.Clone()
	for _, s := range p.Steps {
		if s.Wait {
			continue
		}
		cur = cur.Clone()
		cur.SetTable(s.Switch, s.Table.Clone())
		out = append(out, cur)
	}
	return out
}

// ConfigAfter reconstructs the configuration reached from init once
// exactly the update steps named by committed (indices into Updates())
// have taken effect, regardless of order — the crash state a stalled
// decentralized execution leaves the network in (sim.Result.Committed
// feeds in directly). Indices must be valid; same-switch steps apply in
// plan order, matching any dependency-closed execution.
func (p *Plan) ConfigAfter(init *config.Config, committed []int) *config.Config {
	want := make(map[int]bool, len(committed))
	for _, i := range committed {
		want[i] = true
	}
	cur := init.Clone()
	for i, st := range p.Updates() {
		if want[i] {
			cur.SetTable(st.Switch, st.Table.Clone())
		}
	}
	return cur
}

func (p *Plan) String() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.String()
	}
	return strings.Join(parts, "; ")
}
