package core

import (
	"encoding/json"
	"errors"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/topology"
)

// flapWalk materializes the flapping stream the cache is built for: the
// session bounces between the initial configuration and a handful of
// targets, so every instance after the first cycle is a byte-identical
// repeat.
func flapWalk(t *testing.T, seed int64, cycles int) (*config.RollingStream, []*config.Config) {
	t.Helper()
	stream, targets := rollingTargets(t, seed, 2, 2, 1)
	walk := []*config.Config{}
	for c := 0; c < cycles; c++ {
		walk = append(walk, targets[0], stream.Init())
	}
	return stream, walk
}

// TestCacheHitByteIdentical: across all four checker backends, a session
// with the plan cache attached must return plans byte-identical to an
// uncached session on every step of a flapping walk, serve every repeat
// instance from the fast path (CacheHit), and keep honest counters.
func TestCacheHitByteIdentical(t *testing.T) {
	for _, kind := range []CheckerKind{CheckerIncremental, CheckerBatch, CheckerNuSMV, CheckerNetPlumber} {
		t.Run(kind.String(), func(t *testing.T) {
			stream, walk := flapWalk(t, 23, 3)
			opts := Options{Checker: kind, Parallelism: 1}
			cached, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), opts)
			if err != nil {
				t.Fatal(err)
			}
			cache := cached.EnableCache()
			if cache == nil {
				t.Fatal("EnableCache returned nil without NoPlanCache")
			}
			plain, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), opts)
			if err != nil {
				t.Fatal(err)
			}
			hits := 0
			for n, tgt := range walk {
				got, err := cached.Synthesize(tgt)
				if err != nil {
					t.Fatalf("step %d: cached: %v", n, err)
				}
				want, err := plain.Synthesize(tgt)
				if err != nil {
					t.Fatalf("step %d: plain: %v", n, err)
				}
				if got.String() != want.String() {
					t.Fatalf("step %d: cached plan diverged:\ncached %s\nfresh  %s",
						n, got.String(), want.String())
				}
				if n >= 2 && !got.Stats.CacheHit {
					t.Fatalf("step %d: repeat instance missed the cache", n)
				}
				if got.Stats.CacheHit {
					hits++
					if got.Stats.CacheVerifyFailed {
						t.Fatalf("step %d: clean hit marked verify-failed", n)
					}
				}
			}
			st := cache.Stats()
			if int(st.Hits) != hits {
				t.Fatalf("cache hits = %d, session saw %d", st.Hits, hits)
			}
			if st.Hits < int64(len(walk)-2) {
				t.Fatalf("hits = %d on a %d-step flap; fast path dead", st.Hits, len(walk))
			}
			if st.Misses != int64(len(walk))-st.Hits {
				t.Fatalf("misses = %d, want %d", st.Misses, int64(len(walk))-st.Hits)
			}
			if st.VerifyFailures != 0 || st.Evictions != 0 {
				t.Fatalf("unexpected failures/evictions: %+v", st)
			}
			if st.Entries != 2 {
				t.Fatalf("entries = %d, want 2 (one per flap direction)", st.Entries)
			}
		})
	}
}

// corruptEntries mutates every cached plan entry through fn. Test-only:
// entries are immutable by contract, which is exactly what a poisoning
// test has to violate.
func corruptEntries(c *PlanCache, fn func(*cacheEntry)) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		if ent.hasPlan() {
			fn(ent)
			n++
		}
	}
	return n
}

// TestCachePoisonedReplayFallsBack: Fig. 1 red→green has exactly one
// valid update order (C2 before A1, TestFig1RedGreenOrder), so reversing
// the cached steps yields an entry that still reaches the final
// configuration but violates the spec mid-replay. The replay must catch
// it, evict the entry, fall back to the full DFS, and return the correct
// plan.
func TestCachePoisonedReplayFallsBack(t *testing.T) {
	sc := config.Fig1RedGreen()
	cache := NewPlanCache(0)
	synth := func() *Plan {
		t.Helper()
		sess, err := NewSession(sc.Topo, sc.Init, sc.Specs, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		sess.SetCache(cache)
		plan, err := sess.Synthesize(sc.Final)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	want := synth() // miss: stored
	if want.Stats.CacheHit {
		t.Fatal("first synthesis cannot be a hit")
	}
	// Reverse the update steps in place: same switches, same final
	// tables, wrong order.
	n := corruptEntries(cache, func(ent *cacheEntry) {
		var ups []int
		for i := range ent.steps {
			if !ent.steps[i].Wait {
				ups = append(ups, i)
			}
		}
		for i, j := 0, len(ups)-1; i < j; i, j = i+1, j-1 {
			ent.steps[ups[i]], ent.steps[ups[j]] = ent.steps[ups[j]], ent.steps[ups[i]]
		}
	})
	if n != 1 {
		t.Fatalf("corrupted %d entries, want 1", n)
	}
	got := synth() // poisoned: replay fails, DFS fallback, re-stored
	if !got.Stats.CacheVerifyFailed {
		t.Fatal("poisoned replay not flagged")
	}
	if got.Stats.CacheHit {
		t.Fatal("poisoned replay counted as a hit")
	}
	if got.String() != want.String() {
		t.Fatalf("fallback plan diverged:\ngot  %s\nwant %s", got.String(), want.String())
	}
	st := cache.Stats()
	if st.VerifyFailures != 1 {
		t.Fatalf("verify failures = %d, want 1", st.VerifyFailures)
	}
	// The fallback re-stored a clean entry: the next run is a clean hit.
	clean := synth()
	if !clean.Stats.CacheHit || clean.Stats.CacheVerifyFailed {
		t.Fatalf("post-fallback run not a clean hit: %+v", clean.Stats)
	}
	if clean.String() != want.String() {
		t.Fatalf("post-fallback hit diverged:\ngot  %s\nwant %s", clean.String(), want.String())
	}
}

// TestCacheTruncatedEntryFallsBack: an entry whose steps no longer cover
// the diff (truncated snapshot, wrong plan for the key) must fail the
// structural pre-pass — before any checker work — and fall back.
func TestCacheTruncatedEntryFallsBack(t *testing.T) {
	sc := config.Fig1RedGreen()
	cache := NewPlanCache(0)
	sess, err := NewSession(sc.Topo, sc.Init, sc.Specs, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess.SetCache(cache)
	want, err := sess.Synthesize(sc.Final)
	if err != nil {
		t.Fatal(err)
	}
	corruptEntries(cache, func(ent *cacheEntry) { ent.steps = ent.steps[:1] })
	sess2, err := NewSession(sc.Topo, sc.Init, sc.Specs, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess2.SetCache(cache)
	got, err := sess2.Synthesize(sc.Final)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Stats.CacheVerifyFailed || got.Stats.CacheHit {
		t.Fatalf("truncated entry not rejected: %+v", got.Stats)
	}
	if got.String() != want.String() {
		t.Fatalf("fallback plan diverged:\ngot  %s\nwant %s", got.String(), want.String())
	}
	if cache.Stats().VerifyFailures != 1 {
		t.Fatalf("verify failures = %d, want 1", cache.Stats().VerifyFailures)
	}
}

// TestCacheInfeasibleMemo: an instance proven ErrNoOrdering is memoized —
// the repeat fails fast, reports CacheHit, and runs no search.
func TestCacheInfeasibleMemo(t *testing.T) {
	topo := topology.SmallWorld(30, 4, 0.3, 7)
	sc, err := config.Infeasible(topo, config.InfeasibleOptions{Gadgets: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(sc.Topo, sc.Init, sc.Specs, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cache := sess.EnableCache()
	if _, err := sess.Synthesize(sc.Final); !errors.Is(err, ErrNoOrdering) {
		t.Fatalf("err = %v, want ErrNoOrdering", err)
	}
	first := sess.LastStats()
	if first.CacheHit {
		t.Fatal("first failure cannot be a hit")
	}
	if _, err := sess.Synthesize(sc.Final); !errors.Is(err, ErrNoOrdering) {
		t.Fatalf("repeat err = %v, want ErrNoOrdering", err)
	}
	repeat := sess.LastStats()
	if !repeat.CacheHit {
		t.Fatal("repeat infeasibility missed the memo")
	}
	// Target verification always runs (verifyFinal); the search must not.
	if repeat.Backtracks != 0 || repeat.CexLearned != 0 || repeat.SATCalls != 0 {
		t.Fatalf("memoized failure still searched: %+v", repeat)
	}
	if st := cache.Stats(); st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 entry", st)
	}
}

// TestCacheSnapshotRoundTrip: Snapshot → JSON → Restore must hand a cold
// process the warm process's fast path — the very first request against
// the restored cache is a verified hit with a byte-identical plan, and a
// persisted infeasibility memo still fails fast.
func TestCacheSnapshotRoundTrip(t *testing.T) {
	stream, walk := flapWalk(t, 29, 1)
	sess, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cache := sess.EnableCache()
	var plans []*Plan
	for _, tgt := range walk {
		p, err := sess.Synthesize(tgt)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
	}
	// Add an infeasibility memo to the mix.
	itopo := topology.SmallWorld(30, 4, 0.3, 7)
	isc, err := config.Infeasible(itopo, config.InfeasibleOptions{Gadgets: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	isess, err := NewSession(isc.Topo, isc.Init, isc.Specs, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	isess.SetCache(cache)
	if _, err := isess.Synthesize(isc.Final); !errors.Is(err, ErrNoOrdering) {
		t.Fatalf("err = %v, want ErrNoOrdering", err)
	}

	raw, err := json.Marshal(cache.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap PlanCacheSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	restored := NewPlanCache(0)
	if err := restored.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != cache.Len() {
		t.Fatalf("restored %d entries, want %d", restored.Len(), cache.Len())
	}

	cold, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cold.SetCache(restored)
	for n, tgt := range walk {
		p, err := cold.Synthesize(tgt)
		if err != nil {
			t.Fatalf("step %d: %v", n, err)
		}
		if !p.Stats.CacheHit {
			t.Fatalf("step %d: restored cache missed", n)
		}
		if p.String() != plans[n].String() {
			t.Fatalf("step %d: restored plan diverged:\ngot  %s\nwant %s",
				n, p.String(), plans[n].String())
		}
	}
	icold, err := NewSession(isc.Topo, isc.Init, isc.Specs, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	icold.SetCache(restored)
	if _, err := icold.Synthesize(isc.Final); !errors.Is(err, ErrNoOrdering) {
		t.Fatalf("restored memo: err = %v, want ErrNoOrdering", err)
	}
	if !icold.LastStats().CacheHit {
		t.Fatal("restored infeasibility memo missed")
	}

	// Corrupted snapshots are rejected, not half-loaded.
	bad := PlanCacheSnapshot{Entries: []PlanCacheEntrySnapshot{{Key: "zz"}}}
	if err := NewPlanCache(0).Restore(&bad); err == nil {
		t.Fatal("bad key accepted")
	}
	short := PlanCacheSnapshot{Entries: []PlanCacheEntrySnapshot{{Key: "abcd", Infeasible: true}}}
	if err := NewPlanCache(0).Restore(&short); err == nil {
		t.Fatal("short key accepted")
	}
}

// TestCacheEvictionBound: the cache never exceeds its capacity and counts
// capacity evictions apart from poisonings.
func TestCacheEvictionBound(t *testing.T) {
	c := NewPlanCache(2)
	key := func(b byte) string {
		k := make([]byte, 32)
		k[0] = b
		return string(k)
	}
	for b := byte(0); b < 5; b++ {
		c.storeInfeasible(key(b), learnedState{})
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if ev := c.Stats().Evictions; ev != 3 {
		t.Fatalf("evictions = %d, want 3", ev)
	}
	// LRU: the two newest keys survive.
	if c.lookup(key(4)) == nil || c.lookup(key(3)) == nil {
		t.Fatal("newest entries evicted")
	}
	if c.lookup(key(0)) != nil {
		t.Fatal("oldest entry survived")
	}
}

// TestPreloadLearningValidation: preloading learned state from an
// identical instance primes the fresh engine's pruning structures, while
// state whose shape does not match the unit list (a corrupted snapshot)
// is skipped — pruning from mismatched state would be unsound.
func TestPreloadLearningValidation(t *testing.T) {
	stream, targets := rollingTargets(t, 23, 2, 2, 1)
	sc := &config.Scenario{
		Name: "preload", Topo: stream.Topo(), Init: stream.Init(),
		Final: targets[0], Specs: stream.Specs(),
	}
	e, err := newEngineShell(sc, Options{Parallelism: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nu := len(e.units)
	if nu == 0 {
		t.Fatal("no units")
	}
	words := len(newBitset(nu))
	good := newBitset(nu)
	good.set(0)
	ls := learnedState{
		patterns: []pattern{
			{relevant: good, value: good},
			{relevant: make(bitset, words+1), value: make(bitset, words+1)}, // wrong width
		},
		cons: []cexCons{
			{applied: []int{0}, unapplied: []int{nu - 1}},
			{applied: []int{nu + 7}, unapplied: nil}, // out of range
		},
		dead: []bitset{good, make(bitset, words+2)},
	}
	if unsat := e.preloadLearning(&ls); unsat {
		t.Fatal("single constraint cannot be unsat")
	}
	if got := len(e.shared.patterns()); got != 1 {
		t.Fatalf("patterns loaded = %d, want 1 (corrupt one skipped)", got)
	}
	if got := len(e.shared.cons); got != 1 {
		t.Fatalf("cons recorded = %d, want 1 (out-of-range one skipped)", got)
	}
	if !e.visited.has(good) {
		t.Fatal("valid dead configuration not seeded")
	}
	if e.visited.has(make(bitset, words+2)) {
		t.Fatal("mis-sized dead configuration seeded")
	}
}

// TestNoPlanCacheOption: Options.NoPlanCache makes cache attachment a
// no-op, so every request pays the full search.
func TestNoPlanCacheOption(t *testing.T) {
	stream, walk := flapWalk(t, 23, 2)
	sess, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(),
		Options{Parallelism: 1, NoPlanCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if c := sess.EnableCache(); c != nil {
		t.Fatal("EnableCache must refuse under NoPlanCache")
	}
	sess.SetCache(NewPlanCache(0))
	if sess.Cache() != nil {
		t.Fatal("SetCache must refuse under NoPlanCache")
	}
	for n, tgt := range walk {
		p, err := sess.Synthesize(tgt)
		if err != nil {
			t.Fatalf("step %d: %v", n, err)
		}
		if p.Stats.CacheHit {
			t.Fatalf("step %d: hit with the cache disabled", n)
		}
	}
}
