package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/obs"
)

// spanNames collects the set of span names in a trace export.
func spanNames(d *obs.TraceData) map[string]int {
	names := map[string]int{}
	for _, sp := range d.Spans {
		names[sp.Name]++
	}
	return names
}

// TestTraceDisabledRecordsNothing: without Options.Trace the plan carries
// no trace and the session holds no recorder.
func TestTraceDisabledRecordsNothing(t *testing.T) {
	sc := config.Fig1RedBlue()
	s := repairSession(t, sc, Options{Parallelism: 1})
	plan, err := s.Synthesize(sc.Final)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Trace != nil {
		t.Fatalf("untraced plan carries %d spans", len(plan.Trace.Spans))
	}
	if s.Trace() != nil {
		t.Fatal("untraced session holds a recorder")
	}
	// Phase durations are populated even without tracing.
	if plan.Stats.VerifyElapsed <= 0 || plan.Stats.SearchElapsed <= 0 {
		t.Fatalf("phase durations missing without trace: %+v", plan.Stats)
	}
}

// TestTraceDecomposedMultiRegion is the acceptance-criterion trace: a
// decomposed multi-region synthesis must export a span tree with distinct
// rebind / per-component search / wait-removal / DAG-build spans, all
// rooted under one synthesize span, and the Chrome export must be a
// loadable event array containing them.
func TestTraceDecomposedMultiRegion(t *testing.T) {
	sc := multiRegionScenario(t, 3, 1, 0, 11)
	s, err := NewSession(sc.Topo, sc.Init, sc.Specs, Options{Parallelism: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.WithRequestID(t.Context(), "req-trace-test")
	plan, err := s.SynthesizeContext(ctx, sc.Final)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Trace == nil {
		t.Fatal("traced plan has no trace")
	}
	if plan.Trace.RequestID != "req-trace-test" {
		t.Fatalf("trace RequestID = %q", plan.Trace.RequestID)
	}
	if plan.Stats.RequestID != "req-trace-test" {
		t.Fatalf("stats RequestID = %q", plan.Stats.RequestID)
	}
	ri := plan.Trace.Root()
	if ri < 0 || plan.Trace.Spans[ri].Name != "synthesize" {
		t.Fatalf("root span = %v", plan.Trace.Spans[ri])
	}
	names := spanNames(plan.Trace)
	for _, want := range []string{
		"synthesize", "final-verify", "decompose", "search",
		"component-0", "component-1", "component-2",
		"wait-removal", "dag-build", "rebind",
	} {
		if names[want] == 0 {
			t.Fatalf("trace missing %q span; got %v", want, names)
		}
	}
	// Every span is parented inside the tree.
	ids := map[int]bool{0: true}
	for _, sp := range plan.Trace.Spans {
		ids[sp.ID] = true
	}
	for _, sp := range plan.Trace.Spans {
		if !ids[sp.Parent] {
			t.Fatalf("span %+v has unknown parent", sp)
		}
	}
	// The phase durations come from the same clock: search must dominate
	// its component spans and every recorded phase is non-negative.
	st := plan.Stats
	if st.VerifyElapsed <= 0 || st.SearchElapsed <= 0 || st.RebindElapsed < 0 || st.WaitRemovalElapsed < 0 {
		t.Fatalf("phase durations: %+v", st)
	}

	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, plan.Trace); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome export not loadable: %v", err)
	}
	if len(evs) != len(plan.Trace.Spans) {
		t.Fatalf("chrome export has %d events for %d spans", len(evs), len(plan.Trace.Spans))
	}
}

// TestTraceCacheHitSpans: a replayed cache hit records cache-lookup and
// cache-verify spans instead of a search, and stamps CacheVerifyElapsed.
func TestTraceCacheHitSpans(t *testing.T) {
	sc := config.Fig1RedBlue()
	s := repairSession(t, sc, Options{Parallelism: 1, Trace: true})
	s.EnableCache()
	if _, err := s.Synthesize(sc.Final); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Synthesize(sc.Init); err != nil {
		t.Fatal(err)
	}
	plan, err := s.Synthesize(sc.Final)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Stats.CacheHit {
		t.Fatal("third flap did not hit the plan cache")
	}
	names := spanNames(plan.Trace)
	if names["cache-lookup"] == 0 || names["cache-verify"] == 0 {
		t.Fatalf("cache-hit trace missing cache spans: %v", names)
	}
	if names["search"] != 0 {
		t.Fatalf("cache-hit trace recorded a search span: %v", names)
	}
	if plan.Stats.CacheVerifyElapsed <= 0 {
		t.Fatalf("CacheVerifyElapsed = %v", plan.Stats.CacheVerifyElapsed)
	}
}

// TestTraceRepairTree: a Repair run exports one tree rooted at a repair
// span with the crash rebind and the nested synthesis under it.
func TestTraceRepairTree(t *testing.T) {
	sc := config.Fig1RedBlue()
	s := repairSession(t, sc, Options{Parallelism: 1, Trace: true})
	plan, err := s.Synthesize(sc.Final)
	if err != nil {
		t.Fatal(err)
	}
	committed := []int{}
	for j, preds := range plan.DAG.Preds {
		if len(preds) == 0 {
			committed = append(committed, j)
			break
		}
	}
	rep, err := s.Repair(committed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("repair plan has no trace")
	}
	ri := rep.Trace.Root()
	if ri < 0 || rep.Trace.Spans[ri].Name != "repair" {
		t.Fatalf("repair root span = %+v", rep.Trace.Spans[ri])
	}
	names := spanNames(rep.Trace)
	if names["rebind-to-crash"] == 0 || names["synthesize"] == 0 {
		t.Fatalf("repair trace spans: %v", names)
	}
	// The nested synthesize span must be parented under the repair root.
	root := rep.Trace.Spans[ri].ID
	for _, sp := range rep.Trace.Spans {
		if sp.Name == "synthesize" && sp.Parent != root {
			t.Fatalf("synthesize span parent = %d, want repair root %d", sp.Parent, root)
		}
	}
}
