package core

import (
	"netupdate/internal/config"
	"netupdate/internal/network"
)

// depAnalysis is the reusable ordering-analysis core shared by the
// wait-removal pass (waits.go) and the plan-DAG builder (dag.go). It
// walks a plan's update steps in order, tracking the evolving
// configuration and a window of "pending" updates whose pre-update rules
// may still govern in-flight packets, and answers the two questions both
// consumers need:
//
//   - which classes does this step affect (the per-class behavior-change
//     test of Section 4.2.C)?
//   - could a packet forwarded under some earlier step's old rules still
//     reach this step's switch (the reachability hazard that forces a
//     wait barrier — or, in DAG form, a drain edge)?
//
// waits.go previously interleaved this dependency discovery with the
// wait-elision loop itself; hoisting it here lets the DAG builder reuse
// the identical ordering facts instead of re-deriving weaker ones.
//
// oldEntry remembers a switch updated inside the current window, its
// pre-update table, and which classes that update affected.
type oldEntry struct {
	sw       int
	tbl      network.Table
	affected []bool // indexed like sc.Specs
}

type depAnalysis struct {
	e *engine
	// cur is the configuration reached by the steps advanced so far.
	cur *config.Config
	// pending is the window of updates since the last barrier whose old
	// rules may still govern in-flight packets.
	pending []oldEntry
}

// newDepAnalysis starts an analysis at the scenario's initial
// configuration. The engine supplies the scenario, the specs, and the
// pooled BFS scratch; the analysis allocates only its configuration clone
// and the pending window.
func (e *engine) newDepAnalysis() *depAnalysis {
	return &depAnalysis{e: e, cur: e.sc.Init.Clone()}
}

// affected reports, per spec class, whether installing tbl on sw changes
// the class's forwarding behavior at the current configuration.
func (d *depAnalysis) affected(sw int, tbl network.Table) []bool {
	return d.e.affectedClasses(d.cur.Table(sw), tbl)
}

// barrierNeeded reports whether applying an update to sw (affecting the
// given classes) without a barrier could let an in-flight packet —
// forwarded under the old rules of some pending switch — observe both an
// old and the new configuration at sw (the waitNeeded test of Section
// 4.2.C over the whole pending window).
func (d *depAnalysis) barrierNeeded(sw int, affected []bool) bool {
	if len(d.pending) == 0 {
		return false
	}
	return d.e.waitNeeded(d.cur, d.pending, sw, affected)
}

// drainNeeded is the single-predecessor refinement of barrierNeeded: it
// reports whether in-flight packets forwarded under pending entry p's old
// rules could reach sw, considering only classes both updates affect. The
// DAG builder uses it to mark which dependency edges carry a drain
// obligation rather than fencing the whole window.
func (d *depAnalysis) drainNeeded(p *oldEntry, sw int, affected []bool) bool {
	e := d.e
	for ci, cs := range e.sc.Specs {
		if !affected[ci] || !p.affected[ci] {
			continue
		}
		pkt := cs.Class.Packet()
		starts := e.appendClassSuccessors(e.startsBuf[:0], p.tbl, p.sw, pkt)
		e.startsBuf = starts[:0]
		if len(starts) == 0 {
			continue
		}
		if e.reaches(d.cur, pkt, starts, sw) {
			return true
		}
	}
	return false
}

// barrier resets the pending window: a retained wait guarantees every
// in-flight packet has drained, so earlier old rules need no further
// fencing.
func (d *depAnalysis) barrier() {
	d.pending = d.pending[:0]
}

// advance records the step in the pending window — when it affects some
// class and its switch was live (reachable for some class) inside the
// window — and applies its table to the tracked configuration. It returns
// the index of the recorded window entry, or -1 when the step needs no
// fencing (indexes stay valid across later appends).
func (d *depAnalysis) advance(sw int, tbl network.Table, affected []bool) int {
	idx := -1
	if anyTrue(affected) && d.e.liveSinceWait(d.cur, d.pending, sw) {
		idx = len(d.pending)
		d.pending = append(d.pending, oldEntry{
			sw: sw, tbl: d.cur.Table(sw), affected: affected,
		})
	}
	d.cur.SetTable(sw, tbl)
	return idx
}
