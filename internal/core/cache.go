package core

// Verification-first plan cache (ROADMAP item 4). Production controller
// streams are highly repetitive — rolling updates revisit the same config
// diffs, failures flap A→B→A — yet the search pays a full DFS even when a
// byte-identical instance was solved moments ago. The paper's own
// asymmetry is that *verifying* an update sequence through the
// incremental checker is far cheaper than *searching* for one, so the
// cache stores, per instance, the synthesized plan (with its dependency
// DAG) and on a repeat replays it step by step through the session's warm
// checkers: every intermediate configuration is model-checked again
// before the plan is handed out, so a hit is exactly as sound as a fresh
// synthesis and a poisoned or stale entry is detected, evicted, and the
// run falls back to the ordinary DFS.
//
// An instance is keyed by a strong fingerprint of everything that
// determines the search: the context (topology, per-class LTL
// specifications, and the plan-shape options) and the full canonical
// encodings of the base and target configurations (network.Table
// Canonical order, switches ascending). Key equality therefore implies
// the two runs see byte-identical unit lists — computeUnits is a
// deterministic function of the (base, target) diff — which is also what
// makes the second layer sound: the learned state of Section 4.2
// (wrong-configuration patterns, SAT early-termination constraints, the
// dead-configuration set) is unit-indexed, so it is persisted per
// instance and preloaded into a repeat search when no plan is available,
// and an instance once proven infeasible (ErrNoOrdering) is memoized and
// fails fast. Entries are LRU-evicted at a fixed bound; Snapshot/Restore
// serialize the whole cache to JSON for the -learn-file flag and the
// pool's cross-tenant persistence.
import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"

	"container/list"

	"netupdate/internal/config"
	"netupdate/internal/topology"
)

// DefaultPlanCacheEntries bounds a plan cache that was not given an
// explicit capacity: entries hold cloned plans, so the bound keeps a
// long-lived session's memory proportional to the working set of
// distinct instances, not the stream length.
const DefaultPlanCacheEntries = 4096

// Harvest caps: learned state beyond these bounds is dropped rather than
// cached, keeping entry size bounded by the useful prefix (patterns and
// constraints are most valuable early in a repeat search).
const (
	maxPatternHarvest = 1024
	maxConsHarvest    = 1024
	maxDeadHarvest    = 2048
)

// PlanCache is a bounded, LRU-evicted store of synthesis results keyed by
// instance fingerprint. It is safe for concurrent use, so one cache can
// back every tenant of a server pool that shares a learning fingerprint.
// Entries are immutable once inserted: lookups hand out pointers that
// stay valid (and correct) even if the entry is evicted concurrently.
type PlanCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used; values are *cacheEntry

	hits           atomic.Int64
	misses         atomic.Int64
	verifyFailures atomic.Int64
	evictions      atomic.Int64
}

// NewPlanCache returns a cache bounded to max entries (<=0 selects
// DefaultPlanCacheEntries).
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		max = DefaultPlanCacheEntries
	}
	return &PlanCache{
		max:     max,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// cacheEntry is one memoized instance: either a plan (steps + DAG) to
// replay-verify, or an infeasibility memo, each with the learned state
// harvested from the run that produced it.
type cacheEntry struct {
	key        string
	infeasible bool
	steps      []Step
	dag        *PlanDAG
	components int
	learn      learnedState
}

func (e *cacheEntry) hasPlan() bool { return !e.infeasible }

// learnedState is the persistent form of sharedState: the Section 4.2
// pruning structures of one run, unit-indexed and therefore only
// meaningful for the identical instance.
type learnedState struct {
	patterns []pattern
	cons     []cexCons
	dead     []bitset
}

func (ls *learnedState) empty() bool {
	return len(ls.patterns) == 0 && len(ls.cons) == 0 && len(ls.dead) == 0
}

// cexCons is one recorded SAT early-termination constraint: the unit ids
// applied and unapplied in the counterexample configuration (the inputs
// of earlyTerm.addCexConstraint).
type cexCons struct {
	applied   []int
	unapplied []int
}

// PlanCacheStats is a point-in-time snapshot of the cache counters.
type PlanCacheStats struct {
	Hits           int64
	Misses         int64
	VerifyFailures int64
	Evictions      int64
	Entries        int
}

// Stats returns the current counters and entry count.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return PlanCacheStats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		VerifyFailures: c.verifyFailures.Load(),
		Evictions:      c.evictions.Load(),
		Entries:        n,
	}
}

// Len returns the number of cached instances.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// lookup returns the entry for key (refreshing its LRU position) or nil.
func (c *PlanCache) lookup(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

func (c *PlanCache) noteHit()  { c.hits.Add(1) }
func (c *PlanCache) noteMiss() { c.misses.Add(1) }

// evictPoisoned drops an entry whose replay-verification failed. The
// failure is counted apart from capacity evictions: a nonzero counter
// means the cache saw a stale or corrupted plan and the fast path fell
// back to search.
func (c *PlanCache) evictPoisoned(key string) {
	c.verifyFailures.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.Remove(el)
		delete(c.entries, key)
	}
}

// store inserts (or replaces) the entry for key and evicts from the LRU
// tail past the capacity bound.
func (c *PlanCache) store(ent *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[ent.key]; ok {
		el.Value = ent
		c.lru.MoveToFront(el)
		return
	}
	c.entries[ent.key] = c.lru.PushFront(ent)
	for c.lru.Len() > c.max {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// storePlan memoizes a successful run: the steps and DAG are cloned in,
// so the caller's plan stays mutable without poisoning the cache.
func (c *PlanCache) storePlan(key string, steps []Step, dag *PlanDAG, components int, ls learnedState) {
	c.store(&cacheEntry{
		key:        key,
		steps:      cloneSteps(steps),
		dag:        dag.clone(),
		components: components,
		learn:      ls,
	})
}

// storeInfeasible memoizes a proven ErrNoOrdering instance with the
// learned state that proves it, so a repeat fails fast and a repair-mode
// re-search (which must run the fallback ladder, not fail) starts primed.
func (c *PlanCache) storeInfeasible(key string, ls learnedState) {
	c.store(&cacheEntry{key: key, infeasible: true, learn: ls})
}

func cloneSteps(steps []Step) []Step {
	if steps == nil {
		return nil
	}
	out := make([]Step, len(steps))
	for i, st := range steps {
		out[i] = st
		out[i].Table = st.Table.Clone()
	}
	return out
}

// clone deep-copies a DAG so cached and handed-out plans never alias.
func (d *PlanDAG) clone() *PlanDAG {
	if d == nil {
		return nil
	}
	out := &PlanDAG{Depth: d.Depth, Width: d.Width}
	out.Preds = cloneIntLists(d.Preds)
	out.Drain = cloneIntLists(d.Drain)
	return out
}

func cloneIntLists(in [][]int) [][]int {
	if in == nil {
		return nil
	}
	out := make([][]int, len(in))
	for i, l := range in {
		if l != nil {
			out[i] = append([]int(nil), l...)
		}
	}
	return out
}

// --- instance fingerprinting ---

// hashWriter wraps a hash with alloc-free integer/string encoding.
type hashWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *hashWriter) writeInt(v int) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
	w.h.Write(w.buf[:])
}

func (w *hashWriter) writeString(s string) {
	w.writeInt(len(s))
	w.h.Write([]byte(s))
}

// contextFingerprint digests everything fixed for a session that shapes
// which plan the search returns: the topology, the per-class
// specifications, and the plan-shape options. Parallelism, timeouts, and
// the learning toggles are deliberately excluded — the deterministic
// parallel engine returns the sequential plan and learning only prunes
// provably-wrong configurations, so none of them change the result.
func contextFingerprint(topo *topology.Topology, specs []config.ClassSpec, opts Options) []byte {
	w := &hashWriter{h: sha256.New()}
	w.writeInt(topo.NumSwitches())
	for sw := 0; sw < topo.NumSwitches(); sw++ {
		for _, l := range topo.Neighbors(sw) {
			if l.Peer > sw {
				w.writeInt(sw)
				w.writeInt(l.Peer)
			}
		}
	}
	hosts := topo.Hosts()
	w.writeInt(len(hosts))
	for _, h := range hosts {
		w.writeInt(h.ID)
		w.writeInt(h.Switch)
	}
	w.writeInt(len(specs))
	for _, cs := range specs {
		w.writeInt(cs.Class.SrcHost)
		w.writeInt(cs.Class.DstHost)
		w.writeString(cs.Formula.String())
	}
	w.writeInt(int(opts.Checker))
	flags := 0
	for i, b := range []bool{
		opts.RuleGranularity, opts.TwoSimple, opts.NoWaitRemoval,
		opts.NoDecomposition, opts.NoHeuristicOrder, opts.FirstPlanWins,
		opts.MinimizeCompletionTime,
	} {
		if b {
			flags |= 1 << i
		}
	}
	w.writeInt(flags)
	return w.h.Sum(nil)
}

// cfgHash is a memoized configuration digest.
type cfgHash [sha256.Size]byte

// hashConfig digests a full configuration: switches ascending, tables in
// network.Table.Canonical order, so configurations equal under table
// equality hash identically regardless of rule insertion order.
func hashConfig(cfg *config.Config) cfgHash {
	w := &hashWriter{h: sha256.New()}
	for _, sw := range cfg.Switches() {
		tbl := cfg.Table(sw).Canonical()
		if len(tbl) == 0 {
			continue
		}
		w.writeInt(sw)
		w.writeInt(len(tbl))
		for _, r := range tbl {
			w.writeInt(r.Priority)
			w.writeInt(int(r.Match.InPort))
			w.writeInt(r.Match.Src)
			w.writeInt(r.Match.Dst)
			w.writeInt(r.Match.Typ)
			w.writeInt(len(r.Actions))
			for _, a := range r.Actions {
				w.writeInt(int(a.Kind))
				w.writeInt(int(a.Port))
				w.writeInt(int(a.Field))
				w.writeInt(a.Value)
			}
		}
	}
	var out cfgHash
	w.h.Sum(out[:0])
	return out
}

// instanceKey combines the session context fingerprint with the base and
// target configuration hashes. The base hash is memoized by pointer
// identity — configurations handed to a session are immutable by
// contract, and on success the target pointer becomes the next base — so
// steady-state streams hash one configuration per request, not two.
func (s *Session) instanceKey(final *config.Config) string {
	if s.ctxFP == nil {
		s.ctxFP = contextFingerprint(s.topo, s.specs, s.opts)
	}
	if s.hashedCur != s.cur {
		s.hashedCur, s.curHash = s.cur, hashConfig(s.cur)
	}
	tgtHash := hashConfig(final)
	h := sha256.New()
	h.Write(s.ctxFP)
	h.Write(s.curHash[:])
	h.Write(tgtHash[:])
	key := string(h.Sum(nil))
	// Pre-memoize the target hash under its pointer: on success the
	// session advances to final and the next request reuses it.
	s.pendingCfg, s.pendingHash = final, tgtHash
	return key
}

// noteAdvance moves the memoized base hash when the session's current
// configuration advances to the target of a successful synthesis.
func (s *Session) noteAdvance(final *config.Config) {
	if s.pendingCfg == final {
		s.hashedCur, s.curHash = final, s.pendingHash
	}
}

// --- engine harvest & preload ---

// armLearnRecording points the engine's dead-configuration sink at a
// fresh slice so a sequential search records what markDead proves. The
// parallel deterministic engine needs no sink — its proofs land in the
// shared striped set — and first-plan-wins claims are not proofs, so
// they are never recorded.
func (e *engine) armLearnRecording() {
	if e.workerCount() == 1 && !e.opts.MinimizeCompletionTime {
		e.recordDeadCap = maxDeadHarvest
	}
}

// harvestLearning snapshots the run's learned state in persistable form.
func (e *engine) harvestLearning() learnedState {
	var ls learnedState
	sh := e.shared
	sh.mu.Lock()
	pats := sh.patterns()
	if len(pats) > maxPatternHarvest {
		pats = pats[:maxPatternHarvest]
	}
	ls.patterns = append([]pattern(nil), pats...)
	cons := sh.cons
	if len(cons) > maxConsHarvest {
		cons = cons[:maxConsHarvest]
	}
	ls.cons = append([]cexCons(nil), cons...)
	sh.mu.Unlock()
	ls.dead = append(ls.dead, e.recordDead...)
	if sh.dead != nil && !sh.claimOnEntry {
		ls.dead = sh.dead.appendAll(ls.dead, maxDeadHarvest)
	}
	return ls
}

// preloadLearning seeds a fresh engine with an identical instance's
// persisted learned state: patterns and dead configurations prune
// subtrees the prior run proved fruitless, and the recorded constraints
// replay through the SAT solver — if they are jointly unsatisfiable the
// search is over before it starts. Entries whose bitset width or unit
// ids do not match the engine's unit list (a corrupted snapshot) are
// skipped: pruning from mismatched state would be unsound.
func (e *engine) preloadLearning(ls *learnedState) (unsat bool) {
	words := len(newBitset(len(e.units)))
	sh := e.shared
	sh.mu.Lock()
	for _, p := range ls.patterns {
		if len(p.relevant) != words || len(p.value) != words {
			continue
		}
		sh.addPattern(p)
	}
	for _, c := range ls.cons {
		if !unitIDsValid(c.applied, len(e.units)) || !unitIDsValid(c.unapplied, len(e.units)) {
			continue
		}
		sh.cons = append(sh.cons, c)
		if !e.opts.NoEarlyTermination && !unsat {
			e.stats.SATCalls++
			if !sh.et.addCexConstraint(c.applied, c.unapplied) {
				unsat = true
			}
		}
	}
	sh.mu.Unlock()
	for _, d := range ls.dead {
		if len(d) != words {
			continue
		}
		e.visited.add(d)
		if sh.dead != nil {
			sh.dead.add(d)
		}
	}
	if unsat {
		e.stats.EarlyTerminate = true
	}
	return unsat
}

func unitIDsValid(ids []int, n int) bool {
	for _, id := range ids {
		if id < 0 || id >= n {
			return false
		}
	}
	return true
}

// --- replay-verify ---

// replayCached re-verifies a cached plan against the session's warm
// structures: a structural pass first confirms the steps actually
// transform the current configuration into final (every diff switch
// covered, every touched switch ending at its final table), then every
// update step is applied through applyAndCheck — the same model-checked
// apply the search uses — so each intermediate configuration is checked
// against every class specification. Any failure reverts everything and
// reports false; the session falls back to the ordinary search. On
// success the warm structures are left at the final configuration
// (exactly like a sequential search) and a fresh clone of the steps is
// returned.
func (s *Session) replayCached(e *engine, ent *cacheEntry, final *config.Config) ([]Step, bool) {
	lastTbl := map[int]int{} // switch -> index of its last update step
	for i := range ent.steps {
		if !ent.steps[i].Wait {
			lastTbl[ent.steps[i].Switch] = i
		}
	}
	for _, sw := range config.Diff(s.cur, final) {
		i, ok := lastTbl[sw]
		if !ok || !ent.steps[i].Table.Equal(final.Table(sw)) {
			return nil, false
		}
	}
	for sw, i := range lastTbl {
		if !ent.steps[i].Table.Equal(final.Table(sw)) {
			return nil, false
		}
	}
	var frames []frame
	for i := range ent.steps {
		st := &ent.steps[i]
		if st.Wait {
			continue
		}
		fs, failed, _, err := e.applyAndCheck(st.Switch, st.Table)
		frames = append(frames, fs...)
		if err != nil || failed {
			e.revert(frames)
			return nil, false
		}
	}
	return cloneSteps(ent.steps), true
}

// --- snapshot (persistence) ---

// PlanCacheSnapshot is the JSON-serializable image of a plan cache, in
// LRU order (most recent first). It backs the -learn-file flag and the
// pool's SaveLearning/LoadLearning.
type PlanCacheSnapshot struct {
	Entries []PlanCacheEntrySnapshot `json:"entries"`
}

// PlanCacheEntrySnapshot is one persisted instance.
type PlanCacheEntrySnapshot struct {
	Key        string            `json:"key"` // hex sha256 instance fingerprint
	Infeasible bool              `json:"infeasible,omitempty"`
	Steps      []Step            `json:"steps,omitempty"`
	DAG        *PlanDAG          `json:"dag,omitempty"`
	Components int               `json:"components,omitempty"`
	Patterns   []PatternSnapshot `json:"patterns,omitempty"`
	Cons       []ConsSnapshot    `json:"cons,omitempty"`
	Dead       [][]uint64        `json:"dead,omitempty"`
}

// PatternSnapshot is a persisted wrong-configuration pattern (bitset
// words, little-endian unit order).
type PatternSnapshot struct {
	Relevant []uint64 `json:"relevant"`
	Value    []uint64 `json:"value"`
}

// ConsSnapshot is a persisted SAT early-termination constraint.
type ConsSnapshot struct {
	Applied   []int `json:"applied,omitempty"`
	Unapplied []int `json:"unapplied,omitempty"`
}

// Snapshot captures the cache contents for persistence. Counters are not
// part of the snapshot: a restored cache starts cold on stats.
func (c *PlanCache) Snapshot() *PlanCacheSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := &PlanCacheSnapshot{}
	for el := c.lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		es := PlanCacheEntrySnapshot{
			Key:        hex.EncodeToString([]byte(ent.key)),
			Infeasible: ent.infeasible,
			Steps:      ent.steps,
			DAG:        ent.dag,
			Components: ent.components,
		}
		for _, p := range ent.learn.patterns {
			es.Patterns = append(es.Patterns, PatternSnapshot{
				Relevant: p.relevant, Value: p.value,
			})
		}
		for _, cc := range ent.learn.cons {
			es.Cons = append(es.Cons, ConsSnapshot{Applied: cc.applied, Unapplied: cc.unapplied})
		}
		for _, d := range ent.learn.dead {
			es.Dead = append(es.Dead, d)
		}
		snap.Entries = append(snap.Entries, es)
	}
	return snap
}

// Restore loads a snapshot into the cache, replacing nothing that is
// already present (existing entries win — they are fresher). Entries are
// inserted oldest-first so the snapshot's LRU order is preserved.
func (c *PlanCache) Restore(snap *PlanCacheSnapshot) error {
	if snap == nil {
		return nil
	}
	for i := len(snap.Entries) - 1; i >= 0; i-- {
		es := &snap.Entries[i]
		key, err := hex.DecodeString(es.Key)
		if err != nil {
			return fmt.Errorf("core: plan cache snapshot entry %d: bad key: %v", i, err)
		}
		if len(key) != sha256.Size {
			return fmt.Errorf("core: plan cache snapshot entry %d: key is %d bytes, want %d", i, len(key), sha256.Size)
		}
		if !es.Infeasible && len(es.Steps) == 0 && len(es.Patterns) == 0 &&
			len(es.Cons) == 0 && len(es.Dead) == 0 {
			continue // nothing usable
		}
		ent := &cacheEntry{
			key:        string(key),
			infeasible: es.Infeasible,
			steps:      es.Steps,
			dag:        es.DAG,
			components: es.Components,
		}
		if !ent.infeasible && ent.dag == nil {
			// A snapshot missing its DAG still replays; executing the
			// steps in sequence is always a valid (if conservative) order.
			ent.dag = chainDAG(ent.steps)
		}
		for _, p := range es.Patterns {
			ent.learn.patterns = append(ent.learn.patterns, pattern{
				relevant: p.Relevant, value: p.Value,
			})
		}
		for _, cc := range es.Cons {
			ent.learn.cons = append(ent.learn.cons, cexCons{applied: cc.Applied, unapplied: cc.Unapplied})
		}
		for _, d := range es.Dead {
			ent.learn.dead = append(ent.learn.dead, d)
		}
		c.mu.Lock()
		if _, exists := c.entries[ent.key]; !exists {
			c.entries[ent.key] = c.lru.PushFront(ent)
			for c.lru.Len() > c.max {
				tail := c.lru.Back()
				c.lru.Remove(tail)
				delete(c.entries, tail.Value.(*cacheEntry).key)
			}
		}
		c.mu.Unlock()
	}
	return nil
}
