package core

// Dependency-DAG plans. A synthesized plan is a totally ordered careful
// sequence, but most of that order is incidental: the ordering analysis
// of deps.go proves which updates genuinely depend on which. This file
// lifts those facts into an explicit PlanDAG — one node per update step,
// edges to the predecessors that must commit first — which a decentralized
// runtime (internal/sim's asynchronous executor, or a real controller
// shipping per-switch dependency lists à la ez-Segway) can execute
// without a central wait-blocked schedule.
//
// Edge construction and why it is sound. Specifications are per-class
// LTL properties over single-packet traces, so a class's verdict after
// any prefix of updates depends only on the subsequence of steps that
// affect that class (exactly what depAnalysis.affected computes) — and on
// their relative order. The DAG therefore chains, for every class, each
// step affecting it to the previous step affecting it, and additionally
// chains steps on the same switch (whose table snapshots — and the
// merge→finalize prerequisite of 2-simple units — are only coherent in
// plan order). Every linearization of this DAG applies each class's
// affecting steps, and each switch's steps, in exactly the sequential
// plan's order; per class, the structure state sequence is then identical
// to the sequential replay, so every intermediate verdict the search
// verified carries over unchanged. That is the trace-equivalence
// guarantee the metamorphic ack-schedule test (dag_test.go) exercises:
// random linearizations must reproduce the sequential per-state labels.
//
// The edge set also subsumes the wait barriers: a retained wait fences
// pairs of updates that share an affected class (waitNeeded tests only
// such pairs), and any such pair is already chained. Waits thus become
// edges, not steps — but a wait carries drain semantics (in-flight
// packets under the old rules must leave the network), so edges whose
// predecessor's old traffic could still reach the successor's switch are
// marked as drain edges and executors must additionally wait for the
// predecessor's pre-update packets to drain, not just for its ack.

// PlanDAG is the dependency-DAG form of a plan: one node per update step
// of Plan.Updates(), in order.
type PlanDAG struct {
	// Preds[i] lists the update-step indexes that must commit before step
	// i may be installed, ascending. Edges always point from a lower to a
	// higher index, so the DAG is acyclic by construction and index order
	// is one valid linearization (the sequential plan itself).
	Preds [][]int `json:"preds"`
	// Drain[i] is the subset of Preds[i] whose in-flight pre-update
	// packets could still reach step i's switch: before committing step i
	// the executor must wait not only for these predecessors' acks but
	// for their old traffic to drain — the DAG form of a wait barrier.
	Drain [][]int `json:"drain,omitempty"`
	// Depth is the longest dependency chain (in nodes); Width the largest
	// antichain level — the number of updates an ideal decentralized
	// executor can have in flight at once. Both are 0 for an empty plan.
	Depth int `json:"depth"`
	Width int `json:"width"`
}

// NumNodes returns the number of update steps the DAG covers.
func (d *PlanDAG) NumNodes() int { return len(d.Preds) }

// DrainEdges returns the total number of drain-marked edges.
func (d *PlanDAG) DrainEdges() int {
	n := 0
	for _, ds := range d.Drain {
		n += len(ds)
	}
	return n
}

// Levels partitions the nodes into dependency levels: level k holds the
// nodes whose longest predecessor chain has k nodes. len(Levels()) ==
// Depth, and the largest level has Width nodes.
func (d *PlanDAG) Levels() [][]int {
	level := make([]int, len(d.Preds))
	depth := 0
	for j, ps := range d.Preds {
		l := 0
		for _, i := range ps {
			if level[i]+1 > l {
				l = level[i] + 1
			}
		}
		level[j] = l
		if l+1 > depth {
			depth = l + 1
		}
	}
	out := make([][]int, depth)
	for j, l := range level {
		out[l] = append(out[l], j)
	}
	return out
}

// The unitless latency model of the completion-time tie-breaker
// (Options.MinimizeCompletionTime): committing an update costs
// dagInstallCost, observing a predecessor's ack dagAckCost, and a drain
// edge additionally waits dagDrainCost for the predecessor's old traffic
// to leave the network. The ratios mirror the simulator's defaults (10ms
// installs, sub-ms acks, multi-hop drains); only the relative order of
// candidate plans matters, not the absolute numbers.
const (
	dagInstallCost = 10
	dagAckCost     = 1
	dagDrainCost   = 50
)

// completionEstimate is the critical-path completion time of the DAG
// under the unitless latency model: the earliest time a decentralized
// executor could have every update committed.
func (d *PlanDAG) completionEstimate() int64 {
	finish := make([]int64, len(d.Preds))
	var worst int64
	for j := range d.Preds {
		var start int64
		for _, i := range d.Preds[j] {
			if f := finish[i] + dagAckCost; f > start {
				start = f
			}
		}
		for _, i := range d.Drain[j] {
			if f := finish[i] + dagDrainCost; f > start {
				start = f
			}
		}
		finish[j] = start + dagInstallCost
		if finish[j] > worst {
			worst = finish[j]
		}
	}
	return worst
}

// buildDAG derives the dependency DAG for a (possibly composed) step
// sequence. Wait steps are skipped — their ordering content is already
// carried by the class/switch chains, and their drain content by the
// drain marks. For decomposed plans the construction yields the disjoint
// union of the component sub-DAGs automatically: components partition
// both the affected classes and the touched switches, so no chain can
// cross a component boundary.
func (e *engine) buildDAG(steps []Step) *PlanDAG {
	d := e.newDepAnalysis()
	lastClass := make([]int, len(e.sc.Specs))
	for i := range lastClass {
		lastClass[i] = -1
	}
	lastSwitch := map[int]int{}
	dag := &PlanDAG{}
	var entries []int // advance() window index per node, -1 when unrecorded
	j := 0
	for _, st := range steps {
		if st.Wait {
			continue
		}
		affected := d.affected(st.Switch, st.Table)
		var preds []int
		addPred := func(i int) {
			for _, p := range preds {
				if p == i {
					return
				}
			}
			preds = append(preds, i)
		}
		if li, ok := lastSwitch[st.Switch]; ok {
			addPred(li)
		}
		for ci, a := range affected {
			if a && lastClass[ci] >= 0 {
				addPred(lastClass[ci])
			}
		}
		sortInts(preds)
		var drain []int
		for _, i := range preds {
			if entries[i] < 0 {
				continue // predecessor needed no fencing (dead or class-empty)
			}
			if d.drainNeeded(&d.pending[entries[i]], st.Switch, affected) {
				drain = append(drain, i)
			}
		}
		entries = append(entries, d.advance(st.Switch, st.Table, affected))
		lastSwitch[st.Switch] = j
		for ci, a := range affected {
			if a {
				lastClass[ci] = j
			}
		}
		dag.Preds = append(dag.Preds, preds)
		dag.Drain = append(dag.Drain, drain)
		j++
	}
	levels := dag.Levels()
	dag.Depth = len(levels)
	for _, l := range levels {
		if len(l) > dag.Width {
			dag.Width = len(l)
		}
	}
	return dag
}

// sortInts is insertion sort for the short predecessor lists (typically
// one or two entries; allocation-free, unlike sort.Ints' interface path).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
