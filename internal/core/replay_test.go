package core

import (
	"math/rand"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/ltl"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// replayCheckTraces executes a plan on the operational machine under
// random interleavings with live traffic and evaluates every packet's
// observed trace against its class formula — the strongest end-to-end
// soundness check available: it exercises the real concurrency the
// careful-sequence theory (Lemmas 2 and 7) and the wait-removal heuristic
// claim to handle.
func replayCheckTraces(t *testing.T, sc *config.Scenario, plan *Plan, seeds int) {
	t.Helper()
	for seed := int64(0); seed < int64(seeds); seed++ {
		n := network.NewNet(sc.Topo, sc.Init.Tables(), plan.Commands())
		r := rand.New(rand.NewSource(seed))
		type sent struct {
			id   int
			spec config.ClassSpec
		}
		var packets []sent
		n.RunRandom(r, func(step int) bool {
			if step%2 == 0 && len(packets) < 20 {
				cs := sc.Specs[len(packets)%len(sc.Specs)]
				id := n.Inject(cs.Class.SrcHost, cs.Class.Packet())
				packets = append(packets, sent{id: id, spec: cs})
			}
			return len(packets) < 20
		})
		n.Drain()
		for _, p := range packets {
			obs := n.TraceOf(p.id)
			if len(obs) == 0 {
				t.Fatalf("seed %d: packet %d produced no observations", seed, p.id)
			}
			env := make([]ltl.Env, len(obs))
			for i, o := range obs {
				o := o
				env[i] = ltl.EnvFunc(func(pr ltl.Prop) bool {
					switch pr.Field {
					case ltl.FieldSwitch:
						return o.Sw == pr.Value
					case ltl.FieldPort:
						return int(o.Pt) == pr.Value
					default:
						if f, ok := network.FieldByName(pr.Field); ok {
							return o.Pkt.Field(f) == pr.Value
						}
						return false
					}
				})
			}
			if !p.spec.Formula.EvalTrace(env) {
				t.Fatalf("seed %d: packet %d trace violates %v: %v",
					seed, p.id, p.spec.Formula, obs)
			}
		}
	}
}

// TestReplayTracesWaypoint: the red-to-blue waypoint plan, executed with
// its (possibly wait-free) synthesized schedule, must produce only traces
// satisfying reachability AND the A3-or-A4 middlebox property.
func TestReplayTracesWaypoint(t *testing.T) {
	sc := config.Fig1RedBlueWaypoint()
	plan, err := Synthesize(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayCheckTraces(t, sc, plan, 25)
}

// TestReplayTracesPaperOrderWithWait: the paper's own sequence (A2, A4,
// T1, wait, C1) must also be trace-correct when executed, including the
// load-bearing wait.
func TestReplayTracesPaperOrderWithWait(t *testing.T) {
	sc := config.Fig1RedBlueWaypoint()
	_, n := config.Fig1Topology()
	var steps []Step
	for i, sw := range []int{n.A2, n.A4, n.T1} {
		if i > 0 {
			steps = append(steps, Step{Wait: true})
		}
		steps = append(steps, Step{Switch: sw, Table: sc.Final.Table(sw)})
	}
	steps = append(steps, Step{Wait: true}, Step{Switch: n.C1, Table: sc.Final.Table(n.C1)})
	plan := &Plan{Steps: steps}
	replayCheckTraces(t, sc, plan, 25)
}

// TestReplayTracesRuleGranularity: rule-granularity plans for the
// infeasible gadget must deliver both opposing flows throughout.
func TestReplayTracesRuleGranularity(t *testing.T) {
	topo := topology.SmallWorld(40, 4, 0.3, 21)
	sc, err := config.Infeasible(topo, config.InfeasibleOptions{Gadgets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Synthesize(sc, Options{RuleGranularity: true})
	if err != nil {
		t.Fatal(err)
	}
	replayCheckTraces(t, sc, plan, 15)
}

// TestReplayTracesTwoSimple: 2-simple plans on the same gadget are also
// trace-correct under execution.
func TestReplayTracesTwoSimple(t *testing.T) {
	topo := topology.SmallWorld(40, 4, 0.3, 21)
	sc, err := config.Infeasible(topo, config.InfeasibleOptions{Gadgets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Synthesize(sc, Options{TwoSimple: true})
	if err != nil {
		t.Fatal(err)
	}
	replayCheckTraces(t, sc, plan, 15)
}

// TestReplayTracesServiceChain: service-chaining diamonds replayed on the
// operational model keep their ordered-waypoint guarantee.
func TestReplayTracesServiceChain(t *testing.T) {
	topo := topology.SmallWorld(120, 4, 0.3, 15)
	sc, err := config.Diamonds(topo, config.DiamondOptions{
		Pairs: 2, Property: config.ServiceChaining, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Synthesize(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayCheckTraces(t, sc, plan, 15)
}
