package core

import (
	"sync"
	"sync/atomic"
)

// sharedState is the cross-worker learning state of the search. The three
// pruning structures of Section 4.2 are global by nature — a wrong
// configuration is wrong no matter which worker discovered it — so they
// are shared: a counterexample learned in one subtree prunes every other
// worker's subtree.
//
//   - The wrong-configuration pattern store (4.2.A) is read on every DFS
//     node, so readers load an immutable snapshot through an atomic
//     pointer and never lock; the rare writers copy-append under mu.
//   - The early-termination SAT solver (4.2.B) is called only when a
//     counterexample is learned, so a plain mutex suffices.
//   - dead is the mutex-striped configuration set shared by the workers
//     (nil for a sequential search, which only needs its private visited
//     set). In deterministic mode it holds configurations *proven* dead —
//     wrong, or exhausted without a plan — which can be pruned anywhere
//     without changing which plan each subtree yields. In first-plan-wins
//     mode it doubles as a claim-on-entry visited set: whoever inserts a
//     configuration first explores it, everyone else prunes it.
type sharedState struct {
	wrong atomic.Pointer[[]pattern]

	dead         *sharedBitsetSet
	claimOnEntry bool

	mu sync.Mutex // guards et, cons, and writes to wrong
	et *earlyTerm

	// cons records every counterexample ordering constraint fed to (or
	// replayed into) the solver, in persistable form: the plan cache
	// harvests it so a repeat of the identical instance can replay the
	// constraints instead of rediscovering them (cache.go).
	cons []cexCons
}

func newSharedState(parallel, firstWins bool) *sharedState {
	s := &sharedState{et: newEarlyTerm()}
	empty := []pattern{}
	s.wrong.Store(&empty)
	if parallel {
		s.dead = newSharedBitsetSet()
		s.claimOnEntry = firstWins
	}
	return s
}

// patterns returns the current wrong-pattern snapshot (lock-free).
func (s *sharedState) patterns() []pattern { return *s.wrong.Load() }

// addPattern appends a learned pattern; callers must hold s.mu. Spare
// capacity is reused: the new element is written one past the published
// length (elements are write-once, so concurrent readers of the shorter
// snapshot are unaffected) and the longer slice is published atomically,
// keeping accumulation amortized O(1) instead of copying every pattern
// on each learn.
func (s *sharedState) addPattern(p pattern) {
	old := *s.wrong.Load()
	var ws []pattern
	if cap(old) > len(old) {
		ws = append(old, p)
	} else {
		ws = make([]pattern, len(old), 2*len(old)+4)
		copy(ws, old)
		ws = append(ws, p)
	}
	s.wrong.Store(&ws)
}

// abort is a one-shot cooperative cancellation flag shared by the
// coordinator, the task generator, and every worker. The atomic bool is
// polled on the hot path; the channel unblocks the generator's task sends.
type abort struct {
	flag atomic.Bool
	ch   chan struct{}
	once sync.Once
}

func newAbort() *abort { return &abort{ch: make(chan struct{})} }

func (a *abort) set() {
	a.once.Do(func() {
		a.flag.Store(true)
		close(a.ch)
	})
}

func (a *abort) isSet() bool { return a.flag.Load() }
