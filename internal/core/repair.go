package core

// Failure-during-update repair (ROADMAP item 5a). A plan executing in
// the network can stop halfway — a switch dies, installs time out, or a
// superseding target arrives — leaving the network at an intermediate
// configuration the session can reconstruct exactly: the pre-plan
// configuration advanced by the committed steps. Repair resynthesizes
// from that configuration instead of aborting the session. Because every
// dependency-closed committed set is trace-equivalent to a prefix of the
// sequential plan (the plan-DAG guarantee, dag.go), the crash-state
// configuration is loop-free and spec-satisfying for every class, so it
// is a valid synthesis start point; the warm per-class structures are
// rebound to it diff-proportionally and the ordinary (decomposed,
// interference-partitioned) search runs from there.
//
// Graceful degradation. A crash state can be genuinely harder than the
// original endpoints — e.g. a superseding target may strand a component
// with no careful ordering. In repair mode a component that reports
// ErrNoOrdering walks a fallback ladder instead of failing the run:
//
//	rung 1 — escalate granularity: re-solve just that component as a
//	         2-simple search (each switch may pass through the merged
//	         union of both rule generations), which is careful and
//	         composes with the other components' plans as usual;
//	rung 2 — scoped two-phase: version-tag only the stuck component
//	         (twophase.BuildScoped) — consistent by construction, ends at
//	         exactly the target tables, and confined to the component's
//	         switches plus its classes' ingress switches.
//
// Plans containing a two-phase segment are not careful sequences, so
// they skip wait removal and carry a sequential chain DAG (chainDAG)
// rather than the dependency DAG — correctness over completion time for
// the rare hard case. The ladder means a feasible repair never surfaces
// a bare ErrNoOrdering: only timeouts, cancellation, and genuine
// endpoint violations remain terminal.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/network"
	"netupdate/internal/obs"
	"netupdate/internal/twophase"
)

// Repair resynthesizes from a partially-committed plan execution: the
// network is at the last successful plan's initial configuration advanced
// by exactly the steps in committed (indexes into Plan.Updates(), which
// must form a dependency-closed set — every committed step's DAG
// predecessors committed too). The session's warm structures are rebound
// to that crash-state configuration and a fresh synthesis runs from it to
// newTarget (nil means the stranded original target), with the fallback
// ladder armed so a stuck component degrades to 2-simple granularity and
// then to scoped two-phase version-tagging instead of failing.
//
// On success the session's current configuration advances to the target,
// exactly as for Synthesize; on failure it stays at the crash state —
// which is where the network actually is.
func (s *Session) Repair(committed []int, newTarget *config.Config) (*Plan, error) {
	return s.RepairContext(context.Background(), committed, newTarget)
}

// RepairContext is Repair with a request context bounding the search.
func (s *Session) RepairContext(ctx context.Context, committed []int, newTarget *config.Config) (*Plan, error) {
	if s.lastPlan == nil {
		return nil, ErrNoPlan
	}
	ups := s.lastPlan.Updates()
	seen := make([]bool, len(ups))
	for _, j := range committed {
		if j < 0 || j >= len(ups) || seen[j] {
			return nil, fmt.Errorf("%w: step %d", ErrBadCommit, j)
		}
		seen[j] = true
	}
	if d := s.lastPlan.DAG; d != nil {
		for _, j := range committed {
			for _, p := range d.Preds[j] {
				if !seen[p] {
					return nil, fmt.Errorf("%w: step %d committed before its predecessor %d", ErrBadCommit, j, p)
				}
			}
		}
	}
	crash := s.lastPlan.ConfigAfter(s.lastInit, committed)
	target := s.lastFinal
	if newTarget != nil {
		target = newTarget
	}
	tr := s.trace
	if tr != nil {
		tr.Reset()
		tr.SetRequestID(obs.RequestIDFrom(ctx))
	}
	root := tr.Begin("repair", 0)
	// Move the session to the crash state: rebind every warm structure
	// (diff-proportionally — only switches that differ between the current
	// binding and the crash state are examined). The crash state is
	// trace-equivalent to a verified plan prefix, so it is loop-free and
	// spec-satisfying for every class and the rebind cannot fail on a
	// healthy session.
	crSpan := tr.Begin("rebind-to-crash", root)
	if err := s.rebindTo(crash); err != nil {
		return nil, err
	}
	tr.End(crSpan)
	s.cur = crash
	s.repairing = true
	s.traceOuter = root
	plan, err := s.synthesize(ctx, "repair", target)
	s.traceOuter = 0
	s.repairing = false
	if plan != nil {
		plan.Stats.RepairCommitted = len(committed)
		s.lastStats.RepairCommitted = len(committed)
		if tr != nil {
			// Re-snapshot under the closed repair root so the exported tree
			// includes the crash rebind and the full nested synthesis.
			tr.End(root)
			plan.Trace = tr.Snapshot()
		}
	}
	return plan, err
}

// rebindTo rebinds every warm per-class structure (and checker) from the
// session's current configuration to cfg and leaves the session there.
func (s *Session) rebindTo(cfg *config.Config) error {
	cands := config.Diff(s.cur, cfg)
	s.diffBuf = ruleDiffs(s.diffBuf, s.cur, cfg, cands)
	for i := range s.ks {
		var err error
		s.swBuf, err = s.rebindClass(i, s.ks[i], s.checkers[i], cfg, cands, s.diffBuf, s.swBuf)
		if err != nil {
			return fmt.Errorf("core: repair rebind: %v", err)
		}
	}
	s.cur = cfg
	return nil
}

// repairFallback runs the graceful-degradation ladder for one stuck
// component: the session's current configuration moved to the target
// tables on the component's switches, checked against the component's
// classes. It returns the replacement steps and whether they are a
// two-phase (version-tagged, non-careful) segment.
func (s *Session) repairFallback(ctx context.Context, name string, specs []config.ClassSpec, switches []int, final *config.Config) ([]Step, bool, error) {
	overlay := s.cur.Clone()
	for _, sw := range switches {
		overlay.SetTable(sw, final.Table(sw).Clone())
	}
	// Rung 1: escalate to 2-simple granularity (skipped when the session
	// already searches an escalated granularity). The sub-search gets its
	// own ephemeral structures; the session's warm state is untouched.
	if !s.opts.TwoSimple && !s.opts.RuleGranularity {
		opts := s.opts
		opts.TwoSimple = true
		opts.NoDecomposition = true
		opts.MinimizeCompletionTime = false
		opts.Trace = false // the rung's ephemeral session records nothing of its own
		sc := &config.Scenario{Name: name, Topo: s.topo, Init: s.cur, Final: overlay, Specs: specs}
		rung := s.trace.Begin("fallback-2simple", s.traceSearch)
		plan, err := synthesizeScoped(ctx, sc, opts)
		s.trace.End(rung)
		if err == nil {
			return plan.Steps, false, nil
		}
		if !errors.Is(err, ErrNoOrdering) {
			return nil, false, err
		}
	}
	// Rung 2: scoped two-phase version-tagging — consistent by
	// construction and always constructible.
	rung := s.trace.Begin("fallback-twophase", s.traceSearch)
	tp := twophase.BuildScoped(s.topo, s.cur, overlay, specs)
	s.trace.End(rung)
	return commandSteps(tp.Commands), true, nil
}

// synthesizeScoped is the context-aware one-shot synthesis the fallback
// ladder uses for an escalated component sub-search.
func synthesizeScoped(ctx context.Context, sc *config.Scenario, opts Options) (*Plan, error) {
	start := time.Now()
	es, err := NewSession(sc.Topo, sc.Init, sc.Specs, opts)
	if err != nil {
		return nil, err
	}
	es.ephemeral = true
	plan, err := es.synthesize(ctx, sc.Name, sc.Final)
	if plan != nil {
		plan.Stats.Elapsed = time.Since(start)
	}
	return plan, err
}

// commandSteps lowers a command schedule (two-phase output) to plan
// steps: table installs become update steps and each incr/flush pair
// becomes a wait barrier. Plan.Commands() round-trips it.
func commandSteps(cmds []network.Command) []Step {
	var out []Step
	for _, c := range cmds {
		switch c.Kind {
		case network.CmdUpdate:
			out = append(out, Step{Switch: c.Switch, Table: c.Table})
		case network.CmdFlush:
			out = append(out, Step{Wait: true})
		}
	}
	return out
}

// chainDAG is the degenerate dependency DAG of a plan that must execute
// sequentially (a plan containing two-phase segments): each update
// depends on the previous one, with the edge drain-marked when a wait
// barrier separates them.
func chainDAG(steps []Step) *PlanDAG {
	dag := &PlanDAG{}
	j := 0
	waitSince := false
	for _, st := range steps {
		if st.Wait {
			waitSince = true
			continue
		}
		var preds, drain []int
		if j > 0 {
			preds = []int{j - 1}
			if waitSince {
				drain = []int{j - 1}
			}
		}
		dag.Preds = append(dag.Preds, preds)
		dag.Drain = append(dag.Drain, drain)
		waitSince = false
		j++
	}
	dag.Depth = j
	if j > 0 {
		dag.Width = 1
	}
	return dag
}
