package core

import (
	"netupdate/internal/config"
	"netupdate/internal/network"
)

// removeWaits implements the reachability-based wait-removal heuristic of
// Section 4.2.C. The synthesized sequence is careful (a wait between
// every pair of updates); a wait before updating switch s is unnecessary
// if no packet that was forwarded by an earlier-updated switch s0 under
// s0's pre-update rules can still reach s. Two refinements keep the
// heuristic from fencing harmless updates, both justified by the
// per-class trace argument of Lemma 7:
//
//   - class-awareness: an update taints (or endangers) only the classes
//     whose forwarding behavior it actually changes — adding a rule for
//     class B cannot create a mixed trace for class A;
//   - liveness: a switch that was unreachable for a class throughout the
//     window since the last retained wait forwarded none of its packets,
//     so its old rules need no fence.
//
// The ordering analysis itself — affected classes, window tracking, and
// the reachability hazard tests — lives in deps.go (depAnalysis), shared
// with the plan-DAG builder; this pass is the wait-elision loop over it.
func (e *engine) removeWaits(steps []Step) []Step {
	d := e.newDepAnalysis()
	out := make([]Step, 0, len(steps))
	for _, st := range steps {
		if st.Wait {
			continue // re-derived below
		}
		affected := d.affected(st.Switch, st.Table)
		if d.barrierNeeded(st.Switch, affected) {
			out = append(out, Step{Wait: true})
			d.barrier()
		}
		d.advance(st.Switch, st.Table, affected)
		out = append(out, st)
	}
	return out
}

// waitNeeded reports whether updating s without a barrier could let an
// in-flight packet (forwarded under the old rules of some switch in
// pending) observe both an old and the new configuration at s. Classes
// unaffected by s's change are ignored, as are pending switches whose
// change did not affect the class.
func (e *engine) waitNeeded(cur *config.Config, pending []oldEntry, s int, affected []bool) bool {
	for ci, cs := range e.sc.Specs {
		if !affected[ci] {
			continue
		}
		pkt := cs.Class.Packet()
		starts := e.startsBuf[:0]
		for _, p := range pending {
			if !p.affected[ci] {
				continue
			}
			starts = e.appendClassSuccessors(starts, p.tbl, p.sw, pkt)
		}
		e.startsBuf = starts[:0]
		if len(starts) == 0 {
			continue
		}
		if e.reaches(cur, pkt, starts, s) {
			return true
		}
	}
	return false
}

// affectedClasses reports, per spec class, whether replacing old with new
// changes the class's forwarding behavior. The comparison is on the sets
// of forwarding outputs of matching rules; any in-port-constrained rule
// makes the answer conservatively "changed".
func (e *engine) affectedClasses(old, new network.Table) []bool {
	out := make([]bool, len(e.sc.Specs))
	for ci, cs := range e.sc.Specs {
		pkt := cs.Class.Packet()
		out[ci] = !e.sameClassBehavior(old, new, pkt)
	}
	return out
}

func (e *engine) sameClassBehavior(a, b network.Table, pkt network.Packet) bool {
	oa, oka := classOutputs(e.actsA[:0], a, pkt)
	ob, okb := classOutputs(e.actsB[:0], b, pkt)
	e.actsA, e.actsB = oa[:0], ob[:0]
	if !oka || !okb {
		return false // in-port-sensitive rules: assume changed
	}
	if len(oa) != len(ob) {
		return false
	}
	for _, x := range oa {
		if !containsAction(ob, x) {
			return false
		}
	}
	return true
}

func containsAction(as []network.Action, a network.Action) bool {
	for _, x := range as {
		if x == a {
			return true
		}
	}
	return false
}

// classOutputs collects (into dst, deduplicated) the output ports of the
// best-priority rules matching the class packet, ignoring in-ports; ok is
// false when a matching rule is in-port-constrained (behavior then
// depends on the arrival port and cannot be summarized).
func classOutputs(dst []network.Action, t network.Table, pkt network.Packet) ([]network.Action, bool) {
	best := -1 << 31
	found := false
	for _, r := range t {
		if !headerMatches(r.Match, pkt) {
			continue
		}
		if r.Match.InPort != 0 {
			return dst, false
		}
		if r.Priority > best {
			best = r.Priority
		}
		found = true
	}
	if !found {
		return dst, true // drop in both tables compares equal
	}
	for _, r := range t {
		if r.Priority == best && headerMatches(r.Match, pkt) {
			for _, a := range r.Actions {
				if !containsAction(dst, a) {
					dst = append(dst, a)
				}
			}
			// Deterministic tie-break uses the first matching rule only.
			break
		}
	}
	return dst, true
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// bfsReset starts a fresh generation of the wait-removal BFS scratch
// (epoch-stamped visited marks plus a reusable queue), so the per-step
// reachability queries of removeWaits allocate nothing in steady state.
func (e *engine) bfsReset() {
	n := e.sc.Topo.NumSwitches()
	if len(e.bfsSeen) < n {
		e.bfsSeen = make([]int32, n)
		e.bfsEpoch = 0
	}
	e.bfsEpoch++
	if e.bfsEpoch == 1<<31-1 {
		clear(e.bfsSeen)
		e.bfsEpoch = 1
	}
}

// liveSinceWait reports whether packets of some class could have reached
// switch sw at any point since the last retained wait. The reachability
// query runs from each class's ingress over the union of the current
// configuration's edges and the pre-update edges of every switch updated
// in the window — a superset of every configuration the window contained.
func (e *engine) liveSinceWait(cur *config.Config, pending []oldEntry, sw int) bool {
	for _, cs := range e.sc.Specs {
		pkt := cs.Class.Packet()
		src, ok := e.sc.Topo.HostByID(cs.Class.SrcHost)
		if !ok {
			continue
		}
		if src.Switch == sw {
			return true // ingress switches always see fresh packets
		}
		e.bfsReset()
		queue := append(e.bfsQueue[:0], src.Switch)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if v == sw {
				e.bfsQueue = queue[:0]
				return true
			}
			if e.bfsSeen[v] == e.bfsEpoch {
				continue
			}
			e.bfsSeen[v] = e.bfsEpoch
			queue = e.appendClassSuccessors(queue, cur.Table(v), v, pkt)
			// Union in every pre-update table recorded for v: at rule
			// granularity a switch can appear in pending more than once,
			// and each window table may have forwarded packets.
			for _, p := range pending {
				if p.sw == v {
					queue = e.appendClassSuccessors(queue, p.tbl, v, pkt)
				}
			}
		}
		e.bfsQueue = queue[:0]
	}
	return false
}

// reaches runs a reachability search over the class's switch-level
// forwarding graph under configuration cur, from the given start
// switches, looking for target.
func (e *engine) reaches(cur *config.Config, pkt network.Packet, starts []int, target int) bool {
	e.bfsReset()
	queue := append(e.bfsQueue[:0], starts...)
	found := false
	for len(queue) > 0 {
		sw := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if sw == target {
			found = true
			break
		}
		if e.bfsSeen[sw] == e.bfsEpoch {
			continue
		}
		e.bfsSeen[sw] = e.bfsEpoch
		queue = e.appendClassSuccessors(queue, cur.Table(sw), sw, pkt)
	}
	e.bfsQueue = queue[:0]
	return found
}

// appendClassSuccessors over-approximates the switches a class packet can
// be forwarded to by the given table on switch sw (in-port constraints
// are ignored, which only keeps more waits — a safe direction), appending
// them to dst.
func (e *engine) appendClassSuccessors(dst []int, tbl network.Table, sw int, pkt network.Packet) []int {
	for _, r := range tbl {
		if !headerMatches(r.Match, pkt) {
			continue
		}
		for _, a := range r.Actions {
			if a.Kind != network.ActForward {
				continue
			}
			if l, ok := e.sc.Topo.LinkAt(sw, a.Port); ok {
				dst = append(dst, l.Peer)
			}
		}
	}
	return dst
}

// headerMatches tests a pattern against a packet ignoring the in-port.
func headerMatches(pat network.Pattern, pkt network.Packet) bool {
	if pat.Src != network.Wildcard && pat.Src != pkt.Src {
		return false
	}
	if pat.Dst != network.Wildcard && pat.Dst != pkt.Dst {
		return false
	}
	if pat.Typ != network.Wildcard && pat.Typ != pkt.Typ {
		return false
	}
	return true
}
