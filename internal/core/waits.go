package core

import (
	"netupdate/internal/config"
	"netupdate/internal/network"
)

// removeWaits implements the reachability-based wait-removal heuristic of
// Section 4.2.C. The synthesized sequence is careful (a wait between
// every pair of updates); a wait before updating switch s is unnecessary
// if no packet that was forwarded by an earlier-updated switch s0 under
// s0's pre-update rules can still reach s. Two refinements keep the
// heuristic from fencing harmless updates, both justified by the
// per-class trace argument of Lemma 7:
//
//   - class-awareness: an update taints (or endangers) only the classes
//     whose forwarding behavior it actually changes — adding a rule for
//     class B cannot create a mixed trace for class A;
//   - liveness: a switch that was unreachable for a class throughout the
//     window since the last retained wait forwarded none of its packets,
//     so its old rules need no fence.
//
// oldEntry remembers a switch updated since the last retained wait, its
// pre-update table, and which classes that update affected.
type oldEntry struct {
	sw       int
	tbl      network.Table
	affected []bool // indexed like sc.Specs
}

func (e *engine) removeWaits(steps []Step) []Step {
	cur := e.sc.Init.Clone()
	var pending []oldEntry
	out := make([]Step, 0, len(steps))
	for _, st := range steps {
		if st.Wait {
			continue // re-derived below
		}
		affected := e.affectedClasses(cur.Table(st.Switch), st.Table)
		if len(pending) > 0 && e.waitNeeded(cur, pending, st.Switch, affected) {
			out = append(out, Step{Wait: true})
			pending = pending[:0]
		}
		if anyTrue(affected) && e.liveSinceWait(cur, pending, st.Switch) {
			pending = append(pending, oldEntry{
				sw: st.Switch, tbl: cur.Table(st.Switch), affected: affected,
			})
		}
		cur.SetTable(st.Switch, st.Table)
		out = append(out, st)
	}
	return out
}

// waitNeeded reports whether updating s without a barrier could let an
// in-flight packet (forwarded under the old rules of some switch in
// pending) observe both an old and the new configuration at s. Classes
// unaffected by s's change are ignored, as are pending switches whose
// change did not affect the class.
func (e *engine) waitNeeded(cur *config.Config, pending []oldEntry, s int, affected []bool) bool {
	for ci, cs := range e.sc.Specs {
		if !affected[ci] {
			continue
		}
		pkt := cs.Class.Packet()
		var starts []int
		for _, p := range pending {
			if !p.affected[ci] {
				continue
			}
			starts = append(starts, e.classSuccessors(p.tbl, p.sw, pkt)...)
		}
		if len(starts) == 0 {
			continue
		}
		if e.reaches(cur, pkt, starts, s) {
			return true
		}
	}
	return false
}

// affectedClasses reports, per spec class, whether replacing old with new
// changes the class's forwarding behavior. The comparison is on the sets
// of forwarding outputs of matching rules; any in-port-constrained rule
// makes the answer conservatively "changed".
func (e *engine) affectedClasses(old, new network.Table) []bool {
	out := make([]bool, len(e.sc.Specs))
	for ci, cs := range e.sc.Specs {
		pkt := cs.Class.Packet()
		out[ci] = !sameClassBehavior(old, new, pkt)
	}
	return out
}

func sameClassBehavior(a, b network.Table, pkt network.Packet) bool {
	oa, oka := classOutputs(a, pkt)
	ob, okb := classOutputs(b, pkt)
	if !oka || !okb {
		return false // in-port-sensitive rules: assume changed
	}
	if len(oa) != len(ob) {
		return false
	}
	for p := range oa {
		if !ob[p] {
			return false
		}
	}
	return true
}

// classOutputs collects the output ports of the best-priority rules
// matching the class packet, ignoring in-ports; ok is false when a
// matching rule is in-port-constrained (behavior then depends on the
// arrival port and cannot be summarized).
func classOutputs(t network.Table, pkt network.Packet) (map[network.Action]bool, bool) {
	best := -1 << 31
	found := false
	for _, r := range t {
		if !headerMatches(r.Match, pkt) {
			continue
		}
		if r.Match.InPort != 0 {
			return nil, false
		}
		if r.Priority > best {
			best = r.Priority
		}
		found = true
	}
	out := map[network.Action]bool{}
	if !found {
		return out, true // drop in both tables compares equal
	}
	for _, r := range t {
		if r.Priority == best && headerMatches(r.Match, pkt) {
			for _, a := range r.Actions {
				out[a] = true
			}
			// Deterministic tie-break uses the first matching rule only.
			break
		}
	}
	return out, true
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// liveSinceWait reports whether packets of some class could have reached
// switch sw at any point since the last retained wait. The reachability
// query runs from each class's ingress over the union of the current
// configuration's edges and the pre-update edges of every switch updated
// in the window — a superset of every configuration the window contained.
func (e *engine) liveSinceWait(cur *config.Config, pending []oldEntry, sw int) bool {
	oldTbl := map[int]network.Table{}
	for _, p := range pending {
		oldTbl[p.sw] = p.tbl
	}
	for _, cs := range e.sc.Specs {
		pkt := cs.Class.Packet()
		src, ok := e.sc.Topo.HostByID(cs.Class.SrcHost)
		if !ok {
			continue
		}
		if src.Switch == sw {
			return true // ingress switches always see fresh packets
		}
		seen := map[int]bool{}
		queue := []int{src.Switch}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if v == sw {
				return true
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			queue = append(queue, e.classSuccessors(cur.Table(v), v, pkt)...)
			if old, ok := oldTbl[v]; ok {
				queue = append(queue, e.classSuccessors(old, v, pkt)...)
			}
		}
	}
	return false
}

// reaches runs BFS over the class's switch-level forwarding graph under
// configuration cur, from the given start switches, looking for target.
func (e *engine) reaches(cur *config.Config, pkt network.Packet, starts []int, target int) bool {
	seen := map[int]bool{}
	queue := append([]int(nil), starts...)
	for len(queue) > 0 {
		sw := queue[0]
		queue = queue[1:]
		if sw == target {
			return true
		}
		if seen[sw] {
			continue
		}
		seen[sw] = true
		queue = append(queue, e.classSuccessors(cur.Table(sw), sw, pkt)...)
	}
	return false
}

// classSuccessors over-approximates the switches a class packet can be
// forwarded to by the given table on switch sw (in-port constraints are
// ignored, which only keeps more waits — a safe direction).
func (e *engine) classSuccessors(tbl network.Table, sw int, pkt network.Packet) []int {
	var out []int
	for _, r := range tbl {
		if !headerMatches(r.Match, pkt) {
			continue
		}
		for _, a := range r.Actions {
			if a.Kind != network.ActForward {
				continue
			}
			if l, ok := e.sc.Topo.LinkAt(sw, a.Port); ok {
				out = append(out, l.Peer)
			}
		}
	}
	return out
}

// headerMatches tests a pattern against a packet ignoring the in-port.
func headerMatches(pat network.Pattern, pkt network.Packet) bool {
	if pat.Src != network.Wildcard && pat.Src != pkt.Src {
		return false
	}
	if pat.Dst != network.Wildcard && pat.Dst != pkt.Dst {
		return false
	}
	if pat.Typ != network.Wildcard && pat.Typ != pkt.Typ {
		return false
	}
	return true
}
