package core

import "sync"

// The visited set V of Figure 4 used to be a map[string]bool keyed by a
// stringified bitmask, which cost two allocations per DFS node (the byte
// buffer and the string copy) on the hottest path of the search. Both the
// sequential and the parallel engines now use open hash sets over the
// bitmasks themselves: configurations hash by content and compare by word
// equality, so membership tests allocate nothing.

// hash returns a 64-bit FNV-1a hash of the bitmask words.
func (b bitset) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range b {
		h ^= w
		h *= prime64
	}
	return h
}

// equal reports word-wise equality; bitsets in one search share a length.
func (b bitset) equal(o bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// bitsetSet is a single-owner hash set of bitmasks (the per-DFS visited
// set). Buckets chain the rare hash collisions.
type bitsetSet struct {
	m map[uint64][]bitset
}

func newBitsetSet() *bitsetSet { return &bitsetSet{m: map[uint64][]bitset{}} }

// reset empties the set, keeping the map's buckets so a pooled set costs
// nothing to reuse across session runs.
func (s *bitsetSet) reset() { clear(s.m) }

// has reports membership.
func (s *bitsetSet) has(b bitset) bool {
	for _, e := range s.m[b.hash()] {
		if e.equal(b) {
			return true
		}
	}
	return false
}

// add inserts b, reporting whether it was newly added.
func (s *bitsetSet) add(b bitset) bool {
	h := b.hash()
	for _, e := range s.m[h] {
		if e.equal(b) {
			return false
		}
	}
	s.m[h] = append(s.m[h], b)
	return true
}

func (s *bitsetSet) len() int {
	n := 0
	for _, bucket := range s.m {
		n += len(bucket)
	}
	return n
}

// deadShards is the stripe count of the cross-worker set; a power of two
// well above any realistic worker count keeps contention negligible.
const deadShards = 64

// sharedBitsetSet is the mutex-striped variant shared by every search
// worker: a configuration learned dead (or, in first-plan-wins mode,
// merely claimed) by one worker prunes the same configuration in all
// others. Shards are selected by hash, so each operation locks 1/64th of
// the structure.
type sharedBitsetSet struct {
	shards [deadShards]struct {
		mu sync.Mutex
		m  map[uint64][]bitset
	}
}

func newSharedBitsetSet() *sharedBitsetSet {
	s := &sharedBitsetSet{}
	for i := range s.shards {
		s.shards[i].m = map[uint64][]bitset{}
	}
	return s
}

// has reports membership.
func (s *sharedBitsetSet) has(b bitset) bool {
	h := b.hash()
	sh := &s.shards[h%deadShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.m[h] {
		if e.equal(b) {
			return true
		}
	}
	return false
}

// add inserts b, reporting whether it was newly added (false means some
// worker got there first).
func (s *sharedBitsetSet) add(b bitset) bool {
	h := b.hash()
	sh := &s.shards[h%deadShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.m[h] {
		if e.equal(b) {
			return false
		}
	}
	sh.m[h] = append(sh.m[h], b)
	return true
}

// appendAll appends up to max total elements of the set to dst (shard
// order; no ordering guarantee). The plan cache uses it to harvest the
// proven-dead configurations of a parallel deterministic search.
func (s *sharedBitsetSet) appendAll(dst []bitset, max int) []bitset {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, bucket := range sh.m {
			for _, b := range bucket {
				if len(dst) >= max {
					sh.mu.Unlock()
					return dst
				}
				dst = append(dst, b)
			}
		}
		sh.mu.Unlock()
	}
	return dst
}
