package core

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
	"netupdate/internal/mc"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// rollingTargets materializes a small rolling-update walk so every engine
// configuration under test sees the identical stream.
func rollingTargets(t *testing.T, seed int64, pairs, steps, flips int) (*config.RollingStream, []*config.Config) {
	t.Helper()
	topo := topology.SmallWorld(50, 4, 0.3, seed)
	s, err := config.RollingUpdates(topo, config.RollingOptions{
		Pairs: pairs, Property: config.Reachability, Seed: seed,
		Steps: steps, FlipsPerStep: flips,
	})
	if err != nil {
		t.Fatal(err)
	}
	var targets []*config.Config
	for {
		tgt, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, tgt)
	}
	return s, targets
}

// TestSessionWarmColdConformance: the Nth plan from a long-lived session
// must equal the plan a fresh one-shot Synthesize produces for the same
// (previous, target) pair — across all four checker backends, sequential
// and 4-worker deterministic parallel engines. Run with -race in CI, this
// also exercises worker clones over rebound structures.
func TestSessionWarmColdConformance(t *testing.T) {
	stream, targets := rollingTargets(t, 23, 2, 4, 1)
	for _, kind := range []CheckerKind{CheckerIncremental, CheckerBatch, CheckerNuSMV, CheckerNetPlumber} {
		for _, workers := range []int{1, 4} {
			opts := Options{Checker: kind, Parallelism: workers}
			name := kind.String()
			sess, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), opts)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, workers, err)
			}
			cur := stream.Init()
			for n, tgt := range targets {
				warm, err := sess.Synthesize(tgt)
				if err != nil {
					t.Fatalf("%s/%d step %d: warm: %v", name, workers, n, err)
				}
				cold, err := Synthesize(&config.Scenario{
					Name: "cold", Topo: stream.Topo(), Init: cur, Final: tgt,
					Specs: stream.Specs(),
				}, opts)
				if err != nil {
					t.Fatalf("%s/%d step %d: cold: %v", name, workers, n, err)
				}
				if got, want := warm.String(), cold.String(); got != want {
					t.Fatalf("%s/%d step %d: warm plan diverged:\nwarm %s\ncold %s",
						name, workers, n, got, want)
				}
				if got, want := sess.Current(), tgt; got != want {
					t.Fatalf("%s/%d step %d: session did not advance", name, workers, n)
				}
				cur = tgt
			}
			if sess.Runs() != len(targets) {
				t.Fatalf("%s/%d: runs = %d, want %d", name, workers, sess.Runs(), len(targets))
			}
		}
	}
}

// TestSessionRebindLabelEquality is the metamorphic rolling-stream walk:
// after every synthesis (and hence every in-place rebind), the warm
// incremental checkers' per-state labels must equal those of checkers
// built from scratch over the session's current configuration.
func TestSessionRebindLabelEquality(t *testing.T) {
	stream, targets := rollingTargets(t, 31, 2, 5, 2)
	sess, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkLabels := func(step int) {
		t.Helper()
		for ci, cs := range sess.specs {
			warm, ok := sess.checkers[ci].(*mc.Incremental)
			if !ok {
				t.Fatalf("step %d: checker %d is %T, want *mc.Incremental", step, ci, sess.checkers[ci])
			}
			k2, err := kripke.Build(sess.topo, sess.cur, cs.Class)
			if err != nil {
				t.Fatalf("step %d class %v: %v", step, cs.Class, err)
			}
			coldC, err := mc.NewIncremental(k2, cs.Formula)
			if err != nil {
				t.Fatal(err)
			}
			cold := coldC.(*mc.Incremental)
			if warmOK, coldOK := warm.Check().OK, cold.Check().OK; warmOK != coldOK {
				t.Fatalf("step %d class %v: warm OK=%v cold OK=%v", step, cs.Class, warmOK, coldOK)
			}
			for id := 0; id < k2.NumStates(); id++ {
				wl, cl := warm.Labels(id), cold.Labels(id)
				if len(wl) != len(cl) {
					t.Fatalf("step %d class %v state %d: labels diverge\nwarm %v\ncold %v",
						step, cs.Class, id, wl, cl)
				}
				for j := range wl {
					if wl[j] != cl[j] {
						t.Fatalf("step %d class %v state %d: labels diverge\nwarm %v\ncold %v",
							step, cs.Class, id, wl, cl)
					}
				}
			}
		}
	}
	checkLabels(-1)
	for n, tgt := range targets {
		if _, err := sess.Synthesize(tgt); err != nil {
			t.Fatalf("step %d: %v", n, err)
		}
		checkLabels(n)
	}
}

// TestSessionSurvivesFailedSynthesis: a target that violates the
// specification (or admits no ordering) must leave the session at its
// previous configuration with warm state intact, and later syntheses
// must still conform to one-shot runs.
func TestSessionSurvivesFailedSynthesis(t *testing.T) {
	stream, targets := rollingTargets(t, 41, 2, 2, 1)
	sess, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A target that drops a class entirely violates its reachability spec.
	bad := stream.Init().Clone()
	config.RemoveClassRules(bad, stream.Specs()[0].Class)
	if _, err := sess.Synthesize(bad); !errors.Is(err, ErrFinalViolation) {
		t.Fatalf("err = %v, want ErrFinalViolation", err)
	}
	if sess.Current() != stream.Init() {
		t.Fatal("failed synthesis must not advance the session")
	}
	cur := stream.Init()
	for n, tgt := range targets {
		warm, err := sess.Synthesize(tgt)
		if err != nil {
			t.Fatalf("step %d: %v", n, err)
		}
		cold, err := Synthesize(&config.Scenario{
			Name: "cold", Topo: stream.Topo(), Init: cur, Final: tgt, Specs: stream.Specs(),
		}, Options{})
		if err != nil {
			t.Fatalf("step %d: cold: %v", n, err)
		}
		if warm.String() != cold.String() {
			t.Fatalf("step %d: plans diverged after a failed synthesis:\nwarm %s\ncold %s",
				n, warm.String(), cold.String())
		}
		cur = tgt
	}
}

// TestSessionInitialViolation: a session cannot be opened over an initial
// configuration that violates the specification.
func TestSessionInitialViolation(t *testing.T) {
	sc := config.Fig1RedGreen()
	_, n := config.Fig1Topology()
	sc.Specs[0].Formula = ltl.Waypoint(n.T1, n.C2, n.T3)
	if _, err := NewSession(sc.Topo, sc.Init, sc.Specs, Options{}); !errors.Is(err, ErrInitialViolation) {
		t.Fatalf("err = %v, want ErrInitialViolation", err)
	}
}

// TestSessionClassSkips: with more than one class, most units touch only
// one class's forwarding, so the empty-delta fast path must fire and be
// counted.
func TestSessionClassSkips(t *testing.T) {
	stream, targets := rollingTargets(t, 53, 2, 3, 1)
	sess, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	skips := 0
	for _, tgt := range targets {
		plan, err := sess.Synthesize(tgt)
		if err != nil {
			t.Fatal(err)
		}
		skips += plan.Stats.ClassSkips
	}
	if skips == 0 {
		t.Fatal("no class skips recorded on a two-class stream; fast path dead")
	}
}

// TestSessionLazyFinalBuildAbortsCleanly: the very first Synthesize
// failing final verification on a *later* class must drop the partially
// built verification structures entirely — the next Synthesize rebuilds
// them and serves normally (regression: partial s.fks caused an index
// panic on the rebind path).
func TestSessionLazyFinalBuildAbortsCleanly(t *testing.T) {
	stream, targets := rollingTargets(t, 67, 2, 2, 1)
	sess, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Class 0 keeps a valid route; class 1 (the later one) is dropped, so
	// the lazy final-verify build appends class 0 and then fails.
	bad := stream.Init().Clone()
	config.RemoveClassRules(bad, stream.Specs()[1].Class)
	if _, err := sess.Synthesize(bad); !errors.Is(err, ErrFinalViolation) {
		t.Fatalf("err = %v, want ErrFinalViolation", err)
	}
	cur := stream.Init()
	for n, tgt := range targets {
		warm, err := sess.Synthesize(tgt)
		if err != nil {
			t.Fatalf("step %d after aborted lazy build: %v", n, err)
		}
		cold, err := Synthesize(&config.Scenario{
			Name: "cold", Topo: stream.Topo(), Init: cur, Final: tgt, Specs: stream.Specs(),
		}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if warm.String() != cold.String() {
			t.Fatalf("step %d: plans diverged:\nwarm %s\ncold %s", n, warm.String(), cold.String())
		}
		cur = tgt
	}
}

// TestSessionSurvivesLoopingTarget: a target that forwards a class in a
// cycle must fail with ErrFinalViolation — on every submission, not just
// the first — and leave the session fully serviceable (regression: the
// rebound-but-never-relabeled verification checker accepted the looping
// target when it was resubmitted unchanged).
func TestSessionSurvivesLoopingTarget(t *testing.T) {
	stream, targets := rollingTargets(t, 71, 2, 2, 1)
	sess, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A successful run first, so the verification structures exist and
	// the looping target exercises the rebind path.
	if _, err := sess.Synthesize(targets[0]); err != nil {
		t.Fatal(err)
	}
	// Loop class 0 between two adjacent switches.
	topo := stream.Topo()
	cl := stream.Specs()[0].Class
	a := 0
	link, ok := topo.LinkAt(a, topo.Ports(a)[0])
	if !ok {
		t.Fatal("switch 0 has no link")
	}
	b := link.Peer
	pab, _ := topo.PortToward(a, b)
	pba, _ := topo.PortToward(b, a)
	bad := targets[0].Clone()
	config.RemoveClassRules(bad, cl)
	bad.AddRule(a, network.Rule{Priority: 10, Match: cl.Pattern(),
		Actions: []network.Action{network.Forward(pab)}})
	bad.AddRule(b, network.Rule{Priority: 10, Match: cl.Pattern(),
		Actions: []network.Action{network.Forward(pba)}})
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := sess.Synthesize(bad); !errors.Is(err, ErrFinalViolation) {
			t.Fatalf("attempt %d: err = %v, want ErrFinalViolation", attempt, err)
		}
	}
	// The session still serves good targets, conforming to one-shot runs.
	warm, err := sess.Synthesize(targets[1])
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Synthesize(&config.Scenario{
		Name: "cold", Topo: topo, Init: targets[0], Final: targets[1], Specs: stream.Specs(),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.String() != cold.String() {
		t.Fatalf("plans diverged after looping target:\nwarm %s\ncold %s", warm.String(), cold.String())
	}
}

// TestSynthesizeContextCanceled: an already-canceled context fails with
// ErrCanceled before touching the warm structures, and the session keeps
// serving afterwards — the canceled run must not corrupt or advance it.
func TestSynthesizeContextCanceled(t *testing.T) {
	stream, targets := rollingTargets(t, 41, 2, 2, 1)
	sess, err := NewSession(stream.Topo(), stream.Init(), stream.Specs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.SynthesizeContext(ctx, targets[0]); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if sess.Current() != stream.Init() {
		t.Fatal("canceled run advanced the session")
	}
	plan, err := sess.SynthesizeContext(context.Background(), targets[0])
	if err != nil {
		t.Fatalf("session dead after canceled run: %v", err)
	}
	cold, err := Synthesize(&config.Scenario{
		Name: "cold", Topo: stream.Topo(), Init: stream.Init(),
		Final: targets[0], Specs: stream.Specs(),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.String() != cold.String() {
		t.Fatalf("post-cancel plan diverged:\nwarm %s\ncold %s", plan, cold)
	}
}

// TestSynthesizeContextDeadline: a context deadline bounds the search
// like Options.Timeout does, reporting ErrTimeout — and a search aborted
// mid-flight leaves the session consistent for the next target.
func TestSynthesizeContextDeadline(t *testing.T) {
	topo := topology.SmallWorld(60, 4, 0.3, 31)
	sc, err := config.Infeasible(topo, config.InfeasibleOptions{Gadgets: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(sc.Topo, sc.Init, sc.Specs, Options{
		NoCexLearning:      true,
		NoEarlyTermination: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, serr := sess.SynthesizeContext(ctx, sc.Final)
	if !errors.Is(serr, ErrTimeout) && !errors.Is(serr, ErrNoOrdering) {
		t.Fatalf("err = %v, want timeout (or fast exhaustion)", serr)
	}
	// The session must still be at its initial configuration and able to
	// serve a trivial follow-up (the identity update synthesizes to an
	// empty plan).
	if sess.Current() != sc.Init {
		t.Fatal("aborted run advanced the session")
	}
	if _, err := sess.SynthesizeContext(context.Background(), sc.Init); err != nil {
		t.Fatalf("session dead after deadline abort: %v", err)
	}
}
