// Package core implements the update-synthesis algorithm of Section 4:
// ORDERUPDATE, a depth-first search over sequences of switch- or rule-
// granularity updates, driven by a pluggable model checker, with
// counterexample learning (wrong-configuration pruning), SAT-based early
// search termination, and the reachability-based wait-removal heuristic.
package core

import (
	"errors"
	"fmt"
	"time"

	"netupdate/internal/buchi"
	"netupdate/internal/hsa"
	"netupdate/internal/kripke"
	"netupdate/internal/ltl"
	"netupdate/internal/mc"
)

// CheckerKind selects the model-checking backend (Section 6 lists the
// four backends of the prototype).
type CheckerKind int

// Backend kinds.
const (
	// CheckerIncremental is the paper's incremental labeling checker.
	CheckerIncremental CheckerKind = iota
	// CheckerBatch relabels the whole structure on every call.
	CheckerBatch
	// CheckerNuSMV is the automaton-theoretic batch checker (the NuSMV
	// stand-in; see DESIGN.md).
	CheckerNuSMV
	// CheckerNetPlumber is the header-space incremental checker (the
	// NetPlumber stand-in); it produces no counterexamples.
	CheckerNetPlumber
)

func (k CheckerKind) String() string {
	switch k {
	case CheckerIncremental:
		return "incremental"
	case CheckerBatch:
		return "batch"
	case CheckerNuSMV:
		return "nusmv-like"
	case CheckerNetPlumber:
		return "netplumber-like"
	}
	return fmt.Sprintf("checker(%d)", int(k))
}

func (k CheckerKind) factory() mc.Factory {
	switch k {
	case CheckerBatch:
		return mc.NewBatch
	case CheckerNuSMV:
		return buchi.New
	case CheckerNetPlumber:
		return hsa.New
	default:
		return mc.NewIncremental
	}
}

// warmFactory is the session construction path: the labeling backends
// draw their closure and intern table from the session's mc.Warmth cache
// (shared across classes, runs, and the final-verification checkers);
// the automaton and header-space backends have no structure-independent
// caches and ignore it.
func (k CheckerKind) warmFactory() mc.WarmFactory {
	switch k {
	case CheckerBatch:
		return mc.NewBatchWarm
	case CheckerNuSMV:
		return func(kk *kripke.K, spec *ltl.Formula, _ *mc.Warmth) (mc.Checker, error) {
			return buchi.New(kk, spec)
		}
	case CheckerNetPlumber:
		return func(kk *kripke.K, spec *ltl.Formula, _ *mc.Warmth) (mc.Checker, error) {
			return hsa.New(kk, spec)
		}
	default:
		return mc.NewIncrementalWarm
	}
}

// Options configures synthesis. The zero value is the paper's default
// configuration — incremental checker, switch granularity, counterexample
// learning, early termination, and wait removal all enabled — run on the
// parallel engine with one worker per CPU.
type Options struct {
	// Checker selects the model-checking backend.
	Checker CheckerKind
	// Parallelism is the number of search workers. Zero uses GOMAXPROCS;
	// one forces the sequential engine. Searches with fewer than a
	// handful of update units always run sequentially regardless. See
	// parallel.go for the fan-out architecture.
	Parallelism int
	// FirstPlanWins lets the parallel search commit the first plan any
	// worker finds instead of the plan the sequential search would have
	// found (the lowest heuristic-order branch). Faster on searches with
	// many valid orderings, but the chosen plan becomes
	// schedule-dependent; leave unset where reproducibility matters.
	FirstPlanWins bool
	// RuleGranularity updates individual rules instead of whole switch
	// tables (Section 3.1, Figure 8i).
	RuleGranularity bool
	// TwoSimple searches 2-simple sequences (the paper's k-simple
	// generalization, Section 4.1, for k = 2): each switch may be updated
	// twice — first to the merged union of both rule generations, then to
	// the final table. This solves many scenarios that are impossible for
	// plain (1-simple) switch-granularity orderings, at the cost of
	// transient table growth on the merged switches. Ignored when
	// RuleGranularity is set.
	TwoSimple bool
	// NoDecomposition disables interference-partitioned search (see
	// decompose.go): the diff is always solved as one joint ORDERUPDATE
	// search, as in the paper. By default the engine splits the update
	// units into independent subproblems — connected components of the
	// unit-interference graph, where two units interfere when they touch
	// the same switch or affect a common traffic class — solves each with
	// its own sub-search, and composes the sub-plans in deterministic
	// order. Used by the ablation benchmarks and as the joint baseline of
	// the decomposition comparison.
	NoDecomposition bool
	// NoWaitRemoval disables the wait-removal post-pass (Section 4.2.C).
	NoWaitRemoval bool
	// NoEarlyTermination disables SAT-based early termination (4.2.B).
	NoEarlyTermination bool
	// NoCexLearning disables wrong-configuration pruning (4.2.A); used by
	// the ablation benchmarks.
	NoCexLearning bool
	// NoHeuristicOrder disables destination-first candidate ordering and
	// explores units in index order; used by the ablation benchmarks.
	NoHeuristicOrder bool
	// MinimizeCompletionTime makes completion time under the dependency-
	// DAG latency model (see dag.go) a tie-breaker among valid plans: the
	// search collects up to a handful of candidate orderings instead of
	// stopping at the first, scores each candidate's DAG by critical-path
	// completion time (installs, acks, and drain edges), and returns the
	// minimum — preferring shallower, wider DAGs with fewer drain edges.
	// Ties resolve to the plan the default search would have found, so
	// when every candidate scores equally the output is byte-identical to
	// the default. The candidate searches run on the sequential engine
	// (the enumeration must be deterministic), so Parallelism and
	// FirstPlanWins are ignored; expect up to a few times the search cost.
	// Decomposed runs optimize each component independently, which
	// composes to the global optimum (component DAGs are disjoint).
	MinimizeCompletionTime bool
	// NoPlanCache disables the verification-first plan cache (cache.go):
	// the session never attaches a cache, so every synthesis pays the full
	// search even on a byte-identical repeat instance. Used as the
	// ablation baseline of the cache comparison and exposed as
	// -no-plan-cache on the CLIs.
	NoPlanCache bool
	// Trace attaches a span recorder (internal/obs) to the session: every
	// synthesis records its pipeline phases — rebind, final verify, cache
	// lookup/verify, decomposition, per-component search, wait removal,
	// DAG build, the repair ladder rungs — and exports them on Plan.Trace.
	// Off (the default) costs nothing: the recorder is nil and every
	// instrumentation point is a nil-check. Per-request tracing on a warm
	// session (the daemon's trace=1) goes through Session.SetTrace instead.
	Trace bool
	// Timeout bounds the search; zero means no limit.
	Timeout time.Duration
}

// Synthesis failure modes.
var (
	// ErrNoOrdering reports that no simple careful update sequence exists
	// at the requested granularity (the algorithm's "impossible" answer,
	// Figure 8h).
	ErrNoOrdering = errors.New("core: no correct update ordering exists")
	// ErrTimeout reports that the search exceeded Options.Timeout (or the
	// deadline of the context passed to Session.SynthesizeContext,
	// whichever is earlier).
	ErrTimeout = errors.New("core: synthesis timed out")
	// ErrCanceled reports that the context passed to
	// Session.SynthesizeContext was canceled before the search finished.
	ErrCanceled = errors.New("core: synthesis canceled")
	// ErrInitialViolation reports that the initial configuration already
	// violates the specification.
	ErrInitialViolation = errors.New("core: initial configuration violates the specification")
	// ErrFinalViolation reports that the final configuration violates the
	// specification, so no update sequence can be correct.
	ErrFinalViolation = errors.New("core: final configuration violates the specification")
	// ErrNoPlan reports that Session.Repair was called with no synthesized
	// plan to repair (no prior successful Synthesize on this session).
	ErrNoPlan = errors.New("core: no synthesized plan to repair")
	// ErrBadCommit reports that the committed-step set handed to
	// Session.Repair is not a dependency-closed subset of the last plan's
	// update steps (out of range, duplicated, or missing a predecessor).
	ErrBadCommit = errors.New("core: committed set is not a dependency-closed subset of the last plan")
)

// Stats reports the work performed by one synthesis run.
type Stats struct {
	Units          int  // update units (switches or rules)
	Checks         int  // model-checker calls
	ClassSkips     int  // checker calls skipped because the unit's delta was empty for the class
	StatesLabeled  int  // checker work units
	Relabels       int  // incremental label recomputations that changed a label
	LabelsInterned int  // distinct label sets interned by the labeling checkers
	ExtendHits     int  // closure-extension memo hits
	ExtendMisses   int  // closure-extension memo misses
	CexLearned     int  // counterexamples learned
	WrongPruned    int  // candidate configs pruned by W
	VisitedPruned  int  // candidate configs pruned by V
	Backtracks     int  // DFS backtracks
	SATCalls       int  // early-termination solver calls
	EarlyTerminate bool // search cut off by the SAT solver
	WaitsBefore    int  // waits before removal (always units-1)
	WaitsAfter     int  // waits remaining after removal
	DAGDepth       int  // longest dependency chain of the plan DAG (nodes)
	DAGWidth       int  // largest antichain level of the plan DAG
	Elapsed        time.Duration

	// Per-phase durations, measured with the same monotonic clock the
	// trace spans use and populated on every run — traced or not — so
	// JSONL consumers get a phase breakdown without enabling traces.
	// VerifyElapsed is the up-front final-configuration verification;
	// SearchElapsed covers the search proper (joint or decomposed,
	// including any repair-ladder fallback); CacheVerifyElapsed is the
	// replay of a cached plan through the warm checkers; RebindElapsed is
	// the post-run resync of the warm per-class structures. They do not
	// sum to Elapsed: scenario setup, DAG build, and cache bookkeeping
	// fall between them.
	RebindElapsed      time.Duration
	SearchElapsed      time.Duration
	WaitRemovalElapsed time.Duration
	VerifyElapsed      time.Duration
	CacheVerifyElapsed time.Duration

	// RequestID is the serving-stack request id (obs.RequestIDFrom) the
	// run was performed under; empty for direct library use.
	RequestID string

	// Decomposition counters (see decompose.go). Components is the number
	// of independent subproblems the interference partition produced (1
	// when the search ran joint — disabled, forced by the backend, or a
	// genuinely connected diff). FootprintProbes counts the apply/revert
	// probes of the footprint pre-pass. ComponentElapsed records each
	// sub-search's wall time in composition order (components sorted by
	// lowest unit index); empty for joint runs.
	Components       int
	FootprintProbes  int
	ComponentElapsed []time.Duration

	// CommittedComponents lists, for decomposed runs, the components
	// (composition-order indexes) whose sub-searches completed and left
	// their classes' warm structures at the target tables. On a failed or
	// context-canceled run — readable via Session.LastStats — it tells
	// callers exactly which parts of the diff were already solved when
	// the run aborted. Nil for joint runs.
	CommittedComponents []int

	// Repair counters (repair.go). RepairCommitted is the number of
	// already-committed plan steps a Repair call resumed from.
	// EscalatedComponents counts stuck components the fallback ladder
	// solved by escalating to 2-simple granularity; TwoPhaseComponents
	// counts those that fell back to scoped version-tagging.
	RepairCommitted     int
	EscalatedComponents int
	TwoPhaseComponents  int

	// Plan-cache counters (cache.go). CacheHit marks a run served from the
	// verification-first fast path: either a cached plan that replayed
	// cleanly through the warm checkers (Checks then counts the replay's
	// model-checker calls, and no search ran) or a memoized infeasibility
	// that failed fast. A run that found a stale or corrupted entry sets
	// CacheVerifyFailed, evicts it, and falls back to the full search.
	CacheHit          bool
	CacheVerifyFailed bool
}

// addSearch folds the counters of one component sub-search into st. The
// work counters are additive across subproblems; labeling counters arrive
// already collected against the sub-engine's checker snapshots.
func (st *Stats) addSearch(o Stats) {
	st.Checks += o.Checks
	st.ClassSkips += o.ClassSkips
	st.StatesLabeled += o.StatesLabeled
	st.Relabels += o.Relabels
	st.LabelsInterned += o.LabelsInterned
	st.ExtendHits += o.ExtendHits
	st.ExtendMisses += o.ExtendMisses
	st.CexLearned += o.CexLearned
	st.WrongPruned += o.WrongPruned
	st.VisitedPruned += o.VisitedPruned
	st.Backtracks += o.Backtracks
	st.SATCalls += o.SATCalls
	if o.EarlyTerminate {
		st.EarlyTerminate = true
	}
}

var (
	_ = ltl.True
	_ = kripke.State{}
)
