package core

import (
	"fmt"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/kripke"
	"netupdate/internal/mc"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// Session is a long-lived synthesizer bound to one topology and one set
// of class specifications, serving a stream of target configurations. A
// production controller faces exactly this shape of load — a sequence of
// configuration changes over a fixed network — and rebuilding every
// per-class Kripke structure, re-interning every label, and re-allocating
// all engine scratch per change throws away state that is expensive to
// create and cheap to maintain. The session keeps it warm instead:
//
//   - per-class Kripke structures are rebound in place over the existing
//     state-space arena (kripke.K.Rebind) instead of rebuilt, touching
//     only the switches whose tables changed;
//   - checkers persist across syntheses through mc.Rebindable, so
//     interned label sets, closure-extension memos, sink-label caches and
//     translated automata survive; the mc.Warmth cache additionally
//     shares closures and label tables between all checkers of one
//     formula (including the final-verification checkers);
//   - engine scratch — the visited set, the current-table map, and the
//     wait-removal BFS buffers — is pooled in the session and reset per
//     run instead of reallocated.
//
// Synthesize(final) produces the plan from the session's current
// configuration to final and, on success, advances the current
// configuration. A Session must not be used from more than one goroutine
// at a time (each Synthesize still fans out to the parallel worker pool
// internally per Options.Parallelism). Configurations handed to the
// session are retained and must not be mutated by the caller afterwards.
type Session struct {
	topo  *topology.Topology
	specs []config.ClassSpec
	opts  Options
	cur   *config.Config

	warm     *mc.Warmth
	ks       []*kripke.K
	checkers []mc.Checker
	canSkip  []bool // checker i implements mc.DeltaInvariant

	// Final-verification structures, built lazily on the first Synthesize
	// and rebound to each new target afterwards.
	fks     []*kripke.K
	fchecks []mc.Checker

	scratch engineScratch
	runs    int
	// ephemeral marks a single-use session (the one-shot Synthesize
	// wrapper): the post-run resync that keeps warm structures consistent
	// is pure waste on structures about to be discarded, so it is skipped.
	ephemeral bool
}

// engineScratch is the pooled per-run state handed to each engine: reset
// is O(live entries), not O(capacity), and nothing is reallocated across
// syntheses.
type engineScratch struct {
	visited   *bitsetSet
	curTables map[int]network.Table
	bfsSeen   []int32
	bfsEpoch  int32
	bfsQueue  []int
	startsBuf []int
	actsA     []network.Action
	actsB     []network.Action
}

// NewSession builds the warm per-class structures over the initial
// configuration and verifies it against every specification (returning
// ErrInitialViolation otherwise). The checker backend, granularity, and
// search options are fixed for the session's lifetime.
func NewSession(topo *topology.Topology, init *config.Config, specs []config.ClassSpec, opts Options) (*Session, error) {
	s := &Session{
		topo:  topo,
		specs: specs,
		opts:  opts,
		cur:   init,
		warm:  mc.NewWarmth(),
		scratch: engineScratch{
			visited:   newBitsetSet(),
			curTables: map[int]network.Table{},
		},
	}
	factory := opts.Checker.warmFactory()
	for _, cs := range specs {
		k, err := kripke.Build(topo, init, cs.Class)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInitialViolation, err)
		}
		chk, err := factory(k, cs.Formula, s.warm)
		if err != nil {
			return nil, err
		}
		if !chk.Check().OK {
			return nil, fmt.Errorf("%w: class %v", ErrInitialViolation, cs.Class)
		}
		s.ks = append(s.ks, k)
		s.checkers = append(s.checkers, chk)
		_, di := chk.(mc.DeltaInvariant)
		s.canSkip = append(s.canSkip, di)
	}
	return s, nil
}

// Current returns the configuration the session is at: the initial one,
// or the target of the last successful Synthesize.
func (s *Session) Current() *config.Config { return s.cur }

// Runs returns the number of Synthesize calls served so far.
func (s *Session) Runs() int { return s.runs }

// Synthesize runs ORDERUPDATE from the session's current configuration
// to final, reusing the warm per-class structures, and advances the
// current configuration on success. Failed syntheses (including
// ErrNoOrdering) leave the session at its previous configuration, ready
// for the next target.
func (s *Session) Synthesize(final *config.Config) (*Plan, error) {
	return s.synthesize("", final)
}

func (s *Session) synthesize(name string, final *config.Config) (*Plan, error) {
	start := time.Now()
	s.runs++
	sc := &config.Scenario{
		Name:  name,
		Topo:  s.topo,
		Init:  s.cur,
		Final: final,
		Specs: s.specs,
	}
	e, err := newEngineShell(sc, s.opts, &s.scratch)
	if err != nil {
		return nil, err
	}
	// Verify the target before searching: if it violates the spec, no
	// sequence can be correct (Figure 4, line 2). The initial endpoint
	// was verified when the session was opened, so a scenario whose
	// endpoints are both bad reports ErrInitialViolation (from NewSession)
	// rather than the pre-session ErrFinalViolation. The verification
	// structures are warm too — rebound, not rebuilt.
	if err := s.verifyFinal(e, final); err != nil {
		return nil, err
	}
	e.ks, e.checkers, e.canSkip = s.ks, s.checkers, s.canSkip
	e.snapshotCheckerStats()

	steps, runErr := e.run()
	var plan *Plan
	if runErr == nil {
		e.stats.WaitsBefore = countWaits(steps)
		if !s.opts.NoWaitRemoval {
			wrStart := time.Now()
			steps = e.removeWaits(steps)
			e.stats.WaitRemovalTime = time.Since(wrStart)
		}
		e.stats.WaitsAfter = countWaits(steps)
		e.collectCheckerStats()
		e.stats.Elapsed = time.Since(start)
		plan = &Plan{Steps: steps, Stats: e.stats}
	}
	s.reclaimScratch(e)

	// Resync the warm structures to a known configuration: the new
	// current one on success, the previous one otherwise. The rebind is
	// diff-aware, so when the engine already left the structures there
	// (sequential search) it is a table-equality sweep and the checkers
	// are not touched at all. A single-use session skips this — its
	// structures are discarded with the session.
	if s.ephemeral {
		if runErr != nil {
			return nil, runErr
		}
		s.cur = final
		return plan, nil
	}
	target := s.cur
	if runErr == nil {
		target = final
	}
	for i := range s.ks {
		changed, touched, rerr := s.ks[i].Rebind(target)
		if rerr != nil {
			// target was verified loop-free for every class (the initial
			// configuration at session construction, every successful
			// final here), so this indicates structure corruption.
			return nil, fmt.Errorf("core: session resync: %v", rerr)
		}
		if s.needsRebind(i, changed, touched) {
			rebindChecker(s.checkers[i])
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	s.cur = final
	return plan, nil
}

// verifyFinal checks the target configuration against every class
// specification through the selected backend, rebinding (or lazily
// building) the session's dedicated verification structures. On failure
// the structures are left in a consistent state — either fully absent
// (lazy build aborted) or bound to a loop-free configuration with their
// checkers in sync — so the session serves the next target normally.
func (s *Session) verifyFinal(e *engine, final *config.Config) error {
	if s.fks == nil {
		// Build into locals: a failure part-way drops the partial set and
		// the next Synthesize rebuilds from scratch.
		factory := s.opts.Checker.warmFactory()
		fks := make([]*kripke.K, 0, len(s.specs))
		fchecks := make([]mc.Checker, 0, len(s.specs))
		for _, cs := range s.specs {
			kf, err := kripke.Build(s.topo, final, cs.Class)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrFinalViolation, err)
			}
			chk, err := factory(kf, cs.Formula, s.warm)
			if err != nil {
				return err
			}
			e.stats.Checks++
			if !chk.Check().OK {
				return fmt.Errorf("%w: class %v", ErrFinalViolation, cs.Class)
			}
			fks = append(fks, kf)
			fchecks = append(fchecks, chk)
		}
		s.fks, s.fchecks = fks, fchecks
		return nil
	}
	for i, cs := range s.specs {
		changed, touched, err := s.fks[i].Rebind(final)
		if err != nil {
			// The target forwards class i in a cycle (or is otherwise
			// malformed). The structure has been rebound toward final;
			// pull it back to the session's current configuration —
			// verified loop-free for every class — before refreshing the
			// checker: relabeling a cyclic structure is undefined.
			restoredC, restoredT, rerr := s.fks[i].Rebind(s.cur)
			if rerr != nil {
				return fmt.Errorf("core: session final-verify resync: %v", rerr)
			}
			if s.needsRebind(i, changed, touched) || s.needsRebind(i, restoredC, restoredT) {
				rebindChecker(s.fchecks[i])
			}
			return fmt.Errorf("%w: %v", ErrFinalViolation, err)
		}
		if s.needsRebind(i, changed, touched) {
			rebindChecker(s.fchecks[i])
		}
		e.stats.Checks++
		if !s.fchecks[i].Check().OK {
			return fmt.Errorf("%w: class %v", ErrFinalViolation, cs.Class)
		}
	}
	return nil
}

// needsRebind reports whether class i's checker must be refreshed after a
// structure rebind: label-based backends (mc.DeltaInvariant) depend only
// on the class's transition relation, while table-tracking backends (the
// header-space checker) must see every raw table replacement.
func (s *Session) needsRebind(i int, changed, touched []int) bool {
	if len(changed) > 0 {
		return true
	}
	return !s.canSkip[i] && len(touched) > 0
}

// rebindChecker refreshes a checker after its structure was rebound in
// place. All four shipped backends implement mc.Rebindable; the panic is
// a loud guard against a future backend that forgets to.
func rebindChecker(c mc.Checker) {
	r, ok := c.(mc.Rebindable)
	if !ok {
		panic(fmt.Sprintf("core: checker %s is not rebindable", c.Name()))
	}
	r.Rebind()
}

// reclaimScratch takes the (possibly grown) per-run buffers back from the
// engine so the next synthesis reuses them.
func (s *Session) reclaimScratch(e *engine) {
	s.scratch.bfsSeen, s.scratch.bfsEpoch = e.bfsSeen, e.bfsEpoch
	s.scratch.bfsQueue = e.bfsQueue
	s.scratch.startsBuf = e.startsBuf
	s.scratch.actsA, s.scratch.actsB = e.actsA, e.actsB
}
