package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/kripke"
	"netupdate/internal/mc"
	"netupdate/internal/network"
	"netupdate/internal/obs"
	"netupdate/internal/topology"
)

// Session is a long-lived synthesizer bound to one topology and one set
// of class specifications, serving a stream of target configurations. A
// production controller faces exactly this shape of load — a sequence of
// configuration changes over a fixed network — and rebuilding every
// per-class Kripke structure, re-interning every label, and re-allocating
// all engine scratch per change throws away state that is expensive to
// create and cheap to maintain. The session keeps it warm instead:
//
//   - per-class Kripke structures are rebound in place over the existing
//     state-space arena (kripke.K.Rebind) instead of rebuilt, touching
//     only the switches whose tables changed;
//   - checkers persist across syntheses through mc.Rebindable, so
//     interned label sets, closure-extension memos, sink-label caches and
//     translated automata survive; the mc.Warmth cache additionally
//     shares closures and label tables between all checkers of one
//     formula (including the final-verification checkers);
//   - engine scratch — the visited set, the current-table map, and the
//     wait-removal BFS buffers — is pooled in the session and reset per
//     run instead of reallocated.
//
// Synthesize(final) produces the plan from the session's current
// configuration to final and, on success, advances the current
// configuration. A Session must not be used from more than one goroutine
// at a time (each Synthesize still fans out to the parallel worker pool
// internally per Options.Parallelism). Configurations handed to the
// session are retained and must not be mutated by the caller afterwards.
type Session struct {
	topo  *topology.Topology
	specs []config.ClassSpec
	opts  Options
	cur   *config.Config

	// arena is the class-independent Kripke state space every per-class
	// structure (including the final-verification set) is built over. It
	// is immutable and may be shared with other sessions on the same
	// topology (see SessionResources).
	arena    *kripke.Arena
	warm     *mc.Warmth
	ks       []*kripke.K
	checkers []mc.Checker
	canSkip  []bool // checker i implements mc.DeltaInvariant

	// Final-verification structures, built lazily on the first Synthesize
	// and rebound to each new target afterwards; fcur is the configuration
	// they are currently bound to, so each rebind only examines the diff
	// against it instead of sweeping every switch per class.
	fks     []*kripke.K
	fchecks []mc.Checker
	fcur    *config.Config

	// Rebind scratch shared by the resync and final-verify paths: the
	// per-switch rule-diff list and the per-class rebind candidate list.
	diffBuf []swDiff
	swBuf   []int

	scratch engineScratch
	runs    int
	// ephemeral marks a single-use session (the one-shot Synthesize
	// wrapper): the post-run resync that keeps warm structures consistent
	// is pure waste on structures about to be discarded, so it is skipped.
	ephemeral bool

	// Repair bookkeeping (repair.go). The last successful plan and its
	// endpoints let Repair reconstruct the exact mid-plan configuration
	// from a committed-step report; lastStats additionally survives failed
	// runs so callers can see which components committed their class
	// structures before an abort.
	lastPlan  *Plan
	lastInit  *config.Config
	lastFinal *config.Config
	lastStats Stats
	// repairing arms the graceful-degradation ladder: a component (or the
	// joint search) that reports ErrNoOrdering is retried at 2-simple
	// granularity and then falls back to scoped two-phase instead of
	// failing the run.
	repairing bool

	// Verification-first plan cache (cache.go), attached via EnableCache
	// or SetCache (the pool shares one cache across tenants with the same
	// learning fingerprint). Nil means every synthesis runs the full
	// search. ctxFP memoizes the session's context fingerprint; the
	// hashedCur/pending pairs memoize configuration hashes by pointer
	// identity so a steady-state stream hashes one configuration per
	// request.
	cache       *PlanCache
	cacheBlob   []byte
	ctxFP       []byte
	hashedCur   *config.Config
	curHash     cfgHash
	pendingCfg  *config.Config
	pendingHash cfgHash

	// Span recorder (internal/obs), nil unless Options.Trace was set or a
	// per-request recorder was attached via SetTrace. Every recording call
	// is nil-safe, so the disabled path costs one pointer compare.
	// traceOuter parents the next synthesize root (Repair sets it to its
	// own root span so the inner synthesis nests under the repair);
	// traceSearch parents per-component and fallback-ladder spans while a
	// search is running. Both use the recorder's 0 = "no parent" sentinel.
	trace       *obs.Trace
	traceOuter  int
	traceSearch int
}

// engineScratch is the pooled per-run state handed to each engine: reset
// is O(live entries), not O(capacity), and nothing is reallocated across
// syntheses.
type engineScratch struct {
	visited   *bitsetSet
	curTables map[int]network.Table
	bfsSeen   []int32
	bfsEpoch  int32
	bfsQueue  []int
	startsBuf []int
	actsA     []network.Action
	actsB     []network.Action
}

// SessionResources are the read-only structures a session may share with
// other sessions over the same topology instead of building privately:
// the Kripke state arena and the formula-keyed warmth cache (closures and
// label tables). Both are immutable or internally synchronized, so the
// pool deduplicates them across identically-shaped tenants. Nil fields
// mean "build a private one".
type SessionResources struct {
	Arena  *kripke.Arena
	Warmth *mc.Warmth
}

// NewSession builds the warm per-class structures over the initial
// configuration and verifies it against every specification (returning
// ErrInitialViolation otherwise). The checker backend, granularity, and
// search options are fixed for the session's lifetime.
func NewSession(topo *topology.Topology, init *config.Config, specs []config.ClassSpec, opts Options) (*Session, error) {
	return NewSessionWith(topo, init, specs, opts, SessionResources{})
}

// NewSessionWith is NewSession drawing the state arena and the warmth
// cache from res where provided.
func NewSessionWith(topo *topology.Topology, init *config.Config, specs []config.ClassSpec, opts Options, res SessionResources) (*Session, error) {
	s := newSessionShell(topo, init, specs, opts, res)
	factory := opts.Checker.warmFactory()
	for _, cs := range specs {
		k, err := s.arena.Build(init, cs.Class)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInitialViolation, err)
		}
		chk, err := factory(k, cs.Formula, s.warm)
		if err != nil {
			return nil, err
		}
		if !chk.Check().OK {
			return nil, fmt.Errorf("%w: class %v", ErrInitialViolation, cs.Class)
		}
		s.ks = append(s.ks, k)
		s.checkers = append(s.checkers, chk)
		_, di := chk.(mc.DeltaInvariant)
		s.canSkip = append(s.canSkip, di)
	}
	return s, nil
}

// newSessionShell assembles the session fields common to cold
// construction and snapshot restore: shared or private resources, fresh
// engine scratch, no per-class structures yet.
func newSessionShell(topo *topology.Topology, init *config.Config, specs []config.ClassSpec, opts Options, res SessionResources) *Session {
	arena := res.Arena
	if arena == nil {
		arena = kripke.NewArena(topo)
	}
	warm := res.Warmth
	if warm == nil {
		warm = mc.NewWarmth()
	}
	s := &Session{
		topo:  topo,
		specs: specs,
		opts:  opts,
		cur:   init,
		arena: arena,
		warm:  warm,
		scratch: engineScratch{
			visited:   newBitsetSet(),
			curTables: map[int]network.Table{},
		},
	}
	if opts.Trace {
		s.trace = obs.NewTrace(0)
	}
	return s
}

// SetTrace attaches (or, with nil, detaches) a span recorder for the
// following runs. The pool uses it to trace exactly one request on a
// warm session (the daemon's trace=1) without paying for tracing on the
// rest of the stream.
func (s *Session) SetTrace(t *obs.Trace) { s.trace = t }

// Trace returns the attached span recorder, or nil.
func (s *Session) Trace() *obs.Trace { return s.trace }

// materializeCache decodes a restored snapshot's plan-cache blob into a
// live cache on first access, keeping the JSON decode — the single
// largest remaining chunk of restore time — off the restore critical
// path. The blob rode in under the snapshot's sha256 checksum, so a
// decode failure here means an encoder bug, not corruption; the cache is
// then simply dropped (a cold cache is always sound — every hit is
// re-verified by replay anyway).
func (s *Session) materializeCache() {
	if s.cacheBlob == nil {
		return
	}
	blob := s.cacheBlob
	s.cacheBlob = nil
	var cs PlanCacheSnapshot
	if err := json.Unmarshal(blob, &cs); err != nil {
		return
	}
	cache := NewPlanCache(0)
	if err := cache.Restore(&cs); err != nil {
		return
	}
	s.cache = cache
}

// EnableCache attaches a private verification-first plan cache (cache.go)
// with the default capacity and returns it, creating one if the session
// has none. It is a no-op returning nil when Options.NoPlanCache is set.
func (s *Session) EnableCache() *PlanCache {
	if s.opts.NoPlanCache {
		return nil
	}
	s.materializeCache()
	if s.cache == nil {
		s.cache = NewPlanCache(0)
	}
	return s.cache
}

// SetCache attaches an existing (possibly shared) plan cache; nil
// detaches. Ignored when Options.NoPlanCache is set. Any pending
// restored-snapshot cache state is superseded and discarded.
func (s *Session) SetCache(c *PlanCache) {
	if s.opts.NoPlanCache {
		return
	}
	s.cacheBlob = nil
	s.cache = c
}

// Cache returns the attached plan cache, or nil.
func (s *Session) Cache() *PlanCache {
	s.materializeCache()
	return s.cache
}

// Current returns the configuration the session is at: the initial one,
// or the target of the last successful Synthesize.
func (s *Session) Current() *config.Config { return s.cur }

// Runs returns the number of Synthesize calls served so far.
func (s *Session) Runs() int { return s.runs }

// LastStats returns the statistics of the most recent synthesis attempt,
// successful or not. After a failed or aborted decomposed run,
// Stats.CommittedComponents names the components whose sub-searches
// finished and left their classes' structures at the target tables.
func (s *Session) LastStats() Stats { return s.lastStats }

// Synthesize runs ORDERUPDATE from the session's current configuration
// to final, reusing the warm per-class structures, and advances the
// current configuration on success. Failed syntheses (including
// ErrNoOrdering) leave the session at its previous configuration, ready
// for the next target.
func (s *Session) Synthesize(final *config.Config) (*Plan, error) {
	return s.synthesize(context.Background(), "", final)
}

// SynthesizeContext is Synthesize with a request context: the search
// polls ctx and aborts with ErrTimeout when its deadline expires before
// Options.Timeout (the earlier of the two bounds the search) or
// ErrCanceled when it is canceled outright. An aborted synthesis behaves
// like any failed one — the session resyncs to its previous configuration
// and serves the next target normally.
func (s *Session) SynthesizeContext(ctx context.Context, final *config.Config) (*Plan, error) {
	return s.synthesize(ctx, "", final)
}

func (s *Session) synthesize(ctx context.Context, name string, final *config.Config) (*Plan, error) {
	start := time.Now()
	if ctx != nil && ctx.Err() != nil {
		// Dead on arrival: do not touch the warm structures at all.
		return nil, ctxErr(ctx)
	}
	s.runs++
	sc := &config.Scenario{
		Name:  name,
		Topo:  s.topo,
		Init:  s.cur,
		Final: final,
		Specs: s.specs,
	}
	e, err := newEngineShell(sc, s.opts, &s.scratch)
	if err != nil {
		return nil, err
	}
	e.bindContext(ctx)
	e.stats.RequestID = obs.RequestIDFrom(ctx)
	tr := s.trace
	if tr != nil && !s.repairing {
		// A repair run nests under RepairContext's root; an ordinary run
		// starts a fresh trace.
		tr.Reset()
		tr.SetRequestID(e.stats.RequestID)
	}
	root := tr.Begin("synthesize", s.traceOuter)
	// Verify the target before searching: if it violates the spec, no
	// sequence can be correct (Figure 4, line 2). The initial endpoint
	// was verified when the session was opened, so a scenario whose
	// endpoints are both bad reports ErrInitialViolation (from NewSession)
	// rather than the pre-session ErrFinalViolation. The verification
	// structures are warm too — rebound, not rebuilt.
	vfStart := time.Now()
	vfSpan := tr.Begin("final-verify", root)
	if err := s.verifyFinal(e, final); err != nil {
		tr.End(vfSpan)
		return nil, err
	}
	tr.End(vfSpan)
	e.stats.VerifyElapsed = time.Since(vfStart)
	e.ks, e.checkers, e.canSkip = s.ks, s.checkers, s.canSkip

	// Verification-first fast path (cache.go): with a cache attached,
	// fingerprint the instance and try a lookup. A cached plan is replayed
	// step by step through the warm checkers — every intermediate
	// configuration is model-checked again — so a hit is exactly as sound
	// as a fresh search, while a stale or corrupted entry fails replay, is
	// evicted, and the run falls through to the ordinary search. A
	// memoized infeasibility fails fast, except in repair mode, which must
	// run the fallback ladder and instead preloads the entry's persisted
	// learned state (wrong patterns, SAT constraints, dead set) into the
	// fresh search.
	var cacheKey string
	var ent *cacheEntry
	s.materializeCache()
	if s.cache != nil {
		clSpan := tr.Begin("cache-lookup", root)
		cacheKey = s.instanceKey(final)
		ent = s.cache.lookup(cacheKey)
		tr.End(clSpan)
		e.armLearnRecording()
	}
	var steps []Step
	var runErr error
	var dag *PlanDAG
	fromCache, decomposed, searched := false, false, false
	if ent != nil && ent.hasPlan() {
		e.snapshotCheckerStats()
		cvStart := time.Now()
		cvSpan := tr.Begin("cache-verify", root)
		replayed, ok := s.replayCached(e, ent, final)
		tr.End(cvSpan)
		e.stats.CacheVerifyElapsed = time.Since(cvStart)
		if ok {
			steps = replayed
			dag = ent.dag.clone()
			fromCache = true
			e.stats.CacheHit = true
			e.stats.Components = ent.components
			s.cache.noteHit()
		} else {
			e.stats.CacheVerifyFailed = true
			s.cache.evictPoisoned(cacheKey)
			ent = nil
		}
	}
	switch {
	case fromCache:
	case ent != nil && ent.infeasible && !s.repairing:
		e.stats.CacheHit = true
		s.cache.noteHit()
		runErr = ErrNoOrdering
	default:
		if s.cache != nil {
			s.cache.noteMiss()
		}
		preUnsat := false
		if ent != nil && !ent.learn.empty() && !s.opts.MinimizeCompletionTime {
			preUnsat = e.preloadLearning(&ent.learn)
		}
		if preUnsat && !s.repairing {
			// The replayed constraints already prove no ordering exists.
			runErr = ErrNoOrdering
			break
		}
		searched = true
		// Partition the diff into independent subproblems where possible
		// (see decompose.go); a connected (or forced-joint) diff runs the
		// ordinary joint search, which keeps single-component plans
		// byte-identical to the undecomposed engine.
		dcSpan := tr.Begin("decompose", root)
		comps, derr := s.decompose(e)
		tr.End(dcSpan)
		decomposed = derr == nil && comps != nil
		searchStart := time.Now()
		searchSpan := tr.Begin("search", root)
		s.traceSearch = searchSpan
		switch {
		case derr != nil:
			runErr = derr
		case decomposed:
			steps, runErr = s.runDecomposed(e, comps, final)
		default:
			e.stats.Components = 1
			e.snapshotCheckerStats()
			steps, runErr = e.run()
			if s.repairing && runErr != nil && errors.Is(runErr, ErrNoOrdering) {
				// The whole diff is one stuck component: run the repair
				// fallback ladder over it (repair.go).
				var twoPhase bool
				var fsteps []Step
				fsteps, twoPhase, runErr = s.repairFallback(e.ctx, sc.Name+"#fallback", s.specs, e.unitSwitches(), final)
				if runErr == nil {
					steps = fsteps
					if twoPhase {
						e.stats.TwoPhaseComponents++
					} else {
						e.stats.EscalatedComponents++
					}
				}
			}
		}
		s.traceSearch = 0
		tr.End(searchSpan)
		e.stats.SearchElapsed = time.Since(searchStart)
	}
	var plan *Plan
	if runErr == nil {
		if fromCache {
			// Cached plans were wait-removed when first synthesized and
			// carry their DAG; only the counters need refreshing.
			e.stats.WaitsBefore = countWaits(steps)
			e.stats.WaitsAfter = e.stats.WaitsBefore
		} else {
			e.stats.WaitsBefore = countWaits(steps)
			// Two-phase fallback segments (repair ladder) are version-tagged,
			// not careful: the class-trace argument behind wait removal and
			// the dependency analysis does not cover them, so such plans keep
			// every wait and carry a sequential chain DAG instead.
			tagged := e.stats.TwoPhaseComponents > 0
			if !s.opts.NoWaitRemoval && !tagged {
				wrStart := time.Now()
				wrSpan := tr.Begin("wait-removal", root)
				steps = e.removeWaits(steps)
				tr.End(wrSpan)
				e.stats.WaitRemovalElapsed = time.Since(wrStart)
			}
			e.stats.WaitsAfter = countWaits(steps)
			// Lift the ordering facts into the dependency DAG (dag.go). Built
			// over the final — possibly composed — step sequence, which for
			// decomposed runs yields the disjoint union of the component
			// sub-DAGs (components share no class and no switch, so no chain
			// crosses a component boundary).
			dbSpan := tr.Begin("dag-build", root)
			if tagged {
				dag = chainDAG(steps)
			} else {
				dag = e.buildDAG(steps)
			}
			tr.End(dbSpan)
		}
		e.stats.DAGDepth, e.stats.DAGWidth = dag.Depth, dag.Width
		if !decomposed {
			// Decomposed runs already collected per-component checker
			// deltas; collecting again here would double-count. (A replay
			// hit snapshots before applying, so the deltas here are the
			// replay's own checker work.)
			e.collectCheckerStats()
		}
		e.stats.Elapsed = time.Since(start)
		plan = &Plan{Steps: steps, Stats: e.stats, DAG: dag}
	}
	// Memoize the outcome (cache.go): a fresh successful search stores its
	// plan and DAG together with the learned state harvested from the
	// shared search structures (joint runs only — component sub-searches
	// renumber units locally, so their learned state does not transfer),
	// and a proven infeasibility stores the memo with the state that
	// proves it. Repair-mode runs never store: their ladder products
	// (escalated granularity, version-tagged segments) are not ordinary
	// careful plans for this instance key.
	if s.cache != nil && !fromCache && searched && !s.repairing {
		csSpan := tr.Begin("cache-store", root)
		switch {
		case runErr == nil:
			var ls learnedState
			if !decomposed {
				ls = e.harvestLearning()
			}
			s.cache.storePlan(cacheKey, steps, dag, e.stats.Components, ls)
		case errors.Is(runErr, ErrNoOrdering):
			s.cache.storeInfeasible(cacheKey, e.harvestLearning())
		}
		tr.End(csSpan)
	}
	s.lastStats = e.stats
	s.reclaimScratch(e)

	// Resync the warm structures to a known configuration: the new
	// current one on success, the previous one otherwise. The rebind is
	// diff-aware, so when the engine already left the structures there
	// (sequential search) it is a table-equality sweep and the checkers
	// are not touched at all. A single-use session skips this — its
	// structures are discarded with the session.
	if s.ephemeral {
		if runErr != nil {
			return nil, runErr
		}
		s.noteAdvance(final)
		s.cur = final
		if tr != nil {
			tr.End(root)
			plan.Trace = tr.Snapshot()
		}
		return plan, nil
	}
	target := s.cur
	if runErr == nil {
		target = final
	}
	// Only the run's unit switches can deviate from target: the search
	// and the footprint pre-pass mutate nothing else, and target differs
	// from the previous configuration exactly on the diff the units
	// cover. Restricting the rebind to those switches — and, per class,
	// adopting every switch whose rule changes cannot affect it — keeps
	// resync cost proportional to the diff, not the network times the
	// class count. The rule diffs span the two endpoints (s.cur vs final,
	// not vs target): even when the run failed and target is s.cur, a
	// decomposed run's *successful* components left their classes'
	// structures at final tables, and a class the endpoint diff cannot
	// affect may adopt either endpoint's table while every other class
	// gets a real rebind against its actual structure state.
	rbStart := time.Now()
	rbSpan := tr.Begin("rebind", root)
	cands := e.unitSwitches()
	s.diffBuf = ruleDiffs(s.diffBuf, s.cur, final, cands)
	for i := range s.ks {
		var rerr error
		s.swBuf, rerr = s.rebindClass(i, s.ks[i], s.checkers[i], target, cands, s.diffBuf, s.swBuf)
		if rerr != nil {
			// target was verified loop-free for every class (the initial
			// configuration at session construction, every successful
			// final here), so this indicates structure corruption.
			return nil, fmt.Errorf("core: session resync: %v", rerr)
		}
	}
	tr.End(rbSpan)
	// The resync runs after Elapsed and lastStats were stamped, so the
	// rebind duration is patched into both (and into the plan's copy).
	reb := time.Since(rbStart)
	s.lastStats.RebindElapsed = reb
	if plan != nil {
		plan.Stats.RebindElapsed = reb
	}
	if runErr != nil {
		return nil, runErr
	}
	s.lastPlan, s.lastInit, s.lastFinal = plan, s.cur, final
	s.noteAdvance(final)
	s.cur = final
	if tr != nil {
		tr.End(root)
		plan.Trace = tr.Snapshot()
	}
	return plan, nil
}

// verifyFinal checks the target configuration against every class
// specification through the selected backend, rebinding (or lazily
// building) the session's dedicated verification structures. On failure
// the structures are left in a consistent state — either fully absent
// (lazy build aborted) or bound to a loop-free configuration with their
// checkers in sync — so the session serves the next target normally.
func (s *Session) verifyFinal(e *engine, final *config.Config) error {
	if s.fks == nil {
		// Build into locals: a failure part-way drops the partial set and
		// the next Synthesize rebuilds from scratch.
		factory := s.opts.Checker.warmFactory()
		fks := make([]*kripke.K, 0, len(s.specs))
		fchecks := make([]mc.Checker, 0, len(s.specs))
		for _, cs := range s.specs {
			kf, err := s.arena.Build(final, cs.Class)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrFinalViolation, err)
			}
			chk, err := factory(kf, cs.Formula, s.warm)
			if err != nil {
				return err
			}
			e.stats.Checks++
			if !chk.Check().OK {
				return fmt.Errorf("%w: class %v", ErrFinalViolation, cs.Class)
			}
			fks = append(fks, kf)
			fchecks = append(fchecks, chk)
		}
		s.fks, s.fchecks = fks, fchecks
		s.fcur = final
		return nil
	}
	// Phase 1: rebind every verification structure to the new target.
	// The candidate switches — the diff against the configuration the
	// structures are currently bound to — and their rule changes are
	// computed once and shared across classes, so rebinding costs O(diff)
	// per class (with class-unaffected switches adopted outright), not
	// O(switches). If the target forwards some class in a cycle, every
	// structure is pulled back to the session's current configuration
	// (verified loop-free for every class) before refreshing the
	// checkers: relabeling a cyclic structure is undefined. This restore
	// path is rare and uses the absolute full-sweep rebind.
	cands := config.Diff(s.fcur, final)
	s.diffBuf = ruleDiffs(s.diffBuf, s.fcur, final, cands)
	for i := range s.specs {
		var err error
		s.swBuf, err = s.rebindClass(i, s.fks[i], s.fchecks[i], final, cands, s.diffBuf, s.swBuf)
		if err != nil {
			for j := range s.specs {
				rc, rt, rerr := s.fks[j].Rebind(s.cur)
				if rerr != nil {
					return fmt.Errorf("core: session final-verify resync: %v", rerr)
				}
				// rebindClass refreshes checkers up to the failing class;
				// after the restore, refresh any class whose structure
				// moved in either direction (the failing class included —
				// its forward rebind was partial).
				if s.needsRebind(j, rc, rt) || j == i {
					rebindChecker(s.fchecks[j])
				}
			}
			s.fcur = s.cur
			return fmt.Errorf("%w: %v", ErrFinalViolation, err)
		}
	}
	s.fcur = final
	// Phase 2: check every class. A violating target leaves the
	// structures bound to it — loop-free, checkers in sync — ready for
	// the next rebind.
	for i, cs := range s.specs {
		e.stats.Checks++
		if !s.fchecks[i].Check().OK {
			return fmt.Errorf("%w: class %v", ErrFinalViolation, cs.Class)
		}
	}
	return nil
}

// swDiff records the rules that change on one switch between the
// configuration a structure is bound to and the rebind target.
type swDiff struct {
	sw             int
	removed, added []network.Rule
}

// affects reports whether any changed rule matches the class packet: if
// none does, the class's forwarding at the switch is identical under both
// tables and the structure may adopt the new table without recomputation.
func (d *swDiff) affects(pkt network.Packet) bool {
	return rulesAffect(d.removed, d.added, pkt)
}

// rulesAffect reports whether any of the changed rules matches the class
// packet. A class no changed rule matches keeps identical forwarding
// under both tables — table application is priority-set semantics, so a
// rule that cannot match contributes nothing and a pure reorder of
// identical rules changes nothing either. This single predicate backs
// both the footprint pre-filter and the resync adopt filter.
func rulesAffect(removed, added []network.Rule, pkt network.Packet) bool {
	for _, r := range removed {
		if headerMatches(r.Match, pkt) {
			return true
		}
	}
	for _, r := range added {
		if headerMatches(r.Match, pkt) {
			return true
		}
	}
	return false
}

// ruleDiffs collects the per-switch rule changes between from and to over
// the candidate switches, once — the diff is class-independent, so every
// class's rebind shares it.
func ruleDiffs(dst []swDiff, from, to *config.Config, cands []int) []swDiff {
	dst = dst[:0]
	for _, sw := range cands {
		removed, added := diffTables(from.Table(sw), to.Table(sw))
		if len(removed) > 0 || len(added) > 0 {
			dst = append(dst, swDiff{sw: sw, removed: removed, added: added})
		}
	}
	return dst
}

// rebindClass resyncs one per-class structure (and its checker) to
// target. Delta-invariant backends skip recomputation on every diff
// switch whose changed rules cannot affect the class — the table is
// adopted, the labels stay valid — and pay a real rebind only on the
// rest. Table-tracking backends (header-space) rebind every candidate.
// swBuf is the caller's scratch for the rebind list.
func (s *Session) rebindClass(i int, k *kripke.K, chk mc.Checker, target *config.Config, cands []int, diffs []swDiff, swBuf []int) ([]int, error) {
	if !s.canSkip[i] {
		changed, touched, err := k.RebindSwitches(target, cands)
		if err != nil {
			return swBuf, err
		}
		if s.needsRebind(i, changed, touched) {
			rebindChecker(chk)
		}
		return swBuf, nil
	}
	pkt := s.specs[i].Class.Packet()
	rebindList := swBuf[:0]
	for di := range diffs {
		d := &diffs[di]
		if d.affects(pkt) {
			rebindList = append(rebindList, d.sw)
		} else {
			k.AdoptTable(d.sw, target.Table(d.sw))
		}
	}
	changed, touched, err := k.RebindSwitches(target, rebindList)
	if err != nil {
		return rebindList, err
	}
	if s.needsRebind(i, changed, touched) {
		rebindChecker(chk)
	}
	return rebindList, nil
}

// needsRebind reports whether class i's checker must be refreshed after a
// structure rebind: label-based backends (mc.DeltaInvariant) depend only
// on the class's transition relation, while table-tracking backends (the
// header-space checker) must see every raw table replacement.
func (s *Session) needsRebind(i int, changed, touched []int) bool {
	if len(changed) > 0 {
		return true
	}
	return !s.canSkip[i] && len(touched) > 0
}

// rebindChecker refreshes a checker after its structure was rebound in
// place. All four shipped backends implement mc.Rebindable; the panic is
// a loud guard against a future backend that forgets to.
func rebindChecker(c mc.Checker) {
	r, ok := c.(mc.Rebindable)
	if !ok {
		panic(fmt.Sprintf("core: checker %s is not rebindable", c.Name()))
	}
	r.Rebind()
}

// reclaimScratch takes the (possibly grown) per-run buffers back from the
// engine so the next synthesis reuses them.
func (s *Session) reclaimScratch(e *engine) {
	s.scratch.bfsSeen, s.scratch.bfsEpoch = e.bfsSeen, e.bfsEpoch
	s.scratch.bfsQueue = e.bfsQueue
	s.scratch.startsBuf = e.startsBuf
	s.scratch.actsA, s.scratch.actsB = e.actsA, e.actsB
}
