package core

// Interference-partitioned search. ORDERUPDATE is factorial in the number
// of update units, and the paper's V/W/SAT optimizations only prune — they
// never shrink the problem. Realistic diffs (rolling datacenter updates,
// per-tenant reroutes) usually touch several independent regions: units
// that affect disjoint traffic classes can never invalidate each other's
// checks, so a joint search over n1+n2 units wastes exponential work that
// two searches of n1 and n2 units avoid. This file turns the synthesizer
// from one big search into a scheduler of small ones:
//
//  1. Footprint pre-pass: each unit's *interference footprint* is the set
//     of traffic classes whose Kripke delta is non-empty for that unit —
//     the same per-class emptiness the engine's ClassSkips fast path
//     tests, hoisted into a pre-pass that applies and reverts each unit
//     once against the warm structures. Per-class successor lists of a
//     switch's arrival states are a function of that switch's table
//     alone, so delta emptiness between two tables is context-free and
//     one probe per (unit, class) is exact for whole-table units. Rule
//     units are the exception — whether an add/delete changes class
//     behavior depends on the rest of the table (priority shadowing), so
//     their footprint is the sound, context-free over-approximation
//     "classes whose packet the rule's pattern matches" instead.
//
//  2. Interference graph: units are vertices; two units interfere when
//     they touch the same switch (their Step.Table snapshots and merge/
//     finalize prerequisites are only coherent within one search) or when
//     their footprints share a class. Connected components (union-find)
//     are the independent subproblems.
//
//  3. Sub-searches: each component becomes its own scenario — the session
//     configuration with only the component's switches moved to their
//     final tables, and only the component's class specifications — and
//     runs a full ORDERUPDATE search on the existing sequential/parallel
//     engines. Unit numbering, and with it the SAT early-termination
//     instance, the wrong-pattern store, and the dead set, are
//     component-local. Components partition the per-class structures, so
//     concurrent sub-searches share the session's warm structures without
//     cloning or locking.
//
//  4. Composition: the careful sub-plans are concatenated in component
//     order (components sorted by lowest unit index, fixed before any
//     search starts), separated by waits, and the ordinary class-aware
//     wait-removal pass runs over the composed sequence. Every sub-search
//     is deterministic and composition order is schedule-independent, so
//     decomposed plans are reproducible at any worker count.
//
// Soundness of composition: while component A's sub-plan executes, the
// structure of every class outside A is bit-for-bit unchanged (A's units
// have empty deltas for it — that is what the partition means), so a class
// keeps the verdict its own component's search (or, for classes no unit
// affects, the endpoint verification) established. The header-space
// backend is not mc.DeltaInvariant — its verdict tracks raw rule tables,
// not just the class structure — so it forces a single joint component.
//
// A single-component diff degrades to exactly today's behavior: the
// session falls back to the joint engine, byte-identical plans included.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/kripke"
	"netupdate/internal/mc"
	"netupdate/internal/network"
)

// component is one independent subproblem of the interference partition.
type component struct {
	units    []int // joint-engine unit ids, ascending
	classes  []int // spec indexes the subproblem must check, ascending
	switches []int // switches the units touch, ascending
}

// unitFootprints computes each unit's interference footprint: the sorted
// spec indexes of the classes the unit can affect. Whole-table units
// (switch granularity and 2-simple) are probed against the warm Kripke
// structures — applied in id order so a finalize step lands on top of its
// merge step, probed per class for delta emptiness, and reverted before
// the next switch's units — which keeps every structure at the initial
// configuration when the pre-pass returns. Rule units use the pattern
// match over-approximation (see the file comment).
func (e *engine) unitFootprints() ([][]int, error) {
	fps := make([][]int, len(e.units))
	if e.opts.RuleGranularity {
		for _, u := range e.units {
			for ci, cs := range e.sc.Specs {
				if headerMatches(u.rule.Match, cs.Class.Packet()) {
					fps[u.id] = append(fps[u.id], ci)
				}
			}
		}
		return fps, nil
	}
	// Units of one switch are contiguous in id order (computeUnits emits
	// them per diff switch), so a switch's chain is reverted as soon as
	// the next switch begins and probes of different switches never see
	// each other's updates. A rule-diff match pre-filter keeps the pass
	// cheap: a class whose packet no added or removed rule matches cannot
	// see its behavior change (table application is priority-set
	// semantics, so a pure reorder of identical rules changes nothing
	// either), and only the surviving (unit, class) pairs pay for an
	// exact apply/revert probe.
	var pend []frame
	flush := func() {
		e.revert(pend)
		pend = pend[:0]
	}
	curSw := -1
	for _, u := range e.units {
		if u.sw != curSw {
			flush()
			curSw = u.sw
		}
		// Outside 2-simple mode a switch carries exactly one unit, so no
		// class's structure has a partially applied table at u.sw and the
		// rule diff is identical for every class: compute it once. With
		// 2-simple, classes whose merge probe was skipped still hold the
		// initial table while probed classes hold the merged one, so the
		// diff is per class.
		var remShared, addShared []network.Rule
		shared := !e.opts.TwoSimple && len(e.ks) > 0
		if shared {
			remShared, addShared = diffTables(e.ks[0].Table(u.sw), u.newTable)
		}
		for ci := range e.ks {
			removed, added := remShared, addShared
			if !shared {
				removed, added = diffTables(e.ks[ci].Table(u.sw), u.newTable)
			}
			if !rulesAffect(removed, added, e.sc.Specs[ci].Class.Packet()) {
				continue
			}
			delta, err := e.ks[ci].UpdateSwitch(u.sw, u.newTable)
			e.stats.FootprintProbes++
			if err != nil {
				if _, isLoop := err.(*kripke.ErrLoop); !isLoop {
					// Packet-modification errors are terminal; loops are
					// expected mid-probe (an upstream switch applied alone
					// can loop) and leave the update applied + revertible.
					flush()
					return nil, err
				}
			}
			pend = append(pend, frame{class: ci, delta: delta})
			if len(delta.Changed()) > 0 {
				fps[u.id] = append(fps[u.id], ci)
			}
		}
	}
	flush()
	return fps, nil
}

// components partitions the units into connected components of the
// interference graph, ordered by lowest unit id. It runs the footprint
// pre-pass and so must be called with the engine's structures attached
// and at the initial configuration; it leaves them there.
func (e *engine) components() ([]component, error) {
	fps, err := e.unitFootprints()
	if err != nil {
		return nil, err
	}
	parent := make([]int, len(e.units))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		if ra, rb := find(a), find(b); ra != rb {
			parent[rb] = ra
		}
	}
	lastOnSwitch := map[int]int{}
	for _, u := range e.units {
		if prev, ok := lastOnSwitch[u.sw]; ok {
			union(prev, u.id)
		}
		lastOnSwitch[u.sw] = u.id
		if u.requires >= 0 {
			union(u.requires, u.id) // same switch today; kept explicit
		}
	}
	classUnit := make([]int, len(e.sc.Specs))
	for i := range classUnit {
		classUnit[i] = -1
	}
	for id, fp := range fps {
		for _, ci := range fp {
			if classUnit[ci] < 0 {
				classUnit[ci] = id
			} else {
				union(classUnit[ci], id)
			}
		}
	}
	index := map[int]int{} // union root -> comps index
	var comps []component
	for _, u := range e.units { // id order: components sorted by lowest unit id
		r := find(u.id)
		ci, ok := index[r]
		if !ok {
			ci = len(comps)
			index[r] = ci
			comps = append(comps, component{})
		}
		c := &comps[ci]
		c.units = append(c.units, u.id)
		if n := len(c.switches); n == 0 || c.switches[n-1] != u.sw {
			c.switches = append(c.switches, u.sw)
		}
	}
	for ci, uid := range classUnit {
		if uid >= 0 {
			c := &comps[index[find(uid)]]
			c.classes = append(c.classes, ci)
		}
	}
	return comps, nil
}

// decompose decides whether this synthesis runs partitioned and returns
// the components if so; (nil, nil) selects the joint engine. The joint
// path is taken when decomposition is disabled, when the diff is trivially
// small, when any checker must see every table change (the header-space
// backend — not mc.DeltaInvariant — forces a single joint component), and
// when the interference graph is connected anyway.
func (s *Session) decompose(e *engine) ([]component, error) {
	if s.opts.NoDecomposition || len(e.units) < 2 {
		return nil, nil
	}
	for _, di := range s.canSkip {
		if !di {
			return nil, nil
		}
	}
	comps, err := e.components()
	if err != nil {
		return nil, err
	}
	if len(comps) <= 1 {
		return nil, nil
	}
	return comps, nil
}

// compResult is one component sub-search's outcome.
type compResult struct {
	steps   []Step
	stats   Stats
	err     error
	elapsed time.Duration
}

// testSolveOrder, when non-nil, permutes the order components are handed
// to the solver pool. Composition order never depends on it — that is
// exactly what the metamorphic tests assert. Test-only.
var testSolveOrder func(n int) []int

// testAfterComponent, when non-nil, runs after each component sub-search
// returns (serial scheduling only) — the seam the CommittedComponents
// test uses to cancel a run between components. Test-only.
var testAfterComponent func(i int)

// runDecomposed schedules the component sub-searches concurrently over
// the session's worker budget and composes the careful sub-plans in
// component order. With C components and P workers, min(C, P) components
// run at once and each sub-search receives P/min(C, P) internal workers;
// components partition the per-class structures, so the concurrent
// engines share the session's warm state without cloning. Failures are
// reported deterministically: the lowest-indexed failing component wins,
// no matter which goroutine finished first.
func (s *Session) runDecomposed(e *engine, comps []component, final *config.Config) ([]Step, error) {
	workers := s.opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	slots := len(comps)
	if slots > workers {
		slots = workers
	}
	inner := workers / slots
	if inner < 1 {
		inner = 1
	}

	order := make([]int, len(comps))
	for i := range order {
		order[i] = i
	}
	if testSolveOrder != nil {
		order = testSolveOrder(len(comps))
	}

	results := make([]compResult, len(comps))
	if slots == 1 {
		for _, i := range order {
			results[i] = s.solveComponent(e, &comps[i], i, final, inner)
			if testAfterComponent != nil {
				testAfterComponent(i)
			}
		}
	} else {
		idx := make(chan int, len(comps))
		for _, i := range order {
			idx <- i
		}
		close(idx)
		var wg sync.WaitGroup
		for w := 0; w < slots; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = s.solveComponent(e, &comps[i], i, final, inner)
				}
			}()
		}
		wg.Wait()
	}

	e.stats.Components = len(comps)
	var steps []Step
	var runErr error
	for i := range results {
		r := &results[i]
		e.stats.addSearch(r.stats)
		e.stats.ComponentElapsed = append(e.stats.ComponentElapsed, r.elapsed)
		if r.err == nil {
			// The sub-search finished: its classes' warm structures sit at
			// the target tables whatever the other components did.
			e.stats.CommittedComponents = append(e.stats.CommittedComponents, i)
		} else if s.repairing && errors.Is(r.err, ErrNoOrdering) {
			// Repair mode: a stuck component runs the fallback ladder
			// (repair.go) instead of failing the whole run.
			c := &comps[i]
			specs := make([]config.ClassSpec, 0, len(c.classes))
			for _, ci := range c.classes {
				specs = append(specs, s.specs[ci])
			}
			var twoPhase bool
			r.steps, twoPhase, r.err = s.repairFallback(
				e.ctx, fmt.Sprintf("%s#c%d-fallback", e.sc.Name, i), specs, c.switches, final)
			if r.err == nil {
				if twoPhase {
					e.stats.TwoPhaseComponents++
				} else {
					e.stats.EscalatedComponents++
				}
			}
		}
		if r.err != nil {
			if runErr == nil {
				runErr = r.err
			}
			continue
		}
		if runErr == nil {
			if len(steps) > 0 {
				steps = append(steps, Step{Wait: true})
			}
			steps = append(steps, r.steps...)
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	return steps, nil
}

// solveComponent runs one full ORDERUPDATE search over a component: the
// session configuration with only the component's switches moved to their
// final tables, checked against only the component's classes. The
// sub-engine inherits the joint shell's units for the component —
// renumbered to a component-local 0..n-1 range, which also renumbers the
// SAT early-termination variables, wrong patterns, and dead-set bitmasks
// — and reuses the session's warm structures for its classes directly
// (no other component touches them). Options.Timeout bounds each
// component separately.
func (s *Session) solveComponent(e *engine, c *component, idx int, final *config.Config, inner int) compResult {
	start := time.Now()
	// Each component gets its own trace lane so concurrent sub-searches
	// render as parallel rows; Begin reserves ring slots atomically, so
	// recording from the solver goroutines is safe.
	span := 0
	if s.trace != nil {
		span = s.trace.BeginLane(fmt.Sprintf("component-%d", idx), s.traceSearch, idx+1)
		defer func() {
			s.trace.EndDetail(span, fmt.Sprintf("units=%d classes=%d", len(c.units), len(c.classes)))
		}()
	}
	specs := make([]config.ClassSpec, 0, len(c.classes))
	ks := make([]*kripke.K, 0, len(c.classes))
	checkers := make([]mc.Checker, 0, len(c.classes))
	canSkip := make([]bool, 0, len(c.classes))
	for _, ci := range c.classes {
		specs = append(specs, s.specs[ci])
		ks = append(ks, s.ks[ci])
		checkers = append(checkers, s.checkers[ci])
		canSkip = append(canSkip, s.canSkip[ci])
	}
	// The sub-engine inherits its units below and never derives anything
	// from Final (computeUnits and wait removal run only on the joint
	// shell), so the full target is recorded as-is instead of building a
	// per-component overlay configuration nothing would read.
	scC := &config.Scenario{
		Name:  fmt.Sprintf("%s#c%d", e.sc.Name, idx),
		Topo:  s.topo,
		Init:  s.cur,
		Final: final,
		Specs: specs,
	}
	local := make(map[int]int, len(c.units))
	for i, uid := range c.units {
		local[uid] = i
	}
	units := make([]unit, len(c.units))
	for i, uid := range c.units {
		u := e.units[uid]
		u.id = i
		if u.requires >= 0 {
			lr, ok := local[u.requires]
			if !ok {
				return compResult{
					err: fmt.Errorf("core: component %d split a requires edge (unit %d needs %d)",
						idx, uid, u.requires),
					elapsed: time.Since(start),
				}
			}
			u.requires = lr
		}
		units[i] = u
	}
	opts := s.opts
	opts.Parallelism = inner
	ec := newEngineShellWith(scC, opts, units, nil)
	ec.bindContext(e.ctx)
	ec.ks, ec.checkers, ec.canSkip = ks, checkers, canSkip
	ec.snapshotCheckerStats()
	steps, err := ec.run()
	ec.collectCheckerStats()
	return compResult{steps: steps, stats: ec.stats, err: err, elapsed: time.Since(start)}
}
