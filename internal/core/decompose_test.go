package core

import (
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/topology"
)

// multiRegionScenario builds the decomposition workload: regions
// independent diamond groups, optionally coupled by cross classes.
func multiRegionScenario(t testing.TB, regions, pairs, cross int, seed int64) *config.Scenario {
	t.Helper()
	topo := topology.SmallWorld(160, 6, 0.3, 7)
	sc, err := config.MultiRegion(topo, config.MultiRegionOptions{
		Regions: regions, PairsPerRegion: pairs, CrossClasses: cross,
		Property: config.Reachability, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// engineFor builds a session-attached engine shell for white-box
// partition tests.
func engineFor(t *testing.T, sc *config.Scenario, opts Options) (*Session, *engine) {
	t.Helper()
	s, err := NewSession(sc.Topo, sc.Init, sc.Specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEngineShell(sc, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.ks, e.checkers, e.canSkip = s.ks, s.checkers, s.canSkip
	return s, e
}

// TestComponentsPartition: on a 3-region workload with no cross traffic
// the interference graph must fall apart into exactly 3 components that
// partition the units, switches, and classes; one cross class must merge
// two of them.
func TestComponentsPartition(t *testing.T) {
	sc := multiRegionScenario(t, 3, 1, 0, 11)
	_, e := engineFor(t, sc, Options{})
	comps, err := e.components()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	unitSeen := make([]bool, len(e.units))
	classSeen := make([]bool, len(sc.Specs))
	for _, c := range comps {
		if len(c.units) == 0 || len(c.classes) == 0 || len(c.switches) == 0 {
			t.Fatalf("degenerate component %+v", c)
		}
		for _, id := range c.units {
			if unitSeen[id] {
				t.Fatalf("unit %d in two components", id)
			}
			unitSeen[id] = true
		}
		for _, ci := range c.classes {
			if classSeen[ci] {
				t.Fatalf("class %d in two components", ci)
			}
			classSeen[ci] = true
		}
	}
	for id, seen := range unitSeen {
		if !seen {
			t.Fatalf("unit %d in no component", id)
		}
	}
	// Components are ordered by lowest unit id.
	for i := 1; i < len(comps); i++ {
		if comps[i-1].units[0] >= comps[i].units[0] {
			t.Fatalf("components out of order: %v then %v", comps[i-1].units, comps[i].units)
		}
	}

	scX := multiRegionScenario(t, 3, 1, 1, 11)
	_, eX := engineFor(t, scX, Options{})
	compsX, err := eX.components()
	if err != nil {
		t.Fatal(err)
	}
	if len(compsX) != 2 {
		t.Fatalf("components with one cross class = %d, want 2", len(compsX))
	}
	if eX.stats.FootprintProbes == 0 {
		t.Fatal("footprint pre-pass ran no probes")
	}
}

// TestDecomposedSynthesis: the partitioned engine must produce valid
// plans on multi-region workloads, report the component count, agree
// with the joint engine on feasibility, and stay deterministic across
// worker counts.
func TestDecomposedSynthesis(t *testing.T) {
	sc := multiRegionScenario(t, 3, 1, 0, 11)
	joint, err := Synthesize(sc, Options{NoDecomposition: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	verifyPlan(t, sc, joint)
	if joint.Stats.Components != 1 {
		t.Fatalf("joint Components = %d, want 1", joint.Stats.Components)
	}
	var first *Plan
	for _, workers := range []int{1, 4} {
		plan, err := Synthesize(sc, Options{Parallelism: workers})
		if err != nil {
			t.Fatalf("decomposed workers=%d: %v", workers, err)
		}
		verifyPlan(t, sc, plan)
		if plan.Stats.Components != 3 {
			t.Fatalf("workers=%d: Components = %d, want 3", workers, plan.Stats.Components)
		}
		if len(plan.Stats.ComponentElapsed) != 3 {
			t.Fatalf("workers=%d: ComponentElapsed = %v, want 3 entries", workers, plan.Stats.ComponentElapsed)
		}
		if plan.Stats.FootprintProbes == 0 {
			t.Fatalf("workers=%d: no footprint probes recorded", workers)
		}
		if first == nil {
			first = plan
		} else if plan.String() != first.String() {
			t.Fatalf("decomposed plan depends on worker count:\n 1: %s\n%d: %s",
				first, workers, plan)
		}
	}
	// The plans must reach the same final configuration; step orders may
	// legitimately differ between joint and decomposed search.
	if got, want := len(first.Updates()), len(joint.Updates()); got != want {
		t.Fatalf("decomposed updates = %d, joint = %d", got, want)
	}
}

// TestDecomposedConformanceSingleComponent: whenever the partition finds
// a single component — connected diffs, every Figure 1 example, the
// infeasible gadget — the decomposed engine must return byte-identical
// plans to the joint engine, across all four backends at 1 and 4
// workers. Multi-component scenarios must still agree on feasibility and
// validity.
func TestDecomposedConformanceSingleComponent(t *testing.T) {
	cases := []conformanceCase{
		{name: "fig1-red-green", sc: config.Fig1RedGreen()},
		{name: "fig1-red-blue", sc: config.Fig1RedBlue()},
		{name: "fig1-waypoint", sc: config.Fig1RedBlueWaypoint()},
	}
	topo := topology.SmallWorld(60, 4, 0.3, 60)
	sc, err := config.Diamonds(topo, config.DiamondOptions{
		Pairs: 1, Property: config.Reachability, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, conformanceCase{name: "diamond-single", sc: sc})
	topoI := topology.SmallWorld(40, 4, 0.3, 21)
	scInf, err := config.Infeasible(topoI, config.InfeasibleOptions{Gadgets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases,
		conformanceCase{name: "infeasible-switch", sc: scInf},
		conformanceCase{name: "infeasible-2simple", sc: scInf, opts: Options{TwoSimple: true}},
		conformanceCase{name: "infeasible-rules", sc: scInf, opts: Options{RuleGranularity: true}},
	)
	for _, c := range cases {
		for _, kind := range []CheckerKind{CheckerIncremental, CheckerBatch, CheckerNuSMV, CheckerNetPlumber} {
			if kind == CheckerNetPlumber && !c.sc.Feasible {
				continue // no counterexamples: exhaustive impossibility proof is too slow
			}
			for _, workers := range []int{1, 4} {
				name := c.name + "/" + kind.String()
				jointOpts := c.opts
				jointOpts.Checker = kind
				jointOpts.Parallelism = workers
				jointOpts.NoDecomposition = true
				jointFeasible, jointPlan := synthesizeOutcome(t, name+"/joint", c.sc, jointOpts)
				decOpts := jointOpts
				decOpts.NoDecomposition = false
				feasible, plan := synthesizeOutcome(t, name+"/decomposed", c.sc, decOpts)
				if feasible != jointFeasible {
					t.Fatalf("%s workers=%d: decomposed feasible=%v, joint=%v",
						name, workers, feasible, jointFeasible)
				}
				if !feasible {
					continue
				}
				verifyPlan(t, c.sc, plan)
				if plan.Stats.Components <= 1 {
					if got, want := plan.String(), jointPlan.String(); got != want {
						t.Fatalf("%s workers=%d: single-component plan diverged:\n got %s\nwant %s",
							name, workers, got, want)
					}
				}
			}
		}
	}
}

// TestDecomposedSolveOrderMetamorphic: the order in which components are
// solved — whichever goroutine picks them up, whatever permutation the
// queue feeds — must never change the composed plan.
func TestDecomposedSolveOrderMetamorphic(t *testing.T) {
	sc := multiRegionScenario(t, 3, 1, 0, 11)
	base, err := Synthesize(sc, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Components != 3 {
		t.Fatalf("Components = %d, want 3", base.Stats.Components)
	}
	defer func() { testSolveOrder = nil }()
	for _, perm := range [][]int{{2, 1, 0}, {1, 2, 0}, {2, 0, 1}, {0, 2, 1}} {
		perm := perm
		testSolveOrder = func(n int) []int {
			if n != len(perm) {
				t.Fatalf("solve order hook saw %d components, want %d", n, len(perm))
			}
			return perm
		}
		plan, err := Synthesize(sc, Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("perm %v: %v", perm, err)
		}
		if plan.String() != base.String() {
			t.Fatalf("solve order %v changed the composed plan:\n got %s\nwant %s",
				perm, plan, base)
		}
	}
	testSolveOrder = nil
	// Concurrent component scheduling (workers > components use slots =
	// components) must agree too; run a few times to shake schedules.
	for i := 0; i < 3; i++ {
		plan, err := Synthesize(sc, Options{Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		if plan.String() != base.String() {
			t.Fatalf("concurrent solve changed the composed plan:\n got %s\nwant %s", plan, base)
		}
	}
}

// TestDecomposedInfeasibleRegion: a workload with one double-diamond
// gadget region has no switch-granularity ordering; the decomposed and
// joint engines must agree on impossibility, with the decomposed proof
// confined to the gadget's component.
func TestDecomposedInfeasibleRegion(t *testing.T) {
	topo := topology.SmallWorld(160, 6, 0.3, 7)
	sc, err := config.MultiRegion(topo, config.MultiRegionOptions{
		Regions: 2, InfeasibleRegions: 1,
		Property: config.Reachability, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Feasible {
		t.Fatal("scenario with a gadget region must be marked infeasible")
	}
	if _, err := Synthesize(sc, Options{NoDecomposition: true, Parallelism: 1}); err != ErrNoOrdering {
		t.Fatalf("joint err = %v, want ErrNoOrdering", err)
	}
	if _, err := Synthesize(sc, Options{Parallelism: 1}); err != ErrNoOrdering {
		t.Fatalf("decomposed err = %v, want ErrNoOrdering", err)
	}
	// At rule granularity the gadget is solvable; the decomposed engine
	// must find a valid composed plan there too.
	plan, err := Synthesize(sc, Options{RuleGranularity: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	verifyPlan(t, sc, plan)
	if plan.Stats.Components < 2 {
		t.Fatalf("rule-granularity Components = %d, want >= 2", plan.Stats.Components)
	}
}

// TestHeaderSpaceForcesJoint: the header-space backend tracks raw rule
// tables, so the session must never partition its searches.
func TestHeaderSpaceForcesJoint(t *testing.T) {
	sc := multiRegionScenario(t, 3, 1, 0, 11)
	plan, err := Synthesize(sc, Options{Checker: CheckerNetPlumber, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	verifyPlan(t, sc, plan)
	if plan.Stats.Components != 1 {
		t.Fatalf("Components = %d, want 1 (forced joint)", plan.Stats.Components)
	}
	if plan.Stats.FootprintProbes != 0 {
		t.Fatalf("FootprintProbes = %d, want 0 (pre-pass skipped)", plan.Stats.FootprintProbes)
	}
}

// TestDecomposedSessionStream: a long-lived session must serve
// decomposed syntheses back and forth, resyncing its warm structures
// between runs.
func TestDecomposedSessionStream(t *testing.T) {
	sc := multiRegionScenario(t, 3, 1, 0, 11)
	s, err := NewSession(sc.Topo, sc.Init, sc.Specs, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		fwd, err := s.Synthesize(sc.Final)
		if err != nil {
			t.Fatalf("round %d forward: %v", round, err)
		}
		verifyPlan(t, sc, fwd)
		if fwd.Stats.Components != 3 {
			t.Fatalf("round %d forward: Components = %d, want 3", round, fwd.Stats.Components)
		}
		back, err := s.Synthesize(sc.Init)
		if err != nil {
			t.Fatalf("round %d back: %v", round, err)
		}
		if back.Stats.Components != 3 {
			t.Fatalf("round %d back: Components = %d, want 3", round, back.Stats.Components)
		}
	}
	if s.Runs() != 4 {
		t.Fatalf("runs = %d, want 4", s.Runs())
	}
}

// TestDecomposedFailureResync: when one component of a decomposed run
// fails, the components that already succeeded have left their classes'
// warm structures at the final tables. The session must pull every
// structure back to its current configuration — a regression here
// corrupts every subsequent synthesis served by the session.
func TestDecomposedFailureResync(t *testing.T) {
	topo := topology.SmallWorld(160, 6, 0.3, 7)
	sc, err := config.MultiRegion(topo, config.MultiRegionOptions{
		Regions: 2, InfeasibleRegions: 1,
		Property: config.Reachability, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(sc.Topo, sc.Init, sc.Specs, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := s.Synthesize(sc.Final); err != ErrNoOrdering {
			t.Fatalf("attempt %d: err = %v, want ErrNoOrdering", attempt, err)
		}
		if d := config.Diff(s.Current(), sc.Init); len(d) != 0 {
			t.Fatalf("attempt %d: session advanced despite failure (diff %v)", attempt, d)
		}
		// Every warm structure must be back at the initial configuration,
		// including the classes of the components that succeeded before
		// the gadget component failed.
		for i, k := range s.ks {
			for _, sw := range config.Diff(sc.Init, sc.Final) {
				if !k.Table(sw).Equal(sc.Init.Table(sw)) {
					t.Fatalf("attempt %d: class %d structure holds a stale table on sw%d after failed run",
						attempt, i, sw)
				}
			}
		}
	}
}
