package core

import (
	"context"
	"errors"
	"runtime"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/kripke"
	"netupdate/internal/mc"
	"netupdate/internal/network"
)

// Synthesize runs ORDERUPDATE (Figure 4): it searches for a sequence of
// updates transforming the scenario's initial configuration into its
// final configuration such that every intermediate configuration
// satisfies every class specification, inserting waits between updates
// (careful sequences, Definition 5) and then removing unnecessary waits.
// With Options.Parallelism != 1 the search fans the top of the DFS out to
// a worker pool (see parallel.go); the sequential path is used for small
// unit counts where fan-out cannot pay for itself. It returns
// ErrNoOrdering if no simple careful sequence exists at the requested
// granularity.
//
// Synthesize is the one-shot entry point: it is a thin wrapper that opens
// a Session for the scenario's endpoints and serves a single target.
// Callers facing a stream of configuration changes over one topology
// should hold a Session (or the netupdate.Synthesizer façade) instead and
// let the per-class structures, label tables, and engine scratch stay
// warm between syntheses.
func Synthesize(sc *config.Scenario, opts Options) (*Plan, error) {
	start := time.Now()
	s, err := NewSession(sc.Topo, sc.Init, sc.Specs, opts)
	if err != nil {
		return nil, err
	}
	s.ephemeral = true
	plan, err := s.synthesize(context.Background(), sc.Name, sc.Final)
	if plan != nil {
		// One-shot semantics: Elapsed covers structure construction too,
		// as it did before the session refactor. (Session callers get
		// per-run time — construction amortizes across their stream.)
		plan.Stats.Elapsed = time.Since(start)
	}
	return plan, err
}

// Search-control sentinels (not terminal failures):
var (
	// errNotFound signals exhaustion of a subtree.
	errNotFound = errors.New("core: subtree exhausted")
	// errDeferred signals that a subtree's outcome is pending on emitted
	// tasks (parallel fan-out): it is not exhausted, merely handed off.
	errDeferred = errors.New("core: subtree deferred to workers")
	// errCancelled signals cooperative cancellation (another worker won,
	// or the coordinator is shutting the search down).
	errCancelled = errors.New("core: search cancelled")
	// errEnoughPlans aborts the collect-mode DFS (MinimizeCompletionTime)
	// once the candidate cap is reached.
	errEnoughPlans = errors.New("core: enough plan candidates")
)

type frame struct {
	class int
	delta *kripke.Delta
	token mc.Token
}

type pattern struct {
	relevant, value bitset
}

// minParallelUnits is the unit count under which the search always runs
// sequentially: with only a handful of units the whole tree is cheaper
// than cloning per-worker structures.
const minParallelUnits = 6

type engine struct {
	sc    *config.Scenario
	opts  Options
	units []unit
	order []int

	ks       []*kripke.K
	checkers []mc.Checker
	// canSkip[i] marks checker i as mc.DeltaInvariant: an empty per-class
	// delta lets the engine skip its Update/verdict round-trip entirely.
	canSkip []bool
	// statsBase snapshots each persistent checker's cumulative counters
	// at attach time: session checkers live across runs, so per-run stats
	// are deltas against this baseline.
	statsBase []mc.Stats

	curTables map[int]network.Table

	// visited is this engine's private visited set (the V of Figure 4 for
	// its own DFS); shared carries the cross-worker learning state.
	visited *bitsetSet
	shared  *sharedState

	// Fan-out plumbing, used only by the generator engine: at depth
	// fanDepth the DFS emits the current path as a task instead of
	// recursing. Zero disables emission. deferredSeen records every
	// configuration whose subtree outcome is pending in a worker
	// (emitted directly or an ancestor of an emission), so that pruning
	// a revisit of one is not mistaken for exhaustion — without it the
	// generator could publish ancestors of pending subtrees to the
	// shared dead set.
	fanDepth     int
	emit         func(prefix []int) error
	path         []int
	deferredSeen *bitsetSet

	// Collect mode (Options.MinimizeCompletionTime, see runCollect): the
	// sequential DFS records every complete unit order it reaches — up to
	// maxPlanCandidates — instead of returning the first, and the run
	// picks the candidate whose DAG minimizes estimated completion time.
	collecting bool
	collected  [][]int

	stop *abort

	deadline    time.Time
	hasDeadline bool

	// ctx/ctxDone carry the caller's request context (see
	// Session.SynthesizeContext): the DFS polls ctxDone next to the
	// deadline check, so an expired or canceled request stops the search
	// promptly instead of running to the engine's own timeout. Nil when
	// the caller did not supply a context.
	ctx     context.Context
	ctxDone <-chan struct{}

	// cexBuf is the pooled counterexample-switch buffer handed out by
	// applyAndCheck. Each failed check overwrites it, so callers must
	// consume the returned slice (learn does, immediately) before the next
	// check. Private per engine, so parallel workers never contend.
	cexBuf []int

	// Wait-removal scratch (see waits.go): epoch-stamped BFS marks, the
	// BFS queue/start buffers, and the class-output comparison buffers.
	// Private per engine, so parallel workers never contend.
	bfsSeen   []int32
	bfsEpoch  int32
	bfsQueue  []int
	startsBuf []int
	actsA     []network.Action
	actsB     []network.Action

	// Plan-cache dead-configuration sink (cache.go): a sequential search
	// with a cache attached records what markDead proves here, up to
	// recordDeadCap, so the learned dead set can persist per instance.
	// Zero cap disables recording (the default, and always for parallel
	// runs — their proofs land in shared.dead instead).
	recordDead    []bitset
	recordDeadCap int

	stats Stats
}

// newEngineShell builds an engine minus its per-class structures: units,
// search order, deadline, and per-run scratch. The session attaches its
// warm Kripke structures and checkers afterwards; scr (when non-nil)
// supplies pooled scratch reset in place instead of reallocated.
func newEngineShell(sc *config.Scenario, opts Options, scr *engineScratch) (*engine, error) {
	units, err := computeUnits(sc, opts.RuleGranularity, opts.TwoSimple)
	if err != nil {
		return nil, err
	}
	return newEngineShellWith(sc, opts, units, scr), nil
}

// newEngineShellWith is newEngineShell for callers that already hold the
// unit list — component sub-searches reuse the joint shell's units
// (renumbered component-locally) rather than re-deriving the diff and
// the destination ranks per component.
func newEngineShellWith(sc *config.Scenario, opts Options, units []unit, scr *engineScratch) *engine {
	e := &engine{
		sc:    sc,
		opts:  opts,
		units: units,
		stop:  newAbort(),
	}
	if scr != nil {
		scr.visited.reset()
		clear(scr.curTables)
		e.visited = scr.visited
		e.curTables = scr.curTables
		e.bfsSeen, e.bfsEpoch = scr.bfsSeen, scr.bfsEpoch
		e.bfsQueue, e.startsBuf = scr.bfsQueue, scr.startsBuf
		e.actsA, e.actsB = scr.actsA, scr.actsB
	} else {
		e.visited = newBitsetSet()
		e.curTables = map[int]network.Table{}
	}
	workers := e.workerCount()
	e.shared = newSharedState(workers > 1, opts.FirstPlanWins)
	e.stats.Units = len(units)
	if opts.NoHeuristicOrder {
		e.order = make([]int, len(units))
		for i := range e.order {
			e.order[i] = i
		}
	} else {
		e.order = orderUnits(units)
	}
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
		e.hasDeadline = true
	}
	for _, u := range units {
		e.curTables[u.sw] = sc.Init.Table(u.sw)
	}
	return e
}

// bindContext attaches a request context to the engine: the DFS polls it
// for cancellation, and a context deadline earlier than the one derived
// from Options.Timeout tightens the engine deadline.
func (e *engine) bindContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	e.ctx = ctx
	e.ctxDone = ctx.Done()
	if d, ok := ctx.Deadline(); ok && (!e.hasDeadline || d.Before(e.deadline)) {
		e.deadline = d
		e.hasDeadline = true
	}
}

// ctxErr maps a finished context to the engine's typed failures:
// deadline expiry is a timeout, everything else a cancellation.
func ctxErr(ctx context.Context) error {
	if errors.Is(context.Cause(ctx), context.DeadlineExceeded) {
		return ErrTimeout
	}
	return ErrCanceled
}

// snapshotCheckerStats records the attached checkers' cumulative counters
// so collectCheckerStats reports this run's work only.
func (e *engine) snapshotCheckerStats() {
	e.statsBase = e.statsBase[:0]
	for _, c := range e.checkers {
		e.statsBase = append(e.statsBase, c.Stats())
	}
}

// workerCount resolves Options.Parallelism: 0 means GOMAXPROCS, and tiny
// searches always run sequentially.
func (e *engine) workerCount() int {
	p := e.opts.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if len(e.units) < minParallelUnits {
		return 1
	}
	return p
}

func (e *engine) run() ([]Step, error) {
	empty := newBitset(len(e.units))
	e.visited.add(empty)
	if e.opts.MinimizeCompletionTime {
		// Candidate enumeration must be deterministic, so collect mode
		// always runs sequentially with a private (nil) dead set.
		e.shared = newSharedState(false, false)
		return e.runCollect(empty)
	}
	if workers := e.workerCount(); workers > 1 {
		return e.runParallel(empty, workers)
	}
	steps, err := e.dfs(empty, 0)
	if err != nil {
		if errors.Is(err, errNotFound) {
			return nil, ErrNoOrdering
		}
		return nil, err
	}
	return steps, nil
}

// maxPlanCandidates caps the completion-time tie-breaker's enumeration:
// the collect-mode DFS stops after this many complete orderings. Small on
// purpose — the first candidates diverge earliest in the heuristic order
// and so differ most, and each candidate costs a full search descent.
const maxPlanCandidates = 4

// runCollect is the MinimizeCompletionTime search: a sequential DFS that
// records up to maxPlanCandidates complete unit orders (every one fully
// verified by applyAndCheck on the way down), scores each candidate's
// dependency DAG by estimated completion time, and returns the minimum.
// Candidate 0 is the plan the default search would have returned, and
// ties resolve to the earliest candidate, so an indifferent latency model
// reproduces the default plan byte-for-byte. The DFS leaves the warm
// structures back at the initial configuration (every candidate descent
// is fully reverted); the session resync handles that like any failed
// run's state.
func (e *engine) runCollect(empty bitset) ([]Step, error) {
	e.collecting = true
	_, err := e.dfs(empty, 0)
	e.collecting = false
	switch {
	case err == nil:
		return nil, nil // zero units: the empty plan
	case errors.Is(err, errNotFound), errors.Is(err, errEnoughPlans):
		// Exhausted or capped; candidates (if any) are in e.collected.
	case errors.Is(err, ErrNoOrdering) && len(e.collected) > 0:
		// Early termination fired after candidates were found; the
		// candidates are verified plans, so the "no ordering" proof is
		// moot (and indicates only that the solver's constraint set
		// over-tightened after the fact).
	default:
		return nil, err
	}
	if len(e.collected) == 0 {
		return nil, ErrNoOrdering
	}
	best, bestScore := 0, int64(-1)
	for i, path := range e.collected {
		score := e.buildDAG(e.stepsForPath(path)).completionEstimate()
		if bestScore < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return e.stepsForPath(e.collected[best]), nil
}

// stepsForPath materializes the careful step sequence for a recorded unit
// order, mirroring the success unwind of the default DFS (cumulative
// tables at rule granularity, a wait between every pair of updates). It
// uses and then restores e.curTables, which collect-mode exhaustion left
// at the initial tables.
func (e *engine) stepsForPath(path []int) []Step {
	steps := make([]Step, 0, 2*len(path))
	for n, ui := range path {
		u := e.units[ui]
		tbl := e.unitTable(u)
		e.curTables[u.sw] = tbl
		if n > 0 {
			steps = append(steps, Step{Wait: true})
		}
		steps = append(steps, Step{
			Switch: u.sw, Table: tbl.Clone(),
			IsRule: u.isRule, RuleAdd: u.add, Rule: u.rule,
		})
	}
	for _, u := range e.units {
		e.curTables[u.sw] = e.sc.Init.Table(u.sw)
	}
	return steps
}

// dfs explores update orders from the current configuration (encoded by
// the applied bitmask). It returns the remaining steps on success,
// errNotFound when the subtree is exhausted, errDeferred when parts of it
// were emitted as worker tasks, or a terminal error.
func (e *engine) dfs(applied bitset, depth int) ([]Step, error) {
	if depth == len(e.units) {
		if e.collecting {
			// Record the complete order and keep searching: the collect
			// run behaves like a failure here so the DFS backtracks into
			// the remaining candidates.
			e.collected = append(e.collected, append([]int(nil), e.path...))
			if len(e.collected) >= maxPlanCandidates {
				return nil, errEnoughPlans
			}
			return nil, errNotFound
		}
		return nil, nil
	}
	if e.stop.isSet() {
		return nil, errCancelled
	}
	if e.hasDeadline && time.Now().After(e.deadline) {
		return nil, ErrTimeout
	}
	if e.ctxDone != nil {
		select {
		case <-e.ctxDone:
			return nil, ctxErr(e.ctx)
		default:
		}
	}
	if e.fanDepth > 0 && depth == e.fanDepth {
		if err := e.emit(e.path); err != nil {
			return nil, err
		}
		e.deferredSeen.add(applied)
		return nil, errDeferred
	}
	deferred := false
	for _, ui := range e.order {
		if applied.get(ui) {
			continue
		}
		u := e.units[ui]
		if u.requires >= 0 && !applied.get(u.requires) {
			continue // finalize steps wait for their merge step
		}
		next := applied.set(ui)
		if e.collecting && depth+1 == len(e.units) {
			// Collect mode: the unique all-units configuration is reached
			// once per distinct order; gating it through the visited set
			// would cap the enumeration at one candidate.
		} else if !e.visited.add(next) {
			e.stats.VisitedPruned++
			if e.deferredSeen != nil && e.deferredSeen.has(next) {
				// The first visit handed (part of) this subtree to a
				// worker; its outcome is pending, not exhausted.
				deferred = true
			}
			continue
		}
		if sh := e.shared; sh.dead != nil {
			if sh.claimOnEntry {
				if !sh.dead.add(next) {
					e.stats.VisitedPruned++
					continue
				}
			} else if sh.dead.has(next) {
				e.stats.VisitedPruned++
				continue
			}
		}
		if e.matchesWrong(next) {
			e.stats.WrongPruned++
			e.markDead(next)
			continue
		}

		newTbl := e.unitTable(u)
		oldTbl := e.curTables[u.sw]
		frames, failed, cexSwitches, err := e.applyAndCheck(u.sw, newTbl)
		if err != nil {
			e.revert(frames)
			return nil, err
		}
		if failed {
			e.revert(frames)
			e.markDead(next)
			if len(cexSwitches) > 0 && !e.opts.NoCexLearning {
				if terminate := e.learn(cexSwitches, next); terminate {
					e.stats.EarlyTerminate = true
					return nil, ErrNoOrdering
				}
			}
			continue
		}
		e.curTables[u.sw] = newTbl
		if e.fanDepth > 0 || e.collecting {
			e.path = append(e.path, ui) // read by the generator's emit and collect leaves
		}
		rest, err := e.dfs(next, depth+1)
		if e.fanDepth > 0 || e.collecting {
			e.path = e.path[:len(e.path)-1]
		}
		if err == nil {
			step := Step{
				Switch: u.sw, Table: newTbl.Clone(),
				IsRule: u.isRule, RuleAdd: u.add, Rule: u.rule,
			}
			if len(rest) == 0 {
				return []Step{step}, nil
			}
			return append([]Step{step, {Wait: true}}, rest...), nil
		}
		e.curTables[u.sw] = oldTbl
		e.revert(frames)
		e.stats.Backtracks++
		switch {
		case errors.Is(err, errDeferred):
			deferred = true
		case errors.Is(err, errNotFound):
			e.markDead(next)
		default:
			return nil, err
		}
	}
	if deferred {
		e.deferredSeen.add(applied)
		return nil, errDeferred
	}
	return nil, errNotFound
}

// markDead publishes a configuration proven wrong or exhausted to the
// cross-worker dead set. In claim-on-entry (first-plan-wins) mode the
// configuration was already inserted when it was claimed.
func (e *engine) markDead(b bitset) {
	if sh := e.shared; sh.dead != nil && !sh.claimOnEntry {
		sh.dead.add(b)
	}
	if e.recordDeadCap > 0 && len(e.recordDead) < e.recordDeadCap {
		// Bitsets are copy-on-set, so retaining b is safe.
		e.recordDead = append(e.recordDead, b)
	}
}

// applyAndCheck installs the new table for sw in every class structure
// and re-checks each. On failure it reports the counterexample switches
// (if any) and leaves reverting to the caller via the returned frames.
// Classes the unit does not touch — the update yields an empty delta
// because the switch change is invisible to the class's forwarding — skip
// the checker round-trip entirely when the backend's verdict depends only
// on the class structure (mc.DeltaInvariant); most units in multi-class
// scenarios touch one class, so this is the common case.
func (e *engine) applyAndCheck(sw int, tbl network.Table) (frames []frame, failed bool, cexSwitches []int, err error) {
	for ci := range e.ks {
		delta, uerr := e.ks[ci].UpdateSwitch(sw, tbl)
		if uerr != nil {
			var loop *kripke.ErrLoop
			if errors.As(uerr, &loop) {
				// The update is applied; roll it back after learning.
				e.ks[ci].Revert(delta)
				e.cexBuf = e.ks[ci].AppendSwitches(e.cexBuf[:0], loop.IDs)
				return frames, true, e.cexBuf, nil
			}
			return frames, false, nil, uerr
		}
		if len(delta.Changed()) == 0 && e.canSkip[ci] {
			e.stats.ClassSkips++
			frames = append(frames, frame{class: ci, delta: delta, token: nil})
			continue
		}
		verdict, tok := e.checkers[ci].Update(delta)
		e.stats.Checks++
		frames = append(frames, frame{class: ci, delta: delta, token: tok})
		if !verdict.OK {
			var sws []int
			if verdict.HasCex && len(verdict.Cex) > 0 {
				e.cexBuf = e.ks[ci].AppendSwitches(e.cexBuf[:0], verdict.Cex)
				sws = e.cexBuf
			}
			return frames, true, sws, nil
		}
	}
	return frames, false, nil, nil
}

// revert undoes applied frames in reverse order. A nil token marks a
// frame whose checker never saw the update (class skip or stateless
// replay), so only the Kripke structure is rolled back.
func (e *engine) revert(frames []frame) {
	for i := len(frames) - 1; i >= 0; i-- {
		f := frames[i]
		if f.token != nil {
			e.checkers[f.class].Revert(f.token)
		}
		e.ks[f.class].Revert(f.delta)
	}
}

// unitTable computes the table installed on u.sw when u is applied on top
// of the current table state.
func (e *engine) unitTable(u unit) network.Table {
	if !u.isRule {
		return u.newTable
	}
	cur := e.curTables[u.sw]
	if u.add {
		out := cur.Clone()
		return append(out, u.rule)
	}
	out := make(network.Table, 0, len(cur))
	removed := false
	for _, r := range cur {
		if !removed && ruleEq(r, u.rule) {
			removed = true
			continue
		}
		out = append(out, r)
	}
	return out
}

// learn records a wrong-configuration pattern from a counterexample
// (Section 4.2.A) and feeds the ordering constraint to the SAT solver
// (4.2.B); both live in the shared state, so every worker benefits. It
// returns true when the solver proves no ordering can exist.
func (e *engine) learn(cexSwitches []int, cfg bitset) bool {
	e.stats.CexLearned++
	relevant := newBitset(len(e.units))
	value := newBitset(len(e.units))
	var appliedUnits, unappliedUnits []int
	swSet := map[int]bool{}
	for _, sw := range cexSwitches {
		swSet[sw] = true
	}
	for _, u := range e.units {
		if !swSet[u.sw] {
			continue
		}
		relevant = relevant.set(u.id)
		if cfg.get(u.id) {
			value = value.set(u.id)
			appliedUnits = append(appliedUnits, u.id)
		} else {
			unappliedUnits = append(unappliedUnits, u.id)
		}
	}
	if relevant.count() == 0 {
		return false // counterexample mentions no updating switch: ignore
	}
	sh := e.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.addPattern(pattern{relevant: relevant, value: value})
	sh.cons = append(sh.cons, cexCons{applied: appliedUnits, unapplied: unappliedUnits})
	if e.opts.NoEarlyTermination {
		return false
	}
	e.stats.SATCalls++
	return !sh.et.addCexConstraint(appliedUnits, unappliedUnits)
}

func (e *engine) matchesWrong(cfg bitset) bool {
	for _, p := range e.shared.patterns() {
		if cfg.matchesPattern(p.relevant, p.value) {
			return true
		}
	}
	return false
}

func (e *engine) collectCheckerStats() {
	for i, c := range e.checkers {
		s := c.Stats()
		var base mc.Stats
		if i < len(e.statsBase) {
			base = e.statsBase[i]
		}
		e.stats.StatesLabeled += s.StatesLabeled - base.StatesLabeled
		e.stats.Relabels += s.Relabels - base.Relabels
		e.stats.LabelsInterned += s.LabelsInterned - base.LabelsInterned
		e.stats.ExtendHits += s.ExtendHits - base.ExtendHits
		e.stats.ExtendMisses += s.ExtendMisses - base.ExtendMisses
	}
}

// unitSwitches returns the switches this run's units touch, ascending
// and deduplicated (computeUnits emits units per diff switch in
// ascending order). These are the only switches a run can leave deviating
// from its endpoint configurations, which is what lets the session
// restrict its post-run rebind sweep to them.
func (e *engine) unitSwitches() []int {
	var out []int
	for _, u := range e.units {
		if n := len(out); n == 0 || out[n-1] != u.sw {
			out = append(out, u.sw)
		}
	}
	return out
}

func countWaits(steps []Step) int {
	n := 0
	for _, s := range steps {
		if s.Wait {
			n++
		}
	}
	return n
}
