package core

import (
	"errors"
	"fmt"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/kripke"
	"netupdate/internal/mc"
	"netupdate/internal/network"
)

// Synthesize runs ORDERUPDATE (Figure 4): it searches for a sequence of
// updates transforming the scenario's initial configuration into its
// final configuration such that every intermediate configuration
// satisfies every class specification, inserting waits between updates
// (careful sequences, Definition 5) and then removing unnecessary waits.
// It returns ErrNoOrdering if no simple careful sequence exists at the
// requested granularity.
func Synthesize(sc *config.Scenario, opts Options) (*Plan, error) {
	start := time.Now()
	e, err := newEngine(sc, opts)
	if err != nil {
		return nil, err
	}
	steps, err := e.run()
	if err != nil {
		return nil, err
	}
	e.stats.WaitsBefore = countWaits(steps)
	if !opts.NoWaitRemoval {
		wrStart := time.Now()
		steps = e.removeWaits(steps)
		e.stats.WaitRemovalTime = time.Since(wrStart)
	}
	e.stats.WaitsAfter = countWaits(steps)
	e.collectCheckerStats()
	e.stats.Elapsed = time.Since(start)
	return &Plan{Steps: steps, Stats: e.stats}, nil
}

// errNotFound signals exhaustion of a subtree (not a terminal failure).
var errNotFound = errors.New("core: subtree exhausted")

type frame struct {
	class int
	delta *kripke.Delta
	token mc.Token
}

type pattern struct {
	relevant, value bitset
}

type engine struct {
	sc    *config.Scenario
	opts  Options
	units []unit
	order []int

	ks       []*kripke.K
	checkers []mc.Checker

	curTables map[int]network.Table

	visited map[string]bool
	wrong   []pattern
	et      *earlyTerm

	deadline    time.Time
	hasDeadline bool

	stats Stats
}

func newEngine(sc *config.Scenario, opts Options) (*engine, error) {
	units, err := computeUnits(sc, opts.RuleGranularity, opts.TwoSimple)
	if err != nil {
		return nil, err
	}
	e := &engine{
		sc:        sc,
		opts:      opts,
		units:     units,
		visited:   map[string]bool{},
		et:        newEarlyTerm(),
		curTables: map[int]network.Table{},
	}
	e.stats.Units = len(units)
	if opts.NoHeuristicOrder {
		e.order = make([]int, len(units))
		for i := range e.order {
			e.order[i] = i
		}
	} else {
		e.order = orderUnits(units)
	}
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
		e.hasDeadline = true
	}
	for _, u := range units {
		e.curTables[u.sw] = sc.Init.Table(u.sw)
	}
	factory := opts.Checker.factory()
	// Verify the final configuration first: if it violates the spec, no
	// sequence can be correct.
	for _, cs := range sc.Specs {
		kf, err := kripke.Build(sc.Topo, sc.Final, cs.Class)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFinalViolation, err)
		}
		chk, err := mc.NewIncremental(kf, cs.Formula)
		if err != nil {
			return nil, err
		}
		if !chk.Check().OK {
			return nil, fmt.Errorf("%w: class %v", ErrFinalViolation, cs.Class)
		}
	}
	// Build the per-class structures over the initial configuration and
	// run the initial full check (Figure 4, line 7).
	for _, cs := range sc.Specs {
		k, err := kripke.Build(sc.Topo, sc.Init, cs.Class)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInitialViolation, err)
		}
		chk, err := factory(k, cs.Formula)
		if err != nil {
			return nil, err
		}
		e.stats.Checks++
		if !chk.Check().OK {
			return nil, fmt.Errorf("%w: class %v", ErrInitialViolation, cs.Class)
		}
		e.ks = append(e.ks, k)
		e.checkers = append(e.checkers, chk)
	}
	return e, nil
}

func (e *engine) run() ([]Step, error) {
	empty := newBitset(len(e.units))
	e.visited[empty.key()] = true
	steps, err := e.dfs(empty, 0)
	if err != nil {
		if errors.Is(err, errNotFound) {
			return nil, ErrNoOrdering
		}
		return nil, err
	}
	return steps, nil
}

// dfs explores update orders from the current configuration (encoded by
// the applied bitmask). It returns the remaining steps on success,
// errNotFound when the subtree is exhausted, or a terminal error.
func (e *engine) dfs(applied bitset, depth int) ([]Step, error) {
	if depth == len(e.units) {
		return nil, nil
	}
	if e.hasDeadline && time.Now().After(e.deadline) {
		return nil, ErrTimeout
	}
	for _, ui := range e.order {
		if applied.get(ui) {
			continue
		}
		u := e.units[ui]
		if u.requires >= 0 && !applied.get(u.requires) {
			continue // finalize steps wait for their merge step
		}
		next := applied.set(ui)
		key := next.key()
		if e.visited[key] {
			e.stats.VisitedPruned++
			continue
		}
		if e.matchesWrong(next) {
			e.stats.WrongPruned++
			e.visited[key] = true
			continue
		}
		e.visited[key] = true

		newTbl := e.unitTable(u)
		oldTbl := e.curTables[u.sw]
		frames, failed, cexSwitches, err := e.applyAndCheck(u.sw, newTbl)
		if err != nil {
			e.revert(frames)
			return nil, err
		}
		if failed {
			e.revert(frames)
			if len(cexSwitches) > 0 && !e.opts.NoCexLearning {
				if terminate := e.learn(cexSwitches, next); terminate {
					e.stats.EarlyTerminate = true
					return nil, ErrNoOrdering
				}
			}
			continue
		}
		e.curTables[u.sw] = newTbl
		rest, err := e.dfs(next, depth+1)
		if err == nil {
			step := Step{
				Switch: u.sw, Table: newTbl.Clone(),
				IsRule: u.isRule, RuleAdd: u.add, Rule: u.rule,
			}
			if len(rest) == 0 {
				return []Step{step}, nil
			}
			return append([]Step{step, {Wait: true}}, rest...), nil
		}
		e.curTables[u.sw] = oldTbl
		e.revert(frames)
		e.stats.Backtracks++
		if !errors.Is(err, errNotFound) {
			return nil, err
		}
	}
	return nil, errNotFound
}

// applyAndCheck installs the new table for sw in every class structure
// and re-checks each. On failure it reports the counterexample switches
// (if any) and leaves reverting to the caller via the returned frames.
func (e *engine) applyAndCheck(sw int, tbl network.Table) (frames []frame, failed bool, cexSwitches []int, err error) {
	for ci := range e.ks {
		delta, uerr := e.ks[ci].UpdateSwitch(sw, tbl)
		if uerr != nil {
			var loop *kripke.ErrLoop
			if errors.As(uerr, &loop) {
				// The update is applied; roll it back after learning.
				e.ks[ci].Revert(delta)
				return frames, true, switchesOfStates(loop.Cycle), nil
			}
			return frames, false, nil, uerr
		}
		verdict, tok := e.checkers[ci].Update(delta)
		e.stats.Checks++
		frames = append(frames, frame{class: ci, delta: delta, token: tok})
		if !verdict.OK {
			var sws []int
			if verdict.HasCex && len(verdict.Cex) > 0 {
				sws = switchesOfIDs(e.ks[ci], verdict.Cex)
			}
			return frames, true, sws, nil
		}
	}
	return frames, false, nil, nil
}

// revert undoes applied frames in reverse order.
func (e *engine) revert(frames []frame) {
	for i := len(frames) - 1; i >= 0; i-- {
		f := frames[i]
		e.checkers[f.class].Revert(f.token)
		e.ks[f.class].Revert(f.delta)
	}
}

// unitTable computes the table installed on u.sw when u is applied on top
// of the current table state.
func (e *engine) unitTable(u unit) network.Table {
	if !u.isRule {
		return u.newTable
	}
	cur := e.curTables[u.sw]
	if u.add {
		out := cur.Clone()
		return append(out, u.rule)
	}
	out := make(network.Table, 0, len(cur))
	removed := false
	for _, r := range cur {
		if !removed && ruleEq(r, u.rule) {
			removed = true
			continue
		}
		out = append(out, r)
	}
	return out
}

// learn records a wrong-configuration pattern from a counterexample
// (Section 4.2.A) and feeds the ordering constraint to the SAT solver
// (4.2.B). It returns true when the solver proves no ordering can exist.
func (e *engine) learn(cexSwitches []int, cfg bitset) bool {
	e.stats.CexLearned++
	relevant := newBitset(len(e.units))
	value := newBitset(len(e.units))
	var appliedUnits, unappliedUnits []int
	swSet := map[int]bool{}
	for _, sw := range cexSwitches {
		swSet[sw] = true
	}
	for _, u := range e.units {
		if !swSet[u.sw] {
			continue
		}
		relevant = relevant.set(u.id)
		if cfg.get(u.id) {
			value = value.set(u.id)
			appliedUnits = append(appliedUnits, u.id)
		} else {
			unappliedUnits = append(unappliedUnits, u.id)
		}
	}
	if relevant.count() == 0 {
		return false // counterexample mentions no updating switch: ignore
	}
	e.wrong = append(e.wrong, pattern{relevant: relevant, value: value})
	if e.opts.NoEarlyTermination {
		return false
	}
	e.stats.SATCalls++
	return !e.et.addCexConstraint(appliedUnits, unappliedUnits)
}

func (e *engine) matchesWrong(cfg bitset) bool {
	for _, p := range e.wrong {
		if cfg.matchesPattern(p.relevant, p.value) {
			return true
		}
	}
	return false
}

func (e *engine) collectCheckerStats() {
	for _, c := range e.checkers {
		s := c.Stats()
		e.stats.StatesLabeled += s.StatesLabeled
	}
}

func switchesOfStates(states []kripke.State) []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range states {
		if !seen[s.Sw] {
			seen[s.Sw] = true
			out = append(out, s.Sw)
		}
	}
	return out
}

func switchesOfIDs(k *kripke.K, ids []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, id := range ids {
		sw := k.StateAt(id).Sw
		if !seen[sw] {
			seen[sw] = true
			out = append(out, sw)
		}
	}
	return out
}

func countWaits(steps []Step) int {
	n := 0
	for _, s := range steps {
		if s.Wait {
			n++
		}
	}
	return n
}
