package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/ltl"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

func repairSession(t *testing.T, sc *config.Scenario, opts Options) *Session {
	t.Helper()
	s, err := NewSession(sc.Topo, sc.Init, sc.Specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRepairValidation(t *testing.T) {
	sc := config.Fig1RedBlue()
	s := repairSession(t, sc, Options{Parallelism: 1})
	if _, err := s.Repair(nil, nil); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("repair before any plan: err = %v, want ErrNoPlan", err)
	}
	plan, err := s.Synthesize(sc.Final)
	if err != nil {
		t.Fatal(err)
	}
	n := len(plan.Updates())
	for _, bad := range [][]int{{n}, {-1}, {0, 0}} {
		if _, err := s.Repair(bad, nil); !errors.Is(err, ErrBadCommit) {
			t.Fatalf("committed %v: err = %v, want ErrBadCommit", bad, err)
		}
	}
	// A committed step whose DAG predecessors are missing is rejected.
	closed := true
	for j, preds := range plan.DAG.Preds {
		if len(preds) > 0 {
			closed = false
			if _, err := s.Repair([]int{j}, nil); !errors.Is(err, ErrBadCommit) {
				t.Fatalf("non-closed {%d}: err = %v, want ErrBadCommit", j, err)
			}
			break
		}
	}
	if closed {
		t.Fatal("plan DAG has no dependency edge; validation case lost")
	}
	// Validation failures must not move the session.
	if d := config.Diff(s.Current(), sc.Final); len(d) != 0 {
		t.Fatalf("session moved off its configuration by rejected repairs: %v", d)
	}
}

// crashState reconstructs the configuration reached by committing the
// given plan updates from init.
func crashState(init *config.Config, plan *Plan, committed []int) *config.Config {
	crash := init.Clone()
	ups := plan.Updates()
	for _, j := range committed {
		crash.SetTable(ups[j].Switch, ups[j].Table.Clone())
	}
	return crash
}

// TestFaultRepairMetamorphicPrefix is the repair soundness test: for
// every example scenario and every plan step k, kill the update at step k
// — steps 0..k-1 committed — and Repair. The repair plan must be byte-
// identical to a fresh synthesis from the crash-state configuration (the
// session search is deterministic, so warm-resumed and cold search must
// agree exactly), and the composed trace — committed prefix, then repair
// plan — must reach the final configuration with every intermediate
// configuration satisfying every class specification.
func TestFaultRepairMetamorphicPrefix(t *testing.T) {
	cases := []*config.Scenario{
		config.Fig1RedGreen(),
		config.Fig1RedBlue(),
		config.Fig1RedBlueWaypoint(),
	}
	topo := topology.SmallWorld(60, 4, 0.3, 60)
	sc, err := config.Diamonds(topo, config.DiamondOptions{
		Pairs: 2, Property: config.Reachability, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, sc)

	opts := Options{Parallelism: 1}
	for _, sc := range cases {
		base, err := Synthesize(sc, opts)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		for k := 0; k <= len(base.Updates()); k++ {
			s := repairSession(t, sc, opts)
			if _, err := s.Synthesize(sc.Final); err != nil {
				t.Fatalf("%s: %v", sc.Name, err)
			}
			committed := make([]int, k)
			for i := range committed {
				committed[i] = i
			}
			rep, err := s.Repair(committed, nil)
			if err != nil {
				t.Fatalf("%s k=%d: repair: %v", sc.Name, k, err)
			}
			if rep.Stats.RepairCommitted != k {
				t.Fatalf("%s k=%d: RepairCommitted = %d", sc.Name, k, rep.Stats.RepairCommitted)
			}
			crash := crashState(sc.Init, base, committed)
			// The composed execution: prefix states, then the repair plan's
			// states, every one spec-satisfying, ending exactly at final.
			for i, cfg := range base.Configs(sc.Init)[:k+1] {
				if !checkConfig(sc, cfg) {
					t.Fatalf("%s k=%d: committed prefix state %d violates the spec", sc.Name, k, i)
				}
			}
			repCfgs := rep.Configs(crash)
			for i, cfg := range repCfgs {
				if !checkConfig(sc, cfg) {
					t.Fatalf("%s k=%d: repair state %d violates the spec", sc.Name, k, i)
				}
			}
			if d := config.Diff(repCfgs[len(repCfgs)-1], sc.Final); len(d) != 0 {
				t.Fatalf("%s k=%d: composed plan misses final on %v", sc.Name, k, d)
			}
			// Metamorphic: warm repair == cold synthesis from the crash state.
			fresh, err := Synthesize(&config.Scenario{
				Name: sc.Name + "#fresh", Topo: sc.Topo,
				Init: crash, Final: sc.Final, Specs: sc.Specs,
			}, opts)
			if err != nil {
				t.Fatalf("%s k=%d: fresh synthesis from crash state: %v", sc.Name, k, err)
			}
			if got, want := rep.String(), fresh.String(); got != want {
				t.Fatalf("%s k=%d: repair diverged from fresh synthesis:\n got %s\nwant %s",
					sc.Name, k, got, want)
			}
			// The session advanced: it can serve the reverse update next.
			if d := config.Diff(s.Current(), sc.Final); len(d) != 0 {
				t.Fatalf("%s k=%d: session not at final after repair: %v", sc.Name, k, d)
			}
			if _, err := s.Synthesize(sc.Init); err != nil {
				t.Fatalf("%s k=%d: session unusable after repair: %v", sc.Name, k, err)
			}
		}
	}
}

// TestFaultRepairLadderEscalates: a repair target with no switch-
// granularity ordering (the double-diamond gadget) must not fail with
// ErrNoOrdering — the fallback ladder escalates the stuck component to a
// 2-simple search and returns a valid careful plan.
func TestFaultRepairLadderEscalates(t *testing.T) {
	topoI := topology.SmallWorld(40, 4, 0.3, 21)
	scInf, err := config.Infeasible(topoI, config.InfeasibleOptions{Gadgets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Control: an ordinary synthesis of the same delta is impossible.
	if _, err := Synthesize(scInf, Options{Parallelism: 1}); !errors.Is(err, ErrNoOrdering) {
		t.Fatalf("control synthesis: err = %v, want ErrNoOrdering", err)
	}
	s := repairSession(t, scInf, Options{Parallelism: 1})
	if _, err := s.Synthesize(scInf.Init); err != nil {
		t.Fatalf("no-op synthesis: %v", err)
	}
	rep, err := s.Repair(nil, scInf.Final)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if rep.Stats.EscalatedComponents == 0 {
		t.Fatal("no component escalated to 2-simple granularity")
	}
	if rep.Stats.TwoPhaseComponents != 0 {
		t.Fatalf("TwoPhaseComponents = %d; 2-simple escalation should have sufficed",
			rep.Stats.TwoPhaseComponents)
	}
	verifyPlan(t, scInf, rep)
	if d := config.Diff(s.Current(), scInf.Final); len(d) != 0 {
		t.Fatalf("session not at final after escalated repair: %v", d)
	}
}

// swapScenario has no careful update at any granularity: one class must
// keep visiting both A and B while its path flips from I-A-B-E to
// I-B-A-E. Updating I first skips A, A first skips B, B first forwards
// in a loop — and with a single class, rule granularity and 2-simple
// collapse to the same three cases. Only version-tagging can do it.
func swapScenario(t *testing.T) *config.Scenario {
	t.Helper()
	const (
		swI, swA, swB, swE = 0, 1, 2, 3
		h1, h2             = 100, 101
	)
	topo := topology.New("swap", 4)
	topo.AddLink(swI, swA)
	topo.AddLink(swI, swB)
	topo.AddLink(swA, swB)
	topo.AddLink(swA, swE)
	topo.AddLink(swB, swE)
	topo.AddHost(h1, swI)
	topo.AddHost(h2, swE)
	cl := config.Class{Name: "h1->h2", SrcHost: h1, DstHost: h2}
	init := config.New()
	if err := config.InstallPath(init, topo, cl, []int{swI, swA, swB, swE}, 10); err != nil {
		t.Fatal(err)
	}
	tmp := config.New()
	if err := config.InstallPath(tmp, topo, cl, []int{swI, swB, swA, swE}, 20); err != nil {
		t.Fatal(err)
	}
	final := init.Clone()
	for _, sw := range []int{swI, swA, swB} {
		final.SetTable(sw, tmp.Table(sw).Clone())
	}
	spec := ltl.And(
		ltl.Reachability(swI, swE),
		ltl.And(ltl.Waypoint(swI, swA, swE), ltl.Waypoint(swI, swB, swE)),
	)
	return &config.Scenario{
		Name:  "swap",
		Topo:  topo,
		Init:  init,
		Final: final,
		Specs: []config.ClassSpec{{Class: cl, Formula: spec}},
	}
}

// TestFaultRepairLadderTwoPhase: when even the escalated careful search
// is impossible, the ladder's last rung version-tags the stuck component.
// The resulting plan is consistent by construction — verified here on the
// operational model under random interleavings — and lands exactly on the
// target tables.
func TestFaultRepairLadderTwoPhase(t *testing.T) {
	sc := swapScenario(t)
	// Control: careful search is impossible at every granularity.
	for _, opts := range []Options{
		{Parallelism: 1},
		{Parallelism: 1, RuleGranularity: true},
		{Parallelism: 1, TwoSimple: true},
	} {
		if _, err := Synthesize(sc, opts); !errors.Is(err, ErrNoOrdering) {
			t.Fatalf("control %+v: err = %v, want ErrNoOrdering", opts, err)
		}
	}
	s := repairSession(t, sc, Options{Parallelism: 1})
	if _, err := s.Synthesize(sc.Init); err != nil {
		t.Fatalf("no-op synthesis: %v", err)
	}
	rep, err := s.Repair(nil, sc.Final)
	if err != nil {
		t.Fatalf("repair must fall back to two-phase, got: %v", err)
	}
	if rep.Stats.TwoPhaseComponents == 0 {
		t.Fatal("TwoPhaseComponents = 0; the last rung did not report")
	}
	if rep.Waits() == 0 {
		t.Fatal("two-phase repair plan carries no wait barriers")
	}
	// The plan must land exactly on the target tables (tags collected).
	cfgs := rep.Configs(sc.Init)
	if d := config.Diff(cfgs[len(cfgs)-1], sc.Final); len(d) != 0 {
		t.Fatalf("two-phase repair misses final on %v", d)
	}
	if d := config.Diff(s.Current(), sc.Final); len(d) != 0 {
		t.Fatalf("session not at final after two-phase repair: %v", d)
	}
	// Consistency on the operational model: every packet injected during
	// the update is delivered and traverses both waypoints.
	cl := sc.Specs[0].Class
	for seed := int64(0); seed < 20; seed++ {
		n := network.NewNet(sc.Topo, sc.Init.Tables(), rep.Commands())
		r := rand.New(rand.NewSource(seed))
		injected := 0
		n.RunRandom(r, func(step int) bool {
			if step%2 == 0 && injected < 15 {
				n.Inject(cl.SrcHost, cl.Packet())
				injected++
			}
			return injected < 15
		})
		n.Drain()
		for id := 0; id < injected; id++ {
			if !n.DeliveredTo(id, cl.DstHost) {
				t.Fatalf("seed %d: packet %d lost during two-phase repair", seed, id)
			}
			sawA, sawB := false, false
			for _, o := range n.TraceOf(id) {
				if o.Sw == 1 {
					sawA = true
				}
				if o.Sw == 2 {
					sawB = true
				}
			}
			if !sawA || !sawB {
				t.Fatalf("seed %d: packet %d skipped a waypoint (A=%v B=%v)", seed, id, sawA, sawB)
			}
		}
	}
}

// TestFaultStatsCommittedComponents: a decomposed run canceled after its
// first component must report exactly that component as committed via
// Session.LastStats, and a completed run reports all of them.
func TestFaultStatsCommittedComponents(t *testing.T) {
	sc := multiRegionScenario(t, 3, 1, 0, 11)
	s := repairSession(t, sc, Options{Parallelism: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testAfterComponent = func(i int) {
		if i == 0 {
			cancel()
		}
	}
	defer func() { testAfterComponent = nil }()
	if _, err := s.SynthesizeContext(ctx, sc.Final); err == nil {
		t.Fatal("canceled decomposed run reported success")
	}
	got := s.LastStats().CommittedComponents
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("CommittedComponents after cancel = %v, want [0]", got)
	}
	testAfterComponent = nil
	plan, err := s.Synthesize(sc.Final)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	gotAll := plan.Stats.CommittedComponents
	if len(gotAll) != len(want) {
		t.Fatalf("CommittedComponents after success = %v, want %v", gotAll, want)
	}
	for i := range want {
		if gotAll[i] != want[i] {
			t.Fatalf("CommittedComponents after success = %v, want %v", gotAll, want)
		}
	}
}
