package config

import (
	"testing"

	"netupdate/internal/topology"
)

func buildMultiRegion(t *testing.T, regions, pairs, cross int) *Scenario {
	t.Helper()
	topo := topology.SmallWorld(160, 6, 0.3, 7)
	sc, err := MultiRegion(topo, MultiRegionOptions{
		Regions: regions, PairsPerRegion: pairs, CrossClasses: cross,
		Property: Reachability, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestMultiRegionShape(t *testing.T) {
	sc := buildMultiRegion(t, 3, 2, 0)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 regions x 2 pairs + 1 intra-region link per region.
	if got, want := len(sc.Specs), 3*2+3; got != want {
		t.Fatalf("specs = %d, want %d", got, want)
	}
	if len(sc.UpdatingSwitches()) == 0 {
		t.Fatal("no updating switches")
	}
	// Every class must be rerouted or at least routed in both configs;
	// the diamond pairs and link classes change paths by construction.
	for _, cs := range sc.Specs {
		p1, err := PathOf(sc.Init, sc.Topo, cs.Class)
		if err != nil {
			t.Fatalf("class %v init: %v", cs.Class, err)
		}
		p2, err := PathOf(sc.Final, sc.Topo, cs.Class)
		if err != nil {
			t.Fatalf("class %v final: %v", cs.Class, err)
		}
		if pathsEqual(p1, p2) {
			t.Fatalf("class %v is not rerouted (path %v)", cs.Class, p1)
		}
	}
}

func TestMultiRegionCrossCoupling(t *testing.T) {
	sc := buildMultiRegion(t, 3, 1, 1)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(sc.Specs), 3+1; got != want {
		t.Fatalf("specs = %d, want %d", got, want)
	}
	last := sc.Specs[len(sc.Specs)-1]
	if last.Class.Name != "cross0" {
		t.Fatalf("last class = %v, want cross0", last.Class)
	}
	// The cross class pivots at the source anchors of two regions: its
	// init and final next hops must differ at its ingress switch.
	p1, err := PathOf(sc.Init, sc.Topo, last.Class)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PathOf(sc.Final, sc.Topo, last.Class)
	if err != nil {
		t.Fatal(err)
	}
	if p1[0] != p2[0] {
		t.Fatalf("cross class ingress differs: %v vs %v", p1, p2)
	}
	if len(p1) < 2 || len(p2) < 2 || p1[1] == p2[1] {
		t.Fatalf("cross class does not pivot at its ingress: %v vs %v", p1, p2)
	}
}

func TestMultiRegionRejectsCrossWithOneRegion(t *testing.T) {
	topo := topology.SmallWorld(80, 6, 0.3, 7)
	if _, err := MultiRegion(topo, MultiRegionOptions{Regions: 1, CrossClasses: 1}); err == nil {
		t.Fatal("expected error: cross classes need >= 2 regions")
	}
}

func pathsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
