package config

import (
	"encoding/json"
	"fmt"
	"io"

	"netupdate/internal/ltl"
	"netupdate/internal/topology"
)

// ScenarioFile is the JSON representation of a synthesis problem consumed
// by cmd/netupdate:
//
//	{
//	  "name": "my-update",
//	  "topology": {
//	    "switches": 4,
//	    "links": [[0,1],[0,2],[1,3],[2,3]],
//	    "hosts": [{"id":100,"switch":0},{"id":101,"switch":3}]
//	  },
//	  "classes": [{
//	    "name": "h100->h101", "src": 100, "dst": 101,
//	    "initPath": [0,1,3], "finalPath": [0,2,3],
//	    "spec": "sw=0 -> F sw=3"
//	  }]
//	}
type ScenarioFile struct {
	Name     string       `json:"name"`
	Topology TopologyFile `json:"topology"`
	Classes  []ClassFile  `json:"classes"`
}

// TopologyFile describes the switch graph and hosts.
type TopologyFile struct {
	Switches int        `json:"switches"`
	Links    [][2]int   `json:"links"`
	Hosts    []HostFile `json:"hosts"`
}

// HostFile attaches a host to a switch.
type HostFile struct {
	ID     int `json:"id"`
	Switch int `json:"switch"`
}

// ClassFile describes one traffic class: its endpoints, initial and final
// paths, and LTL specification in the textual syntax of internal/ltl.
type ClassFile struct {
	Name      string `json:"name"`
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	InitPath  []int  `json:"initPath"`
	FinalPath []int  `json:"finalPath"`
	Spec      string `json:"spec"`
}

// LoadScenario parses and validates a JSON scenario.
func LoadScenario(r io.Reader) (*Scenario, error) {
	var sf ScenarioFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sf); err != nil {
		return nil, fmt.Errorf("config: parsing scenario: %w", err)
	}
	return sf.Build()
}

// Build validates the topology description and constructs the switch
// graph with its hosts. It is shared by the scenario-file and
// scenario-stream loaders.
func (tf *TopologyFile) Build(name string) (*topology.Topology, error) {
	if tf.Switches <= 0 {
		return nil, fmt.Errorf("config: scenario needs at least one switch")
	}
	topo := topology.New(name, tf.Switches)
	for _, l := range tf.Links {
		if l[0] < 0 || l[0] >= tf.Switches || l[1] < 0 || l[1] >= tf.Switches {
			return nil, fmt.Errorf("config: link %v out of range", l)
		}
		topo.AddLink(l[0], l[1])
	}
	seen := map[int]bool{}
	for _, h := range tf.Hosts {
		if seen[h.ID] {
			return nil, fmt.Errorf("config: duplicate host id %d", h.ID)
		}
		seen[h.ID] = true
		if h.Switch < 0 || h.Switch >= tf.Switches {
			return nil, fmt.Errorf("config: host %d on out-of-range switch %d", h.ID, h.Switch)
		}
		topo.AddHost(h.ID, h.Switch)
	}
	return topo, nil
}

// Build converts the parsed file into a validated Scenario.
func (sf *ScenarioFile) Build() (*Scenario, error) {
	topo, err := sf.Topology.Build(sf.Name)
	if err != nil {
		return nil, err
	}
	s := &Scenario{Name: sf.Name, Topo: topo, Init: New(), Final: New(), Feasible: true}
	for i, cf := range sf.Classes {
		cl := Class{Name: cf.Name, SrcHost: cf.Src, DstHost: cf.Dst}
		if cl.Name == "" {
			cl.Name = fmt.Sprintf("class%d", i)
		}
		if err := InstallPath(s.Init, topo, cl, cf.InitPath, 10); err != nil {
			return nil, fmt.Errorf("config: class %s init: %w", cl.Name, err)
		}
		if err := InstallPath(s.Final, topo, cl, cf.FinalPath, 10); err != nil {
			return nil, fmt.Errorf("config: class %s final: %w", cl.Name, err)
		}
		spec, err := ltl.Parse(cf.Spec)
		if err != nil {
			return nil, fmt.Errorf("config: class %s spec: %w", cl.Name, err)
		}
		s.Specs = append(s.Specs, ClassSpec{Class: cl, Formula: spec})
	}
	if len(s.Specs) == 0 {
		return nil, fmt.Errorf("config: scenario has no traffic classes")
	}
	return s, s.Validate()
}
