package config

import (
	"fmt"
	"math/rand"

	"netupdate/internal/ltl"
	"netupdate/internal/topology"
)

// MultiRegionOptions parameterizes the multi-region workload generator:
// the honest benchmark for interference-partitioned synthesis. The
// scenario contains Regions independent groups of diamond updates — the
// shape of a rolling datacenter update, where each maintenance domain is
// rerouted on its own — with a tunable number of cross-traffic classes
// that couple regions back together (a flow spanning two domains, which
// forces their updates into one joint ordering problem).
type MultiRegionOptions struct {
	// Regions is the number of independent update regions (>= 1).
	Regions int
	// PairsPerRegion is the number of diamond flips per region (default
	// 1). Pairs within one region are chained by intra-region link
	// classes, so every region stays a single interference component no
	// matter how many diamonds it contains.
	PairsPerRegion int
	// Property is the specification family asserted per diamond pair.
	Property Property
	// Waypoints per pair for ServiceChaining (default 2).
	Waypoints int
	// CrossClasses adds this many coupling classes, each rerouted with
	// pivots inside two different regions (region i%Regions and region
	// (i+1)%Regions): the class's next hop changes at an updating switch
	// of both regions, so the two regions collapse into one interference
	// component. Zero keeps all regions independent. Requires Regions >= 2.
	CrossClasses int
	// InfeasibleRegions appends this many extra regions that are the
	// double-diamond gadget of Figure 8(h): two opposing classes swapped
	// between the branches, so no switch-granularity ordering exists for
	// that region — and hence for the whole scenario. This is the
	// decomposition stress case: a partitioned search proves impossibility
	// inside the small gadget component, while a joint search must exhaust
	// interleavings with every other region's units. Sets Feasible=false.
	InfeasibleRegions int
	Seed              int64
	// HostBase is the first host id to allocate (see DiamondOptions).
	HostBase int
	// BackgroundFlows installs identical shortest-path routing for this
	// many extra host pairs in both configurations, as in DiamondOptions.
	BackgroundFlows int
}

// MultiRegion builds the multi-region scenario on topo. With zero
// CrossClasses the interference partition of the diff has exactly Regions
// components; every cross class merges two of them. It returns an error
// if the topology cannot fit the requested regions and links.
func MultiRegion(topo *topology.Topology, opts MultiRegionOptions) (*Scenario, error) {
	if opts.Regions <= 0 {
		return nil, fmt.Errorf("config: MultiRegion: need at least one region")
	}
	pairs := opts.PairsPerRegion
	if pairs <= 0 {
		pairs = 1
	}
	if opts.CrossClasses > 0 && opts.Regions < 2 {
		return nil, fmt.Errorf("config: MultiRegion: cross classes need at least two regions")
	}
	wp := 0
	switch opts.Property {
	case Waypointing:
		wp = 1
	case ServiceChaining:
		wp = opts.Waypoints
		if wp <= 0 {
			wp = 2
		}
	}
	r := rand.New(rand.NewSource(opts.Seed))
	s := &Scenario{
		Name:     fmt.Sprintf("multiregion-%s-r%d", opts.Property, opts.Regions),
		Topo:     topo,
		Init:     New(),
		Final:    New(),
		Feasible: true,
	}
	used := map[int]bool{}
	hostID := opts.HostBase
	if hostID == 0 {
		hostID = nextHostID(topo)
	}
	lk := newLinker(s, used)
	// pivots[r][p] lists the switches of region r's p-th diamond whose
	// tables genuinely change (everything but the destination anchor):
	// the candidate pivots link classes reroute on.
	pivots := make([][][]int, opts.Regions)
	for reg := 0; reg < opts.Regions; reg++ {
		for p := 0; p < pairs; p++ {
			d, err := buildDiamond(topo, r, used, wp, 2)
			if err != nil {
				return nil, fmt.Errorf("config: MultiRegion: region %d pair %d: %w", reg, p, err)
			}
			pivots[reg] = append(pivots[reg], diamondPivots(d))
			srcHost := topo.AddHost(hostID, d.anchors[0])
			dstHost := topo.AddHost(hostID+1, d.anchors[len(d.anchors)-1])
			hostID += 2
			cl := Class{
				Name:    fmt.Sprintf("r%dp%d", reg, p),
				SrcHost: srcHost.ID,
				DstHost: dstHost.ID,
			}
			if err := InstallPath(s.Init, topo, cl, d.initPath, 10); err != nil {
				return nil, err
			}
			if err := InstallPath(s.Final, topo, cl, d.finalPath, 10); err != nil {
				return nil, err
			}
			var f *ltl.Formula
			src, dst := d.anchors[0], d.anchors[len(d.anchors)-1]
			switch opts.Property {
			case Reachability:
				f = ltl.Reachability(src, dst)
			case Waypointing:
				f = ltl.Waypoint(src, d.anchors[1], dst)
			case ServiceChaining:
				f = ltl.ServiceChain(src, d.anchors[1:len(d.anchors)-1], dst)
			default:
				return nil, fmt.Errorf("config: unknown property %v", opts.Property)
			}
			s.Specs = append(s.Specs, ClassSpec{Class: cl, Formula: f})
		}
		// Chain the region's pairs with intra-region links so the region
		// remains one interference component regardless of its pair count.
		for p := 0; p+1 < pairs; p++ {
			name := fmt.Sprintf("r%dlink%d", reg, p)
			if err := lk.addLinkClass(r, &hostID, name, pivots[reg][p], pivots[reg][p+1], opts.Property); err != nil {
				return nil, fmt.Errorf("config: MultiRegion: region %d link %d: %w", reg, p, err)
			}
		}
	}
	for i := 0; i < opts.CrossClasses; i++ {
		r1 := i % opts.Regions
		r2 := (i + 1) % opts.Regions
		name := fmt.Sprintf("cross%d", i)
		if err := lk.addLinkClass(r, &hostID, name, regionPivots(pivots[r1]), regionPivots(pivots[r2]), opts.Property); err != nil {
			return nil, fmt.Errorf("config: MultiRegion: cross class %d: %w", i, err)
		}
	}
	for g := 0; g < opts.InfeasibleRegions; g++ {
		if err := addGadgetRegion(s, r, used, &hostID, opts.Regions+g); err != nil {
			return nil, fmt.Errorf("config: MultiRegion: infeasible region %d: %w", g, err)
		}
		s.Feasible = false
	}
	if err := addBackgroundFlows(s, r, opts.BackgroundFlows, &hostID); err != nil {
		return nil, err
	}
	return s, nil
}

// diamondPivots lists the switches of one diamond whose table changes
// between the two configurations: every path switch except the
// destination anchor (whose single rule — deliver to the attached host —
// is identical in both configurations and therefore never updates).
func diamondPivots(d *diamond) []int {
	dst := d.anchors[len(d.anchors)-1]
	var out []int
	add := func(sw int) {
		if sw != dst && !containsInt(out, sw) {
			out = append(out, sw)
		}
	}
	for _, sw := range d.initPath {
		add(sw)
	}
	for _, sw := range d.finalPath {
		add(sw)
	}
	return out
}

// addGadgetRegion carves one Figure 8(h) double-diamond gadget as region
// reg: classes A and B flow in opposite directions over the same diamond
// and swap branches between the configurations, creating the circular
// dependency s < x < d < y < s that no switch-granularity ordering can
// satisfy (see DESIGN.md). The gadget's two classes share its switches,
// so the gadget is exactly one interference component.
func addGadgetRegion(s *Scenario, r *rand.Rand, used map[int]bool, hostID *int, reg int) error {
	d, err := buildDiamond(s.Topo, r, used, 0, 3)
	if err != nil {
		return err
	}
	src, dst := d.anchors[0], d.anchors[len(d.anchors)-1]
	hA := s.Topo.AddHost(*hostID, src)
	hB := s.Topo.AddHost(*hostID+1, dst)
	*hostID += 2
	clA := Class{Name: fmt.Sprintf("r%dgA", reg), SrcHost: hA.ID, DstHost: hB.ID}
	clB := Class{Name: fmt.Sprintf("r%dgB", reg), SrcHost: hB.ID, DstHost: hA.ID}
	rev := make([]int, len(d.finalPath))
	for i, v := range d.finalPath {
		rev[len(rev)-1-i] = v
	}
	revInit := make([]int, len(d.initPath))
	for i, v := range d.initPath {
		revInit[len(revInit)-1-i] = v
	}
	if err := InstallPath(s.Init, s.Topo, clA, d.initPath, 10); err != nil {
		return err
	}
	if err := InstallPath(s.Final, s.Topo, clA, d.finalPath, 10); err != nil {
		return err
	}
	if err := InstallPath(s.Init, s.Topo, clB, rev, 10); err != nil {
		return err
	}
	if err := InstallPath(s.Final, s.Topo, clB, revInit, 10); err != nil {
		return err
	}
	s.Specs = append(s.Specs,
		ClassSpec{Class: clA, Formula: ltl.Reachability(src, dst)},
		ClassSpec{Class: clB, Formula: ltl.Reachability(dst, src)},
	)
	return nil
}

// regionPivots flattens a region's per-diamond pivot lists.
func regionPivots(perDiamond [][]int) []int {
	var out []int
	for _, ps := range perDiamond {
		out = append(out, ps...)
	}
	return out
}

// linker builds coupling classes between update regions. A link class is
// a flow rerouted so that its next hop changes at one updating switch of
// each of two regions (the pivots u1 and u2): both pivots then interfere
// with the link class as well as with their own region's classes, which
// merges the two regions' interference components. Unlike the diamond
// generator, the link's initial and final routes need not be disjoint —
// only the next hop at each pivot must differ — so links fit topologies
// whose free capacity around the regions is nearly exhausted.
type linker struct {
	s    *Scenario
	used map[int]bool
	pf   *topology.PathFinder
	// avoid is the reusable avoid-list buffer: the used set plus
	// per-query extras.
	avoid []int
	// leg buffers, reused across attempts (first legs are cached per
	// neighbor inside tryLink and use per-call slices).
	initL2, finalL2 []int
	neigh1, neigh2  []int
}

func newLinker(s *Scenario, used map[int]bool) *linker {
	return &linker{s: s, used: used, pf: s.Topo.NewPathFinder()}
}

// addLinkClass installs one coupling class between a pivot of pivots1 and
// a pivot of pivots2: src host on the ingress pivot u1, dst host on a
// fresh switch d, routed u1 -> u2 -> d in both configurations with
// different next hops at u1 and at u2. Pivot pairs are tried in random
// order, in both directions (either region can host the ingress), until
// one admits the two routes.
func (lk *linker) addLinkClass(r *rand.Rand, hostID *int, name string, pivots1, pivots2 []int, prop Property) error {
	if ok, err := lk.linkDirected(r, hostID, name, pivots1, pivots2, prop); ok || err != nil {
		return err
	}
	if ok, err := lk.linkDirected(r, hostID, name, pivots2, pivots1, prop); ok || err != nil {
		return err
	}
	return fmt.Errorf("no room for a link class between the pivot sets %v and %v", pivots1, pivots2)
}

// linkDirected tries every (ingress, mid) pivot pair with the given role
// assignment, reporting whether a link was installed.
func (lk *linker) linkDirected(r *rand.Rand, hostID *int, name string, pivots1, pivots2 []int, prop Property) (bool, error) {
	perm1 := r.Perm(len(pivots1))
	perm2 := r.Perm(len(pivots2))
	for _, i1 := range perm1 {
		u1 := pivots1[i1]
		n1 := lk.freeNeighbors(&lk.neigh1, u1)
		if len(n1) < 2 {
			continue
		}
		for _, i2 := range perm2 {
			u2 := pivots2[i2]
			if u2 == u1 {
				continue
			}
			n2 := lk.freeNeighbors(&lk.neigh2, u2)
			if len(n2) < 2 {
				continue
			}
			ok, err := lk.tryLink(r, hostID, name, u1, u2, n1, n2, prop)
			if ok || err != nil {
				return ok, err
			}
		}
	}
	return false, nil
}

// tryLink attempts one (u1, u2) pivot pair. The route is built leg by
// leg: u1 -> u2 entering via two different free neighbors of u1, then
// u2 -> d via two different free neighbors of u2, where d is a fresh
// switch. Each configuration's full path is kept simple (the second leg
// avoids the first leg's switches); the two configurations may share
// arbitrary interior switches — every shared switch with an identical
// next hop stays a non-updating bystander of the merged component.
// Neighbor pairs at both pivots and a bounded sample of destinations are
// searched until a combination routes.
func (lk *linker) tryLink(r *rand.Rand, hostID *int, name string, u1, u2 int, n1, n2 []int, prop Property) (bool, error) {
	topo := lk.s.Topo
	// First legs depend only on the chosen neighbor of u1; compute each
	// once.
	legs1 := make([][]int, len(n1))
	for i, via := range n1 {
		var buf []int
		legs1[i] = lk.legVia(&buf, u1, via, u2, nil)
	}
	for ai := range n1 {
		initL1 := legs1[ai]
		if initL1 == nil {
			continue
		}
		for bi := range n1 {
			finalL1 := legs1[bi]
			if bi == ai || finalL1 == nil {
				continue
			}
			for _, ma := range n2 {
				if containsInt(initL1, ma) {
					continue
				}
				for _, mb := range n2 {
					if mb == ma || containsInt(finalL1, mb) {
						continue
					}
					// A bounded sample of fresh destinations: the second
					// legs only need to reach d without re-entering the
					// first legs.
					for try := 0; try < 16; try++ {
						d := r.Intn(topo.NumSwitches())
						if lk.used[d] || d == u1 || d == u2 ||
							containsInt(initL1, d) || containsInt(finalL1, d) {
							continue
						}
						initL2 := lk.legVia(&lk.initL2, u2, ma, d, initL1)
						finalL2 := lk.legVia(&lk.finalL2, u2, mb, d, finalL1)
						if initL2 == nil || finalL2 == nil {
							continue
						}
						if !confluent(
							append(append([]int(nil), initL1...), initL2[1:]...),
							append(append([]int(nil), finalL1...), finalL2[1:]...),
							u1, u2) {
							continue
						}
						return true, lk.install(hostID, name, u1, u2, d, initL1, initL2, finalL1, finalL2, prop)
					}
				}
			}
		}
	}
	return false, nil
}

// install materializes a routed link class: hosts at the ingress pivot
// and the destination, one rule per path switch per configuration, the
// property, and the claim of every switch whose behavior differs.
func (lk *linker) install(hostID *int, name string, u1, u2, d int, initL1, initL2, finalL1, finalL2 []int, prop Property) error {
	topo := lk.s.Topo
	initPath := append(append([]int(nil), initL1...), initL2[1:]...)
	finalPath := append(append([]int(nil), finalL1...), finalL2[1:]...)
	srcHost := topo.AddHost(*hostID, u1)
	dstHost := topo.AddHost(*hostID+1, d)
	*hostID += 2
	cl := Class{Name: name, SrcHost: srcHost.ID, DstHost: dstHost.ID}
	if err := InstallPath(lk.s.Init, topo, cl, initPath, 10); err != nil {
		return err
	}
	if err := InstallPath(lk.s.Final, topo, cl, finalPath, 10); err != nil {
		return err
	}
	var f *ltl.Formula
	if prop == Reachability {
		f = ltl.Reachability(u1, d)
	} else {
		f = ltl.Waypoint(u1, u2, d)
	}
	lk.s.Specs = append(lk.s.Specs, ClassSpec{Class: cl, Formula: f})
	lk.claimDiffering(initPath, finalPath)
	return nil
}

// pathNext returns the successor of sw on path: the next switch, -1 for
// the last hop (delivery to the attached host), or -2 when sw is not on
// the path (the class has no rule there).
func pathNext(path []int, sw int) int {
	for i, v := range path {
		if v == sw {
			if i+1 < len(path) {
				return path[i+1]
			}
			return -1
		}
	}
	return -2
}

// confluent reports whether the two routes diverge only at the pivots:
// every switch on both paths other than u1 and u2 must have the same next
// hop in both. Rejecting non-confluent pairs keeps the link class a chain
// of two well-formed diamonds, which is always solvable at switch
// granularity by the usual downstream-first order — shared interiors
// visited in opposite orders (or extra divergence points) can otherwise
// encode the paper's Figure 8(h) circular-dependency gadget inside a
// single class and make the whole scenario infeasible.
func confluent(initPath, finalPath []int, u1, u2 int) bool {
	for _, sw := range initPath {
		if sw == u1 || sw == u2 {
			continue
		}
		if n := pathNext(finalPath, sw); n != -2 && n != pathNext(initPath, sw) {
			return false
		}
	}
	return true
}

// claimDiffering marks used exactly the switches where the link class's
// forwarding differs between the two configurations: switches on only one
// of the paths (rule present vs absent) and shared switches whose next
// hop differs (the pivots). Shared-suffix switches with identical rules
// stay free — they never update for this class, so later diamonds and
// links may traverse or reroute on them without creating interference
// with it, and leaving them unclaimed keeps the free graph connected as
// links accumulate.
func (lk *linker) claimDiffering(initPath, finalPath []int) {
	claim := func(path []int) {
		for _, sw := range path {
			if pathNext(initPath, sw) != pathNext(finalPath, sw) {
				lk.used[sw] = true
			}
		}
	}
	claim(initPath)
	claim(finalPath)
}

// legVia builds the path [from, via, ..., to]: the forced first hop via
// (a free neighbor of from), then a shortest route from via to to that
// avoids every used switch, from itself, and every switch of blocked —
// nil if no such route exists. The returned slice aliases *buf.
func (lk *linker) legVia(buf *[]int, from, via, to int, blocked []int) []int {
	avoid := lk.avoid[:0]
	for sw := range lk.used {
		avoid = append(avoid, sw)
	}
	avoid = append(avoid, from)
	avoid = append(avoid, blocked...)
	lk.avoid = avoid
	leg := append((*buf)[:0], from)
	if via == to {
		leg = append(leg, to)
	} else {
		n := len(leg)
		leg = lk.pf.Shortest(leg, via, to, avoid)
		if len(leg) == n {
			*buf = leg
			return nil
		}
	}
	*buf = leg
	// The second leg's endpoints are exempt from the avoid list inside
	// Shortest; reject routes that re-enter a blocked switch anyway.
	if blocked != nil && containsInt(blocked, to) {
		return nil
	}
	return leg
}

// freeNeighbors collects into *buf the unclaimed switches adjacent to sw.
func (lk *linker) freeNeighbors(buf *[]int, sw int) []int {
	out := (*buf)[:0]
	topo := lk.s.Topo
	for _, pt := range topo.Ports(sw) {
		l, ok := topo.LinkAt(sw, pt)
		if !ok {
			continue
		}
		if !lk.used[l.Peer] && !containsInt(out, l.Peer) {
			out = append(out, l.Peer)
		}
	}
	*buf = out
	return out
}
