package config

import (
	"fmt"

	"netupdate/internal/ltl"
	"netupdate/internal/topology"
)

// Property selects one of the paper's specification families (Section 6).
type Property int

// Property kinds used in the evaluation.
const (
	Reachability Property = iota
	Waypointing
	ServiceChaining
)

func (p Property) String() string {
	switch p {
	case Reachability:
		return "reachability"
	case Waypointing:
		return "waypointing"
	case ServiceChaining:
		return "service-chaining"
	}
	return fmt.Sprintf("property(%d)", int(p))
}

// ClassSpec pairs a traffic class with the LTL property its packets must
// satisfy throughout the update.
type ClassSpec struct {
	Class   Class
	Formula *ltl.Formula
}

// Scenario is a complete update-synthesis problem instance: a topology,
// initial and final configurations, and a per-class specification.
type Scenario struct {
	Name  string
	Topo  *topology.Topology
	Init  *Config
	Final *Config
	Specs []ClassSpec
	// Feasible records whether the generator believes a switch-granularity
	// ordering update exists (used by tests and the experiment harness).
	Feasible bool
}

// Validate checks that both configurations route every class loop-free to
// its destination — the precondition of the synthesis problem.
func (s *Scenario) Validate() error {
	for _, cs := range s.Specs {
		if _, err := PathOf(s.Init, s.Topo, cs.Class); err != nil {
			return fmt.Errorf("scenario %s: init: %w", s.Name, err)
		}
		if _, err := PathOf(s.Final, s.Topo, cs.Class); err != nil {
			return fmt.Errorf("scenario %s: final: %w", s.Name, err)
		}
	}
	return nil
}

// UpdatingSwitches returns the switches whose tables differ between the
// initial and final configuration.
func (s *Scenario) UpdatingSwitches() []int { return Diff(s.Init, s.Final) }
