// Package config provides network configurations (per-switch forwarding
// tables), traffic classes, and the scenario generators used by the
// paper's evaluation: diamond updates over random node pairs (Section 6),
// infeasible double-diamonds (Figure 8h), and the Figure 1 datacenter
// example from the Overview.
package config

import (
	"fmt"
	"sort"

	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// Config maps each switch to its forwarding table. A missing entry is the
// empty (drop-everything) table. Config is a network configuration in the
// paper's sense: a static network containing no packets.
type Config struct {
	tables map[int]network.Table
}

// New returns an empty configuration.
func New() *Config {
	return &Config{tables: map[int]network.Table{}}
}

// Table returns the table installed on sw (nil if none).
func (c *Config) Table(sw int) network.Table { return c.tables[sw] }

// SetTable replaces the table on sw.
func (c *Config) SetTable(sw int, tbl network.Table) {
	if len(tbl) == 0 {
		delete(c.tables, sw)
		return
	}
	c.tables[sw] = tbl
}

// AddRule appends a rule to the table on sw.
func (c *Config) AddRule(sw int, r network.Rule) {
	c.tables[sw] = append(c.tables[sw], r)
}

// RemoveRule removes the first rule on sw equal to r, reporting whether a
// rule was removed.
func (c *Config) RemoveRule(sw int, r network.Rule) bool {
	tbl := c.tables[sw]
	for i := range tbl {
		if ruleEqual(tbl[i], r) {
			c.tables[sw] = append(tbl[:i:i], tbl[i+1:]...)
			if len(c.tables[sw]) == 0 {
				delete(c.tables, sw)
			}
			return true
		}
	}
	return false
}

func ruleEqual(a, b network.Rule) bool {
	if a.Priority != b.Priority || a.Match != b.Match || len(a.Actions) != len(b.Actions) {
		return false
	}
	for i := range a.Actions {
		if a.Actions[i] != b.Actions[i] {
			return false
		}
	}
	return true
}

// Switches returns the switches with non-empty tables, ascending.
func (c *Config) Switches() []int {
	out := make([]int, 0, len(c.tables))
	for sw := range c.tables {
		out = append(out, sw)
	}
	sort.Ints(out)
	return out
}

// NumRules returns the total number of rules across all switches.
func (c *Config) NumRules() int {
	n := 0
	for _, t := range c.tables {
		n += len(t)
	}
	return n
}

// Clone returns a deep copy.
func (c *Config) Clone() *Config {
	d := New()
	for sw, t := range c.tables {
		d.tables[sw] = t.Clone()
	}
	return d
}

// Tables returns the underlying table map for constructing a runtime
// network; the caller must not modify it.
func (c *Config) Tables() map[int]network.Table { return c.tables }

// Diff returns the switches whose tables differ between a and b,
// ascending. These are exactly the switches an update must touch.
func Diff(a, b *Config) []int {
	seen := map[int]bool{}
	var out []int
	check := func(sw int) {
		if seen[sw] {
			return
		}
		seen[sw] = true
		if !a.Table(sw).Equal(b.Table(sw)) {
			out = append(out, sw)
		}
	}
	for sw := range a.tables {
		check(sw)
	}
	for sw := range b.tables {
		check(sw)
	}
	sort.Ints(out)
	return out
}

// Class is a traffic class: the set of packets flowing from one host to
// another, identified by the src/dst header pair. Each class corresponds
// to one disjoint part of the network Kripke structure (Section 3.3).
type Class struct {
	Name    string
	SrcHost int // host id (also the packet src field value)
	DstHost int // host id (also the packet dst field value)
}

// Packet returns the representative packet of the class.
func (cl Class) Packet() network.Packet {
	return network.Packet{Src: cl.SrcHost, Dst: cl.DstHost}
}

// Pattern returns the match pattern selecting this class.
func (cl Class) Pattern() network.Pattern {
	return network.MatchFlow(cl.SrcHost, cl.DstHost)
}

func (cl Class) String() string {
	if cl.Name != "" {
		return cl.Name
	}
	return fmt.Sprintf("h%d->h%d", cl.SrcHost, cl.DstHost)
}

// InstallPath adds forwarding rules to cfg routing class cl along the
// switch path (inclusive of both endpoints). The class's source host must
// be attached to path[0] and destination host to path[len-1]; consecutive
// path switches must be adjacent in topo.
func InstallPath(cfg *Config, topo *topology.Topology, cl Class, path []int, priority int) error {
	if len(path) == 0 {
		return fmt.Errorf("config: empty path for class %v", cl)
	}
	dst, ok := topo.HostByID(cl.DstHost)
	if !ok {
		return fmt.Errorf("config: class %v: no host %d", cl, cl.DstHost)
	}
	if dst.Switch != path[len(path)-1] {
		return fmt.Errorf("config: class %v: dst host on sw%d but path ends at sw%d",
			cl, dst.Switch, path[len(path)-1])
	}
	src, ok := topo.HostByID(cl.SrcHost)
	if !ok {
		return fmt.Errorf("config: class %v: no host %d", cl, cl.SrcHost)
	}
	if src.Switch != path[0] {
		return fmt.Errorf("config: class %v: src host on sw%d but path starts at sw%d",
			cl, src.Switch, path[0])
	}
	for i := 0; i < len(path); i++ {
		var out topology.Port
		if i == len(path)-1 {
			out = dst.Port
		} else {
			p, ok := topo.PortToward(path[i], path[i+1])
			if !ok {
				return fmt.Errorf("config: path hop sw%d-sw%d not adjacent", path[i], path[i+1])
			}
			out = p
		}
		cfg.AddRule(path[i], network.Rule{
			Priority: priority,
			Match:    cl.Pattern(),
			Actions:  []network.Action{network.Forward(out)},
		})
	}
	return nil
}

// PathOf traces the forwarding path of class cl through cfg starting at
// its source host, returning the switch sequence. It returns an error on
// a forwarding loop, a drop before reaching the destination host, or a
// rule that modifies packet headers.
func PathOf(cfg *Config, topo *topology.Topology, cl Class) ([]int, error) {
	src, ok := topo.HostByID(cl.SrcHost)
	if !ok {
		return nil, fmt.Errorf("config: no host %d", cl.SrcHost)
	}
	pkt := cl.Packet()
	sw, pt := src.Switch, src.Port
	var path []int
	seen := map[string]bool{}
	for {
		key := fmt.Sprintf("%d/%d", sw, pt)
		if seen[key] {
			return nil, fmt.Errorf("config: forwarding loop for class %v at sw%d", cl, sw)
		}
		seen[key] = true
		path = append(path, sw)
		outs := cfg.Table(sw).Apply(pkt, pt)
		if len(outs) == 0 {
			return nil, fmt.Errorf("config: class %v dropped at sw%d", cl, sw)
		}
		if len(outs) > 1 {
			return nil, fmt.Errorf("config: class %v multicast at sw%d", cl, sw)
		}
		if outs[0].Pkt != pkt {
			return nil, fmt.Errorf("config: class %v modified at sw%d", cl, sw)
		}
		if h, ok := topo.HostAtPort(sw, outs[0].Port); ok {
			if h.ID != cl.DstHost {
				return nil, fmt.Errorf("config: class %v delivered to wrong host %d", cl, h.ID)
			}
			return path, nil
		}
		l, ok := topo.LinkAt(sw, outs[0].Port)
		if !ok {
			return nil, fmt.Errorf("config: class %v forwarded out dangling port at sw%d", cl, sw)
		}
		sw, pt = l.Peer, l.PeerPort
	}
}
