package config

import (
	"errors"
	"io"
	"strings"
	"testing"

	"netupdate/internal/topology"
)

const lineStream = `
{"name":"line","topology":{"switches":4,"links":[[0,1],[1,2],[2,3],[0,2],[1,3]],
 "hosts":[{"id":100,"switch":0},{"id":101,"switch":3}]},
 "classes":[{"name":"c","src":100,"dst":101,"path":[0,1,2,3],"spec":"sw=0 -> F sw=3"}]}
{"reroute":[{"class":"c","path":[0,2,3]}]}
{"reroute":[{"class":"c","path":[0,1,3]}]}
`

func TestScenarioStreamDecode(t *testing.T) {
	s, err := OpenStream(strings.NewReader(lineStream))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "line" {
		t.Fatalf("name = %q", s.Name())
	}
	if len(s.Specs()) != 1 {
		t.Fatalf("specs = %d, want 1", len(s.Specs()))
	}
	cl := s.Specs()[0].Class
	p0, err := PathOf(s.Init(), s.Topo(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(p0), 4; got != want {
		t.Fatalf("init path %v, want length %d", p0, want)
	}
	wantPaths := [][]int{{0, 2, 3}, {0, 1, 3}}
	for i, want := range wantPaths {
		tgt, err := s.Next()
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		got, err := PathOf(tgt, s.Topo(), cl)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("delta %d: path %v, want %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("delta %d: path %v, want %v", i, got, want)
			}
		}
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestScenarioStreamRejectsBadDelta(t *testing.T) {
	bad := `
{"name":"line","topology":{"switches":3,"links":[[0,1],[1,2]],
 "hosts":[{"id":100,"switch":0},{"id":101,"switch":2}]},
 "classes":[{"name":"c","src":100,"dst":101,"path":[0,1,2],"spec":"true"}]}
{"reroute":[{"class":"nope","path":[0,1,2]}]}
`
	s, err := OpenStream(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("err = %v, want ErrBadDelta", err)
	}
	// A bad delta is recoverable: the previous target stands and the
	// stream keeps decoding (here: straight to EOF).
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF after skipped delta", err)
	}
}

func TestRemoveClassRules(t *testing.T) {
	topo := topology.New("t", 3)
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddHost(100, 0)
	topo.AddHost(101, 2)
	topo.AddHost(200, 0)
	topo.AddHost(201, 2)
	clA := Class{Name: "a", SrcHost: 100, DstHost: 101}
	clB := Class{Name: "b", SrcHost: 200, DstHost: 201}
	cfg := New()
	if err := InstallPath(cfg, topo, clA, []int{0, 1, 2}, 10); err != nil {
		t.Fatal(err)
	}
	if err := InstallPath(cfg, topo, clB, []int{0, 1, 2}, 10); err != nil {
		t.Fatal(err)
	}
	RemoveClassRules(cfg, clA)
	if _, err := PathOf(cfg, topo, clB); err != nil {
		t.Fatalf("class b must survive: %v", err)
	}
	if _, err := PathOf(cfg, topo, clA); err == nil {
		t.Fatal("class a rules must be gone")
	}
	for _, sw := range cfg.Switches() {
		for _, r := range cfg.Table(sw) {
			if r.Match == clA.Pattern() {
				t.Fatalf("leftover rule for class a on sw%d", sw)
			}
		}
	}
}

func TestRollingUpdatesWalk(t *testing.T) {
	topo := topology.SmallWorld(60, 4, 0.3, 17)
	s, err := RollingUpdates(topo, RollingOptions{
		Pairs: 2, Property: Reachability, Seed: 17, Steps: 6, FlipsPerStep: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Specs()) != 2 {
		t.Fatalf("specs = %d, want 2 diamond classes", len(s.Specs()))
	}
	prev := s.Init()
	steps := 0
	for {
		tgt, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		steps++
		// Every target must route every class loop-free to its host, and
		// must differ from its predecessor in at least one switch.
		for _, cs := range s.Specs() {
			if _, err := PathOf(tgt, s.Topo(), cs.Class); err != nil {
				t.Fatalf("step %d: %v", steps, err)
			}
		}
		if d := Diff(prev, tgt); len(d) == 0 {
			t.Fatalf("step %d: target identical to predecessor", steps)
		}
		prev = tgt
	}
	if steps != 6 {
		t.Fatalf("steps = %d, want 6", steps)
	}
}

func TestRollingUpdatesStepsAreFeasibleScenarios(t *testing.T) {
	topo := topology.SmallWorld(50, 4, 0.3, 5)
	s, err := RollingUpdates(topo, RollingOptions{
		Pairs: 2, Property: Reachability, Seed: 5, Steps: 3, FlipsPerStep: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := s.Init()
	for {
		tgt, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sc := &Scenario{Name: "roll", Topo: s.Topo(), Init: prev, Final: tgt, Specs: s.Specs()}
		if err := sc.Validate(); err != nil {
			t.Fatal(err)
		}
		prev = tgt
	}
}

// TestScenarioStreamRejectsUnknownFields: a misspelled delta key must
// fail loudly, not silently decode into a no-op target.
func TestScenarioStreamRejectsUnknownFields(t *testing.T) {
	bad := `
{"name":"line","topology":{"switches":3,"links":[[0,1],[1,2]],
 "hosts":[{"id":100,"switch":0},{"id":101,"switch":2}]},
 "classes":[{"name":"c","src":100,"dst":101,"path":[0,1,2],"spec":"true"}]}
{"rerouted":[{"class":"c","path":[0,1,2]}]}
`
	s, err := OpenStream(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err == nil {
		t.Fatal("misspelled delta key must be rejected")
	}
}

// TestScenarioStreamErrorsCarryLineNumbers: both semantic (ErrBadDelta)
// and syntax decode errors must name the offending JSONL input line.
func TestScenarioStreamErrorsCarryLineNumbers(t *testing.T) {
	// Header spans lines 2-4; the first (good) delta is line 5, the bad
	// delta is line 6, and line 7 holds garbage for the syntax-error case.
	in := `
{"name":"line","topology":{"switches":4,"links":[[0,1],[1,2],[2,3],[0,2]],
 "hosts":[{"id":100,"switch":0},{"id":101,"switch":3}]},
 "classes":[{"name":"c","src":100,"dst":101,"path":[0,1,2,3],"spec":"sw=0 -> F sw=3"}]}
{"reroute":[{"class":"c","path":[0,2,3]}]}
{"reroute":[{"class":"nope","path":[0,1,2,3]}]}
{"reroute":
`
	s, err := OpenStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if got := s.Line(); got != 5 {
		t.Fatalf("good delta line = %d, want 5", got)
	}
	_, err = s.Next()
	if !errors.Is(err, ErrBadDelta) {
		t.Fatalf("err = %v, want ErrBadDelta", err)
	}
	if !strings.Contains(err.Error(), "line 6") {
		t.Fatalf("bad-delta error lacks line number: %v", err)
	}
	_, err = s.Next()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated delta must be a decode error, got %v", err)
	}
	if !strings.Contains(err.Error(), "line 7") && !strings.Contains(err.Error(), "line 8") {
		t.Fatalf("decode error lacks line number: %v", err)
	}
}

// TestLineCountingReader: offsets map to 1-based lines.
func TestLineCountingReader(t *testing.T) {
	r := NewLineCountingReader(strings.NewReader("ab\ncd\nef"))
	buf := make([]byte, 3) // force multiple short reads
	for {
		if _, err := r.Read(buf); err != nil {
			break
		}
	}
	for _, tc := range []struct {
		off  int64
		want int
	}{{0, 1}, {1, 1}, {2, 1}, {3, 2}, {5, 2}, {6, 3}, {7, 3}, {100, 3}} {
		if got := r.LineAt(tc.off); got != tc.want {
			t.Fatalf("LineAt(%d) = %d, want %d", tc.off, got, tc.want)
		}
	}
	// Pruning forgets early offsets but preserves line numbering for
	// everything at or past the prune point.
	r.Prune(3)
	for _, tc := range []struct {
		off  int64
		want int
	}{{3, 2}, {5, 2}, {6, 3}, {100, 3}} {
		if got := r.LineAt(tc.off); got != tc.want {
			t.Fatalf("after Prune(3): LineAt(%d) = %d, want %d", tc.off, got, tc.want)
		}
	}
	r.Prune(100)
	if got := r.LineAt(100); got != 3 {
		t.Fatalf("after Prune(100): LineAt(100) = %d, want 3", got)
	}
}

// TestStreamBaseApply: the shared delta applicator leaves the input
// configuration untouched and validates reroutes.
func TestStreamBaseApply(t *testing.T) {
	h := StreamHeader{
		Name: "b",
		Topology: TopologyFile{
			Switches: 4,
			Links:    [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}},
			Hosts:    []HostFile{{ID: 100, Switch: 0}, {ID: 101, Switch: 3}},
		},
		Classes: []StreamClass{{Name: "c", Src: 100, Dst: 101, Path: []int{0, 1, 2, 3}, Spec: "true"}},
	}
	b, err := h.Build()
	if err != nil {
		t.Fatal(err)
	}
	next, err := b.Apply(b.Init, &StreamDelta{Reroute: []Reroute{{Class: "c", Path: []int{0, 2, 3}}}})
	if err != nil {
		t.Fatal(err)
	}
	cl := b.Specs[0].Class
	p, err := PathOf(next, b.Topo, cl)
	if err != nil || len(p) != 3 {
		t.Fatalf("rerouted path %v (%v), want length 3", p, err)
	}
	if p0, err := PathOf(b.Init, b.Topo, cl); err != nil || len(p0) != 4 {
		t.Fatalf("Apply mutated its input: %v (%v)", p0, err)
	}
	if _, err := b.Apply(b.Init, &StreamDelta{Reroute: []Reroute{{Class: "x", Path: []int{0}}}}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("unknown class: err = %v, want ErrBadDelta", err)
	}
}
