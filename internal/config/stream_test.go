package config

import (
	"errors"
	"io"
	"strings"
	"testing"

	"netupdate/internal/topology"
)

const lineStream = `
{"name":"line","topology":{"switches":4,"links":[[0,1],[1,2],[2,3],[0,2],[1,3]],
 "hosts":[{"id":100,"switch":0},{"id":101,"switch":3}]},
 "classes":[{"name":"c","src":100,"dst":101,"path":[0,1,2,3],"spec":"sw=0 -> F sw=3"}]}
{"reroute":[{"class":"c","path":[0,2,3]}]}
{"reroute":[{"class":"c","path":[0,1,3]}]}
`

func TestScenarioStreamDecode(t *testing.T) {
	s, err := OpenStream(strings.NewReader(lineStream))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "line" {
		t.Fatalf("name = %q", s.Name())
	}
	if len(s.Specs()) != 1 {
		t.Fatalf("specs = %d, want 1", len(s.Specs()))
	}
	cl := s.Specs()[0].Class
	p0, err := PathOf(s.Init(), s.Topo(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(p0), 4; got != want {
		t.Fatalf("init path %v, want length %d", p0, want)
	}
	wantPaths := [][]int{{0, 2, 3}, {0, 1, 3}}
	for i, want := range wantPaths {
		tgt, err := s.Next()
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		got, err := PathOf(tgt, s.Topo(), cl)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("delta %d: path %v, want %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("delta %d: path %v, want %v", i, got, want)
			}
		}
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestScenarioStreamRejectsBadDelta(t *testing.T) {
	bad := `
{"name":"line","topology":{"switches":3,"links":[[0,1],[1,2]],
 "hosts":[{"id":100,"switch":0},{"id":101,"switch":2}]},
 "classes":[{"name":"c","src":100,"dst":101,"path":[0,1,2],"spec":"true"}]}
{"reroute":[{"class":"nope","path":[0,1,2]}]}
`
	s, err := OpenStream(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("err = %v, want ErrBadDelta", err)
	}
	// A bad delta is recoverable: the previous target stands and the
	// stream keeps decoding (here: straight to EOF).
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF after skipped delta", err)
	}
}

func TestRemoveClassRules(t *testing.T) {
	topo := topology.New("t", 3)
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddHost(100, 0)
	topo.AddHost(101, 2)
	topo.AddHost(200, 0)
	topo.AddHost(201, 2)
	clA := Class{Name: "a", SrcHost: 100, DstHost: 101}
	clB := Class{Name: "b", SrcHost: 200, DstHost: 201}
	cfg := New()
	if err := InstallPath(cfg, topo, clA, []int{0, 1, 2}, 10); err != nil {
		t.Fatal(err)
	}
	if err := InstallPath(cfg, topo, clB, []int{0, 1, 2}, 10); err != nil {
		t.Fatal(err)
	}
	RemoveClassRules(cfg, clA)
	if _, err := PathOf(cfg, topo, clB); err != nil {
		t.Fatalf("class b must survive: %v", err)
	}
	if _, err := PathOf(cfg, topo, clA); err == nil {
		t.Fatal("class a rules must be gone")
	}
	for _, sw := range cfg.Switches() {
		for _, r := range cfg.Table(sw) {
			if r.Match == clA.Pattern() {
				t.Fatalf("leftover rule for class a on sw%d", sw)
			}
		}
	}
}

func TestRollingUpdatesWalk(t *testing.T) {
	topo := topology.SmallWorld(60, 4, 0.3, 17)
	s, err := RollingUpdates(topo, RollingOptions{
		Pairs: 2, Property: Reachability, Seed: 17, Steps: 6, FlipsPerStep: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Specs()) != 2 {
		t.Fatalf("specs = %d, want 2 diamond classes", len(s.Specs()))
	}
	prev := s.Init()
	steps := 0
	for {
		tgt, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		steps++
		// Every target must route every class loop-free to its host, and
		// must differ from its predecessor in at least one switch.
		for _, cs := range s.Specs() {
			if _, err := PathOf(tgt, s.Topo(), cs.Class); err != nil {
				t.Fatalf("step %d: %v", steps, err)
			}
		}
		if d := Diff(prev, tgt); len(d) == 0 {
			t.Fatalf("step %d: target identical to predecessor", steps)
		}
		prev = tgt
	}
	if steps != 6 {
		t.Fatalf("steps = %d, want 6", steps)
	}
}

func TestRollingUpdatesStepsAreFeasibleScenarios(t *testing.T) {
	topo := topology.SmallWorld(50, 4, 0.3, 5)
	s, err := RollingUpdates(topo, RollingOptions{
		Pairs: 2, Property: Reachability, Seed: 5, Steps: 3, FlipsPerStep: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := s.Init()
	for {
		tgt, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sc := &Scenario{Name: "roll", Topo: s.Topo(), Init: prev, Final: tgt, Specs: s.Specs()}
		if err := sc.Validate(); err != nil {
			t.Fatal(err)
		}
		prev = tgt
	}
}

// TestScenarioStreamRejectsUnknownFields: a misspelled delta key must
// fail loudly, not silently decode into a no-op target.
func TestScenarioStreamRejectsUnknownFields(t *testing.T) {
	bad := `
{"name":"line","topology":{"switches":3,"links":[[0,1],[1,2]],
 "hosts":[{"id":100,"switch":0},{"id":101,"switch":2}]},
 "classes":[{"name":"c","src":100,"dst":101,"path":[0,1,2],"spec":"true"}]}
{"rerouted":[{"class":"c","path":[0,1,2]}]}
`
	s, err := OpenStream(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err == nil {
		t.Fatal("misspelled delta key must be rejected")
	}
}
