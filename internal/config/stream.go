package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"netupdate/internal/ltl"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// Stream is a sequence of target configurations over one fixed topology
// and one fixed set of class specifications — the steady-state workload a
// long-lived synthesis session serves. Next returns the next target (the
// caller synthesizes the plan from wherever it currently is) and io.EOF
// when the stream is exhausted.
type Stream interface {
	// Topo returns the fixed topology every target routes over.
	Topo() *topology.Topology
	// Init returns the configuration the stream starts from.
	Init() *Config
	// Specs returns the per-class specifications, fixed for the stream.
	Specs() []ClassSpec
	// Next returns the next target configuration, or io.EOF.
	Next() (*Config, error)
}

// RemoveClassRules deletes every rule matching exactly the class's flow
// pattern from cfg, across all switches. Touched tables are rebuilt
// rather than filtered in place, so configurations sharing table slices
// with this one (clones are deep, but SetTable aliases) stay intact.
func RemoveClassRules(cfg *Config, cl Class) {
	pat := cl.Pattern()
	for sw, tbl := range cfg.tables {
		drop := 0
		for _, r := range tbl {
			if r.Match == pat {
				drop++
			}
		}
		if drop == 0 {
			continue
		}
		if drop == len(tbl) {
			delete(cfg.tables, sw)
			continue
		}
		out := make(network.Table, 0, len(tbl)-drop)
		for _, r := range tbl {
			if r.Match != pat {
				out = append(out, r)
			}
		}
		cfg.tables[sw] = out
	}
}

// RerouteClass replaces class cl's forwarding state in cfg with a route
// along the switch path (see InstallPath for the path contract).
func RerouteClass(cfg *Config, topo *topology.Topology, cl Class, path []int, priority int) error {
	RemoveClassRules(cfg, cl)
	return InstallPath(cfg, topo, cl, path, priority)
}

// LineCountingReader wraps a stream reader and records where each line
// starts, so decoders that report byte offsets (encoding/json) can be
// translated to the 1-based line numbers humans grep for in a JSONL
// stream. It is what lets stream and request decode errors name the
// offending line instead of a bare byte offset. Long-lived consumers
// (the stream CLI, a held-open daemon connection) call Prune after each
// decoded value so the newline index stays bounded by the decoder's
// unread window instead of growing with the whole stream.
type LineCountingReader struct {
	r    io.Reader
	nl   []int64 // offsets of '\n' served and not yet pruned
	base int     // newlines pruned away (all below every retained offset)
	n    int64   // total bytes served
}

// NewLineCountingReader wraps r.
func NewLineCountingReader(r io.Reader) *LineCountingReader {
	return &LineCountingReader{r: r}
}

// Read implements io.Reader.
func (t *LineCountingReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	for i := 0; i < n; i++ {
		if p[i] == '\n' {
			t.nl = append(t.nl, t.n+int64(i))
		}
	}
	t.n += int64(n)
	return n, err
}

// LineAt returns the 1-based line number containing byte offset off.
// Offsets at or past the bytes served so far land on the last known
// line; offsets already pruned land on the first retained line.
func (t *LineCountingReader) LineAt(off int64) int {
	lo, hi := 0, len(t.nl)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.nl[mid] < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return t.base + lo + 1
}

// Prune forgets newline offsets below off, keeping the line index
// bounded for endless streams. Callers prune up to the decoder's
// position after handling each value: every offset a later decode error
// can report is at or past it.
func (t *LineCountingReader) Prune(off int64) {
	i := 0
	for i < len(t.nl) && t.nl[i] < off {
		i++
	}
	if i > 0 {
		t.base += i
		t.nl = append(t.nl[:0], t.nl[i:]...)
	}
}

// DecodeErrorLine maps a json decode error (or, failing that, the
// decoder's current input offset) to the line it occurred on. Syntax and
// type errors carry their own stream offset; other errors — including
// io.ErrUnexpectedEOF and DisallowUnknownFields rejections — are
// attributed to the decoder's position after the failed read.
func (t *LineCountingReader) DecodeErrorLine(err error, dec *json.Decoder) int {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return t.LineAt(syn.Offset)
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		return t.LineAt(typ.Offset)
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		// The decoder position does not advance past a value it could not
		// finish scanning; the truncation itself is at the end of input.
		return t.LineAt(t.n)
	}
	return t.LineAt(dec.InputOffset())
}

// StreamHeader is the first JSON value of a scenario stream: the fixed
// topology, and every traffic class with its initial route and LTL
// specification.
//
//	{"name":"line","topology":{"switches":4,"links":[[0,1],[1,2],[2,3]],
//	 "hosts":[{"id":100,"switch":0},{"id":101,"switch":3}]},
//	 "classes":[{"name":"c","src":100,"dst":101,"path":[0,1,2,3],
//	             "spec":"sw=0 -> F sw=3"}]}
type StreamHeader struct {
	Name     string        `json:"name"`
	Topology TopologyFile  `json:"topology"`
	Classes  []StreamClass `json:"classes"`
}

// StreamClass declares one traffic class of a stream.
type StreamClass struct {
	Name string `json:"name"`
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
	Path []int  `json:"path"`
	Spec string `json:"spec"`
}

// StreamDelta is one subsequent JSON value of a scenario stream: the
// classes to reroute relative to the previous target.
//
//	{"reroute":[{"class":"c","path":[0,2,3]}]}
type StreamDelta struct {
	Reroute []Reroute `json:"reroute"`
}

// Reroute moves one class onto a new path.
type Reroute struct {
	Class string `json:"class"`
	Path  []int  `json:"path"`
}

// ErrBadDelta marks a semantically invalid stream delta (unknown class,
// uninstallable or non-delivering path). The delta decoded cleanly, so
// the stream is still in sync: callers may report the bad delta and keep
// consuming. Raw decode errors are not wrapped — after a syntax error the
// stream position is unreliable and the stream must be abandoned.
var ErrBadDelta = errors.New("config: invalid stream delta")

// StreamBase is a validated stream header: the fixed topology, the
// initial configuration the class paths install, the per-class
// specifications, and the class name index deltas resolve against. It is
// the shared (de)serialized form of a synthesis scenario stream — the
// ScenarioStream decoder applies deltas to it locally, and the server
// pool stores one per tenant and applies request deltas to the tenant's
// current configuration on the service side.
type StreamBase struct {
	Name  string
	Topo  *topology.Topology
	Init  *Config
	Specs []ClassSpec

	byName map[string]Class
	prio   int
}

// Build validates the header and constructs the base: the topology, every
// class's initial route, and its parsed LTL specification.
func (h *StreamHeader) Build() (*StreamBase, error) {
	topo, err := h.Topology.Build(h.Name)
	if err != nil {
		return nil, err
	}
	b := &StreamBase{
		Name:   h.Name,
		Topo:   topo,
		Init:   New(),
		byName: map[string]Class{},
		prio:   10,
	}
	for i, cf := range h.Classes {
		cl := Class{Name: cf.Name, SrcHost: cf.Src, DstHost: cf.Dst}
		if cl.Name == "" {
			cl.Name = fmt.Sprintf("class%d", i)
		}
		if _, dup := b.byName[cl.Name]; dup {
			return nil, fmt.Errorf("config: duplicate class %q", cl.Name)
		}
		b.byName[cl.Name] = cl
		if err := InstallPath(b.Init, topo, cl, cf.Path, b.prio); err != nil {
			return nil, fmt.Errorf("config: class %s: %w", cl.Name, err)
		}
		spec, err := ltl.Parse(cf.Spec)
		if err != nil {
			return nil, fmt.Errorf("config: class %s spec: %w", cl.Name, err)
		}
		b.Specs = append(b.Specs, ClassSpec{Class: cl, Formula: spec})
	}
	if len(b.Specs) == 0 {
		return nil, fmt.Errorf("config: stream has no traffic classes")
	}
	return b, nil
}

// Apply builds the target configuration one delta describes: cur cloned
// with every rerouted class moved to its new path, each validated to
// still deliver. Semantic failures are wrapped in ErrBadDelta and cur is
// unaffected, so the caller may report and continue.
func (b *StreamBase) Apply(cur *Config, d *StreamDelta) (*Config, error) {
	next := cur.Clone()
	for _, rr := range d.Reroute {
		cl, ok := b.byName[rr.Class]
		if !ok {
			return nil, fmt.Errorf("%w: unknown class %q", ErrBadDelta, rr.Class)
		}
		if err := RerouteClass(next, b.Topo, cl, rr.Path, b.prio); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
		}
		if _, err := PathOf(next, b.Topo, cl); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
		}
	}
	return next, nil
}

// ScenarioStream decodes a JSONL synthesis stream: a StreamHeader
// followed by any number of StreamDelta values (one JSON value per line
// by convention; any whitespace separation decodes). Each delta is
// applied on top of the previous target, so targets accumulate: a class
// not rerouted by a delta keeps its current path. Decode and validation
// errors are positioned: they carry the delta's ordinal and the input
// line it sits on (see LineCountingReader).
type ScenarioStream struct {
	base    *StreamBase
	cur     *Config // last target handed out
	dec     *json.Decoder
	lines   *LineCountingReader
	line    int // input line of the last decoded delta
	emitted int
}

// OpenStream reads and validates the stream header, returning a stream
// whose Next decodes and applies one delta per call. Unknown JSON fields
// are rejected (like the scenario-file loader), so a misspelled delta key
// fails loudly instead of silently producing a no-op target.
func OpenStream(r io.Reader) (*ScenarioStream, error) {
	lines := NewLineCountingReader(r)
	dec := json.NewDecoder(lines)
	dec.DisallowUnknownFields()
	var h StreamHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("config: stream header (line %d): %w",
			lines.DecodeErrorLine(err, dec), err)
	}
	base, err := h.Build()
	if err != nil {
		return nil, err
	}
	return &ScenarioStream{base: base, cur: base.Init, dec: dec, lines: lines}, nil
}

// Name returns the stream's name from the header.
func (s *ScenarioStream) Name() string { return s.base.Name }

// Topo implements Stream.
func (s *ScenarioStream) Topo() *topology.Topology { return s.base.Topo }

// Init implements Stream.
func (s *ScenarioStream) Init() *Config { return s.base.Init }

// Specs implements Stream.
func (s *ScenarioStream) Specs() []ClassSpec { return s.base.Specs }

// Line returns the input line of the last delta Next decoded (0 before
// the first call). Errors from Next already embed it; callers relaying
// results elsewhere (the stream CLI, the daemon) use it to position
// their own reports.
func (s *ScenarioStream) Line() int { return s.line }

// Next implements Stream: decode the next delta, apply it to the previous
// target, and validate that every rerouted class still delivers. A
// semantically invalid delta is reported wrapped in ErrBadDelta and
// skipped — the previous target stands and Next may be called again; only
// decode errors (after which the stream position is unreliable) are
// terminal. Both kinds carry the offending input line.
func (s *ScenarioStream) Next() (*Config, error) {
	var d StreamDelta
	if err := s.dec.Decode(&d); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("config: stream delta %d (line %d): %w",
			s.emitted+1, s.lines.DecodeErrorLine(err, s.dec), err)
	}
	s.emitted++
	s.line = s.lines.LineAt(s.dec.InputOffset() - 1)
	s.lines.Prune(s.dec.InputOffset())
	next, err := s.base.Apply(s.cur, &d)
	if err != nil {
		return nil, fmt.Errorf("%w (delta %d, line %d)", err, s.emitted, s.line)
	}
	s.cur = next
	return next, nil
}

// RollingOptions parameterizes the rolling-update workload generator.
type RollingOptions struct {
	Pairs    int      // diamonds carved into the topology
	Property Property // property family asserted per diamond
	Seed     int64
	// Steps is the number of targets the stream yields (default 8).
	Steps int
	// FlipsPerStep is how many distinct diamonds are rerouted onto their
	// other branch per target (default 1, capped at Pairs).
	FlipsPerStep int
	// BackgroundFlows adds identical shortest-path state to every target,
	// as in DiamondOptions.
	BackgroundFlows int
}

// RollingStream is the generated steady-state workload: a random walk of
// diamond targets over one topology. Each diamond from the standard
// evaluation workload has two internally disjoint branches; every step
// flips a few diamonds onto their other branch, producing the stream of
// small reconfigurations a long-lived controller session faces. Every
// consecutive (current, target) pair is an ordinary diamond update and
// therefore feasible at switch granularity.
type RollingStream struct {
	topo  *topology.Topology
	init  *Config
	specs []ClassSpec
	pairs []rollingPair
	r     *rand.Rand
	perm  []int
	left  int
	flips int
	cur   *Config
}

type rollingPair struct {
	cl       Class
	branches [2][]int
	onB      bool
}

// RollingUpdates carves opts.Pairs diamonds into topo (via Diamonds) and
// returns the rolling random walk over their branch choices.
func RollingUpdates(topo *topology.Topology, opts RollingOptions) (*RollingStream, error) {
	sc, err := Diamonds(topo, DiamondOptions{
		Pairs:           opts.Pairs,
		Property:        opts.Property,
		Seed:            opts.Seed,
		BackgroundFlows: opts.BackgroundFlows,
	})
	if err != nil {
		return nil, err
	}
	steps := opts.Steps
	if steps <= 0 {
		steps = 8
	}
	flips := opts.FlipsPerStep
	if flips <= 0 {
		flips = 1
	}
	if flips > opts.Pairs {
		flips = opts.Pairs
	}
	s := &RollingStream{
		topo:  topo,
		init:  sc.Init,
		specs: sc.Specs,
		r:     rand.New(rand.NewSource(opts.Seed ^ 0x5EED)),
		perm:  make([]int, 0, opts.Pairs),
		left:  steps,
		flips: flips,
		cur:   sc.Init,
	}
	for _, cs := range sc.Specs {
		if !isDiamondClass(cs.Class) {
			continue // background flow: never rerouted
		}
		a, err := PathOf(sc.Init, topo, cs.Class)
		if err != nil {
			return nil, err
		}
		b, err := PathOf(sc.Final, topo, cs.Class)
		if err != nil {
			return nil, err
		}
		s.pairs = append(s.pairs, rollingPair{cl: cs.Class, branches: [2][]int{a, b}})
	}
	return s, nil
}

// isDiamondClass distinguishes generator-made diamond classes from the
// background flows Diamonds also installs (named bg<i>).
func isDiamondClass(cl Class) bool {
	return len(cl.Name) >= 4 && cl.Name[:4] == "pair"
}

// Topo implements Stream.
func (s *RollingStream) Topo() *topology.Topology { return s.topo }

// Init implements Stream.
func (s *RollingStream) Init() *Config { return s.init }

// Specs implements Stream.
func (s *RollingStream) Specs() []ClassSpec { return s.specs }

// Next implements Stream: flip FlipsPerStep distinct random diamonds onto
// their other branch.
func (s *RollingStream) Next() (*Config, error) {
	if s.left == 0 {
		return nil, io.EOF
	}
	s.left--
	next := s.cur.Clone()
	s.perm = s.perm[:0]
	for i := range s.pairs {
		s.perm = append(s.perm, i)
	}
	s.r.Shuffle(len(s.perm), func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
	for _, pi := range s.perm[:s.flips] {
		p := &s.pairs[pi]
		p.onB = !p.onB
		branch := p.branches[0]
		if p.onB {
			branch = p.branches[1]
		}
		if err := RerouteClass(next, s.topo, p.cl, branch, 10); err != nil {
			return nil, fmt.Errorf("config: rolling flip of %v: %w", p.cl, err)
		}
	}
	s.cur = next
	return next, nil
}

var (
	_ Stream = (*ScenarioStream)(nil)
	_ Stream = (*RollingStream)(nil)
)
