package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"netupdate/internal/ltl"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// Stream is a sequence of target configurations over one fixed topology
// and one fixed set of class specifications — the steady-state workload a
// long-lived synthesis session serves. Next returns the next target (the
// caller synthesizes the plan from wherever it currently is) and io.EOF
// when the stream is exhausted.
type Stream interface {
	// Topo returns the fixed topology every target routes over.
	Topo() *topology.Topology
	// Init returns the configuration the stream starts from.
	Init() *Config
	// Specs returns the per-class specifications, fixed for the stream.
	Specs() []ClassSpec
	// Next returns the next target configuration, or io.EOF.
	Next() (*Config, error)
}

// RemoveClassRules deletes every rule matching exactly the class's flow
// pattern from cfg, across all switches. Touched tables are rebuilt
// rather than filtered in place, so configurations sharing table slices
// with this one (clones are deep, but SetTable aliases) stay intact.
func RemoveClassRules(cfg *Config, cl Class) {
	pat := cl.Pattern()
	for sw, tbl := range cfg.tables {
		drop := 0
		for _, r := range tbl {
			if r.Match == pat {
				drop++
			}
		}
		if drop == 0 {
			continue
		}
		if drop == len(tbl) {
			delete(cfg.tables, sw)
			continue
		}
		out := make(network.Table, 0, len(tbl)-drop)
		for _, r := range tbl {
			if r.Match != pat {
				out = append(out, r)
			}
		}
		cfg.tables[sw] = out
	}
}

// RerouteClass replaces class cl's forwarding state in cfg with a route
// along the switch path (see InstallPath for the path contract).
func RerouteClass(cfg *Config, topo *topology.Topology, cl Class, path []int, priority int) error {
	RemoveClassRules(cfg, cl)
	return InstallPath(cfg, topo, cl, path, priority)
}

// StreamHeader is the first JSON value of a scenario stream: the fixed
// topology, and every traffic class with its initial route and LTL
// specification.
//
//	{"name":"line","topology":{"switches":4,"links":[[0,1],[1,2],[2,3]],
//	 "hosts":[{"id":100,"switch":0},{"id":101,"switch":3}]},
//	 "classes":[{"name":"c","src":100,"dst":101,"path":[0,1,2,3],
//	             "spec":"sw=0 -> F sw=3"}]}
type StreamHeader struct {
	Name     string        `json:"name"`
	Topology TopologyFile  `json:"topology"`
	Classes  []StreamClass `json:"classes"`
}

// StreamClass declares one traffic class of a stream.
type StreamClass struct {
	Name string `json:"name"`
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
	Path []int  `json:"path"`
	Spec string `json:"spec"`
}

// StreamDelta is one subsequent JSON value of a scenario stream: the
// classes to reroute relative to the previous target.
//
//	{"reroute":[{"class":"c","path":[0,2,3]}]}
type StreamDelta struct {
	Reroute []Reroute `json:"reroute"`
}

// Reroute moves one class onto a new path.
type Reroute struct {
	Class string `json:"class"`
	Path  []int  `json:"path"`
}

// ErrBadDelta marks a semantically invalid stream delta (unknown class,
// uninstallable or non-delivering path). The delta decoded cleanly, so
// the stream is still in sync: callers may report the bad delta and keep
// consuming. Raw decode errors are not wrapped — after a syntax error the
// stream position is unreliable and the stream must be abandoned.
var ErrBadDelta = errors.New("config: invalid stream delta")

// ScenarioStream decodes a JSONL synthesis stream: a StreamHeader
// followed by any number of StreamDelta values (one JSON value per line
// by convention; any whitespace separation decodes). Each delta is
// applied on top of the previous target, so targets accumulate: a class
// not rerouted by a delta keeps its current path.
type ScenarioStream struct {
	name    string
	topo    *topology.Topology
	init    *Config
	specs   []ClassSpec
	byName  map[string]Class
	cur     *Config // last target handed out
	dec     *json.Decoder
	prio    int
	emitted int
}

// OpenStream reads and validates the stream header, returning a stream
// whose Next decodes and applies one delta per call. Unknown JSON fields
// are rejected (like the scenario-file loader), so a misspelled delta key
// fails loudly instead of silently producing a no-op target.
func OpenStream(r io.Reader) (*ScenarioStream, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var h StreamHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("config: stream header: %w", err)
	}
	topo, err := h.Topology.Build(h.Name)
	if err != nil {
		return nil, err
	}
	s := &ScenarioStream{
		name:   h.Name,
		topo:   topo,
		init:   New(),
		byName: map[string]Class{},
		dec:    dec,
		prio:   10,
	}
	for i, cf := range h.Classes {
		cl := Class{Name: cf.Name, SrcHost: cf.Src, DstHost: cf.Dst}
		if cl.Name == "" {
			cl.Name = fmt.Sprintf("class%d", i)
		}
		if _, dup := s.byName[cl.Name]; dup {
			return nil, fmt.Errorf("config: duplicate class %q", cl.Name)
		}
		s.byName[cl.Name] = cl
		if err := InstallPath(s.init, topo, cl, cf.Path, s.prio); err != nil {
			return nil, fmt.Errorf("config: class %s: %w", cl.Name, err)
		}
		spec, err := ltl.Parse(cf.Spec)
		if err != nil {
			return nil, fmt.Errorf("config: class %s spec: %w", cl.Name, err)
		}
		s.specs = append(s.specs, ClassSpec{Class: cl, Formula: spec})
	}
	if len(s.specs) == 0 {
		return nil, fmt.Errorf("config: stream has no traffic classes")
	}
	s.cur = s.init
	return s, nil
}

// Name returns the stream's name from the header.
func (s *ScenarioStream) Name() string { return s.name }

// Topo implements Stream.
func (s *ScenarioStream) Topo() *topology.Topology { return s.topo }

// Init implements Stream.
func (s *ScenarioStream) Init() *Config { return s.init }

// Specs implements Stream.
func (s *ScenarioStream) Specs() []ClassSpec { return s.specs }

// Next implements Stream: decode the next delta, apply it to the previous
// target, and validate that every rerouted class still delivers. A
// semantically invalid delta is reported wrapped in ErrBadDelta and
// skipped — the previous target stands and Next may be called again; only
// decode errors (after which the stream position is unreliable) are
// terminal.
func (s *ScenarioStream) Next() (*Config, error) {
	var d StreamDelta
	if err := s.dec.Decode(&d); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("config: stream delta %d: %w", s.emitted+1, err)
	}
	s.emitted++
	next := s.cur.Clone()
	for _, rr := range d.Reroute {
		cl, ok := s.byName[rr.Class]
		if !ok {
			return nil, fmt.Errorf("%w %d: unknown class %q", ErrBadDelta, s.emitted, rr.Class)
		}
		if err := RerouteClass(next, s.topo, cl, rr.Path, s.prio); err != nil {
			return nil, fmt.Errorf("%w %d: %v", ErrBadDelta, s.emitted, err)
		}
		if _, err := PathOf(next, s.topo, cl); err != nil {
			return nil, fmt.Errorf("%w %d: %v", ErrBadDelta, s.emitted, err)
		}
	}
	s.cur = next
	return next, nil
}

// RollingOptions parameterizes the rolling-update workload generator.
type RollingOptions struct {
	Pairs    int      // diamonds carved into the topology
	Property Property // property family asserted per diamond
	Seed     int64
	// Steps is the number of targets the stream yields (default 8).
	Steps int
	// FlipsPerStep is how many distinct diamonds are rerouted onto their
	// other branch per target (default 1, capped at Pairs).
	FlipsPerStep int
	// BackgroundFlows adds identical shortest-path state to every target,
	// as in DiamondOptions.
	BackgroundFlows int
}

// RollingStream is the generated steady-state workload: a random walk of
// diamond targets over one topology. Each diamond from the standard
// evaluation workload has two internally disjoint branches; every step
// flips a few diamonds onto their other branch, producing the stream of
// small reconfigurations a long-lived controller session faces. Every
// consecutive (current, target) pair is an ordinary diamond update and
// therefore feasible at switch granularity.
type RollingStream struct {
	topo  *topology.Topology
	init  *Config
	specs []ClassSpec
	pairs []rollingPair
	r     *rand.Rand
	perm  []int
	left  int
	flips int
	cur   *Config
}

type rollingPair struct {
	cl       Class
	branches [2][]int
	onB      bool
}

// RollingUpdates carves opts.Pairs diamonds into topo (via Diamonds) and
// returns the rolling random walk over their branch choices.
func RollingUpdates(topo *topology.Topology, opts RollingOptions) (*RollingStream, error) {
	sc, err := Diamonds(topo, DiamondOptions{
		Pairs:           opts.Pairs,
		Property:        opts.Property,
		Seed:            opts.Seed,
		BackgroundFlows: opts.BackgroundFlows,
	})
	if err != nil {
		return nil, err
	}
	steps := opts.Steps
	if steps <= 0 {
		steps = 8
	}
	flips := opts.FlipsPerStep
	if flips <= 0 {
		flips = 1
	}
	if flips > opts.Pairs {
		flips = opts.Pairs
	}
	s := &RollingStream{
		topo:  topo,
		init:  sc.Init,
		specs: sc.Specs,
		r:     rand.New(rand.NewSource(opts.Seed ^ 0x5EED)),
		perm:  make([]int, 0, opts.Pairs),
		left:  steps,
		flips: flips,
		cur:   sc.Init,
	}
	for _, cs := range sc.Specs {
		if !isDiamondClass(cs.Class) {
			continue // background flow: never rerouted
		}
		a, err := PathOf(sc.Init, topo, cs.Class)
		if err != nil {
			return nil, err
		}
		b, err := PathOf(sc.Final, topo, cs.Class)
		if err != nil {
			return nil, err
		}
		s.pairs = append(s.pairs, rollingPair{cl: cs.Class, branches: [2][]int{a, b}})
	}
	return s, nil
}

// isDiamondClass distinguishes generator-made diamond classes from the
// background flows Diamonds also installs (named bg<i>).
func isDiamondClass(cl Class) bool {
	return len(cl.Name) >= 4 && cl.Name[:4] == "pair"
}

// Topo implements Stream.
func (s *RollingStream) Topo() *topology.Topology { return s.topo }

// Init implements Stream.
func (s *RollingStream) Init() *Config { return s.init }

// Specs implements Stream.
func (s *RollingStream) Specs() []ClassSpec { return s.specs }

// Next implements Stream: flip FlipsPerStep distinct random diamonds onto
// their other branch.
func (s *RollingStream) Next() (*Config, error) {
	if s.left == 0 {
		return nil, io.EOF
	}
	s.left--
	next := s.cur.Clone()
	s.perm = s.perm[:0]
	for i := range s.pairs {
		s.perm = append(s.perm, i)
	}
	s.r.Shuffle(len(s.perm), func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
	for _, pi := range s.perm[:s.flips] {
		p := &s.pairs[pi]
		p.onB = !p.onB
		branch := p.branches[0]
		if p.onB {
			branch = p.branches[1]
		}
		if err := RerouteClass(next, s.topo, p.cl, branch, 10); err != nil {
			return nil, fmt.Errorf("config: rolling flip of %v: %w", p.cl, err)
		}
	}
	s.cur = next
	return next, nil
}

var (
	_ Stream = (*ScenarioStream)(nil)
	_ Stream = (*RollingStream)(nil)
)
