package config

import (
	"netupdate/internal/ltl"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

// Fig1Nodes names the switches of the paper's Figure 1 example topology: a
// simplified datacenter with two cores, four aggregation switches, four
// top-of-rack switches, and hosts H1..H4 on T1..T4.
type Fig1Nodes struct {
	T1, T2, T3, T4 int
	A1, A2, A3, A4 int
	C1, C2         int
	H1, H2, H3, H4 int // host ids
}

// Fig1Topology builds the Figure 1 topology. Every ToR in a pod connects
// to both of its pod's aggregation switches, and every aggregation switch
// connects to both cores.
func Fig1Topology() (*topology.Topology, Fig1Nodes) {
	nodes := Fig1Nodes{
		T1: 0, T2: 1, T3: 2, T4: 3,
		A1: 4, A2: 5, A3: 6, A4: 7,
		C1: 8, C2: 9,
		H1: 101, H2: 102, H3: 103, H4: 104,
	}
	t := topology.New("fig1", 10)
	for _, tor := range []int{nodes.T1, nodes.T2} {
		t.AddLink(tor, nodes.A1)
		t.AddLink(tor, nodes.A2)
	}
	for _, tor := range []int{nodes.T3, nodes.T4} {
		t.AddLink(tor, nodes.A3)
		t.AddLink(tor, nodes.A4)
	}
	for _, agg := range []int{nodes.A1, nodes.A2, nodes.A3, nodes.A4} {
		t.AddLink(agg, nodes.C1)
		t.AddLink(agg, nodes.C2)
	}
	t.AddHost(nodes.H1, nodes.T1)
	t.AddHost(nodes.H2, nodes.T2)
	t.AddHost(nodes.H3, nodes.T3)
	t.AddHost(nodes.H4, nodes.T4)
	return t, nodes
}

// fig1Class is the H1 -> H3 traffic class used by all Figure 1 scenarios.
func fig1Class(n Fig1Nodes) Class {
	return Class{Name: "H1->H3", SrcHost: n.H1, DstHost: n.H3}
}

// fig1Paths returns the three named paths from the Overview.
func fig1Paths(n Fig1Nodes) (red, green, blue []int) {
	red = []int{n.T1, n.A1, n.C1, n.A3, n.T3}
	green = []int{n.T1, n.A1, n.C2, n.A3, n.T3}
	blue = []int{n.T1, n.A2, n.C1, n.A4, n.T3}
	return
}

// reroute returns a copy of cfg rerouted along path for class cl: rules on
// path switches are replaced, while stale rules on switches off the new
// path are left installed (matching the paper, where only A1 and C2 change
// in the red-to-green update).
func reroute(cfg *Config, topo *topology.Topology, cl Class, path []int, priority int) *Config {
	out := cfg.Clone()
	pat := cl.Pattern()
	for _, sw := range path {
		tbl := out.Table(sw)
		kept := tbl[:0:0]
		for _, r := range tbl {
			if r.Match != pat {
				kept = append(kept, r)
			}
		}
		out.SetTable(sw, kept)
	}
	if err := InstallPath(out, topo, cl, path, priority); err != nil {
		panic(err) // paths are static and known-valid
	}
	return out
}

// Fig1RedGreen is the first Overview scenario: shift H1->H3 traffic from
// the red path T1-A1-C1-A3-T3 to the green path T1-A1-C2-A3-T3 while
// preserving reachability. The correct order is C2 before A1.
func Fig1RedGreen() *Scenario {
	topo, n := Fig1Topology()
	cl := fig1Class(n)
	red, green, _ := fig1Paths(n)
	init := New()
	if err := InstallPath(init, topo, cl, red, 10); err != nil {
		panic(err)
	}
	final := reroute(init, topo, cl, green, 10)
	return &Scenario{
		Name:     "fig1-red-green",
		Topo:     topo,
		Init:     init,
		Final:    final,
		Specs:    []ClassSpec{{Class: cl, Formula: ltl.Reachability(n.T1, n.T3)}},
		Feasible: true,
	}
}

// Fig1RedBlue is the second Overview scenario: shift from the red path to
// the blue path T1-A2-C1-A4-T3 preserving reachability only. Updating A2
// and A4 first (unreachable), then T1 and C1 in either order, works.
func Fig1RedBlue() *Scenario {
	topo, n := Fig1Topology()
	cl := fig1Class(n)
	red, _, blue := fig1Paths(n)
	init := New()
	if err := InstallPath(init, topo, cl, red, 10); err != nil {
		panic(err)
	}
	final := reroute(init, topo, cl, blue, 10)
	return &Scenario{
		Name:     "fig1-red-blue",
		Topo:     topo,
		Init:     init,
		Final:    final,
		Specs:    []ClassSpec{{Class: cl, Formula: ltl.Reachability(n.T1, n.T3)}},
		Feasible: true,
	}
}

// Fig1RedBlueWaypoint is the third Overview scenario: shift from red to
// blue while preserving reachability and requiring every packet to
// traverse A3 or A4 (the scrubbing middleboxes). The synthesized sequence
// is A2, A4, T1, wait, C1 — the wait between T1 and C1 is load-bearing.
func Fig1RedBlueWaypoint() *Scenario {
	s := Fig1RedBlue()
	_, n := Fig1Topology()
	s.Name = "fig1-red-blue-waypoint"
	s.Specs = []ClassSpec{{
		Class: s.Specs[0].Class,
		Formula: ltl.And(
			ltl.Reachability(n.T1, n.T3),
			ltl.WaypointEither(n.T1, []int{n.A3, n.A4}, n.T3),
		),
	}}
	return s
}

// Fig1NaiveBadOrder returns the red-to-green update in the broken order
// from the Overview (A1 before C2), used by the Figure 2 experiments.
func Fig1NaiveBadOrder() []network.Command {
	s := Fig1RedGreen()
	_, n := Fig1Topology()
	return []network.Command{
		network.Update(n.A1, s.Final.Table(n.A1)),
		network.Update(n.C2, s.Final.Table(n.C2)),
	}
}
