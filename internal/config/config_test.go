package config

import (
	"testing"

	"netupdate/internal/ltl"
	"netupdate/internal/network"
	"netupdate/internal/topology"
)

func fwdRule(pri int, pat network.Pattern, pt topology.Port) network.Rule {
	return network.Rule{Priority: pri, Match: pat, Actions: []network.Action{network.Forward(pt)}}
}

func TestConfigBasics(t *testing.T) {
	c := New()
	if got := c.Table(3); got != nil {
		t.Fatalf("empty config table = %v", got)
	}
	r := fwdRule(1, network.AnyPacket(), 1)
	c.AddRule(3, r)
	if len(c.Table(3)) != 1 {
		t.Fatal("AddRule failed")
	}
	if got := c.Switches(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Switches = %v", got)
	}
	if c.NumRules() != 1 {
		t.Fatalf("NumRules = %d", c.NumRules())
	}
	if !c.RemoveRule(3, r) {
		t.Fatal("RemoveRule failed")
	}
	if c.RemoveRule(3, r) {
		t.Fatal("RemoveRule should fail on missing rule")
	}
	if len(c.Switches()) != 0 {
		t.Fatal("empty table should be dropped from Switches")
	}
}

func TestConfigCloneIsDeep(t *testing.T) {
	c := New()
	c.AddRule(1, fwdRule(1, network.AnyPacket(), 1))
	d := c.Clone()
	d.AddRule(1, fwdRule(2, network.AnyPacket(), 2))
	if len(c.Table(1)) != 1 || len(d.Table(1)) != 2 {
		t.Fatal("clone not independent")
	}
}

func TestDiff(t *testing.T) {
	a, b := New(), New()
	a.AddRule(1, fwdRule(1, network.AnyPacket(), 1))
	a.AddRule(2, fwdRule(1, network.AnyPacket(), 1))
	b.AddRule(1, fwdRule(1, network.AnyPacket(), 1))
	b.AddRule(2, fwdRule(1, network.AnyPacket(), 2)) // differs
	b.AddRule(3, fwdRule(1, network.AnyPacket(), 1)) // only in b
	got := Diff(a, b)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Diff = %v, want [2 3]", got)
	}
	if d := Diff(a, a.Clone()); len(d) != 0 {
		t.Fatalf("self diff = %v", d)
	}
}

func TestInstallPathAndPathOf(t *testing.T) {
	topo := topology.New("line", 3)
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddHost(10, 0)
	topo.AddHost(11, 2)
	cl := Class{SrcHost: 10, DstHost: 11}
	cfg := New()
	if err := InstallPath(cfg, topo, cl, []int{0, 1, 2}, 10); err != nil {
		t.Fatal(err)
	}
	path, err := PathOf(cfg, topo, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != 0 || path[2] != 2 {
		t.Fatalf("path = %v", path)
	}
}

func TestInstallPathErrors(t *testing.T) {
	topo := topology.New("line", 3)
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddHost(10, 0)
	topo.AddHost(11, 2)
	cl := Class{SrcHost: 10, DstHost: 11}
	cases := []struct {
		name string
		path []int
	}{
		{"empty", nil},
		{"wrong start", []int{1, 2}},
		{"wrong end", []int{0, 1}},
		{"not adjacent", []int{0, 2}},
	}
	for _, c := range cases {
		if err := InstallPath(New(), topo, cl, c.path, 10); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := InstallPath(New(), topo, Class{SrcHost: 99, DstHost: 11}, []int{0, 1, 2}, 10); err == nil {
		t.Error("missing src host: expected error")
	}
	if err := InstallPath(New(), topo, Class{SrcHost: 10, DstHost: 99}, []int{0, 1, 2}, 10); err == nil {
		t.Error("missing dst host: expected error")
	}
}

func TestPathOfDetectsLoop(t *testing.T) {
	topo := topology.New("tri", 3)
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddLink(2, 0)
	topo.AddHost(10, 0)
	topo.AddHost(11, 2)
	cl := Class{SrcHost: 10, DstHost: 11}
	cfg := New()
	p01, _ := topo.PortToward(0, 1)
	p12, _ := topo.PortToward(1, 2)
	p20, _ := topo.PortToward(2, 0)
	cfg.AddRule(0, fwdRule(1, cl.Pattern(), p01))
	cfg.AddRule(1, fwdRule(1, cl.Pattern(), p12))
	cfg.AddRule(2, fwdRule(1, cl.Pattern(), p20))
	if _, err := PathOf(cfg, topo, cl); err == nil {
		t.Fatal("expected loop error")
	}
}

func TestPathOfDetectsDropAndWrongHost(t *testing.T) {
	topo := topology.New("line", 2)
	topo.AddLink(0, 1)
	topo.AddHost(10, 0)
	topo.AddHost(11, 1)
	topo.AddHost(12, 1)
	cl := Class{SrcHost: 10, DstHost: 11}
	cfg := New()
	if _, err := PathOf(cfg, topo, cl); err == nil {
		t.Fatal("expected drop error on empty config")
	}
	p01, _ := topo.PortToward(0, 1)
	cfg.AddRule(0, fwdRule(1, cl.Pattern(), p01))
	wrong, _ := topo.HostByID(12)
	cfg.AddRule(1, fwdRule(1, cl.Pattern(), wrong.Port))
	if _, err := PathOf(cfg, topo, cl); err == nil {
		t.Fatal("expected wrong-host error")
	}
}

func TestFig1Scenarios(t *testing.T) {
	for _, s := range []*Scenario{Fig1RedGreen(), Fig1RedBlue(), Fig1RedBlueWaypoint()} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	rg := Fig1RedGreen()
	_, n := Fig1Topology()
	diff := rg.UpdatingSwitches()
	want := []int{n.A1, n.C2}
	if len(diff) != 2 || diff[0] != want[0] || diff[1] != want[1] {
		t.Fatalf("red-green diff = %v, want %v (A1, C2)", diff, want)
	}
	rb := Fig1RedBlue()
	diff = rb.UpdatingSwitches()
	if len(diff) != 4 {
		t.Fatalf("red-blue diff = %v, want 4 switches (T1, A2, C1, A4)", diff)
	}
}

func TestDiamondsReachability(t *testing.T) {
	topo := topology.SmallWorld(60, 4, 0.3, 7)
	s, err := Diamonds(topo, DiamondOptions{Pairs: 3, Property: Reachability, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Specs) != 3 {
		t.Fatalf("specs = %d", len(s.Specs))
	}
	if len(s.UpdatingSwitches()) == 0 {
		t.Fatal("diamond scenario should update some switches")
	}
	// Each pair's init and final paths must differ somewhere.
	for _, cs := range s.Specs {
		pi, _ := PathOf(s.Init, s.Topo, cs.Class)
		pf, _ := PathOf(s.Final, s.Topo, cs.Class)
		if len(pi) == len(pf) {
			same := true
			for i := range pi {
				if pi[i] != pf[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("pair %v: init and final paths identical: %v", cs.Class, pi)
			}
		}
	}
}

func TestDiamondsWaypointAndChain(t *testing.T) {
	for _, prop := range []Property{Waypointing, ServiceChaining} {
		topo := topology.SmallWorld(100, 4, 0.3, 11)
		s, err := Diamonds(topo, DiamondOptions{Pairs: 2, Property: prop, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", prop, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%v: %v", prop, err)
		}
		// The property must hold on both endpoint configurations' actual
		// paths (checked via trace evaluation).
		for _, cs := range s.Specs {
			for _, cfg := range []*Config{s.Init, s.Final} {
				path, err := PathOf(cfg, s.Topo, cs.Class)
				if err != nil {
					t.Fatal(err)
				}
				if !evalOnPath(cs.Formula, path) {
					t.Fatalf("%v: property %v fails on its own path %v", prop, cs.Formula, path)
				}
			}
		}
	}
}

func TestDiamondsDisjointAcrossPairs(t *testing.T) {
	topo := topology.SmallWorld(80, 4, 0.3, 5)
	s, err := Diamonds(topo, DiamondOptions{Pairs: 4, Property: Reachability, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]string{}
	for _, cs := range s.Specs {
		for _, cfg := range []*Config{s.Init, s.Final} {
			path, _ := PathOf(cfg, s.Topo, cs.Class)
			for _, sw := range path {
				if other, ok := seen[sw]; ok && other != cs.Class.Name {
					t.Fatalf("switch %d shared between %s and %s", sw, other, cs.Class.Name)
				}
				seen[sw] = cs.Class.Name
			}
		}
	}
}

func TestInfeasibleScenarioShape(t *testing.T) {
	topo := topology.SmallWorld(60, 4, 0.3, 13)
	s, err := Infeasible(topo, InfeasibleOptions{Gadgets: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Feasible {
		t.Fatal("infeasible scenario marked feasible")
	}
	if len(s.Specs) != 4 {
		t.Fatalf("specs = %d, want 4 (two classes per gadget)", len(s.Specs))
	}
	// Both branch interiors must be non-empty for the circular dependency.
	for i := 0; i < len(s.Specs); i += 2 {
		pi, _ := PathOf(s.Init, s.Topo, s.Specs[i].Class)
		pf, _ := PathOf(s.Final, s.Topo, s.Specs[i].Class)
		if len(pi) < 3 || len(pf) < 3 {
			t.Fatalf("gadget branch without interior: init %v final %v", pi, pf)
		}
	}
}

// evalOnPath checks an LTL formula on a switch path using the trace
// evaluator (the path's last state repeats).
func evalOnPath(f *ltl.Formula, path []int) bool {
	trace := make([]ltl.Env, len(path))
	for i, sw := range path {
		sw := sw
		trace[i] = ltl.EnvFunc(func(p ltl.Prop) bool {
			return p.Field == ltl.FieldSwitch && p.Value == sw
		})
	}
	return f.EvalTrace(trace)
}
