package config

import (
	"fmt"
	"math/rand"

	"netupdate/internal/ltl"
	"netupdate/internal/topology"
)

// DiamondOptions parameterizes the diamond-scenario generator, which
// reproduces the paper's evaluation workload: random (s, d) pairs joined
// by disjoint initial/final paths, with one of the three property
// families asserted per pair (Section 6, "Configurations and properties").
type DiamondOptions struct {
	Pairs     int      // number of (s, d) pairs (diamonds)
	Property  Property // property asserted for each pair
	Waypoints int      // waypoints per pair for ServiceChaining (default 2)
	Seed      int64
	// HostBase is the first host id to allocate for endpoints; host ids
	// must not collide with existing hosts.
	HostBase int
	// BackgroundFlows installs shortest-path routing for this many extra
	// random host pairs in both configurations. Background rules are
	// identical in init and final (they are not part of the update) but
	// give switches realistically sized tables, which matters for the
	// rule-granularity experiments (Figures 7d-f and 8i).
	BackgroundFlows int
}

// Diamonds builds a diamond scenario on topo. Each diamond occupies
// switches disjoint from every other diamond, so per-pair sub-problems are
// independent (as in the paper, where properties are asserted per pair).
// It returns an error if the topology cannot fit the requested diamonds.
func Diamonds(topo *topology.Topology, opts DiamondOptions) (*Scenario, error) {
	if opts.Pairs <= 0 {
		return nil, fmt.Errorf("config: Diamonds: need at least one pair")
	}
	wp := 0
	switch opts.Property {
	case Waypointing:
		wp = 1
	case ServiceChaining:
		wp = opts.Waypoints
		if wp <= 0 {
			wp = 2
		}
	}
	r := rand.New(rand.NewSource(opts.Seed))
	s := &Scenario{
		Name:     fmt.Sprintf("diamonds-%s-%d", opts.Property, opts.Pairs),
		Topo:     topo,
		Init:     New(),
		Final:    New(),
		Feasible: true,
	}
	used := map[int]bool{} // switches already claimed by any diamond
	hostID := opts.HostBase
	if hostID == 0 {
		hostID = nextHostID(topo)
	}
	for p := 0; p < opts.Pairs; p++ {
		d, err := buildDiamond(topo, r, used, wp, 2)
		if err != nil {
			return nil, fmt.Errorf("config: Diamonds: pair %d: %w", p, err)
		}
		srcHost := topo.AddHost(hostID, d.anchors[0])
		dstHost := topo.AddHost(hostID+1, d.anchors[len(d.anchors)-1])
		hostID += 2
		cl := Class{
			Name:    fmt.Sprintf("pair%d", p),
			SrcHost: srcHost.ID,
			DstHost: dstHost.ID,
		}
		if err := InstallPath(s.Init, topo, cl, d.initPath, 10); err != nil {
			return nil, err
		}
		if err := InstallPath(s.Final, topo, cl, d.finalPath, 10); err != nil {
			return nil, err
		}
		var f *ltl.Formula
		src, dst := d.anchors[0], d.anchors[len(d.anchors)-1]
		switch opts.Property {
		case Reachability:
			f = ltl.Reachability(src, dst)
		case Waypointing:
			f = ltl.Waypoint(src, d.anchors[1], dst)
		case ServiceChaining:
			f = ltl.ServiceChain(src, d.anchors[1:len(d.anchors)-1], dst)
		default:
			return nil, fmt.Errorf("config: unknown property %v", opts.Property)
		}
		s.Specs = append(s.Specs, ClassSpec{Class: cl, Formula: f})
	}
	if err := addBackgroundFlows(s, r, opts.BackgroundFlows, &hostID); err != nil {
		return nil, err
	}
	return s, nil
}

// addBackgroundFlows routes n extra host pairs along shortest paths in
// both configurations (identical rules, so they never join the diff).
func addBackgroundFlows(s *Scenario, r *rand.Rand, n int, hostID *int) error {
	nsw := s.Topo.NumSwitches()
	for i := 0; i < n; i++ {
		var path []int
		for attempt := 0; attempt < 16 && path == nil; attempt++ {
			a, b := r.Intn(nsw), r.Intn(nsw)
			if a == b {
				continue
			}
			path = s.Topo.ShortestPath(a, b)
		}
		if path == nil {
			continue
		}
		src := s.Topo.AddHost(*hostID, path[0])
		dst := s.Topo.AddHost(*hostID+1, path[len(path)-1])
		*hostID += 2
		cl := Class{
			Name:    fmt.Sprintf("bg%d", i),
			SrcHost: src.ID,
			DstHost: dst.ID,
		}
		if err := InstallPath(s.Init, s.Topo, cl, path, 5); err != nil {
			return err
		}
		if err := InstallPath(s.Final, s.Topo, cl, path, 5); err != nil {
			return err
		}
	}
	return nil
}

// nextHostID returns an id strictly above every existing host id, so
// generator-attached hosts never collide with existing ones.
func nextHostID(topo *topology.Topology) int {
	max := 999 // keep generated ids visually distinct from switch ids
	for _, h := range topo.Hosts() {
		if h.ID > max {
			max = h.ID
		}
	}
	return max + 1
}

// diamond is one generated diamond: anchor nodes [s, w1..wk, d] shared by
// both paths, with internally disjoint branch segments between consecutive
// anchors.
type diamond struct {
	anchors   []int
	initPath  []int
	finalPath []int
}

// buildDiamond finds k+2 anchors and, between each consecutive anchor
// pair, two internally disjoint segments avoiding all switches already in
// used. minSeg is the minimum number of switches per segment (3 forces an
// interior switch on every branch, required by the infeasible gadget). On
// success the claimed switches are added to used.
//
// Carving is probe-heavy (up to 400 attempts, two path searches per
// segment each), so one carver's scratch — the path finder, the avoid and
// segment buffers, the claimed list — is shared across all attempts.
func buildDiamond(topo *topology.Topology, r *rand.Rand, used map[int]bool, waypoints, minSeg int) (*diamond, error) {
	const attempts = 400
	n := topo.NumSwitches()
	cv := &carver{pf: topo.NewPathFinder()}
	anchors := make([]int, waypoints+2)
	for try := 0; try < attempts; try++ {
		ok := true
		for i := range anchors {
			anchors[i] = r.Intn(n)
			if used[anchors[i]] || containsInt(anchors[:i], anchors[i]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		d, ok := cv.carve(anchors, used, minSeg)
		if !ok {
			continue
		}
		return d, nil
	}
	return nil, fmt.Errorf("no room for a %d-waypoint diamond after %d attempts", waypoints, attempts)
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// carver holds the reusable scratch of one diamond-construction run.
type carver struct {
	pf        *topology.PathFinder
	avoid     []int
	segA      []int
	segB      []int
	claimed   []int
	initPath  []int
	finalPath []int
}

func (cv *carver) claim(sw int) {
	if !containsInt(cv.claimed, sw) {
		cv.claimed = append(cv.claimed, sw)
	}
}

// avoidList collects used plus claimed switches except the two endpoints.
func (cv *carver) avoidList(used map[int]bool, exceptA, exceptB int) []int {
	out := cv.avoid[:0]
	for sw := range used {
		if sw != exceptA && sw != exceptB {
			out = append(out, sw)
		}
	}
	for _, sw := range cv.claimed {
		if sw != exceptA && sw != exceptB {
			out = append(out, sw)
		}
	}
	cv.avoid = out
	return out
}

// carve attempts to route the two branch paths through anchors, avoiding
// used switches. On success it marks the claimed switches used.
func (cv *carver) carve(anchors []int, used map[int]bool, minSeg int) (*diamond, bool) {
	cv.claimed = cv.claimed[:0]
	for _, a := range anchors {
		cv.claim(a)
	}
	initPath := append(cv.initPath[:0], anchors[0])
	finalPath := append(cv.finalPath[:0], anchors[0])
	defer func() { cv.initPath, cv.finalPath = initPath[:0], finalPath[:0] }()
	for i := 0; i+1 < len(anchors); i++ {
		a, b := anchors[i], anchors[i+1]
		segA := cv.pf.Shortest(cv.segA[:0], a, b, cv.avoidList(used, a, b))
		cv.segA = segA
		if len(segA) == 0 || len(segA) < minSeg {
			return nil, false
		}
		for _, sw := range segA {
			cv.claim(sw)
		}
		segB := cv.pf.Shortest(cv.segB[:0], a, b, cv.avoidList(used, a, b))
		cv.segB = segB
		if len(segB) == 0 || len(segB) < minSeg {
			return nil, false
		}
		// Both branches being the direct edge a-b would make the two
		// configurations identical for this segment; reject.
		if len(segA) == 2 && len(segB) == 2 {
			return nil, false
		}
		for _, sw := range segB {
			cv.claim(sw)
		}
		initPath = append(initPath, segA[1:]...)
		finalPath = append(finalPath, segB[1:]...)
	}
	for _, sw := range cv.claimed {
		used[sw] = true
	}
	return &diamond{
		anchors:   append([]int(nil), anchors...),
		initPath:  append([]int(nil), initPath...),
		finalPath: append([]int(nil), finalPath...),
	}, true
}

// InfeasibleOptions parameterizes the double-diamond generator for the
// Figure 8(h) experiments: scenarios with no switch-granularity ordering
// update, solvable only at rule granularity.
type InfeasibleOptions struct {
	Gadgets  int      // number of double-diamond gadgets
	Property Property // property family asserted per gadget
	// Waypoints per gadget for ServiceChaining (default 2); waypoints are
	// shared anchors so the property holds in both endpoint
	// configurations.
	Waypoints int
	Seed      int64
	HostBase  int
	// BackgroundFlows adds identical shortest-path routing state to both
	// configurations, as in DiamondOptions.
	BackgroundFlows int
}

// Infeasible builds a scenario with opposing traffic swapped between the
// two branches of each diamond: class A moves from branch X to branch Y
// while class B (flowing in the opposite direction) moves from branch Y to
// branch X. Any switch-granularity order creates a circular dependency
// s < x < d < y < s (see DESIGN.md), so no ordering update exists; at rule
// granularity the adds can precede the deletes and the update succeeds.
func Infeasible(topo *topology.Topology, opts InfeasibleOptions) (*Scenario, error) {
	if opts.Gadgets <= 0 {
		return nil, fmt.Errorf("config: Infeasible: need at least one gadget")
	}
	wp := 0
	switch opts.Property {
	case Waypointing:
		wp = 1
	case ServiceChaining:
		wp = opts.Waypoints
		if wp <= 0 {
			wp = 2
		}
	}
	r := rand.New(rand.NewSource(opts.Seed))
	s := &Scenario{
		Name:     fmt.Sprintf("infeasible-%s-%d", opts.Property, opts.Gadgets),
		Topo:     topo,
		Init:     New(),
		Final:    New(),
		Feasible: false,
	}
	used := map[int]bool{}
	hostID := opts.HostBase
	if hostID == 0 {
		hostID = nextHostID(topo)
	}
	for g := 0; g < opts.Gadgets; g++ {
		d, err := buildDiamond(topo, r, used, wp, 3)
		if err != nil {
			return nil, fmt.Errorf("config: Infeasible: gadget %d: %w", g, err)
		}
		src, dst := d.anchors[0], d.anchors[len(d.anchors)-1]
		hA := topo.AddHost(hostID, src)
		hB := topo.AddHost(hostID+1, dst)
		hostID += 2
		clA := Class{Name: fmt.Sprintf("g%dA", g), SrcHost: hA.ID, DstHost: hB.ID}
		clB := Class{Name: fmt.Sprintf("g%dB", g), SrcHost: hB.ID, DstHost: hA.ID}
		rev := func(p []int) []int {
			out := make([]int, len(p))
			for i, v := range p {
				out[len(p)-1-i] = v
			}
			return out
		}
		// Class A: init over branch X, final over branch Y.
		if err := InstallPath(s.Init, topo, clA, d.initPath, 10); err != nil {
			return nil, err
		}
		if err := InstallPath(s.Final, topo, clA, d.finalPath, 10); err != nil {
			return nil, err
		}
		// Class B: opposite direction, init over branch Y, final over X.
		if err := InstallPath(s.Init, topo, clB, rev(d.finalPath), 10); err != nil {
			return nil, err
		}
		if err := InstallPath(s.Final, topo, clB, rev(d.initPath), 10); err != nil {
			return nil, err
		}
		mid := d.anchors[1 : len(d.anchors)-1]
		var fA, fB *ltl.Formula
		switch opts.Property {
		case Waypointing:
			fA = ltl.Waypoint(src, mid[0], dst)
			fB = ltl.Waypoint(dst, mid[0], src)
		case ServiceChaining:
			fA = ltl.ServiceChain(src, mid, dst)
			fB = ltl.ServiceChain(dst, rev(mid), src)
		default:
			fA = ltl.Reachability(src, dst)
			fB = ltl.Reachability(dst, src)
		}
		s.Specs = append(s.Specs,
			ClassSpec{Class: clA, Formula: fA},
			ClassSpec{Class: clB, Formula: fB},
		)
	}
	if err := addBackgroundFlows(s, r, opts.BackgroundFlows, &hostID); err != nil {
		return nil, err
	}
	return s, nil
}
