package config

import (
	"strings"
	"testing"
)

const sampleScenario = `{
  "name": "diamond",
  "topology": {
    "switches": 4,
    "links": [[0,1],[0,2],[1,3],[2,3]],
    "hosts": [{"id":100,"switch":0},{"id":101,"switch":3}]
  },
  "classes": [{
    "name": "flow", "src": 100, "dst": 101,
    "initPath": [0,1,3], "finalPath": [0,2,3],
    "spec": "sw=0 -> F sw=3"
  }]
}`

func TestLoadScenario(t *testing.T) {
	sc, err := LoadScenario(strings.NewReader(sampleScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "diamond" || len(sc.Specs) != 1 {
		t.Fatalf("scenario = %+v", sc)
	}
	if got := sc.UpdatingSwitches(); len(got) != 3 {
		// sw0 flips ports, sw1 loses its rule, sw2 gains one.
		t.Fatalf("updating = %v, want 3 switches", got)
	}
}

func TestLoadScenarioErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"empty", `{}`},
		{"bad json", `{`},
		{"unknown field", `{"bogus": 1}`},
		{"no classes", `{"topology":{"switches":2,"links":[[0,1]]}}`},
		{"link out of range", `{"topology":{"switches":2,"links":[[0,5]]},"classes":[]}`},
		{"host out of range", `{"topology":{"switches":1,"hosts":[{"id":1,"switch":9}]},"classes":[]}`},
		{"dup host", `{"topology":{"switches":1,"hosts":[{"id":1,"switch":0},{"id":1,"switch":0}]},"classes":[]}`},
		{"bad spec", `{
			"topology":{"switches":2,"links":[[0,1]],"hosts":[{"id":1,"switch":0},{"id":2,"switch":1}]},
			"classes":[{"src":1,"dst":2,"initPath":[0,1],"finalPath":[0,1],"spec":"sw="}]}`},
		{"bad path", `{
			"topology":{"switches":2,"links":[[0,1]],"hosts":[{"id":1,"switch":0},{"id":2,"switch":1}]},
			"classes":[{"src":1,"dst":2,"initPath":[1,0],"finalPath":[0,1],"spec":"true"}]}`},
	}
	for _, c := range cases {
		if _, err := LoadScenario(strings.NewReader(c.json)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
