package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netupdate/internal/server"
)

const lineSpec = `{"name":"line","topology":{"switches":4,"links":[[0,1],[1,3],[0,2],[2,3]],
 "hosts":[{"id":100,"switch":0},{"id":101,"switch":3}]},
 "classes":[{"name":"c","src":100,"dst":101,"path":[0,1,3],"spec":"sw=0 -> F sw=3"}]}`

func startDaemon(t *testing.T, opts server.PoolOptions) (*httptest.Server, *server.Pool) {
	t.Helper()
	p := server.NewPool(opts)
	ts := httptest.NewServer(server.NewHandler(p))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = p.Close(context.Background()) })
	return ts, p
}

func register(t *testing.T, ts *httptest.Server, spec string) server.TenantInfo {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/tenants", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("register: %s: %s", resp.Status, body)
	}
	var info server.TenantInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// TestHTTPSynthesizeStreams: the full daemon round trip — register,
// stream three deltas (the middle one semantically bad), read three
// positioned result lines, check stats and metrics.
func TestHTTPSynthesizeStreams(t *testing.T) {
	ts, _ := startDaemon(t, server.PoolOptions{})
	info := register(t, ts, lineSpec)
	if !info.Created || info.Classes != 1 {
		t.Fatalf("info = %+v", info)
	}

	body := strings.Join([]string{
		`{"reroute":[{"class":"c","path":[0,2,3]}]}`,
		`{"reroute":[{"class":"ghost","path":[0,2,3]}]}`,
		`{"reroute":[{"class":"c","path":[0,1,3]}]}`,
	}, "\n") + "\n"
	resp, err := http.Post(ts.URL+"/v1/tenants/"+info.ID+"/synthesize?timeout=10s",
		"application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var results []server.Result
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r server.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad result line %q: %v", sc.Text(), err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Result != "plan" || len(results[0].Steps) == 0 || results[0].Stats == nil {
		t.Fatalf("first result = %+v", results[0])
	}
	if results[1].Result != "error" || results[1].Line != 2 ||
		!strings.Contains(results[1].Error, info.ID) ||
		!strings.Contains(results[1].Error, "ghost") {
		t.Fatalf("bad delta must report tenant id and line 2: %+v", results[1])
	}
	if results[2].Result != "plan" || results[2].Seq != 3 {
		t.Fatalf("third result = %+v", results[2])
	}

	// Stats: two plans, one failure, tenant warm.
	sresp, err := http.Get(ts.URL + "/v1/tenants/" + info.ID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st server.TenantStats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Plans != 2 || !st.Warm || st.ID != info.ID {
		t.Fatalf("stats = %+v", st)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"netupdate_pool_tenants 1",
		"netupdate_pool_warm_sessions 1",
		"netupdate_plans_total 2",
		"netupdate_bad_requests_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestHTTPDecodeErrorsArePositioned: a syntactically broken request body
// yields an in-band error line naming the tenant and the body line.
func TestHTTPDecodeErrorsArePositioned(t *testing.T) {
	ts, _ := startDaemon(t, server.PoolOptions{})
	info := register(t, ts, lineSpec)
	body := `{"reroute":[{"class":"c","path":[0,2,3]}]}` + "\n" + `{"reroute": garbage` + "\n"
	resp, err := http.Post(ts.URL+"/v1/tenants/"+info.ID+"/synthesize",
		"application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("lines = %q", raw)
	}
	var last server.Result
	if err := json.Unmarshal(lines[1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Result != "error" || last.Line != 2 || !strings.Contains(last.Error, info.ID) {
		t.Fatalf("decode error must carry tenant id and line 2: %+v", last)
	}
}

// TestHTTPStatusMapping: 404 for unknown tenants and malformed specs are
// 400 with a line position.
func TestHTTPStatusMapping(t *testing.T) {
	ts, _ := startDaemon(t, server.PoolOptions{})
	resp, err := http.Get(ts.URL + "/v1/tenants/tdeadbeef/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stats status = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/tenants/tdeadbeef/synthesize", "", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("synthesize status = %d, want 404", resp.StatusCode)
	}
	bad := strings.Replace(lineSpec, `"classes"`, `"classez"`, 1)
	resp, err = http.Post(ts.URL+"/v1/tenants", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("register status = %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
		Line  int    `json:"line"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Line == 0 || e.Error == "" {
		t.Fatalf("spec error must be positioned: %+v", e)
	}
	// Bad per-request timeout.
	info := register(t, ts, lineSpec)
	resp, err = http.Post(ts.URL+"/v1/tenants/"+info.ID+"/synthesize?timeout=yesplease", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("timeout status = %d, want 400", resp.StatusCode)
	}
}

// The queue-full → in-band retryable error path over HTTP lives in
// admission_test.go (package server), where the test seam required to
// park a request deterministically is accessible.
